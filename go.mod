module homeconnect

go 1.24
