module homeconnect

go 1.23
