// Package homeconnect is a framework for connecting home computing
// middleware, reproducing Tokunaga et al., "A Framework for Connecting
// Home Computing Middleware" (ICDCS Workshops 2002).
//
// A federation is built from three kinds of components, one set per
// middleware network:
//
//   - the Virtual Service Repository (VSR) stores every service's
//     interface (as WSDL), location and context (in a UDDI-style
//     registry);
//   - each network's Virtual Service Gateway (VSG) speaks SOAP 1.1 over
//     HTTP to the other gateways and hosts a SOAP endpoint per exported
//     service;
//   - each middleware's Protocol Conversion Manager (PCM) converts
//     between the native protocol and the gateway: its Client Proxy
//     exports local services to the federation and its Server Proxy
//     plants native stand-ins for every remote service, so unmodified
//     legacy clients and services interoperate.
//
// Quick start:
//
//	fed, err := homeconnect.New()
//	if err != nil { ... }
//	defer fed.Close()
//	net, err := fed.AddNetwork("livingroom")
//	if err != nil { ... }
//	err = net.Attach(ctx, jinipcm.New(lookupAddr))
//	...
//	result, err := fed.Call(ctx, "jini:lamp-1", "On")
//
// The repository is an active component: gateways watch its change
// journal, so service registrations, moves and expiries propagate to
// every resolution cache in milliseconds instead of waiting out a TTL;
// Federation.Health surfaces each gateway's watch and refresh condition.
//
// The concrete PCMs live in internal/bridge; the middleware simulations
// they convert (Jini, HAVi on IEEE 1394, X10 behind a CM11A, SMTP/POP3
// mail, UPnP) live in their own internal packages. See README.md for a
// tour and DESIGN.md for the full inventory and experiment index.
package homeconnect

import (
	"homeconnect/internal/core"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// Federation is a running instance of the framework: one Virtual Service
// Repository plus any number of middleware networks.
type Federation = core.Federation

// Network is one middleware network: a Virtual Service Gateway plus its
// attached Protocol Conversion Managers.
type Network = core.Network

// New starts a federation with its own repository.
func New() (*Federation, error) { return core.NewFederation() }

// NewHomeFederation starts a federation named as one home of a wider
// multi-home deployment. Peer it with other homes' PeerURL endpoints and
// their exported services become callable here under home-scoped IDs:
//
//	away, _ := homeconnect.NewHomeFederation("apartment")
//	_ = away.Peer(cottagePeerURL)
//	result, _ := away.Call(ctx, "cottage/havi:dvcam-cam1", "Status")
//
// See DESIGN.md §11 for ID scoping, replication and policy semantics.
func NewHomeFederation(home string) (*Federation, error) {
	return core.NewHomeFederation(home)
}

// Inter-home federation re-exports (see internal/core/peer).
type (
	// PeerPolicy is a home's export policy: allow/deny service-ID
	// patterns with event-topic matching semantics ("havi:*"). Deny
	// wins; an empty allow list admits everything.
	PeerPolicy = peer.Policy
	// PeerStatus is one replication link's condition, keyed by peer URL
	// in Federation.PeerStatus. Its Proto field names the wire protocol
	// the link rides: "binary" once the session-keyed fast path has been
	// negotiated, "soap" otherwise.
	PeerStatus = peer.Status
)

// Wire-mode re-exports (see internal/transport and DESIGN.md §16).
// Framework-owned endpoints of identity-bearing homes negotiate a
// compact binary framing under HMAC session keys; SOAP/HTTP remains the
// ingress and interop wire, byte-identical to earlier releases.
type (
	// WireStats maps each dialed authority to its link's wire-protocol
	// state; reachable via Federation.WireStats and the /health face.
	WireStats = transport.WireStats
	// LinkStats is one authority's entry in WireStats: negotiated
	// protocol, session age, and handshake/rekey/downgrade counts.
	LinkStats = transport.LinkStats
)

// Identity and authorization re-exports (see internal/core/identity and
// docs/security.md). A federation without an identity runs open — the
// paper's home-network trust model; with one installed
// (Federation.SetIdentity), every wire operation crossing the home
// boundary is signed and verified, only homes recorded via TrustHome may
// peer or call, and the ServiceACL refines what each of them may reach:
//
//	id, _ := homeconnect.GenerateIdentity("cottage")
//	cottage, _ := homeconnect.NewHomeFederation("cottage")
//	_ = cottage.SetIdentity(id)
//	_ = cottage.TrustHome("apartment", apartmentPublicKey)
//	cottage.SetServiceACL(homeconnect.ServiceACL{
//		Deny: []homeconnect.ACLRule{{Caller: "*", Service: "x10:*"}},
//	})
type (
	// Identity is one home's durable keypair; its PublicKey is the token
	// other homes trust.
	Identity = identity.Identity
	// ServiceACL is the per-service access-control list enforced against
	// authenticated callers from other homes (deny wins; an empty allow
	// list admits).
	ServiceACL = identity.ACL
	// ACLRule is one ServiceACL entry: caller-home and service-ID
	// patterns with event-topic matching semantics.
	ACLRule = identity.Rule
)

var (
	// GenerateIdentity creates a fresh identity for the named home.
	GenerateIdentity = identity.Generate
	// LoadIdentity reads an identity file written by Identity.Save.
	LoadIdentity = identity.Load
)

// Scene-engine re-exports: declarative cross-middleware compositions (the
// paper's §2 automatic-recording scenario as data, not code). Load scenes
// into a federation with fed.Scenes().LoadXML or .Load; see
// internal/core/scene and DESIGN.md for the model and XML schema.
type (
	// Scene is one declarative composition: triggers + guards + steps.
	Scene = scene.Scene
	// SceneTrigger fires scene runs (event match or interval schedule).
	SceneTrigger = scene.Trigger
	// SceneGuard is one comparison over trigger payloads or step results.
	SceneGuard = scene.Guard
	// SceneStep is one action: a federation call, an event publication,
	// or a sleep.
	SceneStep = scene.Step
	// SceneEngine loads, arms and executes scenes.
	SceneEngine = scene.Engine
	// SceneRecord is the account of one scene run.
	SceneRecord = scene.Record
	// SceneStatus is one scene's run-history view.
	SceneStatus = scene.Status
)

// EncodeScenes renders scenes as their canonical XML document.
var EncodeScenes = scene.Encode

// DecodeScenes parses and validates a scene XML document.
var DecodeScenes = scene.Decode

// Service model re-exports: the middleware-neutral types every PCM
// converts to and from.
type (
	// Value is a dynamically typed service argument or result.
	Value = service.Value
	// Kind identifies a Value's wire type.
	Kind = service.Kind
	// Parameter is a named, typed operation input.
	Parameter = service.Parameter
	// Operation is one callable operation of an interface.
	Operation = service.Operation
	// Interface is a named set of operations.
	Interface = service.Interface
	// Description advertises one service to the federation.
	Description = service.Description
	// Invoker is the uniform calling convention for all proxies.
	Invoker = service.Invoker
	// InvokerFunc adapts a function to Invoker.
	InvokerFunc = service.InvokerFunc
	// Event is a middleware-neutral asynchronous notification.
	Event = service.Event
)

// Value kinds.
const (
	KindVoid   = service.KindVoid
	KindString = service.KindString
	KindInt    = service.KindInt
	KindFloat  = service.KindFloat
	KindBool   = service.KindBool
	KindBytes  = service.KindBytes
)

// Value constructors.
var (
	// Void returns the void value.
	Void = service.Void
	// String returns a string value.
	String = service.StringValue
	// Int returns an integer value.
	Int = service.IntValue
	// Float returns a floating-point value.
	Float = service.FloatValue
	// Bool returns a boolean value.
	Bool = service.BoolValue
	// Bytes returns a binary value.
	Bytes = service.BytesValue
)

// Well-known errors, testable with errors.Is across middleware and
// gateway boundaries.
var (
	// ErrNoSuchService reports an unknown federation service ID.
	ErrNoSuchService = service.ErrNoSuchService
	// ErrNoSuchOperation reports an operation outside the interface.
	ErrNoSuchOperation = service.ErrNoSuchOperation
	// ErrBadArgument reports an arity or type mismatch.
	ErrBadArgument = service.ErrBadArgument
	// ErrUnavailable reports a reachable-in-principle service that cannot
	// currently be called (gateway down, lease lapsed, device detached).
	ErrUnavailable = service.ErrUnavailable
	// ErrUnauthenticated reports a caller without a valid, trusted
	// identity at a home that enforces authentication.
	ErrUnauthenticated = service.ErrUnauthenticated
	// ErrForbidden reports an authenticated caller refused by a home's
	// export policy or service ACL.
	ErrForbidden = service.ErrForbidden
)
