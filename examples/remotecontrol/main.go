// Universal Remote Controller — the application of the paper's Figure 5.
// An X10 hand-held remote controls not only X10 devices but also a Jini
// Laserdisc player and a HAVi DV camera, because the X10 PCM maps remote
// keys to remote federation services. "We could develop this application
// without any difficulties since VSGs and PCMs hide the differentiation
// between these middleware" (§4.2).
//
//	go run ./examples/remotecontrol
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"homeconnect/internal/sim"
	"homeconnect/internal/x10"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fmt.Println("bringing up the simulated home (Jini + X10 + HAVi + mail)...")
	home, err := sim.NewHome(ctx, sim.Prototype())
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	if err := home.WaitForServices(ctx, 7); err != nil {
		log.Fatal(err)
	}
	ids, _ := home.ServiceIDs(ctx)
	fmt.Printf("federation services: %v\n\n", ids)

	press := func(unit x10.UnitCode, fn x10.Function, what string) {
		fmt.Printf("remote: press key %d %v  (%s)\n", unit, fn, what)
		if err := home.Remote.Press(unit, fn); err != nil {
			log.Fatal(err)
		}
	}
	waitState := func(what string, cond func() bool) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting: %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("        → %s\n", what)
	}

	// Key 1: a plain X10 lamp — native X10, no conversion.
	press(sim.LampAddr.Unit, x10.On, "the X10 lamp itself")
	waitState("x10 lamp is on", func() bool { return home.Lamp.On() })

	// Key 2: the Jini Laserdisc — X10 → SOAP → Jini conversion.
	press(sim.RemoteLaserdiscUnit, x10.On, "bound to jini:laserdisc-1 Play")
	waitState("laserdisc is playing", func() bool { return home.Laserdisc.State() == "playing" })

	// Key 3: the HAVi DV camera — X10 → SOAP → HAVi conversion.
	press(sim.RemoteCameraUnit, x10.On, "bound to havi:dvcam-cam1 StartCapture")
	waitState("camera is capturing", func() bool { return home.Camera.State() == "capturing" })

	// And everything off again.
	press(sim.RemoteCameraUnit, x10.Off, "stop the camera")
	waitState("camera stopped", func() bool { return home.Camera.State() == "stopped" })
	press(sim.RemoteLaserdiscUnit, x10.Off, "stop the laserdisc")
	waitState("laserdisc stopped", func() bool { return home.Laserdisc.State() == "stopped" })
	press(sim.LampAddr.Unit, x10.Off, "lamp off")
	waitState("x10 lamp is off", func() bool { return !home.Lamp.On() })

	fmt.Println("\none remote, three middleware — universal remote controller complete")
}
