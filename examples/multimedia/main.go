// Event-based multimedia system — the §4.2 experiment that exposed
// HTTP's weakness at asynchronous notification: "we have tried to develop
// the event-based multimedia system, which manages multimedia streams and
// send multimedia data to appropriate I/O devices, with X10 motion
// sensors and HAVi and Jini AV systems."
//
// Here the event gateway extension closes that gap: an X10 motion sensor
// publishes motion events on its network's hub; a coordinator subscribed
// by push reacts by routing a DV stream from the HAVi camera to the HAVi
// display over a real isochronous connection, and tears it down when the
// motion clears.
//
//	go run ./examples/multimedia
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"homeconnect"
	"homeconnect/internal/core/events"
	"homeconnect/internal/havi"
	"homeconnect/internal/sim"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	home, err := sim.NewHome(ctx, sim.Prototype())
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	if err := home.WaitForServices(ctx, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Println("home is up; motion sensor at", sim.MotionAddr)

	// The coordinator subscribes to motion events by push — the
	// asynchronous channel plain HTTP request/response lacked in 2002.
	x10Hub := home.Fed.Network("x10-net").Gateway().EventsURL()
	client := &events.Client{BaseURL: x10Hub}

	var mu sync.Mutex
	var conn *havi.Connection
	startStream := func() {
		mu.Lock()
		defer mu.Unlock()
		if conn != nil {
			return
		}
		c, err := home.TVDevice.ConnectStream(ctx, home.Camera.SEID(), home.Display.SEID(), 0)
		if err != nil {
			log.Printf("stream setup failed: %v", err)
			return
		}
		conn = c
		fmt.Printf("stream: camera → display on iso channel %d (bandwidth %d)\n",
			c.Channel().Number(), c.Channel().Bandwidth())
	}
	stopStream := func() {
		mu.Lock()
		defer mu.Unlock()
		if conn == nil {
			return
		}
		_ = conn.Close(ctx)
		conn = nil
		fmt.Println("stream: closed, bandwidth released")
	}

	recv, err := events.NewPushReceiver(func(ev homeconnect.Event) {
		on := ev.Payload["on"].Bool()
		fmt.Printf("event: %s %s on=%v\n", ev.Source, ev.Topic, on)
		if on {
			startStream()
		} else {
			stopStream()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	sid, err := client.Subscribe(ctx, recv.URL(), "motion")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = client.Unsubscribe(ctx, sid) }()
	fmt.Println("coordinator subscribed to motion events (push)")

	// Someone walks past the sensor.
	if err := home.Motion.Trigger(); err != nil {
		log.Fatal(err)
	}
	waitFor("display rendering frames", func() bool { return home.Display.Frames() > 0 })
	fmt.Printf("display has rendered %d frames\n", home.Display.Frames())

	// The hallway empties again.
	if err := home.Motion.Clear(); err != nil {
		log.Fatal(err)
	}
	waitFor("stream torn down", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return conn == nil
	})
	if home.Camera.State() != havi.StateStopped {
		log.Fatalf("camera still %s after teardown", home.Camera.State())
	}
	fmt.Println("event-based multimedia system complete")
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting: %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
