// Quickstart: the smallest useful federation. A Jini network (lookup
// service + a lamp service) and an X10 network (powerline + CM11A +
// a wall switch module) are connected through the framework; then a
// federation client controls both lamps transparently, and a plain Jini
// client controls the X10 module too, through the server proxy the Jini
// PCM planted in the lookup service. Run it:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"homeconnect"
	"homeconnect/internal/bridge/jinipcm"
	"homeconnect/internal/bridge/x10pcm"
	"homeconnect/internal/jini"
	"homeconnect/internal/x10"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- The Jini network: a lookup service and a lamp service. -------
	lookup := jini.NewLookupService()
	must(lookup.Start("127.0.0.1:0"))
	defer lookup.Close()
	exporter := jini.NewExporter()
	must(exporter.Start("127.0.0.1:0"))
	defer exporter.Close()

	lampSpec := jini.InterfaceSpec{Name: "Lamp", Methods: []jini.MethodSpec{
		{Name: "On"}, {Name: "Off"}, {Name: "IsOn", Return: "bool"},
	}}
	var jiniLampOn bool
	proxy := exporter.Export(lampSpec, jini.InvocableFunc(func(method string, _ []any) (any, error) {
		switch method {
		case "On":
			jiniLampOn = true
			return nil, nil
		case "Off":
			jiniLampOn = false
			return nil, nil
		case "IsOn":
			return jiniLampOn, nil
		}
		return nil, jini.ErrNoSuchMethod
	}))
	reg, err := jini.Discover(ctx, lookup.Addr())
	must(err)
	_, err = reg.Register(ctx, jini.ServiceItem{
		Proxy: proxy,
		Attrs: []jini.Entry{{Name: jinipcm.EntryName, Value: "desklamp"}},
	}, time.Minute)
	must(err)
	fmt.Println("jini: lamp service registered in the lookup service")

	// --- The X10 network: powerline, CM11A, one wall module. ----------
	line := x10.NewPowerline()
	pcPort, devPort := x10.NewLink()
	cm11a := x10.NewCM11A(line, devPort)
	defer cm11a.Close()
	controller := x10.NewController(pcPort)
	defer controller.Close()
	wall := x10.NewApplianceModule(line, x10.Address{House: 'B', Unit: 1})
	defer wall.Close()
	fmt.Println("x10: CM11A attached to the powerline")

	// --- The framework: one federation, two networks, two PCMs. -------
	fed, err := homeconnect.New()
	must(err)
	defer fed.Close()

	jiniNet, err := fed.AddNetwork("jini-net")
	must(err)
	must(jiniNet.Attach(ctx, jinipcm.New(lookup.Addr())))

	x10Net, err := fed.AddNetwork("x10-net")
	must(err)
	must(x10Net.Attach(ctx, x10pcm.New(x10pcm.Config{
		Controller: controller,
		Devices: []x10pcm.DeviceConfig{
			{Name: "wall-1", Addr: x10.Address{House: 'B', Unit: 1}, Kind: x10pcm.Appliance},
		},
	})))

	// Wait until both services surface in the Virtual Service Repository.
	for {
		services, err := fed.Services(ctx)
		must(err)
		if len(services) >= 2 {
			fmt.Println("vsr: services visible:")
			for _, s := range services {
				fmt.Printf("  %-16s middleware=%-5s interface=%s\n",
					s.Desc.ID, s.Desc.Middleware, s.Desc.Interface.Name)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// --- A federation client controls both, transparently. ------------
	_, err = fed.Call(ctx, "x10:wall-1", "On")
	must(err)
	fmt.Printf("federation → x10:wall-1 On: module is now on=%v\n", wall.On())

	_, err = fed.Call(ctx, "jini:desklamp", "On")
	must(err)
	state, err := fed.Call(ctx, "jini:desklamp", "IsOn")
	must(err)
	fmt.Printf("federation → jini:desklamp On: IsOn=%v\n", state.Bool())

	// --- A legacy Jini client reaches the X10 module natively. --------
	var x10Proxy jini.ProxyDescriptor
	for {
		items, err := reg.Lookup(ctx, jini.ServiceTemplate{IfaceName: "X10Appliance"})
		must(err)
		if len(items) == 1 {
			x10Proxy = items[0].Proxy
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	_, err = jini.Call(ctx, x10Proxy, "Off", nil)
	must(err)
	fmt.Printf("jini client → X10 module Off through the server proxy: on=%v\n", wall.On())

	fmt.Println("quickstart complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
