// Automatic video recording — the motivating scenario of the paper's §2:
// "the service integration of a VCR control service with a TV program
// service on the Internet can provide an automatic video recording
// service that records TV programs according to user profiles on the
// Internet."
//
// Unlike the original hand-coded integration loop, the composition here
// is declarative: two scenes loaded into the federation's scene engine
// from the XML document below.
//
//   - "guide-scan" runs on an interval schedule, asks the Internet
//     TV-guide web service for a program matching the user profile, and —
//     guarded on a non-empty answer — publishes a guide.match event.
//   - "autorecord" triggers on guide.match, guards the genre against the
//     profile, tunes the HAVi VCR, starts recording, and mails the user —
//     one scene whose actions cross the HAVi and mail middleware networks.
//
// Run it with:
//
//	go run ./examples/autorecord
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"homeconnect"
	"homeconnect/internal/sim"
)

// program is one guide entry of the pretend Internet TV guide.
type program struct {
	Title   string
	Channel int64
	Genre   string
}

var guide = []program{
	{Title: "Morning News", Channel: 1, Genre: "news"},
	{Title: "Robot Wrestling", Channel: 7, Genre: "sports"},
	{Title: "Ubiquitous Computing Hour", Channel: 12, Genre: "documentary"},
}

// The user profile lives "on the Internet"; here it is a genre and a
// mailbox, spliced into the scene document below.
const (
	userProfileGenre = "documentary"
	userAddr         = "user@house.example"
)

// sceneXML is the declarative composition. It is data: the same document
// could be stored in the repository, edited by a tool, or loaded by
// `homectl scene run` against a live federation.
const sceneXML = `<?xml version="1.0" encoding="UTF-8"?>
<scenes>
  <scene name="guide-scan" doc="Match the Internet TV guide against the user profile and announce hits.">
    <trigger kind="interval" every="150ms"/>
    <step kind="call" name="title" service="soap:tvguide" op="FindTitle" timeout="5s" retries="2" retrydelay="50ms">
      <arg type="string">` + userProfileGenre + `</arg>
    </step>
    <step kind="call" name="channel" service="soap:tvguide" op="FindChannel" timeout="5s">
      <guard left="${steps.title.result}" op="ne" right=""/>
      <arg type="string">` + userProfileGenre + `</arg>
    </step>
    <step kind="publish" network="mail-net" topic="guide.match" source="soap:tvguide">
      <p name="title" type="string">${steps.title.result}</p>
      <p name="channel" type="int">${steps.channel.result}</p>
      <p name="genre" type="string">` + userProfileGenre + `</p>
    </step>
  </scene>
  <scene name="autorecord" doc="Record a matched program on the HAVi VCR and notify the user by mail.">
    <trigger kind="event" topic="guide.match" network="mail-net"/>
    <guard left="${trigger.payload.genre}" op="eq" right="` + userProfileGenre + `"/>
    <step kind="call" name="tune" service="havi:vcr-vcr1" op="SetChannel" timeout="5s" retries="3" retrydelay="100ms">
      <arg type="int">${trigger.payload.channel}</arg>
    </step>
    <step kind="call" name="record" service="havi:vcr-vcr1" op="Record" timeout="5s"/>
    <step kind="call" name="state" service="havi:vcr-vcr1" op="State" timeout="5s"/>
    <step kind="call" name="notify" service="mail:outbox" op="Send" timeout="5s">
      <arg type="string">` + userAddr + `</arg>
      <arg type="string">recording started: ${trigger.payload.title}</arg>
      <arg type="string">Your ` + userProfileGenre + ` program "${trigger.payload.title}" is being recorded on channel ${trigger.payload.channel} (VCR ${steps.state.result}).</arg>
    </step>
  </scene>
</scenes>
`

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	home, err := sim.NewHome(ctx, sim.Prototype())
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	if err := home.WaitForServices(ctx, 7); err != nil {
		log.Fatal(err)
	}

	// Publish the TV-program guide as a plain SOAP web service on the
	// mail network's gateway — an Internet service needs no PCM, it
	// speaks the VSG protocol natively (§2: a service is also "a network
	// application provided by some servers").
	guideDesc := homeconnect.Description{
		ID:         "soap:tvguide",
		Name:       "TV program guide",
		Middleware: "soap",
		Interface: homeconnect.Interface{
			Name: "TVGuide",
			Operations: []homeconnect.Operation{
				{
					Name:   "FindTitle",
					Inputs: []homeconnect.Parameter{{Name: "genre", Type: homeconnect.KindString}},
					// The matched title, or "" when nothing matches.
					Output: homeconnect.KindString,
				},
				{
					Name:   "FindChannel",
					Inputs: []homeconnect.Parameter{{Name: "genre", Type: homeconnect.KindString}},
					// The matched channel, or 0 when nothing matches.
					Output: homeconnect.KindInt,
				},
			},
		},
	}
	guideImpl := homeconnect.InvokerFunc(func(_ context.Context, op string, args []homeconnect.Value) (homeconnect.Value, error) {
		genre := args[0].Str()
		for _, p := range guide {
			if p.Genre == genre {
				if op == "FindTitle" {
					return homeconnect.String(p.Title), nil
				}
				return homeconnect.Int(p.Channel), nil
			}
		}
		if op == "FindTitle" {
			return homeconnect.String(""), nil
		}
		return homeconnect.Int(0), nil
	})
	gw := home.Fed.Network("mail-net").Gateway()
	if err := gw.Export(ctx, guideDesc, guideImpl); err != nil {
		log.Fatal(err)
	}
	fmt.Println("internet: TV guide published as a SOAP web service")

	// Load and arm the composition. Every call below goes through the
	// federation; the scenes carry no middleware-specific code.
	engine := home.Fed.Scenes()
	names, err := engine.LoadXML([]byte(sceneXML))
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.StartAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenes: loaded and armed %v\n", names)

	// Show the composition actually ran: the notification lands in the
	// user's mailbox.
	deadline := time.Now().Add(15 * time.Second)
	for {
		msgs := home.MailStore.Messages(userAddr)
		if len(msgs) > 0 {
			fmt.Printf("mail: %s received %q\n", userAddr, msgs[0].Subject)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("notification mail never arrived")
		}
		time.Sleep(20 * time.Millisecond)
	}
	state, err := home.Fed.Call(ctx, "havi:vcr-vcr1", "State")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("havi: VCR state=%s\n", state.Str())

	for _, name := range names {
		st, err := engine.Status(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scene %-10s runs=%d completed=%d guarded=%d failed=%d\n",
			st.Name, st.Stats.Runs, st.Stats.Completed, st.Stats.Guarded, st.Stats.Failed)
	}
	fmt.Println("automatic recording service complete")
}
