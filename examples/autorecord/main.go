// Automatic video recording — the motivating scenario of the paper's §2:
// "the service integration of a VCR control service with a TV program
// service on the Internet can provide an automatic video recording
// service that records TV programs according to user profiles on the
// Internet."
//
// A TV-program guide is published as a plain SOAP web service (the
// Internet service); the HAVi VCR is bridged by its PCM; a small
// integration loop matches the user profile against the guide, tunes the
// VCR, starts recording, and mails the user through the mail PCM.
//
//	go run ./examples/autorecord
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"homeconnect"
	"homeconnect/internal/sim"
)

// program is one guide entry of the pretend Internet TV guide.
type program struct {
	Title   string
	Channel int64
	Genre   string
}

var guide = []program{
	{Title: "Morning News", Channel: 1, Genre: "news"},
	{Title: "Robot Wrestling", Channel: 7, Genre: "sports"},
	{Title: "Ubiquitous Computing Hour", Channel: 12, Genre: "documentary"},
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	home, err := sim.NewHome(ctx, sim.Prototype())
	if err != nil {
		log.Fatal(err)
	}
	defer home.Close()
	if err := home.WaitForServices(ctx, 7); err != nil {
		log.Fatal(err)
	}

	// Publish the TV-program guide as a plain SOAP web service on the
	// mail network's gateway — an Internet service needs no PCM, it
	// speaks the VSG protocol natively (§2: a service is also "a network
	// application provided by some servers").
	guideDesc := homeconnect.Description{
		ID:         "soap:tvguide",
		Name:       "TV program guide",
		Middleware: "soap",
		Interface: homeconnect.Interface{
			Name: "TVGuide",
			Operations: []homeconnect.Operation{
				{
					Name:   "FindByGenre",
					Inputs: []homeconnect.Parameter{{Name: "genre", Type: homeconnect.KindString}},
					// "title@channel", or "" when nothing matches.
					Output: homeconnect.KindString,
				},
			},
		},
	}
	guideImpl := homeconnect.InvokerFunc(func(_ context.Context, op string, args []homeconnect.Value) (homeconnect.Value, error) {
		genre := args[0].Str()
		for _, p := range guide {
			if p.Genre == genre {
				return homeconnect.String(fmt.Sprintf("%s@%d", p.Title, p.Channel)), nil
			}
		}
		return homeconnect.String(""), nil
	})
	gw := home.Fed.Network("mail-net").Gateway()
	if err := gw.Export(ctx, guideDesc, guideImpl); err != nil {
		log.Fatal(err)
	}
	fmt.Println("internet: TV guide published as a SOAP web service")

	// The user profile lives "on the Internet" too; here it is a genre.
	const userProfileGenre = "documentary"
	const userAddr = "user@house.example"

	// The integration: guide lookup → tune → record → notify. Every call
	// goes through the federation, no middleware-specific code.
	hit, err := home.Fed.Call(ctx, "soap:tvguide", "FindByGenre", homeconnect.String(userProfileGenre))
	if err != nil {
		log.Fatal(err)
	}
	if hit.Str() == "" {
		log.Fatalf("no %s programs in the guide", userProfileGenre)
	}
	parts := strings.SplitN(hit.Str(), "@", 2)
	title, channelText := parts[0], parts[1]
	fmt.Printf("guide: profile genre %q matched %q on channel %s\n", userProfileGenre, title, channelText)

	if _, err = home.Fed.Call(ctx, "havi:vcr-vcr1", "SetChannel", mustInt(channelText)); err != nil {
		log.Fatal(err)
	}
	if _, err = home.Fed.Call(ctx, "havi:vcr-vcr1", "Record"); err != nil {
		log.Fatal(err)
	}
	state, err := home.Fed.Call(ctx, "havi:vcr-vcr1", "State")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("havi: VCR state=%s channel=%s\n", state.Str(), channelText)

	if _, err = home.Fed.Call(ctx, "mail:outbox", "Send",
		homeconnect.String(userAddr),
		homeconnect.String("recording started: "+title),
		homeconnect.String(fmt.Sprintf("Your %s program %q is being recorded on channel %s.", userProfileGenre, title, channelText)),
	); err != nil {
		log.Fatal(err)
	}

	// Show the notification actually landed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		msgs := home.MailStore.Messages(userAddr)
		if len(msgs) > 0 {
			fmt.Printf("mail: %s received %q\n", userAddr, msgs[0].Subject)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("notification mail never arrived")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("automatic recording service complete")
}

func mustInt(s string) homeconnect.Value {
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		log.Fatalf("bad channel %q: %v", s, err)
	}
	return homeconnect.Int(n)
}
