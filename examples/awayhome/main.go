// Awayhome: reaching home services from outside the home — the wide-area
// scenario the paper motivates but leaves at one residence. Two homes run
// here: a "cottage" with the full HAVi/X10 prototype networks, and an
// "apartment" federation standing in for wherever the user is. The
// apartment peers with the cottage's repository, the cottage's services
// appear under its home scope ("cottage/havi:dvcam-cam1"), and a call
// from the apartment starts the cottage's camera over the ordinary
// gateway wire path. The cottage's export policy keeps its X10 devices
// out of the apartment's repository: they never replicate, so the
// apartment cannot resolve them (visibility control, not call
// authorization — see DESIGN.md §11).
//
//	go run ./examples/awayhome
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"homeconnect"
	"homeconnect/internal/sim"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// --- The cottage: a full simulated home, named for federation. ----
	cottage, err := sim.NewHome(ctx, sim.Config{HAVi: true, X10: true, Home: "cottage"})
	must(err)
	defer cottage.Close()
	must(cottage.WaitForServices(ctx, 5)) // 4 HAVi FCMs + X10 lamp
	fmt.Println("cottage: home built; repository at", cottage.Fed.VSRURL())

	// House rule: appliances may be reached from outside, the powerline
	// devices may not.
	must(cottage.Fed.SetExportPolicy(homeconnect.PeerPolicy{Deny: []string{"x10:*"}}))
	fmt.Println("cottage: export policy set — x10:* stays private")

	// --- The apartment: a bare federation wherever the user is. -------
	apartment, err := homeconnect.NewHomeFederation("apartment")
	must(err)
	defer apartment.Close()
	_, err = apartment.AddNetwork("mobile")
	must(err)

	// Peer with the cottage: one URL is all it takes.
	must(apartment.Peer(cottage.Fed.PeerURL()))
	fmt.Println("apartment: peered with", cottage.Fed.PeerURL())

	// The cottage's exports replicate within one watch round trip.
	for {
		services, err := apartment.Services(ctx)
		must(err)
		if len(services) >= 4 {
			fmt.Println("apartment: cottage services visible:")
			for _, s := range services {
				fmt.Printf("  %-28s middleware=%s\n", s.Desc.ID, s.Desc.Middleware)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Control the cottage's camera from the apartment. -------------
	_, err = apartment.Call(ctx, "cottage/havi:dvcam-cam1", "StartCapture")
	must(err)
	fmt.Printf("apartment → cottage/havi:dvcam-cam1 StartCapture: camera is %s\n",
		cottage.Camera.State())
	_, err = apartment.Call(ctx, "cottage/havi:dvcam-cam1", "StopCapture")
	must(err)
	fmt.Printf("apartment → cottage/havi:dvcam-cam1 StopCapture: camera is %s\n",
		cottage.Camera.State())

	// --- The policy holds: the lamp is not reachable from outside. ----
	if _, err := apartment.Call(ctx, "cottage/x10:lamp-1", "Level"); err != nil {
		fmt.Println("apartment → cottage/x10:lamp-1: denied by export policy ✔")
	} else {
		log.Fatal("x10:lamp-1 leaked through the export policy")
	}

	// --- Peer health, the away-from-home dashboard. -------------------
	for url, st := range apartment.PeerStatus() {
		fmt.Printf("apartment: link %s connected=%v imported=%d cursor=%d\n",
			url, st.Connected, st.Imported, st.Cursor)
	}
	fmt.Println("awayhome complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
