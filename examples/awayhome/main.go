// Awayhome: reaching home services from outside the home — the wide-area
// scenario the paper motivates but leaves at one residence — now with
// the trust boundary a real deployment needs. Three parties run here:
//
//   - a "cottage" with the full HAVi/X10 prototype networks, holding an
//     identity and enforcing authentication;
//   - an "apartment" federation standing in for wherever the user is,
//     trusted by the cottage (and trusting it back);
//   - a "snoop" federation on the same network with its own identity —
//     honest protocol, wrong key — that the cottage never trusted.
//
// The apartment peers with the cottage's repository, the cottage's
// services appear under its home scope ("cottage/havi:dvcam-cam1"), and
// a call from the apartment starts the cottage's camera over the
// ordinary gateway wire path, signed by the apartment's identity. The
// cottage's export policy keeps its X10 devices out of every peer's
// repository, and its service ACL additionally refuses the apartment
// the VCR — deny wins at every layer. The snoop gets nothing: its peer
// link is refused with a typed auth error, its repository never sees a
// cottage service, and even calling a gateway endpoint learned out of
// band yields ErrUnauthenticated (see docs/security.md).
//
//	go run ./examples/awayhome
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"homeconnect"
	"homeconnect/internal/sim"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// --- Identities first: each party is a keypair. --------------------
	cottageID, err := homeconnect.GenerateIdentity("cottage")
	must(err)
	apartmentID, err := homeconnect.GenerateIdentity("apartment")
	must(err)
	snoopID, err := homeconnect.GenerateIdentity("snoop")
	must(err)

	// --- The cottage: a full simulated home, named and authenticated. --
	cottage, err := sim.NewHome(ctx, sim.Config{
		HAVi: true, X10: true, Home: "cottage",
		Identity: cottageID,
		// The cottage trusts the apartment — and nobody else.
		Trusted: map[string]string{"apartment": apartmentID.PublicKey()},
	})
	must(err)
	defer cottage.Close()
	must(cottage.WaitForServices(ctx, 5)) // 4 HAVi FCMs + X10 lamp
	fmt.Println("cottage: home built; repository at", cottage.Fed.VSRURL())

	// House rules: the powerline devices never leave the house (export
	// policy), and even the trusted apartment may not touch the VCR
	// (service ACL).
	must(cottage.Fed.SetExportPolicy(homeconnect.PeerPolicy{Deny: []string{"x10:*"}}))
	cottage.Fed.SetServiceACL(homeconnect.ServiceACL{
		Deny: []homeconnect.ACLRule{{Caller: "*", Service: "havi:vcr-*"}},
	})
	fmt.Println("cottage: x10:* stays private; havi:vcr-* denied to all peers")

	// --- The apartment: a bare federation wherever the user is. -------
	apartment, err := homeconnect.NewHomeFederation("apartment")
	must(err)
	defer apartment.Close()
	must(apartment.SetIdentity(apartmentID))
	must(apartment.TrustHome("cottage", cottageID.PublicKey()))
	_, err = apartment.AddNetwork("mobile")
	must(err)

	// Peer with the cottage: one URL is all it takes.
	must(apartment.Peer(cottage.Fed.PeerURL()))
	fmt.Println("apartment: peered with", cottage.Fed.PeerURL())

	// The cottage's admitted exports replicate within one watch round
	// trip: the HAVi appliances minus the ACL-denied VCR FCM.
	for {
		services, err := apartment.Services(ctx)
		must(err)
		if len(services) >= 3 {
			fmt.Println("apartment: cottage services visible:")
			for _, s := range services {
				fmt.Printf("  %-28s middleware=%s\n", s.Desc.ID, s.Desc.Middleware)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// --- Control the cottage's camera from the apartment. -------------
	_, err = apartment.Call(ctx, "cottage/havi:dvcam-cam1", "StartCapture")
	must(err)
	fmt.Printf("apartment → cottage/havi:dvcam-cam1 StartCapture: camera is %s\n",
		cottage.Camera.State())
	_, err = apartment.Call(ctx, "cottage/havi:dvcam-cam1", "StopCapture")
	must(err)
	fmt.Printf("apartment → cottage/havi:dvcam-cam1 StopCapture: camera is %s\n",
		cottage.Camera.State())

	// --- The export policy holds: the lamp never replicated. ----------
	if _, err := apartment.Call(ctx, "cottage/x10:lamp-1", "Level"); err != nil {
		fmt.Println("apartment → cottage/x10:lamp-1: denied by export policy ✔")
	} else {
		log.Fatal("x10:lamp-1 leaked through the export policy")
	}

	// --- The ACL holds even with the endpoint in hand: calling the VCR
	// at its gateway directly (out-of-band endpoint knowledge, which
	// PR 4 could not stop) now yields a typed Forbidden fault.
	vcr, err := cottage.Find(ctx, "havi:vcr-vcr1")
	must(err)
	gw := apartment.Network("mobile").Gateway()
	if _, err := gw.CallRemote(ctx, vcr, "State", nil); errors.Is(err, homeconnect.ErrForbidden) {
		fmt.Println("apartment → cottage havi:vcr-vcr1 (endpoint known out of band): ErrForbidden ✔")
	} else {
		log.Fatalf("ACL-denied VCR call: got %v, want ErrForbidden", err)
	}

	// --- The snoop: honest wire protocol, untrusted identity. ---------
	snoop, err := homeconnect.NewHomeFederation("snoop")
	must(err)
	defer snoop.Close()
	must(snoop.SetIdentity(snoopID))
	// The snoop even trusts the cottage — trust is not mutual unless
	// both sides record it, and the cottage never recorded the snoop.
	must(snoop.TrustHome("cottage", cottageID.PublicKey()))
	_, err = snoop.AddNetwork("van")
	must(err)
	must(snoop.Peer(cottage.Fed.PeerURL()))

	// The link comes up refused: connected=false with the auth error.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := snoop.PeerStatus()[cottage.Fed.PeerURL()]
		if !st.Connected && st.LastError != "" {
			fmt.Printf("snoop: peer link refused: %s ✔\n", st.LastError)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("snoop link never reported refusal: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if services, _ := snoop.Services(ctx); len(services) > 0 {
		log.Fatalf("snoop sees %d cottage services, want none", len(services))
	}
	fmt.Println("snoop: repository empty — cottage exports never replicated ✔")

	// Out-of-band endpoint knowledge does not help the snoop either.
	cam, err := cottage.Find(ctx, "havi:dvcam-cam1")
	must(err)
	snoopGW := snoop.Network("van").Gateway()
	if _, err := snoopGW.CallRemote(ctx, cam, "StartCapture", nil); errors.Is(err, homeconnect.ErrUnauthenticated) {
		fmt.Println("snoop → cottage camera endpoint: ErrUnauthenticated ✔")
	} else {
		log.Fatalf("snoop direct call: got %v, want ErrUnauthenticated", err)
	}

	// --- Peer health, the away-from-home dashboard. -------------------
	for url, st := range apartment.PeerStatus() {
		fmt.Printf("apartment: link %s connected=%v authenticated=%v imported=%d cursor=%d\n",
			url, st.Connected, st.Authenticated, st.Imported, st.Cursor)
	}
	fmt.Println("awayhome complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
