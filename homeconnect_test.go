package homeconnect_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect"
)

// TestPublicAPI drives the package through its public face only: build a
// federation, export a service on one network, call it from another.
func TestPublicAPI(t *testing.T) {
	fed, err := homeconnect.New()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	kitchen, err := fed.AddNetwork("kitchen")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddNetwork("livingroom"); err != nil {
		t.Fatal(err)
	}

	desc := homeconnect.Description{
		ID:         "demo:thermostat",
		Name:       "thermostat",
		Middleware: "demo",
		Interface: homeconnect.Interface{
			Name: "Thermostat",
			Operations: []homeconnect.Operation{
				{Name: "Set", Inputs: []homeconnect.Parameter{{Name: "celsius", Type: homeconnect.KindFloat}}, Output: homeconnect.KindVoid},
				{Name: "Get", Output: homeconnect.KindFloat},
			},
		},
	}
	var temp float64 = 20
	impl := homeconnect.InvokerFunc(func(_ context.Context, op string, args []homeconnect.Value) (homeconnect.Value, error) {
		switch op {
		case "Set":
			temp = args[0].Float()
			return homeconnect.Void(), nil
		case "Get":
			return homeconnect.Float(temp), nil
		}
		return homeconnect.Value{}, homeconnect.ErrNoSuchOperation
	})
	if err := kitchen.Gateway().Export(ctx, desc, impl); err != nil {
		t.Fatal(err)
	}

	// Call through the other network's gateway.
	gw := fed.Network("livingroom").Gateway()
	if _, err := gw.Call(ctx, "demo:thermostat", "Set", []homeconnect.Value{homeconnect.Float(22.5)}); err != nil {
		t.Fatal(err)
	}
	got, err := fed.Call(ctx, "demo:thermostat", "Get")
	if err != nil || got.Float() != 22.5 {
		t.Fatalf("Get = %v, %v", got, err)
	}

	// Error identities survive the public boundary.
	if _, err := fed.Call(ctx, "demo:thermostat", "Explode"); !errors.Is(err, homeconnect.ErrNoSuchOperation) {
		t.Errorf("unknown op: %v", err)
	}
	if _, err := fed.Call(ctx, "demo:ghost", "Get"); !errors.Is(err, homeconnect.ErrNoSuchService) {
		t.Errorf("unknown service: %v", err)
	}
	if _, err := fed.Call(ctx, "demo:thermostat", "Set", homeconnect.String("hot")); !errors.Is(err, homeconnect.ErrBadArgument) {
		t.Errorf("bad arg: %v", err)
	}
}

func TestValueConstructors(t *testing.T) {
	if homeconnect.String("x").Str() != "x" {
		t.Error("String")
	}
	if homeconnect.Int(4).Int() != 4 {
		t.Error("Int")
	}
	if homeconnect.Float(0.5).Float() != 0.5 {
		t.Error("Float")
	}
	if !homeconnect.Bool(true).Bool() {
		t.Error("Bool")
	}
	if got := homeconnect.Bytes([]byte{1}).Bytes(); len(got) != 1 || got[0] != 1 {
		t.Error("Bytes")
	}
	if !homeconnect.Void().IsVoid() {
		t.Error("Void")
	}
	if homeconnect.String("x").Kind() != homeconnect.KindString {
		t.Error("Kind")
	}
}
