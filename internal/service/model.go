package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Parameter is a named, typed operation input.
type Parameter struct {
	Name string
	Type Kind
}

// Operation is one callable operation of a service interface.
type Operation struct {
	Name   string
	Doc    string
	Inputs []Parameter
	Output Kind // KindVoid for operations that return nothing
}

// Validate checks the operation for structural problems.
func (o Operation) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("service: operation with empty name: %w", ErrBadInterface)
	}
	if !o.Output.Valid() {
		return fmt.Errorf("service: operation %s: invalid output kind: %w", o.Name, ErrBadInterface)
	}
	seen := make(map[string]bool, len(o.Inputs))
	for _, p := range o.Inputs {
		if p.Name == "" {
			return fmt.Errorf("service: operation %s: parameter with empty name: %w", o.Name, ErrBadInterface)
		}
		if !p.Type.Valid() || p.Type == KindVoid {
			return fmt.Errorf("service: operation %s: parameter %s has invalid type: %w", o.Name, p.Name, ErrBadInterface)
		}
		if seen[p.Name] {
			return fmt.Errorf("service: operation %s: duplicate parameter %s: %w", o.Name, p.Name, ErrBadInterface)
		}
		seen[p.Name] = true
	}
	return nil
}

// Signature renders the operation as a human-readable signature, e.g.
// "SetChannel(channel int) void".
func (o Operation) Signature() string {
	var b strings.Builder
	b.WriteString(o.Name)
	b.WriteByte('(')
	for i, p := range o.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
		b.WriteByte(' ')
		b.WriteString(p.Type.String())
	}
	b.WriteString(") ")
	b.WriteString(o.Output.String())
	return b.String()
}

// Interface is a named set of operations — the unit described by WSDL in
// the paper's prototype and advertised through the Virtual Service
// Repository.
type Interface struct {
	Name       string
	Doc        string
	Operations []Operation
}

// Validate checks the interface and all of its operations.
func (it Interface) Validate() error {
	if it.Name == "" {
		return fmt.Errorf("service: interface with empty name: %w", ErrBadInterface)
	}
	seen := make(map[string]bool, len(it.Operations))
	for _, op := range it.Operations {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("service: interface %s: %w", it.Name, err)
		}
		if seen[op.Name] {
			return fmt.Errorf("service: interface %s: duplicate operation %s: %w", it.Name, op.Name, ErrBadInterface)
		}
		seen[op.Name] = true
	}
	return nil
}

// Operation returns the named operation.
func (it Interface) Operation(name string) (Operation, bool) {
	for _, op := range it.Operations {
		if op.Name == name {
			return op, true
		}
	}
	return Operation{}, false
}

// Equal reports whether two interfaces describe the same operations
// (order-insensitive).
func (it Interface) Equal(o Interface) bool {
	if it.Name != o.Name || len(it.Operations) != len(o.Operations) {
		return false
	}
	a := append([]Operation(nil), it.Operations...)
	b := append([]Operation(nil), o.Operations...)
	sort.Slice(a, func(i, j int) bool { return a[i].Name < a[j].Name })
	sort.Slice(b, func(i, j int) bool { return b[i].Name < b[j].Name })
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Output != b[i].Output || len(a[i].Inputs) != len(b[i].Inputs) {
			return false
		}
		for j := range a[i].Inputs {
			if a[i].Inputs[j] != b[i].Inputs[j] {
				return false
			}
		}
	}
	return true
}

// Context keys set by the framework on service descriptions.
const (
	// CtxImported marks a description that a Protocol Conversion Manager
	// created inside a local middleware on behalf of a remote service (a
	// Server Proxy). PCM exporters must skip such services to avoid
	// re-exporting them in a loop.
	CtxImported = "homeconnect.imported"
	// CtxOrigin records the globally unique ID of the original service a
	// Server Proxy stands in for.
	CtxOrigin = "homeconnect.origin"
	// CtxNetwork records the name of the middleware network (the VSG) that
	// exported the service.
	CtxNetwork = "homeconnect.network"
	// CtxHome records the name of the home whose federation exported the
	// service. Peering endpoints stamp it so importers know which scope to
	// file a remote service under (see ScopeID).
	CtxHome = "homeconnect.home"
	// CtxPeerOrigin marks a repository entry that an inter-home peering
	// link imported from another home and names that home. Peering
	// endpoints refuse to re-export such entries, keeping federation
	// one-hop (no transitive replication loops).
	CtxPeerOrigin = "homeconnect.peer.origin"
)

// Description advertises one service to the federation: identity, the
// middleware it natively lives on, its interface, and free-form context
// attributes (locations, capabilities) as stored by the Virtual Service
// Repository.
type Description struct {
	// ID is the federation-wide identifier, by convention
	// "<middleware>:<local name>", e.g. "jini:laserdisc-1".
	ID string
	// Name is the human-readable display name.
	Name string
	// Middleware names the native middleware: "jini", "havi", "x10",
	// "mail", "upnp", "soap".
	Middleware string
	// Interface describes the callable operations.
	Interface Interface
	// Context carries attribute metadata (service contexts in the paper's
	// VSR terminology).
	Context map[string]string
}

// Validate checks the description.
func (d Description) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("service: description with empty ID: %w", ErrBadDescription)
	}
	if d.Middleware == "" {
		return fmt.Errorf("service: description %s: empty middleware: %w", d.ID, ErrBadDescription)
	}
	if err := d.Interface.Validate(); err != nil {
		return fmt.Errorf("service: description %s: %w", d.ID, err)
	}
	return nil
}

// Imported reports whether the description is a Server Proxy stand-in
// created by a PCM (see CtxImported).
func (d Description) Imported() bool {
	return d.Context[CtxImported] == "true"
}

// Clone returns a deep copy of the description.
func (d Description) Clone() Description {
	cp := d
	cp.Interface.Operations = append([]Operation(nil), d.Interface.Operations...)
	for i := range cp.Interface.Operations {
		cp.Interface.Operations[i].Inputs = append([]Parameter(nil), d.Interface.Operations[i].Inputs...)
	}
	if d.Context != nil {
		cp.Context = make(map[string]string, len(d.Context))
		for k, v := range d.Context {
			cp.Context[k] = v
		}
	}
	return cp
}

// Invoker is the uniform calling convention of the framework. Every proxy —
// client proxies wrapping native middleware clients, server proxies
// wrapping remote SOAP calls — implements Invoker.
type Invoker interface {
	// Invoke calls the named operation with positional arguments matching
	// the operation's declared inputs and returns its result (Void for
	// void operations).
	Invoke(ctx context.Context, op string, args []Value) (Value, error)
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(ctx context.Context, op string, args []Value) (Value, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(ctx context.Context, op string, args []Value) (Value, error) {
	return f(ctx, op, args)
}

var _ Invoker = (InvokerFunc)(nil)

// ValidateArgs checks positional args against the operation signature and
// returns a descriptive error on arity or type mismatch.
func ValidateArgs(op Operation, args []Value) error {
	if len(args) != len(op.Inputs) {
		return fmt.Errorf("service: %s: got %d args, want %d: %w", op.Name, len(args), len(op.Inputs), ErrBadArgument)
	}
	for i, p := range op.Inputs {
		if args[i].Kind() != p.Type {
			return fmt.Errorf("service: %s: arg %s is %v, want %v: %w", op.Name, p.Name, args[i].Kind(), p.Type, ErrBadArgument)
		}
	}
	return nil
}

// CoerceArgs converts text-form arguments into typed Values per the
// operation signature. It is used by CLI front ends and the mail PCM,
// where arguments arrive as strings.
func CoerceArgs(op Operation, texts []string) ([]Value, error) {
	if len(texts) != len(op.Inputs) {
		return nil, fmt.Errorf("service: %s: got %d args, want %d: %w", op.Name, len(texts), len(op.Inputs), ErrBadArgument)
	}
	args := make([]Value, len(texts))
	for i, p := range op.Inputs {
		v, err := ParseText(p.Type, texts[i])
		if err != nil {
			return nil, fmt.Errorf("service: %s: arg %s: %w", op.Name, p.Name, err)
		}
		args[i] = v
	}
	return args, nil
}
