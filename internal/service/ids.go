// Home-scoped service identifiers. Within one home, federation IDs
// follow the "<middleware>:<local name>" convention. When homes federate
// (internal/core/peer), a service imported from another home gains a
// scope prefix — "home-a/jini:laserdisc-1" — so the flat per-home ID
// space becomes a two-level one without touching the paper's single-home
// conventions: unscoped IDs keep meaning "this home". Gateways strip
// their own home's scope on inbound calls, so authorization decisions
// (export policy and service ACLs, internal/core/identity) always see
// the unscoped local ID — ACL patterns are written against
// "havi:vcr-*", never against a scoped spelling.
package service

import "strings"

// ScopeSep separates the home scope from the local service ID in a
// scoped identifier. Local IDs never contain it: middleware prefixes use
// ':' and local names are middleware identifiers.
const ScopeSep = "/"

// ScopeID prefixes a local service ID with a home scope. An empty home
// returns the ID unchanged, so callers can apply it unconditionally.
func ScopeID(home, id string) string {
	if home == "" {
		return id
	}
	return home + ScopeSep + id
}

// SplitScopedID splits a possibly home-scoped service ID into its home
// scope and local ID. ok is false for unscoped IDs (no separator, or an
// empty scope or local part), in which case local is the input unchanged.
func SplitScopedID(id string) (home, local string, ok bool) {
	i := strings.Index(id, ScopeSep)
	if i <= 0 || i == len(id)-1 {
		return "", id, false
	}
	return id[:i], id[i+1:], true
}
