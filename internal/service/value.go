// Package service defines the middleware-neutral service model shared by
// every component of the framework: typed values, operation signatures,
// service interfaces, service descriptions, and the Invoker abstraction
// through which any service — local or remote, on any middleware — is
// called.
//
// The model deliberately mirrors the information carried by the paper's
// WSDL descriptions: an interface is a named set of operations, each with
// typed input parameters and a typed result. Protocol Conversion Managers
// translate between this model and each middleware's native representation.
package service

import (
	"fmt"
	"strconv"
)

// Kind identifies the wire type of a Value. The set matches the XSD types
// used by the SOAP/WSDL prototype in the paper (§4.1): string, int, double,
// boolean, base64Binary, plus void for operations with no result.
type Kind int

// Supported value kinds. KindInvalid is the zero value so that an
// uninitialized Kind is never mistaken for a real type.
const (
	KindInvalid Kind = iota
	KindVoid
	KindString
	KindInt
	KindFloat
	KindBool
	KindBytes
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid",
	KindVoid:    "void",
	KindString:  "string",
	KindInt:     "int",
	KindFloat:   "float",
	KindBool:    "bool",
	KindBytes:   "bytes",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is one of the defined kinds (excluding
// KindInvalid).
func (k Kind) Valid() bool {
	return k > KindInvalid && k <= KindBytes
}

// KindFromString parses the name produced by Kind.String. It returns
// KindInvalid for unknown names.
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s && k != KindInvalid {
			return k
		}
	}
	return KindInvalid
}

// Value is a dynamically typed value exchanged between middleware. The zero
// Value has KindInvalid; use the constructors below. Values are immutable
// by convention: accessors return copies of mutable state.
type Value struct {
	kind  Kind
	str   string
	num   int64
	real  float64
	truth bool
	blob  []byte
}

// Void returns the void value, used as the result of operations that return
// nothing.
func Void() Value { return Value{kind: KindVoid} }

// String returns a string value.
func StringValue(s string) Value { return Value{kind: KindString, str: s} }

// IntValue returns an integer value.
func IntValue(n int64) Value { return Value{kind: KindInt, num: n} }

// FloatValue returns a floating-point value.
func FloatValue(f float64) Value { return Value{kind: KindFloat, real: f} }

// BoolValue returns a boolean value.
func BoolValue(b bool) Value { return Value{kind: KindBool, truth: b} }

// BytesValue returns a binary value. The slice is copied.
func BytesValue(b []byte) Value {
	cp := make([]byte, len(b))
	copy(cp, b)
	return Value{kind: KindBytes, blob: cp}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// PayloadLen returns the byte length of the value's variable-size payload
// (string or bytes); fixed-size kinds report 0. It lets size-bounding
// paths estimate wire cost without copying the blob.
func (v Value) PayloadLen() int {
	switch v.kind {
	case KindString:
		return len(v.str)
	case KindBytes:
		return len(v.blob)
	}
	return 0
}

// IsVoid reports whether the value is the void value.
func (v Value) IsVoid() bool { return v.kind == KindVoid }

// Str returns the string payload. It is valid only for KindString values;
// other kinds return the empty string.
func (v Value) Str() string { return v.str }

// Int returns the integer payload (KindInt only).
func (v Value) Int() int64 { return v.num }

// Float returns the floating-point payload (KindFloat only).
func (v Value) Float() float64 { return v.real }

// Bool returns the boolean payload (KindBool only).
func (v Value) Bool() bool { return v.truth }

// Bytes returns a copy of the binary payload (KindBytes only).
func (v Value) Bytes() []byte {
	cp := make([]byte, len(v.blob))
	copy(cp, v.blob)
	return cp
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindInt:
		return v.num == o.num
	case KindFloat:
		return v.real == o.real
	case KindBool:
		return v.truth == o.truth
	case KindBytes:
		if len(v.blob) != len(o.blob) {
			return false
		}
		for i := range v.blob {
			if v.blob[i] != o.blob[i] {
				return false
			}
		}
		return true
	default:
		return true // void == void, invalid == invalid
	}
}

// String renders the value for logs and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindVoid:
		return "void"
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.real, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.truth)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.blob))
	default:
		return "invalid"
	}
}

// Text encodes the payload as the text form used on the wire (SOAP element
// character data, mail bodies, CLI output). Bytes are hex encoded by the
// caller-facing codecs; here they round-trip through Latin-1-free hex.
func (v Value) Text() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.real, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.truth)
	case KindBytes:
		const hexdigits = "0123456789abcdef"
		out := make([]byte, 0, len(v.blob)*2)
		for _, b := range v.blob {
			out = append(out, hexdigits[b>>4], hexdigits[b&0x0f])
		}
		return string(out)
	default:
		return ""
	}
}

// ParseText decodes the text form produced by Text into a value of the
// given kind.
func ParseText(k Kind, text string) (Value, error) {
	switch k {
	case KindVoid:
		return Void(), nil
	case KindString:
		return StringValue(text), nil
	case KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("service: parse int %q: %w", text, err)
		}
		return IntValue(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("service: parse float %q: %w", text, err)
		}
		return FloatValue(f), nil
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("service: parse bool %q: %w", text, err)
		}
		return BoolValue(b), nil
	case KindBytes:
		if len(text)%2 != 0 {
			return Value{}, fmt.Errorf("service: parse bytes: odd hex length %d", len(text))
		}
		out := make([]byte, len(text)/2)
		for i := 0; i < len(out); i++ {
			hi, ok1 := unhex(text[2*i])
			lo, ok2 := unhex(text[2*i+1])
			if !ok1 || !ok2 {
				return Value{}, fmt.Errorf("service: parse bytes: bad hex at %d", 2*i)
			}
			out[i] = hi<<4 | lo
		}
		return Value{kind: KindBytes, blob: out}, nil
	default:
		return Value{}, fmt.Errorf("service: parse: %w: %v", ErrBadKind, k)
	}
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// FromGo converts a native Go value (as used by the middleware simulators'
// dynamically typed invocation paths) into a Value. Supported inputs:
// nil, string, int, int32, int64, float32, float64, bool, []byte.
func FromGo(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Void(), nil
	case string:
		return StringValue(t), nil
	case int:
		return IntValue(int64(t)), nil
	case int32:
		return IntValue(int64(t)), nil
	case int64:
		return IntValue(t), nil
	case float32:
		return FloatValue(float64(t)), nil
	case float64:
		return FloatValue(t), nil
	case bool:
		return BoolValue(t), nil
	case []byte:
		return BytesValue(t), nil
	default:
		return Value{}, fmt.Errorf("service: cannot convert %T to Value", x)
	}
}

// ToGo converts a Value to the native Go representation used by the
// middleware simulators: void becomes nil, bytes become []byte, and the
// scalar kinds map to string/int64/float64/bool.
func (v Value) ToGo() any {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return v.num
	case KindFloat:
		return v.real
	case KindBool:
		return v.truth
	case KindBytes:
		return v.Bytes()
	default:
		return nil
	}
}
