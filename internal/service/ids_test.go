package service

import "testing"

func TestScopeID(t *testing.T) {
	cases := []struct {
		home, id, want string
	}{
		{"", "jini:laserdisc-1", "jini:laserdisc-1"},
		{"home-a", "jini:laserdisc-1", "home-a/jini:laserdisc-1"},
		{"home-a", "havi:dvcam-cam1", "home-a/havi:dvcam-cam1"},
	}
	for _, c := range cases {
		if got := ScopeID(c.home, c.id); got != c.want {
			t.Errorf("ScopeID(%q, %q) = %q, want %q", c.home, c.id, got, c.want)
		}
	}
}

func TestSplitScopedID(t *testing.T) {
	cases := []struct {
		id, home, local string
		ok              bool
	}{
		{"home-a/jini:laserdisc-1", "home-a", "jini:laserdisc-1", true},
		{"jini:laserdisc-1", "", "jini:laserdisc-1", false},
		{"/jini:laserdisc-1", "", "/jini:laserdisc-1", false},
		{"home-a/", "", "home-a/", false},
		{"", "", "", false},
		// Only the first separator scopes; the rest is the local ID even
		// if it happens to contain another separator.
		{"home-a/x/y", "home-a", "x/y", true},
	}
	for _, c := range cases {
		home, local, ok := SplitScopedID(c.id)
		if home != c.home || local != c.local || ok != c.ok {
			t.Errorf("SplitScopedID(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.id, home, local, ok, c.home, c.local, c.ok)
		}
	}
}

func TestScopeRoundTrip(t *testing.T) {
	home, local, ok := SplitScopedID(ScopeID("home-b", "x10:lamp-1"))
	if !ok || home != "home-b" || local != "x10:lamp-1" {
		t.Fatalf("round trip = (%q, %q, %v)", home, local, ok)
	}
}
