package service

import "time"

// Event is a middleware-neutral asynchronous notification. The paper's
// prototype could not deliver these over plain HTTP (§4.2); the event
// gateway extension carries them between VSGs over push connections or
// long-polling, and each PCM adapts its middleware's native events (Jini
// remote events, HAVi event manager posts, X10 received frames) into this
// form.
type Event struct {
	// Source is the federation-wide ID of the emitting service.
	Source string
	// Topic names the event within the source, e.g. "motion", "tape-end".
	Topic string
	// Seq is a per-source monotonically increasing sequence number, as in
	// Jini distributed events.
	Seq uint64
	// Time is the emission timestamp.
	Time time.Time
	// Payload carries event data keyed by attribute name.
	Payload map[string]Value
}

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	cp := e
	if e.Payload != nil {
		cp.Payload = make(map[string]Value, len(e.Payload))
		for k, v := range e.Payload {
			cp.Payload[k] = v
		}
	}
	return cp
}
