package service

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func testInterface() Interface {
	return Interface{
		Name: "VCR",
		Operations: []Operation{
			{Name: "Play", Output: KindVoid},
			{Name: "Stop", Output: KindVoid},
			{Name: "Record", Inputs: []Parameter{{Name: "channel", Type: KindInt}, {Name: "minutes", Type: KindInt}}, Output: KindBool},
			{Name: "Status", Output: KindString},
		},
	}
}

func TestInterfaceValidate(t *testing.T) {
	if err := testInterface().Validate(); err != nil {
		t.Fatalf("valid interface rejected: %v", err)
	}
	bad := []Interface{
		{Name: ""},
		{Name: "X", Operations: []Operation{{Name: ""}}},
		{Name: "X", Operations: []Operation{{Name: "A", Output: KindInvalid}}},
		{Name: "X", Operations: []Operation{{Name: "A", Output: KindVoid}, {Name: "A", Output: KindVoid}}},
		{Name: "X", Operations: []Operation{{Name: "A", Output: KindVoid, Inputs: []Parameter{{Name: "", Type: KindInt}}}}},
		{Name: "X", Operations: []Operation{{Name: "A", Output: KindVoid, Inputs: []Parameter{{Name: "p", Type: KindVoid}}}}},
		{Name: "X", Operations: []Operation{{Name: "A", Output: KindVoid, Inputs: []Parameter{{Name: "p", Type: KindInt}, {Name: "p", Type: KindInt}}}}},
	}
	for i, it := range bad {
		if err := it.Validate(); !errors.Is(err, ErrBadInterface) {
			t.Errorf("case %d: want ErrBadInterface, got %v", i, err)
		}
	}
}

func TestInterfaceOperationLookup(t *testing.T) {
	it := testInterface()
	op, ok := it.Operation("Record")
	if !ok || op.Name != "Record" || len(op.Inputs) != 2 {
		t.Fatalf("Operation(Record) = %+v, %v", op, ok)
	}
	if _, ok := it.Operation("Rewind"); ok {
		t.Error("found nonexistent operation")
	}
}

func TestInterfaceEqual(t *testing.T) {
	a := testInterface()
	b := testInterface()
	// Order-insensitive.
	b.Operations[0], b.Operations[1] = b.Operations[1], b.Operations[0]
	if !a.Equal(b) {
		t.Error("reordered interface not Equal")
	}
	c := testInterface()
	c.Operations[2].Inputs[0].Type = KindString
	if a.Equal(c) {
		t.Error("different parameter types Equal")
	}
	d := testInterface()
	d.Name = "Other"
	if a.Equal(d) {
		t.Error("different names Equal")
	}
}

func TestOperationSignature(t *testing.T) {
	it := testInterface()
	op, _ := it.Operation("Record")
	want := "Record(channel int, minutes int) bool"
	if got := op.Signature(); got != want {
		t.Errorf("Signature() = %q, want %q", got, want)
	}
}

func TestDescriptionValidateAndClone(t *testing.T) {
	d := Description{
		ID:         "havi:vcr-1",
		Name:       "Living room VCR",
		Middleware: "havi",
		Interface:  testInterface(),
		Context:    map[string]string{"room": "living"},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid description rejected: %v", err)
	}
	cp := d.Clone()
	cp.Context["room"] = "kitchen"
	cp.Interface.Operations[0].Name = "Mutated"
	if d.Context["room"] != "living" {
		t.Error("Clone shares Context map")
	}
	if d.Interface.Operations[0].Name != "Play" {
		t.Error("Clone shares Operations slice")
	}

	for _, bad := range []Description{
		{},
		{ID: "x"},
		{ID: "x", Middleware: "jini"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid description %+v accepted", bad)
		}
	}
}

func TestDescriptionImported(t *testing.T) {
	d := Description{ID: "a", Middleware: "jini", Interface: Interface{Name: "I"}}
	if d.Imported() {
		t.Error("fresh description marked imported")
	}
	d.Context = map[string]string{CtxImported: "true"}
	if !d.Imported() {
		t.Error("imported description not detected")
	}
}

func TestValidateArgs(t *testing.T) {
	op, _ := testInterface().Operation("Record")
	if err := ValidateArgs(op, []Value{IntValue(3), IntValue(60)}); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
	if err := ValidateArgs(op, []Value{IntValue(3)}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("arity mismatch: got %v", err)
	}
	if err := ValidateArgs(op, []Value{IntValue(3), StringValue("60")}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("type mismatch: got %v", err)
	}
}

func TestCoerceArgs(t *testing.T) {
	op, _ := testInterface().Operation("Record")
	args, err := CoerceArgs(op, []string{"5", "30"})
	if err != nil {
		t.Fatalf("CoerceArgs: %v", err)
	}
	if !args[0].Equal(IntValue(5)) || !args[1].Equal(IntValue(30)) {
		t.Errorf("CoerceArgs = %v", args)
	}
	if _, err := CoerceArgs(op, []string{"5"}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("arity: got %v", err)
	}
	if _, err := CoerceArgs(op, []string{"5", "x"}); err == nil {
		t.Error("bad int accepted")
	}
}

func TestInvokerFunc(t *testing.T) {
	inv := InvokerFunc(func(_ context.Context, op string, args []Value) (Value, error) {
		if op != "Echo" {
			return Value{}, ErrNoSuchOperation
		}
		return args[0], nil
	})
	got, err := inv.Invoke(context.Background(), "Echo", []Value{StringValue("hi")})
	if err != nil || got.Str() != "hi" {
		t.Fatalf("Invoke = %v, %v", got, err)
	}
	if _, err := inv.Invoke(context.Background(), "Nope", nil); !errors.Is(err, ErrNoSuchOperation) {
		t.Errorf("want ErrNoSuchOperation, got %v", err)
	}
}

func TestRemoteError(t *testing.T) {
	tests := []struct {
		code string
		want error
	}{
		{"NoSuchOperation", ErrNoSuchOperation},
		{"NoSuchService", ErrNoSuchService},
		{"BadArgument", ErrBadArgument},
		{"Unavailable", ErrUnavailable},
	}
	for _, tt := range tests {
		err := error(&RemoteError{Code: tt.code, Msg: "m"})
		if !errors.Is(err, tt.want) {
			t.Errorf("RemoteError(%s) does not unwrap to %v", tt.code, tt.want)
		}
		if RemoteCode(err) != tt.code {
			t.Errorf("RemoteCode round trip for %s failed", tt.code)
		}
	}
	generic := &RemoteError{Code: "Server", Msg: "boom"}
	if !strings.Contains(generic.Error(), "boom") {
		t.Errorf("Error() = %q", generic.Error())
	}
	if RemoteCode(errors.New("other")) != "Server" {
		t.Error("unknown errors should map to Server")
	}
}

func TestEventClone(t *testing.T) {
	e := Event{Source: "x10:motion-1", Topic: "motion", Seq: 4, Payload: map[string]Value{"unit": IntValue(3)}}
	cp := e.Clone()
	cp.Payload["unit"] = IntValue(9)
	if !e.Payload["unit"].Equal(IntValue(3)) {
		t.Error("Clone shares payload map")
	}
}
