package service

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		text string
	}{
		{"void", Void(), KindVoid, ""},
		{"string", StringValue("hello"), KindString, "hello"},
		{"empty string", StringValue(""), KindString, ""},
		{"int", IntValue(-42), KindInt, "-42"},
		{"float", FloatValue(2.5), KindFloat, "2.5"},
		{"bool true", BoolValue(true), KindBool, "true"},
		{"bool false", BoolValue(false), KindBool, "false"},
		{"bytes", BytesValue([]byte{0xde, 0xad}), KindBytes, "dead"},
		{"empty bytes", BytesValue(nil), KindBytes, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.Text(); got != tt.text {
				t.Errorf("Text() = %q, want %q", got, tt.text)
			}
		})
	}
}

func TestValueTextRoundTrip(t *testing.T) {
	values := []Value{
		Void(),
		StringValue("x y z"),
		IntValue(math.MaxInt64),
		IntValue(math.MinInt64),
		FloatValue(-1.25e10),
		BoolValue(true),
		BytesValue([]byte{0, 1, 2, 255}),
	}
	for _, v := range values {
		got, err := ParseText(v.Kind(), v.Text())
		if err != nil {
			t.Fatalf("ParseText(%v, %q): %v", v.Kind(), v.Text(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v: got %v", v, got)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	tests := []struct {
		kind Kind
		text string
	}{
		{KindInt, "abc"},
		{KindInt, "1.5"},
		{KindFloat, "zzz"},
		{KindBool, "maybe"},
		{KindBytes, "abc"},   // odd length
		{KindBytes, "zz"},    // bad hex
		{KindInvalid, "any"}, // bad kind
		{Kind(99), "any"},
	}
	for _, tt := range tests {
		if _, err := ParseText(tt.kind, tt.text); err == nil {
			t.Errorf("ParseText(%v, %q): want error", tt.kind, tt.text)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !StringValue("a").Equal(StringValue("a")) {
		t.Error("equal strings not Equal")
	}
	if StringValue("a").Equal(StringValue("b")) {
		t.Error("different strings Equal")
	}
	if StringValue("1").Equal(IntValue(1)) {
		t.Error("cross-kind Equal")
	}
	if !Void().Equal(Void()) {
		t.Error("void != void")
	}
	if !BytesValue([]byte{1, 2}).Equal(BytesValue([]byte{1, 2})) {
		t.Error("equal bytes not Equal")
	}
	if BytesValue([]byte{1, 2}).Equal(BytesValue([]byte{1, 3})) {
		t.Error("different bytes Equal")
	}
	if BytesValue([]byte{1, 2}).Equal(BytesValue([]byte{1})) {
		t.Error("different length bytes Equal")
	}
}

func TestBytesValueCopies(t *testing.T) {
	src := []byte{1, 2, 3}
	v := BytesValue(src)
	src[0] = 99
	if got := v.Bytes(); got[0] != 1 {
		t.Errorf("BytesValue aliases caller slice: %v", got)
	}
	out := v.Bytes()
	out[1] = 99
	if got := v.Bytes(); got[1] != 2 {
		t.Errorf("Bytes() aliases internal slice: %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k := KindInvalid; k <= KindBytes; k++ {
		s := k.String()
		if s == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
		if k == KindInvalid {
			continue
		}
		if got := KindFromString(s); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", s, got, k)
		}
	}
	if got := KindFromString("nope"); got != KindInvalid {
		t.Errorf("KindFromString(nope) = %v, want invalid", got)
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Errorf("unknown kind String: %s", Kind(42).String())
	}
}

func TestFromGoToGo(t *testing.T) {
	tests := []struct {
		in   any
		want Value
	}{
		{nil, Void()},
		{"s", StringValue("s")},
		{7, IntValue(7)},
		{int32(7), IntValue(7)},
		{int64(7), IntValue(7)},
		{float32(0.5), FloatValue(0.5)},
		{1.5, FloatValue(1.5)},
		{true, BoolValue(true)},
		{[]byte{9}, BytesValue([]byte{9})},
	}
	for _, tt := range tests {
		got, err := FromGo(tt.in)
		if err != nil {
			t.Fatalf("FromGo(%v): %v", tt.in, err)
		}
		if !got.Equal(tt.want) {
			t.Errorf("FromGo(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) should fail")
	}
	// ToGo inverse on the canonical kinds.
	for _, v := range []Value{StringValue("x"), IntValue(3), FloatValue(2.5), BoolValue(true), BytesValue([]byte{1})} {
		back, err := FromGo(v.ToGo())
		if err != nil {
			t.Fatalf("FromGo(ToGo(%v)): %v", v, err)
		}
		if !back.Equal(v) {
			t.Errorf("ToGo/FromGo round trip: %v != %v", back, v)
		}
	}
	if Void().ToGo() != nil {
		t.Error("Void().ToGo() != nil")
	}
}

// quickValue builds a Value from fuzz inputs, cycling over kinds.
func quickValue(sel uint8, s string, n int64, f float64, b bool, raw []byte) Value {
	switch sel % 6 {
	case 0:
		return Void()
	case 1:
		return StringValue(s)
	case 2:
		return IntValue(n)
	case 3:
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = 0
		}
		return FloatValue(f)
	case 4:
		return BoolValue(b)
	default:
		return BytesValue(raw)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	fn := func(sel uint8, s string, n int64, f float64, b bool, raw []byte) bool {
		v := quickValue(sel, s, n, f, b, raw)
		got, err := ParseText(v.Kind(), v.Text())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexive(t *testing.T) {
	fn := func(sel uint8, s string, n int64, f float64, b bool, raw []byte) bool {
		v := quickValue(sel, s, n, f, b, raw)
		return v.Equal(v)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
