package service

import "errors"

// Sentinel errors shared across the framework. Wrap them with context via
// fmt.Errorf("...: %w", Err...) and test with errors.Is.
var (
	// ErrNoSuchOperation reports a call to an operation the interface does
	// not declare.
	ErrNoSuchOperation = errors.New("no such operation")
	// ErrNoSuchService reports a lookup or call against an unknown service
	// ID.
	ErrNoSuchService = errors.New("no such service")
	// ErrBadArgument reports an arity or type mismatch between a call and
	// the operation signature.
	ErrBadArgument = errors.New("bad argument")
	// ErrBadKind reports an undefined value kind.
	ErrBadKind = errors.New("bad value kind")
	// ErrBadInterface reports a structurally invalid interface definition.
	ErrBadInterface = errors.New("bad interface definition")
	// ErrBadDescription reports a structurally invalid service description.
	ErrBadDescription = errors.New("bad service description")
	// ErrUnavailable reports that a service exists but cannot currently be
	// reached (gateway down, lease expired, device detached).
	ErrUnavailable = errors.New("service unavailable")
	// ErrUnauthenticated reports a caller that presented no credentials,
	// bad credentials, or an identity the receiving home does not trust
	// (see internal/core/identity).
	ErrUnauthenticated = errors.New("caller unauthenticated")
	// ErrForbidden reports an authenticated caller that the receiving
	// home's export policy or service ACL refuses for this service.
	ErrForbidden = errors.New("caller forbidden")
)

// RemoteError carries a failure raised by the remote side of a bridged
// call. It preserves the remote code and message across the SOAP fault
// boundary so errors survive protocol conversion, as required for
// transparent access.
type RemoteError struct {
	// Code is a machine-readable classification ("Client", "Server",
	// "NoSuchOperation", ...) mapped to/from SOAP fault codes.
	Code string
	// Msg is the human-readable failure description from the remote side.
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "remote: " + e.Code + ": " + e.Msg }

// Unwrap maps well-known remote codes back to local sentinel errors so that
// errors.Is works across the bridge.
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case "NoSuchOperation":
		return ErrNoSuchOperation
	case "NoSuchService":
		return ErrNoSuchService
	case "BadArgument":
		return ErrBadArgument
	case "Unavailable":
		return ErrUnavailable
	case "Unauthenticated":
		return ErrUnauthenticated
	case "Forbidden":
		return ErrForbidden
	default:
		return nil
	}
}

// RemoteCode classifies err into the wire code carried by RemoteError and
// SOAP faults.
func RemoteCode(err error) string {
	switch {
	case errors.Is(err, ErrNoSuchOperation):
		return "NoSuchOperation"
	case errors.Is(err, ErrNoSuchService):
		return "NoSuchService"
	case errors.Is(err, ErrBadArgument):
		return "BadArgument"
	case errors.Is(err, ErrUnavailable):
		return "Unavailable"
	case errors.Is(err, ErrUnauthenticated):
		return "Unauthenticated"
	case errors.Is(err, ErrForbidden):
		return "Forbidden"
	default:
		return "Server"
	}
}
