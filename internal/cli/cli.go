// Package cli holds the small flag plumbing shared by the cmd/
// binaries, so repeatable-flag handling is written once instead of per
// main package.
package cli

import "fmt"

// Multi collects a repeatable string flag (flag.Var).
type Multi []string

// String implements flag.Value.
func (m *Multi) String() string { return fmt.Sprint([]string(*m)) }

// Set implements flag.Value.
func (m *Multi) Set(v string) error {
	*m = append(*m, v)
	return nil
}
