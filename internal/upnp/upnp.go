// Package upnp simulates Universal Plug and Play, the related-work system
// the paper singles out: "We can connect the UPnP service to other
// middleware by developing a PCM for UPnP" (§5). The simulation covers
// what that PCM needs:
//
//   - device and service descriptions (device XML + SCPD action lists)
//     served over HTTP;
//   - SSDP discovery in its unicast search form (HTTPU M-SEARCH request,
//     HTTP/1.1 200 response with a LOCATION header) — part of the UPnP
//     architecture and routable without multicast;
//   - SOAP control, reusing the framework's own SOAP implementation,
//     since UPnP control actions genuinely are SOAP calls.
package upnp

import (
	"fmt"
	"strings"

	"homeconnect/internal/service"
	"homeconnect/internal/xmltree"
)

// Arg is one action argument.
type Arg struct {
	Name string
	Type service.Kind
}

// Action is one SCPD action: named input arguments and at most one output.
type Action struct {
	Name string
	In   []Arg
	// Out is the result type; KindVoid (or the zero Kind) for none.
	Out service.Kind
}

// returnsValue reports whether the action has an out argument.
func (a Action) returnsValue() bool {
	return a.Out != service.KindVoid && a.Out != service.KindInvalid
}

// Service is one UPnP service of a device.
type Service struct {
	// Type is the URN, e.g. "urn:schemas-upnp-org:service:SwitchPower:1".
	Type string
	// ID is the service identifier, e.g. "urn:upnp-org:serviceId:SwitchPower".
	ID string
	// Actions is the SCPD action table.
	Actions []Action
}

// ShortID returns the trailing path-safe component of the service ID.
func (s Service) ShortID() string {
	if i := strings.LastIndexByte(s.ID, ':'); i >= 0 {
		return s.ID[i+1:]
	}
	return s.ID
}

// Action returns the named action.
func (s Service) Action(name string) (Action, bool) {
	for _, a := range s.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return Action{}, false
}

// Description is a root device description.
type Description struct {
	// DeviceType is the URN, e.g. "urn:schemas-upnp-org:device:BinaryLight:1".
	DeviceType string
	// FriendlyName is the human-readable name.
	FriendlyName string
	// UDN is the unique device name ("uuid:...").
	UDN string
	// Services lists the device's services.
	Services []Service
}

// dataTypeOf maps a kind to the UPnP state variable dataType.
func dataTypeOf(k service.Kind) (string, error) {
	switch k {
	case service.KindString:
		return "string", nil
	case service.KindInt:
		return "i4", nil
	case service.KindFloat:
		return "r8", nil
	case service.KindBool:
		return "boolean", nil
	case service.KindBytes:
		return "bin.base64", nil
	default:
		return "", fmt.Errorf("upnp: no dataType for %v: %w", k, service.ErrBadKind)
	}
}

// kindOfDataType inverts dataTypeOf.
func kindOfDataType(t string) (service.Kind, error) {
	switch t {
	case "string":
		return service.KindString, nil
	case "i4", "ui4", "int", "i2":
		return service.KindInt, nil
	case "r4", "r8", "number", "float":
		return service.KindFloat, nil
	case "boolean":
		return service.KindBool, nil
	case "bin.base64":
		return service.KindBytes, nil
	default:
		return service.KindInvalid, fmt.Errorf("upnp: unknown dataType %q: %w", t, service.ErrBadKind)
	}
}

// RenderDescription produces the device description document.
func RenderDescription(d Description) []byte {
	w := xmltree.NewWriter()
	w.Open("root", "xmlns", "urn:schemas-upnp-org:device-1-0")
	w.Open("specVersion")
	w.Leaf("major", "1")
	w.Leaf("minor", "0")
	w.Close()
	w.Open("device")
	w.Leaf("deviceType", d.DeviceType)
	w.Leaf("friendlyName", d.FriendlyName)
	w.Leaf("UDN", d.UDN)
	w.Open("serviceList")
	for _, s := range d.Services {
		w.Open("service")
		w.Leaf("serviceType", s.Type)
		w.Leaf("serviceId", s.ID)
		w.Leaf("controlURL", "/control/"+s.ShortID())
		w.Leaf("SCPDURL", "/scpd/"+s.ShortID()+".xml")
		w.Close()
	}
	w.Close()
	w.Close()
	return w.Bytes()
}

// ParsedService pairs a service with its description-relative URLs.
type ParsedService struct {
	Type       string
	ID         string
	ControlURL string
	SCPDURL    string
}

// ParsedDescription is the control point's view of a description document.
type ParsedDescription struct {
	DeviceType   string
	FriendlyName string
	UDN          string
	Services     []ParsedService
}

// ParseDescription reads a device description document.
func ParseDescription(data []byte) (ParsedDescription, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return ParsedDescription{}, fmt.Errorf("upnp: description: %w", err)
	}
	dev := root.Child("device")
	if dev == nil {
		return ParsedDescription{}, fmt.Errorf("upnp: description has no device element")
	}
	out := ParsedDescription{
		DeviceType:   dev.ChildText("deviceType"),
		FriendlyName: dev.ChildText("friendlyName"),
		UDN:          dev.ChildText("UDN"),
	}
	if list := dev.Child("serviceList"); list != nil {
		for _, s := range list.All("service") {
			out.Services = append(out.Services, ParsedService{
				Type:       s.ChildText("serviceType"),
				ID:         s.ChildText("serviceId"),
				ControlURL: s.ChildText("controlURL"),
				SCPDURL:    s.ChildText("SCPDURL"),
			})
		}
	}
	return out, nil
}

// RenderSCPD produces the service control protocol description for a
// service: the action list plus a state variable per distinct argument
// type (A_ARG_* convention).
func RenderSCPD(s Service) ([]byte, error) {
	w := xmltree.NewWriter()
	w.Open("scpd", "xmlns", "urn:schemas-upnp-org:service-1-0")
	w.Open("actionList")
	type varDecl struct{ name, dataType string }
	var vars []varDecl
	addVar := func(argName string, k service.Kind) (string, error) {
		dt, err := dataTypeOf(k)
		if err != nil {
			return "", err
		}
		name := "A_ARG_TYPE_" + argName
		for _, v := range vars {
			if v.name == name {
				return name, nil
			}
		}
		vars = append(vars, varDecl{name: name, dataType: dt})
		return name, nil
	}
	for _, a := range s.Actions {
		w.Open("action")
		w.Leaf("name", a.Name)
		w.Open("argumentList")
		for _, in := range a.In {
			rel, err := addVar(in.Name, in.Type)
			if err != nil {
				return nil, fmt.Errorf("upnp: action %s arg %s: %w", a.Name, in.Name, err)
			}
			w.Open("argument")
			w.Leaf("name", in.Name)
			w.Leaf("direction", "in")
			w.Leaf("relatedStateVariable", rel)
			w.Close()
		}
		if a.returnsValue() {
			rel, err := addVar(a.Name+"Result", a.Out)
			if err != nil {
				return nil, fmt.Errorf("upnp: action %s result: %w", a.Name, err)
			}
			w.Open("argument")
			w.Leaf("name", "Result")
			w.Leaf("direction", "out")
			w.Leaf("relatedStateVariable", rel)
			w.Close()
		}
		w.Close() // argumentList
		w.Close() // action
	}
	w.Close() // actionList
	w.Open("serviceStateTable")
	for _, v := range vars {
		w.Open("stateVariable", "sendEvents", "no")
		w.Leaf("name", v.name)
		w.Leaf("dataType", v.dataType)
		w.Close()
	}
	w.Close()
	return w.Bytes(), nil
}

// ParseSCPD reads an SCPD document back into the action table.
func ParseSCPD(data []byte) ([]Action, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("upnp: scpd: %w", err)
	}
	// Index state variable types.
	varTypes := make(map[string]service.Kind)
	if table := root.Child("serviceStateTable"); table != nil {
		for _, v := range table.All("stateVariable") {
			k, err := kindOfDataType(v.ChildText("dataType"))
			if err != nil {
				return nil, err
			}
			varTypes[v.ChildText("name")] = k
		}
	}
	list := root.Child("actionList")
	if list == nil {
		return nil, fmt.Errorf("upnp: scpd has no actionList")
	}
	var out []Action
	for _, a := range list.All("action") {
		act := Action{Name: a.ChildText("name"), Out: service.KindVoid}
		if args := a.Child("argumentList"); args != nil {
			for _, arg := range args.All("argument") {
				k, ok := varTypes[arg.ChildText("relatedStateVariable")]
				if !ok {
					return nil, fmt.Errorf("upnp: action %s references unknown state variable %q",
						act.Name, arg.ChildText("relatedStateVariable"))
				}
				if arg.ChildText("direction") == "out" {
					act.Out = k
					continue
				}
				act.In = append(act.In, Arg{Name: arg.ChildText("name"), Type: k})
			}
		}
		out = append(out, act)
	}
	return out, nil
}
