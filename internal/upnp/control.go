package upnp

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"homeconnect/internal/service"
	"homeconnect/internal/soap"
	"homeconnect/internal/transport"
)

// ControlPoint drives remote UPnP devices: it fetches descriptions and
// SCPDs over HTTP and invokes actions over SOAP.
type ControlPoint struct {
	// HTTP is the underlying client; the shared keep-alive transport
	// (internal/transport) if nil.
	HTTP *http.Client
}

func (c *ControlPoint) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return transport.Client()
}

// RemoteService is a fully resolved service on a remote device.
type RemoteService struct {
	Device     ParsedDescription
	Type       string
	ID         string
	ControlURL string // absolute
	Actions    []Action
}

// Action returns the named action.
func (r RemoteService) Action(name string) (Action, bool) {
	for _, a := range r.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return Action{}, false
}

// Describe fetches and resolves a device description: every service's
// SCPD is fetched and parsed so the caller sees complete action tables.
func (c *ControlPoint) Describe(ctx context.Context, location string) (ParsedDescription, []RemoteService, error) {
	raw, err := c.get(ctx, location)
	if err != nil {
		return ParsedDescription{}, nil, err
	}
	desc, err := ParseDescription(raw)
	if err != nil {
		return ParsedDescription{}, nil, err
	}
	base, err := url.Parse(location)
	if err != nil {
		return ParsedDescription{}, nil, fmt.Errorf("upnp: bad location %q: %w", location, err)
	}
	var services []RemoteService
	for _, s := range desc.Services {
		scpdURL, err := resolveRef(base, s.SCPDURL)
		if err != nil {
			return ParsedDescription{}, nil, err
		}
		scpdRaw, err := c.get(ctx, scpdURL)
		if err != nil {
			return ParsedDescription{}, nil, err
		}
		actions, err := ParseSCPD(scpdRaw)
		if err != nil {
			return ParsedDescription{}, nil, err
		}
		controlURL, err := resolveRef(base, s.ControlURL)
		if err != nil {
			return ParsedDescription{}, nil, err
		}
		services = append(services, RemoteService{
			Device:     desc,
			Type:       s.Type,
			ID:         s.ID,
			ControlURL: controlURL,
			Actions:    actions,
		})
	}
	return desc, services, nil
}

// Invoke calls an action on a remote service with positional arguments
// matching the SCPD declaration.
func (c *ControlPoint) Invoke(ctx context.Context, svc RemoteService, action string, args []service.Value) (service.Value, error) {
	act, ok := svc.Action(action)
	if !ok {
		return service.Value{}, fmt.Errorf("%s: %w", action, service.ErrNoSuchOperation)
	}
	if len(args) != len(act.In) {
		return service.Value{}, fmt.Errorf("%s: got %d args, want %d: %w",
			action, len(args), len(act.In), service.ErrBadArgument)
	}
	call := soap.Call{Namespace: svc.Type, Operation: action}
	for i, in := range act.In {
		call.Args = append(call.Args, soap.Arg{Name: in.Name, Value: args[i]})
	}
	client := &soap.Client{HTTP: c.httpClient(), URL: svc.ControlURL}
	return client.Call(ctx, svc.Type+"#"+action, call)
}

// get fetches a URL body with a size limit.
func (c *ControlPoint) get(ctx context.Context, u string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("upnp: build request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("upnp: %w: %w", service.ErrUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("upnp: GET %s: %s", u, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

func resolveRef(base *url.URL, ref string) (string, error) {
	r, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("upnp: bad URL %q: %w", ref, err)
	}
	return base.ResolveReference(r).String(), nil
}
