package upnp

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/service"
)

func startLight(t *testing.T, name string) (*Device, *BinaryLightState) {
	t.Helper()
	dev, state := NewBinaryLight(name)
	if err := dev.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(dev.Close)
	return dev, state
}

func TestDescriptionRoundTrip(t *testing.T) {
	dev, _ := NewBinaryLight("Hall Light")
	raw := RenderDescription(dev.Description())
	parsed, err := ParseDescription(raw)
	if err != nil {
		t.Fatalf("ParseDescription: %v", err)
	}
	if parsed.FriendlyName != "Hall Light" || parsed.DeviceType != "urn:schemas-upnp-org:device:BinaryLight:1" {
		t.Errorf("parsed = %+v", parsed)
	}
	if len(parsed.Services) != 1 || parsed.Services[0].ControlURL != "/control/SwitchPower" {
		t.Errorf("services = %+v", parsed.Services)
	}
}

func TestSCPDRoundTrip(t *testing.T) {
	svc := Service{
		Type: "urn:x:service:Test:1",
		ID:   "urn:x:serviceId:Test",
		Actions: []Action{
			{Name: "DoIt", In: []Arg{{Name: "count", Type: service.KindInt}, {Name: "label", Type: service.KindString}}, Out: service.KindBool},
			{Name: "Reset"},
		},
	}
	raw, err := RenderSCPD(svc)
	if err != nil {
		t.Fatalf("RenderSCPD: %v", err)
	}
	actions, err := ParseSCPD(raw)
	if err != nil {
		t.Fatalf("ParseSCPD: %v", err)
	}
	if len(actions) != 2 {
		t.Fatalf("actions = %+v", actions)
	}
	doit := actions[0]
	if doit.Name != "DoIt" || doit.Out != service.KindBool || len(doit.In) != 2 {
		t.Errorf("DoIt = %+v", doit)
	}
	if doit.In[0] != (Arg{Name: "count", Type: service.KindInt}) {
		t.Errorf("arg 0 = %+v", doit.In[0])
	}
	if actions[1].Out != service.KindVoid || len(actions[1].In) != 0 {
		t.Errorf("Reset = %+v", actions[1])
	}
}

func TestSSDPSearchAndDescribe(t *testing.T) {
	dev, _ := startLight(t, "Porch Light")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	results, err := Search(ctx, "ssdp:all", []string{dev.SSDPAddr()})
	if err != nil || len(results) != 1 {
		t.Fatalf("Search = %+v, %v", results, err)
	}
	if results[0].Location != dev.Location() {
		t.Errorf("Location = %q, want %q", results[0].Location, dev.Location())
	}

	cp := &ControlPoint{}
	desc, services, err := cp.Describe(ctx, results[0].Location)
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if desc.FriendlyName != "Porch Light" || len(services) != 1 {
		t.Fatalf("desc = %+v services = %+v", desc, services)
	}
	if len(services[0].Actions) != 2 {
		t.Errorf("actions = %+v", services[0].Actions)
	}
}

func TestSSDPTargetFiltering(t *testing.T) {
	dev, _ := startLight(t, "Lamp")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// Matching device-type target answers.
	res, err := Search(ctx, "urn:schemas-upnp-org:device:BinaryLight:1", []string{dev.SSDPAddr()})
	if err != nil || len(res) != 1 {
		t.Fatalf("device-type search = %v, %v", res, err)
	}
	// Service-type target answers.
	res, err = Search(ctx, "urn:schemas-upnp-org:service:SwitchPower:1", []string{dev.SSDPAddr()})
	if err != nil || len(res) != 1 {
		t.Fatalf("service-type search = %v, %v", res, err)
	}
	// Non-matching target is silent (Search skips it).
	res, _ = Search(ctx, "urn:other:device:Toaster:1", []string{dev.SSDPAddr()})
	if len(res) != 0 {
		t.Errorf("toaster search answered: %+v", res)
	}
}

func TestControlInvoke(t *testing.T) {
	dev, state := startLight(t, "Desk Light")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cp := &ControlPoint{}
	_, services, err := cp.Describe(ctx, dev.Location())
	if err != nil {
		t.Fatal(err)
	}
	sw := services[0]

	if _, err := cp.Invoke(ctx, sw, "SetTarget", []service.Value{service.BoolValue(true)}); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	if !state.On() {
		t.Error("light not on")
	}
	got, err := cp.Invoke(ctx, sw, "GetStatus", nil)
	if err != nil || !got.Bool() {
		t.Errorf("GetStatus = %v, %v", got, err)
	}
}

func TestControlInvokeErrors(t *testing.T) {
	dev, _ := startLight(t, "Light")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cp := &ControlPoint{}
	_, services, err := cp.Describe(ctx, dev.Location())
	if err != nil {
		t.Fatal(err)
	}
	sw := services[0]

	if _, err := cp.Invoke(ctx, sw, "Explode", nil); !errors.Is(err, service.ErrNoSuchOperation) {
		t.Errorf("unknown action: %v", err)
	}
	if _, err := cp.Invoke(ctx, sw, "SetTarget", nil); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("missing arg: %v", err)
	}
	// Wrong argument type is rejected server-side too; bypass client
	// validation by crafting the action table.
	forged := sw
	forged.Actions = []Action{{Name: "SetTarget", In: []Arg{{Name: "newTargetValue", Type: service.KindString}}}}
	if _, err := cp.Invoke(ctx, forged, "SetTarget", []service.Value{service.StringValue("yes")}); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("wrong type: %v", err)
	}
}

func TestDescribeUnreachable(t *testing.T) {
	cp := &ControlPoint{}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := cp.Describe(ctx, "http://127.0.0.1:1/description.xml"); err == nil {
		t.Error("Describe of dead device succeeded")
	}
}

func TestSearchSkipsDeadDevices(t *testing.T) {
	dev, _ := startLight(t, "Live")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	res, err := Search(ctx, "ssdp:all", []string{"127.0.0.1:1", dev.SSDPAddr()})
	if err != nil || len(res) != 1 {
		t.Errorf("Search = %v, %v", res, err)
	}
}
