package upnp

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"

	"homeconnect/internal/service"
	"homeconnect/internal/soap"
)

// ActionHandler serves one control action invocation.
type ActionHandler func(ctx context.Context, action string, args []service.Value) (service.Value, error)

// Device hosts one UPnP root device: an HTTP server for description,
// SCPD and SOAP control, plus an SSDP responder for unicast search.
type Device struct {
	desc     Description
	handlers map[string]ActionHandler // service ShortID → handler

	httpLn net.Listener
	httpS  *http.Server
	ssdp   *ssdpResponder

	mu     sync.Mutex
	closed bool
}

// NewDevice builds a device with the given description. handlers maps
// each service's ShortID to its action handler.
func NewDevice(desc Description, handlers map[string]ActionHandler) *Device {
	return &Device{desc: desc, handlers: handlers}
}

// Start brings up the HTTP side on httpAddr and the SSDP responder on a
// UDP port ("127.0.0.1:0" for ephemeral).
func (d *Device) Start(httpAddr, ssdpAddr string) error {
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return fmt.Errorf("upnp: http listen: %w", err)
	}
	d.httpLn = ln

	mux := http.NewServeMux()
	mux.HandleFunc("/description.xml", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		_, _ = w.Write(RenderDescription(d.desc))
	})
	for _, svc := range d.desc.Services {
		svc := svc
		scpd, err := RenderSCPD(svc)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("upnp: scpd for %s: %w", svc.ID, err)
		}
		mux.HandleFunc("/scpd/"+svc.ShortID()+".xml", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
			_, _ = w.Write(scpd)
		})
		handler, ok := d.handlers[svc.ShortID()]
		if !ok {
			_ = ln.Close()
			return fmt.Errorf("upnp: no handler for service %s", svc.ID)
		}
		mux.Handle("/control/"+svc.ShortID(), soap.NewHTTPHandler(controlAdapter{svc: svc, handler: handler}))
	}

	d.httpS = &http.Server{Handler: mux}
	go func() { _ = d.httpS.Serve(ln) }()

	resp, err := newSSDPResponder(ssdpAddr, d)
	if err != nil {
		_ = ln.Close()
		return err
	}
	d.ssdp = resp
	return nil
}

// Location returns the description URL.
func (d *Device) Location() string {
	return "http://" + d.httpLn.Addr().String() + "/description.xml"
}

// SSDPAddr returns the UDP address answering M-SEARCH.
func (d *Device) SSDPAddr() string { return d.ssdp.addr() }

// Description returns the hosted description.
func (d *Device) Description() Description { return d.desc }

// Close stops both servers.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.ssdp.close()
	_ = d.httpS.Close()
}

// controlAdapter bridges SOAP calls to the action handler, validating
// against the SCPD action table first — as a real UPnP stack rejects
// actions outside the service description.
type controlAdapter struct {
	svc     Service
	handler ActionHandler
}

// ServeSOAP implements soap.Handler.
func (c controlAdapter) ServeSOAP(ctx context.Context, call soap.Call) (service.Value, error) {
	action, ok := c.svc.Action(call.Operation)
	if !ok {
		return service.Value{}, fmt.Errorf("%s: %w", call.Operation, service.ErrNoSuchOperation)
	}
	if len(call.Args) != len(action.In) {
		return service.Value{}, fmt.Errorf("%s: got %d args, want %d: %w",
			call.Operation, len(call.Args), len(action.In), service.ErrBadArgument)
	}
	args := make([]service.Value, len(call.Args))
	for i, a := range call.Args {
		if a.Value.Kind() != action.In[i].Type {
			return service.Value{}, fmt.Errorf("%s: arg %s has kind %v, want %v: %w",
				call.Operation, a.Name, a.Value.Kind(), action.In[i].Type, service.ErrBadArgument)
		}
		args[i] = a.Value
	}
	return c.handler(ctx, call.Operation, args)
}

// NewBinaryLight builds the classic UPnP sample device: a BinaryLight
// with a SwitchPower service (SetTarget, GetStatus) — handy for tests,
// examples and the UPnP PCM experiment.
func NewBinaryLight(name string) (*Device, *BinaryLightState) {
	state := &BinaryLightState{}
	svc := Service{
		Type: "urn:schemas-upnp-org:service:SwitchPower:1",
		ID:   "urn:upnp-org:serviceId:SwitchPower",
		Actions: []Action{
			{Name: "SetTarget", In: []Arg{{Name: "newTargetValue", Type: service.KindBool}}},
			{Name: "GetStatus", Out: service.KindBool},
		},
	}
	desc := Description{
		DeviceType:   "urn:schemas-upnp-org:device:BinaryLight:1",
		FriendlyName: name,
		UDN:          "uuid:homeconnect-light-" + strings.ReplaceAll(name, " ", "-"),
		Services:     []Service{svc},
	}
	dev := NewDevice(desc, map[string]ActionHandler{
		"SwitchPower": state.handle,
	})
	return dev, state
}

// BinaryLightState is the mutable state behind a BinaryLight device.
type BinaryLightState struct {
	mu sync.Mutex
	on bool
}

// On reports whether the light is on.
func (s *BinaryLightState) On() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on
}

func (s *BinaryLightState) handle(_ context.Context, action string, args []service.Value) (service.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch action {
	case "SetTarget":
		s.on = args[0].Bool()
		return service.Void(), nil
	case "GetStatus":
		return service.BoolValue(s.on), nil
	default:
		return service.Value{}, fmt.Errorf("%s: %w", action, service.ErrNoSuchOperation)
	}
}
