package upnp

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// SSDP in unicast search form: a control point sends an HTTPU M-SEARCH
// datagram to a device's SSDP port and receives an HTTP/1.1 200 response
// whose LOCATION header points at the description document. The wire
// format matches the UPnP architecture; only the multicast group is
// replaced by direct addressing, which UPnP 1.1 also permits.

// ssdpResponder answers M-SEARCH datagrams for one device.
type ssdpResponder struct {
	conn *net.UDPConn
	dev  *Device
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newSSDPResponder(addr string, dev *Device) (*ssdpResponder, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("upnp: ssdp addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("upnp: ssdp listen: %w", err)
	}
	r := &ssdpResponder{conn: conn, dev: dev}
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

func (r *ssdpResponder) addr() string { return r.conn.LocalAddr().String() }

func (r *ssdpResponder) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	_ = r.conn.Close()
	r.wg.Wait()
}

func (r *ssdpResponder) loop() {
	defer r.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		req, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(buf[:n])))
		if err != nil || req.Method != "M-SEARCH" {
			continue
		}
		st := req.Header.Get("ST")
		desc := r.dev.Description()
		if !ssdpTargetMatches(st, desc) {
			continue
		}
		resp := fmt.Sprintf("HTTP/1.1 200 OK\r\n"+
			"CACHE-CONTROL: max-age=1800\r\n"+
			"EXT:\r\n"+
			"LOCATION: %s\r\n"+
			"SERVER: homeconnect/1.0 UPnP/1.0\r\n"+
			"ST: %s\r\n"+
			"USN: %s::%s\r\n\r\n",
			r.dev.Location(), st, desc.UDN, desc.DeviceType)
		_, _ = r.conn.WriteToUDP([]byte(resp), peer)
	}
}

// ssdpTargetMatches implements the ST matching rules for the subset we
// serve: ssdp:all, upnp:rootdevice, the device type URN, or the UDN.
func ssdpTargetMatches(st string, d Description) bool {
	switch {
	case st == "" || st == "ssdp:all" || st == "upnp:rootdevice":
		return true
	case st == d.DeviceType || st == d.UDN:
		return true
	default:
		for _, svc := range d.Services {
			if st == svc.Type {
				return true
			}
		}
		return false
	}
}

// SearchResult is one M-SEARCH response.
type SearchResult struct {
	// Location is the description URL.
	Location string
	// USN is the unique service name from the response.
	USN string
	// ST echoes the search target.
	ST string
}

// Search sends a unicast M-SEARCH for st to each SSDP address and
// collects the responses. Devices that do not answer within the context
// deadline (or one second, whichever is sooner) are skipped.
func Search(ctx context.Context, st string, ssdpAddrs []string) ([]SearchResult, error) {
	if st == "" {
		st = "ssdp:all"
	}
	var out []SearchResult
	for _, addr := range ssdpAddrs {
		res, err := searchOne(ctx, st, addr)
		if err != nil {
			continue // absent devices are normal during discovery
		}
		out = append(out, res)
	}
	return out, nil
}

func searchOne(ctx context.Context, st, addr string) (SearchResult, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return SearchResult{}, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return SearchResult{}, err
	}
	defer conn.Close()

	msg := fmt.Sprintf("M-SEARCH * HTTP/1.1\r\n"+
		"HOST: %s\r\n"+
		"MAN: \"ssdp:discover\"\r\n"+
		"MX: 1\r\n"+
		"ST: %s\r\n\r\n", addr, st)
	if _, err := conn.Write([]byte(msg)); err != nil {
		return SearchResult{}, err
	}

	deadline := time.Now().Add(time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetReadDeadline(deadline)
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		return SearchResult{}, err
	}
	return parseSearchResponse(buf[:n])
}

func parseSearchResponse(raw []byte) (SearchResult, error) {
	lines := strings.Split(string(raw), "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "HTTP/1.1 200") {
		return SearchResult{}, fmt.Errorf("upnp: bad search response")
	}
	res := SearchResult{}
	for _, line := range lines[1:] {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		key := strings.ToUpper(strings.TrimSpace(line[:i]))
		val := strings.TrimSpace(line[i+1:])
		switch key {
		case "LOCATION":
			res.Location = val
		case "USN":
			res.USN = val
		case "ST":
			res.ST = val
		}
	}
	if res.Location == "" {
		return SearchResult{}, fmt.Errorf("upnp: search response without LOCATION")
	}
	return res, nil
}
