package stubgen

import (
	"strings"
	"testing"

	"homeconnect/internal/service"
	"homeconnect/internal/wsdl"
)

func vcrDoc() wsdl.Document {
	return wsdl.Document{
		Interface: service.Interface{
			Name: "VCR",
			Operations: []service.Operation{
				{Name: "Play", Output: service.KindVoid, Doc: "Start playback"},
				{Name: "Record", Inputs: []service.Parameter{
					{Name: "channel", Type: service.KindInt},
					{Name: "minutes", Type: service.KindInt},
				}, Output: service.KindBool},
				{Name: "Status", Output: service.KindString},
				{Name: "Snapshot", Output: service.KindBytes},
				{Name: "Gain", Output: service.KindFloat},
			},
		},
	}
}

func TestGenerateCompilesShape(t *testing.T) {
	src, err := Generate(vcrDoc(), Options{Package: "vcrstub"})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	code := string(src)
	wants := []string{
		"package vcrstub",
		"type VCRClient struct",
		"func (c *VCRClient) Play(ctx context.Context) error",
		"func (c *VCRClient) Record(ctx context.Context, channel int64, minutes int64) (bool, error)",
		"func (c *VCRClient) Status(ctx context.Context) (string, error)",
		"func (c *VCRClient) Snapshot(ctx context.Context) ([]byte, error)",
		"func (c *VCRClient) Gain(ctx context.Context) (float64, error)",
		"Start playback",
		"DO NOT EDIT",
	}
	for _, want := range wants {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
}

func TestGenerateDefaultPackage(t *testing.T) {
	src, err := Generate(vcrDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package stubs") {
		t.Error("default package name not applied")
	}
}

func TestGenerateFromParsedWSDL(t *testing.T) {
	// Full pipeline: interface → WSDL → parse → stub.
	raw, err := wsdl.Generate(vcrDoc().Interface, "http://h/vcr")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := wsdl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(doc, Options{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "VCRClient") {
		t.Error("pipeline output missing client type")
	}
}

func TestGenerateRejectsInvalidInterface(t *testing.T) {
	if _, err := Generate(wsdl.Document{}, Options{}); err == nil {
		t.Error("empty interface accepted")
	}
}

func TestSanitizeIdent(t *testing.T) {
	tests := map[string]string{
		"level":     "level",
		"new-value": "new_value",
		"9lives":    "p9lives",
		"":          "p",
	}
	for in, want := range tests {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
