package wsdl

import (
	"strings"
	"testing"
	"testing/quick"

	"homeconnect/internal/service"
)

func vcrInterface() service.Interface {
	return service.Interface{
		Name: "VCR",
		Doc:  "Digital video cassette recorder control",
		Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid, Doc: "Start playback"},
			{Name: "Stop", Output: service.KindVoid},
			{Name: "Record", Inputs: []service.Parameter{
				{Name: "channel", Type: service.KindInt},
				{Name: "minutes", Type: service.KindInt},
			}, Output: service.KindBool},
			{Name: "Status", Output: service.KindString},
			{Name: "Calibrate", Inputs: []service.Parameter{
				{Name: "gain", Type: service.KindFloat},
				{Name: "raw", Type: service.KindBytes},
				{Name: "fast", Type: service.KindBool},
			}, Output: service.KindFloat},
		},
	}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	in := vcrInterface()
	const loc = "http://192.168.0.10:8800/services/havi:vcr-1"
	data, err := Generate(in, loc)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, want := range []string{"portType", "soap:address", "RecordInput", "rpc"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("generated WSDL missing %q:\n%s", want, data)
		}
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Location != loc {
		t.Errorf("Location = %q, want %q", doc.Location, loc)
	}
	if !doc.Interface.Equal(in) {
		t.Errorf("interface mismatch:\n got %+v\nwant %+v", doc.Interface, in)
	}
	if doc.Interface.Doc != in.Doc {
		t.Errorf("doc string lost: %q", doc.Interface.Doc)
	}
	op, _ := doc.Interface.Operation("Play")
	if op.Doc != "Start playback" {
		t.Errorf("operation doc lost: %q", op.Doc)
	}
}

func TestGenerateWithoutLocation(t *testing.T) {
	data, err := Generate(vcrInterface(), "")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Location != "" {
		t.Errorf("Location = %q, want empty", doc.Location)
	}
}

func TestGenerateRejectsInvalidInterface(t *testing.T) {
	if _, err := Generate(service.Interface{}, ""); err == nil {
		t.Error("empty interface accepted")
	}
	bad := service.Interface{Name: "X", Operations: []service.Operation{{Name: "A", Output: service.Kind(77)}}}
	if _, err := Generate(bad, ""); err == nil {
		t.Error("invalid output kind accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"<notwsdl/>",
		`<definitions name="X"></definitions>`, // no portType
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse(%q): want error", c)
		}
	}
}

func TestSOAPActionAndNamespace(t *testing.T) {
	if got := TargetNamespace("VCR"); got != "urn:homeconnect:iface:VCR" {
		t.Errorf("TargetNamespace = %q", got)
	}
	if got := SOAPAction("VCR", "Play"); got != "urn:homeconnect:iface:VCR#Play" {
		t.Errorf("SOAPAction = %q", got)
	}
}

// TestQuickRoundTrip generates random small interfaces and checks the
// generate/parse round trip preserves them.
func TestQuickRoundTrip(t *testing.T) {
	kinds := []service.Kind{service.KindString, service.KindInt, service.KindFloat, service.KindBool, service.KindBytes}
	outs := append([]service.Kind{service.KindVoid}, kinds...)
	fn := func(nOps, nParams uint8, outSel, inSel uint8) bool {
		it := service.Interface{Name: "Q"}
		ops := int(nOps%4) + 1
		for i := 0; i < ops; i++ {
			op := service.Operation{
				Name:   "Op" + string(rune('A'+i)),
				Output: outs[(int(outSel)+i)%len(outs)],
			}
			params := int(nParams % 4)
			for j := 0; j < params; j++ {
				op.Inputs = append(op.Inputs, service.Parameter{
					Name: "p" + string(rune('a'+j)),
					Type: kinds[(int(inSel)+i+j)%len(kinds)],
				})
			}
			it.Operations = append(it.Operations, op)
		}
		data, err := Generate(it, "http://h:1/x")
		if err != nil {
			return false
		}
		doc, err := Parse(data)
		return err == nil && doc.Interface.Equal(it)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
