// Package wsdl generates and parses the WSDL 1.1 service descriptions the
// framework's Virtual Service Repository stores (§3.3, §4.1 of the paper:
// "VSR has been implemented by WSDL ... and UDDI"). Only the subset
// needed for RPC/encoded SOAP services is supported: messages with typed
// parts, a portType, one SOAP binding, and one service/port carrying the
// endpoint address.
package wsdl

import (
	"fmt"
	"strings"

	"homeconnect/internal/service"
	"homeconnect/internal/xmltree"
)

// Namespace constants for generated documents.
const (
	WSDLNS     = "http://schemas.xmlsoap.org/wsdl/"
	SOAPBindNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	XSDNS      = "http://www.w3.org/2001/XMLSchema"
	// TNSPrefix prefixes each interface's target namespace.
	TNSPrefix = "urn:homeconnect:iface:"
)

// Document is a parsed WSDL description: the service interface plus the
// SOAP endpoint location.
type Document struct {
	Interface service.Interface
	// Location is the soap:address of the single port ("" if absent).
	Location string
}

// xsdOf maps a Kind to its xsd: part type.
func xsdOf(k service.Kind) (string, error) {
	switch k {
	case service.KindString:
		return "xsd:string", nil
	case service.KindInt:
		return "xsd:long", nil
	case service.KindFloat:
		return "xsd:double", nil
	case service.KindBool:
		return "xsd:boolean", nil
	case service.KindBytes:
		return "xsd:base64Binary", nil
	default:
		return "", fmt.Errorf("wsdl: no xsd type for %v: %w", k, service.ErrBadKind)
	}
}

// kindOf inverts xsdOf, tolerating any namespace prefix.
func kindOf(t string) (service.Kind, error) {
	if i := strings.IndexByte(t, ':'); i >= 0 {
		t = t[i+1:]
	}
	switch t {
	case "string":
		return service.KindString, nil
	case "long", "int", "short", "integer":
		return service.KindInt, nil
	case "double", "float", "decimal":
		return service.KindFloat, nil
	case "boolean":
		return service.KindBool, nil
	case "base64Binary":
		return service.KindBytes, nil
	default:
		return service.KindInvalid, fmt.Errorf("wsdl: unknown part type %q: %w", t, service.ErrBadKind)
	}
}

// Generate renders the interface as a WSDL document advertising the given
// SOAP endpoint location.
func Generate(it service.Interface, location string) ([]byte, error) {
	if err := it.Validate(); err != nil {
		return nil, err
	}
	tns := TNSPrefix + it.Name
	w := xmltree.NewWriter()
	w.Open("definitions",
		"name", it.Name,
		"targetNamespace", tns,
		"xmlns", WSDLNS,
		"xmlns:tns", tns,
		"xmlns:soap", SOAPBindNS,
		"xmlns:xsd", XSDNS,
	)
	if it.Doc != "" {
		w.Leaf("documentation", it.Doc)
	}
	// Messages.
	for _, op := range it.Operations {
		w.Open("message", "name", op.Name+"Input")
		for _, p := range op.Inputs {
			t, err := xsdOf(p.Type)
			if err != nil {
				return nil, fmt.Errorf("wsdl: %s/%s: %w", op.Name, p.Name, err)
			}
			w.SelfClose("part", "name", p.Name, "type", t)
		}
		w.Close()
		w.Open("message", "name", op.Name+"Output")
		if op.Output != service.KindVoid {
			t, err := xsdOf(op.Output)
			if err != nil {
				return nil, fmt.Errorf("wsdl: %s return: %w", op.Name, err)
			}
			w.SelfClose("part", "name", "return", "type", t)
		}
		w.Close()
	}
	// PortType.
	w.Open("portType", "name", it.Name)
	for _, op := range it.Operations {
		w.Open("operation", "name", op.Name)
		if op.Doc != "" {
			w.Leaf("documentation", op.Doc)
		}
		w.SelfClose("input", "message", "tns:"+op.Name+"Input")
		w.SelfClose("output", "message", "tns:"+op.Name+"Output")
		w.Close()
	}
	w.Close()
	// Binding (rpc/encoded over HTTP, as in the Apache SOAP prototype).
	w.Open("binding", "name", it.Name+"SoapBinding", "type", "tns:"+it.Name)
	w.SelfClose("soap:binding", "style", "rpc", "transport", "http://schemas.xmlsoap.org/soap/http")
	for _, op := range it.Operations {
		w.Open("operation", "name", op.Name)
		w.SelfClose("soap:operation", "soapAction", tns+"#"+op.Name)
		w.Open("input")
		w.SelfClose("soap:body", "use", "encoded", "namespace", tns)
		w.Close()
		w.Open("output")
		w.SelfClose("soap:body", "use", "encoded", "namespace", tns)
		w.Close()
		w.Close()
	}
	w.Close()
	// Service.
	w.Open("service", "name", it.Name)
	w.Open("port", "name", it.Name+"Port", "binding", "tns:"+it.Name+"SoapBinding")
	if location != "" {
		w.SelfClose("soap:address", "location", location)
	}
	w.Close()
	w.Close()
	return w.Bytes(), nil
}

// Parse reads a WSDL document back into an interface and endpoint
// location. It accepts documents produced by Generate and tolerates extra
// elements it does not understand.
func Parse(data []byte) (Document, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return Document{}, fmt.Errorf("wsdl: %w", err)
	}
	if root.Name.Local != "definitions" {
		return Document{}, fmt.Errorf("wsdl: root element is %s, want definitions", root.Name.Local)
	}
	it := service.Interface{Name: root.Attr("name")}
	if d := root.Child("documentation"); d != nil {
		it.Doc = strings.TrimSpace(d.Text)
	}

	// Index messages by name.
	type part struct {
		name string
		kind service.Kind
	}
	messages := make(map[string][]part)
	for _, m := range root.All("message") {
		var parts []part
		for _, p := range m.All("part") {
			k, err := kindOf(p.Attr("type"))
			if err != nil {
				return Document{}, fmt.Errorf("wsdl: message %s: %w", m.Attr("name"), err)
			}
			parts = append(parts, part{name: p.Attr("name"), kind: k})
		}
		messages[m.Attr("name")] = parts
	}

	pt := root.Child("portType")
	if pt == nil {
		return Document{}, fmt.Errorf("wsdl: missing portType")
	}
	if it.Name == "" {
		it.Name = pt.Attr("name")
	}
	stripTNS := func(ref string) string {
		if i := strings.IndexByte(ref, ':'); i >= 0 {
			return ref[i+1:]
		}
		return ref
	}
	for _, opEl := range pt.All("operation") {
		op := service.Operation{Name: opEl.Attr("name"), Output: service.KindVoid}
		if d := opEl.Child("documentation"); d != nil {
			op.Doc = strings.TrimSpace(d.Text)
		}
		if in := opEl.Child("input"); in != nil {
			ref := stripTNS(in.Attr("message"))
			for _, p := range messages[ref] {
				op.Inputs = append(op.Inputs, service.Parameter{Name: p.name, Type: p.kind})
			}
		}
		if out := opEl.Child("output"); out != nil {
			ref := stripTNS(out.Attr("message"))
			parts := messages[ref]
			if len(parts) > 1 {
				return Document{}, fmt.Errorf("wsdl: operation %s: multi-part outputs unsupported", op.Name)
			}
			if len(parts) == 1 {
				op.Output = parts[0].kind
			}
		}
		it.Operations = append(it.Operations, op)
	}

	doc := Document{Interface: it}
	if svc := root.Child("service"); svc != nil {
		if port := svc.Child("port"); port != nil {
			for _, c := range port.Children {
				if c.Name.Local == "address" {
					doc.Location = c.Attr("location")
				}
			}
		}
	}
	if err := it.Validate(); err != nil {
		return Document{}, err
	}
	return doc, nil
}

// TargetNamespace returns the namespace Generate assigns to an interface.
func TargetNamespace(interfaceName string) string { return TNSPrefix + interfaceName }

// SOAPAction returns the soapAction URI for an operation of an interface,
// matching the generated binding.
func SOAPAction(interfaceName, op string) string {
	return TargetNamespace(interfaceName) + "#" + op
}
