// Tests for the inter-home peering layer: export policy, ID scoping,
// watch-driven replication, reconciliation, and outage degradation.
package peer

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/vclock"
)

func TestPolicyAdmits(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
		id   string
		want bool
	}{
		{"empty admits all", Policy{}, "jini:laserdisc-1", true},
		{"allow exact", Policy{Allow: []string{"jini:laserdisc-1"}}, "jini:laserdisc-1", true},
		{"allow exact misses", Policy{Allow: []string{"jini:laserdisc-1"}}, "x10:lamp-1", false},
		{"allow prefix", Policy{Allow: []string{"havi:*"}}, "havi:dvcam-cam1", true},
		{"allow star", Policy{Allow: []string{"*"}}, "anything", true},
		{"deny wins over allow", Policy{Allow: []string{"*"}, Deny: []string{"x10:*"}}, "x10:lamp-1", false},
		{"deny exact", Policy{Deny: []string{"mail:outbox"}}, "mail:outbox", false},
		{"deny misses", Policy{Deny: []string{"x10:*"}}, "jini:laserdisc-1", true},
	}
	for _, c := range cases {
		if got := c.pol.Admits(c.id); got != c.want {
			t.Errorf("%s: Admits(%q) = %v, want %v", c.name, c.id, got, c.want)
		}
	}
}

func TestNewRejectsBadHomes(t *testing.T) {
	if _, err := New("", nil, nil); err == nil {
		t.Error("empty home accepted")
	}
	if _, err := New("a/b", nil, nil); err == nil {
		t.Error("home with scope separator accepted")
	}
	if _, err := New("a", nil, identity.NewAuth("b")); err == nil {
		t.Error("auth context for a different home accepted")
	}
}

// home is one simulated residence for link tests: a repository with a
// peering layer mounted, plus a client on its own registry.
type home struct {
	name string
	srv  *vsr.Server
	p    *Peering
	v    *vsr.VSR
}

func newHomeFixture(t *testing.T, name string) *home {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	p, err := New(name, srv.Registry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	srv.MountPeer(p.ExportHandler())
	return &home{name: name, srv: srv, p: p, v: vsr.New(srv.URL())}
}

func testDesc(id string) service.Description {
	return service.Description{
		ID: id, Name: id, Middleware: "test",
		Interface: service.Interface{Name: "Svc", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
}

// register publishes a service in the home's registry the way a gateway
// would (the export view stamps the home, so no CtxHome is needed here).
func (h *home) register(t *testing.T, id, endpoint string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.v.Register(ctx, testDesc(id), endpoint); err != nil {
		t.Fatal(err)
	}
}

// waitLookup polls home h until id resolves (or not, when gone is true).
func (h *home) waitLookup(t *testing.T, id string, gone bool) vsr.Remote {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		r, err := h.v.Lookup(ctx, id)
		if gone == (err != nil) {
			return r
		}
		select {
		case <-ctx.Done():
			t.Fatalf("waitLookup(%s, gone=%v): %v", id, gone, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestLinkReplicatesAndScopes(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	a.register(t, "jini:laserdisc-1", "http://gw-a/services/jini:laserdisc-1")

	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	r := b.waitLookup(t, "home-a/jini:laserdisc-1", false)
	if r.Endpoint != "http://gw-a/services/jini:laserdisc-1" {
		t.Errorf("imported endpoint = %q, want home A's gateway", r.Endpoint)
	}
	if r.Desc.Context[service.CtxPeerOrigin] != "home-a" || r.Desc.Context[service.CtxHome] != "home-a" {
		t.Errorf("imported context = %v, want origin/home stamps", r.Desc.Context)
	}

	// A service registered after the link is up propagates via the watch.
	a.register(t, "x10:lamp-1", "http://gw-a/services/x10:lamp-1")
	b.waitLookup(t, "home-a/x10:lamp-1", false)

	// Deletes propagate too.
	ctx := context.Background()
	if err := a.v.Unregister(ctx, "uuid:svc-x10:lamp-1"); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/x10:lamp-1", true)

	st := b.p.Status()[a.srv.PeerURL()]
	if !st.Connected || st.RemoteHome != "home-a" || st.Cursor == 0 {
		t.Errorf("status = %+v, want connected to home-a with a cursor", st)
	}
}

func TestLinkHonorsExportPolicy(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	a.p.SetPolicy(Policy{Deny: []string{"x10:*"}})
	a.register(t, "jini:laserdisc-1", "http://gw-a/1")
	a.register(t, "x10:lamp-1", "http://gw-a/2")

	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)
	ctx := context.Background()
	if _, err := b.v.Lookup(ctx, "home-a/x10:lamp-1"); err == nil {
		t.Error("denied service replicated to peer")
	}
}

func TestNoTransitReplication(t *testing.T) {
	// C peers with B, B peers with A: A's services must reach B but not
	// travel on to C — federation is one-hop by design.
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	c := newHomeFixture(t, "home-c")
	a.register(t, "jini:laserdisc-1", "http://gw-a/1")
	b.register(t, "mail:outbox", "http://gw-b/1")

	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.p.Peer(b.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)
	c.waitLookup(t, "home-b/mail:outbox", false)
	// Event-driven barrier instead of a timed wait: B journals its
	// import of A's entry before this sentinel, so once the sentinel has
	// replicated to C in journal order, any (incorrect) transit
	// forwarding of A's entry would already have landed at C too.
	b.register(t, "mail:sentinel", "http://gw-b/2")
	c.waitLookup(t, "home-b/mail:sentinel", false)
	ctx := context.Background()
	if _, err := c.v.Lookup(ctx, "home-b/home-a/jini:laserdisc-1"); err == nil {
		t.Error("transit entry replicated two hops")
	}
	if _, err := c.v.Lookup(ctx, "home-a/jini:laserdisc-1"); err == nil {
		t.Error("transit entry re-scoped and replicated two hops")
	}
}

func TestMutualPeeringNoLoop(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	a.register(t, "jini:laserdisc-1", "http://gw-a/1")
	b.register(t, "mail:outbox", "http://gw-b/1")

	if _, err := a.p.Peer(b.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	a.waitLookup(t, "home-b/mail:outbox", false)
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)
	// Sentinel barrier: each side's import of the other's entry is
	// journaled before the sentinel registered after it, so seeing the
	// sentinel across the link proves the cursor moved past the point
	// where any loop re-export would have been journaled.
	a.register(t, "jini:sentinel-a", "http://gw-a/2")
	b.register(t, "mail:sentinel-b", "http://gw-b/2")
	a.waitLookup(t, "home-b/mail:sentinel-b", false)
	b.waitLookup(t, "home-a/jini:sentinel-a", false)
	ctx := context.Background()
	for _, id := range []string{"home-b/home-a/jini:laserdisc-1", "home-a/home-b/mail:outbox"} {
		if _, err := a.v.Lookup(ctx, id); err == nil {
			t.Errorf("loop entry %s appeared in home A", id)
		}
		if _, err := b.v.Lookup(ctx, id); err == nil {
			t.Errorf("loop entry %s appeared in home B", id)
		}
	}
}

func TestPeerOutageDegradesToTTL(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	b.p.SetImportTTL(500 * time.Millisecond)
	a.register(t, "jini:laserdisc-1", "http://gw-a/1")

	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)

	// Kill home A. The link degrades; the imported entry keeps serving
	// until its TTL lapses, then vanishes.
	a.srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := b.p.Status()[a.srv.PeerURL()]
		if !st.Connected && st.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("link never degraded: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", true)
}

func TestUnpeerWithdrawsImports(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	a.register(t, "jini:laserdisc-1", "http://gw-a/1")
	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)
	if err := b.p.Unpeer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", true)
	if err := b.p.Unpeer(a.srv.PeerURL()); err == nil {
		t.Error("double unpeer accepted")
	}
}

func TestPeerRejectsDuplicates(t *testing.T) {
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.p.Peer(a.srv.PeerURL()); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := b.p.Peer(""); err == nil {
		t.Error("empty peer URL accepted")
	}
}

func TestReconcileRefreshesQuietRegistries(t *testing.T) {
	// With a short import TTL and a remote whose journal stays quiet, the
	// anti-entropy reconcile must keep imported entries alive. Home B's
	// peering and registry run on a virtual clock: import leases age and
	// refresh timers fire on clock advances, not on wall time.
	a := newHomeFixture(t, "home-a")
	b := newHomeFixture(t, "home-b")
	vc := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	b.srv.Registry().SetClock(vc.Now)
	b.p.SetClock(vc)
	b.p.SetImportTTL(600 * time.Millisecond)
	ctx := context.Background()
	// Register with a long TTL so home A never journals a refresh.
	a.v.SetTTL(time.Hour)
	if _, err := a.v.Register(ctx, testDesc("jini:laserdisc-1"), "http://gw-a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.p.Peer(a.srv.PeerURL()); err != nil {
		t.Fatal(err)
	}
	b.waitLookup(t, "home-a/jini:laserdisc-1", false)

	// Step virtual time through seven anti-entropy intervals (200ms each
	// at ImportTTL/3) — 1.4 virtual seconds, past two full import TTLs.
	// After each advance, wait for the link's reconcile to land (its
	// LastSync reaches the step) and for the refresh timer to be rearmed
	// (the clock holds a future deadline), so no step fires into a
	// disarmed timer.
	for i := 0; i < 7; i++ {
		target := vc.Now().Add(200 * time.Millisecond)
		vc.AdvanceTo(target)
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := b.p.Status()[a.srv.PeerURL()]
			next, armed := vc.NextDeadline()
			if !st.LastSync.Before(target) && armed && next.After(target) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("step %d: reconcile never landed: %+v", i, st)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := b.v.Lookup(ctx, "home-a/jini:laserdisc-1"); err != nil {
		t.Errorf("quiet remote's import expired despite anti-entropy: %v", err)
	}
}
