// Reconnect/resync edge cases the neighborhood harness exposed as
// untested: watch deltas queued before a snapshot reconcile arriving
// after it (cursor regression), and anti-entropy refreshes racing an
// unpeer. Everything here runs on an in-memory network under a virtual
// clock — no sockets, no sleeps, no background goroutines.
package peer

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

// memFixture is two homes on one in-memory network: exporter B serving
// a manual registry, importer A replicating over a manual link.
type memFixture struct {
	clock *vclock.Virtual
	net   *transport.MemNet
	regA  *uddi.Server
	regB  *uddi.Server
	srvB  *vsr.Server
	link  *Link
	pA    *Peering
}

func newMemFixture(t *testing.T) *memFixture {
	t.Helper()
	clock := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	net := transport.NewMemNet()

	newHome := func(name string) (*uddi.Server, *vsr.Server, *Peering) {
		reg := uddi.NewManualServer()
		reg.SetClock(clock.Now)
		srv := vsr.NewDetachedServer(name, reg, nil)
		t.Cleanup(srv.Close)
		p, err := New(name, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		p.SetClock(clock)
		p.SetTransport(net)
		srv.MountPeer(p.ExportHandler())
		net.Handle(name, srv.Handler())
		return reg, srv, p
	}

	regA, _, pA := newHome("home-a")
	regB, srvB, _ := newHome("home-b")

	link, err := pA.PeerManual("http://home-b/peer")
	if err != nil {
		t.Fatal(err)
	}
	return &memFixture{clock: clock, net: net, regA: regA, regB: regB, srvB: srvB, link: link, pA: pA}
}

// export registers a service in B's registry, as B's own gateway would.
func (f *memFixture) export(t *testing.T, id string) {
	t.Helper()
	entry, err := vsr.EntryFor(testDesc(id), "http://home-b/soap")
	if err != nil {
		t.Fatal(err)
	}
	f.regB.Save(entry, time.Hour)
}

// imported reports whether A's registry holds the scoped copy of B's id.
func (f *memFixture) imported(t *testing.T, id string) bool {
	t.Helper()
	_, ok := f.regA.Get("uuid:svc-home-b/" + id)
	return ok
}

func TestManualLinkPullReplicates(t *testing.T) {
	f := newMemFixture(t)
	f.export(t, "jini:laserdisc-1")
	if err := f.link.Pull(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	st := f.link.Status()
	if !st.Connected || st.RemoteHome != "home-b" {
		t.Fatalf("status after pull: %+v", st)
	}
	if !f.imported(t, "jini:laserdisc-1") {
		t.Fatal("service not imported after pull")
	}
	if st.Cursor == 0 {
		t.Fatal("cursor not advanced by pull")
	}
	if !st.LastSync.Equal(f.clock.Now()) {
		t.Fatalf("LastSync = %v, want virtual now %v", st.LastSync, f.clock.Now())
	}
}

// TestStaleDeltasAfterReconcile drives the race the background link is
// exposed to: watch deltas buffered in the channel before a reconcile
// land after the snapshot has already advanced the cursor. Replaying
// them must neither regress the cursor nor undo snapshot state — the
// historical failure was a stale delete dropping an entry the snapshot
// had just re-imported.
func TestStaleDeltasAfterReconcile(t *testing.T) {
	const svc = "jini:laserdisc-1"
	cases := []struct {
		name string
		// delta built against the post-reconcile cursor c.
		delta        func(c uint64) vsr.Delta
		wantImported bool
		wantCursorAt func(c uint64) uint64
		wantApplied  uint64
	}{
		{
			name: "stale delete is skipped",
			delta: func(c uint64) vsr.Delta {
				return vsr.Delta{Op: vsr.DeltaDelete, Seq: c - 1, ServiceID: svc}
			},
			wantImported: true,
			wantCursorAt: func(c uint64) uint64 { return c },
			wantApplied:  0,
		},
		{
			name: "delta at the cursor is skipped",
			delta: func(c uint64) vsr.Delta {
				return vsr.Delta{Op: vsr.DeltaExpire, Seq: c, ServiceID: svc}
			},
			wantImported: true,
			wantCursorAt: func(c uint64) uint64 { return c },
			wantApplied:  0,
		},
		{
			name: "fresh delete applies and advances",
			delta: func(c uint64) vsr.Delta {
				return vsr.Delta{Op: vsr.DeltaDelete, Seq: c + 1, ServiceID: svc}
			},
			wantImported: false,
			wantCursorAt: func(c uint64) uint64 { return c + 1 },
			wantApplied:  1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := newMemFixture(t)
			f.export(t, svc)
			if err := f.link.Pull(context.Background()); err != nil {
				t.Fatalf("pull: %v", err)
			}
			cur := f.link.Status().Cursor
			applied := f.link.Status().Applied
			f.link.apply(context.Background(), c.delta(cur))
			st := f.link.Status()
			if got := f.imported(t, svc); got != c.wantImported {
				t.Errorf("imported = %v, want %v", got, c.wantImported)
			}
			if want := c.wantCursorAt(cur); st.Cursor != want {
				t.Errorf("cursor = %d, want %d", st.Cursor, want)
			}
			if got := st.Applied - applied; got != c.wantApplied {
				t.Errorf("applied %d deltas, want %d", got, c.wantApplied)
			}
		})
	}
}

// TestRefreshRacingUnpeer covers an anti-entropy reconcile that was
// already scheduled when the link was unpeered: it must not write the
// withdrawn imports back into the registry the unpeer just cleaned.
func TestRefreshRacingUnpeer(t *testing.T) {
	cases := []struct {
		name string
		late func(*Link) // the replication call landing after Unpeer
	}{
		{"late reconcile", func(l *Link) { l.Reconcile(context.Background()) }},
		{"late pull", func(l *Link) { _ = l.Pull(context.Background()) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := newMemFixture(t)
			f.export(t, "x10:lamp-1")
			if err := f.link.Pull(context.Background()); err != nil {
				t.Fatalf("pull: %v", err)
			}
			if !f.imported(t, "x10:lamp-1") {
				t.Fatal("service not imported before unpeer")
			}
			if err := f.pA.Unpeer("http://home-b/peer"); err != nil {
				t.Fatalf("unpeer: %v", err)
			}
			if f.imported(t, "x10:lamp-1") {
				t.Fatal("unpeer left the import behind")
			}
			c.late(f.link)
			if f.imported(t, "x10:lamp-1") {
				t.Fatal("replication after unpeer resurrected the import")
			}
			if got := f.link.Status().Imported; got != 0 {
				t.Fatalf("stopped link tracks %d imports", got)
			}
		})
	}
}

// TestManualLinkDegradesOnDeadPeer: removing the remote host from the
// network mid-stream flips the link to degraded mode, and restoring it
// recovers — the partition/heal cycle the simulation schedules.
func TestManualLinkDegradesOnDeadPeer(t *testing.T) {
	f := newMemFixture(t)
	f.export(t, "havi:dvcam-1")
	if err := f.link.Pull(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	f.net.Handle("home-b", nil) // partition
	if err := f.link.Pull(context.Background()); err == nil {
		t.Fatal("pull against dead peer succeeded")
	}
	st := f.link.Status()
	if st.Connected || st.LastError == "" {
		t.Fatalf("status after partition: %+v", st)
	}
	// Degraded mode: the import keeps serving until TTL.
	if !f.imported(t, "havi:dvcam-1") {
		t.Fatal("import vanished on partition")
	}
	// Heal: the home comes back on the network.
	f.net.Handle("home-b", f.srvB.Handler())
	if err := f.link.Pull(context.Background()); err != nil {
		t.Fatalf("pull after heal: %v", err)
	}
	if st := f.link.Status(); !st.Connected {
		t.Fatalf("link did not recover: %+v", st)
	}
}
