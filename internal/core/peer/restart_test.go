// Restart-transparency tests: a durable exporter killed and rebuilt from
// its data directory must look, to an importing peer, like a network
// blip — the replication cursor resumes with no full-snapshot resync —
// while a non-durable exporter restarting from sequence zero must force
// exactly one resync. In-memory network, virtual clock, manual links.
package peer

import (
	"context"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

// restartFixture is a memFixture whose exporter home-b runs a durable
// registry that can be crash-closed and rebuilt from the same directory.
type restartFixture struct {
	*memFixture
	t   *testing.T
	dir string
}

func newRestartFixture(t *testing.T) *restartFixture {
	t.Helper()
	f := &restartFixture{t: t, dir: t.TempDir()}
	clock := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	net := transport.NewMemNet()

	regA := uddi.NewManualServer()
	regA.SetClock(clock.Now)
	srvA := vsr.NewDetachedServer("home-a", regA, nil)
	t.Cleanup(srvA.Close)
	pA, err := New("home-a", regA, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pA.Close)
	pA.SetClock(clock)
	pA.SetTransport(net)
	net.Handle("home-a", srvA.Handler())

	f.memFixture = &memFixture{clock: clock, net: net, regA: regA, pA: pA}
	f.bootExporter()

	link, err := pA.PeerManual("http://home-b/peer")
	if err != nil {
		t.Fatal(err)
	}
	f.link = link
	return f
}

// bootExporter builds (or rebuilds) home-b over the durable registry in
// f.dir and puts it back on the network — one process incarnation.
func (f *restartFixture) bootExporter() {
	f.t.Helper()
	reg, err := uddi.NewManualDurableServer(uddi.DurabilityOptions{
		Dir: f.dir, Fsync: uddi.FsyncOff, Clock: f.clock.Now,
	})
	if err != nil {
		f.t.Fatalf("boot exporter: %v", err)
	}
	srv := vsr.NewDetachedServer("home-b", reg, nil)
	p, err := New("home-b", reg, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	p.SetClock(f.clock)
	p.SetTransport(f.net)
	srv.MountPeer(p.ExportHandler())
	f.net.Handle("home-b", srv.Handler())
	f.regB, f.srvB = reg, srv
	f.t.Cleanup(func() { p.Close(); srv.Close() })
}

// crashExporter kills home-b: off the network, registry crash-closed.
func (f *restartFixture) crashExporter() {
	f.net.Handle("home-b", nil)
	f.regB.CrashClose()
	f.srvB.Close()
}

// TestDurableRestartResumesCursor is the PR's acceptance scenario at the
// peer layer: exporter killed mid-churn and rebuilt from its data dir,
// the importer's next pull resumes from its cursor — no resync, no
// re-reconcile, only the tail it actually missed.
func TestDurableRestartResumesCursor(t *testing.T) {
	ctx := context.Background()
	f := newRestartFixture(t)
	f.export(t, "havi:dvcam-1")
	f.export(t, "jini:printer-1")
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("pull: %v", err)
	}
	st := f.link.Status()
	if st.Resyncs != 0 || !f.imported(t, "havi:dvcam-1") {
		t.Fatalf("baseline replication wrong: %+v", st)
	}
	cursor := st.Cursor
	lastSync := st.LastSync

	// Churn the exporter right up to the kill.
	f.export(t, "x10:lamp-1")
	f.crashExporter()

	// Importer notices the outage.
	if err := f.link.Pull(ctx); err == nil {
		t.Fatal("pull against crashed exporter succeeded")
	}
	if st := f.link.Status(); st.Connected {
		t.Fatalf("link still connected across crash: %+v", st)
	}

	// Restart from the same directory; sequence numbers must continue.
	f.bootExporter()
	if f.regB.Seq() < cursor {
		t.Fatalf("exporter seq regressed: %d < importer cursor %d", f.regB.Seq(), cursor)
	}
	f.clock.Advance(time.Second)
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("pull after restart: %v", err)
	}
	st = f.link.Status()
	if !st.Connected {
		t.Fatalf("link did not recover: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("durable restart forced %d resyncs, want 0: %+v", st.Resyncs, st)
	}
	if !st.LastSync.Equal(lastSync) {
		t.Fatalf("reconnect ran a full reconcile (LastSync moved %v → %v)", lastSync, st.LastSync)
	}
	if st.Cursor <= cursor {
		t.Fatalf("cursor did not advance over the missed tail: %d ≤ %d", st.Cursor, cursor)
	}
	// The registration made just before the kill arrived incrementally.
	if !f.imported(t, "x10:lamp-1") {
		t.Fatal("pre-crash registration not replicated after restart")
	}
	// And post-restart churn flows as if nothing happened.
	f.export(t, "upnp:tv-1")
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if !f.imported(t, "upnp:tv-1") {
		t.Fatal("post-restart registration not replicated")
	}
}

// TestNonDurableRestartForcesResync is the contrast case: an exporter
// that loses its journal restarts from sequence zero, the importer's
// cursor is unserviceable, and the link must fall back to exactly one
// full-snapshot resync (counted in Status.Resyncs).
func TestNonDurableRestartForcesResync(t *testing.T) {
	ctx := context.Background()
	f := newMemFixture(t)
	f.export(t, "havi:dvcam-1")
	f.export(t, "jini:printer-1")
	f.export(t, "x10:lamp-1")
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("pull: %v", err)
	}
	cursor := f.link.Status().Cursor

	// Kill home-b and restart it with a fresh in-memory registry: the
	// journal restarts from zero.
	f.net.Handle("home-b", nil)
	f.regB.Close()
	f.srvB.Close()
	_ = f.link.Pull(ctx) // observe the outage

	reg := uddi.NewManualServer()
	reg.SetClock(f.clock.Now)
	srv := vsr.NewDetachedServer("home-b", reg, nil)
	t.Cleanup(srv.Close)
	p, err := New("home-b", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.SetClock(f.clock)
	p.SetTransport(f.net)
	srv.MountPeer(p.ExportHandler())
	f.net.Handle("home-b", srv.Handler())
	entry, err := vsr.EntryFor(testDesc("havi:dvcam-1"), "http://home-b/soap")
	if err != nil {
		t.Fatal(err)
	}
	reg.Save(entry, time.Hour)

	f.clock.Advance(time.Second)
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("pull after amnesiac restart: %v", err)
	}
	st := f.link.Status()
	if st.Resyncs != 1 {
		t.Fatalf("amnesiac restart produced %d resyncs, want 1: %+v", st.Resyncs, st)
	}
	if !f.imported(t, "havi:dvcam-1") {
		t.Fatal("resync did not re-import the surviving service")
	}
	// The cursor never regresses (stale-delta guard), so every pull keeps
	// resyncing until the reborn journal grows past it — the storm a
	// durable restart avoids entirely.
	if err := f.link.Pull(ctx); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if got := f.link.Status(); got.Resyncs != 2 {
		t.Fatalf("second pull against short journal: %d resyncs, want 2 (cursor %d vs pre-crash %d)",
			got.Resyncs, got.Cursor, cursor)
	}
}
