// The import side of a Peering: one Link per remote home, consuming the
// remote repository's change watch and mirroring admitted entries into
// the local registry under home-scoped IDs.
package peer

import (
	"context"
	"sync"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

// Status is one link's replication condition — the peering counterpart of
// vsg.Health. Connected false is degraded mode: entries already imported
// keep serving until their TTL lapses, after which the remote home's
// services vanish locally until the link recovers and resynchronizes.
type Status struct {
	// URL is the remote export endpoint this link replicates from.
	URL string `json:"url"`
	// RemoteHome is the peer's home name as stamped on its exports;
	// empty until the first entry has been imported.
	RemoteHome string `json:"remote_home,omitempty"`
	// Connected reports a live watch stream against the peer.
	Connected bool `json:"connected"`
	// Authenticated reports that the live stream is mutually
	// authenticated: this home's identity signed every request and the
	// peer's response signatures verified against the trust store. False
	// while Connected means the homes run in open mode (no identity).
	Authenticated bool `json:"authenticated"`
	// LastError is the failure that broke the stream, cleared on
	// recovery. Authentication refusals land here too — a peer that does
	// not trust this home reports uddi: E_authTokenRequired, a peer this
	// home does not trust fails response verification.
	LastError string `json:"last_error,omitempty"`
	// Cursor is the replication cursor: the highest remote journal
	// sequence number applied locally.
	Cursor uint64 `json:"cursor"`
	// CursorEpoch is the replication epoch the cursor was handed out
	// under (0 until the remote states one). Across a remote leader
	// failover, presenting it lets the promoted replica replay shared
	// history for this cursor instead of demanding a full resync.
	CursorEpoch uint64 `json:"cursor_epoch,omitempty"`
	// Imported counts remote entries currently registered locally.
	Imported int `json:"imported"`
	// Applied counts change deltas applied since the link started.
	Applied uint64 `json:"applied"`
	// LastSync is the time of the last successful full reconciliation
	// (performed on first contact, on resync, and periodically as
	// anti-entropy).
	LastSync time.Time `json:"last_sync"`
	// Resyncs counts the times the remote declared our cursor
	// unserviceable (journal overrun, or a non-durable peer restarting
	// from sequence zero) and forced a full-snapshot resync. A durable
	// peer restarting with its WAL intact does not bump this: the cursor
	// resumes where it left off.
	Resyncs uint64 `json:"resyncs"`
	// Proto is the wire protocol the link's traffic currently rides:
	// "binary" once the peer has negotiated the session-keyed fast path,
	// "soap" otherwise (never negotiated, refused, or downgraded).
	Proto string `json:"proto,omitempty"`
}

// Link replicates one remote home's registry into the local one.
type Link struct {
	p      *Peering
	url    string
	remote *vsr.VSR
	cancel context.CancelFunc
	done   chan struct{}
	// manual links (PeerManual) have no run goroutine; the owner drives
	// them with Pull and Reconcile.
	manual bool

	mu sync.Mutex
	st Status
	// stopped marks a link the peering has detached. Replication calls
	// arriving afterwards — an anti-entropy refresh racing an Unpeer, a
	// simulation event scheduled before the unpeer landed — must not
	// write into the registry the withdrawal just cleaned.
	stopped bool
	// imported maps the remote-local service ID to the local registry key
	// of its scoped copy, so delete/expire deltas — which carry only the
	// remote ID — find what to withdraw.
	imported map[string]string
}

func newLink(p *Peering, urls []string) *Link {
	url := urls[0]
	remote := vsr.NewSet(urls...)
	// Every wire op the link issues — watch rounds, snapshot reconciles —
	// rides the peering's dialer: the binary fast path once the peer has
	// negotiated a session, signed SOAP/HTTP otherwise. In open mode the
	// credentials are inert and this degrades to the plain underlying
	// transport (shared TCP, or an injected MemNet).
	remote.SetDialer(p.dialerFor())
	return &Link{
		p:        p,
		url:      url,
		remote:   remote,
		done:     make(chan struct{}),
		st:       Status{URL: url},
		imported: make(map[string]string),
	}
}

// Status returns a snapshot of the link's condition.
func (l *Link) Status() Status {
	l.p.mu.Lock()
	d := l.p.dialer
	l.p.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.Imported = len(l.imported)
	if d != nil {
		st.Proto = d.ProtocolFor(l.url)
	}
	if st.Proto == "" && st.Connected {
		st.Proto = "soap"
	}
	return st
}

func (l *Link) start() {
	ctx, cancel := context.WithCancel(context.Background())
	l.cancel = cancel
	go l.run(ctx)
}

// stop halts the link; withdraw additionally deletes everything it
// imported (Unpeer wants the registry clean, Close leaves entries to
// their TTL).
func (l *Link) stop(withdraw bool) {
	if l.cancel != nil {
		l.cancel()
	}
	<-l.done
	l.mu.Lock()
	l.stopped = true
	if !withdraw {
		l.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(l.imported))
	for _, key := range l.imported {
		keys = append(keys, key)
	}
	l.imported = make(map[string]string)
	l.mu.Unlock()
	for _, key := range keys {
		l.p.reg.Delete(key)
	}
}

// run consumes the remote watch stream. vsr.Watch supplies the stream
// lifecycle — Up on (re)connect, Down with the cause on failure, Resync
// when the remote journal no longer covers our cursor — and this loop
// folds those into replication: full reconciliation on Up/Resync,
// incremental application otherwise. A periodic reconcile (anti-entropy)
// refreshes imported TTLs even when the remote journal is quiet, and
// repairs any divergence without waiting for a resync.
func (l *Link) run(ctx context.Context) {
	defer close(l.done)
	ch, err := l.remote.Watch(ctx, 0)
	if err != nil {
		l.mu.Lock()
		l.st.LastError = err.Error()
		l.mu.Unlock()
		return
	}
	refresh := l.p.clock.NewTimer(l.refreshInterval())
	defer refresh.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case d, ok := <-ch:
			if !ok {
				return
			}
			l.apply(ctx, d)
		case <-refresh.C():
			l.mu.Lock()
			up := l.st.Connected
			l.mu.Unlock()
			if up {
				l.reconcile(ctx)
			}
			// Re-arm from the current TTL so a SetImportTTL after Peer
			// keeps refresh cadence and entry lifetime coherent.
			refresh.Reset(l.refreshInterval())
		}
	}
}

// refreshInterval is the anti-entropy cadence: imported entries must be
// re-saved well inside their TTL, mirroring the gateways' TTL/3 refresh.
func (l *Link) refreshInterval() time.Duration {
	interval := l.p.ImportTTL() / 3
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return interval
}

// apply folds one watch delta into the local registry.
func (l *Link) apply(ctx context.Context, d vsr.Delta) {
	switch d.Op {
	case vsr.DeltaUp:
		l.mu.Lock()
		wasUp := l.st.Connected
		remote := l.st.RemoteHome
		first := l.st.LastSync.IsZero()
		l.st.Connected = true
		l.st.Authenticated = l.p.auth.Enabled()
		l.st.LastError = ""
		l.mu.Unlock()
		if !wasUp {
			detail := "open mode"
			if l.p.auth.Enabled() {
				detail = "mutually authenticated"
			}
			l.p.record(audit.Event{Type: audit.PeerConnect, Caller: remote,
				Detail: l.url + ": " + detail})
		}
		// Full reconciliation only on first contact. A *re*connect resumes
		// incrementally from the cursor: the watch stream replays the
		// missed span, and a remote that can no longer serve it says so
		// with DeltaResync. That is what makes a durable peer's restart
		// invisible here — no snapshot storm, just the journal tail.
		if first {
			l.reconcile(ctx)
		}
	case vsr.DeltaDown:
		l.mu.Lock()
		wasUp := l.st.Connected
		remote := l.st.RemoteHome
		l.st.Connected = false
		l.st.Authenticated = false
		if d.Err != nil {
			l.st.LastError = d.Err.Error()
		}
		l.mu.Unlock()
		if wasUp {
			detail := l.url
			if d.Err != nil {
				detail += ": " + d.Err.Error()
			}
			l.p.record(audit.Event{Type: audit.PeerDisconnect, Caller: remote, Detail: detail})
		}
	case vsr.DeltaResync:
		l.mu.Lock()
		l.st.Resyncs++
		l.mu.Unlock()
		l.reconcile(ctx)
		l.mu.Lock()
		if d.Seq > l.st.Cursor {
			l.st.Cursor = d.Seq
		}
		l.mu.Unlock()
	case vsr.DeltaAdd, vsr.DeltaUpdate:
		if l.staleDelta(d.Seq) {
			return
		}
		l.upsert(d.Remote)
		l.mu.Lock()
		l.st.Cursor = d.Seq
		l.st.Applied++
		l.mu.Unlock()
	case vsr.DeltaDelete, vsr.DeltaExpire:
		if l.staleDelta(d.Seq) {
			return
		}
		l.drop(d.ServiceID)
		l.mu.Lock()
		l.st.Cursor = d.Seq
		l.st.Applied++
		l.mu.Unlock()
	}
}

// staleDelta reports whether a change delta is already covered by the
// cursor. Watch deltas queued before a reconcile can arrive after it:
// the snapshot at sequence S subsumes every change ≤ S, so replaying one
// would both regress the cursor and corrupt state — a stale delete
// dropping an entry the snapshot just re-imported.
func (l *Link) staleDelta(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return seq <= l.st.Cursor
}

// upsert registers (or refreshes) the scoped copy of one remote service.
func (l *Link) upsert(r vsr.Remote) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	origin := r.Desc.Context[service.CtxHome]
	switch {
	case origin == "":
		// Unstamped: the endpoint is not a peering export face (or
		// predates one). Without a scope the entry cannot be filed.
		return
	case origin == l.p.home:
		// Our own name coming back at us — a peering loop or a
		// misconfigured remote. Importing it would shadow local services.
		return
	case r.Desc.Context[service.CtxPeerOrigin] != "":
		// A transit entry the remote should not have exported; the
		// one-hop rule holds on both sides.
		return
	}
	if _, _, scoped := service.SplitScopedID(r.Desc.ID); scoped {
		return
	}
	localID := r.Desc.ID
	desc := r.Desc.Clone()
	desc.ID = service.ScopeID(origin, localID)
	desc.Context[service.CtxPeerOrigin] = origin
	entry, err := vsr.EntryFor(desc, r.Endpoint)
	if err != nil {
		return
	}
	l.p.reg.Save(entry, l.p.ImportTTL())
	l.mu.Lock()
	if l.st.RemoteHome == "" {
		l.st.RemoteHome = origin
	}
	l.imported[localID] = entry.Key
	l.mu.Unlock()
}

// drop withdraws the scoped copy of one remote service.
func (l *Link) drop(remoteID string) {
	l.mu.Lock()
	key, ok := l.imported[remoteID]
	if ok {
		delete(l.imported, remoteID)
	}
	l.mu.Unlock()
	if ok {
		l.p.reg.Delete(key)
	}
}

// reconcile replaces incremental state with ground truth: a full snapshot
// of the remote export face, upserted entry by entry, followed by the
// withdrawal of anything imported earlier that the snapshot no longer
// contains. It runs on connect (the journal may predate us), on resync
// (the journal skipped past us), and periodically as anti-entropy. A
// failed snapshot changes nothing: imported entries keep serving until
// TTL, exactly the degraded mode a broken watch causes.
func (l *Link) reconcile(ctx context.Context) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	remotes, seq, err := l.remote.FindSeq(sctx, vsr.Query{})
	cancel()
	if err != nil {
		l.mu.Lock()
		l.st.LastError = err.Error()
		l.mu.Unlock()
		return
	}
	seen := make(map[string]bool, len(remotes))
	for _, r := range remotes {
		l.upsert(r)
		seen[r.Desc.ID] = true
	}
	l.mu.Lock()
	var stale []string
	for remoteID, key := range l.imported {
		if !seen[remoteID] {
			stale = append(stale, key)
			delete(l.imported, remoteID)
		}
	}
	if seq > l.st.Cursor {
		l.st.Cursor = seq
	}
	l.st.LastSync = l.p.clock.Now()
	l.mu.Unlock()
	for _, key := range stale {
		l.p.reg.Delete(key)
	}
}

// Reconcile runs one snapshot reconciliation on a manual link (see
// reconcile); the background link schedules its own.
func (l *Link) Reconcile(ctx context.Context) { l.reconcile(ctx) }

// Pull drives one synchronous replication round on a manual link: a
// single immediate watch probe against the remote export face, folded
// through the same delta state machine the background link runs — Up on
// first contact (with a full reconcile), Down on failure, Resync when
// the remote journal has skipped past the cursor, then each pending
// change in order. The returned error is the transport failure, if any;
// link status degrades the same way a broken watch stream would.
func (l *Link) Pull(ctx context.Context) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return nil
	}
	since, sinceEpoch := l.st.Cursor, l.st.CursorEpoch
	up := l.st.Connected
	l.mu.Unlock()
	deltas, next, nextEpoch, resync, err := l.remote.WatchOnceEpoch(ctx, since, sinceEpoch, 0)
	if err != nil {
		l.apply(ctx, vsr.Delta{Op: vsr.DeltaDown, Err: err})
		return err
	}
	if !up {
		l.apply(ctx, vsr.Delta{Op: vsr.DeltaUp, Seq: next})
	}
	if resync {
		l.apply(ctx, vsr.Delta{Op: vsr.DeltaResync, Seq: next})
	}
	for _, d := range deltas {
		l.apply(ctx, d)
	}
	// An empty or fully filtered round still advances the cursor, exactly
	// as the background watch loop advances `since`. A round that crossed
	// into a newer epoch adopts next even when it sits below the old
	// cursor: the remote failed over, and next is the promoted replica's
	// shared-history replay point, not a stale answer.
	l.mu.Lock()
	if nextEpoch > l.st.CursorEpoch {
		l.st.Cursor, l.st.CursorEpoch = next, nextEpoch
	} else if next > l.st.Cursor {
		l.st.Cursor = next
	}
	l.mu.Unlock()
	return nil
}
