// Package peer federates homes: it connects one home's Virtual Service
// Repository to the repositories of other homes, so services registered
// in one residence become resolvable — and callable, through the ordinary
// gateway wire path — from another. The paper's framework stops at a
// single home (§6 names wide-area access as future work); this package
// opens that scenario class without any new wire protocol: peers
// replicate over the same UDDI operations gateways already speak.
//
// Each home runs one Peering next to its repository. It has two faces:
//
//   - Export: a read-only uddi.ViewHandler (mounted by vsr.Server at
//     /peer) through which other homes see this home's registry filtered
//     by an export Policy and stamped with the home's name. Entries that
//     were themselves imported from a peer are never re-exported, keeping
//     federation one-hop.
//   - Import: one Link per remote peer, a vsr.Watch consumer of the
//     remote's export face. The remote journal's sequence number is the
//     replication cursor; every admitted change is re-registered in the
//     local registry under a home-scoped ID ("home-a/jini:laserdisc-1")
//     with the original gateway endpoint, so local gateways resolve and
//     call remote services exactly like local ones — over the wire.
//
// Failure behaviour mirrors the in-home watch subsystem: while a link is
// up, remote changes land within one watch round trip; when a peer goes
// dark, imported registrations simply stop being refreshed and lapse by
// TTL — the same degraded mode a gateway's resolve cache falls into when
// its repository watch drops.
//
// When the home has an identity (internal/core/identity), the peering
// carries the trust boundary: the export face serves only authenticated,
// trusted homes — each seeing just what the export policy and the
// per-caller service ACL admit — and every import link signs its watch
// and snapshot requests while verifying the remote's response
// signatures, so an untrusted party can neither read this home's
// registry nor feed it entries. Link status surfaces the authentication
// state alongside connectivity.
package peer

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

// Policy is a home's export policy: which local services other homes may
// see. Patterns use events.TopicMatches semantics — exact match, the
// universal "*" (or empty), and "prefix*" wildcards — applied to the
// federation service ID, e.g. "havi:*" or "x10:lamp-1". It lives in the
// identity package with the rest of the boundary-policy surface; the
// alias keeps the peering API self-contained.
type Policy = identity.Policy

// Peering is one home's federation endpoint: the export face other homes
// replicate from, plus the import links this home runs against its peers.
type Peering struct {
	home  string
	reg   *uddi.Server
	auth  *identity.Auth
	clock vclock.Clock
	// rt, when set, carries link traffic instead of the shared TCP
	// transport — the dialer seam a transport.MemNet plugs into.
	rt http.RoundTripper
	// dialer owns link credentials and per-peer protocol negotiation:
	// watch rounds and reconciles ride the binary fast path to peers
	// that negotiate it and signed HTTP to the rest. Built lazily on the
	// first link so it sees the final rt; binaryOff records a
	// SetBinaryEnabled(false) made before then.
	dialer    *transport.Dialer
	binaryOff bool

	mu        sync.Mutex
	importTTL time.Duration
	links     map[string]*Link
	closed    bool

	// recorder, when set, receives link up/down events and per-caller
	// export denials.
	recorder atomic.Pointer[audit.Recorder]

	// denySeen dedups view-denial audit events: the export face is
	// re-filtered on every watch round, so an unchanged refusal would
	// otherwise flood the log once per poll. Keyed caller/service/pattern;
	// bounded, cleared wholesale when full (re-recording a stale denial is
	// harmless, missing a new one is not).
	denyMu   sync.Mutex
	denySeen map[string]struct{}
}

// denySeenLimit bounds the view-denial dedup cache.
const denySeenLimit = 4096

// New builds the peering layer for a home. home names this residence in
// every other home's ID space (imported services appear there as
// "<home>/<id>"); registry is the home's own UDDI store, written
// in-process by import links and served through the export face; auth is
// the home's authentication context — it owns the export policy and
// service ACL, and its identity (when installed) signs link traffic. A
// nil auth gets a private open-mode context, the pre-identity behaviour.
func New(home string, registry *uddi.Server, auth *identity.Auth) (*Peering, error) {
	if home == "" {
		return nil, fmt.Errorf("peer: a home must be named to federate (see NewHomeFederation)")
	}
	if strings.Contains(home, service.ScopeSep) {
		// A separator inside the scope would make scoped IDs ambiguous.
		return nil, fmt.Errorf("peer: home name %q must not contain %q", home, service.ScopeSep)
	}
	if auth == nil {
		auth = identity.NewAuth(home)
	} else if auth.Home() != home {
		return nil, fmt.Errorf("peer: auth context names home %q, want %q", auth.Home(), home)
	}
	return &Peering{
		home:      home,
		reg:       registry,
		auth:      auth,
		clock:     vclock.System,
		importTTL: vsr.DefaultTTL,
		links:     make(map[string]*Link),
		denySeen:  make(map[string]struct{}),
	}, nil
}

// SetClock overrides the peering's time source — the anti-entropy
// refresh timer and link sync timestamps. Call before the first Peer;
// tests and the deterministic simulation install a vclock.Virtual.
func (p *Peering) SetClock(c vclock.Clock) {
	if c != nil {
		p.clock = c
	}
}

// SetTransport routes subsequent links' wire traffic through rt instead
// of the shared TCP transport; signing and verification still apply on
// top. The simulation passes its transport.MemNet here. Call before
// Peer; existing links keep their transport.
func (p *Peering) SetTransport(rt http.RoundTripper) { p.rt = rt }

// dialerFor returns the peering's shared link dialer, building it on
// first use. Callers hold p.mu.
func (p *Peering) dialerFor() *transport.Dialer {
	if p.dialer == nil {
		p.dialer = transport.NewDialer(p.auth)
		p.dialer.Transport = p.rt
		if p.binaryOff {
			p.dialer.Binary = false
		}
	}
	return p.dialer
}

// SetBinaryEnabled turns the binary fast path off (or back on) for this
// home's import links; disabled, every round rides signed SOAP/HTTP.
// Call alongside SetTransport, before Peer.
func (p *Peering) SetBinaryEnabled(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.binaryOff = !on
	if p.dialer != nil {
		p.dialer.Binary = on
	}
}

// WireStats reports per-peer link protocol state (see
// transport.WireStats); empty before the first link.
func (p *Peering) WireStats() transport.WireStats {
	p.mu.Lock()
	d := p.dialer
	p.mu.Unlock()
	if d == nil {
		return nil
	}
	return d.WireStatsSnapshot()
}

// SetRecorder installs the audit recorder peering decisions are reported
// to; nil turns recording off.
func (p *Peering) SetRecorder(r audit.Recorder) {
	if r == nil {
		p.recorder.Store(nil)
		return
	}
	p.recorder.Store(&r)
}

// record emits an audit event if a recorder is installed, stamping this
// home as the decider.
func (p *Peering) record(ev audit.Event) {
	rp := p.recorder.Load()
	if rp == nil {
		return
	}
	if ev.Home == "" {
		ev.Home = p.home
	}
	(*rp).Record(ev)
}

// recordViewDeny audits one caller being refused one service at the
// export face — once per distinct caller/service/pattern, not once per
// watch round. Open-mode filtering and the home's own view are not
// denials and are not recorded.
func (p *Peering) recordViewDeny(caller, serviceID, pattern, layer string) {
	if !p.auth.Enabled() || caller == "" || caller == p.home {
		return
	}
	if p.recorder.Load() == nil {
		return
	}
	key := caller + "\x00" + serviceID + "\x00" + pattern + "\x00" + layer
	p.denyMu.Lock()
	if _, dup := p.denySeen[key]; dup {
		p.denyMu.Unlock()
		return
	}
	if len(p.denySeen) >= denySeenLimit {
		p.denySeen = make(map[string]struct{})
	}
	p.denySeen[key] = struct{}{}
	p.denyMu.Unlock()
	why := layer + ": "
	if pattern != "" {
		why += fmt.Sprintf("deny pattern %q", pattern)
	} else {
		why += "no allow rule matches"
	}
	p.record(audit.Event{
		Type: audit.PolicyDeny, Caller: caller, Service: serviceID,
		Pattern: pattern, Detail: "export view: " + why,
	})
}

// Home returns this home's federation name.
func (p *Peering) Home() string { return p.home }

// SetPolicy installs the export policy. It applies to every subsequent
// export-face response, including watch rounds already parked.
func (p *Peering) SetPolicy(pol Policy) { p.auth.SetExportPolicy(pol) }

// Policy returns the current export policy.
func (p *Peering) Policy() Policy { return p.auth.ExportPolicy() }

// Auth returns the peering's authentication context.
func (p *Peering) Auth() *identity.Auth { return p.auth }

// SetImportTTL overrides the registration lifetime of imported entries
// (default vsr.DefaultTTL). It is the staleness bound of peer-outage
// degraded mode: when a peer goes dark, its services survive locally for
// at most this long. Set it before the first Peer call.
func (p *Peering) SetImportTTL(d time.Duration) {
	if d <= 0 {
		return
	}
	p.mu.Lock()
	p.importTTL = d
	p.mu.Unlock()
}

// ImportTTL returns the imported-entry registration lifetime.
func (p *Peering) ImportTTL() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.importTTL
}

// ExportHandler returns the read-only registry face served to other
// homes: the home's registry through the export policy — and, for each
// authenticated caller, that caller's service-ACL slice of it — with
// each entry stamped with this home's name so importers know its scope.
// Mount it with vsr.Server.MountPeer (behind the server's auth
// middleware, which is what supplies the caller).
func (p *Peering) ExportHandler() http.Handler {
	return p.reg.CallerViewHandler(identity.CallerFrom, p.viewFor)
}

// ExportView returns one caller's export view directly — the policy
// behind ExportHandler with no HTTP in front, for the binary-native
// registry face (vsr.Server.MountPeerView). The two faces share
// exportEntry, so a peer sees the same slice of the registry on either
// wire.
func (p *Peering) ExportView(caller string) uddi.View {
	return p.viewFor(caller)
}

// viewFor builds one caller's export view.
func (p *Peering) viewFor(caller string) uddi.View {
	return func(e uddi.Entry) (uddi.Entry, bool) { return p.exportEntry(caller, e) }
}

// exportEntry is the per-caller uddi.View behind ExportHandler. caller
// is the authenticated peer home, or "" on an open (identity-less)
// deployment.
func (p *Peering) exportEntry(caller string, e uddi.Entry) (uddi.Entry, bool) {
	// Never re-export an import: one-hop federation. Imported entries are
	// recognizable by their scoped name alone, which also covers
	// identity-only delete/expire journal records that carry no
	// categories.
	if _, _, scoped := service.SplitScopedID(e.Name); scoped {
		return uddi.Entry{}, false
	}
	if e.Categories[service.CtxPeerOrigin] != "" {
		return uddi.Entry{}, false
	}
	if admit, pattern := p.auth.ExportDecide(e.Name); !admit {
		p.recordViewDeny(caller, e.Name, pattern, "export policy")
		return uddi.Entry{}, false
	}
	// The ACL refines visibility per authenticated caller; it cannot
	// apply on an open deployment (no caller identity to match) and never
	// applies to the home itself.
	if p.auth.Enabled() && caller != p.home {
		if admit, rule := p.auth.ACLDecide(caller, e.Name); !admit {
			p.recordViewDeny(caller, e.Name, rule, "service ACL")
			return uddi.Entry{}, false
		}
	}
	e = e.Clone()
	if e.Categories == nil {
		e.Categories = make(map[string]string)
	}
	// The stamp is authoritative: whatever a publisher claimed, entries
	// served here belong to this home.
	e.Categories[service.CtxHome] = p.home
	return e, true
}

// Peer starts replicating from a remote home's export endpoint (its
// vsr.Server.PeerURL). The returned Link is already running; its Status
// reports connectivity and the replication cursor.
func (p *Peering) Peer(url string) (*Link, error) {
	return p.addLink([]string{url}, false)
}

// PeerSet is Peer against a replicated repository: the link walks the
// ordered endpoint list with error-driven failover, so when the pinned
// endpoint dies it resumes its watch — cursor intact, because leader
// sequence numbers survive promotion — against a surviving replica. The
// link is keyed by the first URL.
func (p *Peering) PeerSet(urls ...string) (*Link, error) {
	return p.addLink(urls, false)
}

// PeerManual attaches a link with no background goroutine: nothing
// replicates until the caller drives it with Link.Pull (one synchronous
// watch round) and Link.Reconcile (one snapshot reconciliation). The
// deterministic simulation uses this so every replication round happens
// exactly when its event loop schedules one; the state machine is the
// same one the background link runs.
func (p *Peering) PeerManual(url string) (*Link, error) {
	return p.addLink([]string{url}, true)
}

// PeerManualSet is PeerManual over a replica-set endpoint list — the
// manually driven twin of PeerSet, for the deterministic simulation's
// failover scenarios.
func (p *Peering) PeerManualSet(urls ...string) (*Link, error) {
	return p.addLink(urls, true)
}

func (p *Peering) addLink(urls []string, manual bool) (*Link, error) {
	if len(urls) == 0 || urls[0] == "" {
		return nil, fmt.Errorf("peer: empty peer URL")
	}
	url := urls[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("peer: peering closed")
	}
	if _, dup := p.links[url]; dup {
		return nil, fmt.Errorf("peer: already peered with %s", url)
	}
	l := newLink(p, urls)
	if manual {
		l.manual = true
		close(l.done) // no run loop for stop to wait on
		p.links[url] = l
		return l, nil
	}
	p.links[url] = l
	l.start()
	return l, nil
}

// Unpeer stops replication from a peer and withdraws every entry imported
// from it.
func (p *Peering) Unpeer(url string) error {
	p.mu.Lock()
	l, ok := p.links[url]
	if ok {
		delete(p.links, url)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("peer: not peered with %s", url)
	}
	l.stop(true)
	return nil
}

// Status reports every link keyed by peer URL.
func (p *Peering) Status() map[string]Status {
	p.mu.Lock()
	links := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	out := make(map[string]Status, len(links))
	for _, l := range links {
		st := l.Status()
		out[st.URL] = st
	}
	return out
}

// Close stops every link. Imported entries are left to expire by TTL —
// on shutdown there is no point churning the registry a closing
// federation is about to discard.
func (p *Peering) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	links := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.links = make(map[string]*Link)
	d := p.dialer
	p.dialer = nil
	p.mu.Unlock()
	for _, l := range links {
		l.stop(false)
	}
	if d != nil {
		d.Close()
	}
}
