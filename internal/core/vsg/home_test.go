// Home-aware gateway behavior: scoped-ID canonicalization and the
// loopback-vs-wire rule (loopback only between gateways of the same
// home; cross-home calls always ride the wire, even in one process).
package vsg

import (
	"context"
	"testing"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

// homeRig builds one repository per home and one gateway per home, all
// in this process.
func homeGateway(t *testing.T, home, net string) (*vsr.Server, *VSG) {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := New(net, srv.URL())
	gw.SetHome(home)
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Close()
		srv.Close()
	})
	return srv, gw
}

func TestOwnScopeCanonicalization(t *testing.T) {
	_, gw := homeGateway(t, "home-a", "net1")
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := gw.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}
	// The scoped spelling of a local service reaches the same export.
	if _, err := gw.Call(ctx, "home-a/jini:lamp-1", "SetLevel", []service.Value{service.IntValue(7)}); err != nil {
		t.Fatal(err)
	}
	got, err := gw.Call(ctx, "jini:lamp-1", "Level", nil)
	if err != nil || got.Int() != 7 {
		t.Fatalf("Level = %v, %v", got, err)
	}
	// A foreign scope is not stripped: it must resolve via the
	// repository, and here it cannot.
	if _, err := gw.Call(ctx, "home-b/jini:lamp-1", "Level", nil); err == nil {
		t.Error("foreign-scoped ID resolved locally")
	}
}

func TestExportTagsHomeContext(t *testing.T) {
	srv, gw := homeGateway(t, "home-a", "net1")
	ctx := context.Background()
	if err := gw.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	r, err := vsr.New(srv.URL()).Lookup(ctx, "jini:lamp-1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Desc.Context[service.CtxHome] != "home-a" {
		t.Errorf("export context = %v, want CtxHome=home-a", r.Desc.Context)
	}
}

// TestCrossHomeCallSkipsLoopback: two homes in one process; a call from
// home B to a service imported from home A must travel the wire even
// though A's gateway is loopback-reachable.
func TestCrossHomeCallSkipsLoopback(t *testing.T) {
	srvA, gwA := homeGateway(t, "home-a", "net1")
	_, gwB := homeGateway(t, "home-b", "net1")
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := gwA.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}

	// Hand B the resolved remote the way its repository would present an
	// import: scoped ID, A's gateway endpoint.
	desc := lampDesc("jini:lamp-1")
	desc.ID = service.ScopeID("home-a", desc.ID)
	remote := vsr.Remote{Desc: desc, Endpoint: gwA.EndpointFor("jini:lamp-1")}

	got, err := gwB.CallRemote(ctx, remote, "Level", nil)
	if err != nil || got.Int() != 0 {
		t.Fatalf("cross-home CallRemote = %v, %v", got, err)
	}
	if _, _, loop := gwB.Stats(); loop != 0 {
		t.Errorf("cross-home call took loopback (%d loopback calls)", loop)
	}
	inA, _, _ := gwA.Stats()
	if inA != 1 {
		t.Errorf("home A gateway inbound = %d, want 1 wire call", inA)
	}

	// Same-home gateways in one process still loopback.
	gwA2 := New("net2", srvA.URL())
	gwA2.SetHome("home-a")
	if err := gwA2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwA2.Close)
	unscoped := vsr.Remote{Desc: lampDesc("jini:lamp-1"), Endpoint: gwA.EndpointFor("jini:lamp-1")}
	if _, err := gwA2.CallRemote(ctx, unscoped, "Level", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, loop := gwA2.Stats(); loop != 1 {
		t.Errorf("same-home call skipped loopback (%d loopback calls)", loop)
	}
}
