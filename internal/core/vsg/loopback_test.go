// Loopback-vs-wire equivalence: the in-process fast path must be
// observationally identical to the SOAP/HTTP path — same results for
// every value kind (including XML-unsafe strings that the wire base64-
// wraps), same *service.RemoteError codes for every target-side failure,
// and call accounting on both gateways. Each case runs twice, once per
// path, and the outcomes are compared to each other.
package vsg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/service"
)

// echoDesc is a service with one operation per value kind plus failure
// injection.
func echoDesc(id string) service.Description {
	return service.Description{
		ID: id, Name: id, Middleware: "bench",
		Interface: service.Interface{
			Name: "Echo",
			Operations: []service.Operation{
				{Name: "EchoString", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
				{Name: "EchoInt", Inputs: []service.Parameter{{Name: "v", Type: service.KindInt}}, Output: service.KindInt},
				{Name: "EchoFloat", Inputs: []service.Parameter{{Name: "v", Type: service.KindFloat}}, Output: service.KindFloat},
				{Name: "EchoBool", Inputs: []service.Parameter{{Name: "v", Type: service.KindBool}}, Output: service.KindBool},
				{Name: "EchoBytes", Inputs: []service.Parameter{{Name: "v", Type: service.KindBytes}}, Output: service.KindBytes},
				{Name: "Fail", Inputs: []service.Parameter{{Name: "mode", Type: service.KindString}}, Output: service.KindVoid},
			},
		},
	}
}

type echoService struct{}

func (echoService) Invoke(_ context.Context, op string, args []service.Value) (service.Value, error) {
	switch op {
	case "EchoString", "EchoInt", "EchoFloat", "EchoBool", "EchoBytes":
		return args[0], nil
	case "Fail":
		switch args[0].Str() {
		case "unavailable":
			return service.Value{}, service.ErrUnavailable
		case "badarg":
			return service.Value{}, fmt.Errorf("made up: %w", service.ErrBadArgument)
		case "remote":
			return service.Value{}, &service.RemoteError{Code: "Custom", Msg: "custom remote failure"}
		default:
			return service.Value{}, errors.New("plain failure")
		}
	default:
		return service.Value{}, service.ErrNoSuchOperation
	}
}

// bothPaths runs fn once over loopback and once over the wire (loopback
// disabled on the calling gateway) and hands both outcomes to check.
func bothPaths(t *testing.T, r *rig, fn func(ctx context.Context) (service.Value, error),
	check func(t *testing.T, path string, v service.Value, err error)) {
	t.Helper()
	ctx := context.Background()
	r.gw2.SetLoopbackEnabled(true)
	vLoop, errLoop := fn(ctx)
	check(t, "loopback", vLoop, errLoop)
	r.gw2.SetLoopbackEnabled(false)
	vWire, errWire := fn(ctx)
	check(t, "wire", vWire, errWire)
	r.gw2.SetLoopbackEnabled(true)

	if !vLoop.Equal(vWire) {
		t.Errorf("paths diverge: loopback %v, wire %v", vLoop, vWire)
	}
	if (errLoop == nil) != (errWire == nil) {
		t.Errorf("paths diverge: loopback err %v, wire err %v", errLoop, errWire)
	}
	if errLoop != nil && errWire != nil {
		var reLoop, reWire *service.RemoteError
		if errors.As(errLoop, &reLoop) != errors.As(errWire, &reWire) {
			t.Errorf("RemoteError mismatch: loopback %v, wire %v", errLoop, errWire)
		} else if reLoop != nil && (reLoop.Code != reWire.Code || reLoop.Msg != reWire.Msg) {
			t.Errorf("remote errors diverge: loopback %+v, wire %+v", reLoop, reWire)
		}
	}
}

func TestLoopbackWireValueEquivalence(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op  string
		arg service.Value
	}{
		{"EchoString", service.StringValue("plain")},
		{"EchoString", service.StringValue("xml <&> 'quoted' \"text\"")},
		{"EchoString", service.StringValue("control \x15 char")}, // XML-unsafe: wire base64-wraps
		{"EchoString", service.StringValue("a\xffb")},            // invalid UTF-8
		{"EchoString", service.StringValue("null\x00byte")},
		{"EchoString", service.StringValue("tab\tand\nnewline\rok")},
		{"EchoInt", service.IntValue(-42)},
		{"EchoFloat", service.FloatValue(2.5)},
		{"EchoBool", service.BoolValue(true)},
		{"EchoBytes", service.BytesValue([]byte{0x00, 0xff, 0x10})},
	}
	for _, tc := range cases {
		bothPaths(t, r,
			func(ctx context.Context) (service.Value, error) {
				return r.gw2.Call(ctx, "bench:echo", tc.op, []service.Value{tc.arg})
			},
			func(t *testing.T, path string, v service.Value, err error) {
				if err != nil {
					t.Errorf("%s %s(%v): %v", path, tc.op, tc.arg, err)
					return
				}
				if !v.Equal(tc.arg) {
					t.Errorf("%s %s: got %v, want %v", path, tc.op, v, tc.arg)
				}
			})
	}
}

func TestLoopbackWireFaultEquivalence(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mode     string
		wantCode string
		sentinel error
	}{
		{"unavailable", "Unavailable", service.ErrUnavailable},
		{"badarg", "BadArgument", service.ErrBadArgument},
		{"remote", "Custom", nil},
		{"plain", "Server", nil},
	}
	for _, tc := range cases {
		bothPaths(t, r,
			func(ctx context.Context) (service.Value, error) {
				return r.gw2.Call(ctx, "bench:echo", "Fail", []service.Value{service.StringValue(tc.mode)})
			},
			func(t *testing.T, path string, _ service.Value, err error) {
				if err == nil {
					t.Errorf("%s Fail(%s): no error", path, tc.mode)
					return
				}
				var re *service.RemoteError
				if !errors.As(err, &re) {
					t.Errorf("%s Fail(%s): %T is not a RemoteError: %v", path, tc.mode, err, err)
					return
				}
				if re.Code != tc.wantCode {
					t.Errorf("%s Fail(%s): code %q, want %q", path, tc.mode, re.Code, tc.wantCode)
				}
				if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
					t.Errorf("%s Fail(%s): %v does not match sentinel %v", path, tc.mode, err, tc.sentinel)
				}
			})
	}
}

// TestLoopbackWireContextEquivalence: a context that expires mid-call
// must keep its sentinel identity (and ErrUnavailable) on both paths —
// cancellation is a transport condition, not a remote fault.
func TestLoopbackWireContextEquivalence(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	desc := echoDesc("bench:slow")
	slow := service.InvokerFunc(func(ctx context.Context, _ string, _ []service.Value) (service.Value, error) {
		<-ctx.Done()
		return service.Value{}, ctx.Err()
	})
	if err := r.gw1.Export(ctx, desc, slow); err != nil {
		t.Fatal(err)
	}
	for _, loopback := range []bool{true, false} {
		path := map[bool]string{true: "loopback", false: "wire"}[loopback]
		r.gw2.SetLoopbackEnabled(loopback)
		cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		_, err := r.gw2.Call(cctx, "bench:slow", "EchoInt", []service.Value{service.IntValue(1)})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded to match", path, err)
		}
		if !errors.Is(err, service.ErrUnavailable) {
			t.Errorf("%s: err = %v, want ErrUnavailable to match", path, err)
		}
	}
	r.gw2.SetLoopbackEnabled(true)
}

// TestLoopbackWireOversizedEquivalence: the wire bounds envelopes at
// soap.MaxEnvelopeBytes. Loopback keeps the accept/reject boundary
// identical by routing borderline-large requests over the wire (where
// the real codec decides) and size-checking large results against a
// genuinely encoded response envelope — so payload size never changes a
// call's outcome between the two paths.
func TestLoopbackWireOversizedEquivalence(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		op     string
		arg    service.Value
		wantOK bool
	}{
		// Fits comfortably: stays on the fast path.
		{"small", "EchoBytes", service.BytesValue(make([]byte, 1024)), true},
		// Above the loopback ceiling yet within the wire bound: both
		// paths must succeed (the case a naive size estimate rejects).
		{"large-but-legal string", "EchoString", service.StringValue(strings.Repeat("x", 800_000)), true},
		{"large-but-legal bytes", "EchoBytes", service.BytesValue(make([]byte, 600_000)), true},
		// Base64-expands past the wire bound: both paths must fail.
		{"oversized", "EchoBytes", service.BytesValue(make([]byte, 2<<20)), false},
	}
	for _, tc := range cases {
		for _, loopback := range []bool{true, false} {
			path := map[bool]string{true: "loopback", false: "wire"}[loopback]
			r.gw2.SetLoopbackEnabled(loopback)
			v, err := r.gw2.Call(ctx, "bench:echo", tc.op, []service.Value{tc.arg})
			if tc.wantOK {
				if err != nil {
					t.Errorf("%s %s: %v, want success", path, tc.name, err)
				} else if !v.Equal(tc.arg) {
					t.Errorf("%s %s: result does not round-trip", path, tc.name)
				}
			} else if err == nil {
				t.Errorf("%s %s: succeeded, want envelope-bound failure", path, tc.name)
			}
		}
	}
	r.gw2.SetLoopbackEnabled(true)

	// The big calls must have routed over the wire even with loopback
	// enabled: only the small one may count as a loopback hit.
	if _, _, loop := r.gw2.Stats(); loop != 1 {
		t.Errorf("loopback hits = %d, want 1 (large payloads route to the wire)", loop)
	}
}

// TestLoopbackStaleExport covers the target gateway dropping an export
// the repository still advertises: both paths must report NoSuchService.
func TestLoopbackStaleExport(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	// Resolve once so gw2 has the endpoint, then make the export vanish
	// from gw1 while its registration would still linger in a cache.
	if _, err := r.gw2.Resolve(ctx, "bench:echo"); err != nil {
		t.Fatal(err)
	}
	remote, err := r.gw2.Resolve(ctx, "bench:echo")
	if err != nil {
		t.Fatal(err)
	}
	r.gw1.mu.Lock()
	delete(r.gw1.exports, "bench:echo")
	r.gw1.mu.Unlock()
	bothPaths(t, r,
		func(ctx context.Context) (service.Value, error) {
			return r.gw2.CallRemote(ctx, remote, "EchoInt", []service.Value{service.IntValue(1)})
		},
		func(t *testing.T, path string, _ service.Value, err error) {
			if !errors.Is(err, service.ErrNoSuchService) {
				t.Errorf("%s: err = %v, want ErrNoSuchService", path, err)
			}
		})
}

func TestLoopbackStatsAndHealth(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	arg := []service.Value{service.IntValue(7)}
	for i := 0; i < 3; i++ {
		if _, err := r.gw2.Call(ctx, "bench:echo", "EchoInt", arg); err != nil {
			t.Fatal(err)
		}
	}
	if in, _, _ := r.gw1.Stats(); in != 3 {
		t.Errorf("gw1 inbound = %d, want 3 (loopback must count on the target)", in)
	}
	if _, out, loop := r.gw2.Stats(); out != 3 || loop != 3 {
		t.Errorf("gw2 out=%d loop=%d, want 3/3", out, loop)
	}
	if h := r.gw2.Health(); h.LoopbackCalls != 3 {
		t.Errorf("Health.LoopbackCalls = %d, want 3", h.LoopbackCalls)
	}

	// The escape hatch forces the wire: outbound keeps counting, the
	// loopback counter freezes.
	r.gw2.SetLoopbackEnabled(false)
	if _, err := r.gw2.Call(ctx, "bench:echo", "EchoInt", arg); err != nil {
		t.Fatal(err)
	}
	if _, out, loop := r.gw2.Stats(); out != 4 || loop != 3 {
		t.Errorf("after -no-loopback: out=%d loop=%d, want 4/3", out, loop)
	}
	if in, _, _ := r.gw1.Stats(); in != 4 {
		t.Errorf("gw1 inbound = %d, want 4", in)
	}
}

// TestLoopbackClosedGatewayFallsToWire pins the teardown contract: a
// closed gateway leaves the process registry, so callers observe the dead
// listener (ErrUnavailable) exactly as they would for a remote host.
func TestLoopbackClosedGatewayFallsToWire(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, echoDesc("bench:echo"), echoService{}); err != nil {
		t.Fatal(err)
	}
	remote, err := r.gw2.Resolve(ctx, "bench:echo")
	if err != nil {
		t.Fatal(err)
	}
	r.gw1.Close()
	if _, err := r.gw2.CallRemote(ctx, remote, "EchoInt", []service.Value{service.IntValue(1)}); !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("call to closed gateway: %v, want ErrUnavailable", err)
	}
}

// TestLoopbackTargetParsing pins the endpoint-matching rule.
func TestLoopbackTargetParsing(t *testing.T) {
	r := newRig(t)
	if tgt := r.gw2.loopbackTarget(r.gw1.BaseURL()+"/services/x", nil); tgt != r.gw1 {
		t.Errorf("loopbackTarget(gw1 endpoint) = %v, want gw1", tgt)
	}
	if tgt := r.gw2.loopbackTarget("http://192.0.2.9:1/services/x", nil); tgt != nil {
		t.Errorf("foreign endpoint matched in-process gateway %v", tgt)
	}
	if tgt := r.gw2.loopbackTarget("not a url", nil); tgt != nil {
		t.Errorf("garbage endpoint matched %v", tgt)
	}
	if !strings.HasPrefix(r.gw1.EndpointFor("x"), r.gw1.BaseURL()+servicesPath) {
		t.Fatalf("endpoint shape changed; update loopbackTarget")
	}
}
