// Authentication on the gateway's call paths: signed cross-home calls,
// typed auth faults for strangers, ACL enforcement at the exporting
// home, and loopback-vs-wire equivalence of the home-boundary check.
package vsg

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/soap"
	"homeconnect/internal/transport"
)

// authHome is one home for gateway auth tests: an authenticated
// repository plus one gateway.
type authHome struct {
	auth *identity.Auth
	id   *identity.Identity
	srv  *vsr.Server
	gw   *VSG
}

func newAuthHome(t *testing.T, home string) *authHome {
	t.Helper()
	id, err := identity.Generate(home)
	if err != nil {
		t.Fatal(err)
	}
	auth := identity.NewAuth(home)
	if err := auth.SetIdentity(id); err != nil {
		t.Fatal(err)
	}
	srv, err := vsr.StartServerAuth("127.0.0.1:0", auth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	gw := New(home+"-net", srv.URL())
	gw.SetHome(home)
	gw.SetAuth(auth)
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return &authHome{auth: auth, id: id, srv: srv, gw: gw}
}

func echoExport(t *testing.T, gw *VSG, id, answer string) {
	t.Helper()
	desc := service.Description{
		ID: id, Name: id, Middleware: "test",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue(answer), nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
}

func TestCrossHomeCallAuthenticated(t *testing.T) {
	a := newAuthHome(t, "home-a")
	b := newAuthHome(t, "home-b")
	// Mutual trust.
	if err := a.auth.Trust("home-b", b.id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.auth.Trust("home-a", a.id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	echoExport(t, a.gw, "test:svc", "at-a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	remote, err := a.gw.Resolve(ctx, "test:svc")
	if err != nil {
		t.Fatal(err)
	}
	// Trusted cross-home call succeeds (different homes → wire path).
	got, err := b.gw.CallRemote(ctx, remote, "Where", nil)
	if err != nil || got.Str() != "at-a" {
		t.Fatalf("trusted cross-home call = (%v, %v), want at-a", got, err)
	}

	// An unsigned caller gets a typed Unauthenticated fault.
	anon := &soap.Client{URL: remote.Endpoint}
	call := soap.Call{Namespace: Namespace("test:svc"), Operation: "Where"}
	_, err = anon.Call(ctx, Namespace("test:svc")+"#Where", call)
	if !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("unsigned gateway call: %v, want ErrUnauthenticated", err)
	}
	var re *service.RemoteError
	if !errors.As(err, &re) || re.Code != "Unauthenticated" {
		t.Errorf("unsigned gateway call fault = %v, want RemoteError{Unauthenticated}", err)
	}

	// An untrusted home signing honestly gets the same refusal.
	xid, err := identity.Generate("home-x")
	if err != nil {
		t.Fatal(err)
	}
	xauth := identity.NewAuth("home-x")
	if err := xauth.SetIdentity(xid); err != nil {
		t.Fatal(err)
	}
	if err := xauth.Trust("home-a", a.id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	strange := &soap.Client{URL: remote.Endpoint, HTTP: transport.NewAuthClient(xauth)}
	if _, err := strange.Call(ctx, Namespace("test:svc")+"#Where", call); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("untrusted-home gateway call: %v, want ErrUnauthenticated", err)
	}
}

func TestCrossHomeCallACLDeny(t *testing.T) {
	a := newAuthHome(t, "home-a")
	b := newAuthHome(t, "home-b")
	c := newAuthHome(t, "home-c")
	for _, peer := range []*authHome{b, c} {
		if err := a.auth.Trust(peer.auth.Home(), peer.id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		if err := peer.auth.Trust("home-a", a.id.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	// home-b may reach havi:*, home-c may reach nothing; vcr denied to
	// every caller by pattern.
	a.auth.SetACL(identity.ACL{
		Allow: []identity.Rule{{Caller: "home-b", Service: "*"}},
		Deny:  []identity.Rule{{Caller: "*", Service: "test:vcr-*"}},
	})
	echoExport(t, a.gw, "test:svc", "at-a")
	echoExport(t, a.gw, "test:vcr-1", "vcr")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	svc, err := a.gw.Resolve(ctx, "test:svc")
	if err != nil {
		t.Fatal(err)
	}
	vcr, err := a.gw.Resolve(ctx, "test:vcr-1")
	if err != nil {
		t.Fatal(err)
	}

	// Caller-home rule: home-b admitted, home-c refused.
	if got, err := b.gw.CallRemote(ctx, svc, "Where", nil); err != nil || got.Str() != "at-a" {
		t.Fatalf("allowed caller: (%v, %v)", got, err)
	}
	if _, err := c.gw.CallRemote(ctx, svc, "Where", nil); !errors.Is(err, service.ErrForbidden) {
		t.Errorf("caller outside allow list: %v, want ErrForbidden", err)
	}
	// Pattern rule: deny wins even for the allowed caller.
	if _, err := b.gw.CallRemote(ctx, vcr, "Where", nil); !errors.Is(err, service.ErrForbidden) {
		t.Errorf("pattern-denied service: %v, want ErrForbidden", err)
	}
	// The exporting home itself is never ACL-blocked.
	if got, err := a.gw.Call(ctx, "test:vcr-1", "Where", nil); err != nil || got.Str() != "vcr" {
		t.Errorf("own-home call hit the ACL: (%v, %v)", got, err)
	}
}

// TestLoopbackWireAuthEquivalence holds the two dispatch paths to one
// behaviour under authentication: a same-home call succeeds identically
// over loopback and over the signed wire, and the export-policy check —
// which only governs the home boundary — blocks neither.
func TestLoopbackWireAuthEquivalence(t *testing.T) {
	h := newAuthHome(t, "home-a")
	// A second gateway in the same home, sharing the Auth.
	gw2 := New("home-a-net2", h.srv.URL())
	gw2.SetHome("home-a")
	gw2.SetAuth(h.auth)
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw2.Close)
	// Policies that would refuse any foreign caller: they must not
	// affect same-home calls on either path.
	h.auth.SetExportPolicy(identity.Policy{Deny: []string{"*"}})
	h.auth.SetACL(identity.ACL{Deny: []identity.Rule{{Caller: "*", Service: "*"}}})
	echoExport(t, h.gw, "test:svc", "at-a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	remote, err := h.gw.Resolve(ctx, "test:svc")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct {
		name     string
		loopback bool
	}{{"loopback", true}, {"wire", false}} {
		gw2.SetLoopbackEnabled(spec.loopback)
		_, _, before := gw2.Stats()
		got, err := gw2.CallRemote(ctx, remote, "Where", nil)
		if err != nil || got.Str() != "at-a" {
			t.Errorf("%s same-home call = (%v, %v), want at-a", spec.name, got, err)
		}
		_, _, after := gw2.Stats()
		if tookLoopback := after > before; tookLoopback != spec.loopback {
			t.Errorf("%s call took loopback=%v", spec.name, tookLoopback)
		}
	}

	// Both paths fault identically for a caller the boundary refuses:
	// the wire fault decodes to the very RemoteError the loopback path
	// builds from the same sentinel (shared soap.FaultFromError).
	wireErr := func() error {
		anon := &soap.Client{URL: remote.Endpoint}
		call := soap.Call{Namespace: Namespace("test:svc"), Operation: "Where"}
		_, err := anon.Call(ctx, Namespace("test:svc")+"#Where", call)
		return err
	}()
	var wireRE *service.RemoteError
	if !errors.As(wireErr, &wireRE) {
		t.Fatalf("wire auth refusal not a RemoteError: %v", wireErr)
	}
	loopRE := soap.FaultFromError(wireErr).RemoteError()
	if wireRE.Code != loopRE.Code || wireRE.Code != "Unauthenticated" {
		t.Errorf("fault codes diverge: wire %q, loopback mapping %q", wireRE.Code, loopRE.Code)
	}
}
