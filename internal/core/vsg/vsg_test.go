package vsg

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

func lampInterface() service.Interface {
	return service.Interface{
		Name: "Lamp",
		Operations: []service.Operation{
			{Name: "On", Output: service.KindVoid},
			{Name: "Off", Output: service.KindVoid},
			{Name: "SetLevel", Inputs: []service.Parameter{{Name: "level", Type: service.KindInt}}, Output: service.KindVoid},
			{Name: "Level", Output: service.KindInt},
		},
	}
}

// fakeLamp is a local service implementation.
type fakeLamp struct {
	mu    sync.Mutex
	level int64
}

func (l *fakeLamp) Invoke(_ context.Context, op string, args []service.Value) (service.Value, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch op {
	case "On":
		l.level = 100
		return service.Void(), nil
	case "Off":
		l.level = 0
		return service.Void(), nil
	case "SetLevel":
		l.level = args[0].Int()
		return service.Void(), nil
	case "Level":
		return service.IntValue(l.level), nil
	default:
		return service.Value{}, service.ErrNoSuchOperation
	}
}

func lampDesc(id string) service.Description {
	return service.Description{ID: id, Name: id, Middleware: "jini", Interface: lampInterface()}
}

// rig is a repository plus two gateways on separate "networks".
type rig struct {
	srv *vsr.Server
	gw1 *VSG
	gw2 *VSG
}

func newRig(t *testing.T) *rig {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw1 := New("net1", srv.URL())
	gw2 := New("net2", srv.URL())
	if err := gw1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw1.Close()
		gw2.Close()
		srv.Close()
	})
	return &rig{srv: srv, gw1: gw1, gw2: gw2}
}

func TestExportAndLocalCall(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}
	if _, err := r.gw1.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.IntValue(42)}); err != nil {
		t.Fatal(err)
	}
	got, err := r.gw1.Call(ctx, "jini:lamp-1", "Level", nil)
	if err != nil || got.Int() != 42 {
		t.Fatalf("Level = %v, %v", got, err)
	}
	// Local calls never touch SOAP.
	in, out := r.gw1.Stats()
	if in != 0 || out != 0 {
		t.Errorf("local call used the wire: in=%d out=%d", in, out)
	}
}

func TestCrossGatewayCall(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}

	// gw2 reaches the service exported on gw1 through the VSR + SOAP.
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.IntValue(7)}); err != nil {
		t.Fatalf("cross call: %v", err)
	}
	got, err := r.gw2.Call(ctx, "jini:lamp-1", "Level", nil)
	if err != nil || got.Int() != 7 {
		t.Fatalf("Level via gw2 = %v, %v", got, err)
	}
	in1, _ := r.gw1.Stats()
	_, out2 := r.gw2.Stats()
	if in1 != 2 || out2 != 2 {
		t.Errorf("stats: gw1 in=%d gw2 out=%d, want 2/2", in1, out2)
	}
}

func TestCallErrorsCrossGateway(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}

	if _, err := r.gw2.Call(ctx, "ghost:svc", "On", nil); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("unknown service: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "Explode", nil); !errors.Is(err, service.ErrNoSuchOperation) {
		t.Errorf("unknown op: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.StringValue("x")}); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("bad arg: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", nil); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("arity: %v", err)
	}
}

func TestUnexportRemovesService(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	if err := r.gw1.Unexport(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "On", nil); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("call after unexport: %v", err)
	}
	if err := r.gw1.Unexport(ctx, "jini:lamp-1"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("double unexport: %v", err)
	}
}

func TestGatewayDownIsUnavailable(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	// Resolve once so gw2 has the endpoint, then kill gw1's HTTP side.
	if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	r.gw1.Close()
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "On", nil); !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("dead gateway: %v", err)
	}
}

func TestResolveCaching(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	_, before := r.srv.Registry().Stats()
	for i := 0; i < 10; i++ {
		if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
			t.Fatal(err)
		}
	}
	_, after := r.srv.Registry().Stats()
	if after-before != 1 {
		t.Errorf("cached resolves hit the registry %d times", after-before)
	}

	// With caching disabled every resolve goes to the repository.
	r.gw2.SetCacheTTL(0)
	_, before = r.srv.Registry().Stats()
	for i := 0; i < 5; i++ {
		if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
			t.Fatal(err)
		}
	}
	_, after = r.srv.Registry().Stats()
	if after-before != 5 {
		t.Errorf("uncached resolves hit the registry %d times, want 5", after-before)
	}
}

func TestRefreshKeepsRegistrationAlive(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	gw := New("net1", srv.URL())
	gw.VSR().SetTTL(500 * time.Millisecond)
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	if err := gw.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	// Without refresh the 500ms TTL would lapse well within a second.
	time.Sleep(1200 * time.Millisecond)
	if _, err := gw.VSR().Lookup(ctx, "jini:lamp-1"); err != nil {
		t.Errorf("registration lapsed despite refresh: %v", err)
	}
}

func TestNamespaceRoundTrip(t *testing.T) {
	ns := Namespace("jini:lamp-1")
	id, ok := ServiceIDFromNamespace(ns)
	if !ok || id != "jini:lamp-1" {
		t.Errorf("round trip = %q, %v", id, ok)
	}
	if _, ok := ServiceIDFromNamespace("urn:other:thing"); ok {
		t.Error("foreign namespace accepted")
	}
}

func TestListQuery(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	if err := r.gw2.Export(ctx, lampDesc("jini:lamp-2"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	all, err := r.gw1.List(ctx, vsr.Query{})
	if err != nil || len(all) != 2 {
		t.Fatalf("List = %d, %v", len(all), err)
	}
	// Network context tags are applied on export.
	for _, rm := range all {
		want := "net1"
		if rm.Desc.ID == "jini:lamp-2" {
			want = "net2"
		}
		if rm.Desc.Context[service.CtxNetwork] != want {
			t.Errorf("%s network = %q, want %q", rm.Desc.ID, rm.Desc.Context[service.CtxNetwork], want)
		}
	}
}

func TestUnexportUnknownService(t *testing.T) {
	r := newRig(t)
	if err := r.gw1.Unexport(context.Background(), "jini:ghost"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("Unexport of never-exported service = %v, want ErrNoSuchService", err)
	}
}

func TestHealthSurfacesRefreshFailures(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := New("net1", srv.URL())
	gw.VSR().SetTTL(300 * time.Millisecond) // refresh every 100ms
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	if err := gw.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}

	// Healthy repository: a successful round stamps LastRefreshOK and
	// keeps the failure counter at zero.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Health().LastRefreshOK.IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("no successful refresh round observed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h := gw.Health(); h.ConsecutiveRefreshFailures != 0 {
		t.Errorf("healthy gateway reports %+v", h)
	}

	// Dead repository: consecutive failures climb and the error is
	// readable — the observable dead-VSR condition.
	srv.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		h := gw.Health()
		if h.ConsecutiveRefreshFailures >= 2 {
			if h.LastRefreshError == "" {
				t.Error("failures counted but no error recorded")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh failures never surfaced: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStatsCountCrossGatewayCalls(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.gw2.Call(ctx, "jini:lamp-1", "Level", nil); err != nil {
			t.Fatal(err)
		}
	}
	if in, _ := r.gw1.Stats(); in != 3 {
		t.Errorf("gw1 inbound = %d, want 3", in)
	}
	if _, out := r.gw2.Stats(); out != 3 {
		t.Errorf("gw2 outbound = %d, want 3", out)
	}
}
