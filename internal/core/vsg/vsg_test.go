package vsg

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

func lampInterface() service.Interface {
	return service.Interface{
		Name: "Lamp",
		Operations: []service.Operation{
			{Name: "On", Output: service.KindVoid},
			{Name: "Off", Output: service.KindVoid},
			{Name: "SetLevel", Inputs: []service.Parameter{{Name: "level", Type: service.KindInt}}, Output: service.KindVoid},
			{Name: "Level", Output: service.KindInt},
		},
	}
}

// fakeLamp is a local service implementation.
type fakeLamp struct {
	mu    sync.Mutex
	level int64
}

func (l *fakeLamp) Invoke(_ context.Context, op string, args []service.Value) (service.Value, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch op {
	case "On":
		l.level = 100
		return service.Void(), nil
	case "Off":
		l.level = 0
		return service.Void(), nil
	case "SetLevel":
		l.level = args[0].Int()
		return service.Void(), nil
	case "Level":
		return service.IntValue(l.level), nil
	default:
		return service.Value{}, service.ErrNoSuchOperation
	}
}

func lampDesc(id string) service.Description {
	return service.Description{ID: id, Name: id, Middleware: "jini", Interface: lampInterface()}
}

// rig is a repository plus two gateways on separate "networks".
type rig struct {
	srv *vsr.Server
	gw1 *VSG
	gw2 *VSG
}

func newRig(t *testing.T) *rig {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw1 := New("net1", srv.URL())
	gw2 := New("net2", srv.URL())
	if err := gw1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw1.Close()
		gw2.Close()
		srv.Close()
	})
	return &rig{srv: srv, gw1: gw1, gw2: gw2}
}

func TestExportAndLocalCall(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}
	if _, err := r.gw1.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.IntValue(42)}); err != nil {
		t.Fatal(err)
	}
	got, err := r.gw1.Call(ctx, "jini:lamp-1", "Level", nil)
	if err != nil || got.Int() != 42 {
		t.Fatalf("Level = %v, %v", got, err)
	}
	// Local calls never touch SOAP.
	in, out, _ := r.gw1.Stats()
	if in != 0 || out != 0 {
		t.Errorf("local call used the wire: in=%d out=%d", in, out)
	}
}

func TestCrossGatewayCall(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	lamp := &fakeLamp{}
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), lamp); err != nil {
		t.Fatal(err)
	}

	// gw2 reaches the service exported on gw1 through the VSR + SOAP.
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.IntValue(7)}); err != nil {
		t.Fatalf("cross call: %v", err)
	}
	got, err := r.gw2.Call(ctx, "jini:lamp-1", "Level", nil)
	if err != nil || got.Int() != 7 {
		t.Fatalf("Level via gw2 = %v, %v", got, err)
	}
	in1, _, _ := r.gw1.Stats()
	_, out2, _ := r.gw2.Stats()
	if in1 != 2 || out2 != 2 {
		t.Errorf("stats: gw1 in=%d gw2 out=%d, want 2/2", in1, out2)
	}
}

func TestCallErrorsCrossGateway(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}

	if _, err := r.gw2.Call(ctx, "ghost:svc", "On", nil); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("unknown service: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "Explode", nil); !errors.Is(err, service.ErrNoSuchOperation) {
		t.Errorf("unknown op: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", []service.Value{service.StringValue("x")}); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("bad arg: %v", err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "SetLevel", nil); !errors.Is(err, service.ErrBadArgument) {
		t.Errorf("arity: %v", err)
	}
}

func TestUnexportRemovesService(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	if err := r.gw1.Unexport(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "On", nil); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("call after unexport: %v", err)
	}
	if err := r.gw1.Unexport(ctx, "jini:lamp-1"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("double unexport: %v", err)
	}
}

func TestGatewayDownIsUnavailable(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	// Resolve once so gw2 has the endpoint, then kill gw1's HTTP side.
	if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	r.gw1.Close()
	// Close also withdraws gw1's registrations, and the delete delta
	// races the call: before it lands the cached endpoint is dialled and
	// found dead (ErrUnavailable); after, the service is known gone
	// (ErrNoSuchService). Both are correct.
	if _, err := r.gw2.Call(ctx, "jini:lamp-1", "On", nil); !errors.Is(err, service.ErrUnavailable) && !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("dead gateway: %v", err)
	}
}

func TestResolveCaching(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	_, before := r.srv.Registry().Stats()
	for i := 0; i < 10; i++ {
		if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
			t.Fatal(err)
		}
	}
	_, after := r.srv.Registry().Stats()
	if after-before != 1 {
		t.Errorf("cached resolves hit the registry %d times", after-before)
	}

	// With caching disabled every resolve goes to the repository.
	r.gw2.SetCacheTTL(0)
	_, before = r.srv.Registry().Stats()
	for i := 0; i < 5; i++ {
		if _, err := r.gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
			t.Fatal(err)
		}
	}
	_, after = r.srv.Registry().Stats()
	if after-before != 5 {
		t.Errorf("uncached resolves hit the registry %d times, want 5", after-before)
	}
}

// detachedRig is a repository and gateway with no sockets, no background
// loops and no wall clock: the registry expires by the virtual clock and
// refresh happens only when the test calls RefreshExports. Lease tests
// advance virtual time instead of sleeping through it.
type detachedRig struct {
	vc  *vclock.Virtual
	net *transport.MemNet
	reg *uddi.Server
	gw  *VSG
}

func newDetachedRig(t *testing.T) *detachedRig {
	t.Helper()
	vc := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	mnet := transport.NewMemNet()
	reg := uddi.NewManualServer()
	reg.SetClock(vc.Now)
	srv := vsr.NewDetachedServer("repo", reg, nil)
	t.Cleanup(srv.Close)
	mnet.Handle("repo", srv.Handler())

	gw := New("net1", srv.URL())
	gw.SetClock(vc)
	gw.SetTransport(mnet)
	gw.StartDetached("gw-net1")
	t.Cleanup(gw.Close)
	return &detachedRig{vc: vc, net: mnet, reg: reg, gw: gw}
}

func TestRefreshKeepsRegistrationAlive(t *testing.T) {
	r := newDetachedRig(t)
	r.gw.VSR().SetTTL(500 * time.Millisecond)
	ctx := context.Background()
	if err := r.gw.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	// Three 400ms steps, each inside the 500ms lease, each followed by a
	// refresh: the registration must ride through 1.2 virtual seconds.
	for i := 0; i < 3; i++ {
		r.vc.Advance(400 * time.Millisecond)
		r.reg.Sweep()
		if err := r.gw.RefreshExports(ctx); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	if _, err := r.gw.VSR().Lookup(ctx, "jini:lamp-1"); err != nil {
		t.Errorf("registration lapsed despite refresh: %v", err)
	}
	// Control: with refresh stopped, one full TTL later the lease lapses
	// — proving the survival above was the refreshes, not slack.
	r.vc.Advance(600 * time.Millisecond)
	r.reg.Sweep()
	if _, err := r.gw.VSR().Lookup(ctx, "jini:lamp-1"); err == nil {
		t.Error("registration survived a full TTL with refresh stopped")
	}
}

func TestNamespaceRoundTrip(t *testing.T) {
	ns := Namespace("jini:lamp-1")
	id, ok := ServiceIDFromNamespace(ns)
	if !ok || id != "jini:lamp-1" {
		t.Errorf("round trip = %q, %v", id, ok)
	}
	if _, ok := ServiceIDFromNamespace("urn:other:thing"); ok {
		t.Error("foreign namespace accepted")
	}
}

func TestListQuery(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	if err := r.gw2.Export(ctx, lampDesc("jini:lamp-2"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	all, err := r.gw1.List(ctx, vsr.Query{})
	if err != nil || len(all) != 2 {
		t.Fatalf("List = %d, %v", len(all), err)
	}
	// Network context tags are applied on export.
	for _, rm := range all {
		want := "net1"
		if rm.Desc.ID == "jini:lamp-2" {
			want = "net2"
		}
		if rm.Desc.Context[service.CtxNetwork] != want {
			t.Errorf("%s network = %q, want %q", rm.Desc.ID, rm.Desc.Context[service.CtxNetwork], want)
		}
	}
}

func TestUnexportUnknownService(t *testing.T) {
	r := newRig(t)
	if err := r.gw1.Unexport(context.Background(), "jini:ghost"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("Unexport of never-exported service = %v, want ErrNoSuchService", err)
	}
}

func TestHealthSurfacesRefreshFailures(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := New("net1", srv.URL())
	gw.VSR().SetTTL(300 * time.Millisecond) // refresh every 100ms
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	if err := gw.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}

	// Healthy repository: a successful round stamps LastRefreshOK and
	// keeps the failure counter at zero.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Health().LastRefreshOK.IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("no successful refresh round observed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h := gw.Health(); h.ConsecutiveRefreshFailures != 0 {
		t.Errorf("healthy gateway reports %+v", h)
	}

	// Dead repository: consecutive failures climb and the error is
	// readable — the observable dead-VSR condition.
	srv.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		h := gw.Health()
		if h.ConsecutiveRefreshFailures >= 2 {
			if h.LastRefreshError == "" {
				t.Error("failures counted but no error recorded")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh failures never surfaced: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitWatchActive parks until the gateway's repository watch is up.
func waitWatchActive(t *testing.T, gw *VSG) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !gw.Health().WatchActive {
		if time.Now().After(deadline) {
			t.Fatal("watch never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchInvalidatesCacheOnChange: with the cache TTL effectively
// infinite, only push invalidation can fix a stale resolution — a
// re-registered endpoint must flow through within the watch latency, not
// a TTL expiry.
func TestWatchInvalidatesCacheOnChange(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	// An hour-long TTL: if the new endpoint shows up, the watch did it.
	r.gw2.SetCacheTTL(time.Hour)
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	waitWatchActive(t, r.gw2)
	first, err := r.gw2.Resolve(ctx, "jini:lamp-1")
	if err != nil {
		t.Fatal(err)
	}

	// The service re-homes: same ID, new endpoint, registered directly
	// with the repository (as its new gateway would).
	v := vsr.New(r.srv.URL())
	desc := lampDesc("jini:lamp-1")
	const moved = "http://203.0.113.9:1/services/jini:lamp-1"
	if _, err := v.Register(ctx, desc, moved); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := r.gw2.Resolve(ctx, "jini:lamp-1")
		if err != nil {
			t.Fatal(err)
		}
		if got.Endpoint == moved {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint still %q (was %q), push invalidation never landed", got.Endpoint, first.Endpoint)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The rewrite came from the delta payload, not a fresh inquiry: the
	// registry saw exactly one find for this gateway's two-plus resolves.
	if h := r.gw2.Health(); h.CacheInvalidations == 0 {
		t.Errorf("invalidation not accounted: %+v", h)
	}
}

// TestWatchServesCacheBeyondTTL: a live watch lifts the TTL bound — the
// entry cannot be stale, so it keeps serving without repository traffic.
// The same gateway with the watch disabled re-queries every TTL: the
// paper's poll model, now the degraded fallback.
func TestWatchServesCacheBeyondTTL(t *testing.T) {
	// The gateway under test runs on a virtual clock: cache entries are
	// stamped and aged against it, so "well past the TTL" is a clock
	// advance, not a sleep. The repository and watch stream stay real.
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	v := vsr.New(srv.URL())
	if _, err := v.Register(ctx, lampDesc("jini:lamp-1"), "http://h/1"); err != nil {
		t.Fatal(err)
	}

	vc := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	gw2 := New("net2", srv.URL())
	gw2.SetClock(vc)
	gw2.SetCacheTTL(100 * time.Millisecond)
	if err := gw2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	waitWatchActive(t, gw2)
	if _, err := gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	_, before := srv.Registry().Stats()
	vc.Advance(300 * time.Millisecond) // well past the TTL
	for i := 0; i < 5; i++ {
		if _, err := gw2.Resolve(ctx, "jini:lamp-1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, after := srv.Registry().Stats(); after != before {
		t.Errorf("watch-backed cache re-queried the registry %d times past TTL", after-before)
	}

	// Watch disabled: the TTL is the only staleness bound again.
	vc3 := vclock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	gw3 := New("net3", srv.URL())
	gw3.SetClock(vc3)
	gw3.SetWatchEnabled(false)
	gw3.SetCacheTTL(100 * time.Millisecond)
	if err := gw3.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw3.Close()
	if _, err := gw3.Resolve(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	_, before = srv.Registry().Stats()
	vc3.Advance(300 * time.Millisecond)
	if _, err := gw3.Resolve(ctx, "jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	if _, after := srv.Registry().Stats(); after-before != 1 {
		t.Errorf("TTL-mode resolve past expiry hit the registry %d times, want 1", after-before)
	}
	if gw3.Health().WatchActive {
		t.Error("watch reported active on a watch-disabled gateway")
	}
}

// TestHealthSurfacesWatchOutage: losing the repository flips the gateway
// into degraded mode with a readable cause; Health makes the outage
// observable.
func TestHealthSurfacesWatchOutage(t *testing.T) {
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := New("net1", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	waitWatchActive(t, gw)

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := gw.Health()
		if !h.WatchActive {
			if h.LastWatchError == "" {
				t.Error("watch down but no error recorded")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch outage never surfaced: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBatchedRefreshKeepsManyExportsAlive: a gateway with several exports
// renews them all (in one round trip per interval) — none lapse.
func TestBatchedRefreshKeepsManyExportsAlive(t *testing.T) {
	r := newDetachedRig(t)
	r.gw.VSR().SetTTL(500 * time.Millisecond)
	ctx := context.Background()
	ids := []string{"jini:lamp-1", "jini:lamp-2", "jini:lamp-3", "jini:lamp-4"}
	for _, id := range ids {
		if err := r.gw.Export(ctx, lampDesc(id), &fakeLamp{}); err != nil {
			t.Fatal(err)
		}
	}
	// Each refresh renews all four leases in one RegisterAll batch.
	for i := 0; i < 3; i++ {
		r.vc.Advance(400 * time.Millisecond)
		r.reg.Sweep()
		if err := r.gw.RefreshExports(ctx); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	for _, id := range ids {
		if _, err := r.gw.VSR().Lookup(ctx, id); err != nil {
			t.Errorf("%s lapsed despite batched refresh after 1.2 virtual seconds: %v", id, err)
		}
	}
}

func TestStatsCountCrossGatewayCalls(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.gw1.Export(ctx, lampDesc("jini:lamp-1"), &fakeLamp{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.gw2.Call(ctx, "jini:lamp-1", "Level", nil); err != nil {
			t.Fatal(err)
		}
	}
	if in, _, _ := r.gw1.Stats(); in != 3 {
		t.Errorf("gw1 inbound = %d, want 3", in)
	}
	if _, out, _ := r.gw2.Stats(); out != 3 {
		t.Errorf("gw2 outbound = %d, want 3", out)
	}
}
