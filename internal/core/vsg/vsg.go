// Package vsg implements the Virtual Service Gateway (§3.1): "a gateway
// which connects middleware to another middleware using certain protocol
// which decides the information of services such as interfaces, locations
// and data." As in the prototype, the inter-gateway protocol is SOAP over
// HTTP (§4.1): every service exported from a middleware network becomes a
// SOAP endpoint on its gateway, registered in the Virtual Service
// Repository; calls to remote services resolve through the VSR and travel
// as SOAP RPC to the owning gateway.
//
// The gateway also mounts the event hub extension (see
// internal/core/events) under /events, addressing the asynchronous-
// notification gap the paper hit in §4.2.
package vsg

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/soap"
)

// namespacePrefix qualifies SOAP operation elements with the target
// service identity.
const namespacePrefix = "urn:homeconnect:"

// Namespace returns the SOAP namespace for a federation service ID.
func Namespace(serviceID string) string { return namespacePrefix + serviceID }

// ServiceIDFromNamespace inverts Namespace.
func ServiceIDFromNamespace(ns string) (string, bool) {
	if !strings.HasPrefix(ns, namespacePrefix) {
		return "", false
	}
	return ns[len(namespacePrefix):], true
}

// export is one locally exported service.
type export struct {
	desc    service.Description
	invoker service.Invoker
	key     string // VSR registration key
}

// VSG is one middleware network's gateway.
type VSG struct {
	name string
	vsr  *vsr.VSR
	hub  *events.Hub

	ln    net.Listener
	httpS *http.Server

	mu      sync.Mutex
	exports map[string]*export
	// resolveCache holds recent VSR lookups; see SetCacheTTL.
	resolveCache map[string]cachedRemote
	cacheTTL     time.Duration
	closed       bool

	refreshCancel context.CancelFunc
	refreshDone   chan struct{}

	// refresh health, guarded by mu: refreshLoop failures would otherwise
	// vanish silently while the VSR lets registrations lapse.
	refreshFailures int
	lastRefreshErr  string
	lastRefreshOK   time.Time

	// stats for the benchmark harness; atomic, off the mutex — they sit
	// on the per-call hot path.
	inboundCalls  atomic.Uint64
	outboundCalls atomic.Uint64
}

type cachedRemote struct {
	remote  vsr.Remote
	expires time.Time
}

// New builds a gateway named name against the repository at vsrURL.
func New(name, vsrURL string) *VSG {
	return &VSG{
		name:         name,
		vsr:          vsr.New(vsrURL),
		hub:          events.NewHub(),
		exports:      make(map[string]*export),
		resolveCache: make(map[string]cachedRemote),
		cacheTTL:     2 * time.Second,
	}
}

// Name returns the gateway's network name.
func (g *VSG) Name() string { return g.name }

// VSR returns the repository client (used by PCM importers).
func (g *VSG) VSR() *vsr.VSR { return g.vsr }

// Hub returns the gateway's event hub.
func (g *VSG) Hub() *events.Hub { return g.hub }

// SetCacheTTL adjusts resolve caching; zero disables it (each call hits
// the repository, the ablation measured by BenchmarkVSRFindCached).
func (g *VSG) SetCacheTTL(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cacheTTL = d
	g.resolveCache = make(map[string]cachedRemote)
}

// Start brings the gateway up on addr ("127.0.0.1:0" for ephemeral) and
// begins refreshing VSR registrations.
func (g *VSG) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("vsg %s: listen: %w", g.name, err)
	}
	g.ln = ln
	mux := http.NewServeMux()
	mux.Handle("/services/", soap.NewHTTPHandler(inbound{g: g}))
	mux.Handle("/events/", http.StripPrefix("/events", events.Handler(g.hub)))
	g.httpS = &http.Server{Handler: mux}
	go func() { _ = g.httpS.Serve(ln) }()

	ctx, cancel := context.WithCancel(context.Background())
	g.refreshCancel = cancel
	g.refreshDone = make(chan struct{})
	go g.refreshLoop(ctx)
	return nil
}

// Close stops the gateway: exports are withdrawn from the VSR on a best-
// effort basis, the HTTP server shuts down and the hub closes.
func (g *VSG) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	keys := make([]string, 0, len(g.exports))
	for _, e := range g.exports {
		keys = append(keys, e.key)
	}
	g.mu.Unlock()

	if g.refreshCancel != nil {
		g.refreshCancel()
		<-g.refreshDone
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, key := range keys {
		_ = g.vsr.Unregister(ctx, key)
	}
	if g.httpS != nil {
		_ = g.httpS.Close()
	}
	g.hub.Close()
}

// BaseURL returns the gateway's HTTP root.
func (g *VSG) BaseURL() string {
	if g.ln == nil {
		return ""
	}
	return "http://" + g.ln.Addr().String()
}

// EndpointFor returns the SOAP endpoint URL serving a local service.
func (g *VSG) EndpointFor(serviceID string) string {
	return g.BaseURL() + "/services/" + serviceID
}

// EventsURL returns the event hub mount point.
func (g *VSG) EventsURL() string { return g.BaseURL() + "/events" }

// Export publishes a local service to the federation: it gains a SOAP
// endpoint on this gateway and a VSR registration. The context tags the
// description with the gateway's network name.
func (g *VSG) Export(ctx context.Context, desc service.Description, invoker service.Invoker) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	desc = desc.Clone()
	if desc.Context == nil {
		desc.Context = make(map[string]string)
	}
	desc.Context[service.CtxNetwork] = g.name
	key, err := g.vsr.Register(ctx, desc, g.EndpointFor(desc.ID))
	if err != nil {
		return fmt.Errorf("vsg %s: export %s: %w", g.name, desc.ID, err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.exports[desc.ID] = &export{desc: desc, invoker: invoker, key: key}
	return nil
}

// Unexport withdraws a local service.
func (g *VSG) Unexport(ctx context.Context, serviceID string) error {
	g.mu.Lock()
	e, ok := g.exports[serviceID]
	if ok {
		delete(g.exports, serviceID)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("vsg %s: unexport %s: %w", g.name, serviceID, service.ErrNoSuchService)
	}
	return g.vsr.Unregister(ctx, e.key)
}

// Exports lists the IDs of locally exported services.
func (g *VSG) Exports() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.exports))
	for id := range g.exports {
		out = append(out, id)
	}
	return out
}

// localExport returns the local export for id, if any.
func (g *VSG) localExport(id string) (*export, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.exports[id]
	return e, ok
}

// refreshLoop re-registers exports at a fraction of the VSR TTL so they
// survive; the repository expires anything whose gateway dies.
func (g *VSG) refreshLoop(ctx context.Context) {
	defer close(g.refreshDone)
	interval := g.vsr.TTL() / 3
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.mu.Lock()
			exports := make([]*export, 0, len(g.exports))
			for _, e := range g.exports {
				exports = append(exports, e)
			}
			g.mu.Unlock()
			var roundErr error
			for _, e := range exports {
				rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				_, err := g.vsr.Register(rctx, e.desc, g.EndpointFor(e.desc.ID))
				cancel()
				if err != nil && roundErr == nil {
					roundErr = fmt.Errorf("vsg %s: refresh %s: %w", g.name, e.desc.ID, err)
				}
			}
			g.mu.Lock()
			if roundErr != nil {
				g.refreshFailures++
				g.lastRefreshErr = roundErr.Error()
			} else {
				g.refreshFailures = 0
				g.lastRefreshOK = time.Now()
			}
			g.mu.Unlock()
		}
	}
}

// Resolve finds the service with the given federation ID, consulting the
// resolve cache first.
func (g *VSG) Resolve(ctx context.Context, serviceID string) (vsr.Remote, error) {
	g.mu.Lock()
	if c, ok := g.resolveCache[serviceID]; ok && time.Now().Before(c.expires) {
		g.mu.Unlock()
		return c.remote, nil
	}
	ttl := g.cacheTTL
	g.mu.Unlock()

	remote, err := g.vsr.Lookup(ctx, serviceID)
	if err != nil {
		return vsr.Remote{}, err
	}
	if ttl > 0 {
		g.mu.Lock()
		g.resolveCache[serviceID] = cachedRemote{remote: remote, expires: time.Now().Add(ttl)}
		g.mu.Unlock()
	}
	return remote, nil
}

// List queries the repository.
func (g *VSG) List(ctx context.Context, q vsr.Query) ([]vsr.Remote, error) {
	return g.vsr.Find(ctx, q)
}

// Call invokes an operation on any federation service by ID. Local
// exports are invoked directly (they live on this gateway's network);
// remote services go out over SOAP to their owning gateway.
func (g *VSG) Call(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error) {
	if e, ok := g.localExport(serviceID); ok {
		opSpec, ok := e.desc.Interface.Operation(op)
		if !ok {
			return service.Value{}, fmt.Errorf("%s.%s: %w", serviceID, op, service.ErrNoSuchOperation)
		}
		if err := service.ValidateArgs(opSpec, args); err != nil {
			return service.Value{}, err
		}
		return e.invoker.Invoke(ctx, op, args)
	}
	remote, err := g.Resolve(ctx, serviceID)
	if err != nil {
		return service.Value{}, err
	}
	return g.CallRemote(ctx, remote, op, args)
}

// CallRemote invokes op on an already resolved remote service.
func (g *VSG) CallRemote(ctx context.Context, remote vsr.Remote, op string, args []service.Value) (service.Value, error) {
	opSpec, ok := remote.Desc.Interface.Operation(op)
	if !ok {
		return service.Value{}, fmt.Errorf("%s.%s: %w", remote.Desc.ID, op, service.ErrNoSuchOperation)
	}
	if err := service.ValidateArgs(opSpec, args); err != nil {
		return service.Value{}, err
	}
	call := soap.Call{Namespace: Namespace(remote.Desc.ID), Operation: op}
	for i, p := range opSpec.Inputs {
		call.Args = append(call.Args, soap.Arg{Name: p.Name, Value: args[i]})
	}
	g.outboundCalls.Add(1)
	client := &soap.Client{URL: remote.Endpoint}
	return client.Call(ctx, Namespace(remote.Desc.ID)+"#"+op, call)
}

// Stats returns (inbound, outbound) call counters.
func (g *VSG) Stats() (inbound, outbound uint64) {
	return g.inboundCalls.Load(), g.outboundCalls.Load()
}

// Health describes the gateway's registration-refresh loop. A non-zero
// ConsecutiveRefreshFailures with an aging LastRefreshOK means the VSR is
// expiring this gateway's exports: the dead-repository condition §3.3
// leaves otherwise invisible.
type Health struct {
	// ConsecutiveRefreshFailures counts refresh rounds since the last
	// fully successful one.
	ConsecutiveRefreshFailures int
	// LastRefreshError is the most recent re-registration error.
	LastRefreshError string
	// LastRefreshOK is when a round last re-registered every export.
	LastRefreshOK time.Time
}

// Health reports the refresh loop's condition.
func (g *VSG) Health() Health {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Health{
		ConsecutiveRefreshFailures: g.refreshFailures,
		LastRefreshError:           g.lastRefreshErr,
		LastRefreshOK:              g.lastRefreshOK,
	}
}

// inbound adapts the gateway's exports to the SOAP server: the client
// proxy direction of Figure 2 (remote federation calls invoking local
// middleware services).
type inbound struct {
	g *VSG
}

// ServeSOAP implements soap.Handler.
func (in inbound) ServeSOAP(ctx context.Context, call soap.Call) (service.Value, error) {
	id, ok := ServiceIDFromNamespace(call.Namespace)
	if !ok {
		return service.Value{}, fmt.Errorf("namespace %q: %w", call.Namespace, service.ErrNoSuchService)
	}
	e, ok := in.g.localExport(id)
	if !ok {
		return service.Value{}, fmt.Errorf("%s: %w", id, service.ErrNoSuchService)
	}
	op, ok := e.desc.Interface.Operation(call.Operation)
	if !ok {
		return service.Value{}, fmt.Errorf("%s.%s: %w", id, call.Operation, service.ErrNoSuchOperation)
	}
	args := make([]service.Value, len(call.Args))
	for i := range call.Args {
		args[i] = call.Args[i].Value
	}
	if err := service.ValidateArgs(op, args); err != nil {
		return service.Value{}, err
	}
	in.g.inboundCalls.Add(1)
	return e.invoker.Invoke(ctx, call.Operation, args)
}
