// Package vsg implements the Virtual Service Gateway (§3.1): "a gateway
// which connects middleware to another middleware using certain protocol
// which decides the information of services such as interfaces, locations
// and data." As in the prototype, the inter-gateway protocol is SOAP over
// HTTP (§4.1): every service exported from a middleware network becomes a
// SOAP endpoint on its gateway, registered in the Virtual Service
// Repository; calls to remote services resolve through the VSR and travel
// as SOAP RPC to the owning gateway.
//
// The gateway also mounts the event hub extension (see
// internal/core/events) under /events, addressing the asynchronous-
// notification gap the paper hit in §4.2.
//
// Two departures from the paper's poll model keep repository load and
// staleness independent of call rate: VSR registrations renew in one
// batched request per refresh interval (RegisterAll), and the resolve
// cache is driven by the repository's change watch — entries are
// invalidated or rewritten the moment the VSR journals a change, with the
// cache TTL surviving only as the fallback staleness bound while the
// watch is down (degraded mode, surfaced via Health).
package vsg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/events"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/ops"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/soap"
	"homeconnect/internal/transport"
	"homeconnect/internal/vclock"
)

// namespacePrefix qualifies SOAP operation elements with the target
// service identity.
const namespacePrefix = "urn:homeconnect:"

// procGateways registers every running gateway in this process by base
// URL. When a resolved endpoint belongs to one of them, the call can be
// dispatched in-process — straight to the registered service.Invoker —
// skipping HTTP and the SOAP codec entirely (the loopback fast path).
// Single-process federations (one host running every gateway, the
// homesim deployment shape) make this the common case.
var (
	procMu       sync.RWMutex
	procGateways = make(map[string]*VSG)
)

// servicesPath is the gateway's SOAP mount; endpoints are
// "<base>/services/<id>".
const servicesPath = "/services/"

// Namespace returns the SOAP namespace for a federation service ID.
func Namespace(serviceID string) string { return namespacePrefix + serviceID }

// ServiceIDFromNamespace inverts Namespace.
func ServiceIDFromNamespace(ns string) (string, bool) {
	if !strings.HasPrefix(ns, namespacePrefix) {
		return "", false
	}
	return ns[len(namespacePrefix):], true
}

// export is one locally exported service.
type export struct {
	desc    service.Description
	invoker service.Invoker
	key     string // VSR registration key
}

// VSG is one middleware network's gateway.
type VSG struct {
	name string
	// home names the residence this gateway belongs to (empty for a
	// single-home federation). Set before Start and immutable after: it
	// gates the loopback fast path (cross-home calls always ride the
	// wire) and lets inbound calls addressed by this home's scoped IDs
	// resolve to local exports.
	home string
	vsr  *vsr.VSR
	hub  *events.Hub

	// auth is the home's authentication context (nil = open mode
	// forever); set before Start. authHTTP is the credential-signing
	// client outbound SOAP and repository traffic rides when auth is
	// live.
	auth     *identity.Auth
	authHTTP *http.Client
	// dialer owns outbound protocol negotiation when auth is live:
	// repository traffic and cross-home calls try the binary fast path
	// and degrade to signed SOAP/HTTP per authority. Rebuilt alongside
	// authHTTP; nil in open mode.
	dialer *transport.Dialer
	// bin is the inbound binary face sharing the listener with HTTP
	// (nil in open mode; inert on detached gateways). binaryOff records
	// SetBinaryEnabled(false) calls made before Start builds bin.
	bin       *transport.BinServer
	binaryOff bool
	// rt, when set (SetTransport), carries all outbound wire traffic
	// instead of the shared TCP transport — the dialer seam a
	// transport.MemNet plugs into.
	rt http.RoundTripper
	// clock is the gateway's time source (SetClock); refresh cadence and
	// cache-expiry stamps follow it.
	clock vclock.Clock

	ln    net.Listener
	httpS *http.Server
	// base is the URL authority for a detached gateway (StartDetached) —
	// a virtual hostname on an in-memory network, no listener.
	base string
	// watchSince is the manual watch cursor (PumpWatch); unused while the
	// background watch loop runs.
	watchSince uint64

	mu      sync.Mutex
	exports map[string]*export
	// resolveCache holds recent VSR lookups; see SetCacheTTL.
	resolveCache map[string]cachedRemote
	cacheTTL     time.Duration
	closed       bool

	refreshCancel context.CancelFunc
	refreshDone   chan struct{}
	watchDone     chan struct{}

	// watchEnabled gates the repository watch; set before Start.
	watchEnabled bool

	// refresh health, guarded by mu: refreshLoop failures would otherwise
	// vanish silently while the VSR lets registrations lapse.
	refreshFailures int
	lastRefreshErr  string
	lastRefreshOK   time.Time

	// watch health, guarded by mu. While watchUp, cached resolutions are
	// push-invalidated and never go stale; while down, the cache TTL is
	// the only staleness bound (degraded mode, surfaced via Health).
	watchUp      bool
	lastWatchErr string
	// changedSeq records the latest delta sequence per service ID and
	// cacheGen counts resyncs/outages; together they fence cache inserts
	// whose repository lookup predates a concurrent change (the looked-up
	// data would be stale yet never invalidated).
	changedSeq map[string]uint64
	cacheGen   uint64

	// loopbackOff disables in-process dispatch on this (calling) gateway;
	// atomic because it gates the per-call hot path. The zero value means
	// loopback is on.
	loopbackOff atomic.Bool

	// stats for the benchmark harness; atomic, off the mutex — they sit
	// on the per-call hot path.
	inboundCalls  atomic.Uint64
	outboundCalls atomic.Uint64
	loopbackCalls atomic.Uint64
	deniedCalls   atomic.Uint64
	// watch accounting: deltas applied and cache entries invalidated or
	// rewritten by push notifications.
	watchDeltas   atomic.Uint64
	invalidations atomic.Uint64
	watchResyncs  atomic.Uint64

	// auditLog, when set (SetAudit), backs the gateway's /audit face and
	// receives this gateway's boundary events — watch state changes, call
	// admissions and denials. One atomic load gates every hot-path
	// record, so auditing off costs nothing measurable.
	auditLog atomic.Pointer[audit.Log]
	auditRec atomic.Pointer[audit.Recorder]
}

type cachedRemote struct {
	remote  vsr.Remote
	expires time.Time
}

// New builds a gateway named name against the repository at vsrURL.
func New(name, vsrURL string) *VSG {
	return &VSG{
		name:         name,
		vsr:          vsr.New(vsrURL),
		hub:          events.NewHub(),
		clock:        vclock.System,
		exports:      make(map[string]*export),
		resolveCache: make(map[string]cachedRemote),
		changedSeq:   make(map[string]uint64),
		cacheTTL:     2 * time.Second,
		watchEnabled: true,
	}
}

// SetClock overrides the gateway's time source — the registration-
// refresh cadence and resolve-cache expiry stamps. Call before Start;
// tests and the deterministic simulation install a vclock.Virtual.
func (g *VSG) SetClock(c vclock.Clock) {
	if c != nil {
		g.clock = c
	}
}

// SetTransport routes the gateway's outbound wire traffic — repository
// operations and cross-home SOAP — through rt instead of the shared TCP
// transport; credential signing still applies on top. The simulation
// passes its transport.MemNet here. Call before Start and before
// SetAuth takes effect on traffic.
func (g *VSG) SetTransport(rt http.RoundTripper) {
	g.rt = rt
	g.rebuildHTTP()
}

// Name returns the gateway's network name.
func (g *VSG) Name() string { return g.name }

// VSR returns the repository client (used by PCM importers).
func (g *VSG) VSR() *vsr.VSR { return g.vsr }

// SetHome names the residence this gateway belongs to; call before
// Start. Exports gain a service.CtxHome context entry, calls addressed
// as "<home>/<id>" resolve locally when the scope matches, and the
// loopback fast path is confined to gateways of the same home — a
// cross-home call always travels the wire, the boundary that separates
// houses in a real deployment (see DESIGN.md §11).
func (g *VSG) SetHome(home string) {
	g.home = home
}

// Home returns the gateway's home name ("" for single-home federations).
func (g *VSG) Home() string { return g.home }

// SetAuth installs the home's authentication context; call before
// Start. From then on (whenever the context has an identity — it may
// gain one later, no restart needed) the gateway signs its outbound
// traffic — repository registration/resolution/watch and cross-home SOAP
// calls — verifies response signatures, requires a trusted caller
// identity on its inbound SOAP and event faces, and enforces the export
// policy plus service ACL on calls arriving from other homes. The
// in-process loopback fast path is untouched: a loopback call never
// leaves the home, and its authorization check is the same nil-fast
// pointer test the wire path uses.
func (g *VSG) SetAuth(a *identity.Auth) {
	g.auth = a
	g.rebuildHTTP()
}

// rebuildHTTP derives the outbound client from the auth context and the
// injected transport. With neither set it stays nil: the SOAP client
// and the repository client fall back to their own shared-transport
// defaults, the original behaviour.
func (g *VSG) rebuildHTTP() {
	if g.dialer != nil {
		g.dialer.Close()
		g.dialer = nil
	}
	switch {
	case g.auth != nil:
		// The Dialer owns credentials and per-authority protocol
		// negotiation; its HTTP side is the same credential-signing
		// client NewAuthClientOver built before.
		g.dialer = transport.NewDialer(g.auth)
		g.dialer.Transport = g.rt
		if g.binaryOff {
			g.dialer.Binary = false
		}
		g.authHTTP = g.dialer.HTTPClient()
	case g.rt != nil:
		g.authHTTP = &http.Client{Transport: g.rt}
	default:
		g.authHTTP = nil
	}
	if g.dialer != nil {
		g.vsr.SetDialer(g.dialer)
	} else if g.authHTTP != nil {
		g.vsr.SetHTTPClient(g.authHTTP)
	}
}

// Auth returns the gateway's authentication context (nil in open mode).
func (g *VSG) Auth() *identity.Auth { return g.auth }

// Dialer returns the gateway's outbound dialer (nil in open mode) — the
// federation assembler reads per-link wire protocol stats from it.
func (g *VSG) Dialer() *transport.Dialer { return g.dialer }

// SetAudit installs the home's audit log: it backs the gateway's /audit
// face and receives this gateway's boundary events (watch up/down/
// resync, call admissions) stamped with the gateway's face name. nil
// turns auditing off. Safe to call at any time; typically wired by the
// federation assembler alongside SetAuth.
func (g *VSG) SetAudit(l *audit.Log) {
	if l == nil {
		g.auditLog.Store(nil)
		g.auditRec.Store(nil)
		return
	}
	g.auditLog.Store(l)
	rec := audit.WithFace(l, "vsg:"+g.name, g.home)
	g.auditRec.Store(&rec)
}

// auditEvent emits an audit event if auditing is on: one atomic load on
// the off path.
func (g *VSG) auditEvent(ev audit.Event) {
	p := g.auditRec.Load()
	if p != nil {
		(*p).Record(ev)
	}
}

// authorize applies the home-boundary decision to one inbound call:
// callers from this home pass, callers from other homes must clear the
// export policy and the service ACL. id is the unscoped local service
// ID. The returned error wraps service.ErrForbidden, and surfaces to
// wire callers as the same *service.RemoteError the loopback path
// produces (both route through soap.FaultFromError).
func (g *VSG) authorize(caller, id string) error {
	if g.auth == nil {
		return nil
	}
	if err := g.auth.Authorize(caller, id); err != nil {
		g.deniedCalls.Add(1)
		return err
	}
	return nil
}

// canonicalID maps a possibly home-scoped service ID to the form local
// exports are registered under: this home's own scope is stripped, any
// other scope is kept (it names a service that only the repository can
// locate).
func (g *VSG) canonicalID(id string) string {
	if g.home == "" {
		return id
	}
	if home, local, ok := service.SplitScopedID(id); ok && home == g.home {
		return local
	}
	return id
}

// Hub returns the gateway's event hub.
func (g *VSG) Hub() *events.Hub { return g.hub }

// SetCacheTTL adjusts resolve caching; zero disables it (each call hits
// the repository, the ablation measured by BenchmarkVSRFindCached). With
// the repository watch up, the TTL is only the fallback staleness bound:
// cached entries are push-invalidated and served regardless of age.
func (g *VSG) SetCacheTTL(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cacheTTL = d
	g.resolveCache = make(map[string]cachedRemote)
}

// SetLoopbackEnabled gates the loopback fast path on this gateway's
// outbound calls (default on): resolved endpoints served by a gateway in
// the same process dispatch straight to the target's service.Invoker,
// skipping HTTP and the SOAP codec while preserving wire semantics
// (argument validation, fault mapping through service.RemoteError, call
// accounting on both gateways). Disable it — the vsgd -no-loopback flag —
// to force every call onto the wire, e.g. to benchmark the SOAP path.
func (g *VSG) SetLoopbackEnabled(on bool) {
	g.loopbackOff.Store(!on)
}

// SetBinaryEnabled turns the binary fast path off (or back on) for this
// gateway, both directions: outbound calls stop offering the handshake
// and inbound hellos are refused, so every exchange rides signed
// SOAP/HTTP — the vsgd -binary=false flag and the SOAP-only home of a
// mixed-mode federation. Default on whenever auth is live.
func (g *VSG) SetBinaryEnabled(on bool) {
	g.binaryOff = !on
	if g.dialer != nil {
		g.dialer.Binary = on && g.auth != nil
	}
	if g.bin != nil {
		g.bin.SetEnabled(on)
	}
}

// SetWatchEnabled gates the repository watch; call before Start. With the
// watch off the gateway degrades to the paper's poll model: blind
// TTL-bounded caching and no push invalidation (the middle point of the
// DESIGN.md §7 ablation).
func (g *VSG) SetWatchEnabled(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.watchEnabled = on
}

// Start brings the gateway up on addr ("127.0.0.1:0" for ephemeral) and
// begins refreshing VSR registrations.
func (g *VSG) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("vsg %s: listen: %w", g.name, err)
	}
	g.ln = ln
	g.httpS = &http.Server{Handler: g.buildMux()}
	serveLn := ln
	if g.bin != nil {
		// Share the port: the demultiplexer sniffs the binary preamble and
		// routes those connections to the session-keyed face; in-process
		// peers dial through the local registry without a socket.
		serveLn = transport.Demux(ln, g.bin)
		transport.RegisterLocal(ln.Addr().String(), g.bin)
	}
	go func() { _ = g.httpS.Serve(serveLn) }()
	procMu.Lock()
	procGateways[g.BaseURL()] = g
	procMu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	g.refreshCancel = cancel
	g.refreshDone = make(chan struct{})
	go g.refreshLoop(ctx)
	g.mu.Lock()
	watch := g.watchEnabled
	g.mu.Unlock()
	if watch {
		g.watchDone = make(chan struct{})
		go g.watchLoop(ctx)
	}
	return nil
}

// StartDetached brings the gateway up with no TCP listener and no
// background loops: its wire faces are the returned handler (registered
// on an in-memory network under base, e.g. "home-17-jini"), exports
// refresh only when the owner calls RefreshExports, and the repository
// watch advances only through PumpWatch. The deterministic simulation
// drives both from its event loop, so nothing here ticks on its own.
// The gateway still joins the in-process loopback registry: same-home
// loopback dispatch is one of the paths under measurement.
func (g *VSG) StartDetached(base string) http.Handler {
	g.base = base
	h := g.buildMux()
	procMu.Lock()
	procGateways[g.BaseURL()] = g
	procMu.Unlock()
	return h
}

// buildMux assembles the gateway's wire faces, shared by the listening
// and detached constructions.
func (g *VSG) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	// Both wire faces sit behind the home-boundary middleware: with an
	// identity installed, callers must present a trusted home's signature
	// (refused in each face's own fault vocabulary); in open mode the
	// wrappers pass through untouched.
	mux.Handle("/services/", identity.Require(g.auth, false, soap.AuthFaultWriter,
		soap.NewHTTPHandler(inbound{g: g})))
	mux.Handle("/events/", identity.Require(g.auth, false, identity.HTTPDeny,
		http.StripPrefix("/events", events.Handler(g.hub))))
	// Read-only operability faces, private to the home's own identity
	// once one is installed (Require passes through in open mode).
	mux.Handle("/health", identity.Require(g.auth, true, identity.HTTPDeny,
		ops.HealthHandler(func() any { return g.healthReport() })))
	mux.Handle("/audit", identity.Require(g.auth, true, identity.HTTPDeny,
		ops.AuditHandler(func() *audit.Log { return g.auditLog.Load() })))
	if g.auth != nil {
		// The binary fast-path face: session-authenticated callers reach
		// the same inbound dispatch as the SOAP face. Binary-encoded calls
		// skip the XML codec entirely; anything else (tunneled XML) replays
		// through the ordinary HTTP handler with the caller injected.
		g.bin = transport.NewBinServer(g.auth)
		if g.binaryOff {
			g.bin.SetEnabled(false)
		}
		xmlFace := identity.BinFace(g.auth, false, soap.AuthFaultWriter,
			soap.NewHTTPHandler(inbound{g: g}))
		g.bin.Handle(servicesPath, transport.BinHandlerFunc(
			func(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
				if req.ContentType == soap.BinCallContentType {
					return g.serveBinCall(ctx, caller, req)
				}
				return xmlFace.ServeBin(ctx, caller, req)
			}))
	}
	return mux
}

// serveBinCall dispatches one binary-encoded call: DecodeBinCall,
// inbound dispatch under the session-verified caller, EncodeBinResponse
// — the exact semantics of the SOAP face with the XML codec replaced by
// the compact framing. Faults ride status 500, as SOAP 1.1 requires,
// so both paths classify outcomes identically.
func (g *VSG) serveBinCall(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
	call, err := soap.DecodeBinCall(req.Body)
	if err != nil {
		return binFaultResponse(&soap.Fault{Code: "Client", String: err.Error()})
	}
	result, err := (inbound{g: g}).ServeSOAP(identity.WithCaller(ctx, caller), call)
	if err != nil {
		return binFaultResponse(soap.FaultFromError(err))
	}
	body, err := soap.EncodeBinResponse(result)
	if err != nil {
		return binFaultResponse(&soap.Fault{Code: "Server", String: err.Error()})
	}
	return &transport.BinResponse{Status: http.StatusOK, ContentType: soap.BinCallContentType, Body: body}
}

// binFaultResponse renders a fault on the binary face.
func binFaultResponse(f *soap.Fault) *transport.BinResponse {
	return &transport.BinResponse{
		Status:      http.StatusInternalServerError,
		ContentType: soap.BinCallContentType,
		Body:        soap.EncodeBinFault(f),
	}
}

// Close stops the gateway: exports are withdrawn from the VSR on a best-
// effort basis, the HTTP server shuts down and the hub closes.
func (g *VSG) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	keys := make([]string, 0, len(g.exports))
	for _, e := range g.exports {
		keys = append(keys, e.key)
	}
	g.mu.Unlock()

	// Leave the loopback registry first: callers must fall back to the
	// wire (and observe the dead listener) rather than invoke a gateway
	// that is tearing down.
	if base := g.BaseURL(); base != "" {
		procMu.Lock()
		delete(procGateways, base)
		procMu.Unlock()
	}

	if g.refreshCancel != nil {
		g.refreshCancel()
		<-g.refreshDone
		if g.watchDone != nil {
			<-g.watchDone
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, key := range keys {
		_ = g.vsr.Unregister(ctx, key)
	}
	if g.bin != nil && g.ln != nil {
		transport.UnregisterLocal(g.ln.Addr().String())
	}
	if g.bin != nil {
		g.bin.Close()
	}
	if g.dialer != nil {
		g.dialer.Close()
	}
	if g.httpS != nil {
		_ = g.httpS.Close()
	}
	g.hub.Close()
}

// BaseURL returns the gateway's HTTP root: its TCP address when
// listening, its virtual hostname when detached.
func (g *VSG) BaseURL() string {
	if g.ln != nil {
		return "http://" + g.ln.Addr().String()
	}
	if g.base != "" {
		return "http://" + g.base
	}
	return ""
}

// EndpointFor returns the SOAP endpoint URL serving a local service.
func (g *VSG) EndpointFor(serviceID string) string {
	return g.BaseURL() + "/services/" + serviceID
}

// EventsURL returns the event hub mount point.
func (g *VSG) EventsURL() string { return g.BaseURL() + "/events" }

// Export publishes a local service to the federation: it gains a SOAP
// endpoint on this gateway and a VSR registration. The context tags the
// description with the gateway's network name.
func (g *VSG) Export(ctx context.Context, desc service.Description, invoker service.Invoker) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	desc = desc.Clone()
	if desc.Context == nil {
		desc.Context = make(map[string]string)
	}
	desc.Context[service.CtxNetwork] = g.name
	if g.home != "" {
		desc.Context[service.CtxHome] = g.home
	}
	key, err := g.vsr.Register(ctx, desc, g.EndpointFor(desc.ID))
	if err != nil {
		return fmt.Errorf("vsg %s: export %s: %w", g.name, desc.ID, err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.exports[desc.ID] = &export{desc: desc, invoker: invoker, key: key}
	return nil
}

// Unexport withdraws a local service.
func (g *VSG) Unexport(ctx context.Context, serviceID string) error {
	g.mu.Lock()
	e, ok := g.exports[serviceID]
	if ok {
		delete(g.exports, serviceID)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("vsg %s: unexport %s: %w", g.name, serviceID, service.ErrNoSuchService)
	}
	return g.vsr.Unregister(ctx, e.key)
}

// Exports lists the IDs of locally exported services.
func (g *VSG) Exports() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.exports))
	for id := range g.exports {
		out = append(out, id)
	}
	return out
}

// localExport returns the local export for id, if any.
func (g *VSG) localExport(id string) (*export, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.exports[id]
	return e, ok
}

// refreshLoop renews exports at a fraction of the VSR TTL so they
// survive; the repository expires anything whose gateway dies. Each round
// is one batched RegisterAll, so a gateway with N exports costs the
// repository one request per interval, not N.
func (g *VSG) refreshLoop(ctx context.Context) {
	defer close(g.refreshDone)
	interval := g.vsr.TTL() / 3
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ticker := g.clock.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C():
			_ = g.RefreshExports(ctx)
		}
	}
}

// RefreshExports renews every export's repository registration in one
// batched round trip: the body of one background refresh round, exposed
// so a detached gateway's owner can schedule renewal itself. Failures
// land in Health exactly as a background round's would.
func (g *VSG) RefreshExports(ctx context.Context) error {
	g.mu.Lock()
	regs := make([]vsr.Registration, 0, len(g.exports))
	for _, e := range g.exports {
		regs = append(regs, vsr.Registration{Desc: e.desc, Endpoint: g.EndpointFor(e.desc.ID)})
	}
	g.mu.Unlock()
	var roundErr error
	if len(regs) > 0 {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := g.vsr.RegisterAll(rctx, regs)
		cancel()
		if err != nil {
			roundErr = fmt.Errorf("vsg %s: refresh %d exports: %w", g.name, len(regs), err)
		}
	}
	g.mu.Lock()
	if roundErr != nil {
		g.refreshFailures++
		g.lastRefreshErr = roundErr.Error()
	} else {
		g.refreshFailures = 0
		g.lastRefreshOK = g.clock.Now()
	}
	g.mu.Unlock()
	return roundErr
}

// PumpWatch performs one synchronous watch round against the repository
// — an immediate probe, no parked poll — and folds any pending deltas
// into the resolve cache through the same state machine the background
// watch loop runs. The manual counterpart of watchLoop, for detached
// gateways on a simulation event loop.
func (g *VSG) PumpWatch(ctx context.Context) error {
	deltas, next, resync, err := g.vsr.WatchOnce(ctx, g.watchSince, 0)
	if err != nil {
		g.applyDelta(vsr.Delta{Op: vsr.DeltaDown, Err: err})
		return err
	}
	g.mu.Lock()
	up := g.watchUp
	g.mu.Unlock()
	if !up {
		g.applyDelta(vsr.Delta{Op: vsr.DeltaUp, Seq: next})
	}
	if resync {
		g.applyDelta(vsr.Delta{Op: vsr.DeltaResync, Seq: next})
	}
	for _, d := range deltas {
		g.applyDelta(d)
	}
	g.watchSince = next
	return nil
}

// watchLoop consumes the repository's change stream and keeps the resolve
// cache exact: updates rewrite cached endpoints in place (a re-homed
// service is callable again as soon as the delta lands), deletions and
// expiries evict, and a resync or stream outage flushes or demotes the
// cache to its TTL fallback.
func (g *VSG) watchLoop(ctx context.Context) {
	defer close(g.watchDone)
	ch, err := g.vsr.Watch(ctx, 0)
	if err != nil {
		return
	}
	for d := range ch {
		g.applyDelta(d)
	}
}

// applyDelta folds one repository notification into the gateway's state.
func (g *VSG) applyDelta(d vsr.Delta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch d.Op {
	case vsr.DeltaUp:
		if !g.watchUp {
			g.auditEvent(audit.Event{Type: audit.WatchUp, Detail: "repository change stream connected"})
		}
		g.watchUp = true
		g.lastWatchErr = ""
	case vsr.DeltaDown:
		// Degraded mode: cached entries keep serving, but only within
		// their TTL — the blind staleness bound the watch normally lifts.
		if g.watchUp {
			detail := "repository change stream lost; resolve cache degraded to TTL bound"
			if d.Err != nil {
				detail += ": " + d.Err.Error()
			}
			g.auditEvent(audit.Event{Type: audit.WatchDown, Detail: detail})
		}
		g.watchUp = false
		if d.Err != nil {
			g.lastWatchErr = d.Err.Error()
		}
	case vsr.DeltaResync:
		g.watchResyncs.Add(1)
		g.auditEvent(audit.Event{Type: audit.WatchResync,
			Detail: fmt.Sprintf("journal skipped past cursor; %d cached resolutions flushed", len(g.resolveCache))})
		// The journal skipped past us; anything cached may be stale, and
		// recorded fence sequence numbers may come from a previous
		// registry incarnation (a restarted registry counts from zero
		// again, which would leave stale fences blocking cache fills).
		if len(g.resolveCache) > 0 {
			g.invalidations.Add(uint64(len(g.resolveCache)))
			g.resolveCache = make(map[string]cachedRemote)
		}
		g.changedSeq = make(map[string]uint64)
		g.cacheGen++
		g.watchUp = true
	case vsr.DeltaAdd, vsr.DeltaUpdate:
		g.watchDeltas.Add(1)
		g.stampChange(d)
		// Only rewrite what callers have actually resolved; the cache
		// tracks this gateway's working set, not the whole federation.
		if _, ok := g.resolveCache[d.ServiceID]; ok {
			g.resolveCache[d.ServiceID] = cachedRemote{
				remote:  d.Remote,
				expires: g.clock.Now().Add(g.cacheTTL),
			}
			g.invalidations.Add(1)
		}
	case vsr.DeltaDelete, vsr.DeltaExpire:
		g.watchDeltas.Add(1)
		g.stampChange(d)
		if _, ok := g.resolveCache[d.ServiceID]; ok {
			delete(g.resolveCache, d.ServiceID)
			g.invalidations.Add(1)
		}
	}
}

// fencePruneLen and fenceHorizon bound the changedSeq fence map: once it
// outgrows fencePruneLen, stamps more than fenceHorizon sequence numbers
// behind the newest delta are dropped. A dropped stamp only mis-admits a
// cache fill whose repository inquiry was delayed across that many
// registry mutations — and such an entry still falls to the next delta
// for its ID. Without pruning the map would grow with every service ID
// ever journaled, for the life of the gateway.
const (
	fencePruneLen = 1024
	fenceHorizon  = 1024
)

// stampChange records a change delta's sequence number for the cache-fill
// fence, pruning ancient stamps. Caller holds mu.
func (g *VSG) stampChange(d vsr.Delta) {
	g.changedSeq[d.ServiceID] = d.Seq
	if len(g.changedSeq) > fencePruneLen && d.Seq > fenceHorizon {
		for id, seq := range g.changedSeq {
			if seq < d.Seq-fenceHorizon {
				delete(g.changedSeq, id)
			}
		}
	}
}

// Resolve finds the service with the given federation ID, consulting the
// resolve cache first. While the repository watch is up, cache hits are
// served regardless of age — entries are push-invalidated the moment the
// repository reports a change, so they cannot go stale. When the watch is
// down (degraded mode, see Health) the entry's TTL is the staleness bound
// again, as in the paper's poll model.
func (g *VSG) Resolve(ctx context.Context, serviceID string) (vsr.Remote, error) {
	g.mu.Lock()
	if c, ok := g.resolveCache[serviceID]; ok && (g.watchUp || g.clock.Now().Before(c.expires)) {
		g.mu.Unlock()
		return c.remote, nil
	}
	ttl := g.cacheTTL
	seenGen := g.cacheGen
	g.mu.Unlock()

	remote, seq, err := g.vsr.LookupSeq(ctx, serviceID)
	if err != nil {
		return vsr.Remote{}, err
	}
	if ttl > 0 {
		g.mu.Lock()
		// Fence: a delta newer than the inquiry means the looked-up data
		// is already stale and must not enter the cache, where push
		// invalidation — believing it already delivered that change —
		// would never evict it. Same for a resync/outage generation bump.
		if g.changedSeq[serviceID] <= seq && g.cacheGen == seenGen {
			g.resolveCache[serviceID] = cachedRemote{remote: remote, expires: g.clock.Now().Add(ttl)}
		}
		g.mu.Unlock()
	}
	return remote, nil
}

// List queries the repository.
func (g *VSG) List(ctx context.Context, q vsr.Query) ([]vsr.Remote, error) {
	return g.vsr.Find(ctx, q)
}

// Call invokes an operation on any federation service by ID. Local
// exports are invoked directly (they live on this gateway's network);
// remote services go out over SOAP to their owning gateway.
func (g *VSG) Call(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error) {
	serviceID = g.canonicalID(serviceID)
	if e, ok := g.localExport(serviceID); ok {
		opSpec, ok := e.desc.Interface.Operation(op)
		if !ok {
			return service.Value{}, fmt.Errorf("%s.%s: %w", serviceID, op, service.ErrNoSuchOperation)
		}
		if err := service.ValidateArgs(opSpec, args); err != nil {
			return service.Value{}, err
		}
		return e.invoker.Invoke(ctx, op, args)
	}
	remote, err := g.Resolve(ctx, serviceID)
	if err != nil {
		return service.Value{}, err
	}
	return g.CallRemote(ctx, remote, op, args)
}

// CallRemote invokes op on an already resolved remote service. When the
// endpoint is served by a gateway in this process and loopback is enabled,
// the call dispatches in-process (see SetLoopbackEnabled); otherwise it
// travels as SOAP over the shared HTTP transport.
func (g *VSG) CallRemote(ctx context.Context, remote vsr.Remote, op string, args []service.Value) (service.Value, error) {
	opSpec, ok := remote.Desc.Interface.Operation(op)
	if !ok {
		return service.Value{}, fmt.Errorf("%s.%s: %w", remote.Desc.ID, op, service.ErrNoSuchOperation)
	}
	if err := service.ValidateArgs(opSpec, args); err != nil {
		return service.Value{}, err
	}
	g.outboundCalls.Add(1)
	if target := g.loopbackTarget(remote.Endpoint, args); target != nil {
		g.loopbackCalls.Add(1)
		return target.invokeLocal(ctx, remote.Desc.ID, op, args)
	}
	call := soap.Call{Namespace: Namespace(remote.Desc.ID), Operation: op}
	for i, p := range opSpec.Inputs {
		call.Args = append(call.Args, soap.Arg{Name: p.Name, Value: args[i]})
	}
	// g.authHTTP (nil in open mode, letting the client fall back to the
	// shared transport) signs the envelope headers with this home's
	// identity, so the target home knows who is calling. The dialer, when
	// live, first offers the binary fast path to the target's authority.
	client := &soap.Client{URL: remote.Endpoint, HTTP: g.authHTTP, Dialer: g.dialer}
	return client.Call(ctx, Namespace(remote.Desc.ID)+"#"+op, call)
}

// loopbackPayloadCeiling routes borderline-huge requests onto the wire:
// above this conservative bound the encoded envelope might overflow
// soap.MaxEnvelopeBytes once escaping (worst case 6×: "&#34;" for a
// quote, U+FFFD for an invalid byte) or base64 wrapping expands the
// payload, and only the real codec can decide exactly. Sending those few
// calls over HTTP keeps the accept/reject boundary identical on both
// paths instead of approximating it. The 4 KiB headroom covers the
// envelope shell and operation/parameter elements.
const loopbackPayloadCeiling = (soap.MaxEnvelopeBytes - 4096) / 6

// payloadLen sums the variable-size payload bytes across values.
func payloadLen(vals []service.Value) int {
	total := 0
	for _, v := range vals {
		total += v.PayloadLen()
	}
	return total
}

// loopbackTarget returns the in-process gateway serving endpoint, or nil
// when the call must go over the wire.
func (g *VSG) loopbackTarget(endpoint string, args []service.Value) *VSG {
	if g.loopbackOff.Load() {
		return nil
	}
	if payloadLen(args) > loopbackPayloadCeiling {
		return nil
	}
	i := strings.Index(endpoint, servicesPath)
	if i < 0 {
		return nil
	}
	procMu.RLock()
	target := procGateways[endpoint[:i]]
	procMu.RUnlock()
	if target != nil && target.home != g.home {
		// Cross-home calls always ride the wire, even when both homes
		// share a process (homesim -homes N): the home boundary is the
		// deployment boundary, and benchmarks of federated calls must
		// measure the path a real away-from-home call takes.
		return nil
	}
	return target
}

// invokeLocal is the loopback receive side: the inbound SOAP handler's
// semantics without the codec. Argument validation, call accounting and
// fault shaping match the wire byte for byte at the API surface — a
// target-side failure surfaces as the same *service.RemoteError a decoded
// fault would have produced, so callers cannot tell the paths apart
// (loopback_test.go holds that equivalence).
func (g *VSG) invokeLocal(ctx context.Context, id, op string, args []service.Value) (service.Value, error) {
	if err := ctx.Err(); err != nil {
		// The wire's HTTP round trip would abort with the context error
		// wrapped in ErrUnavailable; keep both sentinels on loopback.
		return service.Value{}, fmt.Errorf("vsg: loopback: %w: %w", service.ErrUnavailable, err)
	}
	local := g.canonicalID(id)
	// Wire-equivalent authorization: a loopback call is by construction a
	// same-home call (loopbackTarget requires it), whose wire twin would
	// carry this home's own verified identity — but the check still runs,
	// through the same authorize and the same fault mapping, so the two
	// paths cannot diverge if the boundary semantics ever change.
	if err := g.authorize(g.home, local); err != nil {
		return service.Value{}, remoteErrorFrom(err)
	}
	e, ok := g.localExport(local)
	if !ok {
		// The wire would reach this same gateway and fault NoSuchService;
		// don't fall through to HTTP just to learn the same thing.
		return service.Value{}, remoteErrorFrom(fmt.Errorf("%s: %w", id, service.ErrNoSuchService))
	}
	opSpec, ok := e.desc.Interface.Operation(op)
	if !ok {
		return service.Value{}, remoteErrorFrom(fmt.Errorf("%s.%s: %w", id, op, service.ErrNoSuchOperation))
	}
	if err := service.ValidateArgs(opSpec, args); err != nil {
		return service.Value{}, remoteErrorFrom(err)
	}
	g.inboundCalls.Add(1)
	g.auditEvent(audit.Event{Type: audit.CallAdmit, Caller: g.home,
		Service: local, Op: op, Detail: "loopback"})
	v, err := e.invoker.Invoke(ctx, op, args)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			// Mid-call cancellation: the wire surfaces the context error
			// as a transport failure, not a remote fault.
			return service.Value{}, fmt.Errorf("vsg: loopback: %w: %w", service.ErrUnavailable, err)
		}
		return service.Value{}, remoteErrorFrom(err)
	}
	if !v.IsVoid() && !v.Kind().Valid() {
		// The wire path would fail to encode this result and fault
		// Server-side; mirror that instead of leaking an invalid value.
		return service.Value{}, remoteErrorFrom(fmt.Errorf("soap: result: %w", service.ErrBadKind))
	}
	if v.PayloadLen() > loopbackPayloadCeiling {
		// A result this large might overflow the wire's envelope bound;
		// encode the real response so the limit is enforced exactly as
		// the wire would (the caller's decode of a truncated envelope is
		// a plain error, not a fault). The encode cost is paid only by
		// payloads far beyond appliance-control scale.
		data, err := soap.EncodeResponse(Namespace(id), op, v)
		if err != nil {
			return service.Value{}, remoteErrorFrom(err)
		}
		if len(data) > soap.MaxEnvelopeBytes {
			return service.Value{}, fmt.Errorf("soap: response envelope exceeds %d bytes", soap.MaxEnvelopeBytes)
		}
	}
	return v, nil
}

// remoteErrorFrom maps a target-side error to the *service.RemoteError
// the wire path would deliver: classified through soap.FaultFromError on
// the serving side, rebuilt from the fault exactly as the HTTP client
// does (the shared Fault.RemoteError mapping).
func remoteErrorFrom(err error) error {
	return soap.FaultFromError(err).RemoteError()
}

// CallStats is the gateway's call accounting, the named form the
// /health face and homectl report.
type CallStats struct {
	// Inbound counts calls served for remote peers (wire and loopback
	// receive sides).
	Inbound uint64 `json:"inbound"`
	// Outbound counts calls issued to federation services.
	Outbound uint64 `json:"outbound"`
	// Loopback counts outbound calls that took the in-process fast path
	// instead of the wire.
	Loopback uint64 `json:"loopback"`
	// Denied counts inbound calls the home boundary refused (export
	// policy or service ACL).
	Denied uint64 `json:"denied"`
}

// CallStats returns a snapshot of the gateway's call counters.
func (g *VSG) CallStats() CallStats {
	return CallStats{
		Inbound:  g.inboundCalls.Load(),
		Outbound: g.outboundCalls.Load(),
		Loopback: g.loopbackCalls.Load(),
		Denied:   g.deniedCalls.Load(),
	}
}

// Stats returns the gateway's call counters: calls served for remote
// peers (inbound), calls issued to federation services (outbound), and
// how many of those outbound calls took the in-process loopback fast
// path instead of the wire. Thin wrapper over CallStats, kept for the
// benchmark harness and older callers.
func (g *VSG) Stats() (inbound, outbound, loopback uint64) {
	s := g.CallStats()
	return s.Inbound, s.Outbound, s.Loopback
}

// Health describes the gateway's repository liaison: the registration-
// refresh loop and the change watch. A non-zero
// ConsecutiveRefreshFailures with an aging LastRefreshOK means the VSR is
// expiring this gateway's exports: the dead-repository condition §3.3
// leaves otherwise invisible. WatchActive false on a watch-enabled
// gateway is degraded mode: resolutions fall back to blind TTL caching
// and may be stale for up to the cache TTL.
type Health struct {
	// ConsecutiveRefreshFailures counts refresh rounds since the last
	// fully successful one.
	ConsecutiveRefreshFailures int `json:"consecutive_refresh_failures"`
	// LastRefreshError is the most recent re-registration error.
	LastRefreshError string `json:"last_refresh_error,omitempty"`
	// LastRefreshOK is when a round last re-registered every export.
	LastRefreshOK time.Time `json:"last_refresh_ok"`
	// WatchActive reports a live repository change stream: cached
	// resolutions are push-invalidated and cannot go stale.
	WatchActive bool `json:"watch_active"`
	// LastWatchError is the failure that broke the watch stream, cleared
	// on recovery.
	LastWatchError string `json:"last_watch_error,omitempty"`
	// WatchDeltas counts change notifications applied since start.
	WatchDeltas uint64 `json:"watch_deltas"`
	// CacheInvalidations counts cached resolutions evicted or rewritten
	// by push notifications since start.
	CacheInvalidations uint64 `json:"cache_invalidations"`
	// WatchResyncs counts full cache flushes forced because the
	// repository journal skipped past this gateway's cursor (overrun, or
	// a registry that restarted without durable state). A durable
	// repository restart resumes the cursor and does not bump this.
	WatchResyncs uint64 `json:"watch_resyncs"`
	// LoopbackCalls counts outbound calls dispatched in-process instead
	// of over the wire (see SetLoopbackEnabled).
	LoopbackCalls uint64 `json:"loopback_calls"`
	// Calls is the gateway's call accounting, so one Health snapshot
	// carries everything the /health face reports.
	Calls CallStats `json:"calls"`
}

// healthReport is the gateway's /health face body: who this gateway is
// plus its Health snapshot and the audit log's summary.
func (g *VSG) healthReport() any {
	return struct {
		Network string      `json:"network"`
		Home    string      `json:"home,omitempty"`
		Health  Health      `json:"health"`
		Audit   audit.Stats `json:"audit"`
	}{
		Network: g.name,
		Home:    g.home,
		Health:  g.Health(),
		Audit:   g.auditLog.Load().Stats(),
	}
}

// Health reports the repository liaison's condition.
func (g *VSG) Health() Health {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Health{
		ConsecutiveRefreshFailures: g.refreshFailures,
		LastRefreshError:           g.lastRefreshErr,
		LastRefreshOK:              g.lastRefreshOK,
		WatchActive:                g.watchUp,
		LastWatchError:             g.lastWatchErr,
		WatchDeltas:                g.watchDeltas.Load(),
		CacheInvalidations:         g.invalidations.Load(),
		WatchResyncs:               g.watchResyncs.Load(),
		LoopbackCalls:              g.loopbackCalls.Load(),
		Calls:                      g.CallStats(),
	}
}

// inbound adapts the gateway's exports to the SOAP server: the client
// proxy direction of Figure 2 (remote federation calls invoking local
// middleware services).
type inbound struct {
	g *VSG
}

// ServeSOAP implements soap.Handler.
func (in inbound) ServeSOAP(ctx context.Context, call soap.Call) (service.Value, error) {
	id, ok := ServiceIDFromNamespace(call.Namespace)
	if !ok {
		return service.Value{}, fmt.Errorf("namespace %q: %w", call.Namespace, service.ErrNoSuchService)
	}
	// Peers address exports by this home's scoped IDs; strip our own
	// scope so both spellings reach the same export.
	local := in.g.canonicalID(id)
	// The home-boundary check comes before existence: a caller the ACL
	// refuses learns nothing about what this home runs. The caller home
	// was verified by the auth middleware in front of this handler.
	caller := identity.CallerFromContext(ctx)
	if err := in.g.authorize(caller, local); err != nil {
		return service.Value{}, err
	}
	e, ok := in.g.localExport(local)
	if !ok {
		return service.Value{}, fmt.Errorf("%s: %w", id, service.ErrNoSuchService)
	}
	op, ok := e.desc.Interface.Operation(call.Operation)
	if !ok {
		return service.Value{}, fmt.Errorf("%s.%s: %w", id, call.Operation, service.ErrNoSuchOperation)
	}
	args := make([]service.Value, len(call.Args))
	for i := range call.Args {
		args[i] = call.Args[i].Value
	}
	if err := service.ValidateArgs(op, args); err != nil {
		return service.Value{}, err
	}
	in.g.inboundCalls.Add(1)
	in.g.auditEvent(audit.Event{Type: audit.CallAdmit, Caller: caller,
		Service: local, Op: call.Operation, Detail: "wire"})
	return e.invoker.Invoke(ctx, call.Operation, args)
}
