// Package vsr implements the Virtual Service Repository (§3.3): "a
// virtual database which has a lot of information of heterogeneous
// services such as service locations and service contexts." Following the
// prototype (§4.1), it is built from WSDL (interface descriptions) and a
// UDDI-style registry (locations and contexts): each federation service
// is published as a UDDI entry whose inline WSDL document carries the
// interface and whose category bag carries the service context.
//
// Beyond the paper, the repository is an active component: Watch streams
// registry changes (add/update/delete/expire deltas) to gateways over a
// long-poll journal so resolution caches are push-invalidated instead of
// guessing with a TTL, and RegisterAll renews a gateway's whole export
// set in one round trip.
package vsr

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/wsdl"
)

// Category keys the VSR adds to each UDDI entry beyond the service's own
// context attributes.
const (
	catMiddleware = "homeconnect.middleware"
	catServiceID  = "homeconnect.id"
)

// DefaultTTL is the registration lifetime; publishers refresh at a
// fraction of it.
const DefaultTTL = 30 * time.Second

// Remote is one discovered service: its description plus the VSG endpoint
// that serves it.
type Remote struct {
	Desc service.Description
	// Endpoint is the SOAP URL of the owning Virtual Service Gateway.
	Endpoint string
}

// Query selects services in the repository.
type Query struct {
	// ID, if set, matches the exact federation service ID.
	ID string
	// Middleware, if set, matches the native middleware name.
	Middleware string
	// Interface, if set, matches the interface (tModel) name.
	Interface string
	// Context entries must all match the service context.
	Context map[string]string
}

// VSR is a client handle on the repository.
type VSR struct {
	client *uddi.Client
	ttl    time.Duration
}

// New returns a VSR client against the given registry URL.
func New(url string) *VSR {
	return &VSR{client: &uddi.Client{URL: url}, ttl: DefaultTTL}
}

// NewSet returns a VSR client against a replicated registry: an ordered
// endpoint list walked by error-driven failover. Writes follow the
// E_notLeader redirect to wherever the leader currently is; reads are
// answered by whichever endpoint is pinned. With one URL it behaves
// exactly like New.
func NewSet(urls ...string) *VSR {
	if len(urls) == 1 {
		return New(urls[0])
	}
	return &VSR{
		client: &uddi.Client{Resolver: transport.NewResolver(urls...)},
		ttl:    DefaultTTL,
	}
}

// SetHTTPClient replaces the underlying HTTP client — how gateways and
// peer links route repository traffic through a credential-signing
// client (transport.NewAuthClient) when their home has an identity. Call
// before the first request.
func (v *VSR) SetHTTPClient(c *http.Client) { v.client.HTTP = c }

// SetDialer routes repository traffic through a transport.Dialer, which
// owns credentials and protocol negotiation: requests ride the binary
// fast path once the registry's authority has negotiated it and fall
// back to signed HTTP otherwise. Call before the first request;
// supersedes SetHTTPClient.
func (v *VSR) SetDialer(d *transport.Dialer) {
	v.client.Dialer = d
	v.client.HTTP = nil
}

// TTL returns the registration lifetime used by Register.
func (v *VSR) TTL() time.Duration { return v.ttl }

// SetTTL overrides the registration lifetime (tests and benchmarks).
func (v *VSR) SetTTL(d time.Duration) {
	if d > 0 {
		v.ttl = d
	}
}

// EntryFor builds the UDDI entry advertising desc at endpoint: the
// repository representation Register publishes. It is exported for the
// inter-home peering layer (internal/core/peer), which re-registers
// remote descriptions under home-scoped IDs without an HTTP round trip.
func EntryFor(desc service.Description, endpoint string) (uddi.Entry, error) {
	if err := desc.Validate(); err != nil {
		return uddi.Entry{}, err
	}
	doc, err := wsdl.Generate(desc.Interface, endpoint)
	if err != nil {
		return uddi.Entry{}, fmt.Errorf("vsr: generate wsdl for %s: %w", desc.ID, err)
	}
	cats := map[string]string{
		catMiddleware: desc.Middleware,
		catServiceID:  desc.ID,
	}
	for k, val := range desc.Context {
		cats[k] = val
	}
	return uddi.Entry{
		// Keying the UDDI entry by service ID makes re-registration a
		// refresh rather than a duplicate.
		Key:         "uuid:svc-" + desc.ID,
		Name:        desc.ID,
		Description: desc.Name,
		AccessPoint: endpoint,
		TModel:      desc.Interface.Name,
		WSDL:        string(doc),
		Categories:  cats,
	}, nil
}

// Register publishes a service with its gateway endpoint and returns the
// repository key. Call it again with the same description to refresh the
// TTL.
func (v *VSR) Register(ctx context.Context, desc service.Description, endpoint string) (string, error) {
	entry, err := EntryFor(desc, endpoint)
	if err != nil {
		return "", err
	}
	key, err := v.client.Save(ctx, entry, v.ttl)
	if err != nil {
		return "", fmt.Errorf("vsr: register %s: %w", desc.ID, err)
	}
	return key, nil
}

// Registration pairs a service description with the gateway endpoint
// serving it, for batched publication.
type Registration struct {
	Desc     service.Description
	Endpoint string
}

// RegisterAll publishes (or refreshes) every registration in a single
// repository round trip and returns the keys in order. This is how a
// gateway renews its N exports at one request per refresh interval
// instead of N.
func (v *VSR) RegisterAll(ctx context.Context, regs []Registration) ([]string, error) {
	if len(regs) == 0 {
		return nil, nil
	}
	entries := make([]uddi.Entry, len(regs))
	for i, r := range regs {
		entry, err := EntryFor(r.Desc, r.Endpoint)
		if err != nil {
			return nil, err
		}
		entries[i] = entry
	}
	keys, err := v.client.SaveAll(ctx, entries, v.ttl)
	if err != nil {
		return nil, fmt.Errorf("vsr: register batch of %d: %w", len(regs), err)
	}
	return keys, nil
}

// Unregister withdraws a registration by key.
func (v *VSR) Unregister(ctx context.Context, key string) error {
	if err := v.client.Delete(ctx, key); err != nil {
		return fmt.Errorf("vsr: unregister: %w", err)
	}
	return nil
}

// Find returns all services matching the query.
func (v *VSR) Find(ctx context.Context, q Query) ([]Remote, error) {
	out, _, err := v.FindSeq(ctx, q)
	return out, err
}

// FindSeq is Find plus the repository's change-journal sequence number
// observed at read time: the fence gateways use to reject cache fills
// that a concurrent change (already journaled, delta possibly still in
// flight) has made stale.
func (v *VSR) FindSeq(ctx context.Context, q Query) ([]Remote, uint64, error) {
	uq := uddi.Query{TModel: q.Interface, Categories: map[string]string{}}
	if q.ID != "" {
		uq.Categories[catServiceID] = q.ID
	}
	if q.Middleware != "" {
		uq.Categories[catMiddleware] = q.Middleware
	}
	for k, val := range q.Context {
		uq.Categories[k] = val
	}
	entries, seq, err := v.client.FindSeq(ctx, uq)
	if err != nil {
		return nil, 0, fmt.Errorf("vsr: find: %w", err)
	}
	out := make([]Remote, 0, len(entries))
	for _, e := range entries {
		r, err := remoteFromEntry(e)
		if err != nil {
			// Skip malformed entries rather than failing the whole
			// inquiry; other publishers' bugs should not break lookup.
			continue
		}
		out = append(out, r)
	}
	return out, seq, nil
}

// Lookup returns the single service with the given federation ID.
func (v *VSR) Lookup(ctx context.Context, id string) (Remote, error) {
	r, _, err := v.LookupSeq(ctx, id)
	return r, err
}

// LookupSeq is Lookup plus the journal sequence number of the inquiry
// (see FindSeq).
func (v *VSR) LookupSeq(ctx context.Context, id string) (Remote, uint64, error) {
	found, seq, err := v.FindSeq(ctx, Query{ID: id})
	if err != nil {
		return Remote{}, 0, err
	}
	if len(found) == 0 {
		return Remote{}, 0, fmt.Errorf("vsr: %s: %w", id, service.ErrNoSuchService)
	}
	return found[0], seq, nil
}

// DeltaOp classifies one watch notification.
type DeltaOp string

// Watch notifications. Add/Update/Delete/Expire mirror the registry's
// change journal; Resync, Up and Down describe the watch stream itself.
const (
	// DeltaAdd: a service appeared; Remote carries its description.
	DeltaAdd DeltaOp = "add"
	// DeltaUpdate: a registration changed (refresh, or a re-home to a new
	// endpoint); Remote carries the new description.
	DeltaUpdate DeltaOp = "update"
	// DeltaDelete: a service was explicitly unregistered.
	DeltaDelete DeltaOp = "delete"
	// DeltaExpire: a registration's TTL lapsed (its gateway went silent).
	DeltaExpire DeltaOp = "expire"
	// DeltaResync: the journal no longer covers the watcher's cursor
	// (too far behind, or the repository restarted). Consumers must
	// discard every cached resolution.
	DeltaResync DeltaOp = "resync"
	// DeltaUp: the watch stream is (re)established — change notifications
	// are flowing and caches may trust push invalidation again.
	DeltaUp DeltaOp = "up"
	// DeltaDown: a watch round failed; Err carries the cause. Until the
	// next DeltaUp, consumers are blind to changes and must fall back to
	// TTL-bounded caching.
	DeltaDown DeltaOp = "down"
)

// Delta is one notification from a repository watch.
type Delta struct {
	// Seq is the registry sequence number (change deltas and Resync).
	Seq uint64
	// Op classifies the notification.
	Op DeltaOp
	// ServiceID is the affected federation service (change deltas).
	ServiceID string
	// Remote is the service's current description (Add and Update only).
	Remote Remote
	// Err is the transport failure behind a Down delta.
	Err error
}

// watchPollTimeout is how long each long-poll round parks at the
// repository before returning empty.
const watchPollTimeout = 10 * time.Second

// watchRetryDelay spaces retries while the repository is unreachable.
const watchRetryDelay = 500 * time.Millisecond

// Watch streams repository changes with sequence numbers greater than
// since. The channel delivers change deltas in order, interleaved with
// stream-state deltas (Up/Down/Resync); it closes when ctx is cancelled.
// The first successful round trip emits DeltaUp immediately, so consumers
// learn the stream is live without waiting out a long-poll.
func (v *VSR) Watch(ctx context.Context, since uint64) (<-chan Delta, error) {
	if v.client.URL == "" {
		return nil, fmt.Errorf("vsr: watch: no repository URL")
	}
	ch := make(chan Delta, 64)
	go v.watchLoop(ctx, since, ch)
	return ch, nil
}

func (v *VSR) watchLoop(ctx context.Context, since uint64, ch chan<- Delta) {
	defer close(ch)
	send := func(d Delta) bool {
		select {
		case ch <- d:
			return true
		case <-ctx.Done():
			return false
		}
	}
	up := false
	downErr := ""
	// sinceEpoch tracks which leader regime handed out the cursor; across
	// a repository failover the promoted replica uses it to replay shared
	// history instead of demanding a resync.
	var sinceEpoch uint64
	for ctx.Err() == nil {
		timeout := watchPollTimeout
		if !up {
			// Probe with an immediate round so DeltaUp (or Down) arrives
			// fast; only steady-state rounds park at the repository.
			timeout = 0
		}
		changes, next, nextEpoch, resync, err := v.client.WatchEpoch(ctx, since, sinceEpoch, timeout)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Notify on the up→down transition and whenever the failure
			// changes — including a stream that never came up at all (a
			// repository that refuses this watcher's credentials must
			// surface as Down, not as silence).
			if up || downErr != err.Error() {
				up = false
				downErr = err.Error()
				if !send(Delta{Op: DeltaDown, Err: err}) {
					return
				}
			}
			select {
			case <-time.After(watchRetryDelay):
			case <-ctx.Done():
				return
			}
			continue
		}
		downErr = ""
		if !up {
			up = true
			if !send(Delta{Op: DeltaUp, Seq: next}) {
				return
			}
		}
		if resync {
			if !send(Delta{Op: DeltaResync, Seq: next}) {
				return
			}
		}
		for _, c := range changes {
			d, ok := deltaFromChange(c)
			if !ok {
				continue
			}
			if !send(d) {
				return
			}
		}
		since, sinceEpoch = next, nextEpoch
	}
}

// WatchOnce performs a single watch round trip: change deltas after
// since, parking server-side up to timeout (zero probes and returns
// immediately). next is the cursor to resume from; resync means the
// journal no longer covers since and the caller must reconcile. This is
// the synchronous primitive under Watch's streaming loop — and what the
// deterministic simulation drives directly, one round per scheduled
// event, with no goroutine or parked poll in the path.
func (v *VSR) WatchOnce(ctx context.Context, since uint64, timeout time.Duration) (deltas []Delta, next uint64, resync bool, err error) {
	deltas, next, _, resync, err = v.WatchOnceEpoch(ctx, since, 0, timeout)
	return deltas, next, resync, err
}

// WatchOnceEpoch is WatchOnce carrying the replication epoch the cursor
// came from and returning the repository's current one (see
// uddi.Client.WatchEpoch). Callers that persist their cursor across
// repository failovers — the peer import link above all — resume with the
// returned epoch, and must adopt next even when it sits below the old
// cursor: under a newer epoch it is the shared-history replay point.
func (v *VSR) WatchOnceEpoch(ctx context.Context, since, sinceEpoch uint64, timeout time.Duration) (deltas []Delta, next, nextEpoch uint64, resync bool, err error) {
	changes, next, nextEpoch, resync, err := v.client.WatchEpoch(ctx, since, sinceEpoch, timeout)
	if err != nil {
		return nil, 0, 0, false, err
	}
	for _, c := range changes {
		if d, ok := deltaFromChange(c); ok {
			deltas = append(deltas, d)
		}
	}
	return deltas, next, nextEpoch, resync, nil
}

// deltaFromChange maps a registry journal record to a federation delta.
// Malformed entries are skipped, mirroring Find's tolerance of other
// publishers' bugs.
func deltaFromChange(c uddi.Change) (Delta, bool) {
	d := Delta{Seq: c.Seq, Op: DeltaOp(c.Op)}
	switch c.Op {
	case uddi.OpAdd, uddi.OpUpdate:
		r, err := remoteFromEntry(c.Entry)
		if err != nil {
			return Delta{}, false
		}
		d.Remote = r
		d.ServiceID = r.Desc.ID
	case uddi.OpDelete, uddi.OpExpire:
		// Delete journal records carry only identity; the entry name is
		// the federation service ID by the Register keying convention.
		d.ServiceID = c.Entry.Name
	default:
		return Delta{}, false
	}
	return d, true
}

// wsdlParseCache memoizes parsed WSDL documents keyed by the exact
// document text. Every registration refresh re-journals an identical
// document, and every watcher of that journal — gateways, peer links,
// subscribers — parses it again; the cache turns the steady state into
// a map hit. Cached Documents share their parsed Interface, which all
// consumers treat as read-only. Bounded by reset rather than eviction:
// a federation holds few distinct interfaces, so blowing the cap means
// churn, not a working set worth preserving.
var (
	wsdlCacheMu sync.Mutex
	wsdlCache   = map[string]wsdl.Document{}
)

const maxWSDLCache = 512

func parseWSDLCached(text string) (wsdl.Document, error) {
	wsdlCacheMu.Lock()
	doc, ok := wsdlCache[text]
	wsdlCacheMu.Unlock()
	if ok {
		return doc, nil
	}
	doc, err := wsdl.Parse([]byte(text))
	if err != nil {
		return wsdl.Document{}, err
	}
	wsdlCacheMu.Lock()
	if len(wsdlCache) >= maxWSDLCache {
		wsdlCache = make(map[string]wsdl.Document, maxWSDLCache)
	}
	wsdlCache[text] = doc
	wsdlCacheMu.Unlock()
	return doc, nil
}

// remoteFromEntry rebuilds the service description from a UDDI entry.
func remoteFromEntry(e uddi.Entry) (Remote, error) {
	doc, err := parseWSDLCached(e.WSDL)
	if err != nil {
		return Remote{}, fmt.Errorf("vsr: entry %s: %w", e.Name, err)
	}
	desc := service.Description{
		ID:         e.Categories[catServiceID],
		Name:       e.Description,
		Middleware: e.Categories[catMiddleware],
		Interface:  doc.Interface,
		Context:    make(map[string]string),
	}
	if desc.ID == "" {
		desc.ID = e.Name
	}
	for k, val := range e.Categories {
		if k == catMiddleware || k == catServiceID {
			continue
		}
		desc.Context[k] = val
	}
	endpoint := e.AccessPoint
	if endpoint == "" {
		endpoint = doc.Location
	}
	return Remote{Desc: desc, Endpoint: endpoint}, nil
}

// Server hosts the repository itself: the UDDI registry behind an HTTP
// listener. Beyond the registry mount every gateway uses, a second mount
// (/peer, see MountPeer) can expose a policy-filtered, read-only face of
// the same registry to other homes. With an identity.Auth installed
// (StartServerAuth) both faces enforce the home boundary: /uddi is
// private to the home's own identity, /peer admits any trusted home.
type Server struct {
	registry *uddi.Server
	httpS    *http.Server
	ln       net.Listener
	mux      *http.ServeMux
	// base is the URL authority for a detached server (no listener) — a
	// virtual hostname on an in-memory network rather than a TCP address.
	base string
	auth *identity.Auth
	// bin is the binary fast-path face (nil when auth is nil). Listening
	// servers share their port with it through a demultiplexer and
	// register it for in-process dialing; detached servers leave it
	// unreachable, keeping the simulation deterministic and SOAP-only.
	bin *transport.BinServer

	// peerH is the peering face mounted at /peer, nil until MountPeer.
	// peerView is its binary-native twin (see MountPeerView): the
	// per-caller export view the native registry face filters through.
	peerMu   sync.RWMutex
	peerH    http.Handler
	peerView func(caller string) uddi.View

	// healthH and auditH are the read-only operability faces mounted at
	// /health and /audit, nil until MountOps. Like /uddi they are private
	// to the home's own identity once one is installed: a home's health
	// and audit trail are its own business.
	opsMu   sync.RWMutex
	healthH http.Handler
	auditH  http.Handler
}

// StartServer brings up a repository on addr ("127.0.0.1:0" for
// ephemeral) with no authentication context: the paper's open,
// home-network-trusting deployment.
func StartServer(addr string) (*Server, error) {
	return StartServerAuth(addr, nil)
}

// StartServerAuth is StartServer with the home's authentication context.
// auth may be open (no identity yet): enforcement switches on the moment
// an identity is installed, with no restart — the repository's own home
// keeps publishing because its gateways sign with the same Auth, while
// strangers lose every face at once. A nil auth disables authentication
// permanently.
func StartServerAuth(addr string, auth *identity.Auth) (*Server, error) {
	return StartServerWith(addr, uddi.NewServer(), auth)
}

// StartServerWith is StartServerAuth with a caller-supplied backing
// registry — how a daemon injects a durable (WAL + snapshot) store built
// with uddi.NewDurableServer while keeping every mounted face identical.
func StartServerWith(addr string, reg *uddi.Server, auth *identity.Auth) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		reg.Close()
		return nil, fmt.Errorf("vsr: listen: %w", err)
	}
	s := newServer(reg, auth)
	s.ln = ln
	s.httpS = &http.Server{Handler: s.mux}
	serveLn := ln
	if s.bin != nil {
		// One port, two protocols: the demultiplexer sniffs the preamble
		// and routes binary connections to the session-keyed face, leaving
		// everything else to HTTP. In-process federations skip the socket
		// entirely through the local registry.
		serveLn = transport.Demux(ln, s.bin)
		transport.RegisterLocal(ln.Addr().String(), s.bin)
	}
	go func() { _ = s.httpS.Serve(serveLn) }()
	return s, nil
}

// NewDetachedServer builds a repository with no TCP listener: the same
// faces StartServerAuth mounts (/uddi, /peer, /health, /audit), served
// through Handler instead of a socket. base is the URL authority the
// server advertises — a virtual hostname on a transport.MemNet. reg is
// the backing registry; the neighborhood simulation passes a
// uddi.NewManualServer so expiry runs on its event loop, not a
// wall-clock janitor. Close shuts the registry down but detached servers
// own no listener.
func NewDetachedServer(base string, reg *uddi.Server, auth *identity.Auth) *Server {
	s := newServer(reg, auth)
	s.base = base
	return s
}

// Handler returns the repository's full HTTP face — what a detached
// server registers on an in-memory network.
func (s *Server) Handler() http.Handler { return s.mux }

// newServer assembles the registry mux shared by the listening and
// detached constructions.
func newServer(reg *uddi.Server, auth *identity.Auth) *Server {
	s := &Server{registry: reg, auth: auth}
	mux := http.NewServeMux()
	// The read-write face is for this home only: gateways publish,
	// resolve and watch here. Peers get the read-only /peer face.
	mux.Handle("/uddi", identity.Require(auth, true, uddi.AuthErrorWriter, reg.Handler()))
	// The peer face admits any trusted home; the mounted handler's
	// per-caller view decides what each one sees. peerInner is shared
	// with the binary face, which authenticates at the session handshake
	// instead of per request.
	peerInner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.peerMu.RLock()
		h := s.peerH
		s.peerMu.RUnlock()
		if h == nil {
			http.Error(w, "peering not enabled on this repository", http.StatusNotFound)
			return
		}
		h.ServeHTTP(w, r)
	})
	mux.Handle("/peer", identity.Require(auth, false, uddi.AuthErrorWriter, peerInner))
	if auth != nil {
		// The binary fast path mirrors the signed faces with the same
		// home-boundary policy: /uddi stays private to this home, /peer
		// admits any session-authenticated peer. Registry operations in
		// the native binary encoding dispatch straight onto the store;
		// tunneled XML falls back to the HTTP handlers unchanged.
		s.bin = transport.NewBinServer(auth)
		s.bin.Handle("/uddi", reg.BinHandler(uddi.BinOptions{
			OwnHome:  auth.Home(),
			Fallback: identity.BinFace(auth, true, uddi.AuthErrorWriter, reg.Handler()),
		}))
		s.bin.Handle("/peer", reg.BinHandler(uddi.BinOptions{
			ReadOnly: true,
			ViewFor: func(caller string) (uddi.View, bool) {
				s.peerMu.RLock()
				vf := s.peerView
				s.peerMu.RUnlock()
				if vf == nil {
					return nil, false
				}
				return vf(caller), true
			},
			Fallback: identity.BinFace(auth, false, uddi.AuthErrorWriter, peerInner),
		}))
	}
	// The operability faces are read-only and, like /uddi, private to the
	// home's own identity; they serve 404 until MountOps supplies
	// handlers.
	mount := func(get func() http.Handler) http.Handler {
		return identity.Require(auth, true, identity.HTTPDeny,
			http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				h := get()
				if h == nil {
					http.Error(w, "operability faces not enabled on this repository", http.StatusNotFound)
					return
				}
				h.ServeHTTP(w, r)
			}))
	}
	mux.Handle("/health", mount(func() http.Handler {
		s.opsMu.RLock()
		defer s.opsMu.RUnlock()
		return s.healthH
	}))
	mux.Handle("/audit", mount(func() http.Handler {
		s.opsMu.RLock()
		defer s.opsMu.RUnlock()
		return s.auditH
	}))
	s.mux = mux
	return s
}

// Auth returns the server's authentication context (nil when started
// with StartServer).
func (s *Server) Auth() *identity.Auth { return s.auth }

// authority is the host part of the server's advertised URLs: the TCP
// address when listening, the virtual hostname when detached.
func (s *Server) authority() string {
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.base
}

// URL returns the repository endpoint for VSR clients.
func (s *Server) URL() string { return "http://" + s.authority() + "/uddi" }

// PeerURL returns the endpoint other homes replicate from (see
// MountPeer). It serves 404 until a peering handler is mounted.
func (s *Server) PeerURL() string { return "http://" + s.authority() + "/peer" }

// MountPeer installs the peering face of the repository at /peer —
// normally a policy-filtered uddi.ViewHandler built by
// internal/core/peer. A nil handler unmounts it.
func (s *Server) MountPeer(h http.Handler) {
	s.peerMu.Lock()
	s.peerH = h
	s.peerMu.Unlock()
}

// MountPeerView installs the binary-native twin of the peering face:
// the per-caller export view the native registry encoding filters
// through. Mount it alongside MountPeer — the XML face serves HTTP and
// tunneled documents, the view serves native binary records; both must
// apply the same policy. A nil view unmounts (native peer requests are
// then refused, and tunneled XML still answers through the mounted
// handler).
func (s *Server) MountPeerView(viewFor func(caller string) uddi.View) {
	s.peerMu.Lock()
	s.peerView = viewFor
	s.peerMu.Unlock()
}

// MountOps installs the read-only operability faces at /health and
// /audit (normally ops.HealthHandler and ops.AuditHandler, wired by the
// federation assembler or the vsrd daemon). Nil handlers unmount.
func (s *Server) MountOps(health, auditH http.Handler) {
	s.opsMu.Lock()
	s.healthH = health
	s.auditH = auditH
	s.opsMu.Unlock()
}

// Registry exposes the underlying UDDI store (tests, stats).
func (s *Server) Registry() *uddi.Server { return s.registry }

// SetBinaryEnabled turns the binary fast-path face on or off (default
// on when the server has an authentication context). Disabled, every
// handshake is refused and peers degrade to signed SOAP/HTTP — the
// SOAP-only home of a mixed-mode federation.
func (s *Server) SetBinaryEnabled(on bool) {
	if s.bin != nil {
		s.bin.SetEnabled(on)
	}
}

// Close stops the repository: the HTTP listener (when one exists) and
// the registry's expiry janitor, waking any parked watchers.
func (s *Server) Close() {
	if s.bin != nil && s.ln != nil {
		transport.UnregisterLocal(s.ln.Addr().String())
	}
	if s.bin != nil {
		s.bin.Close()
	}
	if s.httpS != nil {
		_ = s.httpS.Close()
	}
	s.registry.Close()
}
