// Package vsr implements the Virtual Service Repository (§3.3): "a
// virtual database which has a lot of information of heterogeneous
// services such as service locations and service contexts." Following the
// prototype (§4.1), it is built from WSDL (interface descriptions) and a
// UDDI-style registry (locations and contexts): each federation service
// is published as a UDDI entry whose inline WSDL document carries the
// interface and whose category bag carries the service context.
package vsr

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/uddi"
	"homeconnect/internal/wsdl"
)

// Category keys the VSR adds to each UDDI entry beyond the service's own
// context attributes.
const (
	catMiddleware = "homeconnect.middleware"
	catServiceID  = "homeconnect.id"
)

// DefaultTTL is the registration lifetime; publishers refresh at a
// fraction of it.
const DefaultTTL = 30 * time.Second

// Remote is one discovered service: its description plus the VSG endpoint
// that serves it.
type Remote struct {
	Desc service.Description
	// Endpoint is the SOAP URL of the owning Virtual Service Gateway.
	Endpoint string
}

// Query selects services in the repository.
type Query struct {
	// ID, if set, matches the exact federation service ID.
	ID string
	// Middleware, if set, matches the native middleware name.
	Middleware string
	// Interface, if set, matches the interface (tModel) name.
	Interface string
	// Context entries must all match the service context.
	Context map[string]string
}

// VSR is a client handle on the repository.
type VSR struct {
	client *uddi.Client
	ttl    time.Duration
}

// New returns a VSR client against the given registry URL.
func New(url string) *VSR {
	return &VSR{client: &uddi.Client{URL: url}, ttl: DefaultTTL}
}

// TTL returns the registration lifetime used by Register.
func (v *VSR) TTL() time.Duration { return v.ttl }

// SetTTL overrides the registration lifetime (tests and benchmarks).
func (v *VSR) SetTTL(d time.Duration) {
	if d > 0 {
		v.ttl = d
	}
}

// Register publishes a service with its gateway endpoint and returns the
// repository key. Call it again with the same description to refresh the
// TTL.
func (v *VSR) Register(ctx context.Context, desc service.Description, endpoint string) (string, error) {
	if err := desc.Validate(); err != nil {
		return "", err
	}
	doc, err := wsdl.Generate(desc.Interface, endpoint)
	if err != nil {
		return "", fmt.Errorf("vsr: generate wsdl for %s: %w", desc.ID, err)
	}
	cats := map[string]string{
		catMiddleware: desc.Middleware,
		catServiceID:  desc.ID,
	}
	for k, val := range desc.Context {
		cats[k] = val
	}
	entry := uddi.Entry{
		// Keying the UDDI entry by service ID makes re-registration a
		// refresh rather than a duplicate.
		Key:         "uuid:svc-" + desc.ID,
		Name:        desc.ID,
		Description: desc.Name,
		AccessPoint: endpoint,
		TModel:      desc.Interface.Name,
		WSDL:        string(doc),
		Categories:  cats,
	}
	key, err := v.client.Save(ctx, entry, v.ttl)
	if err != nil {
		return "", fmt.Errorf("vsr: register %s: %w", desc.ID, err)
	}
	return key, nil
}

// Unregister withdraws a registration by key.
func (v *VSR) Unregister(ctx context.Context, key string) error {
	if err := v.client.Delete(ctx, key); err != nil {
		return fmt.Errorf("vsr: unregister: %w", err)
	}
	return nil
}

// Find returns all services matching the query.
func (v *VSR) Find(ctx context.Context, q Query) ([]Remote, error) {
	uq := uddi.Query{TModel: q.Interface, Categories: map[string]string{}}
	if q.ID != "" {
		uq.Categories[catServiceID] = q.ID
	}
	if q.Middleware != "" {
		uq.Categories[catMiddleware] = q.Middleware
	}
	for k, val := range q.Context {
		uq.Categories[k] = val
	}
	entries, err := v.client.Find(ctx, uq)
	if err != nil {
		return nil, fmt.Errorf("vsr: find: %w", err)
	}
	out := make([]Remote, 0, len(entries))
	for _, e := range entries {
		r, err := remoteFromEntry(e)
		if err != nil {
			// Skip malformed entries rather than failing the whole
			// inquiry; other publishers' bugs should not break lookup.
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// Lookup returns the single service with the given federation ID.
func (v *VSR) Lookup(ctx context.Context, id string) (Remote, error) {
	found, err := v.Find(ctx, Query{ID: id})
	if err != nil {
		return Remote{}, err
	}
	if len(found) == 0 {
		return Remote{}, fmt.Errorf("vsr: %s: %w", id, service.ErrNoSuchService)
	}
	return found[0], nil
}

// remoteFromEntry rebuilds the service description from a UDDI entry.
func remoteFromEntry(e uddi.Entry) (Remote, error) {
	doc, err := wsdl.Parse([]byte(e.WSDL))
	if err != nil {
		return Remote{}, fmt.Errorf("vsr: entry %s: %w", e.Name, err)
	}
	desc := service.Description{
		ID:         e.Categories[catServiceID],
		Name:       e.Description,
		Middleware: e.Categories[catMiddleware],
		Interface:  doc.Interface,
		Context:    make(map[string]string),
	}
	if desc.ID == "" {
		desc.ID = e.Name
	}
	for k, val := range e.Categories {
		if k == catMiddleware || k == catServiceID {
			continue
		}
		desc.Context[k] = val
	}
	endpoint := e.AccessPoint
	if endpoint == "" {
		endpoint = doc.Location
	}
	return Remote{Desc: desc, Endpoint: endpoint}, nil
}

// Server hosts the repository itself: the UDDI registry behind an HTTP
// listener.
type Server struct {
	registry *uddi.Server
	httpS    *http.Server
	ln       net.Listener
}

// StartServer brings up a repository on addr ("127.0.0.1:0" for
// ephemeral).
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vsr: listen: %w", err)
	}
	reg := uddi.NewServer()
	s := &Server{
		registry: reg,
		httpS:    &http.Server{Handler: reg.Handler()},
		ln:       ln,
	}
	go func() { _ = s.httpS.Serve(ln) }()
	return s, nil
}

// URL returns the repository endpoint for VSR clients.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() + "/uddi" }

// Registry exposes the underlying UDDI store (tests, stats).
func (s *Server) Registry() *uddi.Server { return s.registry }

// Close stops the repository.
func (s *Server) Close() { _ = s.httpS.Close() }
