package vsr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/service"
)

func lampDesc() service.Description {
	return service.Description{
		ID:         "jini:lamp-1",
		Name:       "Living room lamp",
		Middleware: "jini",
		Interface: service.Interface{
			Name: "Lamp",
			Operations: []service.Operation{
				{Name: "On", Output: service.KindVoid},
				{Name: "Off", Output: service.KindVoid},
				{Name: "SetLevel", Inputs: []service.Parameter{{Name: "level", Type: service.KindInt}}, Output: service.KindVoid},
				{Name: "Level", Output: service.KindInt},
			},
		},
		Context: map[string]string{"room": "living"},
	}
}

func newVSR(t *testing.T) (*Server, *VSR) {
	t.Helper()
	srv, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, New(srv.URL())
}

func TestRegisterLookupRoundTrip(t *testing.T) {
	_, v := newVSR(t)
	ctx := context.Background()
	const endpoint = "http://10.0.0.1:8800/services/jini:lamp-1"

	key, err := v.Register(ctx, lampDesc(), endpoint)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if key == "" {
		t.Fatal("empty key")
	}
	got, err := v.Lookup(ctx, "jini:lamp-1")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got.Endpoint != endpoint {
		t.Errorf("endpoint = %q", got.Endpoint)
	}
	want := lampDesc()
	if got.Desc.ID != want.ID || got.Desc.Middleware != want.Middleware || got.Desc.Name != want.Name {
		t.Errorf("desc = %+v", got.Desc)
	}
	if !got.Desc.Interface.Equal(want.Interface) {
		t.Errorf("interface mismatch: %+v", got.Desc.Interface)
	}
	if got.Desc.Context["room"] != "living" {
		t.Errorf("context = %v", got.Desc.Context)
	}
}

func TestLookupMissing(t *testing.T) {
	_, v := newVSR(t)
	_, err := v.Lookup(context.Background(), "nope:missing")
	if !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("want ErrNoSuchService, got %v", err)
	}
}

func TestFindFilters(t *testing.T) {
	_, v := newVSR(t)
	ctx := context.Background()
	if _, err := v.Register(ctx, lampDesc(), "http://h/1"); err != nil {
		t.Fatal(err)
	}
	vcr := service.Description{
		ID:         "havi:vcr-1",
		Middleware: "havi",
		Interface: service.Interface{Name: "VCR", Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid},
		}},
		Context: map[string]string{"room": "living"},
	}
	if _, err := v.Register(ctx, vcr, "http://h/2"); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 2},
		{"by middleware", Query{Middleware: "jini"}, 1},
		{"by interface", Query{Interface: "VCR"}, 1},
		{"by context", Query{Context: map[string]string{"room": "living"}}, 2},
		{"by context miss", Query{Context: map[string]string{"room": "kitchen"}}, 0},
		{"by id", Query{ID: "havi:vcr-1"}, 1},
		{"combined", Query{Middleware: "jini", Interface: "Lamp"}, 1},
		{"combined miss", Query{Middleware: "jini", Interface: "VCR"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := v.Find(ctx, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tt.want {
				t.Errorf("Find = %d results, want %d", len(got), tt.want)
			}
		})
	}
}

func TestReregisterRefreshesNotDuplicates(t *testing.T) {
	srv, v := newVSR(t)
	ctx := context.Background()
	if _, err := v.Register(ctx, lampDesc(), "http://h/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Register(ctx, lampDesc(), "http://h/1"); err != nil {
		t.Fatal(err)
	}
	if n := srv.Registry().Len(); n != 1 {
		t.Errorf("registry has %d entries, want 1", n)
	}
}

func TestTTLExpiry(t *testing.T) {
	srv, v := newVSR(t)
	v.SetTTL(time.Second)
	ctx := context.Background()
	// Mutex-guarded fake clock: the registry janitor reads it
	// concurrently with the test advancing it.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	srv.Registry().SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	if _, err := v.Register(ctx, lampDesc(), "http://h/1"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	if _, err := v.Lookup(ctx, "jini:lamp-1"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("expired service still found: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	_, v := newVSR(t)
	ctx := context.Background()
	key, err := v.Register(ctx, lampDesc(), "http://h/1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Unregister(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Lookup(ctx, "jini:lamp-1"); !errors.Is(err, service.ErrNoSuchService) {
		t.Errorf("unregistered service still found: %v", err)
	}
}

func TestRegisterInvalidDescription(t *testing.T) {
	_, v := newVSR(t)
	if _, err := v.Register(context.Background(), service.Description{}, "http://h/1"); err == nil {
		t.Error("invalid description accepted")
	}
}

// nextDelta reads one delta or fails the test.
func nextDelta(t *testing.T, ch <-chan Delta) Delta {
	t.Helper()
	select {
	case d, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed")
		}
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("no delta within 10s")
	}
	panic("unreachable")
}

func TestWatchStreamsDeltas(t *testing.T) {
	_, v := newVSR(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := v.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := nextDelta(t, ch); d.Op != DeltaUp {
		t.Fatalf("first delta = %+v, want up", d)
	}

	const endpoint = "http://10.0.0.1:8800/services/jini:lamp-1"
	key, err := v.Register(ctx, lampDesc(), endpoint)
	if err != nil {
		t.Fatal(err)
	}
	d := nextDelta(t, ch)
	if d.Op != DeltaAdd || d.ServiceID != "jini:lamp-1" {
		t.Fatalf("add delta = %+v", d)
	}
	// Change deltas carry the full resolution: description and endpoint.
	if d.Remote.Endpoint != endpoint || !d.Remote.Desc.Interface.Equal(lampDesc().Interface) {
		t.Errorf("add delta remote = %+v", d.Remote)
	}

	// Re-registration (a refresh, or a re-home) is an update.
	if _, err := v.Register(ctx, lampDesc(), "http://10.0.0.2:8800/services/jini:lamp-1"); err != nil {
		t.Fatal(err)
	}
	d = nextDelta(t, ch)
	if d.Op != DeltaUpdate || d.Remote.Endpoint != "http://10.0.0.2:8800/services/jini:lamp-1" {
		t.Fatalf("update delta = %+v", d)
	}

	if err := v.Unregister(ctx, key); err != nil {
		t.Fatal(err)
	}
	d = nextDelta(t, ch)
	if d.Op != DeltaDelete || d.ServiceID != "jini:lamp-1" {
		t.Fatalf("delete delta = %+v", d)
	}

	// Cancelling the context closes the stream.
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed after cancel")
		}
	}
}

func TestWatchResumeFromSince(t *testing.T) {
	srv, v := newVSR(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := v.Register(ctx, lampDesc(), "http://h/1"); err != nil {
		t.Fatal(err)
	}
	seq := srv.Registry().Seq()
	vcr := service.Description{
		ID:         "havi:vcr-1",
		Middleware: "havi",
		Interface: service.Interface{Name: "VCR", Operations: []service.Operation{
			{Name: "Play", Output: service.KindVoid},
		}},
	}
	if _, err := v.Register(ctx, vcr, "http://h/2"); err != nil {
		t.Fatal(err)
	}

	// Resuming after the lamp's registration sees only the VCR.
	ch, err := v.Watch(ctx, seq)
	if err != nil {
		t.Fatal(err)
	}
	if d := nextDelta(t, ch); d.Op != DeltaUp {
		t.Fatalf("first delta = %+v", d)
	}
	if d := nextDelta(t, ch); d.Op != DeltaAdd || d.ServiceID != "havi:vcr-1" {
		t.Fatalf("resumed delta = %+v", d)
	}
}

func TestWatchDownAndRecovery(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	v := New(srv.URL())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := v.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := nextDelta(t, ch); d.Op != DeltaUp {
		t.Fatalf("first delta = %+v", d)
	}
	srv.Close()
	d := nextDelta(t, ch)
	if d.Op != DeltaDown || d.Err == nil {
		t.Fatalf("after repository death: %+v", d)
	}
}

func TestRegisterAll(t *testing.T) {
	srv, v := newVSR(t)
	ctx := context.Background()
	var regs []Registration
	for i := 0; i < 3; i++ {
		desc := lampDesc()
		desc.ID = desc.ID[:len(desc.ID)-1] + string(rune('1'+i))
		regs = append(regs, Registration{Desc: desc, Endpoint: "http://h/1"})
	}
	keys, err := v.RegisterAll(ctx, regs)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for _, r := range regs {
		if _, err := v.Lookup(ctx, r.Desc.ID); err != nil {
			t.Errorf("lookup %s after batch: %v", r.Desc.ID, err)
		}
	}
	if n := srv.Registry().Len(); n != 3 {
		t.Errorf("registry has %d entries, want 3", n)
	}
	// Empty and invalid batches.
	if keys, err := v.RegisterAll(ctx, nil); err != nil || keys != nil {
		t.Errorf("empty batch = %v, %v", keys, err)
	}
	if _, err := v.RegisterAll(ctx, []Registration{{}}); err == nil {
		t.Error("invalid description accepted in batch")
	}
}
