// Authentication on the repository faces: once an identity is
// installed, every wire operation — snapshot inquiries, the change
// watch, batched publication — needs a signature from a trusted home,
// /uddi stays private to the home's own identity, and the /peer face
// serves each trusted caller its own filtered view.
package vsr

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// authFixture is a repository enforcing authentication as home-a, plus
// identities for the home itself, a trusted peer and a stranger.
type authFixture struct {
	srv      *Server
	auth     *identity.Auth
	ownID    *identity.Identity
	peerAuth *identity.Auth // trusted peer home-b's context
	strange  *identity.Auth // untrusted home-x's context
}

func newAuthFixture(t *testing.T) *authFixture {
	t.Helper()
	mk := func(home string) (*identity.Auth, *identity.Identity) {
		id, err := identity.Generate(home)
		if err != nil {
			t.Fatal(err)
		}
		a := identity.NewAuth(home)
		if err := a.SetIdentity(id); err != nil {
			t.Fatal(err)
		}
		return a, id
	}
	auth, ownID := mk("home-a")
	peerAuth, peerID := mk("home-b")
	strange, _ := mk("home-x")
	if err := auth.Trust("home-b", peerID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := peerAuth.Trust("home-a", ownID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	// home-x trusts home-a — one-sided trust must not be enough.
	if err := strange.Trust("home-a", ownID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	srv, err := StartServerAuth("127.0.0.1:0", auth)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &authFixture{srv: srv, auth: auth, ownID: ownID, peerAuth: peerAuth, strange: strange}
}

// client builds a VSR client for the registry face signed by the given
// context (nil = unsigned).
func (f *authFixture) client(url string, as *identity.Auth) *VSR {
	v := New(url)
	if as != nil {
		v.SetHTTPClient(transport.NewAuthClient(as))
	}
	return v
}

func TestAuthRegistryRejectsUnsignedOps(t *testing.T) {
	f := newAuthFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	anon := f.client(f.srv.URL(), nil)

	// Snapshot inquiry.
	if _, err := anon.Find(ctx, Query{}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("unsigned find: %v, want ErrUnauthenticated", err)
	}
	// Single and batched publication.
	desc := service.Description{
		ID: "test:svc", Name: "svc", Middleware: "test",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{{Name: "Ping", Output: service.KindVoid}}},
	}
	if _, err := anon.Register(ctx, desc, "http://gw/1"); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("unsigned register: %v, want ErrUnauthenticated", err)
	}
	if _, err := anon.RegisterAll(ctx, []Registration{{Desc: desc, Endpoint: "http://gw/1"}}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("unsigned save_services: %v, want ErrUnauthenticated", err)
	}
	// The watch stream reports Down with the typed cause instead of
	// silently retrying.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	ch, err := anon.Watch(wctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ch:
		if d.Op != DeltaDown || !errors.Is(d.Err, service.ErrUnauthenticated) {
			t.Errorf("unsigned watch delta = %+v, want Down with ErrUnauthenticated", d)
		}
	case <-time.After(5 * time.Second):
		t.Error("unsigned watch never reported Down")
	}
}

func TestAuthRegistryPrivateToOwnHome(t *testing.T) {
	f := newAuthFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The home's own identity uses /uddi normally.
	own := f.client(f.srv.URL(), f.auth)
	desc := service.Description{
		ID: "test:svc", Name: "svc", Middleware: "test",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{{Name: "Ping", Output: service.KindVoid}}},
	}
	if _, err := own.Register(ctx, desc, "http://gw/1"); err != nil {
		t.Fatalf("own-home register: %v", err)
	}
	if _, err := own.Find(ctx, Query{}); err != nil {
		t.Fatalf("own-home find: %v", err)
	}

	// A trusted peer is still refused on the read-write face...
	peer := f.client(f.srv.URL(), f.peerAuth)
	if _, err := peer.Find(ctx, Query{}); !errors.Is(err, service.ErrForbidden) {
		t.Errorf("trusted peer on /uddi: %v, want ErrForbidden", err)
	}
	// ...and an untrusted home is refused everywhere, trust being
	// required on the receiving side (one-sided trust is not enough).
	strange := f.client(f.srv.PeerURL(), f.strange)
	if _, err := strange.Find(ctx, Query{}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("untrusted home on /peer: %v, want ErrUnauthenticated", err)
	}
}

func TestAuthResponseVerificationRejectsUntrustedServer(t *testing.T) {
	// home-x calls a server it *does* trust... but through a context that
	// does not trust home-a's key: the response must fail verification.
	f := newAuthFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A fresh context for home-b that signs (so the server accepts it)
	// but has no trust entry for home-a.
	id, err := identity.Generate("home-b")
	if err != nil {
		t.Fatal(err)
	}
	// The server must accept this home-b — re-trust the new key.
	if err := f.auth.Trust("home-b", id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	oneway := identity.NewAuth("home-b")
	if err := oneway.SetIdentity(id); err != nil {
		t.Fatal(err)
	}
	v := f.client(f.srv.PeerURL(), oneway)
	if _, err := v.Find(ctx, Query{}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("response from untrusted server: %v, want ErrUnauthenticated", err)
	}
}
