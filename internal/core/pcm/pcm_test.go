package pcm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

func echoDesc(id, middleware string) service.Description {
	return service.Description{
		ID: id, Name: id, Middleware: middleware,
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Echo", Inputs: []service.Parameter{{Name: "v", Type: service.KindString}}, Output: service.KindString},
		}},
	}
}

var echoInvoker = service.InvokerFunc(func(_ context.Context, _ string, args []service.Value) (service.Value, error) {
	return args[0], nil
})

func newGateway(t *testing.T, name string) (*vsr.Server, *vsg.VSG) {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	gw := vsg.New(name, srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return srv, gw
}

func TestExporterReconciles(t *testing.T) {
	_, gw := newGateway(t, "net1")
	var mu sync.Mutex
	services := []LocalService{{Desc: echoDesc("mw:a", "mw"), Invoker: echoInvoker}}

	exp := &Exporter{
		Interval: 20 * time.Millisecond,
		List: func(context.Context) ([]LocalService, error) {
			mu.Lock()
			defer mu.Unlock()
			return append([]LocalService(nil), services...), nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { exp.Run(ctx, gw); close(done) }()

	waitFor(t, func() bool { return len(gw.Exports()) == 1 })

	// A second service appears in the middleware.
	mu.Lock()
	services = append(services, LocalService{Desc: echoDesc("mw:b", "mw"), Invoker: echoInvoker})
	mu.Unlock()
	waitFor(t, func() bool { return len(gw.Exports()) == 2 })

	// The first one disappears.
	mu.Lock()
	services = services[1:]
	mu.Unlock()
	waitFor(t, func() bool {
		exports := gw.Exports()
		return len(exports) == 1 && exports[0] == "mw:b"
	})

	// Teardown unexports everything.
	cancel()
	<-done
	if len(gw.Exports()) != 0 {
		t.Errorf("exports after teardown: %v", gw.Exports())
	}
}

func TestExporterSkipsImported(t *testing.T) {
	_, gw := newGateway(t, "net1")
	imported := echoDesc("mw:sp", "mw")
	imported.Context = ImportedContext("other:origin")
	exp := &Exporter{
		Interval: 20 * time.Millisecond,
		List: func(context.Context) ([]LocalService, error) {
			return []LocalService{
				{Desc: imported, Invoker: echoInvoker},
				{Desc: echoDesc("mw:real", "mw"), Invoker: echoInvoker},
			}, nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go exp.Run(ctx, gw)
	waitFor(t, func() bool { return len(gw.Exports()) == 1 })
	if gw.Exports()[0] != "mw:real" {
		t.Errorf("exported %v, want only mw:real", gw.Exports())
	}
	// Give it another cycle to be sure the server proxy never leaks out.
	time.Sleep(60 * time.Millisecond)
	if len(gw.Exports()) != 1 {
		t.Errorf("exports grew: %v", gw.Exports())
	}
}

func TestExporterToleratesListErrors(t *testing.T) {
	_, gw := newGateway(t, "net1")
	var mu sync.Mutex
	fail := true
	exp := &Exporter{
		Interval: 20 * time.Millisecond,
		List: func(context.Context) ([]LocalService, error) {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return nil, errors.New("middleware down")
			}
			return []LocalService{{Desc: echoDesc("mw:a", "mw"), Invoker: echoInvoker}}, nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go exp.Run(ctx, gw)
	time.Sleep(60 * time.Millisecond)
	if len(gw.Exports()) != 0 {
		t.Fatal("exported during failure")
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	waitFor(t, func() bool { return len(gw.Exports()) == 1 })
}

func TestImporterReconciles(t *testing.T) {
	srv, gw := newGateway(t, "net1")
	// A remote service on another network/middleware.
	remote := vsr.New(srv.URL())
	ctx := context.Background()
	otherDesc := echoDesc("other:x", "other")
	otherDesc.Context = map[string]string{service.CtxNetwork: "net2"}
	key, err := remote.Register(ctx, otherDesc, "http://10.0.0.9/services/other:x")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	offered := make(map[string]bool)
	imp := &Importer{
		Interval:   20 * time.Millisecond,
		Middleware: "mw",
		Offer: func(_ context.Context, r vsr.Remote) (func(), error) {
			mu.Lock()
			offered[r.Desc.ID] = true
			mu.Unlock()
			return func() {
				mu.Lock()
				delete(offered, r.Desc.ID)
				mu.Unlock()
			}, nil
		},
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { imp.Run(runCtx, gw); close(done) }()

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return offered["other:x"]
	})
	if imp.OfferedCount() != 1 {
		t.Errorf("OfferedCount = %d", imp.OfferedCount())
	}

	// The remote service vanishes → proxy removed.
	if err := remote.Unregister(ctx, key); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return !offered["other:x"]
	})

	cancel()
	<-done
}

func TestImporterEligibility(t *testing.T) {
	srv, gw := newGateway(t, "net1")
	remote := vsr.New(srv.URL())
	ctx := context.Background()

	// Same middleware: never imported.
	same := echoDesc("mw:native", "mw")
	if _, err := remote.Register(ctx, same, "http://h/1"); err != nil {
		t.Fatal(err)
	}
	// Already a server proxy somewhere: never chained.
	sp := echoDesc("other:sp", "other")
	sp.Context = ImportedContext("mw:native")
	if _, err := remote.Register(ctx, sp, "http://h/2"); err != nil {
		t.Fatal(err)
	}
	// Exported from this very network: already reachable locally.
	local := echoDesc("other:local", "other")
	local.Context = map[string]string{service.CtxNetwork: "net1"}
	if _, err := remote.Register(ctx, local, "http://h/3"); err != nil {
		t.Fatal(err)
	}
	// Genuinely foreign: imported.
	foreign := echoDesc("other:far", "other")
	foreign.Context = map[string]string{service.CtxNetwork: "net9"}
	if _, err := remote.Register(ctx, foreign, "http://h/4"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	offered := make(map[string]bool)
	imp := &Importer{
		Interval:   20 * time.Millisecond,
		Middleware: "mw",
		Offer: func(_ context.Context, r vsr.Remote) (func(), error) {
			mu.Lock()
			offered[r.Desc.ID] = true
			mu.Unlock()
			return func() {}, nil
		},
	}
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go imp.Run(runCtx, gw)

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return offered["other:far"]
	})
	mu.Lock()
	defer mu.Unlock()
	for _, banned := range []string{"mw:native", "other:sp", "other:local"} {
		if offered[banned] {
			t.Errorf("ineligible service %s was imported", banned)
		}
	}
}

func TestRunnerLifecycle(t *testing.T) {
	var r Runner
	ctx := r.Start(context.Background())
	ran := make(chan struct{})
	r.Go(func() {
		<-ctx.Done()
		close(ran)
	})
	r.Stop()
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not cancel the run context")
	}
	// Stop is idempotent.
	r.Stop()
}

func TestRunnerDetachesFromStartContext(t *testing.T) {
	var r Runner
	parent, cancel := context.WithCancel(context.Background())
	runCtx := r.Start(parent)
	cancel()
	select {
	case <-runCtx.Done():
		t.Fatal("run context inherited parent cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	r.Stop()
	if runCtx.Err() == nil {
		t.Fatal("Stop did not cancel run context")
	}
}

func TestImportedContext(t *testing.T) {
	ctx := ImportedContext("x10:lamp-1")
	if ctx[service.CtxImported] != "true" || ctx[service.CtxOrigin] != "x10:lamp-1" {
		t.Errorf("ImportedContext = %v", ctx)
	}
	d := service.Description{ID: "a", Middleware: "m", Interface: service.Interface{Name: "I"}, Context: ctx}
	if !d.Imported() {
		t.Error("description with ImportedContext not marked imported")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
