// Package pcm defines the Protocol Conversion Manager framework (§3.2):
// each middleware gets one PCM with two proxy directions —
//
//   - the Client Proxy (CP) "converts the interfaces of local services
//     into the VSG services": the Exporter helper scans the local
//     middleware for services and keeps them exported on the gateway;
//   - the Server Proxy (SP) "provides the interfaces of remote services
//     to the local services": the Importer helper watches the Virtual
//     Service Repository and keeps native stand-ins registered in the
//     local middleware for every remote service.
//
// Both directions are generated from service metadata rather than written
// per service, the role Javassist played in the paper's prototype.
// Concrete PCMs (internal/bridge/...) supply the middleware-specific
// List/Offer functions and get the reconciliation loops from here.
package pcm

import (
	"context"
	"sync"
	"time"

	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

// PCM is one middleware's protocol conversion manager.
type PCM interface {
	// Middleware names the middleware this PCM converts ("jini", "havi",
	// "x10", "mail", "upnp").
	Middleware() string
	// Start attaches the PCM to its gateway and begins both proxy
	// directions. It must not block.
	Start(ctx context.Context, gw *vsg.VSG) error
	// Stop detaches the PCM and tears down its proxies.
	Stop() error
}

// DefaultSyncInterval is how often exporters and importers reconcile.
// Small enough that hot-plugged devices appear quickly in tests; a real
// deployment would subscribe to middleware events instead where possible.
const DefaultSyncInterval = 200 * time.Millisecond

// LocalService pairs a discovered local service with the client proxy
// (Invoker) that drives it over the native middleware.
type LocalService struct {
	Desc    service.Description
	Invoker service.Invoker
}

// Exporter reconciles local middleware services onto the gateway — the
// Client Proxy direction.
type Exporter struct {
	// Interval between scans; DefaultSyncInterval if zero.
	Interval time.Duration
	// List enumerates the local middleware's current services. It must
	// not return services that are themselves Server Proxies (tagged
	// imported), or export loops result.
	List func(ctx context.Context) ([]LocalService, error)

	mu       sync.Mutex
	exported map[string]bool
}

// Run reconciles until ctx is cancelled, then unexports everything it
// exported.
func (e *Exporter) Run(ctx context.Context, gw *vsg.VSG) {
	interval := e.Interval
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	e.mu.Lock()
	if e.exported == nil {
		e.exported = make(map[string]bool)
	}
	e.mu.Unlock()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	e.sync(ctx, gw)
	for {
		select {
		case <-ctx.Done():
			e.teardown(gw)
			return
		case <-ticker.C:
			e.sync(ctx, gw)
		}
	}
}

func (e *Exporter) sync(ctx context.Context, gw *vsg.VSG) {
	locals, err := e.List(ctx)
	if err != nil {
		return // transient middleware failure; retry next tick
	}
	current := make(map[string]LocalService, len(locals))
	for _, l := range locals {
		if l.Desc.Imported() {
			continue
		}
		current[l.Desc.ID] = l
	}
	e.mu.Lock()
	var toExport []LocalService
	var toRemove []string
	for id, l := range current {
		if !e.exported[id] {
			toExport = append(toExport, l)
		}
	}
	for id := range e.exported {
		if _, ok := current[id]; !ok {
			toRemove = append(toRemove, id)
		}
	}
	e.mu.Unlock()

	for _, l := range toExport {
		if err := gw.Export(ctx, l.Desc, l.Invoker); err == nil {
			e.mu.Lock()
			e.exported[l.Desc.ID] = true
			e.mu.Unlock()
		}
	}
	for _, id := range toRemove {
		_ = gw.Unexport(ctx, id)
		e.mu.Lock()
		delete(e.exported, id)
		e.mu.Unlock()
	}
}

func (e *Exporter) teardown(gw *vsg.VSG) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	e.mu.Lock()
	ids := make([]string, 0, len(e.exported))
	for id := range e.exported {
		ids = append(ids, id)
	}
	e.exported = make(map[string]bool)
	e.mu.Unlock()
	for _, id := range ids {
		_ = gw.Unexport(ctx, id)
	}
}

// Importer reconciles remote federation services into the local
// middleware — the Server Proxy direction.
type Importer struct {
	// Interval between scans; DefaultSyncInterval if zero.
	Interval time.Duration
	// Middleware is the local middleware name; services native to it are
	// never imported (they are already reachable locally).
	Middleware string
	// Offer creates a Server Proxy in the local middleware for a remote
	// service and returns its teardown. The proxy must be tagged so the
	// middleware's own Exporter skips it (service.CtxImported).
	Offer func(ctx context.Context, remote vsr.Remote) (remove func(), err error)

	mu      sync.Mutex
	offered map[string]func()
}

// Run reconciles until ctx is cancelled, then removes every proxy it
// offered.
func (i *Importer) Run(ctx context.Context, gw *vsg.VSG) {
	interval := i.Interval
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	i.mu.Lock()
	if i.offered == nil {
		i.offered = make(map[string]func())
	}
	i.mu.Unlock()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	i.sync(ctx, gw)
	for {
		select {
		case <-ctx.Done():
			i.teardown()
			return
		case <-ticker.C:
			i.sync(ctx, gw)
		}
	}
}

// eligible reports whether a remote service should get a local proxy.
func (i *Importer) eligible(gw *vsg.VSG, r vsr.Remote) bool {
	if r.Desc.Middleware == i.Middleware {
		return false // native here already
	}
	if r.Desc.Imported() {
		return false // someone's server proxy; never chain proxies
	}
	if r.Desc.Context[service.CtxNetwork] == gw.Name() {
		return false // exported from this very network
	}
	return true
}

func (i *Importer) sync(ctx context.Context, gw *vsg.VSG) {
	remotes, err := gw.List(ctx, vsr.Query{})
	if err != nil {
		return
	}
	current := make(map[string]vsr.Remote)
	for _, r := range remotes {
		if i.eligible(gw, r) {
			current[r.Desc.ID] = r
		}
	}
	i.mu.Lock()
	var toOffer []vsr.Remote
	var toRemove []string
	for id, r := range current {
		if _, ok := i.offered[id]; !ok {
			toOffer = append(toOffer, r)
		}
	}
	for id := range i.offered {
		if _, ok := current[id]; !ok {
			toRemove = append(toRemove, id)
		}
	}
	i.mu.Unlock()

	for _, r := range toOffer {
		remove, err := i.Offer(ctx, r)
		if err != nil {
			continue
		}
		i.mu.Lock()
		i.offered[r.Desc.ID] = remove
		i.mu.Unlock()
	}
	for _, id := range toRemove {
		i.mu.Lock()
		remove := i.offered[id]
		delete(i.offered, id)
		i.mu.Unlock()
		if remove != nil {
			remove()
		}
	}
}

func (i *Importer) teardown() {
	i.mu.Lock()
	removes := make([]func(), 0, len(i.offered))
	for _, r := range i.offered {
		removes = append(removes, r)
	}
	i.offered = make(map[string]func())
	i.mu.Unlock()
	for _, r := range removes {
		r()
	}
}

// OfferedCount reports how many proxies the importer currently maintains.
func (i *Importer) OfferedCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.offered)
}

// Runner manages a PCM's background goroutines with clean shutdown, so
// concrete PCMs don't each reimplement lifecycle plumbing.
type Runner struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start returns the PCM's run context. The run context deliberately does
// NOT inherit ctx's cancellation: a PCM runs until Stop, while ctx only
// covers startup (discovery handshakes and the like). Values on ctx are
// preserved.
func (r *Runner) Start(ctx context.Context) context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	r.cancel = cancel
	return runCtx
}

// Go runs fn on a tracked goroutine.
func (r *Runner) Go(fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Stop cancels the run context and waits for all goroutines.
func (r *Runner) Stop() {
	r.mu.Lock()
	cancel := r.cancel
	r.cancel = nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	r.wg.Wait()
}

// RemoteInvoker builds the Invoker a Server Proxy uses: calls on the
// local stand-in travel through the gateway to the originating service.
// This is the reusable half of proxy auto-generation — the metadata
// (operation names, signatures) comes from the remote description, and
// the returned Invoker works for any interface.
func RemoteInvoker(gw *vsg.VSG, remote vsr.Remote) service.Invoker {
	return service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		return gw.CallRemote(ctx, remote, op, args)
	})
}

// ImportedContext returns the context map a Server Proxy registration
// should carry inside the local middleware's own metadata space.
func ImportedContext(originID string) map[string]string {
	return map[string]string{
		service.CtxImported: "true",
		service.CtxOrigin:   originID,
	}
}
