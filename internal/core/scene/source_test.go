package scene

import (
	"testing"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
)

// startGateway brings up a VSR + one gateway so the PollSource has a real
// /events endpoint to poll.
func startGateway(t *testing.T) *vsg.VSG {
	t.Helper()
	srv, err := vsr.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	gw := vsg.New("poll-net", srv.URL())
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

func TestPollSourceDeliversRemoteEvents(t *testing.T) {
	gw := startGateway(t)
	// Seed history the source must NOT replay.
	gw.Hub().Publish(service.Event{Source: "old", Topic: "scene.test"})

	src := NewPollSource(&events.Client{BaseURL: gw.EventsURL()})
	defer src.Close()
	got := make(chan service.Event, 8)
	stop := src.Subscribe("scene.*", func(ev service.Event) { got <- ev })
	defer stop()
	other := make(chan service.Event, 8)
	stopOther := src.Subscribe("unrelated", func(ev service.Event) { other <- ev })
	defer stopOther()

	// Give the poller a beat to take its starting cursor.
	time.Sleep(50 * time.Millisecond)
	gw.Hub().Publish(service.Event{
		Source:  "soap:tvguide",
		Topic:   "scene.test",
		Payload: map[string]service.Value{"n": service.IntValue(42)},
	})
	select {
	case ev := <-got:
		if ev.Source == "old" {
			t.Fatal("poll source replayed history")
		}
		if ev.Payload["n"].Int() != 42 {
			t.Fatalf("payload = %+v", ev.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote event never delivered")
	}
	select {
	case ev := <-other:
		t.Fatalf("topic filter leaked event %+v", ev)
	default:
	}
}

func TestPollSourcePublishEvent(t *testing.T) {
	gw := startGateway(t)
	src := NewPollSource(&events.Client{BaseURL: gw.EventsURL()})
	defer src.Close()

	got := make(chan service.Event, 1)
	stopLocal := gw.Hub().Subscribe("synthetic", func(ev service.Event) { got <- ev })
	defer stopLocal()

	err := src.PublishEvent(service.Event{
		Source:  "scene:test",
		Topic:   "synthetic",
		Payload: map[string]service.Value{"k": service.StringValue("v")},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.Source != "scene:test" || ev.Payload["k"].Str() != "v" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("published event never reached the hub")
	}
}
