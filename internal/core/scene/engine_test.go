package scene

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/service"
)

// fakeCaller records calls and plays scripted responses.
type fakeCaller struct {
	mu    sync.Mutex
	calls []recordedCall
	// fail maps "<service>.<op>" to a number of ErrUnavailable failures
	// before success.
	fail map[string]int
	// respond maps "<service>.<op>" to the returned value.
	respond map[string]service.Value
	// block makes every call wait for ctx cancellation.
	block bool
}

type recordedCall struct {
	Service, Op string
	Args        []service.Value
}

func (f *fakeCaller) Call(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error) {
	f.mu.Lock()
	f.calls = append(f.calls, recordedCall{serviceID, op, args})
	key := serviceID + "." + op
	remaining := f.fail[key]
	if remaining > 0 {
		f.fail[key] = remaining - 1
	}
	resp, ok := f.respond[key]
	block := f.block
	f.mu.Unlock()
	if block {
		<-ctx.Done()
		return service.Value{}, ctx.Err()
	}
	if remaining > 0 {
		return service.Value{}, fmt.Errorf("gateway down: %w", service.ErrUnavailable)
	}
	if !ok {
		resp = service.Void()
	}
	return resp, nil
}

func (f *fakeCaller) recorded() []recordedCall {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]recordedCall(nil), f.calls...)
}

func triggerEvent(genre string, channel int64) service.Event {
	return service.Event{
		Source: "soap:tvguide",
		Topic:  "guide.match",
		Payload: map[string]service.Value{
			"genre":   service.StringValue(genre),
			"channel": service.IntValue(channel),
			"title":   service.StringValue("Ubiquitous Computing Hour"),
		},
	}
}

func recordScene() *Scene {
	return &Scene{
		Name:     "autorecord",
		Triggers: []Trigger{{Topic: "guide.match"}},
		Guards:   []Guard{{Left: "${trigger.payload.genre}", Op: OpEq, Right: "documentary"}},
		Steps: []Step{
			{Kind: StepCall, Name: "tune", Service: "havi:vcr", Op: "SetChannel",
				Args: []Arg{{Type: service.KindInt, Text: "${trigger.payload.channel}"}}},
			{Kind: StepCall, Name: "record", Service: "havi:vcr", Op: "Record"},
			{Kind: StepCall, Name: "notify", Service: "mail:outbox", Op: "Send",
				Args: []Arg{
					{Type: service.KindString, Text: "user@house.example"},
					{Type: service.KindString, Text: "recording: ${trigger.payload.title}"},
				}},
		},
	}
}

func TestManualRunSequencesSteps(t *testing.T) {
	c := &fakeCaller{respond: map[string]service.Value{}}
	e := NewEngine(c)
	defer e.Close()
	if err := e.Load(recordScene()); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(context.Background(), "autorecord", triggerEvent("documentary", 12))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeCompleted || rec.Err != nil {
		t.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
	}
	calls := c.recorded()
	if len(calls) != 3 {
		t.Fatalf("calls = %+v", calls)
	}
	if calls[0].Op != "SetChannel" || calls[0].Args[0].Int() != 12 {
		t.Errorf("tune call = %+v", calls[0])
	}
	if calls[2].Args[1].Str() != "recording: Ubiquitous Computing Hour" {
		t.Errorf("notify subject = %v", calls[2].Args[1])
	}
	st, err := e.Status("autorecord")
	if err != nil || st.Stats.Runs != 1 || st.Stats.Completed != 1 {
		t.Errorf("status = %+v, %v", st, err)
	}
}

func TestGuardStopsRun(t *testing.T) {
	c := &fakeCaller{}
	e := NewEngine(c)
	defer e.Close()
	if err := e.Load(recordScene()); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(context.Background(), "autorecord", triggerEvent("sports", 7))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeGuarded || len(c.recorded()) != 0 {
		t.Fatalf("outcome = %s, calls = %+v", rec.Outcome, c.recorded())
	}
	st, _ := e.Status("autorecord")
	if st.Stats.Guarded != 1 {
		t.Errorf("stats = %+v", st.Stats)
	}
}

func TestStepGuardStopsMidSequence(t *testing.T) {
	c := &fakeCaller{respond: map[string]service.Value{
		"guide.FindTitle": service.StringValue(""),
	}}
	e := NewEngine(c)
	defer e.Close()
	sc := &Scene{
		Name: "scan",
		Steps: []Step{
			{Kind: StepCall, Name: "title", Service: "guide", Op: "FindTitle"},
			{Kind: StepCall, Name: "tune", Service: "havi:vcr", Op: "Record",
				Guards: []Guard{{Left: "${steps.title.result}", Op: OpNe, Right: ""}}},
		},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(context.Background(), "scan", service.Event{Topic: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeGuarded {
		t.Fatalf("outcome = %s", rec.Outcome)
	}
	if calls := c.recorded(); len(calls) != 1 || calls[0].Op != "FindTitle" {
		t.Fatalf("calls = %+v", calls)
	}
}

func TestRetryOnUnavailable(t *testing.T) {
	c := &fakeCaller{fail: map[string]int{"havi:vcr.Record": 2}}
	e := NewEngine(c)
	defer e.Close()
	sc := &Scene{
		Name: "retry",
		Steps: []Step{{Kind: StepCall, Name: "rec", Service: "havi:vcr", Op: "Record",
			Retries: 3, RetryDelay: time.Millisecond}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(context.Background(), "retry", service.Event{Topic: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
	}
	if rec.Steps[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3", rec.Steps[0].Attempts)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	c := &fakeCaller{fail: map[string]int{"havi:vcr.Record": 99}}
	e := NewEngine(c)
	defer e.Close()
	sc := &Scene{
		Name: "exhaust",
		Steps: []Step{{Kind: StepCall, Service: "havi:vcr", Op: "Record",
			Retries: 1, RetryDelay: time.Millisecond}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Run(context.Background(), "exhaust", service.Event{Topic: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeFailed || !errors.Is(rec.Err, service.ErrUnavailable) {
		t.Fatalf("outcome = %s, err = %v", rec.Outcome, rec.Err)
	}
	if rec.Steps[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", rec.Steps[0].Attempts)
	}
	st, _ := e.Status("exhaust")
	if st.Stats.Failed != 1 || st.Stats.LastError == "" {
		t.Errorf("stats = %+v", st.Stats)
	}
}

func TestNonRetryableErrorFailsImmediately(t *testing.T) {
	calls := 0
	c := CallerFunc(func(context.Context, string, string, []service.Value) (service.Value, error) {
		calls++
		return service.Value{}, service.ErrNoSuchOperation
	})
	e := NewEngine(c)
	defer e.Close()
	sc := &Scene{
		Name:  "fatal",
		Steps: []Step{{Kind: StepCall, Service: "x:y", Op: "Nope", Retries: 5, RetryDelay: time.Millisecond}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	rec, _ := e.Run(context.Background(), "fatal", service.Event{Topic: "manual"})
	if rec.Outcome != OutcomeFailed || calls != 1 {
		t.Fatalf("outcome = %s after %d calls", rec.Outcome, calls)
	}
}

func TestStepTimeout(t *testing.T) {
	c := &fakeCaller{block: true}
	e := NewEngine(c)
	defer e.Close()
	sc := &Scene{
		Name:  "slow",
		Steps: []Step{{Kind: StepCall, Service: "x:y", Op: "Hang", Timeout: 20 * time.Millisecond}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec, _ := e.Run(context.Background(), "slow", service.Event{Topic: "manual"})
	if rec.Outcome != OutcomeFailed || !errors.Is(rec.Err, context.DeadlineExceeded) {
		t.Fatalf("outcome = %s, err = %v", rec.Outcome, rec.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestEventTriggerViaHub(t *testing.T) {
	hub := events.NewHub()
	defer hub.Close()
	c := &fakeCaller{}
	e := NewEngine(c)
	defer e.Close()
	e.AddSource("mail-net", HubSource{Hub: hub})

	done := make(chan Record, 4)
	e.SetRunHook(func(r Record) { done <- r })
	if err := e.Load(recordScene()); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("autorecord"); err != nil {
		t.Fatal(err)
	}
	hub.Publish(triggerEvent("documentary", 12))
	select {
	case rec := <-done:
		if rec.Outcome != OutcomeCompleted {
			t.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run never fired")
	}

	// A stopped scene no longer fires.
	if err := e.Stop("autorecord"); err != nil {
		t.Fatal(err)
	}
	hub.Publish(triggerEvent("documentary", 12))
	select {
	case <-done:
		t.Fatal("stopped scene fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTriggerSourceFilter(t *testing.T) {
	hub := events.NewHub()
	defer hub.Close()
	e := NewEngine(&fakeCaller{})
	defer e.Close()
	e.AddSource("net", HubSource{Hub: hub})
	done := make(chan Record, 4)
	e.SetRunHook(func(r Record) { done <- r })
	sc := recordScene()
	sc.Triggers = []Trigger{{Topic: "guide.match", Source: "soap:tvguide"}}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(sc.Name); err != nil {
		t.Fatal(err)
	}
	wrong := triggerEvent("documentary", 12)
	wrong.Source = "someone:else"
	hub.Publish(wrong)
	select {
	case <-done:
		t.Fatal("source filter ignored")
	case <-time.After(100 * time.Millisecond):
	}
	hub.Publish(triggerEvent("documentary", 12))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("matching source never fired")
	}
}

func TestSourceAddedAfterStartDeliversTriggers(t *testing.T) {
	e := NewEngine(&fakeCaller{})
	defer e.Close()
	done := make(chan Record, 4)
	e.SetRunHook(func(r Record) { done <- r })
	// recordScene's trigger has no network filter: it subscribes to
	// every registered network, including ones that appear later.
	if err := e.Load(recordScene()); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("autorecord"); err != nil {
		t.Fatal(err)
	}
	late := events.NewHub()
	defer late.Close()
	e.AddSource("late-net", HubSource{Hub: late})
	late.Publish(triggerEvent("documentary", 12))
	select {
	case rec := <-done:
		if rec.Outcome != OutcomeCompleted {
			t.Fatalf("outcome = %s, %v", rec.Outcome, rec.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trigger on late-added network never fired")
	}
}

func TestStartUnknownNetworkFails(t *testing.T) {
	e := NewEngine(&fakeCaller{})
	defer e.Close()
	sc := recordScene()
	sc.Triggers = []Trigger{{Topic: "guide.match", Network: "nope-net"}}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(sc.Name); err == nil {
		t.Fatal("Start with unknown network succeeded")
	}
}

func TestIntervalTrigger(t *testing.T) {
	c := &fakeCaller{}
	e := NewEngine(c)
	defer e.Close()
	done := make(chan Record, 64)
	e.SetRunHook(func(r Record) { done <- r })
	sc := &Scene{
		Name:     "tick",
		Triggers: []Trigger{{Every: 10 * time.Millisecond}},
		Steps:    []Step{{Kind: StepCall, Service: "x:y", Op: "Ping"}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("tick"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case rec := <-done:
			if rec.Trigger.Topic != TopicInterval {
				t.Errorf("trigger topic = %s", rec.Trigger.Topic)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("interval never fired")
		}
	}
	if err := e.Stop("tick"); err != nil {
		t.Fatal(err)
	}
}

func TestPublishStepChainsScenes(t *testing.T) {
	hub := events.NewHub()
	defer hub.Close()
	c := &fakeCaller{respond: map[string]service.Value{
		"guide.FindTitle":   service.StringValue("Robot Wrestling"),
		"guide.FindChannel": service.IntValue(7),
	}}
	e := NewEngine(c)
	defer e.Close()
	e.AddSource("net", HubSource{Hub: hub})
	done := make(chan Record, 8)
	e.SetRunHook(func(r Record) { done <- r })

	scan := &Scene{
		Name: "scan",
		Steps: []Step{
			{Kind: StepCall, Name: "title", Service: "guide", Op: "FindTitle"},
			{Kind: StepCall, Name: "channel", Service: "guide", Op: "FindChannel"},
			{Kind: StepPublish, Network: "net", Topic: "guide.match", Payload: []Field{
				{Name: "title", Type: service.KindString, Text: "${steps.title.result}"},
				{Name: "channel", Type: service.KindInt, Text: "${steps.channel.result}"},
				{Name: "genre", Type: service.KindString, Text: "documentary"},
			}},
		},
	}
	record := recordScene()
	for _, sc := range []*Scene{scan, record} {
		if err := e.Load(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.StartAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), "scan", service.Event{Topic: "manual"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case rec := <-done:
			if rec.Scene == "autorecord" {
				if rec.Outcome != OutcomeCompleted {
					t.Fatalf("autorecord outcome = %s, %v", rec.Outcome, rec.Err)
				}
				if rec.Trigger.Source != "scene:scan" {
					t.Errorf("chained trigger source = %s", rec.Trigger.Source)
				}
				if rec.Trigger.Payload["channel"].Int() != 7 {
					t.Errorf("chained payload = %+v", rec.Trigger.Payload)
				}
				return
			}
		case <-deadline:
			t.Fatal("chained scene never ran")
		}
	}
}

func TestLoadLifecycle(t *testing.T) {
	e := NewEngine(&fakeCaller{})
	defer e.Close()
	sc := recordScene()
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	// Reload while stopped is fine.
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	hub := events.NewHub()
	defer hub.Close()
	e.AddSource("net", HubSource{Hub: hub})
	if err := e.Start(sc.Name); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(sc); err == nil {
		t.Error("reload of running scene accepted")
	}
	if err := e.Unload(sc.Name); err == nil {
		t.Error("unload of running scene accepted")
	}
	if err := e.Stop(sc.Name); err != nil {
		t.Fatal(err)
	}
	if err := e.Unload(sc.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Status(sc.Name); err == nil {
		t.Error("status of unloaded scene succeeded")
	}
	if got := len(e.List()); got != 0 {
		t.Errorf("List after unload = %d entries", got)
	}
}

func TestLoadXMLAndList(t *testing.T) {
	e := NewEngine(&fakeCaller{})
	defer e.Close()
	names, err := e.LoadXML(Encode([]*Scene{recordScene(), {
		Name:  "second",
		Steps: []Step{{Kind: StepSleep, For: time.Millisecond}},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "autorecord" || names[1] != "second" {
		t.Fatalf("names = %v", names)
	}
	list := e.List()
	if len(list) != 2 || list[0].Name != "autorecord" || list[1].Steps != 1 {
		t.Fatalf("list = %+v", list)
	}
}

func TestEngineCloseIsIdempotentAndWaits(t *testing.T) {
	e := NewEngine(&fakeCaller{})
	sc := &Scene{
		Name:     "tick",
		Triggers: []Trigger{{Every: 5 * time.Millisecond}},
		Steps:    []Step{{Kind: StepSleep, For: time.Millisecond}},
	}
	if err := e.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start("tick"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	e.Close()
	e.Close()
	if err := e.Load(sc); err == nil {
		t.Error("Load after Close accepted")
	}
}
