package scene

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/service"
)

// fullScene exercises every construct the codec supports.
func fullScene() *Scene {
	return &Scene{
		Name: "autorecord",
		Doc:  "record matched programs",
		Triggers: []Trigger{
			{Topic: "guide.match", Source: "soap:tvguide", Network: "mail-net"},
			{Topic: "guide.*"},
			{Every: 30 * time.Second},
		},
		Guards: []Guard{
			{Left: "${trigger.payload.genre}", Op: OpEq, Right: "documentary"},
		},
		Steps: []Step{
			{
				Kind: StepCall, Name: "tune",
				Service: "havi:vcr-vcr1", Op: "SetChannel",
				Timeout: 5 * time.Second, Retries: 2, RetryDelay: 100 * time.Millisecond,
				Args: []Arg{{Type: service.KindInt, Text: "${trigger.payload.channel}"}},
			},
			{Kind: StepCall, Name: "record", Service: "havi:vcr-vcr1", Op: "Record"},
			{Kind: StepSleep, For: 500 * time.Millisecond},
			{
				Kind: StepPublish, Network: "mail-net", Topic: "recording.started", Source: "scene:autorecord",
				Guards:  []Guard{{Left: "${steps.record.result}", Op: OpNe, Right: "error"}},
				Payload: []Field{{Name: "channel", Type: service.KindInt, Text: "${trigger.payload.channel}"}},
			},
		},
	}
}

func TestXMLRoundTripByteIdentical(t *testing.T) {
	scenes := []*Scene{fullScene(), {
		Name:  "minimal",
		Steps: []Step{{Kind: StepCall, Service: "x:y", Op: "Ping"}},
	}}
	first := Encode(scenes)
	decoded, err := Decode(first)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	second := Encode(decoded)
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestXMLRoundTripPreservesStructure(t *testing.T) {
	in := fullScene()
	decoded, err := Decode(Encode([]*Scene{in}))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d scenes", len(decoded))
	}
	out := decoded[0]
	if out.Name != in.Name || out.Doc != in.Doc {
		t.Errorf("identity: got %q/%q", out.Name, out.Doc)
	}
	if len(out.Triggers) != 3 || out.Triggers[2].Every != 30*time.Second {
		t.Errorf("triggers = %+v", out.Triggers)
	}
	if out.Triggers[0].Network != "mail-net" || out.Triggers[1].Topic != "guide.*" {
		t.Errorf("event triggers = %+v", out.Triggers)
	}
	if len(out.Guards) != 1 || out.Guards[0].Op != OpEq {
		t.Errorf("guards = %+v", out.Guards)
	}
	if len(out.Steps) != 4 {
		t.Fatalf("steps = %+v", out.Steps)
	}
	tune := out.Steps[0]
	if tune.Retries != 2 || tune.Timeout != 5*time.Second || tune.RetryDelay != 100*time.Millisecond {
		t.Errorf("tune retry config = %+v", tune)
	}
	if len(tune.Args) != 1 || tune.Args[0].Type != service.KindInt {
		t.Errorf("tune args = %+v", tune.Args)
	}
	if out.Steps[2].For != 500*time.Millisecond {
		t.Errorf("sleep = %+v", out.Steps[2])
	}
	pub := out.Steps[3]
	if pub.Topic != "recording.started" || len(pub.Payload) != 1 || len(pub.Guards) != 1 {
		t.Errorf("publish = %+v", pub)
	}
}

func TestDecodeSingleSceneRoot(t *testing.T) {
	doc := `<scene name="solo"><step kind="call" service="a:b" op="Ping"/></scene>`
	scs, err := Decode([]byte(doc))
	if err != nil || len(scs) != 1 || scs[0].Name != "solo" {
		t.Fatalf("Decode = %v, %v", scs, err)
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	cases := []string{
		`<wrong/>`,
		`<scenes><scene name=""><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"></scene></scenes>`,
		`<scenes><scene name="x"><step kind="teleport"/></scene></scenes>`,
		`<scenes><scene name="x"><trigger kind="interval" every="soon"/><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"><trigger kind="interval" every="1s" topic="motion"/><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"><trigger kind="interval" every="1s" network="net"/><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"><bogus/><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"><guard left="a" op="resembles" right="b"/><step kind="call" service="a" op="b"/></scene></scenes>`,
		`<scenes><scene name="x"><step kind="sleep"/></scene></scenes>`,
		`<scenes><scene name="x"><step kind="publish" topic="t"><arg type="string">v</arg></step></scene></scenes>`,
		`<scenes><scene name="x"><step kind="call" service="a" op="b"><p name="k" type="string">v</p></step></scene></scenes>`,
		`<scenes><scene name="x"><step kind="sleep" for="1s"><bogus/></step></scene></scenes>`,
	}
	for _, doc := range cases {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("accepted %s", doc)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scene
		ok   bool
	}{
		{"valid", *fullScene(), true},
		{"empty name", Scene{Steps: []Step{{Kind: StepCall, Service: "a", Op: "b"}}}, false},
		{"no steps", Scene{Name: "x"}, false},
		{"interval with topic", Scene{Name: "x",
			Triggers: []Trigger{{Every: time.Second, Topic: "t"}},
			Steps:    []Step{{Kind: StepCall, Service: "a", Op: "b"}}}, false},
		{"dup step names", Scene{Name: "x", Steps: []Step{
			{Kind: StepCall, Name: "a", Service: "s", Op: "o"},
			{Kind: StepCall, Name: "a", Service: "s", Op: "o"}}}, false},
		{"call without op", Scene{Name: "x", Steps: []Step{{Kind: StepCall, Service: "s"}}}, false},
		{"void arg", Scene{Name: "x", Steps: []Step{
			{Kind: StepCall, Service: "s", Op: "o", Args: []Arg{{Type: service.KindVoid}}}}}, false},
		{"publish without topic", Scene{Name: "x", Steps: []Step{{Kind: StepPublish}}}, false},
		{"dup payload field", Scene{Name: "x", Steps: []Step{{Kind: StepPublish, Topic: "t",
			Payload: []Field{
				{Name: "a", Type: service.KindString},
				{Name: "a", Type: service.KindString}}}}}, false},
		{"negative retries", Scene{Name: "x", Steps: []Step{
			{Kind: StepCall, Service: "s", Op: "o", Retries: -1}}}, false},
	}
	for _, c := range cases {
		err := c.sc.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func testEnv() *env {
	return &env{
		trigger: service.Event{
			Source: "soap:tvguide",
			Topic:  "guide.match",
			Seq:    7,
			Payload: map[string]service.Value{
				"title":   service.StringValue("Ubiquitous Computing Hour"),
				"channel": service.IntValue(12),
			},
		},
		steps: map[string]service.Value{
			"state": service.StringValue("recording"),
		},
	}
}

func TestExpand(t *testing.T) {
	ev := testEnv()
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"${trigger.topic}", "guide.match"},
		{"${trigger.source}", "soap:tvguide"},
		{"${trigger.seq}", "7"},
		{"${trigger.payload.channel}", "12"},
		{"ch ${trigger.payload.channel}: ${trigger.payload.title}", "ch 12: Ubiquitous Computing Hour"},
		{"${steps.state.result}", "recording"},
	}
	for _, c := range cases {
		got, err := expand(c.in, ev)
		if err != nil || got != c.want {
			t.Errorf("expand(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{
		"${trigger.payload.missing}",
		"${steps.nope.result}",
		"${weird.ref}",
		"${unterminated",
	} {
		if _, err := expand(bad, ev); err == nil {
			t.Errorf("expand(%q) succeeded", bad)
		}
	}
}

func TestGuardEval(t *testing.T) {
	ev := testEnv()
	cases := []struct {
		g    Guard
		want bool
	}{
		{Guard{"${trigger.topic}", OpEq, "guide.match"}, true},
		{Guard{"${trigger.topic}", OpNe, "guide.match"}, false},
		{Guard{"${trigger.payload.channel}", OpGt, "9"}, true},  // numeric: 12 > 9
		{Guard{"${trigger.payload.channel}", OpLt, "9"}, false}, // lexically "12" < "9" would be true
		{Guard{"${trigger.payload.channel}", OpGe, "12"}, true},
		{Guard{"${trigger.payload.channel}", OpLe, "11"}, false},
		{Guard{"${trigger.payload.title}", OpContains, "Computing"}, true},
		{Guard{"apple", OpLt, "banana"}, true}, // lexical fallback
	}
	for _, c := range cases {
		got, err := c.g.eval(ev)
		if err != nil || got != c.want {
			t.Errorf("eval(%+v) = %v, %v; want %v", c.g, got, err, c.want)
		}
	}
	if _, err := (Guard{"${nope}", OpEq, "x"}).eval(ev); err == nil {
		t.Error("guard with bad template evaluated")
	}
	if err := (Guard{"a", "resembles", "b"}).Validate(); err == nil || !strings.Contains(err.Error(), "resembles") {
		t.Errorf("bad op validated: %v", err)
	}
}
