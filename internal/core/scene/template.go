package scene

import (
	"fmt"
	"strconv"
	"strings"

	"homeconnect/internal/service"
)

// env is the expansion context of one run: the trigger event plus the
// results of completed named steps.
type env struct {
	trigger service.Event
	steps   map[string]service.Value
}

// expand substitutes ${...} references in tmpl against the run
// environment. Unknown references are errors: a template that names a
// missing payload key or step is a broken composition, not an empty
// string.
func expand(tmpl string, ev *env) (string, error) {
	if !strings.Contains(tmpl, "${") {
		return tmpl, nil
	}
	var b strings.Builder
	for {
		i := strings.Index(tmpl, "${")
		if i < 0 {
			b.WriteString(tmpl)
			return b.String(), nil
		}
		b.WriteString(tmpl[:i])
		rest := tmpl[i+2:]
		j := strings.IndexByte(rest, '}')
		if j < 0 {
			return "", fmt.Errorf("scene: unterminated ${ reference in %q", tmpl)
		}
		val, err := resolve(rest[:j], ev)
		if err != nil {
			return "", err
		}
		b.WriteString(val)
		tmpl = rest[j+1:]
	}
}

func resolve(ref string, ev *env) (string, error) {
	switch {
	case ref == "trigger.topic":
		return ev.trigger.Topic, nil
	case ref == "trigger.source":
		return ev.trigger.Source, nil
	case ref == "trigger.seq":
		return strconv.FormatUint(ev.trigger.Seq, 10), nil
	case strings.HasPrefix(ref, "trigger.payload."):
		key := ref[len("trigger.payload."):]
		v, ok := ev.trigger.Payload[key]
		if !ok {
			return "", fmt.Errorf("scene: trigger payload has no attribute %q", key)
		}
		return v.Text(), nil
	case strings.HasPrefix(ref, "steps.") && strings.HasSuffix(ref, ".result"):
		name := ref[len("steps.") : len(ref)-len(".result")]
		v, ok := ev.steps[name]
		if !ok {
			return "", fmt.Errorf("scene: no completed step named %q", name)
		}
		return v.Text(), nil
	}
	return "", fmt.Errorf("scene: unknown template reference ${%s}", ref)
}

// eval expands both operands and applies the comparison. Ordered
// operators compare numerically when both sides parse as numbers, and
// lexically otherwise.
func (g Guard) eval(ev *env) (bool, error) {
	l, err := expand(g.Left, ev)
	if err != nil {
		return false, err
	}
	r, err := expand(g.Right, ev)
	if err != nil {
		return false, err
	}
	switch g.Op {
	case OpEq:
		return l == r, nil
	case OpNe:
		return l != r, nil
	case OpContains:
		return strings.Contains(l, r), nil
	}
	var c int
	lf, errL := strconv.ParseFloat(l, 64)
	rf, errR := strconv.ParseFloat(r, 64)
	if errL == nil && errR == nil {
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = strings.Compare(l, r)
	}
	switch g.Op {
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("scene: unknown guard op %q", g.Op)
}
