package scene

import (
	"context"
	"sync"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/service"
)

// PollSource adapts a remote gateway's event hub into a trigger source by
// long-polling its /events endpoint from a background goroutine — the
// path a scene runner outside the federation process (homectl) uses.
// Publish steps travel back over the hub's /publish endpoint.
type PollSource struct {
	client *events.Client
	cancel context.CancelFunc
	done   chan struct{}

	mu   sync.Mutex
	subs map[int]pollSub
	next int
}

type pollSub struct {
	topic string
	fn    func(service.Event)
}

// NewPollSource starts polling the hub behind client. Close releases the
// poller.
func NewPollSource(client *events.Client) *PollSource {
	ctx, cancel := context.WithCancel(context.Background())
	p := &PollSource{
		client: client,
		cancel: cancel,
		done:   make(chan struct{}),
		subs:   make(map[int]pollSub),
	}
	go p.loop(ctx)
	return p
}

func (p *PollSource) loop(ctx context.Context) {
	defer close(p.done)
	// Fetch the hub's current cursor first so armed scenes react to new
	// events only, not to replayed ring history. Keep retrying until it
	// succeeds: entering the dispatch loop at cursor 0 would replay the
	// whole ring.
	var since uint64
	for {
		_, cur, err := p.client.Poll(ctx, 0, "", 0)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			since = cur
			break
		}
		timer := time.NewTimer(500 * time.Millisecond)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
	for {
		evs, next, err := p.client.Poll(ctx, since, "", 10*time.Second)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			// Gateway briefly unreachable: back off and retry.
			timer := time.NewTimer(500 * time.Millisecond)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		since = next
		for _, ev := range evs {
			p.dispatch(ev)
		}
	}
}

func (p *PollSource) dispatch(ev service.Event) {
	p.mu.Lock()
	var fns []func(service.Event)
	for _, s := range p.subs {
		if events.TopicMatches(s.topic, ev.Topic) {
			fns = append(fns, s.fn)
		}
	}
	p.mu.Unlock()
	for _, fn := range fns {
		fn(ev.Clone())
	}
}

// Subscribe implements Source.
func (p *PollSource) Subscribe(topic string, fn func(service.Event)) (stop func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	p.subs[id] = pollSub{topic: topic, fn: fn}
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.subs, id)
	}
}

// PublishEvent implements PublishingSource over the hub's HTTP publish
// endpoint.
func (p *PollSource) PublishEvent(ev service.Event) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return p.client.Publish(ctx, ev)
}

// Close stops the poll loop.
func (p *PollSource) Close() {
	p.cancel()
	<-p.done
}
