package scene

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"homeconnect/internal/core/events"
	"homeconnect/internal/service"
)

// Caller invokes federation services on behalf of scene steps. The
// Federation and the per-network gateways both satisfy the shape; CLI
// runners supply a VSR+SOAP implementation.
type Caller interface {
	Call(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error)
}

// CallerFunc adapts a function to Caller.
type CallerFunc func(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error)

// Call implements Caller.
func (f CallerFunc) Call(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error) {
	return f(ctx, serviceID, op, args)
}

// Source is one network's event surface for scene triggers.
type Source interface {
	// Subscribe registers fn for events matching topic (TopicMatches
	// grammar) and returns an unsubscribe function.
	Subscribe(topic string, fn func(service.Event)) (stop func())
}

// PublishingSource is a Source that can also carry the synthetic events
// emitted by publish steps.
type PublishingSource interface {
	Source
	PublishEvent(ev service.Event) error
}

// HubSource adapts an in-process events.Hub to the engine.
type HubSource struct{ Hub *events.Hub }

// Subscribe implements Source.
func (s HubSource) Subscribe(topic string, fn func(service.Event)) func() {
	return s.Hub.Subscribe(topic, fn)
}

// PublishEvent implements PublishingSource.
func (s HubSource) PublishEvent(ev service.Event) error {
	s.Hub.Publish(ev)
	return nil
}

// Run outcomes.
const (
	// OutcomeCompleted: every step ran.
	OutcomeCompleted = "completed"
	// OutcomeGuarded: a guard evaluated false; the run stopped cleanly.
	OutcomeGuarded = "guarded"
	// OutcomeFailed: a guard or step errored.
	OutcomeFailed = "failed"
)

// StepResult records one executed step of a run.
type StepResult struct {
	// Name is the step's declared name, or "<kind>#<index>" when unnamed.
	Name string
	Kind string
	// Result is the step's value (Void for publish/sleep).
	Result service.Value
	// Attempts counts call invocations including retries.
	Attempts int
	Err      error
}

// Record is the full account of one scene run.
type Record struct {
	Scene   string
	Trigger service.Event
	Start   time.Time
	Latency time.Duration
	Outcome string
	Err     error
	Steps   []StepResult
}

// Stats is a scene's cumulative run history.
type Stats struct {
	Runs, Completed, Guarded, Failed uint64
	LastOutcome                      string
	// LastError is the most recent run's error, "" when that run did
	// not fail.
	LastError string
	LastRun   time.Time
	// TotalLatency summed over runs; divide by Runs for the mean.
	TotalLatency time.Duration
}

// Status is one scene's externally visible state.
type Status struct {
	Name     string
	Doc      string
	Running  bool
	Triggers int
	Steps    int
	Stats    Stats
}

// Engine loads, arms and executes scenes. Independent scenes (and
// concurrent firings of one scene) run concurrently; Close waits for
// in-flight runs.
type Engine struct {
	caller Caller

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sources  map[string]Source
	srcOrder []string
	scenes   map[string]*state
	order    []string
	hook     func(Record)
	closed   bool
}

type state struct {
	scene   *Scene
	running bool
	stops   []func()
	stats   Stats
}

// NewEngine returns an engine that invokes services through c.
func NewEngine(c Caller) *Engine {
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{
		caller:  c,
		ctx:     ctx,
		cancel:  cancel,
		sources: make(map[string]Source),
		scenes:  make(map[string]*state),
	}
}

// AddSource registers (or replaces) the event surface of one network.
// Running scenes whose event triggers match a newly added network (by
// name, or by subscribing to every network) are armed on it immediately,
// so networks attached after Start still deliver triggers. Replacing an
// existing network's source does not rebind running scenes — stop and
// restart them to move their subscriptions.
func (e *Engine) AddSource(network string, src Source) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, existed := e.sources[network]; existed {
		e.sources[network] = src
		return
	}
	e.srcOrder = append(e.srcOrder, network)
	e.sources[network] = src
	for _, name := range e.order {
		st := e.scenes[name]
		if !st.running {
			continue
		}
		for _, tr := range st.scene.Triggers {
			if tr.Every > 0 || (tr.Network != "" && tr.Network != network) {
				continue
			}
			st.stops = append(st.stops, e.subscribeTrigger(src, name, tr))
		}
	}
}

// subscribeTrigger arms one event trigger on one source.
func (e *Engine) subscribeTrigger(src Source, name string, tr Trigger) (stop func()) {
	wantSource := tr.Source
	return src.Subscribe(tr.Topic, func(ev service.Event) {
		if wantSource != "" && wantSource != ev.Source {
			return
		}
		e.spawn(name, ev)
	})
}

// SetRunHook installs fn to observe every completed run (tests, benchmarks,
// logging). It runs on the run's goroutine after stats are updated.
func (e *Engine) SetRunHook(fn func(Record)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = fn
}

// Load validates and stores a scene. Reloading a stopped scene replaces
// its definition and keeps its run history; reloading a running scene is
// an error.
func (e *Engine) Load(sc *Scene) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("scene: engine closed")
	}
	if st, ok := e.scenes[sc.Name]; ok {
		if st.running {
			return fmt.Errorf("scene %s is running; stop it before reloading", sc.Name)
		}
		st.scene = sc
		return nil
	}
	e.scenes[sc.Name] = &state{scene: sc}
	e.order = append(e.order, sc.Name)
	return nil
}

// LoadXML decodes a scene document and loads every scene in it, returning
// their names in document order.
func (e *Engine) LoadXML(data []byte) ([]string, error) {
	scs, err := Decode(data)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(scs))
	for _, sc := range scs {
		if err := e.Load(sc); err != nil {
			return names, err
		}
		names = append(names, sc.Name)
	}
	return names, nil
}

// Unload removes a stopped scene and its history.
func (e *Engine) Unload(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.scenes[name]
	if !ok {
		return fmt.Errorf("scene: no scene %q", name)
	}
	if st.running {
		return fmt.Errorf("scene %s is running; stop it before unloading", name)
	}
	delete(e.scenes, name)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	return nil
}

// Start arms a loaded scene's triggers. Starting a running scene is a
// no-op. Event triggers naming an unregistered network fail.
func (e *Engine) Start(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("scene: engine closed")
	}
	st, ok := e.scenes[name]
	if !ok {
		return fmt.Errorf("scene: no scene %q", name)
	}
	if st.running {
		return nil
	}
	var stops []func()
	undo := func() {
		for _, s := range stops {
			s()
		}
	}
	for i, tr := range st.scene.Triggers {
		if tr.Every > 0 {
			tctx, tcancel := context.WithCancel(e.ctx)
			e.wg.Add(1)
			go e.intervalLoop(tctx, name, tr.Every)
			stops = append(stops, tcancel)
			continue
		}
		matched := 0
		for _, net := range e.srcOrder {
			if tr.Network != "" && tr.Network != net {
				continue
			}
			matched++
			stops = append(stops, e.subscribeTrigger(e.sources[net], name, tr))
		}
		// A trigger naming a missing network is a broken composition;
		// an all-networks trigger stays armed-in-waiting (AddSource
		// binds it when the first network appears).
		if matched == 0 && tr.Network != "" {
			undo()
			return fmt.Errorf("scene %s: trigger %d: no event source for network %q", name, i+1, tr.Network)
		}
	}
	st.stops = stops
	st.running = true
	return nil
}

// StartAll arms every loaded scene, stopping at the first error.
func (e *Engine) StartAll() error {
	e.mu.Lock()
	names := append([]string(nil), e.order...)
	e.mu.Unlock()
	for _, name := range names {
		if err := e.Start(name); err != nil {
			return err
		}
	}
	return nil
}

// Stop disarms a scene's triggers. In-flight runs complete; history is
// kept. Stopping a stopped scene is a no-op.
func (e *Engine) Stop(name string) error {
	e.mu.Lock()
	st, ok := e.scenes[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("scene: no scene %q", name)
	}
	stops := st.stops
	st.stops = nil
	st.running = false
	e.mu.Unlock()
	for _, s := range stops {
		s()
	}
	return nil
}

// Run fires a scene once, synchronously, with the given trigger event —
// the manual path used by `homectl scene run` and tests. The run is
// accounted in the scene's stats and is covered by Close's wait, so the
// engine never reports closed while a manual run's steps are mid-flight.
func (e *Engine) Run(ctx context.Context, name string, trigger service.Event) (Record, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Record{}, fmt.Errorf("scene: engine closed")
	}
	st, ok := e.scenes[name]
	if !ok {
		e.mu.Unlock()
		return Record{}, fmt.Errorf("scene: no scene %q", name)
	}
	sc := st.scene
	e.wg.Add(1)
	e.mu.Unlock()
	defer e.wg.Done()
	rec := e.execute(ctx, sc, trigger)
	e.account(name, rec)
	return rec, nil
}

// Status reports one scene.
func (e *Engine) Status(name string) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.scenes[name]
	if !ok {
		return Status{}, fmt.Errorf("scene: no scene %q", name)
	}
	return statusOf(st), nil
}

// List reports every loaded scene in load order.
func (e *Engine) List() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, statusOf(e.scenes[name]))
	}
	return out
}

func statusOf(st *state) Status {
	return Status{
		Name:     st.scene.Name,
		Doc:      st.scene.Doc,
		Running:  st.running,
		Triggers: len(st.scene.Triggers),
		Steps:    len(st.scene.Steps),
		Stats:    st.stats,
	}
}

// Close disarms every scene, cancels interval schedules and waits for
// in-flight runs. The engine cannot be reused.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	var stops []func()
	for _, st := range e.scenes {
		stops = append(stops, st.stops...)
		st.stops = nil
		st.running = false
	}
	e.mu.Unlock()
	for _, s := range stops {
		s()
	}
	e.cancel()
	e.wg.Wait()
}

func (e *Engine) intervalLoop(ctx context.Context, name string, every time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			e.spawn(name, service.Event{Source: "scene:" + name, Topic: TopicInterval, Time: now})
		}
	}
}

// spawn runs the scene asynchronously for one trigger firing. It must not
// block: it is called from hub fan-out paths.
func (e *Engine) spawn(name string, trigger service.Event) {
	e.mu.Lock()
	st, ok := e.scenes[name]
	if e.closed || !ok || !st.running {
		e.mu.Unlock()
		return
	}
	sc := st.scene
	e.wg.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.wg.Done()
		rec := e.execute(e.ctx, sc, trigger)
		e.account(name, rec)
	}()
}

func (e *Engine) account(name string, rec Record) {
	e.mu.Lock()
	if st, ok := e.scenes[name]; ok {
		st.stats.Runs++
		switch rec.Outcome {
		case OutcomeCompleted:
			st.stats.Completed++
		case OutcomeGuarded:
			st.stats.Guarded++
		case OutcomeFailed:
			st.stats.Failed++
		}
		st.stats.LastOutcome = rec.Outcome
		if rec.Err != nil {
			st.stats.LastError = rec.Err.Error()
		} else {
			// The error tracks the most recent run: a scene that has
			// recovered must not report stale failures forever.
			st.stats.LastError = ""
		}
		st.stats.LastRun = rec.Start
		st.stats.TotalLatency += rec.Latency
	}
	hook := e.hook
	e.mu.Unlock()
	if hook != nil {
		hook(rec)
	}
}

func (e *Engine) execute(ctx context.Context, sc *Scene, trigger service.Event) Record {
	start := time.Now()
	rec := Record{Scene: sc.Name, Trigger: trigger.Clone(), Start: start}
	ev := &env{trigger: trigger, steps: make(map[string]service.Value)}
	rec.Outcome, rec.Err = e.runSteps(ctx, sc, ev, &rec)
	rec.Latency = time.Since(start)
	return rec
}

func (e *Engine) runSteps(ctx context.Context, sc *Scene, ev *env, rec *Record) (string, error) {
	for _, g := range sc.Guards {
		ok, err := g.eval(ev)
		if err != nil {
			return OutcomeFailed, err
		}
		if !ok {
			return OutcomeGuarded, nil
		}
	}
	for i, st := range sc.Steps {
		label := st.Name
		if label == "" {
			label = fmt.Sprintf("%s#%d", st.Kind, i+1)
		}
		guarded := false
		for _, g := range st.Guards {
			ok, err := g.eval(ev)
			if err != nil {
				return OutcomeFailed, fmt.Errorf("step %s: %w", label, err)
			}
			if !ok {
				guarded = true
				break
			}
		}
		if guarded {
			return OutcomeGuarded, nil
		}
		sr := StepResult{Name: label, Kind: st.Kind, Result: service.Void()}
		var err error
		switch st.Kind {
		case StepSleep:
			err = sleep(ctx, st.For)
		case StepPublish:
			err = e.publishStep(sc, st, ev)
		case StepCall:
			sr.Result, sr.Attempts, err = e.callStep(ctx, st, ev)
		}
		sr.Err = err
		rec.Steps = append(rec.Steps, sr)
		if err != nil {
			return OutcomeFailed, fmt.Errorf("step %s: %w", label, err)
		}
		if st.Name != "" {
			ev.steps[st.Name] = sr.Result
		}
	}
	return OutcomeCompleted, nil
}

func sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func (e *Engine) callStep(ctx context.Context, st Step, ev *env) (service.Value, int, error) {
	serviceID, err := expand(st.Service, ev)
	if err != nil {
		return service.Value{}, 0, err
	}
	args := make([]service.Value, len(st.Args))
	for i, a := range st.Args {
		text, err := expand(a.Text, ev)
		if err != nil {
			return service.Value{}, 0, err
		}
		if args[i], err = service.ParseText(a.Type, text); err != nil {
			return service.Value{}, 0, err
		}
	}
	timeout := st.Timeout
	if timeout <= 0 {
		timeout = DefaultStepTimeout
	}
	delay := st.RetryDelay
	if delay <= 0 {
		delay = DefaultRetryDelay
	}
	attempts := 0
	for {
		attempts++
		cctx, cancel := context.WithTimeout(ctx, timeout)
		v, err := e.caller.Call(cctx, serviceID, st.Op, args)
		cancel()
		if err == nil {
			return v, attempts, nil
		}
		// Only transient unavailability is worth retrying: devices
		// detach and leases lapse, but a bad argument stays bad.
		if attempts > st.Retries || !errors.Is(err, service.ErrUnavailable) {
			return service.Value{}, attempts, err
		}
		if err := sleep(ctx, delay); err != nil {
			return service.Value{}, attempts, err
		}
	}
}

func (e *Engine) publishStep(sc *Scene, st Step, ev *env) error {
	topic, err := expand(st.Topic, ev)
	if err != nil {
		return err
	}
	source, err := expand(st.Source, ev)
	if err != nil {
		return err
	}
	if source == "" {
		source = "scene:" + sc.Name
	}
	out := service.Event{Source: source, Topic: topic, Payload: make(map[string]service.Value, len(st.Payload))}
	for _, f := range st.Payload {
		text, err := expand(f.Text, ev)
		if err != nil {
			return err
		}
		if out.Payload[f.Name], err = service.ParseText(f.Type, text); err != nil {
			return fmt.Errorf("payload %s: %w", f.Name, err)
		}
	}
	e.mu.Lock()
	var target PublishingSource
	if st.Network != "" {
		target, _ = e.sources[st.Network].(PublishingSource)
	} else {
		for _, net := range e.srcOrder {
			if p, ok := e.sources[net].(PublishingSource); ok {
				target = p
				break
			}
		}
	}
	e.mu.Unlock()
	if target == nil {
		return fmt.Errorf("scene: no publishable event source for network %q", st.Network)
	}
	return target.PublishEvent(out)
}
