// Package scene is the framework's declarative service-composition layer:
// the paper's §2 motivating scenario — "the service integration of a VCR
// control service with a TV program service on the Internet can provide an
// automatic video recording service" — expressed as a storable artifact
// the system executes, monitors and retries, instead of a hand-coded
// integration loop.
//
// A Scene is triggers + guards + a sequence of actions:
//
//   - Triggers fire a run: an event on any middleware network's hub
//     (matched by topic/source, delivered via in-process subscription or
//     remote long-poll), or a fixed interval schedule.
//   - Guards are comparisons over the trigger's payload and earlier step
//     results; a false guard stops the run without error ("guarded").
//   - Steps are federation calls (with argument templating, a per-step
//     timeout and bounded retry on service.ErrUnavailable), synthetic
//     event publications, and sleeps.
//
// Scenes serialize to XML (see Encode/Decode) so compositions are data,
// not code; the Engine loads, arms, runs and accounts for them.
package scene

import (
	"fmt"
	"time"

	"homeconnect/internal/service"
)

// Step kinds.
const (
	// StepCall invokes a federation service operation.
	StepCall = "call"
	// StepPublish emits a synthetic event on a network's hub.
	StepPublish = "publish"
	// StepSleep pauses the run.
	StepSleep = "sleep"
)

// Guard comparison operators.
const (
	OpEq       = "eq"
	OpNe       = "ne"
	OpLt       = "lt"
	OpLe       = "le"
	OpGt       = "gt"
	OpGe       = "ge"
	OpContains = "contains"
)

// DefaultStepTimeout bounds call steps that declare no timeout of their
// own.
const DefaultStepTimeout = 10 * time.Second

// DefaultRetryDelay separates retry attempts when a step declares none.
const DefaultRetryDelay = 50 * time.Millisecond

// TopicInterval is the topic of the synthetic trigger event an interval
// schedule delivers to its runs.
const TopicInterval = "scene.interval"

// Trigger fires scene runs. Every > 0 makes it an interval schedule;
// otherwise it is an event trigger matching Topic (TopicMatches grammar;
// empty matches all) and, when set, the exact event Source, on the named
// Network's hub (empty = every registered network).
type Trigger struct {
	Topic   string
	Source  string
	Network string
	Every   time.Duration
}

// Guard is one comparison: both operands are templates (see the template
// grammar below); Op is one of the Op* constants. The ordered operators
// compare numerically when both expanded operands parse as numbers, and
// lexically otherwise.
type Guard struct {
	Left  string
	Op    string
	Right string
}

// Arg is one templated call argument: Text expands against the run
// environment, then parses as Type.
type Arg struct {
	Type service.Kind
	Text string
}

// Field is one templated payload attribute of a publish step.
type Field struct {
	Name string
	Type service.Kind
	Text string
}

// Step is one action of a scene. Name, when set, makes the step's result
// referenceable by later templates as ${steps.<name>.result}. Guards run
// before the step; a false guard ends the run as "guarded".
type Step struct {
	Kind   string
	Name   string
	Guards []Guard

	// Call fields. Service is a template; the call is retried up to
	// Retries extra times when it fails with service.ErrUnavailable
	// (devices detach, leases lapse), waiting RetryDelay between
	// attempts. Timeout bounds each attempt (DefaultStepTimeout if zero).
	Service    string
	Op         string
	Args       []Arg
	Timeout    time.Duration
	Retries    int
	RetryDelay time.Duration

	// Publish fields. Topic and Source are templates; Network selects the
	// hub (empty = first registered source that can publish).
	Network string
	Topic   string
	Source  string
	Payload []Field

	// Sleep duration.
	For time.Duration
}

// Scene is one declarative composition.
type Scene struct {
	Name     string
	Doc      string
	Triggers []Trigger
	Guards   []Guard
	Steps    []Step
}

// Template reference grammar, usable anywhere a field is documented as a
// template:
//
//	${trigger.topic}          the triggering event's topic
//	${trigger.source}         the triggering event's source service ID
//	${trigger.seq}            the triggering event's sequence number
//	${trigger.payload.<key>}  a payload attribute, in Value text form
//	${steps.<name>.result}    a completed named step's result
//
// Everything outside ${...} is literal.

var validOps = map[string]bool{
	OpEq: true, OpNe: true, OpLt: true, OpLe: true,
	OpGt: true, OpGe: true, OpContains: true,
}

// Validate checks the guard's operator.
func (g Guard) Validate() error {
	if !validOps[g.Op] {
		return fmt.Errorf("scene: unknown guard op %q", g.Op)
	}
	return nil
}

func validateArgKind(k service.Kind) error {
	if !k.Valid() || k == service.KindVoid {
		return fmt.Errorf("scene: invalid argument kind %v", k)
	}
	return nil
}

// Validate checks the scene for structural problems; the Engine refuses
// unvalidatable scenes at Load.
func (s *Scene) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scene: scene with empty name")
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("scene %s: no steps", s.Name)
	}
	for i, tr := range s.Triggers {
		if tr.Every < 0 {
			return fmt.Errorf("scene %s: trigger %d: negative interval", s.Name, i+1)
		}
		if tr.Every > 0 && (tr.Topic != "" || tr.Source != "" || tr.Network != "") {
			return fmt.Errorf("scene %s: trigger %d: interval trigger cannot filter topic/source/network", s.Name, i+1)
		}
	}
	for i, g := range s.Guards {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("scene %s: guard %d: %w", s.Name, i+1, err)
		}
	}
	names := make(map[string]bool, len(s.Steps))
	for i, st := range s.Steps {
		where := fmt.Sprintf("scene %s: step %d", s.Name, i+1)
		if st.Name != "" {
			if names[st.Name] {
				return fmt.Errorf("%s: duplicate step name %q", where, st.Name)
			}
			names[st.Name] = true
		}
		for j, g := range st.Guards {
			if err := g.Validate(); err != nil {
				return fmt.Errorf("%s: guard %d: %w", where, j+1, err)
			}
		}
		switch st.Kind {
		case StepCall:
			if st.Service == "" || st.Op == "" {
				return fmt.Errorf("%s: call needs service and op", where)
			}
			if st.Retries < 0 || st.Timeout < 0 || st.RetryDelay < 0 {
				return fmt.Errorf("%s: negative retry/timeout settings", where)
			}
			for _, a := range st.Args {
				if err := validateArgKind(a.Type); err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
			}
		case StepPublish:
			if st.Topic == "" {
				return fmt.Errorf("%s: publish needs a topic", where)
			}
			seen := make(map[string]bool, len(st.Payload))
			for _, f := range st.Payload {
				if f.Name == "" {
					return fmt.Errorf("%s: payload field with empty name", where)
				}
				if seen[f.Name] {
					return fmt.Errorf("%s: duplicate payload field %q", where, f.Name)
				}
				seen[f.Name] = true
				if err := validateArgKind(f.Type); err != nil {
					return fmt.Errorf("%s: payload %s: %w", where, f.Name, err)
				}
			}
		case StepSleep:
			if st.For <= 0 {
				return fmt.Errorf("%s: sleep needs a positive duration", where)
			}
		default:
			return fmt.Errorf("%s: unknown step kind %q", where, st.Kind)
		}
	}
	return nil
}
