package scene

import (
	"fmt"
	"strconv"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/xmltree"
)

// XML codec: scenes are storable artifacts in the framework's xmltree
// idiom. Encoding is canonical — fixed element order (triggers, guards,
// steps), fixed attribute order, zero-valued attributes omitted — so
// encode→decode→encode is byte-identical.
//
// Schema sketch (see DESIGN.md for the full example):
//
//	<scenes>
//	  <scene name="..." doc="...">
//	    <trigger kind="event" topic="..." source="..." network="..."/>
//	    <trigger kind="interval" every="30s"/>
//	    <guard left="..." op="eq" right="..."/>
//	    <step kind="call" name="..." service="..." op="..."
//	          timeout="5s" retries="2" retrydelay="100ms">
//	      <guard .../>
//	      <arg type="string">template text</arg>
//	    </step>
//	    <step kind="publish" network="..." topic="..." source="...">
//	      <p name="..." type="int">template text</p>
//	    </step>
//	    <step kind="sleep" for="500ms"/>
//	  </scene>
//	</scenes>

// Encode renders scenes as a canonical <scenes> document.
func Encode(scenes []*Scene) []byte {
	w := xmltree.NewWriter()
	w.Open("scenes")
	for _, s := range scenes {
		writeScene(w, s)
	}
	return w.Bytes()
}

func writeScene(w *xmltree.Writer, s *Scene) {
	attrs := []string{"name", s.Name}
	if s.Doc != "" {
		attrs = append(attrs, "doc", s.Doc)
	}
	w.Open("scene", attrs...)
	for _, t := range s.Triggers {
		if t.Every > 0 {
			w.SelfClose("trigger", "kind", "interval", "every", t.Every.String())
			continue
		}
		attrs := []string{"kind", "event", "topic", t.Topic}
		if t.Source != "" {
			attrs = append(attrs, "source", t.Source)
		}
		if t.Network != "" {
			attrs = append(attrs, "network", t.Network)
		}
		w.SelfClose("trigger", attrs...)
	}
	for _, g := range s.Guards {
		writeGuard(w, g)
	}
	for _, st := range s.Steps {
		writeStep(w, st)
	}
	w.Close()
}

func writeGuard(w *xmltree.Writer, g Guard) {
	w.SelfClose("guard", "left", g.Left, "op", g.Op, "right", g.Right)
}

func writeStep(w *xmltree.Writer, st Step) {
	attrs := []string{"kind", st.Kind}
	if st.Name != "" {
		attrs = append(attrs, "name", st.Name)
	}
	switch st.Kind {
	case StepCall:
		attrs = append(attrs, "service", st.Service, "op", st.Op)
		if st.Timeout > 0 {
			attrs = append(attrs, "timeout", st.Timeout.String())
		}
		if st.Retries > 0 {
			attrs = append(attrs, "retries", strconv.Itoa(st.Retries))
		}
		if st.RetryDelay > 0 {
			attrs = append(attrs, "retrydelay", st.RetryDelay.String())
		}
	case StepPublish:
		if st.Network != "" {
			attrs = append(attrs, "network", st.Network)
		}
		attrs = append(attrs, "topic", st.Topic)
		if st.Source != "" {
			attrs = append(attrs, "source", st.Source)
		}
	case StepSleep:
		attrs = append(attrs, "for", st.For.String())
	}
	if len(st.Guards) == 0 && len(st.Args) == 0 && len(st.Payload) == 0 {
		w.SelfClose("step", attrs...)
		return
	}
	w.Open("step", attrs...)
	for _, g := range st.Guards {
		writeGuard(w, g)
	}
	for _, a := range st.Args {
		w.Leaf("arg", a.Text, "type", a.Type.String())
	}
	for _, f := range st.Payload {
		w.Leaf("p", f.Text, "name", f.Name, "type", f.Type.String())
	}
	w.Close()
}

// Decode parses a <scenes> document (or a single <scene> root) and
// validates every scene.
func Decode(data []byte) ([]*Scene, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scene: %w", err)
	}
	var els []*xmltree.Element
	switch root.Name.Local {
	case "scenes":
		els = root.All("scene")
	case "scene":
		els = []*xmltree.Element{root}
	default:
		return nil, fmt.Errorf("scene: unexpected root element <%s>", root.Name.Local)
	}
	out := make([]*Scene, 0, len(els))
	for _, el := range els {
		s, err := sceneFromXML(el)
		if err != nil {
			return nil, err
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func sceneFromXML(el *xmltree.Element) (*Scene, error) {
	s := &Scene{Name: el.Attr("name"), Doc: el.Attr("doc")}
	for _, c := range el.Children {
		switch c.Name.Local {
		case "trigger":
			tr, err := triggerFromXML(s.Name, c)
			if err != nil {
				return nil, err
			}
			s.Triggers = append(s.Triggers, tr)
		case "guard":
			s.Guards = append(s.Guards, guardFromXML(c))
		case "step":
			st, err := stepFromXML(s.Name, c)
			if err != nil {
				return nil, err
			}
			s.Steps = append(s.Steps, st)
		default:
			return nil, fmt.Errorf("scene %s: unexpected element <%s>", s.Name, c.Name.Local)
		}
	}
	return s, nil
}

func triggerFromXML(scene string, el *xmltree.Element) (Trigger, error) {
	// Filter attributes decode for both kinds so Validate can reject an
	// interval trigger that also names them, instead of silently
	// dropping the author's filter.
	tr := Trigger{
		Topic:   el.Attr("topic"),
		Source:  el.Attr("source"),
		Network: el.Attr("network"),
	}
	switch kind := el.Attr("kind"); kind {
	case "interval":
		d, err := time.ParseDuration(el.Attr("every"))
		if err != nil {
			return Trigger{}, fmt.Errorf("scene %s: interval trigger: bad every %q", scene, el.Attr("every"))
		}
		tr.Every = d
		return tr, nil
	case "event":
		return tr, nil
	default:
		return Trigger{}, fmt.Errorf("scene %s: unknown trigger kind %q", scene, kind)
	}
}

func guardFromXML(el *xmltree.Element) Guard {
	return Guard{Left: el.Attr("left"), Op: el.Attr("op"), Right: el.Attr("right")}
}

func attrDuration(el *xmltree.Element, name string) (time.Duration, error) {
	s := el.Attr(name)
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

func stepFromXML(scene string, el *xmltree.Element) (Step, error) {
	st := Step{Kind: el.Attr("kind"), Name: el.Attr("name")}
	var err error
	switch st.Kind {
	case StepCall:
		st.Service = el.Attr("service")
		st.Op = el.Attr("op")
		if st.Timeout, err = attrDuration(el, "timeout"); err != nil {
			return Step{}, fmt.Errorf("scene %s: step %s: bad timeout: %w", scene, st.Name, err)
		}
		if st.RetryDelay, err = attrDuration(el, "retrydelay"); err != nil {
			return Step{}, fmt.Errorf("scene %s: step %s: bad retrydelay: %w", scene, st.Name, err)
		}
		if r := el.Attr("retries"); r != "" {
			if st.Retries, err = strconv.Atoi(r); err != nil {
				return Step{}, fmt.Errorf("scene %s: step %s: bad retries %q", scene, st.Name, r)
			}
		}
	case StepPublish:
		st.Network = el.Attr("network")
		st.Topic = el.Attr("topic")
		st.Source = el.Attr("source")
	case StepSleep:
		if st.For, err = attrDuration(el, "for"); err != nil {
			return Step{}, fmt.Errorf("scene %s: sleep step: bad for: %w", scene, err)
		}
	}
	// Children are matched strictly per step kind: a misplaced <arg> or
	// <p> is an authoring mistake worth an error at load time, not a
	// silently dropped element that surfaces as a template failure at
	// run time.
	for _, c := range el.Children {
		switch {
		case c.Name.Local == "guard":
			st.Guards = append(st.Guards, guardFromXML(c))
		case c.Name.Local == "arg" && st.Kind == StepCall:
			st.Args = append(st.Args, Arg{Type: service.KindFromString(c.Attr("type")), Text: c.Text})
		case c.Name.Local == "p" && st.Kind == StepPublish:
			st.Payload = append(st.Payload, Field{
				Name: c.Attr("name"),
				Type: service.KindFromString(c.Attr("type")),
				Text: c.Text,
			})
		default:
			return Step{}, fmt.Errorf("scene %s: %s step cannot contain <%s>", scene, st.Kind, c.Name.Local)
		}
	}
	return st, nil
}
