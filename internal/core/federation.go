// Package core assembles the paper's framework (§3): a Virtual Service
// Repository (§3.3), one Virtual Service Gateway (§3.1) per middleware
// network, and the Protocol Conversion Managers (§3.2) attached to each
// gateway. The Federation type owns the lifecycle; the public homeconnect
// package at the module root re-exports it.
package core

import (
	"context"
	"fmt"
	"sync"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/ops"
	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
)

// Federation is a running instance of the framework.
type Federation struct {
	vsrServer *vsr.Server
	// home names this residence when federating with other homes; empty
	// for the paper's single-home deployment.
	home string
	// auth is the home's shared authentication context: repository
	// faces, gateways and the peering all consult the same object, so
	// installing an identity or editing trust/ACLs takes effect
	// everywhere at once. Open (inert) until SetIdentity.
	auth *identity.Auth

	mu         sync.Mutex
	networks   map[string]*Network
	order      []string
	scenes     *scene.Engine
	peering    *peer.Peering
	noLoopback bool
	noBinary   bool
	closed     bool

	// auditLog is the home's tamper-evident audit plane, nil until
	// EnableAudit. One log per federation: every instrumented component
	// (registry, auth, peering, gateways) records into the same chain.
	auditLog *audit.Log
}

// Network is one middleware network: a gateway plus its attached PCMs.
type Network struct {
	fed  *Federation
	gw   *vsg.VSG
	mu   sync.Mutex
	pcms []pcm.PCM
}

// NewFederation starts a federation with its own repository on an
// ephemeral port: the paper's single-home deployment. To federate homes,
// use NewHomeFederation.
func NewFederation() (*Federation, error) {
	return NewHomeFederation("")
}

// NewHomeFederation starts a federation named as one home of a wider
// multi-home deployment. The name scopes this home's services in every
// peer's ID space ("<home>/<id>") and is required before Peer or
// Peering may be used; it must be unique among the homes that federate.
// The repository's export face (PeerURL) is live immediately, so other
// homes can peer with this one without further setup.
func NewHomeFederation(home string) (*Federation, error) {
	auth := identity.NewAuth(home)
	srv, err := vsr.StartServerAuth("127.0.0.1:0", auth)
	if err != nil {
		return nil, fmt.Errorf("core: start vsr: %w", err)
	}
	return assembleFederation(srv, home, auth)
}

// NewDurableHomeFederation is NewHomeFederation over a durable
// repository: the registry persists its change journal (WAL + periodic
// snapshots) under opts.Dir and recovers it — sequence numbers, entries,
// and remaining TTL lifetimes — on the next start. Use Shutdown (not just
// Close) for a marked clean stop.
func NewDurableHomeFederation(home string, opts uddi.DurabilityOptions) (*Federation, error) {
	reg, err := uddi.NewDurableServer(opts)
	if err != nil {
		return nil, fmt.Errorf("core: open durable registry: %w", err)
	}
	auth := identity.NewAuth(home)
	srv, err := vsr.StartServerWith("127.0.0.1:0", reg, auth)
	if err != nil {
		return nil, fmt.Errorf("core: start vsr: %w", err)
	}
	return assembleFederation(srv, home, auth)
}

// assembleFederation finishes construction over a started repository.
func assembleFederation(srv *vsr.Server, home string, auth *identity.Auth) (*Federation, error) {
	f := &Federation{
		vsrServer: srv,
		home:      home,
		auth:      auth,
		networks:  make(map[string]*Network),
	}
	if home != "" {
		p, err := peer.New(home, srv.Registry(), auth)
		if err != nil {
			srv.Close()
			return nil, err
		}
		f.peering = p
		srv.MountPeer(p.ExportHandler())
		srv.MountPeerView(p.ExportView)
	}
	return f, nil
}

// Home returns the federation's home name ("" for single-home use).
func (f *Federation) Home() string { return f.home }

// VSRURL returns the repository endpoint.
func (f *Federation) VSRURL() string { return f.vsrServer.URL() }

// VSRServer exposes the repository server (stats, tests).
func (f *Federation) VSRServer() *vsr.Server { return f.vsrServer }

// AddNetwork creates and starts a gateway for a new middleware network.
func (f *Federation) AddNetwork(name string) (*Network, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("core: federation closed")
	}
	if _, exists := f.networks[name]; exists {
		return nil, fmt.Errorf("core: network %q already exists", name)
	}
	gw := vsg.New(name, f.vsrServer.URL())
	gw.SetHome(f.home)
	gw.SetAuth(f.auth)
	gw.SetAudit(f.auditLog)
	gw.SetLoopbackEnabled(!f.noLoopback)
	gw.SetBinaryEnabled(!f.noBinary)
	if err := gw.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	n := &Network{fed: f, gw: gw}
	f.networks[name] = n
	f.order = append(f.order, name)
	if f.scenes != nil {
		f.scenes.AddSource(name, scene.HubSource{Hub: gw.Hub()})
	}
	return n, nil
}

// Scenes returns the federation's scene engine, creating it on first use.
// The engine invokes services through the federation's gateways and sees
// every network's event hub as a trigger source — scenes loaded here
// compose services across middleware boundaries.
func (f *Federation) Scenes() *scene.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scenes == nil {
		f.scenes = scene.NewEngine(scene.CallerFunc(
			func(ctx context.Context, serviceID, op string, args []service.Value) (service.Value, error) {
				return f.Call(ctx, serviceID, op, args...)
			}))
		for _, name := range f.order {
			f.scenes.AddSource(name, scene.HubSource{Hub: f.networks[name].gw.Hub()})
		}
		if f.closed {
			// The federation is already torn down: hand back an engine
			// that refuses to load or start anything rather than one
			// arming triggers against dead gateways.
			f.scenes.Close()
		}
	}
	return f.scenes
}

// SetLoopback gates the in-process loopback fast path on every gateway
// this federation creates (and those already created): with it on — the
// default — cross-network calls between gateways sharing this process
// dispatch straight to the target's service.Invoker, skipping HTTP and
// the SOAP codec with identical results and faults. Turn it off to force
// every call onto the wire, e.g. to measure the SOAP path or to emulate
// gateways deployed on separate hosts (internal/sim does this).
func (f *Federation) SetLoopback(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noLoopback = !on
	for _, n := range f.networks {
		n.gw.SetLoopbackEnabled(on)
	}
}

// SetBinaryWire gates the session-keyed binary fast path on every
// endpoint this federation owns: the repository's binary face, each
// gateway's inbound face and outbound dialer, and the peering's import
// links. On — the default whenever the home has an identity — framework
// traffic to peers that negotiate it rides compact MAC'd frames; off,
// every hello is refused and all traffic stays on signed SOAP/HTTP, the
// byte-identical interop wire (a SOAP-only home in a mixed federation).
// Open-mode federations are unaffected: without an identity no session
// can be keyed and the wire is SOAP regardless.
func (f *Federation) SetBinaryWire(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noBinary = !on
	f.vsrServer.SetBinaryEnabled(on)
	for _, n := range f.networks {
		n.gw.SetBinaryEnabled(on)
	}
	if f.peering != nil {
		f.peering.SetBinaryEnabled(on)
	}
}

// WireStats aggregates per-authority wire-protocol state — negotiated
// protocol, session age, handshake/rekey/downgrade counts — across every
// dialer this federation owns: each gateway's outbound dialer plus the
// peering's link dialer. Authorities dialed by more than one component
// merge (counters sum; "binary" wins the protocol tag).
func (f *Federation) WireStats() transport.WireStats {
	f.mu.Lock()
	gws := make([]*vsg.VSG, 0, len(f.networks))
	for _, n := range f.networks {
		gws = append(gws, n.gw)
	}
	p := f.peering
	f.mu.Unlock()

	out := make(transport.WireStats)
	merge := func(ws transport.WireStats) {
		for authority, ls := range ws {
			prev, ok := out[authority]
			if !ok {
				out[authority] = ls
				continue
			}
			prev.Handshakes += ls.Handshakes
			prev.Rekeys += ls.Rekeys
			prev.Downgrades += ls.Downgrades
			if ls.Protocol == "binary" {
				prev.Protocol = ls.Protocol
			}
			if ls.SessionAgeMS > prev.SessionAgeMS {
				prev.SessionAgeMS = ls.SessionAgeMS
			}
			out[authority] = prev
		}
	}
	for _, gw := range gws {
		if d := gw.Dialer(); d != nil {
			merge(d.WireStatsSnapshot())
		}
	}
	if p != nil {
		merge(p.WireStats())
	}
	return out
}

// Peering returns the federation's inter-home peering layer. It errors
// unless the federation was built with NewHomeFederation: peers file
// each other's services under home scopes, so an unnamed home has no
// address in the wider federation.
func (f *Federation) Peering() (*peer.Peering, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("core: federation closed")
	}
	if f.peering == nil {
		return nil, fmt.Errorf("core: federation has no home name; use NewHomeFederation to federate")
	}
	return f.peering, nil
}

// Peer starts replicating another home's registry into this one: that
// home's exported services become resolvable here as "<home>/<id>" and
// callable through any of this federation's gateways. url is the remote
// repository's peering endpoint (vsr.Server.PeerURL, printed by vsrd).
// Peering is one-directional; the remote home peers back for mutual
// visibility.
func (f *Federation) Peer(url string) error {
	p, err := f.Peering()
	if err != nil {
		return err
	}
	_, err = p.Peer(url)
	return err
}

// Unpeer stops replicating from a peer and withdraws its services.
func (f *Federation) Unpeer(url string) error {
	p, err := f.Peering()
	if err != nil {
		return err
	}
	return p.Unpeer(url)
}

// PeerURL returns the endpoint other homes pass to Peer to replicate
// from this one. It serves 404 on federations without a home name.
func (f *Federation) PeerURL() string { return f.vsrServer.PeerURL() }

// SetExportPolicy installs the home's export policy: which local
// services peers may see, as allow/deny ID patterns with
// events.TopicMatches semantics (exact, "*", "prefix*"). Deny wins; an
// empty allow list admits everything.
func (f *Federation) SetExportPolicy(pol peer.Policy) error {
	p, err := f.Peering()
	if err != nil {
		return err
	}
	p.SetPolicy(pol)
	return nil
}

// Auth returns the federation's authentication context: the one object
// the repository faces, gateways and peering all consult. Most callers
// want the typed wrappers (SetIdentity, TrustHome, SetServiceACL)
// instead.
func (f *Federation) Auth() *identity.Auth { return f.auth }

// SetIdentity installs the home's identity, switching every face of
// this federation from the paper's open trust model to enforced
// authentication: wire operations are signed and verified, peers must
// be trusted (TrustHome) to see or call anything, and the export policy
// plus service ACL apply to every authenticated caller. It errors on a
// federation without a home name — there is nothing to authenticate as.
// Install the identity before peers or clients start talking to this
// home; components pick it up without a restart.
func (f *Federation) SetIdentity(id *identity.Identity) error {
	if f.home == "" {
		return fmt.Errorf("core: federation has no home name; use NewHomeFederation to take an identity")
	}
	return f.auth.SetIdentity(id)
}

// TrustHome records another home's public key (hex, from
// Identity.PublicKey): requests and responses signed by that home verify
// from now on, which is what lets it peer with and call into this one.
func (f *Federation) TrustHome(home, publicKeyHex string) error {
	return f.auth.Trust(home, publicKeyHex)
}

// SetServiceACL installs the per-service access-control list enforced —
// together with the export policy, deny winning at every layer — against
// every authenticated caller from another home, on both the peering
// view (visibility) and the gateways' inbound call path (invocation).
func (f *Federation) SetServiceACL(acl identity.ACL) {
	f.auth.SetACL(acl)
}

// PeerStatus reports every peering link keyed by remote URL — the
// inter-home counterpart of Health. A link with Connected false is in
// degraded mode: services already imported from that home keep serving
// until their TTL lapses, then vanish until the link recovers.
// Authenticated reports mutual per-operation authentication on the live
// stream; auth refusals from either side land in LastError.
func (f *Federation) PeerStatus() map[string]peer.Status {
	f.mu.Lock()
	p := f.peering
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Status()
}

// Network returns a network by name, or nil.
func (f *Federation) Network(name string) *Network {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.networks[name]
}

// Networks lists network names in creation order.
func (f *Federation) Networks() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// Gateway returns the network's Virtual Service Gateway.
func (n *Network) Gateway() *vsg.VSG { return n.gw }

// Attach starts a PCM on this network's gateway.
func (n *Network) Attach(ctx context.Context, p pcm.PCM) error {
	if err := p.Start(ctx, n.gw); err != nil {
		return fmt.Errorf("core: attach %s PCM to %s: %w", p.Middleware(), n.gw.Name(), err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pcms = append(n.pcms, p)
	return nil
}

// anyGateway returns some gateway for federation-level operations.
func (f *Federation) anyGateway() (*vsg.VSG, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, name := range f.order {
		return f.networks[name].gw, nil
	}
	return nil, fmt.Errorf("core: federation has no networks")
}

// Call invokes an operation on any federation service by ID, routing
// through an arbitrary gateway (all gateways can reach all services).
func (f *Federation) Call(ctx context.Context, serviceID, op string, args ...service.Value) (service.Value, error) {
	gw, err := f.anyGateway()
	if err != nil {
		return service.Value{}, err
	}
	return gw.Call(ctx, serviceID, op, args)
}

// Services lists every service currently registered in the repository.
func (f *Federation) Services(ctx context.Context) ([]vsr.Remote, error) {
	gw, err := f.anyGateway()
	if err != nil {
		return nil, err
	}
	return gw.List(ctx, vsr.Query{})
}

// EnableAudit turns on the home's tamper-evident audit plane: a
// hash-chained, Merkle-batched log (see internal/core/audit) that every
// instrumented component of this federation records its boundary
// decisions into — registry expiries and re-homes, peer link up/down,
// watch state changes, call admissions, policy/ACL denials, auth
// refusals and replay rejections. It also mounts the read-only /health
// and /audit faces on the repository listener (private to the home's
// own identity once one is installed). Call it once, before traffic
// flows; it errors if already enabled or if the log cannot open.
func (f *Federation) EnableAudit(opts audit.Options) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("core: federation closed")
	}
	if f.auditLog != nil {
		return fmt.Errorf("core: audit already enabled")
	}
	l, err := audit.New(opts)
	if err != nil {
		return err
	}
	f.auditLog = l
	f.auth.SetRecorder(audit.WithFace(l, "auth", f.home))
	f.vsrServer.Registry().SetAuditRecorder(audit.WithFace(l, "vsr", f.home))
	if f.peering != nil {
		f.peering.SetRecorder(audit.WithFace(l, "peer", f.home))
	}
	for _, n := range f.networks {
		n.gw.SetAudit(l)
	}
	f.vsrServer.MountOps(
		ops.HealthHandler(func() any { return f.healthReport() }),
		ops.AuditHandler(func() *audit.Log { return f.Audit() }),
	)
	return nil
}

// Audit returns the federation's audit log, nil until EnableAudit.
func (f *Federation) Audit() *audit.Log {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.auditLog
}

// RegistryStats summarizes the repository for health reports.
type RegistryStats struct {
	// Entries is the number of live registrations.
	Entries int `json:"entries"`
	// Saves and Finds count operations since start.
	Saves int64 `json:"saves"`
	Finds int64 `json:"finds"`
	// Seq is the change journal's newest sequence number.
	Seq uint64 `json:"seq"`
}

// HealthReport is the federation's /health face body: one snapshot of
// everything the deployment can say about its own condition.
type HealthReport struct {
	// Home names this residence ("" single-home).
	Home string `json:"home,omitempty"`
	// AuthEnabled reports enforced authentication (an installed identity).
	AuthEnabled bool `json:"auth_enabled"`
	// Registry summarizes the repository.
	Registry RegistryStats `json:"registry"`
	// Networks maps each gateway to its Health snapshot.
	Networks map[string]vsg.Health `json:"networks,omitempty"`
	// Peers maps each peering link to its Status.
	Peers map[string]peer.Status `json:"peers,omitempty"`
	// Wire maps each dialed authority to its wire-protocol state: which
	// protocol the link negotiated, session age, and handshake, rekey and
	// downgrade counts.
	Wire transport.WireStats `json:"wire,omitempty"`
	// Audit summarizes the audit log.
	Audit audit.Stats `json:"audit"`
	// Durability reports the repository's persistence state (WAL,
	// snapshots, last boot's recovery); absent for in-memory registries.
	Durability *uddi.DurabilityStats `json:"durability,omitempty"`
}

// healthReport assembles the /health face body.
func (f *Federation) healthReport() HealthReport {
	reg := f.vsrServer.Registry()
	saves, finds := reg.Stats()
	var durability *uddi.DurabilityStats
	if d := reg.Durability(); d.Enabled {
		durability = &d
	}
	return HealthReport{
		Home:        f.home,
		AuthEnabled: f.auth.Enabled(),
		Registry: RegistryStats{
			Entries: reg.Len(),
			Saves:   saves,
			Finds:   finds,
			Seq:     reg.Seq(),
		},
		Networks:   f.Health(),
		Peers:      f.PeerStatus(),
		Wire:       f.WireStats(),
		Audit:      f.Audit().Stats(),
		Durability: durability,
	}
}

// Health reports every gateway's repository liaison, keyed by network
// name. A gateway with WatchActive false is running degraded: its
// resolutions fall back to blind TTL caching until the repository watch
// recovers.
func (f *Federation) Health() map[string]vsg.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]vsg.Health, len(f.networks))
	for name, n := range f.networks {
		out[name] = n.gw.Health()
	}
	return out
}

// Close stops the scene engine, PCMs, gateways and the repository, in
// that order: scenes first so no composition fires while the services it
// calls are being torn down. A durable repository's WAL is flushed but
// left unmarked; use Shutdown for the marked clean stop.
func (f *Federation) Close() { f.closeWith(false) }

// Shutdown is Close plus a durable clean stop: once every mutator has
// stopped, the repository writes its clean-shutdown WAL marker (and
// journals a registry.shutdown audit event), so the next boot from the
// same data directory skips tail-scan recovery. Equivalent to Close for
// an in-memory repository.
func (f *Federation) Shutdown() { f.closeWith(true) }

func (f *Federation) closeWith(clean bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	engine := f.scenes
	peering := f.peering
	names := append([]string(nil), f.order...)
	nets := make([]*Network, 0, len(names))
	for _, name := range names {
		nets = append(nets, f.networks[name])
	}
	f.mu.Unlock()

	if engine != nil {
		engine.Close()
	}
	// Stop replication before gateways go down so no half-dead import
	// churns the registry mid-teardown.
	if peering != nil {
		peering.Close()
	}
	for _, n := range nets {
		n.mu.Lock()
		pcms := append([]pcm.PCM(nil), n.pcms...)
		n.mu.Unlock()
		for _, p := range pcms {
			_ = p.Stop()
		}
	}
	for _, n := range nets {
		n.gw.Close()
	}
	if clean {
		// Every mutator is quiet: the marker is genuinely the last record.
		_ = f.vsrServer.Registry().Shutdown()
	}
	f.vsrServer.Close()
	f.mu.Lock()
	l := f.auditLog
	f.mu.Unlock()
	_ = l.Close()
}
