// Binary-wire behaviour at the federation level: the three-way
// equivalence table (loopback vs binary fast path vs SOAP fallback must
// produce identical results and identical typed errors), the downgrade
// paths (handshake refusal, session expiry mid-stream, version-mismatch
// fallback) and the proof that a mid-session downgrade never drops a
// replication link's watch cursor.
package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/core/identity"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
)

// newSecureFed builds a home federation with a generated identity and an
// exported echo service (operations Where, Echo, Hang).
func newSecureFed(t *testing.T, home string) (*Federation, *identity.Identity) {
	t.Helper()
	id, err := identity.Generate(home)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewHomeFederation(home)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.SetIdentity(id); err != nil {
		t.Fatal(err)
	}
	n, err := fed.AddNetwork("net")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: "test:svc", Name: "test:svc", Middleware: "test",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
			{Name: "Echo", Inputs: []service.Parameter{{Name: "s", Type: service.KindString}}, Output: service.KindString},
			{Name: "Hang", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(ctx context.Context, op string, args []service.Value) (service.Value, error) {
		switch op {
		case "Where":
			return service.StringValue(home), nil
		case "Echo":
			return args[0], nil
		case "Hang":
			<-ctx.Done()
			return service.Value{}, ctx.Err()
		}
		return service.Value{}, service.ErrNoSuchOperation
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
	return fed, id
}

// trustFeds wires mutual trust between two federations.
func trustFeds(t *testing.T, a *Federation, aID *identity.Identity, b *Federation, bID *identity.Identity) {
	t.Helper()
	if err := a.TrustHome(bID.Home(), bID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.TrustHome(aID.Home(), aID.PublicKey()); err != nil {
		t.Fatal(err)
	}
}

// waitCallable polls until the scoped service answers from fed.
func waitCallable(t *testing.T, fed *Federation, svcID string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for {
		if _, err := fed.Call(ctx, svcID, "Where"); err == nil {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("%s never became callable from %s", svcID, fed.Home())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// hasProtocol reports whether any link in stats negotiated proto.
func hasProtocol(stats transport.WireStats, proto string) bool {
	for _, ls := range stats {
		if ls.Protocol == proto {
			return true
		}
	}
	return false
}

// TestBinaryWireThreeWayEquivalence drives the same logical calls over
// the in-process loopback, the binary fast path and the SOAP fallback,
// and holds all three to identical results and identical typed errors.
func TestBinaryWireThreeWayEquivalence(t *testing.T) {
	a, aID := newSecureFed(t, "home-a")
	b, bID := newSecureFed(t, "home-b")
	c, cID := newSecureFed(t, "home-c")
	trustFeds(t, a, aID, b, bID)
	trustFeds(t, a, aID, c, cID)
	a.SetLoopback(true)
	// home-c never negotiates: the mixed-mode peer that stays on SOAP.
	c.SetBinaryWire(false)
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	if err := c.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	waitCallable(t, b, "home-a/test:svc")
	waitCallable(t, c, "home-a/test:svc")

	// paths: the same logical operation through each wire.
	paths := []struct {
		name string
		fed  *Federation
		id   string
	}{
		{"loopback", a, "test:svc"},
		{"binary", b, "home-a/test:svc"},
		{"soap", c, "home-a/test:svc"},
	}

	// Strings XML cannot carry untouched must round-trip identically on
	// every path (the SOAP path escapes them; the binary path does not
	// need to — both must hand back the same bytes).
	hostile := "<tag attr=\"x\">&amp;]]> line\nbreak\ttab é☃</tag>"
	for _, p := range paths {
		t.Run("echo/"+p.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			got, err := p.fed.Call(ctx, p.id, "Echo", service.StringValue(hostile))
			if err != nil {
				t.Fatal(err)
			}
			if got.Str() != hostile {
				t.Fatalf("echo over %s = %q, want %q", p.name, got.Str(), hostile)
			}
		})
	}

	// An unknown operation must classify as the same typed error on
	// every path — the fault code/detail mapping is shared.
	for _, p := range paths {
		t.Run("fault/"+p.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := p.fed.Call(ctx, p.id, "Where", service.StringValue("unexpected"))
			if !errors.Is(err, service.ErrBadArgument) {
				t.Fatalf("bad arity over %s = %v, want ErrBadArgument", p.name, err)
			}
		})
	}

	// Context cancellation surfaces as the context's error everywhere and
	// must never be mistaken for a wire failure (no downgrade).
	for _, p := range paths {
		t.Run("cancel/"+p.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
			defer cancel()
			_, err := p.fed.Call(ctx, p.id, "Hang")
			if err == nil {
				t.Fatal("Hang returned without error")
			}
			if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "cancel") {
				t.Fatalf("cancellation over %s = %v, want a context error", p.name, err)
			}
		})
	}

	// After everything above, home-b must still be on binary (no call in
	// the table was allowed to downgrade it) and home-c's link toward
	// home-a must never have negotiated. (WireStats would also show
	// home-c's gateway talking binary to its *own* repository from before
	// the wire was disabled; the mixed-mode property is per peer link.)
	if !hasProtocol(b.WireStats(), "binary") {
		t.Fatalf("home-b wire stats %v: binary negotiation lost", b.WireStats())
	}
	for url, st := range c.PeerStatus() {
		if st.Proto != "soap" {
			t.Fatalf("home-c link %s proto = %q, want soap", url, st.Proto)
		}
	}

	// A service ACL refusal must be the same typed error over binary and
	// SOAP. (Loopback is exempt: an ACL governs cross-home callers only.)
	a.SetServiceACL(identity.ACL{Deny: []identity.Rule{{Caller: "*", Service: "test:*"}}})
	for _, p := range paths[1:] {
		t.Run("forbidden/"+p.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := p.fed.Call(ctx, p.id, "Where")
			if !errors.Is(err, service.ErrForbidden) {
				t.Fatalf("ACL refusal over %s = %v, want ErrForbidden", p.name, err)
			}
		})
	}
}

// TestBinaryWirePrivateFaceRefusals drives home-a's own-home-only /uddi
// face from another home over both wires: the session-authenticated
// binary deny and the signature-authenticated HTTP deny must decode to
// the identical typed error. An untrusted caller must land on
// ErrUnauthenticated the same way — its handshake is refused, the call
// falls back to SOAP, and the signature check refuses it there too.
func TestBinaryWirePrivateFaceRefusals(t *testing.T) {
	a, aID := newSecureFed(t, "home-a")
	b, bID := newSecureFed(t, "home-b")
	trustFeds(t, a, aID, b, bID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Trusted foreign home, binary-capable dialer: the session handshake
	// succeeds, then the own-home boundary refuses through the binary
	// face. ErrForbidden, exactly as the HTTP middleware words it.
	binDialer := transport.NewDialer(b.Auth())
	defer binDialer.Close()
	binClient := &uddi.Client{URL: a.VSRURL(), Dialer: binDialer}
	if _, err := binClient.Find(ctx, uddi.Query{}); !errors.Is(err, service.ErrForbidden) {
		t.Fatalf("binary /uddi from foreign home = %v, want ErrForbidden", err)
	}
	if p := binDialer.ProtocolFor(a.VSRURL()); p != "binary" {
		t.Fatalf("refusal rode %q, want binary (the deny itself must not downgrade)", p)
	}

	// Same principal over plain signed HTTP: identical typed error.
	soapDialer := transport.NewDialer(b.Auth())
	soapDialer.Binary = false
	defer soapDialer.Close()
	soapClient := &uddi.Client{URL: a.VSRURL(), Dialer: soapDialer}
	if _, err := soapClient.Find(ctx, uddi.Query{}); !errors.Is(err, service.ErrForbidden) {
		t.Fatalf("SOAP /uddi from foreign home = %v, want ErrForbidden", err)
	}

	// Untrusted home: handshake refused, downgrade to SOAP, signature
	// refused there — one typed error for the caller, on either wire.
	dID, err := identity.Generate("home-d")
	if err != nil {
		t.Fatal(err)
	}
	dAuth := identity.NewAuth("home-d")
	if err := dAuth.SetIdentity(dID); err != nil {
		t.Fatal(err)
	}
	if err := dAuth.Trust(aID.Home(), aID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	dDialer := transport.NewDialer(dAuth)
	defer dDialer.Close()
	dClient := &uddi.Client{URL: a.VSRURL(), Dialer: dDialer}
	if _, err := dClient.Find(ctx, uddi.Query{}); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("untrusted /uddi call = %v, want ErrUnauthenticated", err)
	}
	if p := dDialer.ProtocolFor(a.VSRURL()); p != "soap" {
		t.Fatalf("untrusted dialer protocol = %q, want soap (refused handshake downgrades)", p)
	}
}

// junkSession is a SessionAuth whose hellos no listener understands — a
// stand-in for a wire-protocol version mismatch.
type junkSession struct{}

func (junkSession) SessionActive() bool { return true }
func (junkSession) NewSessionClient() (transport.SessionClient, error) {
	return junkClient{}, nil
}
func (junkSession) AcceptSession([]byte) ([]byte, *transport.Session, error) {
	return nil, nil, errors.New("junk: no sessions here")
}
func (junkSession) NoteSessionEnd(*transport.Session, bool) {}

type junkClient struct{}

func (junkClient) Hello() []byte { return []byte("speaking-some-future-protocol/v9") }
func (junkClient) Finish([]byte) (*transport.Session, error) {
	return nil, errors.New("junk: cannot finish")
}

// TestBinaryWireVersionMismatchFallsBack sends a handshake the listener
// cannot parse; the application call must still succeed — transparently,
// over SOAP — and the authority must be marked downgraded.
func TestBinaryWireVersionMismatchFallsBack(t *testing.T) {
	a, _ := newSecureFed(t, "home-a")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	d := &transport.Dialer{Creds: a.Auth(), Session: junkSession{}, Binary: true}
	defer d.Close()
	client := &uddi.Client{URL: a.VSRURL(), Dialer: d}
	entries, err := client.Find(ctx, uddi.Query{})
	if err != nil {
		t.Fatalf("find with mismatched handshake = %v, want transparent SOAP fallback", err)
	}
	if len(entries) == 0 {
		t.Fatal("fallback query returned no services")
	}
	if p := d.ProtocolFor(a.VSRURL()); p != "soap" {
		t.Fatalf("protocol after mismatch = %q, want soap", p)
	}
	st := d.WireStatsSnapshot()
	for _, ls := range st {
		if ls.Protocol != "soap" {
			t.Fatalf("wire stats after mismatch = %+v", st)
		}
	}
}

// TestBinaryWireMidSessionDowngradeKeepsWatchCursor forces an
// established binary replication link back onto SOAP mid-stream (session
// expiry meets a now-disabled binary endpoint) and proves replication
// continues from the same cursor: no resync, imports keep flowing.
func TestBinaryWireMidSessionDowngradeKeepsWatchCursor(t *testing.T) {
	a, aID := newSecureFed(t, "home-a")
	b, bID := newSecureFed(t, "home-b")
	trustFeds(t, a, aID, b, bID)
	// Tight session lifetime so expiry arrives within the test: the
	// listener (home-a) grants the TTL.
	a.Auth().SetSessionTTL(200 * time.Millisecond)
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	waitCallable(t, b, "home-a/test:svc")

	linkProto := func() (proto string, resyncs uint64, imported int) {
		for _, st := range b.PeerStatus() {
			return st.Proto, st.Resyncs, st.Imported
		}
		return "", 0, 0
	}
	proto, _, importedBefore := linkProto()
	if proto != "binary" {
		t.Fatalf("link proto before downgrade = %q, want binary", proto)
	}

	// Disable home-a's binary wire: established sessions keep answering
	// until they expire; the next rekey is refused and the dialer
	// degrades to SOAP.
	a.SetBinaryWire(false)
	// Let the session lifetime lapse so the very next watch round meets
	// an expired session whose rekey is refused.
	time.Sleep(300 * time.Millisecond)

	// Register one more service in home-a; its delta completes the parked
	// watch round, and the round after it triggers the downgrade.
	export := func(id string) {
		t.Helper()
		desc := service.Description{
			ID: id, Name: id, Middleware: "test",
			Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
				{Name: "Where", Output: service.KindString},
			}},
		}
		inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
			return service.StringValue("late"), nil
		})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := a.Network("net").Gateway().Export(ctx, desc, inv); err != nil {
			t.Fatal(err)
		}
	}
	export("test:late")
	waitCallable(t, b, "home-a/test:late")

	deadline := time.Now().Add(15 * time.Second)
	proto, resyncs, importedAfter := linkProto()
	for proto != "soap" {
		if time.Now().After(deadline) {
			t.Fatalf("link proto after downgrade = %q, want soap", proto)
		}
		time.Sleep(20 * time.Millisecond)
		proto, resyncs, importedAfter = linkProto()
	}

	// Replication must keep flowing over the degraded wire, from the same
	// cursor: a service exported after the downgrade still arrives.
	export("test:later")
	waitCallable(t, b, "home-a/test:later")
	proto, resyncs, importedAfter = linkProto()
	if proto != "soap" {
		t.Fatalf("link proto after post-downgrade import = %q, want soap", proto)
	}
	if resyncs != 0 {
		t.Fatalf("downgrade cost %d resyncs; the watch cursor must survive", resyncs)
	}
	if importedAfter <= importedBefore {
		t.Fatalf("imports stalled across the downgrade: %d → %d", importedBefore, importedAfter)
	}
	// The link's wire stats recorded the story: at least one downgrade.
	found := false
	for _, ls := range b.WireStats() {
		if ls.Downgrades > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no downgrade recorded in %v", b.WireStats())
	}
}
