package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/service"
)

// nopPCM records lifecycle calls.
type nopPCM struct {
	started   bool
	stopped   bool
	failStart bool
}

func (p *nopPCM) Middleware() string { return "nop" }

func (p *nopPCM) Start(context.Context, *vsg.VSG) error {
	if p.failStart {
		return errors.New("boom")
	}
	p.started = true
	return nil
}

func (p *nopPCM) Stop() error {
	p.stopped = true
	return nil
}

var _ pcm.PCM = (*nopPCM)(nil)

func TestFederationLifecycle(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if fed.VSRURL() == "" {
		t.Fatal("no VSR URL")
	}

	n1, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddNetwork("a"); err == nil {
		t.Error("duplicate network accepted")
	}
	if fed.Network("a") != n1 {
		t.Error("Network lookup failed")
	}
	if fed.Network("zzz") != nil {
		t.Error("unknown network returned")
	}
	if _, err := fed.AddNetwork("b"); err != nil {
		t.Fatal(err)
	}
	names := fed.Networks()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Networks = %v", names)
	}

	p := &nopPCM{}
	ctx := context.Background()
	if err := n1.Attach(ctx, p); err != nil {
		t.Fatal(err)
	}
	if !p.started {
		t.Error("PCM not started")
	}
	bad := &nopPCM{failStart: true}
	if err := n1.Attach(ctx, bad); err == nil {
		t.Error("failing PCM attach accepted")
	}

	fed.Close()
	if !p.stopped {
		t.Error("PCM not stopped on Close")
	}
	// Close is idempotent; AddNetwork after Close fails.
	fed.Close()
	if _, err := fed.AddNetwork("c"); err == nil {
		t.Error("AddNetwork after Close accepted")
	}
}

func TestFederationCallRouting(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// No networks yet.
	if _, err := fed.Call(ctx, "x:y", "Op"); err == nil {
		t.Error("Call without networks accepted")
	}
	if _, err := fed.Services(ctx); err == nil {
		t.Error("Services without networks accepted")
	}

	n, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: "x:y", Name: "y", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue("pong"), nil
	})
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
	got, err := fed.Call(ctx, "x:y", "Ping")
	if err != nil || got.Str() != "pong" {
		t.Fatalf("Call = %v, %v", got, err)
	}
	services, err := fed.Services(ctx)
	if err != nil || len(services) != 1 {
		t.Fatalf("Services = %v, %v", services, err)
	}
}

func TestFederationSceneEngineLifecycle(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	n, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: "x:y", Name: "y", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue("pong"), nil
	})
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}

	// The engine is created once and sees existing networks as sources.
	eng := fed.Scenes()
	if eng == nil || fed.Scenes() != eng {
		t.Fatal("Scenes is not a stable accessor")
	}
	done := make(chan scene.Record, 4)
	eng.SetRunHook(func(r scene.Record) { done <- r })
	sc := &scene.Scene{
		Name:     "ping",
		Triggers: []scene.Trigger{{Topic: "test.go", Network: "a"}},
		Steps:    []scene.Step{{Kind: scene.StepCall, Name: "p", Service: "x:y", Op: "Ping"}},
	}
	if err := eng.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start("ping"); err != nil {
		t.Fatal(err)
	}
	// Networks added after the engine exists become sources too.
	if _, err := fed.AddNetwork("b"); err != nil {
		t.Fatal(err)
	}
	n.Gateway().Hub().Publish(service.Event{Source: "test", Topic: "test.go"})
	select {
	case rec := <-done:
		if rec.Outcome != scene.OutcomeCompleted || rec.Steps[0].Result.Str() != "pong" {
			t.Fatalf("run = %+v", rec)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scene never ran")
	}

	// Close is idempotent and tears the engine down first.
	fed.Close()
	fed.Close()
	if err := eng.Load(sc); err == nil {
		t.Error("scene engine usable after federation Close")
	}
}

// TestServiceRehomeCallableWithoutTTLWait: a service that moves from one
// gateway to another is callable through a third gateway as soon as the
// repository's change deltas land — with the caller's cache TTL set to an
// hour, only push invalidation can deliver the new endpoint, so success
// proves the move propagated by watch, not by waiting out a TTL (the old
// behaviour stranded callers for up to the full 2s cache TTL).
func TestServiceRehomeCallableWithoutTTLWait(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	nets := make([]*Network, 3)
	for i, name := range []string{"a", "b", "c"} {
		if nets[i], err = fed.AddNetwork(name); err != nil {
			t.Fatal(err)
		}
	}
	caller := nets[1].Gateway()
	// A TTL that can never rescue a stale entry within the test.
	caller.SetCacheTTL(time.Hour)

	desc := service.Description{
		ID: "x:mobile", Name: "mobile", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
		}},
	}
	home := func(where string) service.Invoker {
		return service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
			return service.StringValue(where), nil
		})
	}
	if err := nets[0].Gateway().Export(ctx, desc, home("a")); err != nil {
		t.Fatal(err)
	}
	got, err := fed.Network("b").Gateway().Call(ctx, "x:mobile", "Where", nil)
	if err != nil || got.Str() != "a" {
		t.Fatalf("call before move = %v, %v", got, err)
	}

	// The service moves: withdrawn from network a, exported on c.
	if err := nets[0].Gateway().Unexport(ctx, "x:mobile"); err != nil {
		t.Fatal(err)
	}
	if err := nets[2].Gateway().Export(ctx, desc, home("c")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		got, err := caller.Call(ctx, "x:mobile", "Where", nil)
		if err == nil && got.Str() == "c" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-homed service never callable: %v, %v", got, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Push propagation is milliseconds; anything approaching the old 2s
	// TTL wait means the watch path regressed. 1s leaves CI headroom.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("re-home took %v, want well under the old 2s TTL wait", elapsed)
	} else {
		t.Logf("re-homed service callable after %v", elapsed)
	}
}

func TestFederationScenesAfterClose(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddNetwork("a"); err != nil {
		t.Fatal(err)
	}
	// The engine is first requested only after the federation is gone:
	// it must come back already closed, not armable.
	fed.Close()
	eng := fed.Scenes()
	sc := &scene.Scene{
		Name:  "late",
		Steps: []scene.Step{{Kind: scene.StepCall, Service: "x:y", Op: "Ping"}},
	}
	if err := eng.Load(sc); err == nil {
		t.Error("post-Close engine accepted a scene")
	}
}
