package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"homeconnect/internal/core/pcm"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/scene"
	"homeconnect/internal/core/vsg"
	"homeconnect/internal/service"
)

// nopPCM records lifecycle calls.
type nopPCM struct {
	started   bool
	stopped   bool
	failStart bool
}

func (p *nopPCM) Middleware() string { return "nop" }

func (p *nopPCM) Start(context.Context, *vsg.VSG) error {
	if p.failStart {
		return errors.New("boom")
	}
	p.started = true
	return nil
}

func (p *nopPCM) Stop() error {
	p.stopped = true
	return nil
}

var _ pcm.PCM = (*nopPCM)(nil)

func TestFederationLifecycle(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if fed.VSRURL() == "" {
		t.Fatal("no VSR URL")
	}

	n1, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddNetwork("a"); err == nil {
		t.Error("duplicate network accepted")
	}
	if fed.Network("a") != n1 {
		t.Error("Network lookup failed")
	}
	if fed.Network("zzz") != nil {
		t.Error("unknown network returned")
	}
	if _, err := fed.AddNetwork("b"); err != nil {
		t.Fatal(err)
	}
	names := fed.Networks()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Networks = %v", names)
	}

	p := &nopPCM{}
	ctx := context.Background()
	if err := n1.Attach(ctx, p); err != nil {
		t.Fatal(err)
	}
	if !p.started {
		t.Error("PCM not started")
	}
	bad := &nopPCM{failStart: true}
	if err := n1.Attach(ctx, bad); err == nil {
		t.Error("failing PCM attach accepted")
	}

	fed.Close()
	if !p.stopped {
		t.Error("PCM not stopped on Close")
	}
	// Close is idempotent; AddNetwork after Close fails.
	fed.Close()
	if _, err := fed.AddNetwork("c"); err == nil {
		t.Error("AddNetwork after Close accepted")
	}
}

func TestFederationCallRouting(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// No networks yet.
	if _, err := fed.Call(ctx, "x:y", "Op"); err == nil {
		t.Error("Call without networks accepted")
	}
	if _, err := fed.Services(ctx); err == nil {
		t.Error("Services without networks accepted")
	}

	n, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: "x:y", Name: "y", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue("pong"), nil
	})
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
	got, err := fed.Call(ctx, "x:y", "Ping")
	if err != nil || got.Str() != "pong" {
		t.Fatalf("Call = %v, %v", got, err)
	}
	services, err := fed.Services(ctx)
	if err != nil || len(services) != 1 {
		t.Fatalf("Services = %v, %v", services, err)
	}
}

func TestFederationSceneEngineLifecycle(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	n, err := fed.AddNetwork("a")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: "x:y", Name: "y", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue("pong"), nil
	})
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}

	// The engine is created once and sees existing networks as sources.
	eng := fed.Scenes()
	if eng == nil || fed.Scenes() != eng {
		t.Fatal("Scenes is not a stable accessor")
	}
	done := make(chan scene.Record, 4)
	eng.SetRunHook(func(r scene.Record) { done <- r })
	sc := &scene.Scene{
		Name:     "ping",
		Triggers: []scene.Trigger{{Topic: "test.go", Network: "a"}},
		Steps:    []scene.Step{{Kind: scene.StepCall, Name: "p", Service: "x:y", Op: "Ping"}},
	}
	if err := eng.Load(sc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start("ping"); err != nil {
		t.Fatal(err)
	}
	// Networks added after the engine exists become sources too.
	if _, err := fed.AddNetwork("b"); err != nil {
		t.Fatal(err)
	}
	n.Gateway().Hub().Publish(service.Event{Source: "test", Topic: "test.go"})
	select {
	case rec := <-done:
		if rec.Outcome != scene.OutcomeCompleted || rec.Steps[0].Result.Str() != "pong" {
			t.Fatalf("run = %+v", rec)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scene never ran")
	}

	// Close is idempotent and tears the engine down first.
	fed.Close()
	fed.Close()
	if err := eng.Load(sc); err == nil {
		t.Error("scene engine usable after federation Close")
	}
}

// TestServiceRehomeCallableWithoutTTLWait: a service that moves from one
// gateway to another is callable through a third gateway as soon as the
// repository's change deltas land — with the caller's cache TTL set to an
// hour, only push invalidation can deliver the new endpoint, so success
// proves the move propagated by watch, not by waiting out a TTL (the old
// behaviour stranded callers for up to the full 2s cache TTL).
func TestServiceRehomeCallableWithoutTTLWait(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	nets := make([]*Network, 3)
	for i, name := range []string{"a", "b", "c"} {
		if nets[i], err = fed.AddNetwork(name); err != nil {
			t.Fatal(err)
		}
	}
	caller := nets[1].Gateway()
	// A TTL that can never rescue a stale entry within the test.
	caller.SetCacheTTL(time.Hour)

	desc := service.Description{
		ID: "x:mobile", Name: "mobile", Middleware: "x",
		Interface: service.Interface{Name: "I", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
		}},
	}
	home := func(where string) service.Invoker {
		return service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
			return service.StringValue(where), nil
		})
	}
	if err := nets[0].Gateway().Export(ctx, desc, home("a")); err != nil {
		t.Fatal(err)
	}
	got, err := fed.Network("b").Gateway().Call(ctx, "x:mobile", "Where", nil)
	if err != nil || got.Str() != "a" {
		t.Fatalf("call before move = %v, %v", got, err)
	}

	// The service moves: withdrawn from network a, exported on c.
	if err := nets[0].Gateway().Unexport(ctx, "x:mobile"); err != nil {
		t.Fatal(err)
	}
	if err := nets[2].Gateway().Export(ctx, desc, home("c")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		got, err := caller.Call(ctx, "x:mobile", "Where", nil)
		if err == nil && got.Str() == "c" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-homed service never callable: %v, %v", got, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Push propagation is milliseconds; anything approaching the old 2s
	// TTL wait means the watch path regressed. 1s leaves CI headroom.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("re-home took %v, want well under the old 2s TTL wait", elapsed)
	} else {
		t.Logf("re-homed service callable after %v", elapsed)
	}
}

func TestFederationScenesAfterClose(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddNetwork("a"); err != nil {
		t.Fatal(err)
	}
	// The engine is first requested only after the federation is gone:
	// it must come back already closed, not armable.
	fed.Close()
	eng := fed.Scenes()
	sc := &scene.Scene{
		Name:  "late",
		Steps: []scene.Step{{Kind: scene.StepCall, Service: "x:y", Op: "Ping"}},
	}
	if err := eng.Load(sc); err == nil {
		t.Error("post-Close engine accepted a scene")
	}
}

// newHomeFed builds a named home federation with one network and one
// exported echo service answering with its home name.
func newHomeFed(t *testing.T, home, svcID string) *Federation {
	t.Helper()
	fed, err := NewHomeFederation(home)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	n, err := fed.AddNetwork("net")
	if err != nil {
		t.Fatal(err)
	}
	desc := service.Description{
		ID: svcID, Name: svcID, Middleware: "test",
		Interface: service.Interface{Name: "Echo", Operations: []service.Operation{
			{Name: "Where", Output: service.KindString},
		}},
	}
	inv := service.InvokerFunc(func(context.Context, string, []service.Value) (service.Value, error) {
		return service.StringValue(home), nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.Gateway().Export(ctx, desc, inv); err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestFederationPeerRequiresHome(t *testing.T) {
	fed, err := NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.Peer("http://127.0.0.1:1/peer"); err == nil {
		t.Error("Peer on an unnamed home accepted")
	}
}

// TestFederationCrossHomeCall: a service registered in home A becomes
// callable from home B through B's own gateway, addressed by its scoped
// ID, with the call travelling the wire to A's gateway.
func TestFederationCrossHomeCall(t *testing.T) {
	a := newHomeFed(t, "home-a", "test:svc")
	b := newHomeFed(t, "home-b", "test:other")
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var got service.Value
	var err error
	for {
		got, err = b.Call(ctx, "home-a/test:svc", "Where")
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("cross-home call never succeeded: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if got.Str() != "home-a" {
		t.Fatalf("cross-home call answered %q, want home-a", got.Str())
	}
	// The callee gateway counted a wire call, not a loopback dispatch.
	_, _, loop := b.Network("net").Gateway().Stats()
	if loop != 0 {
		t.Errorf("cross-home call used loopback (%d)", loop)
	}
	st := b.PeerStatus()
	if len(st) != 1 {
		t.Fatalf("PeerStatus = %v, want one link", st)
	}
	for _, s := range st {
		if !s.Connected || s.RemoteHome != "home-a" {
			t.Errorf("link status = %+v, want connected to home-a", s)
		}
	}
}

func TestFederationExportPolicy(t *testing.T) {
	a := newHomeFed(t, "home-a", "test:svc")
	if err := a.SetExportPolicy(peer.Policy{Deny: []string{"test:*"}}); err != nil {
		t.Fatal(err)
	}
	b := newHomeFed(t, "home-b", "test:other")
	if err := b.Peer(a.PeerURL()); err != nil {
		t.Fatal(err)
	}
	// Wait for the link to connect and sync, then confirm the denied
	// service never arrived.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := false
		for _, s := range b.PeerStatus() {
			if s.Connected && !s.LastSync.IsZero() {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer link never synced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Call(ctx, "home-a/test:svc", "Where"); err == nil {
		t.Error("policy-denied service callable from peer")
	}
}
