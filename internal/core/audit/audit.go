// Package audit is the federation's tamper-evident audit plane: a
// structured, append-only log of every cross-boundary decision the
// framework makes — peer links coming up or down, watch streams
// degrading, calls admitted across the home boundary, ACL and
// export-policy denials, authentication refusals and replay rejections,
// service re-homes and registration expiries.
//
// Integrity is layered. Every record carries a chaining hash
// (SHA-256 over the previous record's hash plus a canonical encoding of
// this record), so modifying or dropping any record breaks the chain
// from that point on. Every BatchSize records the log additionally
// seals a Merkle root over the batch's record hashes, so verification
// can name the offending batch rather than just "somewhere after seq
// N", and an operator can note down one short root per batch as an
// external anchor. Verify replays the persisted log (or the in-memory
// window) and recomputes both layers; a single flipped bit, a dropped
// record, or a truncation inside sealed history fails verification with
// the batch that no longer checks out.
//
// The log is designed to sit off the data plane: recording is a
// mutex-guarded hash and ring append (zero steady-state allocations
// without persistence — BenchmarkAuditAppend holds this), a nil
// *Log or nil Recorder records nothing, and disk errors degrade to an
// error surfaced via Stats instead of failing the operation that
// emitted the event.
package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"
)

// Type classifies one audited decision.
type Type string

// The audited decision points. Each names the boundary event that
// produced it; Pattern and Detail on the Event carry the specifics.
const (
	// PeerConnect: an import link to a peer home came up (mutually
	// authenticated when the homes have identities).
	PeerConnect Type = "peer.connect"
	// PeerDisconnect: an import link went down; Detail carries the cause
	// (including authentication refusals from either side).
	PeerDisconnect Type = "peer.disconnect"
	// WatchUp / WatchDown / WatchResync: a gateway's repository change
	// stream (the push-invalidation substrate) changed state.
	WatchUp     Type = "watch.up"
	WatchDown   Type = "watch.down"
	WatchResync Type = "watch.resync"
	// CallAdmit: an inbound call cleared the home-boundary checks and was
	// dispatched to a local service.
	CallAdmit Type = "call.admit"
	// PolicyDeny: the export policy or service ACL refused a caller;
	// Pattern names the deny pattern/rule that fired ("" when the refusal
	// was an allow list that nothing matched).
	PolicyDeny Type = "policy.deny"
	// AuthRefused: a request carried no credentials, an untrusted
	// identity, or a signature that did not verify.
	AuthRefused Type = "auth.refused"
	// ReplayRejected: a correctly signed request was rejected for a
	// replayed nonce or a timestamp outside the skew window.
	ReplayRejected Type = "auth.replay"
	// ReHome: a registered service moved to a new gateway endpoint.
	ReHome Type = "service.rehome"
	// Expire: a registration's TTL lapsed (its gateway went silent).
	Expire Type = "service.expire"
	// RegistryRecovered: the repository restarted from an unclean
	// shutdown and rebuilt its state from snapshot + WAL replay; Detail
	// carries the recovered entry/record counts and any torn-tail repair.
	RegistryRecovered Type = "registry.recovered"
	// RegistryShutdown: the repository closed cleanly — WAL flushed and
	// marked, so the next boot skips tail-scan recovery.
	RegistryShutdown Type = "registry.shutdown"
	// SessionEstablish: a signed handshake established (or renewed) a
	// binary fast-path HMAC session with a peer home; Detail carries the
	// session ID and lifetime.
	SessionEstablish Type = "session.establish"
	// SessionExpire: a session ended without renewal — its connection
	// closed or its lifetime lapsed unused.
	SessionExpire Type = "session.expire"
	// SessionRekey: a session reached its lifetime bound and was
	// replaced in place by a fresh handshake on the same link.
	SessionRekey Type = "session.rekey"
	// ReplicaAttach: this node attached (or re-attached) to a leader's
	// replication feed; Detail carries the leader, the sequence number
	// the state transfer grounded at, and the epoch.
	ReplicaAttach Type = "replica.attach"
	// ReplicaPromote: this node took over as replication leader; Detail
	// carries the new epoch and the sequence number it was elected at.
	ReplicaPromote Type = "replica.promote"
)

// Event is one audited decision, as emitted by an instrumented
// component. The log stamps it into a Record.
type Event struct {
	// Type classifies the decision.
	Type Type `json:"type"`
	// Face names the emitting component ("vsr", "vsg:havi-net", "peer",
	// "auth"), stamped by WithFace at wiring time.
	Face string `json:"face,omitempty"`
	// Home is the home that recorded the event (the decider, not the
	// subject).
	Home string `json:"home,omitempty"`
	// Caller is the remote principal the decision was about, when there
	// is one ("" for open-mode callers and component-local events).
	Caller string `json:"caller,omitempty"`
	// Service is the federation service ID involved, if any.
	Service string `json:"service,omitempty"`
	// Op is the invoked operation (call events).
	Op string `json:"op,omitempty"`
	// Pattern is the policy/ACL pattern that decided a denial.
	Pattern string `json:"pattern,omitempty"`
	// Detail carries free-form specifics (error text, old→new endpoint).
	Detail string `json:"detail,omitempty"`
}

// Record is one sealed audit log entry.
type Record struct {
	// Seq numbers records from 1, with no gaps.
	Seq uint64 `json:"seq"`
	// TimeMS is the record's wall-clock timestamp in Unix milliseconds.
	TimeMS int64 `json:"t"`
	Event
	// Hash is the hex chaining hash: SHA-256 over the previous record's
	// hash followed by this record's canonical encoding.
	Hash string `json:"hash"`
}

// Time returns the record's timestamp.
func (r Record) Time() time.Time { return time.UnixMilli(r.TimeMS) }

// Root is one sealed Merkle batch: the root over BatchSize consecutive
// record hashes.
type Root struct {
	// Batch is the zero-based batch index.
	Batch int `json:"batch"`
	// FirstSeq and LastSeq delimit the records the root covers.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Root is the hex Merkle root over the batch's record hashes.
	Root string `json:"root"`
}

// Recorder accepts audit events. Components hold a Recorder, not the
// Log, so tests can capture events and wiring can stamp faces; a nil
// Recorder interface held by an instrumented component means auditing
// is off there and must cost nothing.
type Recorder interface {
	Record(Event)
}

// WithFace wraps a recorder so every event it records carries the given
// face and home (unless the event already set them). A nil recorder
// stays nil, so wiring can pass the result around without nil checks of
// its own.
func WithFace(r Recorder, face, home string) Recorder {
	if r == nil {
		return nil
	}
	return facedRecorder{r: r, face: face, home: home}
}

type facedRecorder struct {
	r    Recorder
	face string
	home string
}

func (f facedRecorder) Record(ev Event) {
	if ev.Face == "" {
		ev.Face = f.face
	}
	if ev.Home == "" {
		ev.Home = f.home
	}
	f.r.Record(ev)
}

// Func adapts a function to the Recorder interface (tests).
type Func func(Event)

// Record implements Recorder.
func (f Func) Record(ev Event) { f(ev) }

// Defaults for Options fields left zero.
const (
	// DefaultBatchSize is the Merkle batch size: how many records each
	// sealed root covers.
	DefaultBatchSize = 64
	// DefaultRingSize bounds the in-memory query window.
	DefaultRingSize = 1024
)

// Options configures a Log.
type Options struct {
	// Path, when non-empty, appends every record (and every sealed root)
	// to this file as JSON lines; Verify replays it. Empty keeps the log
	// in memory only.
	Path string
	// BatchSize is the Merkle batch size (DefaultBatchSize when zero).
	BatchSize int
	// RingSize bounds the in-memory record window served to queries
	// (DefaultRingSize when zero). The hash chain and roots cover every
	// record ever logged regardless of the ring bound.
	RingSize int
}

// Log is the append-only audit log. A nil *Log is a valid no-op
// recorder, so components can hold one unconditionally.
type Log struct {
	path  string
	batch int

	mu   sync.Mutex
	seq  uint64
	prev [sha256.Size]byte // chaining hash of the newest record

	// ring is the bounded in-memory window: a circular buffer of the
	// most recent records. head is the index of the oldest element once
	// the ring has wrapped (count == len(ring)).
	ring  []Record
	head  int
	count int
	// ringPrev is the chaining hash of the record just before the oldest
	// ring entry, so the in-memory window stays verifiable after
	// eviction.
	ringPrev [sha256.Size]byte

	// pending holds the current (unsealed) batch's record hashes.
	pending      [][sha256.Size]byte
	pendingFirst uint64
	roots        []Root

	// scratch is the reused canonical-encoding buffer; holding it in the
	// log keeps steady-state recording allocation-free.
	scratch []byte

	f        *os.File
	w        *bufio.Writer
	writeErr string

	nowFn func() time.Time
}

// New opens an audit log. With a Path, records append to the file; an
// existing file is first replayed (and verified) so the chain, sequence
// numbers and roots continue across restarts.
func New(opts Options) (*Log, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	l := &Log{
		path:    opts.Path,
		batch:   opts.BatchSize,
		ring:    make([]Record, opts.RingSize),
		pending: make([][sha256.Size]byte, 0, opts.BatchSize),
		// Sized so a typical record encodes without growing; growth would
		// read as cold-start allocations in the gated append benchmark.
		scratch: make([]byte, 0, 1024),
		nowFn:   time.Now,
	}
	if opts.Path != "" {
		if err := l.reopen(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// reopen replays an existing log file into the in-memory state and
// opens it for appending. The replay is a full verification: a tampered
// file refuses to continue rather than chaining new records onto a
// broken history.
func (l *Log) reopen() error {
	st, err := replayFile(l.path, l.batch, func(r Record) {
		l.appendRing(r)
	})
	if err != nil {
		if os.IsNotExist(err) {
			st = replayState{}
		} else {
			return fmt.Errorf("audit: replay %s: %w", l.path, err)
		}
	}
	l.seq = st.seq
	l.prev = st.prev
	l.pending = append(l.pending[:0], st.pending...)
	l.pendingFirst = st.pendingFirst
	l.roots = st.roots
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("audit: open %s: %w", l.path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return nil
}

// canonical appends the record's canonical encoding to buf: a version
// tag and every field in fixed order, each quoted so no field content
// can masquerade as a field boundary.
func canonical(buf []byte, r Record) []byte {
	buf = append(buf, "homeconnect.audit.v1\n"...)
	buf = strconv.AppendUint(buf, r.Seq, 10)
	buf = append(buf, '\n')
	buf = strconv.AppendInt(buf, r.TimeMS, 10)
	for _, s := range [...]string{
		string(r.Type), r.Face, r.Home, r.Caller, r.Service, r.Op, r.Pattern, r.Detail,
	} {
		buf = append(buf, '\n')
		buf = strconv.AppendQuote(buf, s)
	}
	return buf
}

// chainHash computes a record's chaining hash from its predecessor's.
func chainHash(prev [sha256.Size]byte, enc []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(enc)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds a batch of record hashes into one root: leaves are
// the chaining hashes; odd nodes promote. A single leaf is its own
// root.
func merkleRoot(leaves [][sha256.Size]byte) [sha256.Size]byte {
	if len(leaves) == 0 {
		return [sha256.Size]byte{}
	}
	level := make([][sha256.Size]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var out [sha256.Size]byte
			h.Sum(out[:0])
			next = append(next, out)
		}
		level = next
	}
	return level[0]
}

// Record appends one event to the log. It implements Recorder and is
// safe for concurrent use; on a nil log it is a no-op.
func (l *Log) Record(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec := Record{Seq: l.seq, TimeMS: l.nowFn().UnixMilli(), Event: ev}
	l.scratch = canonical(l.scratch[:0], rec)
	sum := chainHash(l.prev, l.scratch)
	l.prev = sum
	rec.Hash = hex.EncodeToString(sum[:])
	l.appendRing(rec)
	if len(l.pending) == 0 {
		l.pendingFirst = rec.Seq
	}
	l.pending = append(l.pending, sum)
	l.persistRecord(rec)
	if len(l.pending) >= l.batch {
		root := Root{
			Batch:    len(l.roots),
			FirstSeq: l.pendingFirst,
			LastSeq:  rec.Seq,
		}
		sum := merkleRoot(l.pending)
		root.Root = hex.EncodeToString(sum[:])
		l.roots = append(l.roots, root)
		l.pending = l.pending[:0]
		l.persistRoot(root)
	}
}

// appendRing adds a record to the bounded in-memory window, remembering
// the chaining hash of whatever it evicts.
func (l *Log) appendRing(r Record) {
	if l.count == len(l.ring) {
		evicted := l.ring[l.head]
		if sum, err := hex.DecodeString(evicted.Hash); err == nil && len(sum) == sha256.Size {
			copy(l.ringPrev[:], sum)
		}
		l.ring[l.head] = r
		l.head = (l.head + 1) % len(l.ring)
		return
	}
	l.ring[(l.head+l.count)%len(l.ring)] = r
	l.count++
}

// line is the persisted JSONL envelope: exactly one of Record and Root
// per line.
type line struct {
	Record *Record `json:"record,omitempty"`
	Root   *Root   `json:"root,omitempty"`
}

func (l *Log) persistRecord(r Record) {
	if l.w == nil {
		return
	}
	l.writeLine(line{Record: &r})
}

func (l *Log) persistRoot(root Root) {
	if l.w == nil {
		return
	}
	l.writeLine(line{Root: &root})
}

// writeLine appends one JSON line, flushing so a crash loses at most
// the write in flight. Disk failure must not take down the data plane:
// the error is surfaced via Stats and the log keeps running in memory.
func (l *Log) writeLine(ln line) {
	data, err := json.Marshal(ln)
	if err == nil {
		_, err = l.w.Write(append(data, '\n'))
		if err == nil {
			err = l.w.Flush()
		}
	}
	if err != nil {
		l.writeErr = err.Error()
	}
}

// Seq returns the sequence number of the newest record.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Tail returns up to n of the most recent records, oldest first. A
// non-empty typ filters to that event type (still at most n results,
// scanned over the in-memory window).
func (l *Log) Tail(n int, typ Type) []Record {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, min(n, l.count))
	// Walk newest → oldest collecting matches, then reverse.
	for i := l.count - 1; i >= 0 && len(out) < n; i-- {
		r := l.ring[(l.head+i)%len(l.ring)]
		if typ != "" && r.Type != typ {
			continue
		}
		out = append(out, r)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Roots returns every sealed Merkle root, oldest first.
func (l *Log) Roots() []Root {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Root(nil), l.roots...)
}

// Stats summarizes the log for health surfaces.
type Stats struct {
	// Seq is the newest record's sequence number (the record count).
	Seq uint64 `json:"seq"`
	// Window is how many records the in-memory query window holds.
	Window int `json:"window"`
	// Batches counts sealed Merkle roots.
	Batches int `json:"batches"`
	// BatchSize is the Merkle batch size.
	BatchSize int `json:"batch_size"`
	// LastRoot is the newest sealed root (hex), the value an operator
	// would anchor externally.
	LastRoot string `json:"last_root,omitempty"`
	// Path is the persistence file ("" for memory-only logs).
	Path string `json:"path,omitempty"`
	// WriteError is the most recent persistence failure, if any: the log
	// keeps recording in memory but the file is no longer complete.
	WriteError string `json:"write_error,omitempty"`
}

// Stats returns a snapshot summary.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Seq:        l.seq,
		Window:     l.count,
		Batches:    len(l.roots),
		BatchSize:  l.batch,
		Path:       l.path,
		WriteError: l.writeErr,
	}
	if len(l.roots) > 0 {
		st.LastRoot = l.roots[len(l.roots)-1].Root
	}
	return st
}

// Close flushes and closes the persistence file, if any.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		_ = l.w.Flush()
		l.w = nil
	}
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}
