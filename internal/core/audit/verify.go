// Verification: replay a persisted audit log (or the in-memory window)
// and recompute both integrity layers — the per-record hash chain and
// the per-batch Merkle roots. Any bit flip, dropped record, reordering
// or truncation inside sealed history fails with the offending batch.
package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// VerifyError reports where verification failed.
type VerifyError struct {
	// Batch is the zero-based Merkle batch the failure lies in (computed
	// from the failing record's position when no sealed root reached it).
	Batch int
	// Seq is the sequence number of the record at fault, 0 when the
	// failure is structural (a bad root line, a truncated file).
	Seq uint64
	// Reason describes the mismatch.
	Reason string
}

// Error implements error.
func (e *VerifyError) Error() string {
	if e.Seq != 0 {
		return fmt.Sprintf("audit: verify failed at batch %d (record seq %d): %s", e.Batch, e.Seq, e.Reason)
	}
	return fmt.Sprintf("audit: verify failed at batch %d: %s", e.Batch, e.Reason)
}

// Result summarizes a successful verification.
type Result struct {
	// Records is how many records the chain covered.
	Records uint64 `json:"records"`
	// Batches is how many sealed Merkle roots checked out.
	Batches int `json:"batches"`
	// Unsealed counts trailing records not yet covered by a root (they
	// are chain-protected, and seal into the next batch).
	Unsealed int `json:"unsealed"`
}

// replayState is what a verified replay leaves behind: the chain tip
// and the unsealed tail, so a reopened log continues where the file
// ends.
type replayState struct {
	seq          uint64
	prev         [sha256.Size]byte
	pending      [][sha256.Size]byte
	pendingFirst uint64
	roots        []Root
}

// replayFile walks a persisted log, verifying as it goes; each verified
// record is handed to visit (which may be nil).
func replayFile(path string, batch int, visit func(Record)) (replayState, error) {
	f, err := os.Open(path)
	if err != nil {
		return replayState{}, err
	}
	defer f.Close()

	var st replayState
	var scratch []byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	batchOf := func(seq uint64) int {
		if seq == 0 {
			return len(st.roots)
		}
		return int((seq - 1) / uint64(batch))
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln line
		if err := json.Unmarshal(raw, &ln); err != nil {
			return st, &VerifyError{Batch: batchOf(st.seq + 1), Seq: st.seq + 1,
				Reason: fmt.Sprintf("line %d is not valid audit JSON: %v", lineNo, err)}
		}
		switch {
		case ln.Record != nil:
			r := *ln.Record
			if r.Seq != st.seq+1 {
				return st, &VerifyError{Batch: batchOf(st.seq + 1), Seq: r.Seq,
					Reason: fmt.Sprintf("sequence gap: want %d, file has %d (a record was dropped or reordered)", st.seq+1, r.Seq)}
			}
			scratch = canonical(scratch[:0], r)
			sum := chainHash(st.prev, scratch)
			if hex.EncodeToString(sum[:]) != r.Hash {
				return st, &VerifyError{Batch: batchOf(r.Seq), Seq: r.Seq,
					Reason: "chain hash mismatch (record content or an earlier record was altered)"}
			}
			st.prev = sum
			st.seq = r.Seq
			if len(st.pending) == 0 {
				st.pendingFirst = r.Seq
			}
			st.pending = append(st.pending, sum)
			if visit != nil {
				visit(r)
			}
		case ln.Root != nil:
			root := *ln.Root
			if root.Batch != len(st.roots) {
				return st, &VerifyError{Batch: len(st.roots),
					Reason: fmt.Sprintf("root for batch %d where batch %d was due (a batch was dropped)", root.Batch, len(st.roots))}
			}
			if len(st.pending) != batch {
				return st, &VerifyError{Batch: root.Batch,
					Reason: fmt.Sprintf("root sealed over %d records, batch size is %d (records were dropped, or the file was written with a different -audit-batch)", len(st.pending), batch)}
			}
			if root.FirstSeq != st.pendingFirst || root.LastSeq != st.seq {
				return st, &VerifyError{Batch: root.Batch,
					Reason: fmt.Sprintf("root covers seq %d–%d, records are %d–%d", root.FirstSeq, root.LastSeq, st.pendingFirst, st.seq)}
			}
			sum := merkleRoot(st.pending)
			if hex.EncodeToString(sum[:]) != root.Root {
				return st, &VerifyError{Batch: root.Batch,
					Reason: "merkle root mismatch (a record in this batch was altered)"}
			}
			st.roots = append(st.roots, root)
			st.pending = st.pending[:0]
		default:
			return st, &VerifyError{Batch: batchOf(st.seq), Seq: st.seq,
				Reason: fmt.Sprintf("line %d is neither a record nor a root", lineNo)}
		}
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("audit: read %s: %w", path, err)
	}
	if len(st.pending) >= batch {
		// Enough records for a root, but the root line never came: the
		// file was cut mid-write or its tail was removed.
		return st, &VerifyError{Batch: len(st.roots),
			Reason: fmt.Sprintf("batch %d is complete but its root is missing (file truncated?)", len(st.roots))}
	}
	return st, nil
}

// VerifyFile replays a persisted audit log on its own — no live Log
// required — and reports what checked out. batch must match the
// BatchSize the file was written with (0 = DefaultBatchSize).
func VerifyFile(path string, batch int) (Result, error) {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	st, err := replayFile(path, batch, nil)
	if err != nil {
		return Result{}, err
	}
	return Result{Records: st.seq, Batches: len(st.roots), Unsealed: len(st.pending)}, nil
}

// Verify checks the log's integrity. With persistence it replays the
// file and additionally requires the file to reach the live chain tip —
// a truncation that removed sealed batches (which an offline VerifyFile
// of the shortened file cannot see) fails here, naming the first batch
// the file no longer covers. Memory-only logs verify the in-memory
// window against the chain.
func (l *Log) Verify() (Result, error) {
	if l == nil {
		return Result{}, nil
	}
	l.mu.Lock()
	path := l.path
	batch := l.batch
	seq := l.seq
	roots := len(l.roots)
	if l.w != nil {
		_ = l.w.Flush()
	}
	l.mu.Unlock()

	if path == "" {
		return l.verifyMemory()
	}
	st, err := replayFile(path, batch, nil)
	if err != nil {
		return Result{}, err
	}
	if st.seq != seq || len(st.roots) != roots {
		return Result{}, &VerifyError{Batch: len(st.roots),
			Reason: fmt.Sprintf("file ends at seq %d with %d sealed batches; the live log has seq %d with %d (file truncated or diverged)",
				st.seq, len(st.roots), seq, roots)}
	}
	return Result{Records: st.seq, Batches: len(st.roots), Unsealed: len(st.pending)}, nil
}

// verifyMemory re-walks the in-memory window: the chain from the last
// evicted record's hash through every resident record, and every sealed
// root whose records are still fully resident.
func (l *Log) verifyMemory() (Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.ringPrev
	var scratch []byte
	hashes := make(map[uint64][sha256.Size]byte, l.count)
	firstSeq := uint64(0)
	for i := 0; i < l.count; i++ {
		r := l.ring[(l.head+i)%len(l.ring)]
		if firstSeq == 0 {
			firstSeq = r.Seq
		}
		scratch = canonical(scratch[:0], r)
		sum := chainHash(prev, scratch)
		if hex.EncodeToString(sum[:]) != r.Hash {
			return Result{}, &VerifyError{Batch: int((r.Seq - 1) / uint64(l.batch)), Seq: r.Seq,
				Reason: "chain hash mismatch in the in-memory window"}
		}
		prev = sum
		hashes[r.Seq] = sum
	}
	checked := 0
	for _, root := range l.roots {
		if root.FirstSeq < firstSeq {
			continue // batch partially evicted; not re-checkable
		}
		leaves := make([][sha256.Size]byte, 0, l.batch)
		for s := root.FirstSeq; s <= root.LastSeq; s++ {
			leaves = append(leaves, hashes[s])
		}
		sum := merkleRoot(leaves)
		if hex.EncodeToString(sum[:]) != root.Root {
			return Result{}, &VerifyError{Batch: root.Batch,
				Reason: "merkle root mismatch in the in-memory window"}
		}
		checked++
	}
	return Result{Records: l.seq, Batches: checked, Unsealed: len(l.pending)}, nil
}
