package audit

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fill records n events into l with deterministic content.
func fill(t *testing.T, l *Log, n int) {
	t.Helper()
	l.nowFn = func() time.Time { return time.UnixMilli(1_700_000_000_000) }
	for i := 1; i <= n; i++ {
		l.Record(Event{
			Type:    PolicyDeny,
			Face:    "vsr",
			Home:    "home-a",
			Caller:  "home-b",
			Service: fmt.Sprintf("home-a/svc-%d", i),
			Pattern: "deny=*",
			Detail:  fmt.Sprintf("event-%d", i),
		})
	}
}

// persisted builds a log file with 10 records at batch size 4 (two
// sealed batches, two unsealed records), closes it, and returns the
// path.
func persisted(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := New(Options{Path: path, BatchSize: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fill(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// wantBatch asserts err is a VerifyError naming the given batch.
func wantBatch(t *testing.T, err error, batch int) {
	t.Helper()
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VerifyError, got %v", err)
	}
	if ve.Batch != batch {
		t.Fatalf("want offending batch %d, got %d (%v)", batch, ve.Batch, ve)
	}
}

func TestChainAndRoots(t *testing.T) {
	path := persisted(t)
	res, err := VerifyFile(path, 4)
	if err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}
	if res.Records != 10 || res.Batches != 2 || res.Unsealed != 2 {
		t.Fatalf("want 10 records / 2 batches / 2 unsealed, got %+v", res)
	}
}

func TestVerifyDetectsFlippedByte(t *testing.T) {
	path := persisted(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 6 lives in batch 1 (records 5–8). Flip one byte of its
	// detail field.
	tampered := bytes.Replace(data, []byte("event-6"), []byte("event-X"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyFile(path, 4)
	wantBatch(t, err, 1)
}

func TestVerifyDetectsDroppedRecord(t *testing.T) {
	path := persisted(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, ln := range strings.Split(string(data), "\n") {
		if strings.Contains(ln, "event-6") {
			continue
		}
		kept = append(kept, ln)
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyFile(path, 4)
	wantBatch(t, err, 1)
}

func TestVerifyDetectsMidBatchTruncation(t *testing.T) {
	path := persisted(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file just before batch 1's root line: its four records are
	// all present, so offline replay sees a complete batch with no seal.
	i := bytes.Index(data, []byte(`{"root":{"batch":1`))
	if i < 0 {
		t.Fatal("root line for batch 1 not found")
	}
	if err := os.WriteFile(path, data[:i], 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyFile(path, 4)
	wantBatch(t, err, 1)
}

func TestOnlineVerifyDetectsTailTruncation(t *testing.T) {
	// Dropping unsealed tail records is invisible to an offline
	// VerifyFile of the shortened file — the live log must catch it.
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := New(Options{Path: path, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 10)
	if _, err := l.Verify(); err != nil {
		t.Fatalf("pre-tamper Verify: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the final line (record 10, unsealed).
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n')
	if err := os.Truncate(path, int64(cut+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(path, 4); err != nil {
		t.Fatalf("offline verify of the shortened file should pass (that is the point): %v", err)
	}
	_, err = l.Verify()
	wantBatch(t, err, 2)
}

func TestReopenContinuesChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := New(Options{Path: path, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := New(Options{Path: path, BatchSize: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != 6 {
		t.Fatalf("reopened seq = %d, want 6", got)
	}
	fill(t, l2, 4) // seq 7–10, sealing batch 1 at seq 8
	res, err := l2.Verify()
	if err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
	if res.Records != 10 || res.Batches != 2 {
		t.Fatalf("want 10 records / 2 batches after reopen, got %+v", res)
	}
	if tail := l2.Tail(100, ""); len(tail) != 10 || tail[0].Seq != 1 || tail[9].Seq != 10 {
		t.Fatalf("reopened ring window wrong: %d records", len(tail))
	}
}

func TestReopenRefusesTamperedFile(t *testing.T) {
	path := persisted(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("event-2"), []byte("event-Z"), 1)
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Path: path, BatchSize: 4}); err == nil {
		t.Fatal("New should refuse to append to a tampered log")
	}
}

func TestMemoryVerifyAndRingEviction(t *testing.T) {
	l, err := New(Options{BatchSize: 4, RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 20) // ring holds 13–20; batches 0–4 sealed, 1–2 evicted
	res, err := l.Verify()
	if err != nil {
		t.Fatalf("memory Verify: %v", err)
	}
	if res.Records != 20 {
		t.Fatalf("records = %d, want 20", res.Records)
	}
	// Batches 3 (13–16) and 4 (17–20) are fully resident and re-checked.
	if res.Batches != 2 {
		t.Fatalf("resident batches checked = %d, want 2", res.Batches)
	}
	tail := l.Tail(100, "")
	if len(tail) != 8 || tail[0].Seq != 13 || tail[7].Seq != 20 {
		t.Fatalf("ring window wrong: len %d", len(tail))
	}
	if roots := l.Roots(); len(roots) != 5 || roots[4].LastSeq != 20 {
		t.Fatalf("roots wrong: %+v", roots)
	}
}

func TestTailFilter(t *testing.T) {
	l, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.nowFn = func() time.Time { return time.UnixMilli(0) }
	l.Record(Event{Type: PeerConnect, Caller: "home-b"})
	l.Record(Event{Type: PolicyDeny, Caller: "home-b"})
	l.Record(Event{Type: PeerConnect, Caller: "home-c"})
	got := l.Tail(10, PeerConnect)
	if len(got) != 2 || got[0].Caller != "home-b" || got[1].Caller != "home-c" {
		t.Fatalf("filtered tail wrong: %+v", got)
	}
	if got := l.Tail(1, PeerConnect); len(got) != 1 || got[0].Caller != "home-c" {
		t.Fatalf("bounded filtered tail should keep the newest: %+v", got)
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	l.Record(Event{Type: CallAdmit})
	if l.Seq() != 0 || l.Tail(5, "") != nil || l.Roots() != nil {
		t.Fatal("nil log should be inert")
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("nil Verify: %v", err)
	}
	if WithFace(nil, "x", "y") != nil {
		t.Fatal("WithFace(nil) should stay nil")
	}
}

func TestWithFaceStamps(t *testing.T) {
	var got Event
	r := WithFace(Func(func(ev Event) { got = ev }), "vsg:net1", "home-a")
	r.Record(Event{Type: CallAdmit, Service: "home-a/svc"})
	if got.Face != "vsg:net1" || got.Home != "home-a" {
		t.Fatalf("face/home not stamped: %+v", got)
	}
	r.Record(Event{Type: CallAdmit, Face: "explicit", Home: "other"})
	if got.Face != "explicit" || got.Home != "other" {
		t.Fatalf("explicit face/home should win: %+v", got)
	}
}
