// Allocation and contention guards for the hub hot path.
package events

import (
	"fmt"
	"testing"

	"homeconnect/internal/service"
)

func TestTopicMatchesAllocs(t *testing.T) {
	pairs := [][2]string{
		{"", "havi.tape-end"},
		{"*", "havi.tape-end"},
		{"havi.*", "havi.tape-end"},
		{"havi.tape-end", "havi.tape-end"},
		{"x10.*", "havi.tape-end"},
	}
	if got := testing.AllocsPerRun(200, func() {
		for _, p := range pairs {
			TopicMatches(p[0], p[1])
		}
	}); got != 0 {
		t.Errorf("TopicMatches: %.1f allocs/op, want 0", got)
	}
}

// BenchmarkHubPublishParallel measures concurrent publishers fanning out
// to subscribers — the scene-trigger load shape. The copy-on-write
// subscriber snapshot keeps matching and delivery off the hub mutex, so
// publishers only serialize on the ring append.
func BenchmarkHubPublishParallel(b *testing.B) {
	for _, nSubs := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			h := NewHub()
			defer h.Close()
			for i := 0; i < nSubs; i++ {
				// Half match the published topic, half filter it out.
				topic := "bench.tick"
				if i%2 == 1 {
					topic = "other.*"
				}
				h.Subscribe(topic, func(service.Event) {})
			}
			ev := service.Event{Source: "bench", Topic: "bench.tick"}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					h.Publish(ev)
				}
			})
		})
	}
}
