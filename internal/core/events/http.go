package events

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/xmltree"
)

// XML codec for events on the wire.

// EncodeEvents renders events as an <events> document.
func EncodeEvents(evs []service.Event) []byte {
	w := xmltree.NewWriter()
	w.Open("events")
	for _, ev := range evs {
		writeEvent(w, ev)
	}
	return w.Bytes()
}

func writeEvent(w *xmltree.Writer, ev service.Event) {
	w.Open("event",
		"source", ev.Source,
		"topic", ev.Topic,
		"seq", strconv.FormatUint(ev.Seq, 10),
		"time", ev.Time.UTC().Format(time.RFC3339Nano),
	)
	keys := make([]string, 0, len(ev.Payload))
	for k := range ev.Payload {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := ev.Payload[k]
		w.Leaf("p", v.Text(), "name", k, "type", v.Kind().String())
	}
	w.Close()
}

// DecodeEvents parses an <events> document.
func DecodeEvents(data []byte) ([]service.Event, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	var out []service.Event
	for _, el := range root.All("event") {
		ev, err := eventFromXML(el)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func eventFromXML(el *xmltree.Element) (service.Event, error) {
	ev := service.Event{
		Source:  el.Attr("source"),
		Topic:   el.Attr("topic"),
		Payload: make(map[string]service.Value),
	}
	if s := el.Attr("seq"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return service.Event{}, fmt.Errorf("events: bad seq %q", s)
		}
		ev.Seq = n
	}
	if ts := el.Attr("time"); ts != "" {
		t, err := time.Parse(time.RFC3339Nano, ts)
		if err != nil {
			return service.Event{}, fmt.Errorf("events: bad time %q", ts)
		}
		ev.Time = t
	}
	for _, p := range el.All("p") {
		kind := service.KindFromString(p.Attr("type"))
		v, err := service.ParseText(kind, p.Text)
		if err != nil {
			return service.Event{}, fmt.Errorf("events: payload %s: %w", p.Attr("name"), err)
		}
		ev.Payload[p.Attr("name")] = v
	}
	return ev, nil
}

// Handler exposes a hub over HTTP under three verbs:
//
//	POST /poll        — long poll; query params since, topic, timeoutms
//	POST /subscribe   — body <subscribe callback="URL" topic="..."/>
//	POST /unsubscribe — body <unsubscribe sid="..."/>
//	POST /publish     — body <events>...</events>; injects events into the hub
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/publish", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		evs, err := DecodeEvents(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, ev := range evs {
			h.Publish(ev)
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/poll", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		topic := r.URL.Query().Get("topic")
		timeout := 10 * time.Second
		if t := r.URL.Query().Get("timeoutms"); t != "" {
			if ms, err := strconv.Atoi(t); err == nil && ms >= 0 {
				timeout = time.Duration(ms) * time.Millisecond
			}
		}
		evs, next, err := h.Poll(r.Context(), since, topic, timeout)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		w.Header().Set("X-Next-Cursor", strconv.FormatUint(next, 10))
		_, _ = w.Write(EncodeEvents(evs))
	})
	mux.HandleFunc("/subscribe", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		root, err := xmltree.Parse(body)
		if err != nil || root.Attr("callback") == "" {
			http.Error(w, "subscribe needs a callback attribute", http.StatusBadRequest)
			return
		}
		callback := root.Attr("callback")
		topic := root.Attr("topic")
		sid := h.SubscribePush(topic, pushDeliverer(callback))
		xw := xmltree.NewWriter()
		xw.Leaf("sid", sid)
		w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		_, _ = w.Write(xw.Bytes())
	})
	mux.HandleFunc("/unsubscribe", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		root, err := xmltree.Parse(body)
		if err != nil || root.Attr("sid") == "" {
			http.Error(w, "unsubscribe needs a sid attribute", http.StatusBadRequest)
			return
		}
		h.UnsubscribePush(root.Attr("sid"))
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// pushClient delivers push callbacks over the shared keep-alive
// transport; the seed built a fresh http.Client (and connection) per
// subscription. The timeout bounds each POST because a dead callback
// must not park its pusher goroutine.
var pushClient = transport.ClientWithTimeout(5 * time.Second)

// pushDeliverer POSTs one event per request to the callback URL.
func pushDeliverer(callback string) func(service.Event) error {
	return func(ev service.Event) error {
		body := EncodeEvents([]service.Event{ev})
		resp, err := pushClient.Post(callback, `text/xml; charset="utf-8"`, bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("events: push to %s: %s", callback, resp.Status)
		}
		return nil
	}
}

// Client consumes a remote hub.
type Client struct {
	// HTTP is the underlying client; the shared keep-alive transport
	// (internal/transport) if nil.
	HTTP *http.Client
	// BaseURL is the hub's mount point (".../events").
	BaseURL string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return transport.Client()
}

// Poll long-polls the remote hub.
func (c *Client) Poll(ctx context.Context, since uint64, topic string, timeout time.Duration) ([]service.Event, uint64, error) {
	u := fmt.Sprintf("%s/poll?since=%d&topic=%s&timeoutms=%d",
		c.BaseURL, since, topic, timeout.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, since, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, since, fmt.Errorf("events: poll: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, since, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, since, fmt.Errorf("events: poll: %s", resp.Status)
	}
	next, _ := strconv.ParseUint(resp.Header.Get("X-Next-Cursor"), 10, 64)
	evs, err := DecodeEvents(data)
	if err != nil {
		return nil, since, err
	}
	return evs, next, nil
}

// Publish injects events into the remote hub — the write half of the
// long-poll discipline, used by scene runners that compose events across
// gateways without an in-process hub reference.
func (c *Client) Publish(ctx context.Context, evs ...service.Event) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/publish", bytes.NewReader(EncodeEvents(evs)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("events: publish: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: publish: %s", resp.Status)
	}
	return nil
}

// Subscribe registers a push callback and returns the subscription ID.
func (c *Client) Subscribe(ctx context.Context, callback, topic string) (string, error) {
	xw := xmltree.NewWriter()
	xw.SelfClose("subscribe", "callback", callback, "topic", topic)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/subscribe", bytes.NewReader(xw.Bytes()))
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("events: subscribe: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events: subscribe: %s", resp.Status)
	}
	root, err := xmltree.Parse(data)
	if err != nil || root.Name.Local != "sid" {
		return "", fmt.Errorf("events: bad subscribe response")
	}
	return root.Text, nil
}

// Unsubscribe cancels a push subscription.
func (c *Client) Unsubscribe(ctx context.Context, sid string) error {
	xw := xmltree.NewWriter()
	xw.SelfClose("unsubscribe", "sid", sid)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/unsubscribe", bytes.NewReader(xw.Bytes()))
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("events: unsubscribe: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// PushReceiver is a small HTTP server receiving pushed events — the
// subscriber side of a push subscription.
type PushReceiver struct {
	ln    net.Listener
	httpS *http.Server
}

// NewPushReceiver starts a receiver on an ephemeral port; fn runs for
// every delivered event.
func NewPushReceiver(fn func(service.Event)) (*PushReceiver, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		evs, err := DecodeEvents(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, ev := range evs {
			fn(ev)
		}
		w.WriteHeader(http.StatusOK)
	})
	r := &PushReceiver{ln: ln, httpS: &http.Server{Handler: handler}}
	go func() { _ = r.httpS.Serve(ln) }()
	return r, nil
}

// URL returns the callback URL to register.
func (r *PushReceiver) URL() string { return "http://" + r.ln.Addr().String() + "/" }

// Close stops the receiver.
func (r *PushReceiver) Close() { _ = r.httpS.Close() }
