// Package events is the asynchronous-notification extension of the
// framework. The paper found plain HTTP inadequate for events: "HTTP is
// inherently a client/server protocol, which does not map well to
// asynchronous notification scenarios" (§4.2). This package gives each
// Virtual Service Gateway an event hub with both delivery disciplines so
// the trade-off can be measured (experiment E7):
//
//   - long-polling: a consumer repeatedly asks the hub for events after a
//     cursor, holding the request open until something arrives — the best
//     a pure client/server HTTP deployment could do in 2002;
//   - push subscriptions: the consumer registers an HTTP callback and the
//     hub POSTs each event immediately — the GENA-style escape hatch.
//
// Protocol Conversion Managers adapt native middleware events (Jini
// remote events, HAVi event-manager posts, X10 received frames) into
// service.Event values published on the local hub.
package events

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/service"
)

// ringCapacity bounds the replay buffer; pollers further behind than this
// miss events, which the cursor makes detectable.
const ringCapacity = 1024

// stamped is an event with its hub cursor.
type stamped struct {
	cursor uint64
	ev     service.Event
}

// Hub fans events out to local subscribers, long-pollers and push
// callbacks.
//
// Publish is the hub's hot path — a home full of scenes triggers at event
// rate, and the scene engine fans one event out to every armed
// composition — so it holds the mutex only for the ring append and the
// poller wakeup. Subscriber matching reads an immutable copy-on-write
// snapshot rebuilt on (un)subscribe, so concurrent publishers never
// serialize on the subscriber tables, and the replay ring is a fixed
// circular buffer instead of an ever-reallocating append-and-reslice.
type Hub struct {
	mu       sync.Mutex
	ring     []stamped // circular; allocated ringCapacity-long on first publish
	ringHead int       // index of the oldest entry
	ringLen  int
	cursor   uint64
	wait     chan struct{} // closed and replaced on every publish
	subs     map[int]localSub
	nextSub  int
	pushers  map[string]*pusher
	nextSID  int
	closed   bool
	wg       sync.WaitGroup

	// snap is the publish-side view of the subscriber tables. Mutators
	// rebuild it under mu; Publish loads it lock-free.
	snap atomic.Pointer[subscriberSnapshot]
}

// subscriberSnapshot is an immutable view of the subscriber tables.
type subscriberSnapshot struct {
	local []localSub
	push  []*pusher
}

type localSub struct {
	topic string
	fn    func(service.Event)
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	h := &Hub{
		wait:    make(chan struct{}),
		subs:    make(map[int]localSub),
		pushers: make(map[string]*pusher),
	}
	h.snap.Store(&subscriberSnapshot{})
	return h
}

// resnapshot rebuilds the publish-side subscriber snapshot. Caller holds
// mu.
func (h *Hub) resnapshot() {
	s := &subscriberSnapshot{}
	if n := len(h.subs); n > 0 {
		s.local = make([]localSub, 0, n)
		for _, sub := range h.subs {
			s.local = append(s.local, sub)
		}
	}
	if n := len(h.pushers); n > 0 {
		s.push = make([]*pusher, 0, n)
		for _, p := range h.pushers {
			s.push = append(s.push, p)
		}
	}
	h.snap.Store(s)
}

// Close stops push deliveries and wakes pollers.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.closed = true
	for _, p := range h.pushers {
		p.stop()
	}
	close(h.wait)
	h.wait = make(chan struct{})
	h.mu.Unlock()
	h.wg.Wait()
}

// Publish delivers ev to every subscriber. The hub assigns the event's
// cursor; the event's own Seq (per-source) is preserved.
func (h *Hub) Publish(ev service.Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	kept := ev.Clone() // the ring's copy, made outside the lock
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.cursor++
	if h.ring == nil {
		h.ring = make([]stamped, ringCapacity)
	}
	slot := h.ringHead + h.ringLen
	if slot >= ringCapacity {
		slot -= ringCapacity
	}
	h.ring[slot] = stamped{cursor: h.cursor, ev: kept}
	if h.ringLen < ringCapacity {
		h.ringLen++
	} else {
		// Full: the slot just written replaced the oldest entry.
		if h.ringHead++; h.ringHead == ringCapacity {
			h.ringHead = 0
		}
	}
	// Wake long-pollers.
	close(h.wait)
	h.wait = make(chan struct{})
	h.mu.Unlock()

	// Deliveries run against the copy-on-write snapshot, off the lock:
	// a slow subscriber callback delays this publisher, never the hub.
	snap := h.snap.Load()
	for _, s := range snap.local {
		if topicMatches(s.topic, ev.Topic) {
			s.fn(ev.Clone())
		}
	}
	for _, p := range snap.push {
		if topicMatches(p.topic, ev.Topic) {
			p.enqueue(ev.Clone())
		}
	}
}

// TopicMatches applies the subscription filter grammar shared by hub
// subscriptions and scene triggers: "" and "*" match every topic; a filter
// ending in '*' is a prefix match ("havi.*" matches "havi.tape-end"); any
// other filter matches exactly.
func TopicMatches(filter, topic string) bool {
	if filter == "" || filter == "*" {
		return true
	}
	if strings.HasSuffix(filter, "*") {
		return strings.HasPrefix(topic, filter[:len(filter)-1])
	}
	return filter == topic
}

// topicMatches is the internal spelling used by the hub's fan-out paths.
func topicMatches(filter, topic string) bool { return TopicMatches(filter, topic) }

// Subscribe registers a local callback for events whose topic matches
// (empty topic = all). The returned function unsubscribes.
func (h *Hub) Subscribe(topic string, fn func(service.Event)) (stop func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextSub
	h.nextSub++
	h.subs[id] = localSub{topic: topic, fn: fn}
	h.resnapshot()
	return func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		delete(h.subs, id)
		h.resnapshot()
	}
}

// Poll returns events with cursor > since, blocking up to timeout for the
// first one (long poll). It returns the events and the new cursor to pass
// next time.
func (h *Hub) Poll(ctx context.Context, since uint64, topic string, timeout time.Duration) ([]service.Event, uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		var out []service.Event
		next := since
		for k := 0; k < h.ringLen; k++ {
			i := h.ringHead + k
			if i >= ringCapacity {
				i -= ringCapacity
			}
			s := h.ring[i]
			if s.cursor > since && topicMatches(topic, s.ev.Topic) {
				out = append(out, s.ev.Clone())
			}
			if s.cursor > next {
				next = s.cursor
			}
		}
		waitCh := h.wait
		closed := h.closed
		h.mu.Unlock()
		if len(out) > 0 || closed {
			return out, next, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, next, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-waitCh:
			timer.Stop()
		case <-timer.C:
			return nil, next, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, next, ctx.Err()
		}
	}
}

// SubscribePush registers an HTTP callback for matching events and
// returns the subscription ID. deliver is invoked sequentially per
// subscription with each event; it is supplied by the transport layer
// (HTTP POST in the gateway, direct call in tests).
func (h *Hub) SubscribePush(topic string, deliver func(service.Event) error) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextSID++
	sid := "sub-" + strconv.Itoa(h.nextSID)
	p := newPusher(topic, deliver, &h.wg)
	h.pushers[sid] = p
	h.resnapshot()
	return sid
}

// UnsubscribePush cancels a push subscription.
func (h *Hub) UnsubscribePush(sid string) {
	h.mu.Lock()
	p, ok := h.pushers[sid]
	if ok {
		delete(h.pushers, sid)
		h.resnapshot()
	}
	h.mu.Unlock()
	if ok {
		p.stop()
	}
}

// pusher serializes deliveries for one push subscription on a dedicated
// goroutine, dropping the subscription after repeated failures (a dead
// callback must not stall the hub).
type pusher struct {
	topic string
	ch    chan service.Event
	done  chan struct{}
	once  sync.Once
}

const pusherQueue = 256

func newPusher(topic string, deliver func(service.Event) error, wg *sync.WaitGroup) *pusher {
	p := &pusher{
		topic: topic,
		ch:    make(chan service.Event, pusherQueue),
		done:  make(chan struct{}),
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		failures := 0
		for {
			select {
			case <-p.done:
				return
			case ev := <-p.ch:
				if err := deliver(ev); err != nil {
					failures++
					if failures >= 3 {
						return
					}
					continue
				}
				failures = 0
			}
		}
	}()
	return p
}

func (p *pusher) enqueue(ev service.Event) {
	select {
	case p.ch <- ev:
	default:
		// Queue overflow: drop the oldest pending event to keep the
		// stream moving (lossy, like the underlying middleware events).
		select {
		case <-p.ch:
		default:
		}
		select {
		case p.ch <- ev:
		default:
		}
	}
}

func (p *pusher) stop() { p.once.Do(func() { close(p.done) }) }
