package events

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/service"
)

func motionEvent(seq uint64) service.Event {
	return service.Event{
		Source: "x10:motion-1",
		Topic:  "motion",
		Seq:    seq,
		Time:   time.Date(2002, 7, 2, 12, 0, 0, 0, time.UTC),
		Payload: map[string]service.Value{
			"unit": service.IntValue(7),
			"on":   service.BoolValue(true),
		},
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	in := []service.Event{motionEvent(1), {Source: "a", Topic: "b", Seq: 2, Time: time.Unix(0, 0).UTC()}}
	out, err := DecodeEvents(EncodeEvents(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d events", len(out))
	}
	if out[0].Source != "x10:motion-1" || out[0].Topic != "motion" || out[0].Seq != 1 {
		t.Errorf("event = %+v", out[0])
	}
	if !out[0].Payload["unit"].Equal(service.IntValue(7)) || !out[0].Payload["on"].Equal(service.BoolValue(true)) {
		t.Errorf("payload = %v", out[0].Payload)
	}
	if !out[0].Time.Equal(in[0].Time) {
		t.Errorf("time = %v", out[0].Time)
	}
}

func TestDecodeEventsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "<events><event seq=\"x\"/></events>", "<events><event time=\"zzz\"/></events>"} {
		if _, err := DecodeEvents([]byte(bad)); err == nil {
			t.Errorf("DecodeEvents(%q) accepted", bad)
		}
	}
}

func TestHubLocalSubscribe(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var mu sync.Mutex
	var got []service.Event
	stop := h.Subscribe("motion", func(ev service.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	h.Publish(motionEvent(1))
	h.Publish(service.Event{Source: "x", Topic: "other"})
	mu.Lock()
	if len(got) != 1 || got[0].Topic != "motion" {
		t.Errorf("got %+v", got)
	}
	mu.Unlock()
	stop()
	h.Publish(motionEvent(2))
	mu.Lock()
	if len(got) != 1 {
		t.Error("unsubscribed handler called")
	}
	mu.Unlock()
}

func TestHubPollCursorSemantics(t *testing.T) {
	h := NewHub()
	defer h.Close()
	ctx := context.Background()

	// Nothing yet: empty result after timeout, cursor unchanged.
	evs, next, err := h.Poll(ctx, 0, "", 20*time.Millisecond)
	if err != nil || len(evs) != 0 || next != 0 {
		t.Fatalf("empty poll = %v, %d, %v", evs, next, err)
	}

	h.Publish(motionEvent(1))
	h.Publish(motionEvent(2))
	evs, next, err = h.Poll(ctx, 0, "", time.Second)
	if err != nil || len(evs) != 2 {
		t.Fatalf("poll = %v, %v", evs, err)
	}
	// Subsequent poll from the cursor sees nothing new.
	evs, next2, _ := h.Poll(ctx, next, "", 20*time.Millisecond)
	if len(evs) != 0 || next2 != next {
		t.Errorf("stale poll returned %v (cursor %d→%d)", evs, next, next2)
	}
	// New publication is seen from the cursor.
	h.Publish(motionEvent(3))
	evs, _, _ = h.Poll(ctx, next, "", time.Second)
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Errorf("incremental poll = %+v", evs)
	}
}

func TestHubPollWakesOnPublish(t *testing.T) {
	h := NewHub()
	defer h.Close()
	done := make(chan int, 1)
	go func() {
		evs, _, _ := h.Poll(context.Background(), 0, "motion", 5*time.Second)
		done <- len(evs)
	}()
	time.Sleep(20 * time.Millisecond)
	h.Publish(motionEvent(9))
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("woken poll returned %d events", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poll did not wake on publish")
	}
}

func TestHubPollTopicFilter(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.Publish(service.Event{Source: "s", Topic: "alpha"})
	h.Publish(service.Event{Source: "s", Topic: "beta"})
	evs, _, _ := h.Poll(context.Background(), 0, "beta", time.Second)
	if len(evs) != 1 || evs[0].Topic != "beta" {
		t.Errorf("filtered poll = %+v", evs)
	}
}

func TestHubPushDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var mu sync.Mutex
	var got []service.Event
	sid := h.SubscribePush("motion", func(ev service.Event) error {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
		return nil
	})
	h.Publish(motionEvent(1))
	h.Publish(service.Event{Source: "x", Topic: "other"})
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 })
	h.UnsubscribePush(sid)
	h.Publish(motionEvent(2))
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if len(got) != 1 {
		t.Errorf("after unsubscribe got %d", len(got))
	}
	mu.Unlock()
}

func TestHubPushDropsDeadSubscriber(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var calls int
	var mu sync.Mutex
	h.SubscribePush("", func(service.Event) error {
		mu.Lock()
		calls++
		mu.Unlock()
		return context.DeadlineExceeded
	})
	for i := 0; i < 10; i++ {
		h.Publish(motionEvent(uint64(i)))
	}
	// After 3 failures the pusher gives up; some deliveries may be
	// dropped from the queue, but the count must stop at 3.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if calls > 3 {
		t.Errorf("dead subscriber called %d times", calls)
	}
	mu.Unlock()
}

func TestHTTPPollAndPush(t *testing.T) {
	h := NewHub()
	defer h.Close()
	srv := httptest.NewServer(Handler(h))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Long poll over HTTP.
	type pollResult struct {
		evs  []service.Event
		next uint64
	}
	done := make(chan pollResult, 1)
	go func() {
		evs, next, _ := client.Poll(ctx, 0, "motion", 5*time.Second)
		done <- pollResult{evs, next}
	}()
	time.Sleep(20 * time.Millisecond)
	h.Publish(motionEvent(1))
	var pr pollResult
	select {
	case pr = <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("HTTP long poll timed out")
	}
	if len(pr.evs) != 1 || pr.evs[0].Payload["unit"].Int() != 7 {
		t.Fatalf("poll = %+v", pr.evs)
	}
	if pr.next == 0 {
		t.Error("cursor not advanced")
	}

	// Push over HTTP callback.
	var mu sync.Mutex
	var pushed []service.Event
	recv, err := NewPushReceiver(func(ev service.Event) {
		mu.Lock()
		pushed = append(pushed, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	sid, err := client.Subscribe(ctx, recv.URL(), "motion")
	if err != nil || sid == "" {
		t.Fatalf("Subscribe = %q, %v", sid, err)
	}
	h.Publish(motionEvent(2))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(pushed) == 1 })
	if err := client.Unsubscribe(ctx, sid); err != nil {
		t.Fatal(err)
	}
	h.Publish(motionEvent(3))
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if len(pushed) != 1 {
		t.Errorf("after unsubscribe pushed = %d", len(pushed))
	}
	mu.Unlock()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		// Empty filter and bare star are wildcards.
		{"", "anything", true},
		{"", "", true},
		{"*", "havi.tape-end", true},
		{"*", "", true},
		// Exact matching.
		{"motion", "motion", true},
		{"motion", "motions", false},
		{"motion", "Motion", false}, // case-sensitive
		{"a.b", "a.b", true},
		{"a.b", "a.c", false},
		// Trailing-star prefix matching.
		{"havi.*", "havi.tape-end", true},
		{"havi.*", "havi.", true},
		{"havi.*", "havi", false}, // prefix includes the dot
		{"havi.*", "x10.on", false},
		{"guide*", "guide.match", true},
		{"guide*", "guide", true},
		// A star anywhere but the end is literal.
		{"a*b", "a*b", true},
		{"a*b", "axb", false},
		{"*x", "*x", true},
		{"*x", "ax", false},
		// Degenerate double star: prefix "*".
		{"**", "*anything", true},
		{"**", "anything", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
		if got := topicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("topicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestHubSubscribeWildcard(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var mu sync.Mutex
	var got []string
	stop := h.Subscribe("havi.*", func(ev service.Event) {
		mu.Lock()
		got = append(got, ev.Topic)
		mu.Unlock()
	})
	defer stop()
	h.Publish(service.Event{Source: "s", Topic: "havi.tape-end"})
	h.Publish(service.Event{Source: "s", Topic: "x10.on"})
	h.Publish(service.Event{Source: "s", Topic: "havi.eject"})
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "havi.tape-end" || got[1] != "havi.eject" {
		t.Errorf("wildcard subscription saw %v", got)
	}
}
