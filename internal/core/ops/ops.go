// Package ops is the wire-level operability surface: read-only HTTP
// faces serving JSON snapshots of a deployment's health and its audit
// log, mounted on vsrd and vsgd behind the identity middleware (private
// to the home's own identity once one is installed). The faces carry no
// mutations — an operator, or homectl, can ask a running home "am I
// degraded, and who was refused?" without any way to change it.
package ops

import (
	"encoding/json"
	"net/http"
	"strconv"

	"homeconnect/internal/core/audit"
)

// defaultTail bounds an /audit response when the client names no n.
const defaultTail = 64

// maxTail caps how many records one /audit response returns.
const maxTail = 1024

// HealthHandler serves snapshot() as indented JSON on GET. The snapshot
// function is supplied by the assembler (federation, vsrd, vsgd), each
// of which composes a different report from the structs it holds.
func HealthHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "ops: GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, snapshot())
	})
}

// AuditSnapshot is the /audit response body.
type AuditSnapshot struct {
	// Enabled is false when the deployment runs without an audit log;
	// every other field is zero then.
	Enabled bool `json:"enabled"`
	// Stats summarizes the log (sequence, window, sealed batches, last
	// root, persistence state).
	Stats audit.Stats `json:"stats"`
	// Tail is the most recent records, oldest first (?n= bounds it,
	// ?type= filters it).
	Tail []audit.Record `json:"tail,omitempty"`
	// Roots is every sealed Merkle batch root.
	Roots []audit.Root `json:"roots,omitempty"`
	// Verify reports an integrity check when the client asked for one
	// (?verify=1).
	Verify *VerifyOutcome `json:"verify,omitempty"`
}

// VerifyOutcome is the result of an on-demand chain verification.
type VerifyOutcome struct {
	// OK reports that the chain and every sealed root checked out.
	OK bool `json:"ok"`
	// Result carries the coverage counts when OK.
	audit.Result
	// Error is the verification failure, naming the offending batch.
	Error string `json:"error,omitempty"`
}

// AuditHandler serves the audit log on GET: its stats, a bounded tail
// (?n=, ?type=), the sealed roots, and — with ?verify=1 — a full chain
// verification. log() is consulted per request so auditing can be
// enabled after the face is mounted; nil means auditing is off.
func AuditHandler(log func() *audit.Log) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "ops: GET only", http.StatusMethodNotAllowed)
			return
		}
		l := log()
		if l == nil {
			writeJSON(w, AuditSnapshot{Enabled: false})
			return
		}
		n := defaultTail
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = min(v, maxTail)
			}
		}
		snap := AuditSnapshot{
			Enabled: true,
			Stats:   l.Stats(),
			Tail:    l.Tail(n, audit.Type(r.URL.Query().Get("type"))),
			Roots:   l.Roots(),
		}
		if r.URL.Query().Get("verify") == "1" {
			res, err := l.Verify()
			out := &VerifyOutcome{OK: err == nil, Result: res}
			if err != nil {
				out.Error = err.Error()
			}
			snap.Verify = out
		}
		writeJSON(w, snap)
	})
}

// writeJSON renders one response body; ops faces are low-rate
// diagnostic surfaces, so indented output for human eyes is worth the
// bytes.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, "ops: encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}
