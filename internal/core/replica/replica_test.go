// Failover edge tests for the replica-set coordination layer, driven
// step-by-step on an in-memory network: leader killed mid-batch, stale
// cursors at election time, a deposed leader coming back, double
// promotion, and the rejoin handback that keeps acknowledged writes
// alive across a failover. Every scenario runs the real wire codecs —
// the members talk XML over a transport.MemNet — but no goroutines: the
// tests call AttachOnce/PullOnce/ElectOnce/CheckEpoch themselves, so
// every interleaving is exact.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
)

// eventSink collects audit events for assertions.
type eventSink struct {
	mu     sync.Mutex
	events []audit.Event
}

func (s *eventSink) Record(ev audit.Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *eventSink) count(typ audit.Type) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// member is one replica-set process on the test network.
type member struct {
	host string
	url  string
	reg  *uddi.Server
	srv  *vsr.Server
	node *Node
	sink *eventSink
}

// testSet builds an n-member replica set on a MemNet: real registries,
// real HTTP faces, manual coordination.
func testSet(t *testing.T, n int) (*transport.MemNet, []*member) {
	t.Helper()
	mem := transport.NewMemNet()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://m%d.test/uddi", i)
	}
	members := make([]*member, n)
	for i := range members {
		host := fmt.Sprintf("m%d.test", i)
		reg := uddi.NewManualServer()
		srv := vsr.NewDetachedServer(host, reg, nil)
		mem.Handle(host, srv.Handler())
		sink := &eventSink{}
		node, err := New(Config{
			Self:        urls[i],
			Set:         urls,
			Registry:    reg,
			HTTP:        mem.Client(),
			Recorder:    sink,
			PollTimeout: time.Millisecond,
			RetryDelay:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = &member{host: host, url: urls[i], reg: reg, srv: srv, node: node, sink: sink}
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.reg.Close()
		}
	})
	return mem, members
}

// boot brings the set up in order: member 0 assumes leadership, the
// rest probe, find it, and attach.
func boot(t *testing.T, members []*member) {
	t.Helper()
	ctx := context.Background()
	for _, m := range members {
		if err := m.node.Bootstrap(ctx); err != nil {
			t.Fatalf("%s bootstrap: %v", m.host, err)
		}
	}
	if !members[0].node.IsLeader() {
		t.Fatal("member 0 did not assume leadership on an empty set")
	}
	for _, m := range members[1:] {
		if m.node.IsLeader() {
			t.Fatalf("%s bootstrapped as a second leader", m.host)
		}
	}
}

func save(t *testing.T, mem *transport.MemNet, url, key string) {
	t.Helper()
	c := &uddi.Client{URL: url, HTTP: mem.Client()}
	e := uddi.Entry{Key: key, Name: key, AccessPoint: "http://x/soap", TModel: "IFace"}
	if _, err := c.Save(context.Background(), e, time.Hour); err != nil {
		t.Fatalf("save %s to %s: %v", key, url, err)
	}
}

func pull(t *testing.T, m *member) int {
	t.Helper()
	n, err := m.node.PullOnce(context.Background())
	if err != nil {
		t.Fatalf("%s pull: %v", m.host, err)
	}
	return n
}

// TestFailoverScenarios is the table of leader-death edges. Each case
// arranges a divergence, kills the leader, and asserts every survivor
// independently reaches the same verdict.
func TestFailoverScenarios(t *testing.T) {
	ctx := context.Background()

	// Leader killed mid-batch: one replica saw the whole batch, the
	// other only half. The caught-up replica must win on both ballots.
	t.Run("leader kill mid-batch", func(t *testing.T) {
		mem, ms := testSet(t, 3)
		boot(t, ms)
		for i := 0; i < 5; i++ {
			save(t, mem, ms[0].url, fmt.Sprintf("uuid:first-%d", i))
		}
		pull(t, ms[1])
		pull(t, ms[2])
		for i := 0; i < 5; i++ {
			save(t, mem, ms[0].url, fmt.Sprintf("uuid:late-%d", i))
		}
		pull(t, ms[1]) // only m1 sees the tail of the batch
		mem.Handle(ms[0].host, nil)

		p1, err := ms[1].node.ElectOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ms[2].node.ElectOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !p1 || p2 {
			t.Fatalf("election: m1 promoted %v, m2 promoted %v; want m1 only (highest seq)", p1, p2)
		}
		if epoch, leader := ms[1].reg.Epoch(); epoch != 2 || leader != ms[1].url {
			t.Fatalf("m1 epoch = %d leader %q, want epoch 2 self-led", epoch, leader)
		}
		if ms[1].sink.count(audit.ReplicaPromote) != 1 {
			t.Fatal("promotion was not audited")
		}
		// m2 follows the winner; the re-attach (a state transfer from the
		// new leader) re-grounds it on the full batch.
		pull(t, ms[2])
		if ms[2].reg.Len() != 10 {
			t.Fatalf("m2 Len = %d after re-attach, want the full batch of 10", ms[2].reg.Len())
		}
		if ms[1].reg.Seq() != ms[2].reg.Seq() {
			t.Fatalf("survivors diverged: m1 seq %d, m2 seq %d", ms[1].reg.Seq(), ms[2].reg.Seq())
		}
		// The new leader serves writes; the acknowledged batch survived.
		save(t, mem, ms[1].url, "uuid:after-failover")
		if ms[1].reg.Len() != 11 {
			t.Fatalf("new leader Len = %d, want all 10 acknowledged + 1 new", ms[1].reg.Len())
		}
	})

	// Stale cursor at election time: the later set member is the most
	// caught up, so set order must lose to replicated position.
	t.Run("promotion beats set order on seq", func(t *testing.T) {
		mem, ms := testSet(t, 3)
		boot(t, ms)
		save(t, mem, ms[0].url, "uuid:a")
		pull(t, ms[1])
		pull(t, ms[2])
		save(t, mem, ms[0].url, "uuid:b")
		pull(t, ms[2]) // m2 ahead of m1 despite being later in the set
		mem.Handle(ms[0].host, nil)

		p1, _ := ms[1].node.ElectOnce(ctx)
		p2, err := ms[2].node.ElectOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if p1 || !p2 {
			t.Fatalf("election: m1 %v m2 %v; want the higher-seq m2 to win", p1, p2)
		}
		if ms[1].node.Leader() != ms[2].url {
			t.Fatalf("m1 follows %q, want the winner %s", ms[1].node.Leader(), ms[2].url)
		}
		// m1 re-attaches to the winner and converges.
		if err := ms[1].node.AttachOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if ms[1].reg.Seq() != ms[2].reg.Seq() {
			t.Fatalf("m1 seq %d != winner seq %d", ms[1].reg.Seq(), ms[2].reg.Seq())
		}
	})

	// Old leader comes back: its feed is fenced by the epoch, its write
	// face answers E_notLeader after the epoch sweep deposes it.
	t.Run("stale-epoch rejection on return", func(t *testing.T) {
		mem, ms := testSet(t, 3)
		boot(t, ms)
		save(t, mem, ms[0].url, "uuid:old-regime")
		pull(t, ms[1])
		pull(t, ms[2])
		mem.Handle(ms[0].host, nil)
		if p, _ := ms[1].node.ElectOnce(ctx); !p {
			t.Fatal("m1 did not take over")
		}
		// m2's own election round finds the incumbent and re-attaches,
		// adopting epoch 2.
		if p, err := ms[2].node.ElectOnce(ctx); err != nil || p {
			t.Fatalf("m2 election: promoted %v err %v, want to follow m1", p, err)
		}
		pull(t, ms[2])

		// The dead leader reappears, still believing it leads epoch 1.
		mem.Handle(ms[0].host, ms[0].srv.Handler())
		// A replica of the new regime must refuse to feed from it.
		ms[2].node.Demote(ms[0].url)
		_, err := ms[2].node.PullOnce(ctx)
		if !errors.Is(err, uddi.ErrStaleEpoch) {
			t.Fatalf("feed from the deposed leader: err = %v, want ErrStaleEpoch", err)
		}
		ms[2].node.Demote(ms[1].url) // back to the real leader

		// The old leader's own sweep notices the newer regime and rejoins.
		if err := ms[0].node.CheckEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		if ms[0].node.IsLeader() {
			t.Fatal("deposed leader kept serving writes after the epoch sweep")
		}
		// Its write face now redirects to the real leader.
		c := &uddi.Client{URL: ms[0].url, HTTP: mem.Client()}
		_, err = c.Save(ctx, uddi.Entry{Key: "uuid:x", Name: "x", AccessPoint: "a", TModel: "T"}, time.Hour)
		if !errors.Is(err, uddi.ErrNotLeader) {
			t.Fatalf("write to deposed leader: err = %v, want ErrNotLeader", err)
		}
		if hint := uddi.LeaderHint(err); hint != ms[1].url {
			t.Fatalf("leader hint %q, want %s", hint, ms[1].url)
		}
	})

	// Double promotion: two members both believe they lead the same
	// epoch. The fencing sweep resolves deterministically — the earlier
	// set position keeps the crown, the later one rejoins.
	t.Run("double-promotion fencing", func(t *testing.T) {
		mem, ms := testSet(t, 3)
		boot(t, ms)
		save(t, mem, ms[0].url, "uuid:seed")
		pull(t, ms[1])
		pull(t, ms[2])
		mem.Handle(ms[0].host, nil)
		// Force the split: both survivors promote under epoch 2 without
		// consulting each other.
		if err := ms[1].node.Promote(2); err != nil {
			t.Fatal(err)
		}
		if err := ms[2].node.Promote(2); err != nil {
			t.Fatal(err)
		}
		// Both sweeps run; only the later set member yields.
		if err := ms[1].node.CheckEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		if err := ms[2].node.CheckEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		if !ms[1].node.IsLeader() {
			t.Fatal("earlier set member lost the fencing tie-break")
		}
		if ms[2].node.IsLeader() {
			t.Fatal("both members kept the crown: fencing failed")
		}
		if ms[2].node.Leader() != ms[1].url {
			t.Fatalf("m2 follows %q after fencing, want %s", ms[2].node.Leader(), ms[1].url)
		}
	})

	// Rejoin handback: a write acknowledged by the old leader but never
	// replicated must survive the failover once the old leader returns.
	t.Run("handback of unreplicated acknowledged writes", func(t *testing.T) {
		mem, ms := testSet(t, 3)
		boot(t, ms)
		save(t, mem, ms[0].url, "uuid:replicated")
		pull(t, ms[1])
		pull(t, ms[2])
		// Acknowledged by m0 alone: the feed dies before anyone pulls it.
		save(t, mem, ms[0].url, "uuid:acked-only-here")
		mem.Handle(ms[0].host, nil)
		if p, _ := ms[1].node.ElectOnce(ctx); !p {
			t.Fatal("m1 did not take over")
		}
		if p, err := ms[2].node.ElectOnce(ctx); err != nil || p {
			t.Fatalf("m2 election: promoted %v err %v, want to follow m1", p, err)
		}
		pull(t, ms[2])
		if _, ok := ms[1].reg.Get("uuid:acked-only-here"); ok {
			t.Fatal("test premise broken: the unreplicated write reached m1")
		}

		// m0 restarts into the newer regime and hands the write back.
		mem.Handle(ms[0].host, ms[0].srv.Handler())
		if err := ms[0].node.Bootstrap(ctx); err != nil {
			t.Fatalf("old leader rejoin: %v", err)
		}
		if ms[0].node.IsLeader() {
			t.Fatal("old leader did not rejoin as a replica")
		}
		if _, ok := ms[1].reg.Get("uuid:acked-only-here"); !ok {
			t.Fatal("acknowledged write lost in failover: handback did not run")
		}
		if st := ms[0].node.Status(); st.HandedBack != 1 {
			t.Fatalf("HandedBack = %d, want 1", st.HandedBack)
		}
		if ms[0].sink.count(audit.ReplicaAttach) == 0 {
			t.Fatal("rejoin attach was not audited")
		}
		// The rejoined replica converges on the full state, including its
		// own handed-back write under the new leader's sequence.
		pull(t, ms[0])
		if _, ok := ms[0].reg.Get("uuid:acked-only-here"); !ok {
			t.Fatal("handed-back write missing on the rejoined replica")
		}
		if ms[0].reg.Seq() != ms[1].reg.Seq() {
			t.Fatalf("rejoined replica seq %d != leader seq %d", ms[0].reg.Seq(), ms[1].reg.Seq())
		}
	})

	// A replica that merely lagged must NOT hand back: entries the
	// leader deleted while the replica was detached would otherwise rise
	// again.
	t.Run("lagging replica does not resurrect deletions", func(t *testing.T) {
		mem, ms := testSet(t, 2)
		boot(t, ms)
		save(t, mem, ms[0].url, "uuid:doomed")
		pull(t, ms[1])
		// The leader deletes while the replica is detached.
		c := &uddi.Client{URL: ms[0].url, HTTP: mem.Client()}
		if err := c.Delete(ctx, "uuid:doomed"); err != nil {
			t.Fatal(err)
		}
		// Force a full re-attach (not a journal catch-up).
		if err := ms[1].node.AttachOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok := ms[0].reg.Get("uuid:doomed"); ok {
			t.Fatal("deleted entry resurrected on the leader")
		}
		if _, ok := ms[1].reg.Get("uuid:doomed"); ok {
			t.Fatal("deleted entry survived the re-attach on the replica")
		}
	})
}

// The election loser follows the winner by cursor — no state transfer,
// no journal re-ground — so importer cursors parked on it stay valid.
// An old-regime cursor then survives the whole failover against every
// survivor: the promoted leader and the following loser both replay it
// from their epoch boundary instead of resyncing.
func TestLoserFollowsWithoutReground(t *testing.T) {
	ctx := context.Background()
	mem, ms := testSet(t, 3)
	boot(t, ms)

	// Shared prefix: both replicas at 4. Then two more writes only m1
	// pulls, so m1 wins the election at 6 with m2 lagging at 4.
	for i := 0; i < 4; i++ {
		save(t, mem, ms[0].url, fmt.Sprintf("uuid:shared-%d", i))
	}
	pull(t, ms[1])
	pull(t, ms[2])
	save(t, mem, ms[0].url, "uuid:tail-0")
	save(t, mem, ms[0].url, "uuid:tail-1")
	pull(t, ms[1])

	// An importer that consumed the old leader's full journal: cursor 6
	// under epoch 1.
	c0 := &uddi.Client{URL: ms[0].url, HTTP: mem.Client()}
	_, cursor, cursorEpoch, resync, err := c0.WatchEpoch(ctx, 0, 0, time.Millisecond)
	if err != nil || resync || cursor != 6 || cursorEpoch != 1 {
		t.Fatalf("importer baseline: cursor %d epoch %d resync %v err %v", cursor, cursorEpoch, resync, err)
	}

	mem.Handle(ms[0].host, nil)
	if p, _ := ms[1].node.ElectOnce(ctx); !p {
		t.Fatal("caught-up m1 did not promote")
	}
	attachesBefore := ms[2].sink.count(audit.ReplicaAttach)
	if p, err := ms[2].node.ElectOnce(ctx); err != nil || p {
		t.Fatalf("m2 election: promoted %v err %v, want to follow m1", p, err)
	}
	// Following is a cursor move, not a re-attach: the lagging m2 keeps
	// its journal and catches up over the ordinary feed.
	if got := ms[2].sink.count(audit.ReplicaAttach); got != attachesBefore {
		t.Fatalf("loser re-attached (%d -> %d audits), want a cursor-only follow", attachesBefore, got)
	}
	if st := ms[2].node.Status(); !st.Attached || st.Role != "replica" || st.Leader != ms[1].url {
		t.Fatalf("loser status after follow: %+v", st)
	}
	pull(t, ms[2])
	if ms[2].reg.Seq() != 6 {
		t.Fatalf("loser seq = %d after catch-up, want 6", ms[2].reg.Seq())
	}

	// The new regime moves on.
	save(t, mem, ms[1].url, "uuid:new-regime")
	pull(t, ms[2])

	// The importer resumes its epoch-1 cursor against each survivor:
	// boundary replay on both, resync on neither, and the new regime's
	// write arrives.
	for _, m := range ms[1:] {
		c := &uddi.Client{URL: m.url, HTTP: mem.Client()}
		changes, next, nextEpoch, resync, err := c.WatchEpoch(ctx, cursor, cursorEpoch, time.Millisecond)
		if err != nil {
			t.Fatalf("resume on %s: %v", m.host, err)
		}
		if resync {
			t.Fatalf("resume on %s resynced, want boundary replay", m.host)
		}
		if next != 7 || nextEpoch != 2 {
			t.Fatalf("resume on %s = next %d epoch %d, want 7 under epoch 2", m.host, next, nextEpoch)
		}
		found := false
		for _, ch := range changes {
			if ch.Entry.Key == "uuid:new-regime" {
				found = true
			}
		}
		if !found {
			t.Fatalf("resume on %s missed the new regime's write (%d changes)", m.host, len(changes))
		}
	}
}

// Importer cursors survive a failover: because replicas apply changes
// under the leader's sequence numbers, a watcher that was at cursor N on
// the old leader resumes at N on the promoted replica with no resync.
func TestWatchCursorSurvivesFailover(t *testing.T) {
	ctx := context.Background()
	mem, ms := testSet(t, 2)
	boot(t, ms)
	for i := 0; i < 4; i++ {
		save(t, mem, ms[0].url, fmt.Sprintf("uuid:w-%d", i))
	}
	pull(t, ms[1])

	// An importer watching the old leader stops at cursor 2.
	c0 := &uddi.Client{URL: ms[0].url, HTTP: mem.Client()}
	changes, next, resync, err := c0.Watch(ctx, 0, time.Millisecond)
	if err != nil || resync || len(changes) != 4 {
		t.Fatalf("watch on old leader: %d changes resync %v err %v", len(changes), resync, err)
	}
	cursor := changes[1].Seq // pretend the importer only processed two

	mem.Handle(ms[0].host, nil)
	if p, _ := ms[1].node.ElectOnce(ctx); !p {
		t.Fatal("replica did not promote")
	}

	// Resume the same cursor against the survivor: the tail replays, no
	// resync, nothing re-imported from scratch.
	c1 := &uddi.Client{URL: ms[1].url, HTTP: mem.Client()}
	changes, next2, resync, err := c1.Watch(ctx, cursor, time.Millisecond)
	if err != nil || resync {
		t.Fatalf("watch resume on survivor: resync %v err %v", resync, err)
	}
	if len(changes) != 2 || next2 != next {
		t.Fatalf("resume replayed %d changes to cursor %d, want 2 to %d", len(changes), next2, next)
	}
}
