// Package replica is the coordination layer over the registry's
// replication protocol (internal/uddi/replica.go): it decides what role
// this process plays and drives the machinery that keeps the role true.
//
// A Node is one member of an ordered replica set. As a replica it
// attaches to the leader with a state transfer (repl_sync), then mirrors
// the leader's journal change-for-change (repl_watch), applying each
// record under the leader's sequence number into its own registry — and
// its own WAL, so a replica restart recovers locally instead of
// re-transferring. As a leader it serves writes and watches for rival
// regimes. When the feed dies, the node runs a deterministic election:
// every member probes every member, the highest replicated sequence
// number wins, ties break toward the earliest position in the set order,
// and the winner promotes itself under a fresh epoch — so all survivors
// reach the same verdict independently, with no election protocol on the
// wire beyond the status probe.
//
// The policy here (promotion rule, rejoin handback) is deliberately thin
// and separable from the mechanism in internal/uddi, after the
// policy-free-middleware argument: deployments with different failover
// tastes can replace this package without touching the registry.
package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

// ErrNoLeader reports a replica that has no live leader to feed from —
// the trigger for an election.
var ErrNoLeader = errors.New("replica: no leader")

// DefaultPollTimeout is the repl_watch long-poll parking time.
const DefaultPollTimeout = 5 * time.Second

// DefaultRetryDelay paces the Run loop's recovery attempts after a feed
// error or a lost election.
const DefaultRetryDelay = 500 * time.Millisecond

// Config describes one member of a replica set.
type Config struct {
	// Self is this node's own registry URL — its identity in the set and
	// the leader name it promotes under. Required.
	Self string
	// Set is the ordered replica-set endpoint list (the deterministic
	// tie-break order for elections). Self is added if absent.
	Set []string
	// Registry is the local registry this node keeps in sync. Required.
	Registry *uddi.Server
	// ReplicaOf, when set, forces the node to boot as a replica of that
	// endpoint instead of probing the set for a leader.
	ReplicaOf string
	// Dialer, when set, carries inter-node traffic over the session-keyed
	// binary fast path.
	Dialer *transport.Dialer
	// HTTP overrides the HTTP client for inter-node traffic.
	HTTP *http.Client
	// Recorder, when set, receives replica.attach / replica.promote
	// audit events (replaceable later via SetRecorder).
	Recorder audit.Recorder
	// Clock stamps feed activity; nil means the system clock. The
	// deterministic simulation injects its virtual clock here.
	Clock vclock.Clock
	// PollTimeout is the repl_watch long-poll (default DefaultPollTimeout).
	PollTimeout time.Duration
	// RetryDelay paces Run's recovery attempts (default DefaultRetryDelay).
	RetryDelay time.Duration
}

// Status is the node's replication face, served under /health.
type Status struct {
	Role   string `json:"role"` // "leader" or "replica"
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader,omitempty"`
	// Seq is the local registry's journal position.
	Seq uint64 `json:"seq"`
	// LeaderSeq is the leader's position as of the last feed round.
	LeaderSeq uint64 `json:"leader_seq,omitempty"`
	// Lag is LeaderSeq - Seq: how many leader changes this replica has
	// not applied yet. Always 0 on a leader.
	Lag uint64 `json:"lag"`
	// Attached is true once the state transfer completed and the feed is
	// live.
	Attached bool `json:"attached"`
	// HandedBack counts acknowledged writes this node re-registered with
	// a new leader on rejoin — writes only its own WAL knew about.
	HandedBack int    `json:"handed_back,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	LastFeed   string `json:"last_feed,omitempty"`
}

// Node is one replica-set member's coordination state machine. All
// methods are safe for concurrent use; the feed itself (AttachOnce /
// PullOnce) is driven by one goroutine — Run, or a test's manual calls.
type Node struct {
	cfg     Config
	clients map[string]*uddi.Client

	mu        sync.Mutex
	recorder  audit.Recorder
	leader    string // endpoint the feed follows; "" when unknown
	cursor    uint64 // last applied leader sequence number
	leaderSeq uint64 // leader position at the last feed round
	attached  bool
	handed    int
	lastErr   string
	lastFeed  time.Time
}

// New validates the config and returns a Node. The node does nothing
// until Bootstrap (role decision) and Run (or manual driving) start it.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("replica: config requires Self")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("replica: config requires Registry")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.System
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = DefaultPollTimeout
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = DefaultRetryDelay
	}
	found := false
	for _, ep := range cfg.Set {
		if ep == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		cfg.Set = append(append([]string(nil), cfg.Set...), cfg.Self)
	}
	n := &Node{cfg: cfg, recorder: cfg.Recorder, clients: make(map[string]*uddi.Client, len(cfg.Set))}
	for _, ep := range cfg.Set {
		n.clients[ep] = &uddi.Client{URL: ep, Dialer: cfg.Dialer, HTTP: cfg.HTTP}
	}
	return n, nil
}

func (n *Node) client(ep string) *uddi.Client {
	if c, ok := n.clients[ep]; ok {
		return c
	}
	c := &uddi.Client{URL: ep, Dialer: n.cfg.Dialer, HTTP: n.cfg.HTTP}
	n.clients[ep] = c
	return c
}

// SetRecorder installs (or replaces) the audit recorder; vsrd wires it
// after the audit log opens.
func (n *Node) SetRecorder(r audit.Recorder) {
	n.mu.Lock()
	n.recorder = r
	n.mu.Unlock()
}

func (n *Node) record(ev audit.Event) {
	n.mu.Lock()
	r := n.recorder
	n.mu.Unlock()
	if r != nil {
		r.Record(ev)
	}
}

func (n *Node) setIndex(ep string) int {
	for i, e := range n.cfg.Set {
		if e == ep {
			return i
		}
	}
	return len(n.cfg.Set)
}

// Leader returns the endpoint the feed currently follows ("" unknown).
// On a leader node it is Self.
func (n *Node) Leader() string {
	if n.cfg.Registry.ReplicaOf() == "" {
		return n.cfg.Self
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// IsLeader reports whether the local registry currently serves writes.
func (n *Node) IsLeader() bool { return n.cfg.Registry.ReplicaOf() == "" }

// Status snapshots the node for /health.
func (n *Node) Status() Status {
	epoch, _ := n.cfg.Registry.Epoch()
	seq := n.cfg.Registry.Seq()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		Epoch:      epoch,
		Seq:        seq,
		Attached:   n.attached,
		HandedBack: n.handed,
		LastError:  n.lastErr,
	}
	if !n.lastFeed.IsZero() {
		st.LastFeed = n.lastFeed.UTC().Format(time.RFC3339Nano)
	}
	if of := n.cfg.Registry.ReplicaOf(); of != "" {
		st.Role, st.Leader = "replica", of
		st.LeaderSeq = n.leaderSeq
		if n.leaderSeq > seq {
			st.Lag = n.leaderSeq - seq
		}
	} else {
		st.Role, st.Leader = "leader", n.cfg.Self
		st.Attached = true
	}
	return st
}

// Bootstrap decides the node's initial role. With ReplicaOf configured it
// joins that leader. Otherwise it probes the set: a live leader running a
// regime at least as new as the local WAL remembers is joined (the
// restarted-old-leader path, with handback of unreplicated acknowledged
// writes); with no such leader the node assumes leadership itself.
func (n *Node) Bootstrap(ctx context.Context) error {
	if n.cfg.ReplicaOf != "" {
		return n.JoinAs(ctx, n.cfg.ReplicaOf)
	}
	ownEpoch, _ := n.cfg.Registry.Epoch()
	for _, ep := range n.cfg.Set {
		if ep == n.cfg.Self {
			continue
		}
		st, err := n.client(ep).ReplStatus(ctx)
		if err != nil {
			continue
		}
		// Epoch 0 is a registry that never assumed a regime (every real
		// leader runs epoch ≥ 1): not a leader to follow, just a fresh
		// member that has not bootstrapped yet.
		if st.Role == "leader" && st.Epoch > 0 && st.Epoch >= ownEpoch {
			return n.JoinAs(ctx, ep)
		}
	}
	return n.assumeLeadership()
}

// assumeLeadership makes this node the leader of its current epoch — or,
// when the WAL remembers a different node leading it, of the next one, so
// a regime never has two names.
func (n *Node) assumeLeadership() error {
	reg := n.cfg.Registry
	epoch, epochLeader := reg.Epoch()
	if epoch == 0 || epochLeader != n.cfg.Self {
		epoch++
	}
	return n.promote(epoch, "bootstrap")
}

// Promote makes this node the leader under the given epoch: the epoch is
// fenced into the WAL, replica mode ends, and the promotion is audited.
func (n *Node) Promote(epoch uint64) error {
	return n.promote(epoch, "elected")
}

func (n *Node) promote(epoch uint64, why string) error {
	reg := n.cfg.Registry
	if err := reg.SetEpoch(epoch, n.cfg.Self); err != nil {
		return err
	}
	reg.SetReplicaOf("")
	n.mu.Lock()
	n.leader = n.cfg.Self
	n.attached = false
	n.lastErr = ""
	n.mu.Unlock()
	n.record(audit.Event{Type: audit.ReplicaPromote, Home: n.cfg.Self,
		Detail: fmt.Sprintf("%s: leading epoch %d from seq %d", why, epoch, reg.Seq())})
	return nil
}

// Demote flips the node into a replica of the given leader; the next
// AttachOnce re-grounds it.
func (n *Node) Demote(leader string) {
	n.cfg.Registry.SetReplicaOf(leader)
	n.mu.Lock()
	n.leader = leader
	n.attached = false
	n.mu.Unlock()
}

// Follow re-points the feed at a leader that replicated the same history
// this node did — the election loser's path, where the winner's position
// is at least ours by the promotion rule. Unlike Demote it keeps the node
// attached with its own journal position as the cursor, skipping the
// state transfer: a re-ground would discard the local journal ring, and
// with it every importer and watcher cursor parked on this node. If the
// optimism is wrong — the new leader's history diverged below our
// position after all — its feed answers resync and PullOnce falls back
// to a full attach.
func (n *Node) Follow(leader string) {
	n.cfg.Registry.SetReplicaOf(leader)
	seq := n.cfg.Registry.Seq()
	n.mu.Lock()
	n.leader = leader
	n.cursor = seq
	n.attached = true
	n.mu.Unlock()
}

// JoinAs demotes to a replica of leader and runs the attach.
func (n *Node) JoinAs(ctx context.Context, leader string) error {
	n.Demote(leader)
	return n.AttachOnce(ctx)
}

// AttachOnce performs one state transfer from the current leader: fetch
// the leader's dump, hand back any acknowledged writes only this node's
// WAL knows about (the restarted-old-leader case), and re-ground the
// local registry — entries, journal position, epoch, and a reset WAL —
// on the dump. On success the feed cursor is the dump's position.
func (n *Node) AttachOnce(ctx context.Context) error {
	n.mu.Lock()
	leader := n.leader
	n.mu.Unlock()
	if leader == "" || leader == n.cfg.Self {
		return ErrNoLeader
	}
	st, err := n.client(leader).ReplSync(ctx)
	if err != nil {
		n.fail(err)
		return err
	}
	handed, herr := n.handback(ctx, leader, &st)
	if herr != nil {
		n.fail(herr)
		return herr
	}
	epochLeader := st.Leader
	if epochLeader == "" {
		epochLeader = leader
	}
	if err := n.cfg.Registry.ApplyReplicatedState(st.Entries, st.Deadlines, st.Seq, st.Epoch, epochLeader); err != nil {
		n.fail(err)
		return err
	}
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	n.cursor = st.Seq
	n.leaderSeq = st.Seq
	n.attached = true
	n.handed += handed
	n.lastErr = ""
	n.lastFeed = now
	n.mu.Unlock()
	detail := fmt.Sprintf("attached to %s at seq %d, epoch %d (%d entries)",
		leader, st.Seq, st.Epoch, len(st.Entries))
	if handed > 0 {
		detail += fmt.Sprintf("; handed back %d unreplicated acknowledged writes", handed)
	}
	n.record(audit.Event{Type: audit.ReplicaAttach, Home: n.cfg.Self, Detail: detail})
	return nil
}

// handback re-registers acknowledged writes that exist only in this
// node's WAL with the new leader, before the attach discards them. It
// runs only on a deposed leader rejoining a newer regime — a replica
// that merely fell behind must NOT resurrect entries its leader deleted.
// Each surviving local entry absent from the leader's dump is saved back
// under its own key with its remaining lifetime, so nothing a client got
// an acknowledgment for is lost to the failover, and lease semantics are
// preserved.
func (n *Node) handback(ctx context.Context, leader string, st *uddi.ReplState) (int, error) {
	reg := n.cfg.Registry
	epoch, epochLeader := reg.Epoch()
	if epochLeader != n.cfg.Self || epoch >= st.Epoch {
		return 0, nil
	}
	entries, deadlines, _, _, _ := reg.ReplState()
	if len(entries) == 0 {
		return 0, nil
	}
	have := make(map[string]bool, len(st.Entries))
	for _, e := range st.Entries {
		have[e.Key] = true
	}
	now := n.cfg.Clock.Now()
	cl := n.client(leader)
	handed := 0
	for i, e := range entries {
		if have[e.Key] {
			continue
		}
		remaining := deadlines[i].Sub(now)
		if remaining <= 0 {
			continue
		}
		if _, err := cl.Save(ctx, e, remaining); err != nil {
			return handed, fmt.Errorf("replica: handback of %s: %w", e.Key, err)
		}
		handed++
	}
	return handed, nil
}

// PullOnce runs one feed round against the leader: a repl_watch from the
// cursor, carrying this node's epoch so a deposed leader fences itself.
// Changes apply under the leader's sequence numbers; a resync answer
// (the leader's journal outran us) falls back to a fresh state transfer.
// Returns how many changes were applied.
func (n *Node) PullOnce(ctx context.Context) (int, error) {
	if n.IsLeader() {
		return 0, nil
	}
	n.mu.Lock()
	leader, cursor, attached := n.leader, n.cursor, n.attached
	n.mu.Unlock()
	if leader == "" || leader == n.cfg.Self {
		return 0, ErrNoLeader
	}
	if !attached {
		if err := n.AttachOnce(ctx); err != nil {
			return 0, err
		}
		n.mu.Lock()
		cursor = n.cursor
		n.mu.Unlock()
	}
	epoch, _ := n.cfg.Registry.Epoch()
	rc, err := n.client(leader).ReplWatch(ctx, cursor, epoch, n.cfg.PollTimeout)
	if err != nil {
		n.fail(err)
		return 0, err
	}
	if rc.Epoch < epoch {
		// The feed answered from an older regime than this node has
		// acknowledged: a deposed leader that has not noticed yet.
		err := fmt.Errorf("replica: feed %s at epoch %d, node at %d: %w",
			leader, rc.Epoch, epoch, uddi.ErrStaleEpoch)
		n.fail(err)
		return 0, err
	}
	if rc.Epoch > epoch {
		// The regime advanced (a promotion happened upstream); adopt it.
		epochLeader := rc.Leader
		if epochLeader == "" {
			epochLeader = leader
		}
		if err := n.cfg.Registry.SetEpoch(rc.Epoch, epochLeader); err != nil {
			n.fail(err)
			return 0, err
		}
	}
	if rc.Resync {
		n.mu.Lock()
		n.attached = false
		n.mu.Unlock()
		if err := n.AttachOnce(ctx); err != nil {
			return 0, err
		}
		return 0, nil
	}
	applied := 0
	for _, c := range rc.Changes {
		if err := n.cfg.Registry.ApplyReplicated(c); err != nil {
			n.fail(err)
			return applied, err
		}
		applied++
	}
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	n.cursor = rc.Next
	n.leaderSeq = rc.Next
	n.lastErr = ""
	n.lastFeed = now
	n.mu.Unlock()
	return applied, nil
}

// ElectOnce runs one deterministic election round after the feed died:
// probe every set member, and follow — or become — the winner. A live
// leader of a current-or-newer regime short-circuits the election (we
// just re-point at it). Otherwise the live member with the highest
// replicated sequence number wins, ties breaking toward the earliest
// set position; every survivor computes the same winner independently.
// Returns true when this node promoted itself.
func (n *Node) ElectOnce(ctx context.Context) (bool, error) {
	type cand struct {
		ep string
		st uddi.ReplStatus
	}
	ownEpoch, _ := n.cfg.Registry.Epoch()
	maxEpoch := ownEpoch
	var cands []cand
	for _, ep := range n.cfg.Set {
		var st uddi.ReplStatus
		if ep == n.cfg.Self {
			st = uddi.ReplStatus{Seq: n.cfg.Registry.Seq(), Epoch: ownEpoch}
		} else {
			var err error
			st, err = n.client(ep).ReplStatus(ctx)
			if err != nil {
				continue
			}
		}
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
		cands = append(cands, cand{ep, st})
	}
	// A live leader of the newest regime seen wins by incumbency (epoch
	// 0 is a never-bootstrapped member, not an incumbent). Follow rather
	// than re-attach: the incumbent promoted out of the same feed this
	// node was on, so the local journal ring — and the importer cursors
	// parked on it — stays intact.
	for _, c := range cands {
		if c.ep != n.cfg.Self && c.st.Role == "leader" && c.st.Epoch > 0 && c.st.Epoch >= maxEpoch {
			n.Follow(c.ep)
			return false, nil
		}
	}
	win := cands[0]
	for _, c := range cands[1:] {
		if c.st.Seq > win.st.Seq {
			win = c
		}
	}
	if win.ep == n.cfg.Self {
		return true, n.Promote(maxEpoch + 1)
	}
	n.Follow(win.ep)
	return false, nil
}

// CheckEpoch is the leader's fencing sweep: probe the set for a rival
// leader. A rival with a newer epoch — or the same epoch but an earlier
// set position (the deterministic loser of a double promotion) — deposes
// this node, which rejoins the rival as a replica. No-op on replicas.
func (n *Node) CheckEpoch(ctx context.Context) error {
	if !n.IsLeader() {
		return nil
	}
	ownEpoch, _ := n.cfg.Registry.Epoch()
	for _, ep := range n.cfg.Set {
		if ep == n.cfg.Self {
			continue
		}
		st, err := n.client(ep).ReplStatus(ctx)
		if err != nil || st.Role != "leader" {
			continue
		}
		if st.Epoch > ownEpoch ||
			(st.Epoch == ownEpoch && n.setIndex(ep) < n.setIndex(n.cfg.Self)) {
			n.record(audit.Event{Type: audit.ReplicaAttach, Home: n.cfg.Self,
				Detail: fmt.Sprintf("deposed: %s leads epoch %d (own epoch %d); rejoining as replica", ep, st.Epoch, ownEpoch)})
			return n.JoinAs(ctx, ep)
		}
	}
	return nil
}

func (n *Node) fail(err error) {
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
}

// Run drives the node until ctx ends: replicas attach and pull, electing
// when the feed dies; leaders periodically sweep for rival regimes. This
// is the background loop vsrd runs; tests and the simulation call the
// individual steps instead.
func (n *Node) Run(ctx context.Context) {
	sweepEvery := 4 * n.cfg.RetryDelay
	for ctx.Err() == nil {
		if n.IsLeader() {
			if err := n.sleep(ctx, sweepEvery); err != nil {
				return
			}
			_ = n.CheckEpoch(ctx)
			continue
		}
		if _, err := n.PullOnce(ctx); err != nil && ctx.Err() == nil {
			if promoted, _ := n.ElectOnce(ctx); promoted {
				continue
			}
			if err := n.sleep(ctx, n.cfg.RetryDelay); err != nil {
				return
			}
		}
	}
}

func (n *Node) sleep(ctx context.Context, d time.Duration) error {
	t := n.cfg.Clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C():
		return nil
	}
}
