// Package identity gives each home a durable cryptographic identity and
// enforces it at the federation's trust boundaries. The paper's
// framework trusts the home network outright (§3.1 assumes gateways on
// one residential LAN); PR 4 opened the wide-area scenario — inter-home
// peering and cross-home gateway calls — which makes every federation
// face reachable from outside the house. This package closes that gap:
//
//   - an Identity is one home's ed25519 keypair, generated once and kept
//     in a flat file (vsrd/vsgd -identity);
//   - a home trusts its peers by name→public-key entries (-trust);
//   - every wire operation that crosses a home boundary — peer
//     replication (watch, snapshot), registry publication, cross-home
//     gateway calls — is signed by the caller and the response is signed
//     back, so both ends of a peer link authenticate each other on every
//     round (the "mutual handshake" is per-operation, not per-session:
//     there is no connection state to hijack);
//   - per-service ACLs (allow/deny by caller home + service-ID pattern,
//     events.TopicMatches semantics) decide what each authenticated peer
//     may see and call, composing with the export Policy — deny wins,
//     and unauthenticated peers see nothing at all.
//
// The design follows the policy-free-middleware argument (Dearle et
// al.): trust decisions live at explicit, auditable boundaries — the
// Auth object each federation component shares — rather than being baked
// into transport. Signing covers the request/response bodies and a
// timestamped nonce (replays are rejected within the clock-skew window),
// but the wire itself stays plain HTTP: confidentiality is out of scope
// here and documented as such in docs/security.md.
//
// Everything is opt-in: a federation without an identity behaves exactly
// as before (the paper's single-home trust model), and the in-process
// loopback fast path is untouched — authentication work lands only on
// wire edges.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
)

// Identity is one home's keypair. The private key never leaves the
// process; peers learn only the public key (PublicKey, the -trust
// token).
type Identity struct {
	home string
	priv ed25519.PrivateKey
}

// Generate creates a fresh identity for the named home.
func Generate(home string) (*Identity, error) {
	if home == "" {
		return nil, fmt.Errorf("identity: a home must be named")
	}
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key for %s: %w", home, err)
	}
	return &Identity{home: home, priv: priv}, nil
}

// FromSeed builds a deterministic identity from a 32-byte seed (tests).
func FromSeed(home string, seed []byte) (*Identity, error) {
	if home == "" {
		return nil, fmt.Errorf("identity: a home must be named")
	}
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("identity: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &Identity{home: home, priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// Home returns the home this identity names.
func (id *Identity) Home() string { return id.home }

// PublicKey returns the hex public key — the token other homes put in
// their trust stores (vsrd -trust '<home>=<this>').
func (id *Identity) PublicKey() string {
	return hex.EncodeToString(id.priv.Public().(ed25519.PublicKey))
}

// sign produces the hex signature over msg.
func (id *Identity) sign(msg []byte) string {
	return hex.EncodeToString(ed25519.Sign(id.priv, msg))
}

// Identity file format: line-oriented, one "key value" pair per line,
// '#' comments. The seed line is the secret; the file should be 0600.
//
//	# homeconnect home identity — keep this file private
//	home cottage
//	seed 9f8e...
const fileHeader = "# homeconnect home identity — keep this file private\n"

// Save writes the identity to path with owner-only permissions.
func (id *Identity) Save(path string) error {
	seed := hex.EncodeToString(id.priv.Seed())
	data := fileHeader + "home " + id.home + "\nseed " + seed + "\n"
	if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
		return fmt.Errorf("identity: save %s: %w", path, err)
	}
	return nil
}

// Load reads an identity file written by Save.
func Load(path string) (*Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("identity: load: %w", err)
	}
	var home, seedHex string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("identity: %s: malformed line %q", path, line)
		}
		switch k {
		case "home":
			home = strings.TrimSpace(v)
		case "seed":
			seedHex = strings.TrimSpace(v)
		}
	}
	if home == "" || seedHex == "" {
		return nil, fmt.Errorf("identity: %s: missing home or seed", path)
	}
	seed, err := hex.DecodeString(seedHex)
	if err != nil {
		return nil, fmt.Errorf("identity: %s: bad seed: %w", path, err)
	}
	return FromSeed(home, seed)
}

// LoadOrGenerate loads the identity at path, or — when the file does not
// exist — generates one for home and saves it there. generated reports
// which happened, so daemons can print the new public key once.
func LoadOrGenerate(path, home string) (id *Identity, generated bool, err error) {
	if _, statErr := os.Stat(path); statErr == nil {
		id, err = Load(path)
		if err != nil {
			return nil, false, err
		}
		if home != "" && id.Home() != home {
			return nil, false, fmt.Errorf("identity: %s names home %q, want %q", path, id.Home(), home)
		}
		return id, false, nil
	}
	id, err = Generate(home)
	if err != nil {
		return nil, false, err
	}
	if err := id.Save(path); err != nil {
		return nil, false, err
	}
	return id, true, nil
}

// ParseTrust splits a "-trust" flag value, "<home>=<hex public key>".
func ParseTrust(spec string) (home, key string, err error) {
	home, key, ok := strings.Cut(spec, "=")
	if !ok || home == "" || key == "" {
		return "", "", fmt.Errorf("identity: trust spec %q, want home=hexkey", spec)
	}
	return home, key, nil
}

// Configure applies flag-shaped trust and ACL specs to an Auth — the
// one assembly the daemons (vsrd, vsgd) share, so spec validation lives
// here rather than per main package. trust entries are
// "home=hex-public-key"; ACL rules "caller-pattern=service-pattern".
func Configure(auth *Auth, trust, aclAllow, aclDeny []string) error {
	for _, spec := range trust {
		home, key, err := ParseTrust(spec)
		if err != nil {
			return err
		}
		if err := auth.Trust(home, key); err != nil {
			return err
		}
	}
	var acl ACL
	for _, spec := range aclAllow {
		r, err := ParseRule(spec)
		if err != nil {
			return err
		}
		acl.Allow = append(acl.Allow, r)
	}
	for _, spec := range aclDeny {
		r, err := ParseRule(spec)
		if err != nil {
			return err
		}
		acl.Deny = append(acl.Deny, r)
	}
	if len(acl.Allow) > 0 || len(acl.Deny) > 0 {
		auth.SetACL(acl)
	}
	return nil
}
