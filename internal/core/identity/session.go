// Session-keyed authentication: the handshake provider behind the
// binary fast-path wire protocol (internal/transport). One signed mutual
// handshake per connection replaces the per-operation ed25519
// sign/verify the SOAP path pays: each side contributes an ephemeral
// X25519 key authenticated by its long-lived home identity, the ECDH
// shared secret is folded into per-direction HMAC-SHA256 session keys,
// and steady-state operations then cost one MAC each. Sessions have a
// bounded lifetime and are rekeyed in place by a fresh handshake on the
// same link; establish, rekey and expiry all land in the audit log.
//
// The hello reuses the per-operation machinery's replay defenses — the
// ±maxSkew timestamp window and the nonce cache — so a recorded
// handshake can no more be replayed than a recorded request.
package identity

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// defaultSessionTTL is the session lifetime bound: how long one
// handshake's keys may authenticate traffic before a rekey is forced.
const defaultSessionTTL = 10 * time.Minute

// Signed-string prefixes, in the reqMessage/respMessage style.
const (
	sessHelloV1  = "homeconnect.sess.hello.v1"
	sessAcceptV1 = "homeconnect.sess.accept.v1"
	sessKeysV1   = "homeconnect.sess.keys.v1"
)

// SetSessionTTL overrides the session lifetime (tests and operators
// wanting tighter rekey cadence). Non-positive restores the default.
func (a *Auth) SetSessionTTL(d time.Duration) {
	if d <= 0 {
		d = 0
	}
	a.sessTTL.Store(int64(d))
}

// sessionTTL returns the effective session lifetime.
func (a *Auth) sessionTTL() time.Duration {
	if d := a.sessTTL.Load(); d > 0 {
		return time.Duration(d)
	}
	return defaultSessionTTL
}

// SessionActive reports whether this Auth can run session handshakes —
// an identity is installed. Open mode stays SOAP-only and byte-identical
// to the pre-session wire.
func (a *Auth) SessionActive() bool { return a.Enabled() }

// sessionClient is one in-flight dialing-side handshake.
type sessionClient struct {
	a     *Auth
	eph   *ecdh.PrivateKey
	nonce string
	hello []byte
}

// NewSessionClient starts a dialing-side handshake: a fresh ephemeral
// X25519 key and a hello blob signed by the home identity.
func (a *Auth) NewSessionClient() (transport.SessionClient, error) {
	id := a.id.Load()
	if id == nil {
		return nil, fmt.Errorf("identity: no identity installed; sessions need one")
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: ephemeral key: %w", err)
	}
	var raw [16]byte
	_, _ = rand.Read(raw[:])
	nonce := hex.EncodeToString(raw[:])
	ts := strconv.FormatInt(a.nowFn().UnixMilli(), 10)
	ephHex := hex.EncodeToString(eph.PublicKey().Bytes())
	msg := sessHelloV1 + "\n" + id.Home() + "\n" + ts + "\n" + nonce + "\n" + ephHex
	hello := msg + "\n" + id.sign([]byte(msg))
	return &sessionClient{a: a, eph: eph, nonce: nonce, hello: []byte(hello)}, nil
}

// Hello returns the signed hello blob.
func (c *sessionClient) Hello() []byte { return c.hello }

// Finish verifies the listener's accept blob — the peer must be trusted
// and its signature must bind to this hello's nonce and ephemeral key —
// and derives the dialer-side session.
func (c *sessionClient) Finish(accept []byte) (*transport.Session, error) {
	a := c.a
	id := a.id.Load()
	if id == nil {
		return nil, fmt.Errorf("identity: identity removed mid-handshake")
	}
	fields := strings.Split(string(accept), "\n")
	if len(fields) != 5 || fields[0] != sessAcceptV1 {
		return nil, fmt.Errorf("identity: malformed session accept: %w", service.ErrUnauthenticated)
	}
	peer, peerEphHex, ttlMS, sig := fields[1], fields[2], fields[3], fields[4]
	key, ok := a.keyFor(peer)
	if !ok {
		return nil, fmt.Errorf("identity: accepting home %q is not trusted here: %w", peer, service.ErrUnauthenticated)
	}
	ephHex := hex.EncodeToString(c.eph.PublicKey().Bytes())
	msg := sessAcceptV1 + "\n" + peer + "\n" + c.nonce + "\n" + ephHex + "\n" + peerEphHex + "\n" + ttlMS
	sigRaw, err := hex.DecodeString(sig)
	if err != nil || !ed25519.Verify(key, []byte(msg), sigRaw) {
		return nil, fmt.Errorf("identity: session accept from %q does not verify: %w", peer, service.ErrUnauthenticated)
	}
	ms, err := strconv.ParseInt(ttlMS, 10, 64)
	if err != nil || ms <= 0 {
		return nil, fmt.Errorf("identity: bad session lifetime %q: %w", ttlMS, service.ErrUnauthenticated)
	}
	c2s, s2c, sid, err := deriveSessionKeys(c.eph, peerEphHex, id.Home(), peer, c.nonce)
	if err != nil {
		return nil, err
	}
	now := a.nowFn()
	ttl := time.Duration(ms) * time.Millisecond
	s := transport.NewSession(sid, peer, now, now.Add(ttl), c2s, s2c)
	a.record(audit.Event{Type: audit.SessionEstablish, Caller: peer,
		Detail: fmt.Sprintf("session %s established (dialer), lifetime %s", sid, ttl)})
	return s, nil
}

// AcceptSession runs the listener half: verify the dialer's signed
// hello (trust, skew window, nonce freshness), contribute an ephemeral
// key, and answer with a signed accept bound to the hello.
func (a *Auth) AcceptSession(hello []byte) (accept []byte, s *transport.Session, err error) {
	id := a.id.Load()
	if id == nil {
		return nil, nil, fmt.Errorf("identity: no identity installed; sessions need one")
	}
	fields := strings.Split(string(hello), "\n")
	if len(fields) != 6 || fields[0] != sessHelloV1 {
		a.record(audit.Event{Type: audit.AuthRefused, Detail: "malformed session hello"})
		return nil, nil, fmt.Errorf("identity: malformed session hello: %w", service.ErrUnauthenticated)
	}
	peer, ts, nonce, peerEphHex, sig := fields[1], fields[2], fields[3], fields[4], fields[5]
	key, ok := a.keyFor(peer)
	if !ok {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: peer, Detail: "session hello from untrusted home"})
		return nil, nil, fmt.Errorf("identity: home %q is not trusted here: %w", peer, service.ErrUnauthenticated)
	}
	msg := sessHelloV1 + "\n" + peer + "\n" + ts + "\n" + nonce + "\n" + peerEphHex
	sigRaw, err := hex.DecodeString(sig)
	if err != nil || !ed25519.Verify(key, []byte(msg), sigRaw) {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: peer, Detail: "session hello signature does not verify"})
		return nil, nil, fmt.Errorf("identity: session hello from %q does not verify: %w", peer, service.ErrUnauthenticated)
	}
	ms, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: peer, Detail: "unparseable hello timestamp " + ts})
		return nil, nil, fmt.Errorf("identity: bad hello timestamp %q: %w", ts, service.ErrUnauthenticated)
	}
	now := a.nowFn()
	stamp := time.UnixMilli(ms)
	if d := now.Sub(stamp); d > maxSkew || d < -maxSkew {
		a.record(audit.Event{Type: audit.ReplayRejected, Caller: peer,
			Detail: fmt.Sprintf("hello timestamp %s outside ±%s skew window", stamp.Format(time.RFC3339), maxSkew)})
		return nil, nil, fmt.Errorf("identity: hello timestamp outside ±%s skew window: %w", maxSkew, service.ErrUnauthenticated)
	}
	// The nonce cache is shared with per-operation auth; the prefix keeps
	// the two protocols from colliding.
	if !a.admitNonce("sess\x00"+nonce, stamp, now) {
		a.record(audit.Event{Type: audit.ReplayRejected, Caller: peer, Detail: "session hello nonce replayed"})
		return nil, nil, fmt.Errorf("identity: session hello replayed: %w", service.ErrUnauthenticated)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("identity: ephemeral key: %w", err)
	}
	ephHex := hex.EncodeToString(eph.PublicKey().Bytes())
	ttl := a.sessionTTL()
	ttlMS := strconv.FormatInt(ttl.Milliseconds(), 10)
	// The accept signature binds to the hello's nonce and ephemeral key,
	// so a recorded accept cannot answer any other handshake.
	signMsg := sessAcceptV1 + "\n" + id.Home() + "\n" + nonce + "\n" + peerEphHex + "\n" + ephHex + "\n" + ttlMS
	blob := sessAcceptV1 + "\n" + id.Home() + "\n" + ephHex + "\n" + ttlMS + "\n" + id.sign([]byte(signMsg))
	c2s, s2c, sid, err := deriveSessionKeys(eph, peerEphHex, peer, id.Home(), nonce)
	if err != nil {
		return nil, nil, err
	}
	s = transport.NewSession(sid, peer, now, now.Add(ttl), s2c, c2s)
	a.record(audit.Event{Type: audit.SessionEstablish, Caller: peer,
		Detail: fmt.Sprintf("session %s established (listener), lifetime %s", sid, ttl)})
	return []byte(blob), s, nil
}

// NoteSessionEnd records the end of a session's life in the audit log.
func (a *Auth) NoteSessionEnd(s *transport.Session, rekeyed bool) {
	if s == nil {
		return
	}
	typ := audit.SessionExpire
	verb := "ended"
	if rekeyed {
		typ = audit.SessionRekey
		verb = "rekeyed in place"
	}
	a.record(audit.Event{Type: typ, Caller: s.Peer,
		Detail: fmt.Sprintf("session %s %s after %s", s.ID, verb, s.Age(a.nowFn()).Round(time.Millisecond))})
}

// deriveSessionKeys folds the ECDH shared secret and handshake
// transcript into the per-direction keys and the session ID. dialerHome
// and listenerHome orient the derivation so both sides agree which key
// is which; the session ID is a keyed digest of the transcript, safe to
// log.
func deriveSessionKeys(eph *ecdh.PrivateKey, peerEphHex, dialerHome, listenerHome, nonce string) (c2s, s2c [32]byte, id string, err error) {
	peerRaw, err := hex.DecodeString(peerEphHex)
	if err != nil {
		return c2s, s2c, "", fmt.Errorf("identity: bad ephemeral key encoding: %w", service.ErrUnauthenticated)
	}
	peerKey, err := ecdh.X25519().NewPublicKey(peerRaw)
	if err != nil {
		return c2s, s2c, "", fmt.Errorf("identity: bad ephemeral key: %w", service.ErrUnauthenticated)
	}
	shared, err := eph.ECDH(peerKey)
	if err != nil {
		return c2s, s2c, "", fmt.Errorf("identity: ECDH: %w", service.ErrUnauthenticated)
	}
	base := hmac.New(sha256.New, shared)
	base.Write([]byte(sessKeysV1 + "\n" + dialerHome + "\n" + listenerHome + "\n" + nonce))
	root := base.Sum(nil)
	derive := func(label string) (out [32]byte) {
		m := hmac.New(sha256.New, root)
		m.Write([]byte(label))
		copy(out[:], m.Sum(nil))
		return out
	}
	c2s = derive("c2s")
	s2c = derive("s2c")
	idm := derive("id")
	return c2s, s2c, hex.EncodeToString(idm[:8]), nil
}
