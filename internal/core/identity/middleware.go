// HTTP enforcement: Require wraps a federation face (the registry's
// /uddi and /peer mounts, a gateway's /services and /events mounts) with
// request verification, caller injection, and response signing. Each
// face keeps its own wire-native error rendering via a DenyWriter — a
// UDDI dispositionReport, a SOAP fault, a plain HTTP status — so clients
// of that face see a typed refusal in the protocol they speak.
package identity

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/service"
)

// maxAuthBody bounds how much request body the middleware will read for
// signature verification; both the UDDI and SOAP faces enforce their own
// 1 MiB limits below this.
const maxAuthBody = 2 << 20

// callerKey carries the verified caller home through request contexts.
type callerKey struct{}

// WithCaller returns ctx annotated with a verified caller home.
func WithCaller(ctx context.Context, home string) context.Context {
	return context.WithValue(ctx, callerKey{}, home)
}

// CallerFromContext returns the verified caller home, "" when the
// request was not authenticated (open mode).
func CallerFromContext(ctx context.Context) string {
	home, _ := ctx.Value(callerKey{}).(string)
	return home
}

// CallerFrom reads the verified caller home off a request.
func CallerFrom(r *http.Request) string { return CallerFromContext(r.Context()) }

// DenyWriter renders an authentication refusal in a face's wire
// protocol. code is service.RemoteCode vocabulary: "Unauthenticated" or
// "Forbidden".
type DenyWriter func(w http.ResponseWriter, code, msg string)

// HTTPDeny is the DenyWriter for plain-HTTP faces (the event hub).
func HTTPDeny(w http.ResponseWriter, code, msg string) {
	status := http.StatusUnauthorized
	if code == "Forbidden" {
		status = http.StatusForbidden
	}
	http.Error(w, msg, status)
}

// Require wraps next with the home-boundary check. With auth nil or in
// open mode requests pass through untouched (caller ""). Once an
// identity is installed every request must carry a valid signature from
// a trusted home (refusals go through deny), the verified caller home is
// injected into the request context, and the response is signed back —
// the server half of the per-operation mutual handshake. ownOnly
// additionally restricts the face to this home's own identity: the
// read-write registry face, which peers have no business on.
func Require(auth *Auth, ownOnly bool, deny DenyWriter, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if auth == nil || !auth.Enabled() {
			next.ServeHTTP(w, r)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxAuthBody))
		if err != nil {
			deny(w, "Unauthenticated", "read request: "+err.Error())
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		buf := &bufferedResponse{header: make(http.Header)}
		caller, nonce, verr := auth.VerifyRequest(r.Header, body)
		switch {
		case verr != nil:
			deny(buf, remoteCodeOf(verr), verr.Error())
		case ownOnly && caller != auth.Home():
			auth.record(audit.Event{Type: audit.PolicyDeny, Caller: caller,
				Detail: "face " + r.URL.Path + " is private to this home"})
			deny(buf, "Forbidden", "identity: this face is private to home "+auth.Home()+": "+service.ErrForbidden.Error())
		default:
			next.ServeHTTP(buf, r.WithContext(WithCaller(r.Context(), caller)))
		}
		// Sign only when the request itself verified: signing a refusal
		// for an *unverified* request would bind this home's signature to
		// an attacker-chosen nonce — an oracle for forging "authentic"
		// refusals to third parties. Unverified callers get their denial
		// unsigned; verifying clients surface it as unverified peer
		// refusal (transport.NewAuthClient).
		if verr == nil {
			auth.SignResponse(buf.header, nonce, buf.body.Bytes())
		}
		buf.flush(w)
	})
}

// remoteCodeOf maps a verification error to the deny code vocabulary.
func remoteCodeOf(err error) string {
	if errors.Is(err, service.ErrForbidden) {
		return "Forbidden"
	}
	return "Unauthenticated"
}

// bufferedResponse captures a handler's response so the middleware can
// sign the complete body before anything reaches the wire.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

// flush replays the buffered response onto the real writer.
func (b *bufferedResponse) flush(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}
