// Tests for session-keyed authentication: the signed mutual handshake
// behind the binary fast path. The transcript is verified end to end by
// running both halves and exchanging MAC'd frames through the resulting
// sessions; refusal paths (untrusted peer, tampered blobs, replayed
// hello, skewed timestamps) must all land on ErrUnauthenticated, exactly
// like their per-operation counterparts.
package identity

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// handshake runs one full dialer↔listener exchange between two Auths.
func handshake(t *testing.T, dialer, listener *Auth) (client, server *transport.Session) {
	t.Helper()
	hc, err := dialer.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	accept, server, err := listener.AcceptSession(hc.Hello())
	if err != nil {
		t.Fatal(err)
	}
	client, err = hc.Finish(accept)
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestSessionHandshakeEstablishes(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)

	client, server := handshake(t, a, b)
	if client.Peer != "apartment" || server.Peer != "cottage" {
		t.Fatalf("peers = %q / %q, want apartment / cottage", client.Peer, server.Peer)
	}
	if client.ID != server.ID || client.ID == "" {
		t.Fatalf("session IDs %q / %q must match and be non-empty", client.ID, server.ID)
	}
	if got := server.Expiry.Sub(server.Established); got != defaultSessionTTL {
		t.Fatalf("session lifetime = %v, want %v", got, defaultSessionTTL)
	}
}

// TestSessionKeysAgree proves the two derivations meet: frames MAC'd by
// the dialer verify on the listener and vice versa, exercised through the
// transport's real frame path so a key-orientation regression cannot
// hide.
func TestSessionKeysAgree(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)

	srv := transport.NewBinServer(b)
	srv.Handle("/", transport.BinHandlerFunc(func(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
		return &transport.BinResponse{Status: 200, Body: []byte(caller + ":" + string(req.Body))}
	}))
	defer srv.Close()
	transport.RegisterLocal("keysagree.test:1", srv)
	defer transport.UnregisterLocal("keysagree.test:1")

	d := transport.NewDialer(a)
	defer d.Close()
	res, err := d.Exchange(context.Background(), "http://keysagree.test:1/x", "text/plain", "", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	// The caller the handler saw is the session-authenticated home — the
	// same principal per-operation signatures would have established.
	if string(res.Body) != "cottage:ping" {
		t.Fatalf("exchange body = %q, want cottage:ping", res.Body)
	}
}

func TestSessionRefusesUntrustedDialer(t *testing.T) {
	a, _ := testAuth(t, "cottage")
	b, _ := testAuth(t, "apartment") // b does not trust cottage
	hc, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = b.AcceptSession(hc.Hello())
	if !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("untrusted hello = %v, want ErrUnauthenticated", err)
	}
}

func TestSessionRefusesUntrustedListener(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, _ := testAuth(t, "apartment")
	// b trusts a, but a does not trust b: the dialer must reject the
	// accept even though the listener was happy.
	if err := b.Trust(aID.Home(), aID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	hc, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	accept, _, err := b.AcceptSession(hc.Hello())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Finish(accept); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("accept from untrusted listener = %v, want ErrUnauthenticated", err)
	}
}

func TestSessionHelloReplayRejected(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)
	hc, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	hello := hc.Hello()
	if _, _, err := b.AcceptSession(hello); err != nil {
		t.Fatal(err)
	}
	// The same recorded hello offered again must trip the nonce cache.
	_, _, err = b.AcceptSession(hello)
	if !errors.Is(err, service.ErrUnauthenticated) || !strings.Contains(err.Error(), "replayed") {
		t.Fatalf("replayed hello = %v, want replay rejection", err)
	}
}

func TestSessionHelloSkewRejected(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)
	b.setClock(func() time.Time { return time.Now().Add(maxSkew + time.Minute) })
	hc, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AcceptSession(hc.Hello()); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("skewed hello = %v, want ErrUnauthenticated", err)
	}
}

func TestSessionTamperedBlobsRejected(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)

	hc, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	hello := string(hc.Hello())
	// Flip the claimed home: the signature no longer binds.
	forged := strings.Replace(hello, "cottage", "apartment", 1)
	if _, _, err := b.AcceptSession([]byte(forged)); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("forged hello = %v, want ErrUnauthenticated", err)
	}

	accept, _, err := b.AcceptSession(hc.Hello())
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the advertised lifetime: the accept signature covers it.
	fields := strings.Split(string(accept), "\n")
	fields[3] = "999999999"
	if _, err := hc.Finish([]byte(strings.Join(fields, "\n"))); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("tampered accept = %v, want ErrUnauthenticated", err)
	}
}

func TestSessionAcceptCannotAnswerAnotherHandshake(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)
	// Two concurrent handshakes; the accept for the first must not
	// complete the second (the accept signature binds the hello's nonce
	// and ephemeral key).
	hc1, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	hc2, err := a.NewSessionClient()
	if err != nil {
		t.Fatal(err)
	}
	accept1, _, err := b.AcceptSession(hc1.Hello())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc2.Finish(accept1); !errors.Is(err, service.ErrUnauthenticated) {
		t.Fatalf("cross-handshake accept = %v, want ErrUnauthenticated", err)
	}
}

func TestSessionTTLOverride(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)
	b.SetSessionTTL(time.Second)
	_, server := handshake(t, a, b)
	if got := server.Expiry.Sub(server.Established); got != time.Second {
		t.Fatalf("overridden lifetime = %v, want 1s", got)
	}
	b.SetSessionTTL(0) // restore default
	_, server = handshake(t, a, b)
	if got := server.Expiry.Sub(server.Established); got != defaultSessionTTL {
		t.Fatalf("restored lifetime = %v, want %v", got, defaultSessionTTL)
	}
}

func TestSessionLifecycleAudited(t *testing.T) {
	a, aID := testAuth(t, "cottage")
	b, bID := testAuth(t, "apartment")
	trustBoth(t, a, aID, b, bID)
	log, err := audit.New(audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	b.SetRecorder(audit.WithFace(log, "auth", "apartment"))

	_, server := handshake(t, a, b)
	b.NoteSessionEnd(server, true)
	_, server = handshake(t, a, b)
	b.NoteSessionEnd(server, false)

	types := map[audit.Type]int{}
	for _, rec := range log.Tail(16, "") {
		types[rec.Type]++
	}
	if types[audit.SessionEstablish] != 2 || types[audit.SessionRekey] != 1 || types[audit.SessionExpire] != 1 {
		t.Fatalf("audited lifecycle = %v, want 2 establishes, 1 rekey, 1 expire", types)
	}
}

func TestSessionNeedsIdentity(t *testing.T) {
	a := NewAuth("cottage") // no identity installed
	if a.SessionActive() {
		t.Fatal("open-mode Auth claims sessions are possible")
	}
	if _, err := a.NewSessionClient(); err == nil {
		t.Fatal("NewSessionClient without identity accepted")
	}
	if _, _, err := a.AcceptSession([]byte("x")); err == nil {
		t.Fatal("AcceptSession without identity accepted")
	}
}
