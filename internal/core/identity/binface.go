// Binary-face adapter: the session-auth counterpart of Require. On the
// binary fast path the caller was authenticated once, at the session
// handshake, and every frame is MACed under the session keys — so there
// are no per-request headers to verify and no response to sign. What
// remains of the middleware's job is the home-boundary policy and caller
// injection, which BinFace applies before handing the tunneled request
// to the face's ordinary HTTP handler. Refusals render through the same
// DenyWriter the HTTP face uses, so clients decode identical typed
// errors on either path.
package identity

import (
	"bytes"
	"context"
	"net/http"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// BinFace adapts an HTTP face handler to the binary fast path. The
// tunneled request body, content type, and SOAPAction are replayed onto
// next as a POST carrying the session-verified caller in its context.
// ownOnly restricts the face to this home's own identity, exactly as
// Require does.
func BinFace(auth *Auth, ownOnly bool, deny DenyWriter, next http.Handler) transport.BinHandler {
	return transport.BinHandlerFunc(func(ctx context.Context, caller string, req *transport.BinRequest) *transport.BinResponse {
		buf := &bufferedResponse{header: make(http.Header)}
		if ownOnly && auth != nil && caller != auth.Home() {
			auth.record(audit.Event{Type: audit.PolicyDeny, Caller: caller,
				Detail: "face " + req.Path + " is private to this home"})
			deny(buf, "Forbidden", "identity: this face is private to home "+auth.Home()+": "+service.ErrForbidden.Error())
			return binResponseOf(buf)
		}
		r, err := http.NewRequestWithContext(WithCaller(ctx, caller), http.MethodPost,
			"http://homeconnect.bin"+req.Path, bytes.NewReader(req.Body))
		if err != nil {
			deny(buf, "Unauthenticated", "identity: rebuild tunneled request: "+err.Error())
			return binResponseOf(buf)
		}
		if req.ContentType != "" {
			r.Header.Set("Content-Type", req.ContentType)
		}
		if req.Action != "" {
			r.Header.Set("SOAPAction", `"`+req.Action+`"`)
		}
		next.ServeHTTP(buf, r)
		return binResponseOf(buf)
	})
}

// binResponseOf converts a buffered HTTP response into a binary frame
// response.
func binResponseOf(b *bufferedResponse) *transport.BinResponse {
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	return &transport.BinResponse{
		Status:      status,
		ContentType: b.header.Get("Content-Type"),
		Body:        b.body.Bytes(),
	}
}
