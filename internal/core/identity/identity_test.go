// Tests for the identity layer: key handling, the signed
// request/response exchange (including replay and skew rejection), trust
// parsing, policy/ACL semantics and the HTTP middleware.
package identity

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"homeconnect/internal/service"
)

func testAuth(t *testing.T, home string) (*Auth, *Identity) {
	t.Helper()
	id, err := Generate(home)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAuth(home)
	if err := a.SetIdentity(id); err != nil {
		t.Fatal(err)
	}
	return a, id
}

// trustBoth wires a ↔ b trust.
func trustBoth(t *testing.T, a *Auth, aID *Identity, b *Auth, bID *Identity) {
	t.Helper()
	if err := a.Trust(bID.Home(), bID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.Trust(aID.Home(), aID.PublicKey()); err != nil {
		t.Fatal(err)
	}
}

func TestIdentitySaveLoadRoundTrip(t *testing.T) {
	id, err := Generate("cottage")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cottage.id")
	if err := id.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Home() != "cottage" || loaded.PublicKey() != id.PublicKey() {
		t.Errorf("loaded identity %s/%s, want %s/%s", loaded.Home(), loaded.PublicKey(), "cottage", id.PublicKey())
	}
}

func TestLoadOrGenerate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "home.id")
	id1, generated, err := LoadOrGenerate(path, "cottage")
	if err != nil || !generated {
		t.Fatalf("first LoadOrGenerate: generated=%v err=%v", generated, err)
	}
	id2, generated, err := LoadOrGenerate(path, "cottage")
	if err != nil || generated {
		t.Fatalf("second LoadOrGenerate: generated=%v err=%v", generated, err)
	}
	if id1.PublicKey() != id2.PublicKey() {
		t.Error("reloaded identity differs from generated one")
	}
	if _, _, err := LoadOrGenerate(path, "mansion"); err == nil {
		t.Error("identity file for another home accepted")
	}
}

func TestRequestSignVerifyRoundTrip(t *testing.T) {
	a, aID := testAuth(t, "home-a")
	b, bID := testAuth(t, "home-b")
	trustBoth(t, a, aID, b, bID)

	body := []byte("<find_service/>")
	h := make(http.Header)
	nonce := a.SignRequest(h, body)
	if nonce == "" {
		t.Fatal("SignRequest returned no exchange token")
	}
	caller, gotNonce, err := b.VerifyRequest(h, body)
	if err != nil || caller != "home-a" || gotNonce != nonce {
		t.Fatalf("VerifyRequest = (%q, %q, %v), want (home-a, %q, nil)", caller, gotNonce, err, nonce)
	}

	// The response exchange binds to the request nonce.
	respBody := []byte("<serviceList/>")
	rh := make(http.Header)
	b.SignResponse(rh, nonce, respBody)
	if err := a.VerifyResponse(rh, nonce, respBody); err != nil {
		t.Fatalf("VerifyResponse: %v", err)
	}
	// A different exchange token must not verify.
	if err := a.VerifyResponse(rh, "0123456789abcdef0123456789abcdef", respBody); err == nil {
		t.Error("response verified against a foreign exchange token")
	}
}

func TestVerifyRequestRejections(t *testing.T) {
	a, aID := testAuth(t, "home-a")
	b, bID := testAuth(t, "home-b")
	trustBoth(t, a, aID, b, bID)
	stranger, _ := testAuth(t, "stranger")

	body := []byte("payload")
	sign := func(by *Auth) http.Header {
		h := make(http.Header)
		by.SignRequest(h, body)
		return h
	}

	cases := []struct {
		name string
		h    http.Header
	}{
		{"no credentials", make(http.Header)},
		{"untrusted home", sign(stranger)},
	}
	for _, c := range cases {
		if _, _, err := b.VerifyRequest(c.h, body); !errors.Is(err, service.ErrUnauthenticated) {
			t.Errorf("%s: err = %v, want ErrUnauthenticated", c.name, err)
		}
	}

	// A body that changed after signing.
	if _, _, err := b.VerifyRequest(sign(a), []byte("payload!")); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("tampered body: err = %v, want ErrUnauthenticated", err)
	}

	// A forged signature under a trusted name.
	h := sign(a)
	h.Set(HeaderSignature, strings.Repeat("ab", 64))
	if _, _, err := b.VerifyRequest(h, body); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("forged signature: err = %v, want ErrUnauthenticated", err)
	}
}

func TestVerifyRequestReplayAndSkew(t *testing.T) {
	a, aID := testAuth(t, "home-a")
	b, bID := testAuth(t, "home-b")
	trustBoth(t, a, aID, b, bID)

	body := []byte("x")
	h := make(http.Header)
	a.SignRequest(h, body)
	if _, _, err := b.VerifyRequest(h, body); err != nil {
		t.Fatal(err)
	}
	// The identical request again is a replay.
	if _, _, err := b.VerifyRequest(h, body); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("replay: err = %v, want ErrUnauthenticated", err)
	}

	// A request stamped outside the skew window is stale even with a
	// valid signature.
	h2 := make(http.Header)
	a.SignRequest(h2, body)
	b.setClock(func() time.Time { return time.Now().Add(maxSkew + time.Minute) })
	if _, _, err := b.VerifyRequest(h2, body); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("stale timestamp: err = %v, want ErrUnauthenticated", err)
	}
}

// TestReplayRejectedForFutureStampedRequests: the nonce cache must
// outlive the *timestamp's* validity, not the receipt time — a request
// stamped near the far edge of the skew window stays verifiable after
// a receipt-relative cache entry would have been forgotten.
func TestReplayRejectedForFutureStampedRequests(t *testing.T) {
	a, aID := testAuth(t, "home-a")
	b, bID := testAuth(t, "home-b")
	trustBoth(t, a, aID, b, bID)

	// home-a's clock runs 90s ahead of home-b's.
	base := time.Now()
	a.setClock(func() time.Time { return base.Add(90 * time.Second) })
	b.setClock(func() time.Time { return base })

	body := []byte("x")
	h := make(http.Header)
	a.SignRequest(h, body)
	if _, _, err := b.VerifyRequest(h, body); err != nil {
		t.Fatalf("future-stamped request inside the window: %v", err)
	}
	// 130s later the stamp (base+90) is still inside b's window
	// (130-90=40s old); the replay must still hit the nonce cache.
	b.setClock(func() time.Time { return base.Add(130 * time.Second) })
	if _, _, err := b.VerifyRequest(h, body); !errors.Is(err, service.ErrUnauthenticated) {
		t.Errorf("replay after receipt+maxSkew but inside stamp+maxSkew: err = %v, want ErrUnauthenticated", err)
	}
}

func TestOpenModePassesEverything(t *testing.T) {
	open := NewAuth("home-a")
	if open.Enabled() {
		t.Fatal("open auth reports enabled")
	}
	h := make(http.Header)
	if nonce := open.SignRequest(h, nil); nonce != "" || len(h) != 0 {
		t.Error("open SignRequest stamped headers")
	}
	if caller, _, err := open.VerifyRequest(make(http.Header), nil); caller != "" || err != nil {
		t.Errorf("open VerifyRequest = (%q, %v)", caller, err)
	}
	if err := open.VerifyResponse(make(http.Header), "", nil); err != nil {
		t.Errorf("open VerifyResponse: %v", err)
	}
	if err := open.Authorize("anyone", "x10:lamp-1"); err != nil {
		t.Errorf("open Authorize: %v", err)
	}
}

func TestAuthorizeComposesPolicyAndACL(t *testing.T) {
	a, _ := testAuth(t, "home-a")
	a.SetExportPolicy(Policy{Deny: []string{"x10:*"}})
	a.SetACL(ACL{
		Allow: []Rule{{Caller: "home-b", Service: "havi:*"}},
		Deny:  []Rule{{Caller: "*", Service: "havi:vcr-*"}},
	})

	cases := []struct {
		caller, id string
		allowed    bool
	}{
		{"home-a", "x10:lamp-1", true}, // own home bypasses everything
		{"home-b", "havi:dvcam-1", true},
		{"home-b", "havi:vcr-vcr1", false}, // ACL deny wins over allow
		{"home-b", "x10:lamp-1", false},    // export policy deny
		{"home-b", "jini:tv-1", false},     // outside the allow list
		{"home-c", "havi:dvcam-1", false},  // caller not in allow list
	}
	for _, c := range cases {
		err := a.Authorize(c.caller, c.id)
		if got := err == nil; got != c.allowed {
			t.Errorf("Authorize(%s, %s) = %v, want allowed=%v", c.caller, c.id, err, c.allowed)
		}
		if err != nil && !errors.Is(err, service.ErrForbidden) {
			t.Errorf("Authorize(%s, %s) = %v, want ErrForbidden", c.caller, c.id, err)
		}
	}
}

func TestACLAdmitsSemantics(t *testing.T) {
	cases := []struct {
		name            string
		acl             ACL
		caller, service string
		want            bool
	}{
		{"empty admits", ACL{}, "anyone", "x10:lamp-1", true},
		{"deny exact", ACL{Deny: []Rule{{Caller: "guest", Service: "x10:lamp-1"}}}, "guest", "x10:lamp-1", false},
		{"deny caller wildcard", ACL{Deny: []Rule{{Caller: "guest-*", Service: "*"}}}, "guest-2", "havi:cam", false},
		{"deny misses other caller", ACL{Deny: []Rule{{Caller: "guest", Service: "*"}}}, "family", "havi:cam", true},
		{"allow restricts", ACL{Allow: []Rule{{Caller: "family", Service: "havi:*"}}}, "family", "x10:lamp-1", false},
		{"allow matches", ACL{Allow: []Rule{{Caller: "family", Service: "havi:*"}}}, "family", "havi:cam", true},
		{"deny wins", ACL{Allow: []Rule{{Caller: "*", Service: "*"}}, Deny: []Rule{{Caller: "*", Service: "x10:*"}}}, "family", "x10:lamp-1", false},
	}
	for _, c := range cases {
		if got := c.acl.Admits(c.caller, c.service); got != c.want {
			t.Errorf("%s: Admits(%q, %q) = %v, want %v", c.name, c.caller, c.service, got, c.want)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if h, k, err := ParseTrust("cottage=abcd"); err != nil || h != "cottage" || k != "abcd" {
		t.Errorf("ParseTrust = (%q, %q, %v)", h, k, err)
	}
	if _, _, err := ParseTrust("no-separator"); err == nil {
		t.Error("malformed trust spec accepted")
	}
	if r, err := ParseRule("guest-*=havi:*"); err != nil || r.Caller != "guest-*" || r.Service != "havi:*" {
		t.Errorf("ParseRule = (%+v, %v)", r, err)
	}
	if _, err := ParseRule("="); err == nil {
		t.Error("empty rule spec accepted")
	}
}

// TestRequireMiddleware drives the HTTP wrapper end to end: open mode
// passes through, enabled mode refuses strangers, injects the caller,
// signs responses, and honors ownOnly.
func TestRequireMiddleware(t *testing.T) {
	a, aID := testAuth(t, "home-a")
	b, bID := testAuth(t, "home-b")
	trustBoth(t, a, aID, b, bID)

	var sawCaller string
	echo := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCaller = CallerFrom(r)
		body, _ := io.ReadAll(r.Body)
		_, _ = w.Write(append([]byte("echo:"), body...))
	})

	// Open mode: no auth object at all.
	srv := httptest.NewServer(Require(nil, false, HTTPDeny, echo))
	resp, err := http.Post(srv.URL, "text/plain", bytes.NewReader([]byte("hi")))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("open mode: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	srv.Close()

	// Enforced mode, server is home-b.
	srv = httptest.NewServer(Require(b, false, HTTPDeny, echo))
	defer srv.Close()

	// Unsigned request → 401.
	resp, err = http.Post(srv.URL, "text/plain", bytes.NewReader([]byte("hi")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unsigned request: status %d, want 401", resp.StatusCode)
	}

	// Signed request from trusted home-a → served, caller injected,
	// response signed and verifiable.
	body := []byte("ping")
	req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(body))
	nonce := a.SignRequest(req.Header, body)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(respBody) != "echo:ping" {
		t.Fatalf("signed request: %d %q", resp.StatusCode, respBody)
	}
	if sawCaller != "home-a" {
		t.Errorf("handler saw caller %q, want home-a", sawCaller)
	}
	if err := a.VerifyResponse(resp.Header, nonce, respBody); err != nil {
		t.Errorf("response signature: %v", err)
	}

	// An unverified request's refusal must arrive UNSIGNED: signing it
	// would bind the server's key to an attacker-chosen nonce (a forgery
	// oracle for "authentic" refusals).
	req, _ = http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(body))
	req.Header.Set(HeaderNonce, "41414141414141414141414141414141")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("nonce-only request: status %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get(HeaderSignature) != "" {
		t.Error("refusal of an unverified request carries a signature")
	}

	// ownOnly face refuses a trusted-but-foreign home.
	own := httptest.NewServer(Require(b, true, HTTPDeny, echo))
	defer own.Close()
	req, _ = http.NewRequest(http.MethodPost, own.URL, bytes.NewReader(body))
	a.SignRequest(req.Header, body)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("ownOnly face: status %d for foreign home, want 403", resp.StatusCode)
	}
}
