// Export policy and service ACLs: the declarative authorization surface
// a home's operator writes. Both reuse events.TopicMatches pattern
// semantics (exact, the universal "*" or empty, and "prefix*"
// wildcards), both make deny win, and both are enforced where data or
// calls cross the home boundary — the /peer view and the gateway's
// inbound SOAP face — never on in-home traffic.
package identity

import (
	"fmt"
	"strings"

	"homeconnect/internal/core/events"
)

// Policy is a home's export policy: which local services other homes may
// see at all. Patterns apply to the federation service ID, e.g. "havi:*"
// or "x10:lamp-1". It is caller-independent — a denied service never
// leaves the home for anyone; the ACL refines visibility and callability
// per caller on top of it.
type Policy struct {
	// Allow admits matching service IDs; empty admits everything.
	Allow []string
	// Deny hides matching service IDs and wins over Allow.
	Deny []string
}

// Admits reports whether the policy exports the given service ID.
func (p Policy) Admits(id string) bool {
	ok, _ := p.Decide(id)
	return ok
}

// Decide reports whether the policy exports the given service ID and,
// on denial, which deny pattern fired — "" when the refusal was an
// allow list that nothing matched. The pattern is what faults and audit
// records carry so an operator can see *which* line of policy refused a
// caller, not just that something did.
func (p Policy) Decide(id string) (admit bool, pattern string) {
	for _, pat := range p.Deny {
		if events.TopicMatches(pat, id) {
			return false, pat
		}
	}
	if len(p.Allow) == 0 {
		return true, ""
	}
	for _, pat := range p.Allow {
		if events.TopicMatches(pat, id) {
			return true, ""
		}
	}
	return false, ""
}

// clonePolicy deep-copies a policy so callers cannot mutate shared state.
func clonePolicy(p Policy) Policy {
	return Policy{
		Allow: append([]string(nil), p.Allow...),
		Deny:  append([]string(nil), p.Deny...),
	}
}

// Rule is one ACL entry: it matches when both the caller's home name and
// the (unscoped) service ID match their patterns.
type Rule struct {
	// Caller is the caller-home pattern ("home-b", "guest-*", "*").
	Caller string
	// Service is the service-ID pattern ("havi:*", "x10:lamp-1", "*").
	Service string
}

// matches reports whether the rule covers caller × service.
func (r Rule) matches(caller, service string) bool {
	return events.TopicMatches(r.Caller, caller) && events.TopicMatches(r.Service, service)
}

// String renders the rule in ParseRule's flag syntax,
// "caller-pattern=service-pattern".
func (r Rule) String() string { return r.Caller + "=" + r.Service }

// ACL is a home's per-service access-control list over authenticated
// peer homes. Evaluation is deny-first: a matching Deny rule refuses the
// caller; otherwise an empty Allow list admits, else some Allow rule
// must match. The exporting home's own callers bypass the ACL entirely —
// it governs the home boundary, not in-home traffic — and
// unauthenticated callers never reach it (the middleware rejects them
// first when an identity is configured).
type ACL struct {
	Allow []Rule
	Deny  []Rule
}

// Admits reports whether caller may see and invoke the service.
func (a ACL) Admits(caller, service string) bool {
	ok, _ := a.Decide(caller, service)
	return ok
}

// Decide reports whether caller may see and invoke the service and, on
// denial, the rule that fired (in ParseRule syntax) — "" when the
// refusal was an allow list that nothing matched.
func (a ACL) Decide(caller, service string) (admit bool, rule string) {
	for _, r := range a.Deny {
		if r.matches(caller, service) {
			return false, r.String()
		}
	}
	if len(a.Allow) == 0 {
		return true, ""
	}
	for _, r := range a.Allow {
		if r.matches(caller, service) {
			return true, ""
		}
	}
	return false, ""
}

// cloneACL deep-copies an ACL.
func cloneACL(a ACL) ACL {
	return ACL{
		Allow: append([]Rule(nil), a.Allow...),
		Deny:  append([]Rule(nil), a.Deny...),
	}
}

// ParseRule splits an "-acl-allow"/"-acl-deny" flag value,
// "<caller pattern>=<service pattern>" (service IDs contain ':', so '='
// separates; the first '=' splits, e.g. "guest-*=havi:*").
func ParseRule(spec string) (Rule, error) {
	caller, service, ok := strings.Cut(spec, "=")
	if !ok || caller == "" || service == "" {
		return Rule{}, fmt.Errorf("identity: ACL rule spec %q, want caller=service-pattern", spec)
	}
	return Rule{Caller: caller, Service: service}, nil
}
