// Auth is the per-federation authentication context: one object shared
// by the repository faces, the peering layer, and every gateway of a
// home, so enabling an identity or editing trust/ACLs takes effect
// everywhere at once without restarting components.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/service"
)

// Wire auth headers. Requests carry all four; responses carry Home and
// Signature (the response signature binds to the request's nonce, so a
// recorded response cannot be replayed against a different request).
const (
	HeaderHome      = "X-Homeconnect-Home"
	HeaderTime      = "X-Homeconnect-Time"
	HeaderNonce     = "X-Homeconnect-Nonce"
	HeaderSignature = "X-Homeconnect-Signature"
)

// maxSkew bounds how far a request timestamp may drift from the
// receiver's clock; it is also how long seen nonces are remembered for
// replay rejection. Home deployments sync clocks loosely, so the window
// is generous — replay protection only needs it to be finite.
const maxSkew = 2 * time.Minute

// nonceCacheLimit caps the replay cache; beyond it, expired entries are
// pruned on every insert (inserts are one per authenticated request, so
// the cache is small in any realistic deployment).
const nonceCacheLimit = 8192

// Auth bundles a home's identity, trust store, export policy and
// service ACL. The zero value is not usable; call NewAuth. An Auth
// without an identity (Enabled false) is "open mode": nothing is signed
// and nothing is rejected, the paper's original trust model.
type Auth struct {
	home string
	id   atomic.Pointer[Identity]

	mu     sync.RWMutex
	trust  map[string]ed25519.PublicKey
	policy Policy
	acl    ACL

	nmu  sync.Mutex
	seen map[string]time.Time // nonce → forget-after

	// recorder, when set, receives an audit event for every enforcement
	// decision this Auth makes (denials, refusals, replays). Admissions on
	// the data plane are recorded by the faces, not here, so the common
	// case stays one atomic load.
	recorder atomic.Pointer[audit.Recorder]

	// nowFn is swappable for skew/replay tests.
	nowFn func() time.Time

	// sessTTL overrides the binary fast-path session lifetime
	// (nanoseconds; 0 means defaultSessionTTL). See session.go.
	sessTTL atomic.Int64
}

// NewAuth returns an open-mode Auth for the named home (empty for the
// single-home deployment, which can never enable an identity).
func NewAuth(home string) *Auth {
	return &Auth{
		home:  home,
		trust: make(map[string]ed25519.PublicKey),
		seen:  make(map[string]time.Time),
		nowFn: time.Now,
	}
}

// Home returns the home this Auth belongs to.
func (a *Auth) Home() string { return a.home }

// SetRecorder installs the audit recorder enforcement decisions are
// reported to; nil turns recording off. Safe to call at any time.
func (a *Auth) SetRecorder(r audit.Recorder) {
	if r == nil {
		a.recorder.Store(nil)
		return
	}
	a.recorder.Store(&r)
}

// record emits an audit event if a recorder is installed, stamping the
// deciding home.
func (a *Auth) record(ev audit.Event) {
	p := a.recorder.Load()
	if p == nil {
		return
	}
	if ev.Home == "" {
		ev.Home = a.home
	}
	(*p).Record(ev)
}

// Enabled reports whether an identity is installed: the switch between
// open mode and enforced authentication.
func (a *Auth) Enabled() bool { return a.id.Load() != nil }

// Identity returns the installed identity, nil in open mode.
func (a *Auth) Identity() *Identity { return a.id.Load() }

// Active implements transport.Credentials: signing is active exactly
// when an identity is installed.
func (a *Auth) Active() bool { return a.Enabled() }

// SetIdentity installs the home's identity, turning enforcement on for
// every component sharing this Auth. The identity must name this home.
func (a *Auth) SetIdentity(id *Identity) error {
	if id == nil {
		return fmt.Errorf("identity: nil identity")
	}
	if id.Home() != a.home {
		return fmt.Errorf("identity: identity names home %q, this federation is %q", id.Home(), a.home)
	}
	a.id.Store(id)
	return nil
}

// Trust records another home's public key (hex, from
// Identity.PublicKey). Requests signed by that home verify from then on.
func (a *Auth) Trust(home, publicKeyHex string) error {
	if home == "" {
		return fmt.Errorf("identity: trust: empty home name")
	}
	key, err := hex.DecodeString(publicKeyHex)
	if err != nil || len(key) != ed25519.PublicKeySize {
		return fmt.Errorf("identity: trust %s: key must be %d hex bytes", home, ed25519.PublicKeySize)
	}
	a.mu.Lock()
	a.trust[home] = ed25519.PublicKey(key)
	a.mu.Unlock()
	return nil
}

// TrustedHomes lists the homes with trust entries, sorted. The home's
// own identity is implicitly trusted and not listed.
func (a *Auth) TrustedHomes() []string {
	a.mu.RLock()
	out := make([]string, 0, len(a.trust))
	for h := range a.trust {
		out = append(out, h)
	}
	a.mu.RUnlock()
	sort.Strings(out)
	return out
}

// keyFor resolves the public key a claimed home must have signed with:
// a trust entry, or — for this home's own name — the installed
// identity's key, so a home always trusts itself.
func (a *Auth) keyFor(home string) (ed25519.PublicKey, bool) {
	a.mu.RLock()
	key, ok := a.trust[home]
	a.mu.RUnlock()
	if ok {
		return key, true
	}
	if id := a.id.Load(); id != nil && home == a.home {
		return id.priv.Public().(ed25519.PublicKey), true
	}
	return nil, false
}

// SetExportPolicy installs the export policy (see Policy).
func (a *Auth) SetExportPolicy(p Policy) {
	a.mu.Lock()
	a.policy = clonePolicy(p)
	a.mu.Unlock()
}

// ExportPolicy returns the current export policy.
func (a *Auth) ExportPolicy() Policy {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return clonePolicy(a.policy)
}

// ExportAdmits reports whether the export policy admits a service ID.
func (a *Auth) ExportAdmits(id string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.policy.Admits(id)
}

// ExportDecide is ExportAdmits plus the deny pattern that fired (see
// Policy.Decide).
func (a *Auth) ExportDecide(id string) (admit bool, pattern string) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.policy.Decide(id)
}

// SetACL installs the service ACL (see ACL).
func (a *Auth) SetACL(acl ACL) {
	a.mu.Lock()
	a.acl = cloneACL(acl)
	a.mu.Unlock()
}

// ACL returns the current service ACL.
func (a *Auth) ACL() ACL {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return cloneACL(a.acl)
}

// ACLAdmits reports whether the ACL admits caller × service.
func (a *Auth) ACLAdmits(caller, service string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.acl.Admits(caller, service)
}

// ACLDecide is ACLAdmits plus the deny rule that fired (see
// ACL.Decide).
func (a *Auth) ACLDecide(caller, service string) (admit bool, rule string) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.acl.Decide(caller, service)
}

// Authorize is the home-boundary decision for one authenticated inbound
// call: callers from this home bypass it; any other caller must pass
// both the export policy and the ACL (deny wins at every layer). The
// service ID is the unscoped local ID. In open mode it admits everything
// — without identities there are no callers to tell apart, and per-call
// authorization would be theater.
func (a *Auth) Authorize(caller, serviceID string) error {
	if !a.Enabled() || caller == a.home {
		return nil
	}
	a.mu.RLock()
	admit, pattern := a.policy.Decide(serviceID)
	layer := "export policy"
	if admit {
		admit, pattern = a.acl.Decide(caller, serviceID)
		layer = "service ACL"
	}
	a.mu.RUnlock()
	if admit {
		return nil
	}
	why := layer + ": "
	if pattern != "" {
		why += fmt.Sprintf("deny pattern %q", pattern)
	} else {
		why += "no allow rule matches"
	}
	a.record(audit.Event{
		Type: audit.PolicyDeny, Caller: caller, Service: serviceID,
		Pattern: pattern, Detail: why,
	})
	return fmt.Errorf("identity: home %s denies %s to caller %s (%s): %w", a.home, serviceID, caller, why, service.ErrForbidden)
}

// bodyDigest is the canonical body representation inside signatures.
func bodyDigest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// reqMessage builds the signed request string.
func reqMessage(home, ts, nonce string, body []byte) []byte {
	return []byte("homeconnect.req.v1\n" + home + "\n" + ts + "\n" + nonce + "\n" + bodyDigest(body))
}

// respMessage builds the signed response string; nonce is the request's.
func respMessage(home, nonce string, body []byte) []byte {
	return []byte("homeconnect.resp.v1\n" + home + "\n" + nonce + "\n" + bodyDigest(body))
}

// SignRequest stamps auth headers onto an outbound request and returns
// the exchange token (the nonce) VerifyResponse later binds to. A no-op
// returning "" in open mode.
func (a *Auth) SignRequest(h http.Header, body []byte) string {
	id := a.id.Load()
	if id == nil {
		return ""
	}
	var raw [16]byte
	_, _ = rand.Read(raw[:])
	nonce := hex.EncodeToString(raw[:])
	ts := strconv.FormatInt(a.nowFn().UnixMilli(), 10)
	h.Set(HeaderHome, id.Home())
	h.Set(HeaderTime, ts)
	h.Set(HeaderNonce, nonce)
	h.Set(HeaderSignature, id.sign(reqMessage(id.Home(), ts, nonce, body)))
	return nonce
}

// VerifyRequest checks an inbound request's auth headers against the
// trust store: the claimed home must be trusted (or be this home), the
// timestamp must be within the skew window, the nonce must be fresh, and
// the signature must verify over the body. It returns the verified
// caller home and the request nonce (for response signing). All failures
// wrap service.ErrUnauthenticated. In open mode it accepts everything
// with caller "".
func (a *Auth) VerifyRequest(h http.Header, body []byte) (home, nonce string, err error) {
	if !a.Enabled() {
		return "", "", nil
	}
	home = h.Get(HeaderHome)
	nonce = h.Get(HeaderNonce)
	ts := h.Get(HeaderTime)
	sig := h.Get(HeaderSignature)
	if home == "" || nonce == "" || ts == "" || sig == "" {
		a.record(audit.Event{Type: audit.AuthRefused, Detail: "request carries no credentials"})
		return "", nonce, fmt.Errorf("identity: request carries no credentials: %w", service.ErrUnauthenticated)
	}
	key, ok := a.keyFor(home)
	if !ok {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: home, Detail: "claimed home is not trusted here"})
		return "", nonce, fmt.Errorf("identity: home %q is not trusted here: %w", home, service.ErrUnauthenticated)
	}
	ms, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: home, Detail: "unparseable timestamp " + ts})
		return "", nonce, fmt.Errorf("identity: bad timestamp %q: %w", ts, service.ErrUnauthenticated)
	}
	now := a.nowFn()
	stamp := time.UnixMilli(ms)
	if d := now.Sub(stamp); d > maxSkew || d < -maxSkew {
		a.record(audit.Event{Type: audit.ReplayRejected, Caller: home,
			Detail: fmt.Sprintf("timestamp %s outside ±%s skew window", stamp.Format(time.RFC3339), maxSkew)})
		return "", nonce, fmt.Errorf("identity: timestamp %s outside ±%s skew window: %w", stamp.Format(time.RFC3339), maxSkew, service.ErrUnauthenticated)
	}
	sigRaw, err := hex.DecodeString(sig)
	if err != nil || !ed25519.Verify(key, reqMessage(home, ts, nonce, body), sigRaw) {
		a.record(audit.Event{Type: audit.AuthRefused, Caller: home, Detail: "request signature does not verify"})
		return "", nonce, fmt.Errorf("identity: signature from %q does not verify: %w", home, service.ErrUnauthenticated)
	}
	if !a.admitNonce(nonce, stamp, now) {
		a.record(audit.Event{Type: audit.ReplayRejected, Caller: home, Detail: "nonce replayed"})
		return "", nonce, fmt.Errorf("identity: nonce replayed: %w", service.ErrUnauthenticated)
	}
	return home, nonce, nil
}

// admitNonce records a nonce, rejecting ones already seen. An entry
// must outlive its request's *timestamp* validity, not the receipt
// time: a request stamped up to maxSkew in the future stays verifiable
// until stamp+maxSkew, so forgetting its nonce any earlier would
// reopen a replay window exactly as wide as the sender's clock lead.
func (a *Auth) admitNonce(nonce string, stamp, now time.Time) bool {
	until := stamp.Add(maxSkew)
	a.nmu.Lock()
	defer a.nmu.Unlock()
	if seenUntil, dup := a.seen[nonce]; dup && !now.After(seenUntil) {
		return false
	}
	if len(a.seen) >= nonceCacheLimit {
		for n, u := range a.seen {
			if now.After(u) {
				delete(a.seen, n)
			}
		}
	}
	a.seen[nonce] = until
	return true
}

// SignResponse stamps auth headers onto an outbound response, binding it
// to the request's nonce. A no-op in open mode.
func (a *Auth) SignResponse(h http.Header, nonce string, body []byte) {
	id := a.id.Load()
	if id == nil {
		return
	}
	h.Set(HeaderHome, id.Home())
	h.Set(HeaderSignature, id.sign(respMessage(id.Home(), nonce, body)))
}

// VerifyResponse checks a response's signature against the trust store
// and its binding to the request's exchange token. This is the client
// half of the mutual handshake: a peer that cannot prove a trusted
// identity cannot feed this home data, even if it accepted our request.
// All failures wrap service.ErrUnauthenticated. In open mode (or for a
// request that was never signed, exchange "") it accepts everything.
func (a *Auth) VerifyResponse(h http.Header, exchange string, body []byte) error {
	if !a.Enabled() || exchange == "" {
		return nil
	}
	home := h.Get(HeaderHome)
	sig := h.Get(HeaderSignature)
	if home == "" || sig == "" {
		return fmt.Errorf("identity: response is unsigned (peer has no identity, or is not this framework): %w", service.ErrUnauthenticated)
	}
	key, ok := a.keyFor(home)
	if !ok {
		return fmt.Errorf("identity: response signed by untrusted home %q: %w", home, service.ErrUnauthenticated)
	}
	sigRaw, err := hex.DecodeString(sig)
	if err != nil || !ed25519.Verify(key, respMessage(home, exchange, body), sigRaw) {
		return fmt.Errorf("identity: response signature from %q does not verify: %w", home, service.ErrUnauthenticated)
	}
	return nil
}

// setClock overrides the time source (tests).
func (a *Auth) setClock(now func() time.Time) { a.nowFn = now }
