// Tests for the virtual clock: firing order, tickers, Stop/Reset
// semantics, and the determinism the simulation harness depends on.
package vclock

import (
	"testing"
	"time"
)

var epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

func drain(t Timer) (time.Time, bool) {
	select {
	case ts := <-t.C():
		return ts, true
	default:
		return time.Time{}, false
	}
}

func TestVirtualAdvanceFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []string
	t1 := v.NewTimer(30 * time.Millisecond)
	t2 := v.NewTimer(10 * time.Millisecond)
	t3 := v.NewTimer(20 * time.Millisecond)
	v.Advance(50 * time.Millisecond)
	for name, tm := range map[string]Timer{"t1": t1, "t2": t2, "t3": t3} {
		if ts, ok := drain(tm); !ok {
			t.Errorf("%s never fired", name)
		} else if !ts.Equal(epoch.Add(map[string]time.Duration{"t1": 30, "t2": 10, "t3": 20}[name] * time.Millisecond)) {
			t.Errorf("%s fired at %v", name, ts)
		}
	}
	_ = order
	if got := v.Now(); !got.Equal(epoch.Add(50 * time.Millisecond)) {
		t.Errorf("Now = %v after advance", got)
	}
}

func TestVirtualTimerStopAndReset(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Error("Stop on armed timer reported inactive")
	}
	v.Advance(20 * time.Millisecond)
	if _, fired := drain(tm); fired {
		t.Error("stopped timer fired")
	}
	// Reset re-arms relative to current virtual time.
	tm.Reset(15 * time.Millisecond)
	v.Advance(10 * time.Millisecond)
	if _, fired := drain(tm); fired {
		t.Error("reset timer fired early")
	}
	v.Advance(10 * time.Millisecond)
	if ts, fired := drain(tm); !fired {
		t.Error("reset timer never fired")
	} else if want := epoch.Add(35 * time.Millisecond); !ts.Equal(want) {
		t.Errorf("reset timer fired at %v, want %v", ts, want)
	}
}

func TestVirtualResetSupersedesOldDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.NewTimer(10 * time.Millisecond)
	// Push the deadline out while the original entry is still in the
	// heap: the stale entry must not fire at the old deadline.
	tm.Reset(100 * time.Millisecond)
	v.Advance(50 * time.Millisecond)
	if _, fired := drain(tm); fired {
		t.Error("superseded deadline fired")
	}
	v.Advance(60 * time.Millisecond)
	if _, fired := drain(tm); !fired {
		t.Error("rescheduled timer never fired")
	}
}

func TestVirtualTickerRepeats(t *testing.T) {
	v := NewVirtual(epoch)
	tk := v.NewTicker(10 * time.Millisecond)
	fired := 0
	for i := 0; i < 3; i++ {
		v.Advance(10 * time.Millisecond)
		select {
		case <-tk.C():
			fired++
		default:
		}
	}
	if fired != 3 {
		t.Errorf("ticker fired %d times over 3 periods", fired)
	}
	tk.Stop()
	v.Advance(50 * time.Millisecond)
	select {
	case <-tk.C():
		t.Error("stopped ticker fired")
	default:
	}
}

func TestNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Error("empty clock reports a deadline")
	}
	a := v.NewTimer(30 * time.Millisecond)
	v.NewTimer(10 * time.Millisecond)
	if d, ok := v.NextDeadline(); !ok || !d.Equal(epoch.Add(10*time.Millisecond)) {
		t.Errorf("NextDeadline = %v, %v", d, ok)
	}
	v.Advance(15 * time.Millisecond)
	if d, ok := v.NextDeadline(); !ok || !d.Equal(epoch.Add(30*time.Millisecond)) {
		t.Errorf("NextDeadline after firing = %v, %v", d, ok)
	}
	a.Stop()
	if _, ok := v.NextDeadline(); ok {
		t.Error("deadline survives Stop")
	}
}

func TestSystemClockBasics(t *testing.T) {
	tm := System.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system timer never fired")
	}
	tk := System.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system ticker never fired")
	}
	if System.Now().IsZero() {
		t.Error("system Now is zero")
	}
}
