// Package vclock abstracts the passage of time behind a Clock so the
// framework's periodic machinery — gateway registration refresh, peer
// anti-entropy, registry TTL expiry — can run against either the real
// wall clock or a virtual one advanced by hand. The virtual clock is
// what makes the neighborhood-scale simulation (internal/neighborhood)
// and the timing-sensitive unit tests deterministic: every timer fires
// at an exact, reproducible instant instead of whenever the scheduler
// gets around to it.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source periodic components take as a seam. The
// package-level System clock is the production implementation; Virtual
// is the deterministic one.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer returns a timer that fires once, d after Now.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Timer is the clock-agnostic face of time.Timer.
type Timer interface {
	// C returns the channel the firing time is delivered on.
	C() <-chan time.Time
	// Stop prevents an unfired timer from firing.
	Stop() bool
	// Reset re-arms the timer to fire d after the clock's current time.
	Reset(d time.Duration) bool
}

// Ticker is the clock-agnostic face of time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// System is the real wall clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NewTimer(d time.Duration) Timer { return systemTimer{time.NewTimer(d)} }

func (systemClock) NewTicker(d time.Duration) Ticker { return systemTicker{time.NewTicker(d)} }

type systemTimer struct{ t *time.Timer }

func (t systemTimer) C() <-chan time.Time        { return t.t.C }
func (t systemTimer) Stop() bool                 { return t.t.Stop() }
func (t systemTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) C() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()               { t.t.Stop() }

// Virtual is a manually advanced clock. Time stands still until Advance
// (or AdvanceTo) moves it; due timers fire synchronously, in deadline
// order, before Advance returns — ties broken by arming order, so two
// runs that arm the same timers advance identically.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	heap entryHeap
	seq  uint64 // arming order, the deterministic tiebreak
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d, firing every timer whose
// deadline falls within the window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceToLocked(v.now.Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceToLocked(t)
}

// advanceToLocked is the shared advance loop; called with mu held, and
// releases it before returning. Each firing is delivered outside the
// lock so a consumer goroutine may Stop or Reset from a timer-driven
// code path without deadlocking against the advance.
func (v *Virtual) advanceToLocked(target time.Time) {
	for {
		e := v.nextDueLocked(target)
		if e == nil {
			if target.After(v.now) {
				v.now = target
			}
			v.mu.Unlock()
			return
		}
		t := e.timer
		t.armed = false
		if e.deadline.After(v.now) {
			v.now = e.deadline
		}
		fireAt := v.now
		if t.period > 0 {
			// Re-arm the ticker before delivering, like time.Ticker.
			v.armLocked(t, e.deadline.Add(t.period))
		}
		v.mu.Unlock()
		// Non-blocking send on a 1-buffered channel, matching time.Timer:
		// an unconsumed previous tick is dropped, never deadlocked on.
		select {
		case t.ch <- fireAt:
		default:
		}
		v.mu.Lock()
	}
}

// nextDueLocked pops the earliest live heap entry due by target, or nil.
// Stale entries — superseded by a Stop or Reset — are discarded on the
// way.
func (v *Virtual) nextDueLocked(target time.Time) *entry {
	for len(v.heap) > 0 {
		e := v.heap[0]
		if e.deadline.After(target) {
			return nil
		}
		heap.Pop(&v.heap)
		if e.timer.armed && e.gen == e.timer.gen {
			return e
		}
	}
	return nil
}

// NextDeadline returns the earliest armed deadline and true, or false
// when no timer is pending — how an event loop discovers the next
// instant worth advancing to.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.heap) > 0 {
		e := v.heap[0]
		if e.timer.armed && e.gen == e.timer.gen {
			return e.deadline, true
		}
		heap.Pop(&v.heap)
	}
	return time.Time{}, false
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &virtualTimer{clock: v, ch: make(chan time.Time, 1)}
	v.armLocked(t, v.now.Add(d))
	return t
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &virtualTimer{clock: v, ch: make(chan time.Time, 1), period: d}
	v.armLocked(t, v.now.Add(d))
	return virtualTicker{t}
}

// virtualTicker adapts virtualTimer to the Ticker face (Stop returns
// nothing, matching time.Ticker).
type virtualTicker struct{ t *virtualTimer }

func (t virtualTicker) C() <-chan time.Time { return t.t.ch }
func (t virtualTicker) Stop()               { t.t.Stop() }

// armLocked (re)arms t at deadline, superseding any previous arming via
// the generation stamp; mu held.
func (v *Virtual) armLocked(t *virtualTimer, deadline time.Time) {
	t.gen++
	t.armed = true
	v.seq++
	heap.Push(&v.heap, &entry{deadline: deadline, order: v.seq, gen: t.gen, timer: t})
}

// virtualTimer is one timer or ticker (period > 0) on a Virtual clock.
type virtualTimer struct {
	clock  *Virtual
	ch     chan time.Time
	period time.Duration
	// armed and gen are guarded by clock.mu: a heap entry is live only
	// while its timer is armed and its generation is current.
	armed bool
	gen   uint64
}

func (t *virtualTimer) C() <-chan time.Time { return t.ch }

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	wasActive := t.armed
	t.armed = false
	return wasActive
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	wasActive := t.armed
	t.clock.armLocked(t, t.clock.now.Add(d))
	return wasActive
}

// entry is one armed deadline in the heap. Stop and Reset do not search
// the heap; they invalidate entries by flag or generation, and the pop
// path discards stale ones.
type entry struct {
	deadline time.Time
	order    uint64
	gen      uint64
	timer    *virtualTimer
}

// entryHeap orders entries by (deadline, arming order).
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].order < h[j].order
}

func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *entryHeap) Push(x any) { *h = append(*h, x.(*entry)) }

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
