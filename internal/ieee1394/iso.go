package ieee1394

import "sync"

// IsoChannel is an allocated isochronous channel: a broadcast stream with
// reserved bandwidth, as used for DV and audio transport under HAVi.
type IsoChannel struct {
	bus       *Bus
	number    int
	bandwidth int

	mu        sync.Mutex
	listeners map[int]func([]byte)
	nextID    int
	packets   uint64
	released  bool
}

// AllocateIso reserves a channel with the given bandwidth from the bus's
// isochronous resource manager. It fails when the 64 channels or the
// bandwidth budget are exhausted.
func (b *Bus) AllocateIso(bandwidth int) (*IsoChannel, error) {
	if bandwidth <= 0 {
		bandwidth = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if bandwidth > b.bandwidth {
		return nil, ErrNoBandwidth
	}
	number := -1
	for i := 0; i < MaxIsoChannels; i++ {
		if _, used := b.channels[i]; !used {
			number = i
			break
		}
	}
	if number < 0 {
		return nil, ErrNoChannel
	}
	ch := &IsoChannel{
		bus:       b,
		number:    number,
		bandwidth: bandwidth,
		listeners: make(map[int]func([]byte)),
	}
	b.channels[number] = ch
	b.bandwidth -= bandwidth
	return ch, nil
}

// AvailableIsoBandwidth returns the unallocated bandwidth units.
func (b *Bus) AvailableIsoBandwidth() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bandwidth
}

// Channel returns the allocated channel with the given slot number.
func (b *Bus) Channel(n int) (*IsoChannel, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ch, ok := b.channels[n]
	return ch, ok
}

// Number returns the channel slot (0-63).
func (c *IsoChannel) Number() int { return c.number }

// Bandwidth returns the reserved bandwidth units.
func (c *IsoChannel) Bandwidth() int { return c.bandwidth }

// Listen subscribes to packets on the channel; the returned function
// unsubscribes.
func (c *IsoChannel) Listen(fn func([]byte)) (stop func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.listeners[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.listeners, id)
	}
}

// Send broadcasts one isochronous packet to all listeners. Isochronous
// traffic is unacknowledged: sends on a released channel are dropped
// silently, like talking on a channel nobody reserved.
func (c *IsoChannel) Send(packet []byte) {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return
	}
	c.packets++
	fns := make([]func([]byte), 0, len(c.listeners))
	for _, fn := range c.listeners {
		fns = append(fns, fn)
	}
	c.mu.Unlock()
	for _, fn := range fns {
		fn(packet)
	}
}

// Packets returns the number of packets sent so far.
func (c *IsoChannel) Packets() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packets
}

// Release returns the channel and its bandwidth to the bus.
func (c *IsoChannel) Release() {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return
	}
	c.released = true
	c.mu.Unlock()
	c.bus.mu.Lock()
	delete(c.bus.channels, c.number)
	c.bus.bandwidth += c.bandwidth
	c.bus.mu.Unlock()
}
