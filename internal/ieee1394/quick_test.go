package ieee1394

import (
	"testing"
	"testing/quick"
)

// TestQuickBandwidthConservation: across any sequence of allocations and
// releases, the bus's available bandwidth plus the bandwidth of live
// channels equals the total budget, and never goes negative.
func TestQuickBandwidthConservation(t *testing.T) {
	fn := func(ops []uint16) bool {
		bus := NewBus()
		var live []*IsoChannel
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Release the oldest live channel.
				live[0].Release()
				live = live[1:]
				continue
			}
			bw := int(op%512) + 1
			ch, err := bus.AllocateIso(bw)
			if err != nil {
				continue // budget or slots exhausted: acceptable
			}
			live = append(live, ch)
			if len(live) > MaxIsoChannels {
				return false
			}
		}
		sum := 0
		for _, ch := range live {
			sum += ch.Bandwidth()
		}
		avail := bus.AvailableIsoBandwidth()
		return avail >= 0 && avail+sum == TotalIsoBandwidth
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickChannelNumbersUnique: live channels never share a slot number.
func TestQuickChannelNumbersUnique(t *testing.T) {
	fn := func(n uint8) bool {
		bus := NewBus()
		want := int(n%MaxIsoChannels) + 1
		seen := make(map[int]bool)
		for i := 0; i < want; i++ {
			ch, err := bus.AllocateIso(1)
			if err != nil {
				return false
			}
			if seen[ch.Number()] {
				return false
			}
			seen[ch.Number()] = true
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
