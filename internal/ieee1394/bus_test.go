package ieee1394

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func echoHandler(prefix string) RequestHandler {
	return func(src GUID, data []byte) ([]byte, error) {
		return append([]byte(prefix), data...), nil
	}
}

func TestAttachTriggersBusReset(t *testing.T) {
	bus := NewBus()
	var resets []uint64
	var mu sync.Mutex
	onReset := func(gen uint64, ids []GUID) {
		mu.Lock()
		resets = append(resets, gen)
		mu.Unlock()
	}
	n1 := bus.Attach(1, echoHandler("a"), onReset)
	if bus.Generation() != 1 {
		t.Errorf("generation = %d, want 1", bus.Generation())
	}
	bus.Attach(2, echoHandler("b"), nil)
	if bus.Generation() != 2 {
		t.Errorf("generation = %d, want 2", bus.Generation())
	}
	mu.Lock()
	if len(resets) != 2 {
		t.Errorf("node 1 saw %d resets, want 2", len(resets))
	}
	mu.Unlock()
	ids := bus.SelfIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("SelfIDs = %v", ids)
	}
	bus.Detach(n1)
	if got := bus.SelfIDs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("SelfIDs after detach = %v", got)
	}
}

func TestSendAsync(t *testing.T) {
	bus := NewBus()
	n1 := bus.Attach(1, echoHandler("one:"), nil)
	bus.Attach(2, echoHandler("two:"), nil)
	ctx := context.Background()

	resp, err := n1.SendAsync(ctx, 2, []byte("ping"))
	if err != nil || string(resp) != "two:ping" {
		t.Fatalf("SendAsync = %q, %v", resp, err)
	}
	if _, err := n1.SendAsync(ctx, 99, nil); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing node: %v", err)
	}
}

func TestSendAsyncAfterDetach(t *testing.T) {
	bus := NewBus()
	n1 := bus.Attach(1, echoHandler(""), nil)
	bus.Attach(2, echoHandler(""), nil)
	bus.Detach(n1)
	if _, err := n1.SendAsync(context.Background(), 2, nil); !errors.Is(err, ErrDetached) {
		t.Errorf("detached send: %v", err)
	}
}

func TestSendAsyncInterruptedByBusReset(t *testing.T) {
	bus := NewBus()
	var n3 *Node
	// Node 2's handler detaches node 3 mid-transaction, forcing a reset
	// between request and response.
	n1 := bus.Attach(1, echoHandler(""), nil)
	bus.Attach(2, func(src GUID, data []byte) ([]byte, error) {
		bus.Detach(n3)
		return []byte("done"), nil
	}, nil)
	n3 = bus.Attach(3, echoHandler(""), nil)

	_, err := n1.SendAsync(context.Background(), 2, []byte("x"))
	if !errors.Is(err, ErrBusReset) {
		t.Errorf("want ErrBusReset, got %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	bus := NewBus()
	var mu sync.Mutex
	seen := make(map[GUID][]byte)
	mk := func(g GUID) RequestHandler {
		return func(src GUID, data []byte) ([]byte, error) {
			mu.Lock()
			seen[g] = data
			mu.Unlock()
			return nil, nil
		}
	}
	n1 := bus.Attach(1, mk(1), nil)
	bus.Attach(2, mk(2), nil)
	bus.Attach(3, mk(3), nil)
	if err := n1.Broadcast(context.Background(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Errorf("broadcast reached %d nodes, want 2 (not self)", len(seen))
	}
	if _, self := seen[1]; self {
		t.Error("broadcast delivered to sender")
	}
}

func TestPeers(t *testing.T) {
	bus := NewBus()
	n1 := bus.Attach(10, echoHandler(""), nil)
	bus.Attach(20, echoHandler(""), nil)
	bus.Attach(30, echoHandler(""), nil)
	peers := n1.Peers()
	if len(peers) != 2 || peers[0] != 20 || peers[1] != 30 {
		t.Errorf("Peers = %v", peers)
	}
}

func TestIsoAllocationAndStreaming(t *testing.T) {
	bus := NewBus()
	ch, err := bus.AllocateIso(1000)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Number() != 0 || ch.Bandwidth() != 1000 {
		t.Errorf("channel = %d/%d", ch.Number(), ch.Bandwidth())
	}
	if got := bus.AvailableIsoBandwidth(); got != TotalIsoBandwidth-1000 {
		t.Errorf("available = %d", got)
	}

	var got [][]byte
	var mu sync.Mutex
	stop := ch.Listen(func(p []byte) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	ch.Send([]byte("frame1"))
	ch.Send([]byte("frame2"))
	stop()
	ch.Send([]byte("frame3"))
	mu.Lock()
	if len(got) != 2 {
		t.Errorf("received %d packets, want 2", len(got))
	}
	mu.Unlock()
	if ch.Packets() != 3 {
		t.Errorf("Packets = %d", ch.Packets())
	}

	ch.Release()
	if got := bus.AvailableIsoBandwidth(); got != TotalIsoBandwidth {
		t.Errorf("bandwidth not returned: %d", got)
	}
	ch.Release() // double release is a no-op
	ch.Send([]byte("dropped"))
	if ch.Packets() != 3 {
		t.Error("send after release counted")
	}
}

func TestIsoExhaustion(t *testing.T) {
	bus := NewBus()
	if _, err := bus.AllocateIso(TotalIsoBandwidth + 1); !errors.Is(err, ErrNoBandwidth) {
		t.Errorf("over-budget: %v", err)
	}
	// Exhaust the channel slots with minimal bandwidth.
	for i := 0; i < MaxIsoChannels; i++ {
		if _, err := bus.AllocateIso(1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := bus.AllocateIso(1); !errors.Is(err, ErrNoChannel) {
		t.Errorf("slot exhaustion: %v", err)
	}
}

func TestChannelNumbersReused(t *testing.T) {
	bus := NewBus()
	a, _ := bus.AllocateIso(1)
	b, _ := bus.AllocateIso(1)
	if a.Number() == b.Number() {
		t.Fatal("duplicate channel numbers")
	}
	a.Release()
	c, _ := bus.AllocateIso(1)
	if c.Number() != a.Number() {
		t.Errorf("released slot not reused: got %d, want %d", c.Number(), a.Number())
	}
}
