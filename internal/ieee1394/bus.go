// Package ieee1394 simulates the IEEE 1394 (FireWire) bus that HAVi —
// the AV middleware of the paper's prototype (§4.1) — runs on:
// hot-pluggable nodes identified by 64-bit GUIDs, bus resets with
// self-identification on every topology change, asynchronous
// request/response transactions, and isochronous channels with bandwidth
// allocation for streaming.
//
// The simulation is in-process: nodes attach to a Bus value and exchange
// byte payloads. Fidelity points that matter to the layers above: a bus
// reset invalidates the generation number, so transactions in flight
// across a reset fail with ErrBusReset exactly as 1394 transactions do;
// and isochronous bandwidth is a finite resource, so allocation can fail.
package ieee1394

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Simulation limits from the 1394 specification.
const (
	// MaxIsoChannels is the number of isochronous channel slots.
	MaxIsoChannels = 64
	// TotalIsoBandwidth is the allocatable bandwidth budget in abstract
	// "bandwidth units" (the real bus uses 4915 units of ~20ns each).
	TotalIsoBandwidth = 4915
)

// Errors returned by the bus.
var (
	// ErrBusReset reports a transaction interrupted by a topology change.
	ErrBusReset = errors.New("ieee1394: bus reset")
	// ErrNoSuchNode reports a transaction to a GUID not on the bus.
	ErrNoSuchNode = errors.New("ieee1394: no such node")
	// ErrNoBandwidth reports isochronous allocation beyond the budget.
	ErrNoBandwidth = errors.New("ieee1394: insufficient isochronous bandwidth")
	// ErrNoChannel reports exhaustion of the 64 channel slots.
	ErrNoChannel = errors.New("ieee1394: no isochronous channel available")
	// ErrDetached reports an operation on a node no longer attached.
	ErrDetached = errors.New("ieee1394: node detached")
)

// GUID is a node's 64-bit globally unique identifier (EUI-64).
type GUID uint64

// String renders the GUID as 16 hex digits.
func (g GUID) String() string { return fmt.Sprintf("%016x", uint64(g)) }

// RequestHandler serves incoming asynchronous transactions addressed to a
// node. It runs on the sender's goroutine and returns the response
// payload or an application error.
type RequestHandler func(src GUID, data []byte) ([]byte, error)

// ResetHandler is notified after every bus reset with the new generation
// number and the self-ID list (all GUIDs on the bus, sorted).
type ResetHandler func(generation uint64, selfIDs []GUID)

// Bus is the shared 1394 medium.
type Bus struct {
	mu         sync.RWMutex
	generation uint64
	nodes      map[GUID]*Node
	channels   map[int]*IsoChannel
	bandwidth  int // remaining budget
}

// NewBus returns an empty bus at generation zero.
func NewBus() *Bus {
	return &Bus{
		nodes:     make(map[GUID]*Node),
		channels:  make(map[int]*IsoChannel),
		bandwidth: TotalIsoBandwidth,
	}
}

// Generation returns the current bus generation (increments on every
// reset).
func (b *Bus) Generation() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.generation
}

// SelfIDs returns the sorted GUIDs currently on the bus.
func (b *Bus) SelfIDs() []GUID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.selfIDsLocked()
}

func (b *Bus) selfIDsLocked() []GUID {
	ids := make([]GUID, 0, len(b.nodes))
	for g := range b.nodes {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Attach adds a node with the given GUID, triggering a bus reset. The
// handler serves incoming transactions; onReset (optional) observes
// resets. Attaching an already-present GUID replaces the old node, as a
// re-plugged device would.
func (b *Bus) Attach(guid GUID, handler RequestHandler, onReset ResetHandler) *Node {
	n := &Node{bus: b, guid: guid, handler: handler, onReset: onReset}
	b.mu.Lock()
	b.nodes[guid] = n
	b.resetLocked()
	observers, gen, ids := b.resetObserversLocked()
	b.mu.Unlock()
	notifyReset(observers, gen, ids)
	return n
}

// Detach removes a node, triggering a bus reset.
func (b *Bus) Detach(n *Node) {
	b.mu.Lock()
	if b.nodes[n.guid] != n {
		b.mu.Unlock()
		return
	}
	delete(b.nodes, n.guid)
	n.detached = true
	b.resetLocked()
	observers, gen, ids := b.resetObserversLocked()
	b.mu.Unlock()
	notifyReset(observers, gen, ids)
}

// resetLocked bumps the generation. Caller holds b.mu.
func (b *Bus) resetLocked() { b.generation++ }

// resetObserversLocked snapshots reset handlers for delivery outside the
// lock.
func (b *Bus) resetObserversLocked() ([]ResetHandler, uint64, []GUID) {
	var obs []ResetHandler
	for _, n := range b.nodes {
		if n.onReset != nil {
			obs = append(obs, n.onReset)
		}
	}
	return obs, b.generation, b.selfIDsLocked()
}

func notifyReset(observers []ResetHandler, gen uint64, ids []GUID) {
	for _, fn := range observers {
		fn(gen, ids)
	}
}

// Node is one attached device.
type Node struct {
	bus      *Bus
	guid     GUID
	handler  RequestHandler
	onReset  ResetHandler
	detached bool
}

// GUID returns the node's identifier.
func (n *Node) GUID() GUID { return n.guid }

// SendAsync performs an asynchronous transaction to dst: the request is
// delivered to dst's handler and the response returned. The transaction
// fails with ErrBusReset if a reset occurs between send and completion,
// matching 1394 transaction-layer semantics.
func (n *Node) SendAsync(ctx context.Context, dst GUID, data []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.bus.mu.RLock()
	if n.detached || n.bus.nodes[n.guid] != n {
		n.bus.mu.RUnlock()
		return nil, ErrDetached
	}
	gen := n.bus.generation
	target, ok := n.bus.nodes[dst]
	n.bus.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, dst)
	}
	resp, err := target.handler(n.guid, data)
	if err != nil {
		return nil, err
	}
	// Transaction completion check: a reset between request and response
	// aborts the transaction.
	n.bus.mu.RLock()
	stale := n.bus.generation != gen
	n.bus.mu.RUnlock()
	if stale {
		return nil, ErrBusReset
	}
	return resp, nil
}

// Broadcast delivers data to every other node's handler, ignoring
// responses and errors (1394 broadcast writes are unconfirmed).
func (n *Node) Broadcast(ctx context.Context, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.bus.mu.RLock()
	if n.detached || n.bus.nodes[n.guid] != n {
		n.bus.mu.RUnlock()
		return ErrDetached
	}
	targets := make([]*Node, 0, len(n.bus.nodes))
	for g, t := range n.bus.nodes {
		if g != n.guid {
			targets = append(targets, t)
		}
	}
	n.bus.mu.RUnlock()
	for _, t := range targets {
		_, _ = t.handler(n.guid, data)
	}
	return nil
}

// Peers returns the GUIDs of all other nodes currently on the bus.
func (n *Node) Peers() []GUID {
	all := n.bus.SelfIDs()
	out := all[:0]
	for _, g := range all {
		if g != n.guid {
			out = append(out, g)
		}
	}
	return out
}
