package soap

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"homeconnect/internal/service"
)

// echoHandler returns its first argument, or typed errors on demand.
func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, call Call) (service.Value, error) {
		switch call.Operation {
		case "Echo":
			if len(call.Args) == 0 {
				return service.Void(), nil
			}
			return call.Args[0].Value, nil
		case "Void":
			return service.Void(), nil
		case "Fail":
			return service.Value{}, fmt.Errorf("exploded: %w", service.ErrUnavailable)
		default:
			return service.Value{}, fmt.Errorf("%s: %w", call.Operation, service.ErrNoSuchOperation)
		}
	})
}

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	t.Cleanup(srv.Close)
	return srv, &Client{URL: srv.URL}
}

func TestHTTPCallEcho(t *testing.T) {
	_, client := newTestServer(t)
	got, err := client.Call(context.Background(), "urn:test#Echo", Call{
		Namespace: "urn:test",
		Operation: "Echo",
		Args:      []Arg{{Name: "v", Value: service.StringValue("ping")}},
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Str() != "ping" {
		t.Errorf("got %v", got)
	}
}

func TestHTTPCallVoid(t *testing.T) {
	_, client := newTestServer(t)
	got, err := client.Call(context.Background(), "urn:test#Void", Call{Namespace: "urn:test", Operation: "Void"})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !got.IsVoid() {
		t.Errorf("want void, got %v", got)
	}
}

func TestHTTPFaultPreservesErrorKind(t *testing.T) {
	_, client := newTestServer(t)
	_, err := client.Call(context.Background(), "a", Call{Namespace: "urn:test", Operation: "Zap"})
	if !errors.Is(err, service.ErrNoSuchOperation) {
		t.Errorf("want ErrNoSuchOperation through the wire, got %v", err)
	}
	_, err = client.Call(context.Background(), "a", Call{Namespace: "urn:test", Operation: "Fail"})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("want ErrUnavailable through the wire, got %v", err)
	}
	var re *service.RemoteError
	if !errors.As(err, &re) || re.Code != "Unavailable" {
		t.Errorf("want RemoteError with code Unavailable, got %v", err)
	}
}

func TestHTTPRejectsGet(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("GET status = %d, want 500 fault", resp.StatusCode)
	}
}

func TestHTTPMalformedEnvelope(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL, "text/xml", strings.NewReader("<bogus"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("malformed status = %d, want 500", resp.StatusCode)
	}
}

func TestClientServerDown(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	client := &Client{URL: srv.URL}
	srv.Close()
	_, err := client.Call(context.Background(), "a", Call{Namespace: "urn:test", Operation: "Echo"})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("dead server: want ErrUnavailable, got %v", err)
	}
}

func TestClientContextCancel(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client := &Client{URL: srv.URL}
	if _, err := client.Call(ctx, "a", Call{Namespace: "urn:test", Operation: "Echo"}); err == nil {
		t.Error("cancelled context: want error")
	}
}

func TestFaultFromErrorSides(t *testing.T) {
	tests := []struct {
		err  error
		side string
		code string
	}{
		{service.ErrNoSuchOperation, "Client", "NoSuchOperation"},
		{service.ErrNoSuchService, "Client", "NoSuchService"},
		{service.ErrBadArgument, "Client", "BadArgument"},
		{service.ErrUnavailable, "Server", "Unavailable"},
		{errors.New("anything"), "Server", "Server"},
		{&service.RemoteError{Code: "NoSuchService", Msg: "m"}, "Client", "NoSuchService"},
	}
	for _, tt := range tests {
		f := FaultFromError(tt.err)
		if f.Code != tt.side || f.Detail != tt.code {
			t.Errorf("FaultFromError(%v) = {%s %s}, want {%s %s}", tt.err, f.Code, f.Detail, tt.side, tt.code)
		}
	}
}
