// Allocation-regression guards for the codec hot path. The PR that
// introduced the pooled encoder and the xmltree scanner cut EncodeCall
// from 8 allocs/op to 1 and DecodeCall from 72 to 15; these tests pin a
// ceiling halfway back so a regression past the "≥50% better than seed"
// line fails loudly instead of rotting silently.
package soap

import (
	"testing"

	"homeconnect/internal/service"
)

func guardAllocs(t *testing.T, name string, limit float64, fn func()) {
	t.Helper()
	fn() // warm pools so the steady state is measured
	if got := testing.AllocsPerRun(200, fn); got > limit {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", name, got, limit)
	}
}

func TestEncodeCallAllocs(t *testing.T) {
	call := Call{
		Namespace: "urn:homeconnect:bench:svc",
		Operation: "SetLevel",
		Args: []Arg{
			{Name: "level", Value: service.IntValue(42)},
			{Name: "fade", Value: service.BoolValue(true)},
		},
	}
	// Seed: 8 allocs/op. Now: 1 (the returned envelope copy).
	guardAllocs(t, "EncodeCall", 4, func() {
		if _, err := EncodeCall(call); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDecodeCallAllocs(t *testing.T) {
	data, err := EncodeCall(Call{
		Namespace: "urn:homeconnect:bench:svc",
		Operation: "SetLevel",
		Args: []Arg{
			{Name: "level", Value: service.IntValue(42)},
			{Name: "fade", Value: service.BoolValue(true)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed: 72 allocs/op. Now: 15 (the returned tree and args).
	guardAllocs(t, "DecodeCall", 36, func() {
		if _, err := DecodeCall(data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDecodeResponseAllocs(t *testing.T) {
	data, err := EncodeResponse("urn:homeconnect:bench:svc", "SetLevel", service.IntValue(7))
	if err != nil {
		t.Fatal(err)
	}
	guardAllocs(t, "DecodeResponse", 30, func() {
		if _, fault, err := DecodeResponse(data); err != nil || fault != nil {
			t.Fatalf("%v %v", fault, err)
		}
	})
}
