package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"homeconnect/internal/service"
	"homeconnect/internal/transport"
)

// MaxEnvelopeBytes bounds request/response bodies to keep a misbehaving
// peer from exhausting memory. The paper's appliance-class targets make a
// small bound realistic. Exported so the gateway's loopback dispatch can
// honor the same limit the wire enforces.
const MaxEnvelopeBytes = 1 << 20

// Client issues SOAP calls over HTTP, the binding used between Virtual
// Service Gateways. With a Dialer set, calls first try the binary fast
// path to the endpoint's authority and fall back to SOAP/HTTP when the
// authority has not negotiated it.
type Client struct {
	// HTTP is the underlying client; the Dialer's HTTP side when a
	// Dialer is set, else the shared keep-alive transport.
	HTTP *http.Client
	// Dialer, when set, owns protocol negotiation: Call attempts the
	// binary framing first and degrades to the SOAP/HTTP path on
	// ErrBinaryUnavailable.
	Dialer *transport.Dialer
	// URL is the endpoint the envelope is POSTed to.
	URL string
}

// httpClient returns the effective *http.Client.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if c.Dialer != nil {
		return c.Dialer.HTTPClient()
	}
	return transport.Client()
}

// Call POSTs the request envelope with the given SOAPAction and decodes the
// result. A remote fault is surfaced as a *service.RemoteError so that
// sentinel errors survive the protocol boundary.
func (c *Client) Call(ctx context.Context, soapAction string, call Call) (service.Value, error) {
	if c.Dialer != nil {
		v, err := c.callBinary(ctx, soapAction, call)
		if !errors.Is(err, transport.ErrBinaryUnavailable) {
			return v, err
		}
		// Never negotiated, or downgraded mid-session: the identical
		// call re-encodes onto the SOAP path below.
	}
	body, err := EncodeCall(call)
	if err != nil {
		return service.Value{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
	if err != nil {
		return service.Value{}, fmt.Errorf("soap: build request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", `"`+soapAction+`"`)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return service.Value{}, fmt.Errorf("soap: %w: %w", service.ErrUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxEnvelopeBytes))
	if err != nil {
		return service.Value{}, fmt.Errorf("soap: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
		// SOAP 1.1 requires faults to use 500; anything else is transport
		// failure.
		return service.Value{}, fmt.Errorf("soap: %w: http status %s", service.ErrUnavailable, resp.Status)
	}
	v, fault, err := DecodeResponse(data)
	if err != nil {
		return service.Value{}, err
	}
	if fault != nil {
		return service.Value{}, fault.RemoteError()
	}
	return v, nil
}

// callBinary runs one call over the binary fast path. An
// ErrBinaryUnavailable return means "not negotiated — use SOAP"; every
// other outcome (result, remote fault, context cancellation) is final
// and classified exactly as the HTTP path would classify it.
func (c *Client) callBinary(ctx context.Context, soapAction string, call Call) (service.Value, error) {
	body, err := EncodeBinCall(call)
	if err != nil {
		return service.Value{}, err
	}
	res, err := c.Dialer.Exchange(ctx, c.URL, BinCallContentType, soapAction, body)
	if err != nil {
		if errors.Is(err, transport.ErrBinaryUnavailable) {
			return service.Value{}, err
		}
		return service.Value{}, fmt.Errorf("soap: %w: %w", service.ErrUnavailable, err)
	}
	if res.Status != http.StatusOK && res.Status != http.StatusInternalServerError {
		// Same classification as the HTTP binding: faults ride 500,
		// anything else is transport failure.
		return service.Value{}, fmt.Errorf("soap: %w: binary status %d", service.ErrUnavailable, res.Status)
	}
	v, fault, err := DecodeBinResponse(res.Body)
	if err != nil {
		return service.Value{}, err
	}
	if fault != nil {
		return service.Value{}, fault.RemoteError()
	}
	return v, nil
}

// Handler processes one decoded SOAP call. Implementations are mounted on
// a Server; errors become faults.
type Handler interface {
	ServeSOAP(ctx context.Context, call Call) (service.Value, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, call Call) (service.Value, error)

// ServeSOAP implements Handler.
func (f HandlerFunc) ServeSOAP(ctx context.Context, call Call) (service.Value, error) {
	return f(ctx, call)
}

var _ Handler = (HandlerFunc)(nil)

// NewHTTPHandler wraps a SOAP Handler as an http.Handler: it decodes POSTed
// envelopes, dispatches, and encodes the response or fault. Handler errors
// are classified through service.RemoteCode, preserving well-known error
// kinds across the wire.
func NewHTTPHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, &Fault{Code: "Client", String: "method " + r.Method + " not allowed; POST required"})
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, MaxEnvelopeBytes))
		if err != nil {
			writeFault(w, &Fault{Code: "Client", String: "read body: " + err.Error()})
			return
		}
		call, err := DecodeCall(data)
		if err != nil {
			writeFault(w, &Fault{Code: "Client", String: err.Error()})
			return
		}
		result, err := h.ServeSOAP(r.Context(), call)
		if err != nil {
			writeFault(w, FaultFromError(err))
			return
		}
		body, err := EncodeResponse(call.Namespace, call.Operation, result)
		if err != nil {
			writeFault(w, &Fault{Code: "Server", String: err.Error()})
			return
		}
		w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	})
}

// FaultFromError classifies err as a SOAP fault. Remote errors pass their
// code through unchanged; client-side classification (bad arguments,
// unknown operations) maps to the Client fault code.
func FaultFromError(err error) *Fault {
	var re *service.RemoteError
	if errors.As(err, &re) {
		return &Fault{Code: sideOf(re.Code), String: re.Msg, Detail: re.Code}
	}
	code := service.RemoteCode(err)
	return &Fault{Code: sideOf(code), String: err.Error(), Detail: code}
}

// sideOf maps a framework error code to the SOAP 1.1 faultcode side.
func sideOf(code string) string {
	switch code {
	case "NoSuchOperation", "NoSuchService", "BadArgument", "Client",
		"Unauthenticated", "Forbidden":
		return "Client"
	default:
		return "Server"
	}
}

// AuthFaultWriter renders an authentication refusal as a SOAP fault —
// the identity.DenyWriter for gateway faces. code is the framework error
// code ("Unauthenticated" or "Forbidden"); callers decode it back to the
// matching service sentinel through Fault.RemoteError, exactly like any
// other remote fault.
func AuthFaultWriter(w http.ResponseWriter, code, msg string) {
	writeFault(w, &Fault{Code: sideOf(code), String: msg, Detail: code})
}

// writeFault emits a fault envelope with the mandatory 500 status.
func writeFault(w http.ResponseWriter, f *Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(EncodeFault(f))
}
