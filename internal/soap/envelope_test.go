package soap

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"homeconnect/internal/service"
)

func sampleCall() Call {
	return Call{
		Namespace: "urn:homeconnect:jini:lamp-1",
		Operation: "SetLevel",
		Args: []Arg{
			{Name: "level", Value: service.IntValue(7)},
			{Name: "label", Value: service.StringValue("dim <&> it")},
			{Name: "fade", Value: service.BoolValue(true)},
			{Name: "gamma", Value: service.FloatValue(2.2)},
			{Name: "blob", Value: service.BytesValue([]byte{0x00, 0xff, 0x10})},
		},
	}
}

func TestEncodeDecodeCallRoundTrip(t *testing.T) {
	in := sampleCall()
	data, err := EncodeCall(in)
	if err != nil {
		t.Fatalf("EncodeCall: %v", err)
	}
	if !strings.Contains(string(data), "SOAP-ENV:Envelope") {
		t.Fatalf("missing envelope: %s", data)
	}
	out, err := DecodeCall(data)
	if err != nil {
		t.Fatalf("DecodeCall: %v", err)
	}
	if out.Namespace != in.Namespace || out.Operation != in.Operation {
		t.Errorf("identity mismatch: %+v", out)
	}
	if len(out.Args) != len(in.Args) {
		t.Fatalf("got %d args, want %d", len(out.Args), len(in.Args))
	}
	for i := range in.Args {
		if out.Args[i].Name != in.Args[i].Name || !out.Args[i].Value.Equal(in.Args[i].Value) {
			t.Errorf("arg %d: got %s=%v, want %s=%v", i, out.Args[i].Name, out.Args[i].Value, in.Args[i].Name, in.Args[i].Value)
		}
	}
}

func TestEncodeCallRejectsBadInput(t *testing.T) {
	if _, err := EncodeCall(Call{Namespace: "urn:x"}); err == nil {
		t.Error("empty operation accepted")
	}
	if _, err := EncodeCall(Call{Namespace: "urn:x", Operation: "Op", Args: []Arg{{Name: "a", Value: service.Value{}}}}); err == nil {
		t.Error("invalid arg kind accepted")
	}
	if _, err := EncodeCall(Call{Namespace: "urn:x", Operation: "Op", Args: []Arg{{Name: "a", Value: service.Void()}}}); err == nil {
		t.Error("void arg accepted")
	}
}

func TestEncodeDecodeResponse(t *testing.T) {
	tests := []service.Value{
		service.Void(),
		service.StringValue("ok"),
		service.IntValue(-1),
		service.FloatValue(0.25),
		service.BoolValue(false),
		service.BytesValue([]byte("raw")),
	}
	for _, want := range tests {
		data, err := EncodeResponse("urn:x", "Op", want)
		if err != nil {
			t.Fatalf("EncodeResponse(%v): %v", want, err)
		}
		got, fault, err := DecodeResponse(data)
		if err != nil || fault != nil {
			t.Fatalf("DecodeResponse(%v): %v %v", want, fault, err)
		}
		if !got.Equal(want) {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	in := &Fault{Code: "Client", String: "no such operation: Zap", Actor: "urn:vsg:livingroom", Detail: "NoSuchOperation"}
	data := EncodeFault(in)
	v, fault, err := DecodeResponse(data)
	if err != nil {
		t.Fatalf("DecodeResponse(fault): %v", err)
	}
	if fault == nil {
		t.Fatalf("fault lost, got value %v", v)
	}
	if *fault != *in {
		t.Errorf("fault round trip: got %+v, want %+v", fault, in)
	}
	if !strings.Contains(fault.Error(), "no such operation") {
		t.Errorf("Fault.Error() = %q", fault.Error())
	}
}

func TestDecodeCallOnFaultEnvelope(t *testing.T) {
	data := EncodeFault(&Fault{Code: "Server", String: "boom"})
	if _, err := DecodeCall(data); err == nil {
		t.Error("DecodeCall accepted a fault envelope")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not xml at all",
		"<foo/>",
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://wrong/ns"><SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
	}
	for _, c := range cases {
		if _, err := DecodeCall([]byte(c)); err == nil {
			t.Errorf("DecodeCall(%q): want error", c)
		}
		if _, _, err := DecodeResponse([]byte(c)); err == nil {
			t.Errorf("DecodeResponse(%q): want error", c)
		}
	}
}

func TestDecodeCallMissingType(t *testing.T) {
	env := `<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + EnvelopeNS + `">` +
		`<SOAP-ENV:Body><m:Op xmlns:m="urn:x"><p>5</p></m:Op></SOAP-ENV:Body></SOAP-ENV:Envelope>`
	if _, err := DecodeCall([]byte(env)); err == nil || !strings.Contains(err.Error(), "xsi:type") {
		t.Errorf("want missing xsi:type error, got %v", err)
	}
}

func TestKindXSDMapping(t *testing.T) {
	kinds := []service.Kind{service.KindString, service.KindInt, service.KindFloat, service.KindBool, service.KindBytes}
	for _, k := range kinds {
		name, err := xsdType(k)
		if err != nil {
			t.Fatalf("xsdType(%v): %v", k, err)
		}
		back, err := kindFromXSD(name)
		if err != nil || back != k {
			t.Errorf("kindFromXSD(xsdType(%v)) = %v, %v", k, back, err)
		}
	}
	// Alternate integer widths also decode.
	for _, alias := range []string{"xsd:int", "xsd:short", "integer"} {
		if k, err := kindFromXSD(alias); err != nil || k != service.KindInt {
			t.Errorf("kindFromXSD(%s) = %v, %v", alias, k, err)
		}
	}
	if _, err := kindFromXSD("xsd:duration"); err == nil {
		t.Error("unknown xsd type accepted")
	}
	if _, err := xsdType(service.KindVoid); err == nil {
		t.Error("xsdType(void) should fail")
	}
}

func TestQuickCallRoundTrip(t *testing.T) {
	fn := func(op uint8, s string, n int64, f float64, b bool, raw []byte) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = 0
		}
		call := Call{
			Namespace: "urn:homeconnect:quick",
			Operation: "Op" + string(rune('A'+op%26)),
			Args: []Arg{
				{Name: "s", Value: service.StringValue(s)},
				{Name: "n", Value: service.IntValue(n)},
				{Name: "f", Value: service.FloatValue(f)},
				{Name: "b", Value: service.BoolValue(b)},
				{Name: "raw", Value: service.BytesValue(raw)},
			},
		}
		data, err := EncodeCall(call)
		if err != nil {
			return false
		}
		out, err := DecodeCall(data)
		if err != nil || out.Operation != call.Operation || len(out.Args) != 5 {
			return false
		}
		for i := range call.Args {
			if !out.Args[i].Value.Equal(call.Args[i].Value) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickResponseRoundTrip(t *testing.T) {
	fn := func(n int64) bool {
		data, err := EncodeResponse("urn:q", "Get", service.IntValue(n))
		if err != nil {
			return false
		}
		v, fault, err := DecodeResponse(data)
		return err == nil && fault == nil && v.Int() == n
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripXMLUnsafe(t *testing.T) {
	cases := []string{
		"plain",
		"control \x15 char",
		"a\xffb", // invalid UTF-8
		"null\x00byte",
		"tab\tand\nnewline\rok", // XML-legal whitespace survives unwrapped
	}
	for _, s := range cases {
		data, err := EncodeResponse("urn:q", "Get", service.StringValue(s))
		if err != nil {
			t.Fatalf("%q: encode: %v", s, err)
		}
		v, fault, err := DecodeResponse(data)
		if err != nil || fault != nil {
			t.Fatalf("%q: decode: %v %v", s, err, fault)
		}
		if v.Str() != s {
			t.Errorf("round trip %q -> %q", s, v.Str())
		}
	}
}
