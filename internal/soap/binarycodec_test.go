// Tests for the binary call codec: round trips over every value kind
// (including strings XML cannot carry untouched), fault equivalence with
// the XML envelope, and rejection of malformed records. The codec is a
// strict re-framing of the SOAP envelope's data, so each round trip is
// also checked against the XML path's decode of the same call.
package soap

import (
	"math"
	"strings"
	"testing"

	"homeconnect/internal/service"
)

// codecCalls is the shared table: every kind plus the XML-hostile
// strings the binary framing must carry byte-exactly.
var codecCalls = []Call{
	{Namespace: "urn:homeconnect:test:svc", Operation: "Noop"},
	{Namespace: "urn:homeconnect:test:svc", Operation: "Set", Args: []Arg{
		{Name: "s", Value: service.StringValue("plain")},
		{Name: "i", Value: service.IntValue(-42)},
		{Name: "f", Value: service.FloatValue(math.Pi)},
		{Name: "b", Value: service.BoolValue(true)},
		{Name: "raw", Value: service.BytesValue([]byte{0, 1, 2, 0xFF})},
		{Name: "v", Value: service.Void()},
	}},
	{Namespace: "urn:x", Operation: "Hostile", Args: []Arg{
		{Name: "xml", Value: service.StringValue(`<a b="c">&amp;]]></a>`)},
		{Name: "ctl", Value: service.StringValue("line1\nline2\ttab\x00nul")},
		{Name: "utf", Value: service.StringValue("héllo — 家 ☃")},
	}},
}

func TestBinCallRoundTrip(t *testing.T) {
	for _, want := range codecCalls {
		enc, err := EncodeBinCall(want)
		if err != nil {
			t.Fatalf("%s: %v", want.Operation, err)
		}
		got, err := DecodeBinCall(enc)
		if err != nil {
			t.Fatalf("%s: %v", want.Operation, err)
		}
		if got.Namespace != want.Namespace || got.Operation != want.Operation || len(got.Args) != len(want.Args) {
			t.Fatalf("%s: decoded %+v", want.Operation, got)
		}
		for i, a := range want.Args {
			g := got.Args[i]
			if g.Name != a.Name || !g.Value.Equal(a.Value) {
				t.Errorf("%s arg %d: got %s=%v, want %s=%v", want.Operation, i, g.Name, g.Value, a.Name, a.Value)
			}
		}
	}
}

func TestBinResponseRoundTrip(t *testing.T) {
	values := []service.Value{
		service.Void(),
		service.StringValue(`<xml>&"unsafe"</xml>`),
		service.IntValue(math.MinInt64),
		service.FloatValue(-0.0),
		service.BoolValue(false),
		service.BytesValue(nil),
	}
	for _, want := range values {
		enc, err := EncodeBinResponse(want)
		if err != nil {
			t.Fatal(err)
		}
		got, fault, err := DecodeBinResponse(enc)
		if err != nil || fault != nil {
			t.Fatalf("%v: err=%v fault=%v", want, err, fault)
		}
		if !got.Equal(want) {
			t.Errorf("round trip %v → %v", want, got)
		}
	}
}

// TestBinFaultMatchesXMLFault holds the two framings to the same
// RemoteError mapping: a fault encoded binary-side must classify exactly
// as its XML twin does.
func TestBinFaultMatchesXMLFault(t *testing.T) {
	f := &Fault{Code: "Client", String: "no such operation Frob", Detail: service.RemoteCode(service.ErrNoSuchOperation)}
	_, gotFault, err := DecodeBinResponse(EncodeBinFault(f))
	if err != nil {
		t.Fatal(err)
	}
	if gotFault == nil {
		t.Fatal("fault record decoded as success")
	}
	if *gotFault != *f {
		t.Fatalf("fault round trip %+v → %+v", f, gotFault)
	}
	binErr := gotFault.RemoteError()
	xmlErr := f.RemoteError()
	if binErr.Code != xmlErr.Code || binErr.Msg != xmlErr.Msg {
		t.Fatalf("RemoteError diverged: binary %+v, xml %+v", binErr, xmlErr)
	}
}

func TestBinCodecRejectsMalformed(t *testing.T) {
	badCalls := map[string][]byte{
		"empty":          nil,
		"bad version":    {99, binRecCall},
		"not a call":     {binCodecVersion, binRecResponse},
		"truncated name": {binCodecVersion, binRecCall, 5, 'a'},
		"absurd arg count": append([]byte{binCodecVersion, binRecCall, 0, 4, 'N', 'o', 'o', 'p'},
			0xFF, 0xFF, 0xFF, 0xFF, 0x0F),
	}
	for name, data := range badCalls {
		if _, err := DecodeBinCall(data); err == nil {
			t.Errorf("DecodeBinCall(%s) accepted", name)
		}
	}
	badResponses := map[string][]byte{
		"empty":          nil,
		"bad version":    {99, binRecResponse},
		"not a response": {binCodecVersion, binRecCall},
		"unknown kind":   {binCodecVersion, binRecResponse, 0x7F},
		"truncated":      {binCodecVersion, binRecResponse, byte(service.KindString), 9, 'x'},
	}
	for name, data := range badResponses {
		if _, _, err := DecodeBinResponse(data); err == nil {
			t.Errorf("DecodeBinResponse(%s) accepted", name)
		}
	}
	// An empty operation cannot encode.
	if _, err := EncodeBinCall(Call{Namespace: "urn:x"}); err == nil || !strings.Contains(err.Error(), "empty operation") {
		t.Errorf("empty operation encoded: %v", err)
	}
}
