// Binary call codec: the compact encoding of Call/result/Fault that
// rides the transport's binary fast path between framework-owned
// gateways. It is a strict alternative *framing* of exactly the data the
// SOAP envelope carries — same operations, same typed values, same fault
// code/string/detail triple — so the two paths stay semantically
// interchangeable and the three-way equivalence suite (loopback vs
// binary vs SOAP) can hold them to identical results and typed errors.
//
// Field encoding follows the WAL style: a version byte, a record
// discriminator, uvarint lengths, values by kind tag. No XML escaping,
// no base64: strings XML cannot carry ride here untouched.
package soap

import (
	"encoding/binary"
	"fmt"
	"math"

	"homeconnect/internal/service"
)

// BinCallContentType discriminates a binary-encoded call (or response)
// body on the fast path; XML faces tunnel with their usual text/xml.
const BinCallContentType = "application/x-homeconnect-bincall"

const binCodecVersion = 1

// Record discriminators.
const (
	binRecCall     = 'C'
	binRecResponse = 'R'
	binRecFault    = 'F'
)

func appendBCString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBCValue(b []byte, v service.Value) ([]byte, error) {
	k := v.Kind()
	if !k.Valid() {
		return nil, fmt.Errorf("soap: bincall: invalid value kind: %w", service.ErrBadKind)
	}
	b = append(b, byte(k))
	switch k {
	case service.KindVoid:
	case service.KindString:
		b = appendBCString(b, v.Str())
	case service.KindInt:
		b = binary.AppendVarint(b, v.Int())
	case service.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case service.KindBool:
		if v.Bool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case service.KindBytes:
		raw := v.Bytes()
		b = binary.AppendUvarint(b, uint64(len(raw)))
		b = append(b, raw...)
	}
	return b, nil
}

// bcReader walks a binary call record, latching the first error.
type bcReader struct {
	b   []byte
	off int
	err error
}

func (r *bcReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("soap: bincall: truncated at %s", what)
	}
}

func (r *bcReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *bcReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *bcReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *bcReader) str(what string) string {
	if r.err != nil {
		return ""
	}
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *bcReader) value(what string) service.Value {
	k := service.Kind(r.byte(what + " kind"))
	if r.err != nil {
		return service.Value{}
	}
	switch k {
	case service.KindVoid:
		return service.Void()
	case service.KindString:
		return service.StringValue(r.str(what))
	case service.KindInt:
		return service.IntValue(r.varint(what))
	case service.KindFloat:
		if r.off+8 > len(r.b) {
			r.fail(what)
			return service.Value{}
		}
		bits := binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
		return service.FloatValue(math.Float64frombits(bits))
	case service.KindBool:
		return service.BoolValue(r.byte(what) != 0)
	case service.KindBytes:
		n := r.uvarint(what)
		if r.err != nil {
			return service.Value{}
		}
		if uint64(len(r.b)-r.off) < n {
			r.fail(what)
			return service.Value{}
		}
		v := service.BytesValue(r.b[r.off : r.off+int(n)])
		r.off += int(n)
		return v
	default:
		if r.err == nil {
			r.err = fmt.Errorf("soap: bincall: unknown value kind %d: %w", k, service.ErrBadKind)
		}
		return service.Value{}
	}
}

// EncodeBinCall serializes an RPC request in the binary framing.
func EncodeBinCall(c Call) ([]byte, error) {
	if c.Operation == "" {
		return nil, fmt.Errorf("soap: empty operation name")
	}
	b := make([]byte, 0, 64+len(c.Namespace)+len(c.Operation))
	b = append(b, binCodecVersion, binRecCall)
	b = appendBCString(b, c.Namespace)
	b = appendBCString(b, c.Operation)
	b = binary.AppendUvarint(b, uint64(len(c.Args)))
	var err error
	for _, a := range c.Args {
		b = appendBCString(b, a.Name)
		if b, err = appendBCValue(b, a.Value); err != nil {
			return nil, fmt.Errorf("soap: arg %s: %w", a.Name, err)
		}
	}
	return b, nil
}

// DecodeBinCall parses a binary-framed RPC request.
func DecodeBinCall(data []byte) (Call, error) {
	r := &bcReader{b: data}
	if v := r.byte("version"); r.err == nil && v != binCodecVersion {
		return Call{}, fmt.Errorf("soap: bincall version %d not supported", v)
	}
	if rec := r.byte("record"); r.err == nil && rec != binRecCall {
		return Call{}, fmt.Errorf("soap: bincall record %q is not a call", rec)
	}
	var c Call
	c.Namespace = r.str("namespace")
	c.Operation = r.str("operation")
	n := r.uvarint("arg count")
	if r.err != nil {
		return Call{}, r.err
	}
	if n > uint64(len(data)) {
		return Call{}, fmt.Errorf("soap: bincall arg count %d exceeds body", n)
	}
	if n > 0 {
		c.Args = make([]Arg, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		name := r.str("arg name")
		v := r.value("arg value")
		if r.err != nil {
			return Call{}, r.err
		}
		c.Args = append(c.Args, Arg{Name: name, Value: v})
	}
	return c, r.err
}

// EncodeBinResponse serializes a successful result.
func EncodeBinResponse(result service.Value) ([]byte, error) {
	b := make([]byte, 0, 32+result.PayloadLen())
	b = append(b, binCodecVersion, binRecResponse)
	b, err := appendBCValue(b, result)
	if err != nil {
		return nil, fmt.Errorf("soap: result: %w", err)
	}
	return b, nil
}

// EncodeBinFault serializes a fault: the same code/string/actor/detail
// the XML fault carries, so RemoteError mapping is shared.
func EncodeBinFault(f *Fault) []byte {
	b := make([]byte, 0, 32+len(f.String)+len(f.Detail))
	b = append(b, binCodecVersion, binRecFault)
	b = appendBCString(b, f.Code)
	b = appendBCString(b, f.String)
	b = appendBCString(b, f.Actor)
	b = appendBCString(b, f.Detail)
	return b
}

// DecodeBinResponse parses a binary response body into the result value
// or the decoded fault — the exact contract of DecodeResponse.
func DecodeBinResponse(data []byte) (service.Value, *Fault, error) {
	r := &bcReader{b: data}
	if v := r.byte("version"); r.err == nil && v != binCodecVersion {
		return service.Value{}, nil, fmt.Errorf("soap: bincall version %d not supported", v)
	}
	switch rec := r.byte("record"); {
	case r.err != nil:
		return service.Value{}, nil, r.err
	case rec == binRecFault:
		f := &Fault{}
		f.Code = r.str("fault code")
		f.String = r.str("fault string")
		f.Actor = r.str("fault actor")
		f.Detail = r.str("fault detail")
		if r.err != nil {
			return service.Value{}, nil, r.err
		}
		return service.Value{}, f, nil
	case rec == binRecResponse:
		v := r.value("result")
		if r.err != nil {
			return service.Value{}, nil, r.err
		}
		return v, nil, nil
	default:
		return service.Value{}, nil, fmt.Errorf("soap: bincall record %q is not a response", rec)
	}
}
