// Package soap implements the subset of SOAP 1.1 used as the Virtual
// Service Gateway protocol in the paper's prototype (§4.1): RPC-style
// envelopes with xsi-typed parameters, faults, and an HTTP binding.
//
// The paper chose SOAP because it is "simple ... easy for implementation
// and light-weight for network" and rides on ubiquitous HTTP/XML
// infrastructure. This package reproduces exactly that: hand-rolled
// encoding against the SOAP 1.1 envelope/encoding namespaces with no
// dependencies beyond the standard library.
//
// The codec is the federation's hottest path — every inter-gateway call
// crosses it twice in each direction — so it is built for allocation
// economy: encoders write into pooled buffers behind precomputed envelope
// prefix/suffix constants, and decoding rides internal/xmltree's pooled
// single-pass scanner instead of a private encoding/xml element parser.
package soap

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"

	"homeconnect/internal/service"
	"homeconnect/internal/xmltree"
)

// SOAP 1.1 namespace constants.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	EncodingNS = "http://schemas.xmlsoap.org/soap/encoding/"
	XSDNS      = "http://www.w3.org/2001/XMLSchema"
	XSINS      = "http://www.w3.org/2001/XMLSchema-instance"
)

// Arg is one named, typed RPC parameter.
type Arg struct {
	Name  string
	Value service.Value
}

// Call is an RPC-style SOAP request: an operation element in the service's
// namespace whose children are the parameters.
type Call struct {
	// Namespace qualifies the operation element; the framework uses
	// "urn:homeconnect:<service-id>".
	Namespace string
	// Operation is the element (method) name.
	Operation string
	// Args are the positional parameters in declaration order.
	Args []Arg
}

// Fault is a SOAP 1.1 fault. It implements error.
type Fault struct {
	// Code is the faultcode QName local part: "Client" or "Server".
	Code string
	// String is the human-readable faultstring.
	String string
	// Actor optionally identifies the failing node.
	Actor string
	// Detail carries the framework's machine-readable error code (see
	// service.RemoteCode) in a <code> element.
	Detail string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// RemoteError converts the fault to the *service.RemoteError a caller
// surfaces: the machine-readable Detail code when present, else the
// faultcode side. This is the single fault→error mapping shared by the
// HTTP client and the gateway's loopback path, so the two paths cannot
// diverge.
func (f *Fault) RemoteError() *service.RemoteError {
	code := f.Detail
	if code == "" {
		code = f.Code
	}
	return &service.RemoteError{Code: code, Msg: f.String}
}

// xsdType maps a value kind to its xsi:type attribute value (with the xsd:
// prefix bound in the envelope).
func xsdType(k service.Kind) (string, error) {
	switch k {
	case service.KindString:
		return "xsd:string", nil
	case service.KindInt:
		return "xsd:long", nil
	case service.KindFloat:
		return "xsd:double", nil
	case service.KindBool:
		return "xsd:boolean", nil
	case service.KindBytes:
		return "xsd:base64Binary", nil
	default:
		return "", fmt.Errorf("soap: no xsd type for kind %v: %w", k, service.ErrBadKind)
	}
}

// kindFromXSD inverts xsdType, accepting any prefix before the colon.
func kindFromXSD(t string) (service.Kind, error) {
	if i := strings.IndexByte(t, ':'); i >= 0 {
		t = t[i+1:]
	}
	switch t {
	case "string":
		return service.KindString, nil
	case "long", "int", "short", "integer":
		return service.KindInt, nil
	case "double", "float", "decimal":
		return service.KindFloat, nil
	case "boolean":
		return service.KindBool, nil
	case "base64Binary":
		return service.KindBytes, nil
	default:
		return service.KindInvalid, fmt.Errorf("soap: unknown xsd type %q: %w", t, service.ErrBadKind)
	}
}

func xmlSafe(s string) bool {
	// Invalid UTF-8 ranges as U+FFFD, which xmltree.IsChar accepts but the
	// encoder cannot round-trip — wrap those strings too.
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if !xmltree.IsChar(r) {
			return false
		}
	}
	return true
}

// encodeValueText renders a value's character data for the wire. Bytes use
// base64 per xsd:base64Binary; scalars use service text form. Strings that
// XML cannot carry are base64-wrapped, flagged by the enc="base64"
// parameter attribute (both ends of the gateway protocol understand it).
func encodeValueText(v service.Value) (text string, base64Wrapped bool) {
	switch v.Kind() {
	case service.KindBytes:
		return base64.StdEncoding.EncodeToString(v.Bytes()), false
	case service.KindString:
		if s := v.Str(); !xmlSafe(s) {
			return base64.StdEncoding.EncodeToString([]byte(s)), true
		}
	}
	return v.Text(), false
}

// decodeValueText parses wire character data into a value of kind k.
// base64Wrapped reports an enc="base64" string parameter.
func decodeValueText(k service.Kind, text string, base64Wrapped bool) (service.Value, error) {
	if k == service.KindBytes || base64Wrapped {
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(text))
		if err != nil {
			return service.Value{}, fmt.Errorf("soap: base64: %w", err)
		}
		if base64Wrapped {
			return service.StringValue(string(raw)), nil
		}
		return service.BytesValue(raw), nil
	}
	if k == service.KindString {
		// The parsed text is a zero-copy slice of the whole envelope
		// (see xmltree's scanner); clone it so a caller holding the
		// string does not pin an envelope-sized allocation.
		text = strings.Clone(text)
	}
	return service.ParseText(k, text)
}

// The envelope shell never varies, so it is two string constants: one
// WriteString each instead of a token stream.
const (
	envelopeOpen = xml.Header +
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + EnvelopeNS + `"` +
		` xmlns:xsd="` + XSDNS + `"` +
		` xmlns:xsi="` + XSINS + `"` +
		` SOAP-ENV:encodingStyle="` + EncodingNS + `">` +
		`<SOAP-ENV:Body>`
	envelopeClose = `</SOAP-ENV:Body></SOAP-ENV:Envelope>`
)

// encBufPool recycles encoder buffers: a steady-state encode allocates
// only the returned envelope copy.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// openEnvelope returns a pooled buffer primed with the envelope prefix.
func openEnvelope() *bytes.Buffer {
	b := encBufPool.Get().(*bytes.Buffer)
	b.Reset()
	b.WriteString(envelopeOpen)
	return b
}

// encBufRetainLimit bounds pooled encoder buffers: one envelope with a
// huge binary payload must not pin its buffer for the life of the
// process while steady-state envelopes run a few hundred bytes.
const encBufRetainLimit = 64 << 10

// recycleBuf returns a buffer to the pool unless it has grown past the
// retain limit.
func recycleBuf(b *bytes.Buffer) {
	if b.Cap() <= encBufRetainLimit {
		encBufPool.Put(b)
	}
}

// closeEnvelope finishes the envelope, copies it out and recycles the
// buffer.
func closeEnvelope(b *bytes.Buffer) []byte {
	b.WriteString(envelopeClose)
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	recycleBuf(b)
	return out
}

// writeParam writes one xsi-typed parameter element.
func writeParam(b *bytes.Buffer, name, xsdT, text string, wrapped bool) {
	b.WriteByte('<')
	b.WriteString(name)
	b.WriteString(` xsi:type="`)
	b.WriteString(xsdT)
	b.WriteByte('"')
	if wrapped {
		b.WriteString(` enc="base64"`)
	}
	b.WriteByte('>')
	xmltree.Escape(b, text)
	b.WriteString(`</`)
	b.WriteString(name)
	b.WriteByte('>')
}

// EncodeCall serializes an RPC request envelope.
func EncodeCall(c Call) ([]byte, error) {
	if c.Operation == "" {
		return nil, fmt.Errorf("soap: empty operation name")
	}
	b := openEnvelope()
	b.WriteString(`<m:`)
	b.WriteString(c.Operation)
	b.WriteString(` xmlns:m="`)
	xmltree.Escape(b, c.Namespace)
	b.WriteString(`">`)
	for _, a := range c.Args {
		t, err := xsdType(a.Value.Kind())
		if err != nil {
			recycleBuf(b)
			return nil, fmt.Errorf("soap: arg %s: %w", a.Name, err)
		}
		text, wrapped := encodeValueText(a.Value)
		writeParam(b, a.Name, t, text, wrapped)
	}
	b.WriteString(`</m:`)
	b.WriteString(c.Operation)
	b.WriteByte('>')
	return closeEnvelope(b), nil
}

// EncodeResponse serializes an RPC response envelope. A void result
// produces an empty <m:<op>Response/> element, matching Apache SOAP.
func EncodeResponse(namespace, operation string, result service.Value) ([]byte, error) {
	b := openEnvelope()
	b.WriteString(`<m:`)
	b.WriteString(operation)
	b.WriteString(`Response xmlns:m="`)
	xmltree.Escape(b, namespace)
	b.WriteString(`">`)
	if !result.IsVoid() {
		t, err := xsdType(result.Kind())
		if err != nil {
			recycleBuf(b)
			return nil, fmt.Errorf("soap: result: %w", err)
		}
		text, wrapped := encodeValueText(result)
		writeParam(b, "return", t, text, wrapped)
	}
	b.WriteString(`</m:`)
	b.WriteString(operation)
	b.WriteString(`Response>`)
	return closeEnvelope(b), nil
}

// EncodeFault serializes a fault envelope.
func EncodeFault(f *Fault) []byte {
	b := openEnvelope()
	b.WriteString(`<SOAP-ENV:Fault><faultcode>SOAP-ENV:`)
	xmltree.Escape(b, f.Code)
	b.WriteString(`</faultcode><faultstring>`)
	xmltree.Escape(b, f.String)
	b.WriteString(`</faultstring>`)
	if f.Actor != "" {
		b.WriteString(`<faultactor>`)
		xmltree.Escape(b, f.Actor)
		b.WriteString(`</faultactor>`)
	}
	if f.Detail != "" {
		b.WriteString(`<detail><code>`)
		xmltree.Escape(b, f.Detail)
		b.WriteString(`</code></detail>`)
	}
	b.WriteString(`</SOAP-ENV:Fault>`)
	return closeEnvelope(b)
}

// parseBody decodes an envelope and returns the first element inside Body.
func parseBody(data []byte) (*xmltree.Element, error) {
	root, err := xmltree.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("soap: parse envelope: %w", err)
	}
	if root.Name.Local == "Envelope" && root.Name.Space != EnvelopeNS {
		return nil, fmt.Errorf("soap: envelope namespace %q is not SOAP 1.1", root.Name.Space)
	}
	if root.Name.Local != "Envelope" {
		return nil, fmt.Errorf("soap: no Body element found")
	}
	body := root.ChildNS(EnvelopeNS, "Body")
	if body == nil || len(body.Children) == 0 {
		return nil, fmt.Errorf("soap: no Body element found")
	}
	return body.Children[0], nil
}

// parseFault converts a parsed <Fault> element into a Fault value.
func parseFault(el *xmltree.Element) *Fault {
	f := &Fault{}
	if code := el.ChildText("faultcode"); code != "" {
		if i := strings.IndexByte(code, ':'); i >= 0 {
			code = code[i+1:]
		}
		f.Code = code
	}
	f.String = el.ChildText("faultstring")
	f.Actor = el.ChildText("faultactor")
	if d := el.Child("detail"); d != nil {
		f.Detail = d.ChildText("code")
	}
	return f
}

// isFault reports whether el is a SOAP 1.1 <Fault>.
func isFault(el *xmltree.Element) bool {
	return el.Name.Local == "Fault" && el.Name.Space == EnvelopeNS
}

// DecodeCall parses an RPC request envelope.
func DecodeCall(data []byte) (Call, error) {
	el, err := parseBody(data)
	if err != nil {
		return Call{}, err
	}
	if isFault(el) {
		return Call{}, fmt.Errorf("soap: request contains a fault: %w", parseFault(el))
	}
	c := Call{Namespace: el.Name.Space, Operation: el.Name.Local}
	if n := len(el.Children); n > 0 {
		c.Args = make([]Arg, 0, n)
	}
	for _, p := range el.Children {
		t := p.Attr("type")
		if t == "" {
			return Call{}, fmt.Errorf("soap: parameter %s missing xsi:type", p.Name.Local)
		}
		k, err := kindFromXSD(t)
		if err != nil {
			return Call{}, fmt.Errorf("soap: parameter %s: %w", p.Name.Local, err)
		}
		v, err := decodeValueText(k, p.Text, p.Attr("enc") == "base64")
		if err != nil {
			return Call{}, fmt.Errorf("soap: parameter %s: %w", p.Name.Local, err)
		}
		c.Args = append(c.Args, Arg{Name: p.Name.Local, Value: v})
	}
	return c, nil
}

// DecodeResponse parses a response envelope, returning the result value or
// the decoded fault. The fault is returned as a value (not an error) so
// callers can distinguish transport errors from remote faults.
func DecodeResponse(data []byte) (service.Value, *Fault, error) {
	el, err := parseBody(data)
	if err != nil {
		return service.Value{}, nil, err
	}
	if isFault(el) {
		return service.Value{}, parseFault(el), nil
	}
	if !strings.HasSuffix(el.Name.Local, "Response") {
		return service.Value{}, nil, fmt.Errorf("soap: unexpected response element %s", el.Name.Local)
	}
	ret := el.Child("return")
	if ret == nil {
		return service.Void(), nil, nil
	}
	t := ret.Attr("type")
	if t == "" {
		return service.Value{}, nil, fmt.Errorf("soap: return missing xsi:type")
	}
	k, err := kindFromXSD(t)
	if err != nil {
		return service.Value{}, nil, err
	}
	v, err := decodeValueText(k, ret.Text, ret.Attr("enc") == "base64")
	if err != nil {
		return service.Value{}, nil, err
	}
	return v, nil, nil
}
