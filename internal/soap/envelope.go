// Package soap implements the subset of SOAP 1.1 used as the Virtual
// Service Gateway protocol in the paper's prototype (§4.1): RPC-style
// envelopes with xsi-typed parameters, faults, and an HTTP binding.
//
// The paper chose SOAP because it is "simple ... easy for implementation
// and light-weight for network" and rides on ubiquitous HTTP/XML
// infrastructure. This package reproduces exactly that: hand-rolled
// encoding against the SOAP 1.1 envelope/encoding namespaces with no
// dependencies beyond the standard library.
package soap

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"homeconnect/internal/service"
)

// SOAP 1.1 namespace constants.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	EncodingNS = "http://schemas.xmlsoap.org/soap/encoding/"
	XSDNS      = "http://www.w3.org/2001/XMLSchema"
	XSINS      = "http://www.w3.org/2001/XMLSchema-instance"
)

// Arg is one named, typed RPC parameter.
type Arg struct {
	Name  string
	Value service.Value
}

// Call is an RPC-style SOAP request: an operation element in the service's
// namespace whose children are the parameters.
type Call struct {
	// Namespace qualifies the operation element; the framework uses
	// "urn:homeconnect:<service-id>".
	Namespace string
	// Operation is the element (method) name.
	Operation string
	// Args are the positional parameters in declaration order.
	Args []Arg
}

// Fault is a SOAP 1.1 fault. It implements error.
type Fault struct {
	// Code is the faultcode QName local part: "Client" or "Server".
	Code string
	// String is the human-readable faultstring.
	String string
	// Actor optionally identifies the failing node.
	Actor string
	// Detail carries the framework's machine-readable error code (see
	// service.RemoteCode) in a <code> element.
	Detail string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// xsdType maps a value kind to its xsi:type attribute value (with the xsd:
// prefix bound in the envelope).
func xsdType(k service.Kind) (string, error) {
	switch k {
	case service.KindString:
		return "xsd:string", nil
	case service.KindInt:
		return "xsd:long", nil
	case service.KindFloat:
		return "xsd:double", nil
	case service.KindBool:
		return "xsd:boolean", nil
	case service.KindBytes:
		return "xsd:base64Binary", nil
	default:
		return "", fmt.Errorf("soap: no xsd type for kind %v: %w", k, service.ErrBadKind)
	}
}

// kindFromXSD inverts xsdType, accepting any prefix before the colon.
func kindFromXSD(t string) (service.Kind, error) {
	if i := strings.IndexByte(t, ':'); i >= 0 {
		t = t[i+1:]
	}
	switch t {
	case "string":
		return service.KindString, nil
	case "long", "int", "short", "integer":
		return service.KindInt, nil
	case "double", "float", "decimal":
		return service.KindFloat, nil
	case "boolean":
		return service.KindBool, nil
	case "base64Binary":
		return service.KindBytes, nil
	default:
		return service.KindInvalid, fmt.Errorf("soap: unknown xsd type %q: %w", t, service.ErrBadKind)
	}
}

// isXMLChar reports whether r is representable in XML 1.0 character data.
// Control characters below 0x20 (except tab, LF, CR) and the non-character
// code points cannot appear even escaped; xml.EscapeText silently replaces
// them with U+FFFD, which would corrupt round-trips.
func isXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

func xmlSafe(s string) bool {
	// Invalid UTF-8 ranges as U+FFFD, which isXMLChar accepts but the
	// encoder cannot round-trip — wrap those strings too.
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if !isXMLChar(r) {
			return false
		}
	}
	return true
}

// encodeValueText renders a value's character data for the wire. Bytes use
// base64 per xsd:base64Binary; scalars use service text form. Strings that
// XML cannot carry are base64-wrapped, flagged by the enc="base64"
// parameter attribute (both ends of the gateway protocol understand it).
func encodeValueText(v service.Value) (text string, base64Wrapped bool) {
	switch v.Kind() {
	case service.KindBytes:
		return base64.StdEncoding.EncodeToString(v.Bytes()), false
	case service.KindString:
		if s := v.Str(); !xmlSafe(s) {
			return base64.StdEncoding.EncodeToString([]byte(s)), true
		}
	}
	return v.Text(), false
}

// decodeValueText parses wire character data into a value of kind k.
// base64Wrapped reports an enc="base64" string parameter.
func decodeValueText(k service.Kind, text string, base64Wrapped bool) (service.Value, error) {
	if k == service.KindBytes || base64Wrapped {
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(text))
		if err != nil {
			return service.Value{}, fmt.Errorf("soap: base64: %w", err)
		}
		if base64Wrapped {
			return service.StringValue(string(raw)), nil
		}
		return service.BytesValue(raw), nil
	}
	return service.ParseText(k, text)
}

// writeEscaped writes XML-escaped character data.
func writeEscaped(b *bytes.Buffer, s string) {
	// xml.EscapeText never fails on a bytes.Buffer.
	_ = xml.EscapeText(b, []byte(s))
}

func writeEnvelopeOpen(b *bytes.Buffer) {
	b.WriteString(xml.Header)
	b.WriteString(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + EnvelopeNS + `"`)
	b.WriteString(` xmlns:xsd="` + XSDNS + `"`)
	b.WriteString(` xmlns:xsi="` + XSINS + `"`)
	b.WriteString(` SOAP-ENV:encodingStyle="` + EncodingNS + `">`)
	b.WriteString("<SOAP-ENV:Body>")
}

func writeEnvelopeClose(b *bytes.Buffer) {
	b.WriteString("</SOAP-ENV:Body></SOAP-ENV:Envelope>")
}

// EncodeCall serializes an RPC request envelope.
func EncodeCall(c Call) ([]byte, error) {
	if c.Operation == "" {
		return nil, fmt.Errorf("soap: empty operation name")
	}
	var b bytes.Buffer
	writeEnvelopeOpen(&b)
	b.WriteString(`<m:` + c.Operation + ` xmlns:m="`)
	writeEscaped(&b, c.Namespace)
	b.WriteString(`">`)
	for _, a := range c.Args {
		t, err := xsdType(a.Value.Kind())
		if err != nil {
			return nil, fmt.Errorf("soap: arg %s: %w", a.Name, err)
		}
		text, wrapped := encodeValueText(a.Value)
		b.WriteString(`<` + a.Name + ` xsi:type="` + t + `"`)
		if wrapped {
			b.WriteString(` enc="base64"`)
		}
		b.WriteString(`>`)
		writeEscaped(&b, text)
		b.WriteString(`</` + a.Name + `>`)
	}
	b.WriteString(`</m:` + c.Operation + `>`)
	writeEnvelopeClose(&b)
	return b.Bytes(), nil
}

// EncodeResponse serializes an RPC response envelope. A void result
// produces an empty <m:<op>Response/> element, matching Apache SOAP.
func EncodeResponse(namespace, operation string, result service.Value) ([]byte, error) {
	var b bytes.Buffer
	writeEnvelopeOpen(&b)
	b.WriteString(`<m:` + operation + `Response xmlns:m="`)
	writeEscaped(&b, namespace)
	b.WriteString(`">`)
	if !result.IsVoid() {
		t, err := xsdType(result.Kind())
		if err != nil {
			return nil, fmt.Errorf("soap: result: %w", err)
		}
		text, wrapped := encodeValueText(result)
		b.WriteString(`<return xsi:type="` + t + `"`)
		if wrapped {
			b.WriteString(` enc="base64"`)
		}
		b.WriteString(`>`)
		writeEscaped(&b, text)
		b.WriteString(`</return>`)
	}
	b.WriteString(`</m:` + operation + `Response>`)
	writeEnvelopeClose(&b)
	return b.Bytes(), nil
}

// EncodeFault serializes a fault envelope.
func EncodeFault(f *Fault) []byte {
	var b bytes.Buffer
	writeEnvelopeOpen(&b)
	b.WriteString(`<SOAP-ENV:Fault><faultcode>SOAP-ENV:`)
	writeEscaped(&b, f.Code)
	b.WriteString(`</faultcode><faultstring>`)
	writeEscaped(&b, f.String)
	b.WriteString(`</faultstring>`)
	if f.Actor != "" {
		b.WriteString(`<faultactor>`)
		writeEscaped(&b, f.Actor)
		b.WriteString(`</faultactor>`)
	}
	if f.Detail != "" {
		b.WriteString(`<detail><code>`)
		writeEscaped(&b, f.Detail)
		b.WriteString(`</code></detail>`)
	}
	b.WriteString(`</SOAP-ENV:Fault>`)
	writeEnvelopeClose(&b)
	return b.Bytes()
}

// element is a parsed XML element subtree: name, attributes, character
// data, and child elements, in document order.
type element struct {
	name     xml.Name
	attrs    []xml.Attr
	text     string
	children []*element
}

func (e *element) attr(local string) string {
	for _, a := range e.attrs {
		if a.Name.Local == local {
			return a.Value
		}
	}
	return ""
}

func (e *element) child(local string) *element {
	for _, c := range e.children {
		if c.name.Local == local {
			return c
		}
	}
	return nil
}

// parseElement reads one element subtree from the decoder, given its start
// token.
func parseElement(dec *xml.Decoder, start xml.StartElement) (*element, error) {
	el := &element{name: start.Name, attrs: start.Attr}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("soap: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			c, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			el.children = append(el.children, c)
		case xml.CharData:
			el.text += string(t)
		case xml.EndElement:
			return el, nil
		}
	}
}

// parseBody decodes an envelope and returns the first element inside Body.
func parseBody(data []byte) (*element, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	inBody := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("soap: no Body element found")
		}
		if err != nil {
			return nil, fmt.Errorf("soap: parse envelope: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch {
		case !inBody && start.Name.Local == "Body" && start.Name.Space == EnvelopeNS:
			inBody = true
		case !inBody && start.Name.Local == "Envelope" && start.Name.Space != EnvelopeNS:
			return nil, fmt.Errorf("soap: envelope namespace %q is not SOAP 1.1", start.Name.Space)
		case inBody:
			return parseElement(dec, start)
		}
	}
}

// parseFault converts a parsed <Fault> element into a Fault value.
func parseFault(el *element) *Fault {
	f := &Fault{}
	if c := el.child("faultcode"); c != nil {
		code := strings.TrimSpace(c.text)
		if i := strings.IndexByte(code, ':'); i >= 0 {
			code = code[i+1:]
		}
		f.Code = code
	}
	if c := el.child("faultstring"); c != nil {
		f.String = strings.TrimSpace(c.text)
	}
	if c := el.child("faultactor"); c != nil {
		f.Actor = strings.TrimSpace(c.text)
	}
	if d := el.child("detail"); d != nil {
		if c := d.child("code"); c != nil {
			f.Detail = strings.TrimSpace(c.text)
		}
	}
	return f
}

// DecodeCall parses an RPC request envelope.
func DecodeCall(data []byte) (Call, error) {
	el, err := parseBody(data)
	if err != nil {
		return Call{}, err
	}
	if el.name.Local == "Fault" && el.name.Space == EnvelopeNS {
		return Call{}, fmt.Errorf("soap: request contains a fault: %w", parseFault(el))
	}
	c := Call{Namespace: el.name.Space, Operation: el.name.Local}
	for _, p := range el.children {
		t := p.attr("type")
		if t == "" {
			return Call{}, fmt.Errorf("soap: parameter %s missing xsi:type", p.name.Local)
		}
		k, err := kindFromXSD(t)
		if err != nil {
			return Call{}, fmt.Errorf("soap: parameter %s: %w", p.name.Local, err)
		}
		v, err := decodeValueText(k, p.text, p.attr("enc") == "base64")
		if err != nil {
			return Call{}, fmt.Errorf("soap: parameter %s: %w", p.name.Local, err)
		}
		c.Args = append(c.Args, Arg{Name: p.name.Local, Value: v})
	}
	return c, nil
}

// DecodeResponse parses a response envelope, returning the result value or
// the decoded fault. The fault is returned as a value (not an error) so
// callers can distinguish transport errors from remote faults.
func DecodeResponse(data []byte) (service.Value, *Fault, error) {
	el, err := parseBody(data)
	if err != nil {
		return service.Value{}, nil, err
	}
	if el.name.Local == "Fault" && el.name.Space == EnvelopeNS {
		return service.Value{}, parseFault(el), nil
	}
	if !strings.HasSuffix(el.name.Local, "Response") {
		return service.Value{}, nil, fmt.Errorf("soap: unexpected response element %s", el.name.Local)
	}
	ret := el.child("return")
	if ret == nil {
		return service.Void(), nil, nil
	}
	t := ret.attr("type")
	if t == "" {
		return service.Value{}, nil, fmt.Errorf("soap: return missing xsi:type")
	}
	k, err := kindFromXSD(t)
	if err != nil {
		return service.Value{}, nil, err
	}
	v, err := decodeValueText(k, ret.text, ret.attr("enc") == "base64")
	if err != nil {
		return service.Value{}, nil, err
	}
	return v, nil, nil
}
