// Differential tests for the pooled scanner: every document in the
// corpus must parse to exactly the tree the seed's encoding/xml-based
// parser produced, so swapping the parser cannot change any codec's
// observable behavior.
package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// referenceParse is the seed implementation, kept verbatim as the oracle.
func referenceParse(data []byte) (*Element, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmltree: document has no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return referenceElement(dec, start)
		}
	}
}

func referenceElement(dec *xml.Decoder, start xml.StartElement) (*Element, error) {
	el := &Element{Name: start.Name, Attrs: start.Attr}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			c, err := referenceElement(dec, t)
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		case xml.CharData:
			el.Text += string(t)
		case xml.EndElement:
			return el, nil
		}
	}
}

// normalize makes reflect.DeepEqual insensitive to nil-vs-empty slices.
func normalize(e *Element) {
	if len(e.Attrs) == 0 {
		e.Attrs = nil
	}
	if len(e.Children) == 0 {
		e.Children = nil
	}
	for _, c := range e.Children {
		normalize(c)
	}
}

var corpus = []string{
	// Plain trees.
	`<a/>`,
	`<a></a>`,
	`<a>text</a>`,
	`<a x="1" y="two"/>`,
	`<root version="2"><a id="1">alpha</a><a id="2">beta</a><b><c>deep &amp; nested</c></b></root>`,
	// Prolog, comments, PIs, DOCTYPE.
	xml.Header + `<doc><!-- comment -->text<!-- more --></doc>`,
	`<?xml version="1.0" encoding="UTF-8"?>` + "\n" + `<doc a="b"/>`,
	`<!DOCTYPE doc><doc/>`,
	`<doc><?pi data?>x</doc>`,
	// Entities, named and numeric, in text and attribute values.
	`<a>&lt;&gt;&amp;&apos;&quot;</a>`,
	`<a>&#65;&#x42;&#x1F600;</a>`,
	`<a v="&lt;q&gt; &amp; &#34;r&#34;"/>`,
	`<a>tab&#x9;nl&#xA;cr&#xD;end</a>`,
	// Text interleaved with children accumulates, as encoding/xml does.
	`<a>one<b/>two<b/>three</a>`,
	`<a>  leading <b>inner</b> trailing  </a>`,
	// CDATA.
	`<a><![CDATA[raw <not> &parsed;]]></a>`,
	`<a>pre<![CDATA[mid]]>post</a>`,
	// Namespaces: default, prefixed, nested rebinding, xml prefix,
	// unbound prefix left verbatim, xmlns attrs preserved.
	`<r xmlns:x="urn:one" xmlns:y="urn:two"><x:item/><y:item/></r>`,
	`<r xmlns="urn:default"><item a="1"/></r>`,
	`<r xmlns="urn:a"><s xmlns="urn:b"><t/></s><u/></r>`,
	`<r xmlns:p="urn:a"><p:s p:q="v" plain="w"/></r>`,
	`<r xml:lang="en"/>`,
	`<p:r/>`,
	`<r><unbound:child/></r>`,
	// Attribute quoting and spacing variants.
	`<a x = "1"  y='2'/>`,
	`<a  x="1" ></a >`,
	// Whitespace-only and unicode text.
	"<a>\n  \t\n</a>",
	`<a>héllo wörld — 日本語</a>`,
	// Newline normalization.
	"<a>one\r\ntwo\rthree</a>",
	// A realistic SOAP envelope (the hot-path shape).
	xml.Header + `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"` +
		` xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
		` SOAP-ENV:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/">` +
		`<SOAP-ENV:Body><m:SetLevel xmlns:m="urn:homeconnect:x10:lamp-1">` +
		`<level xsi:type="xsd:long">42</level><fade xsi:type="xsd:boolean">true</fade>` +
		`</m:SetLevel></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
}

func TestScannerMatchesEncodingXML(t *testing.T) {
	for _, doc := range corpus {
		want, wantErr := referenceParse([]byte(doc))
		got, gotErr := Parse([]byte(doc))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: error mismatch: reference %v, scanner %v", doc, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		normalize(want)
		normalize(got)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q:\nreference %+v\nscanner   %+v", doc, dump(want), dump(got))
		}
	}
}

func dump(e *Element) string {
	var b strings.Builder
	var walk func(e *Element, depth int)
	walk = func(e *Element, depth int) {
		fmt.Fprintf(&b, "%s{%+v attrs=%v text=%q}\n", strings.Repeat("  ", depth), e.Name, e.Attrs, e.Text)
		for _, c := range e.Children {
			walk(c, depth+1)
		}
	}
	walk(e, 0)
	return b.String()
}

func TestScannerRejects(t *testing.T) {
	bad := []string{
		"", "   ", "junk only",
		"<unclosed>", "<a></b>", "<a", "<a x>", "<a x=>", "<a x=1>",
		"<a>&unknown;</a>", "<a>&#xZZ;</a>", "<a>& bare</a>", "<a>&#2;</a>",
		`<a x="unterminated>`, "<a><!-- unterminated</a>", "<a><![CDATA[open</a>",
		"<?pi never ends", "<!DOCTYPE unterminated",
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("Parse(%q): want error", doc)
		}
	}
}

// TestQuickWriterScannerRoundTrip drives random strings through the
// Writer and back through the scanner: whatever the framework can encode,
// the scanner must parse to the same text and attribute values
// encoding/xml would have produced.
func TestQuickWriterScannerRoundTrip(t *testing.T) {
	fn := func(text, attr string) bool {
		w := NewWriter()
		w.Open("doc", "v", attr)
		w.Leaf("t", text)
		data := w.Bytes()
		want, err1 := referenceParse(data)
		got, err2 := Parse(data)
		if err1 != nil || err2 != nil {
			return false
		}
		normalize(want)
		normalize(got)
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParsePooledReuse exercises the scanner pool across documents of
// different shapes to catch scratch-state bleed between parses.
func TestParsePooledReuse(t *testing.T) {
	for i := 0; i < 50; i++ {
		for _, doc := range corpus {
			if _, err := Parse([]byte(doc)); err != nil {
				t.Fatalf("iteration %d: %q: %v", i, doc, err)
			}
		}
	}
}
