// Package xmltree parses XML documents into a lightweight element tree.
// The framework deals in small protocol documents — the SOAP envelopes,
// WSDL definitions and UDDI messages of the paper's prototype (§4.1),
// plus UPnP device descriptions (§5) — whose schemas are too dynamic for
// struct tags; a generic tree keeps each codec simple.
package xmltree

import (
	"bytes"
	"encoding/xml"
	"unicode/utf8"
)

// Element is one parsed XML element: its name, attributes, accumulated
// character data, and child elements in document order.
type Element struct {
	Name     xml.Name
	Attrs    []xml.Attr
	Text     string
	Children []*Element
}

// Parse reads a document and returns its root element. Parsing is a
// single pass over pooled scanner state (see scan.go): steady-state
// callers allocate only the tree itself.
func Parse(data []byte) (*Element, error) {
	return parseDocument(data)
}

// Attr returns the value of the first attribute with the given local name,
// or "" if absent.
func (e *Element) Attr(local string) string {
	for _, a := range e.Attrs {
		if a.Name.Local == local {
			return a.Value
		}
	}
	return ""
}

// Child returns the first child element with the given local name, or nil.
func (e *Element) Child(local string) *Element {
	for _, c := range e.Children {
		if c.Name.Local == local {
			return c
		}
	}
	return nil
}

// ChildNS returns the first child with the given namespace and local name,
// or nil.
func (e *Element) ChildNS(space, local string) *Element {
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// All returns every child element with the given local name.
func (e *Element) All(local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// Find walks the tree by successive local names and returns the first
// match, or nil if any step is missing.
func (e *Element) Find(path ...string) *Element {
	cur := e
	for _, p := range path {
		cur = cur.Child(p)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// ChildText returns the trimmed character data of the named child, or "".
func (e *Element) ChildText(local string) string {
	if c := e.Child(local); c != nil {
		return trimSpace(c.Text)
	}
	return ""
}

func trimSpace(s string) string {
	start := 0
	for start < len(s) && isSpace(s[start]) {
		start++
	}
	end := len(s)
	for end > start && isSpace(s[end-1]) {
		end--
	}
	return s[start:end]
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// Escape writes s to buf with XML escaping, matching xml.EscapeText's
// output byte for byte but without its []byte conversion: every encoder
// in the framework escapes strings, and the copy was pure overhead.
// Characters XML cannot represent become U+FFFD, as in xml.EscapeText.
func Escape(buf *bytes.Buffer, s string) {
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if (r == utf8.RuneError && width == 1) || !IsChar(r) {
				esc = "�"
				break
			}
			i += width
			continue
		}
		buf.WriteString(s[last:i])
		buf.WriteString(esc)
		i += width
		last = i
	}
	buf.WriteString(s[last:])
}

// Writer incrementally builds an XML document. It tracks open elements so
// codecs can't emit mismatched tags, and escapes all character data.
type Writer struct {
	buf   bytes.Buffer
	stack []string
}

// NewWriter returns a Writer primed with the standard XML header.
func NewWriter() *Writer {
	w := &Writer{}
	w.buf.WriteString(xml.Header)
	return w
}

// Open starts an element; attrs alternate name, value.
func (w *Writer) Open(name string, attrs ...string) *Writer {
	w.buf.WriteByte('<')
	w.buf.WriteString(name)
	for i := 0; i+1 < len(attrs); i += 2 {
		w.buf.WriteByte(' ')
		w.buf.WriteString(attrs[i])
		w.buf.WriteString(`="`)
		Escape(&w.buf, attrs[i+1])
		w.buf.WriteByte('"')
	}
	w.buf.WriteByte('>')
	w.stack = append(w.stack, name)
	return w
}

// Close ends the most recently opened element.
func (w *Writer) Close() *Writer {
	if len(w.stack) == 0 {
		return w
	}
	name := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	w.buf.WriteString("</")
	w.buf.WriteString(name)
	w.buf.WriteByte('>')
	return w
}

// Text appends escaped character data.
func (w *Writer) Text(s string) *Writer {
	Escape(&w.buf, s)
	return w
}

// Leaf writes <name>text</name> in one step; attrs alternate name, value.
func (w *Writer) Leaf(name, text string, attrs ...string) *Writer {
	w.Open(name, attrs...)
	w.Text(text)
	return w.Close()
}

// SelfClose writes an empty element <name ...attrs/>.
func (w *Writer) SelfClose(name string, attrs ...string) *Writer {
	w.buf.WriteByte('<')
	w.buf.WriteString(name)
	for i := 0; i+1 < len(attrs); i += 2 {
		w.buf.WriteByte(' ')
		w.buf.WriteString(attrs[i])
		w.buf.WriteString(`="`)
		Escape(&w.buf, attrs[i+1])
		w.buf.WriteByte('"')
	}
	w.buf.WriteString("/>")
	return w
}

// Bytes closes any open elements and returns the document.
func (w *Writer) Bytes() []byte {
	for len(w.stack) > 0 {
		w.Close()
	}
	return w.buf.Bytes()
}
