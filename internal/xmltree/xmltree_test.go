package xmltree

import (
	"strings"
	"testing"
)

const sample = `<?xml version="1.0"?>
<root version="2">
  <a id="1">alpha</a>
  <a id="2">beta</a>
  <b><c>deep &amp; nested</c></b>
</root>`

func TestParseAndNavigate(t *testing.T) {
	root, err := Parse([]byte(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if root.Name.Local != "root" || root.Attr("version") != "2" {
		t.Errorf("root = %+v", root.Name)
	}
	if got := len(root.All("a")); got != 2 {
		t.Errorf("All(a) = %d, want 2", got)
	}
	if got := root.ChildText("a"); got != "alpha" {
		t.Errorf("ChildText(a) = %q", got)
	}
	if got := root.Find("b", "c"); got == nil || trimSpace(got.Text) != "deep & nested" {
		t.Errorf("Find(b,c) = %+v", got)
	}
	if root.Find("b", "missing") != nil {
		t.Error("Find of missing path should be nil")
	}
	if root.Child("zzz") != nil {
		t.Error("Child(zzz) should be nil")
	}
	if root.Attr("zzz") != "" {
		t.Error("Attr(zzz) should be empty")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<unclosed>", "<a></b>"} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestChildNS(t *testing.T) {
	doc := `<r xmlns:x="urn:one" xmlns:y="urn:two"><x:item/><y:item/></r>`
	root, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if el := root.ChildNS("urn:two", "item"); el == nil || el.Name.Space != "urn:two" {
		t.Errorf("ChildNS = %+v", el)
	}
	if root.ChildNS("urn:three", "item") != nil {
		t.Error("ChildNS with wrong ns should be nil")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Open("doc", "kind", "test")
	w.Leaf("name", "a<b>&c", "lang", "en")
	w.Open("list")
	w.Leaf("item", "one")
	w.Leaf("item", "two")
	w.Close()
	w.SelfClose("empty", "flag", "y")
	data := w.Bytes()

	root, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(writer output): %v\n%s", err, data)
	}
	if root.Attr("kind") != "test" {
		t.Errorf("kind = %q", root.Attr("kind"))
	}
	if got := root.ChildText("name"); got != "a<b>&c" {
		t.Errorf("name = %q", got)
	}
	if items := root.Find("list"); items == nil || len(items.All("item")) != 2 {
		t.Error("list items missing")
	}
	if root.Child("empty") == nil || root.Child("empty").Attr("flag") != "y" {
		t.Error("empty element missing")
	}
}

func TestWriterAutoClose(t *testing.T) {
	w := NewWriter()
	w.Open("a").Open("b").Open("c")
	data := string(w.Bytes())
	if !strings.HasSuffix(data, "</c></b></a>") {
		t.Errorf("unbalanced output: %s", data)
	}
	// Close on empty stack is a no-op.
	w2 := NewWriter()
	w2.Close()
	if !strings.Contains(string(w2.Bytes()), "<?xml") {
		t.Error("header missing")
	}
}
