// Single-pass document scanner. The seed parsed through encoding/xml,
// which costs one allocation per token (names, attribute slices, CharData
// copies) and cannot be pooled — SOAP envelopes on the inter-gateway hot
// path paid for a fresh decoder, a full token stream and quadratic
// character-data concatenation on every call. This scanner makes one pass
// over the document with pooled scratch state: element names and attribute
// values are zero-copy slices of the input, character data accumulates in
// a reusable buffer, and only the Elements themselves are allocated.
//
// The scanner covers the XML subset the framework's codecs emit and the
// constructs encoding/xml accepted in hand-written protocol documents:
// prolog and processing instructions, comments, DOCTYPE directives, CDATA
// sections, named and numeric character entities, CR/CRLF newline
// normalization, and namespace prefix resolution with scoped xmlns
// bindings (matching encoding/xml's conventions: the reserved "xml"
// prefix, unresolved prefixes left in Space verbatim, xmlns attributes
// kept in Attrs). Divergences are leniencies only: invalid UTF-8 passes
// through instead of erroring, and '<' inside attribute values is
// tolerated.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"
)

// xmlNamespace is the URI the reserved "xml" prefix is always bound to.
const xmlNamespace = "http://www.w3.org/XML/1998/namespace"

// parser scans one document. Instances are pooled: the text, attribute
// and namespace scratch survive between Parse calls, so steady-state
// parsing allocates only the returned tree.
type parser struct {
	src  string // the document, converted once; names and values slice it
	pos  int
	buf  []byte    // scratch for text that needs unescaping or joining
	atts []rawAttr // scratch for the current start tag's attributes
	ns   []binding // in-scope xmlns bindings, innermost last
}

// rawAttr is one attribute as written, name still prefixed.
type rawAttr struct {
	name string
	val  string
}

// binding is one in-scope xmlns declaration.
type binding struct {
	prefix string
	uri    string
}

var parserPool = sync.Pool{New: func() any { return new(parser) }}

// scratchRetainLimit bounds the pooled text buffer: a one-off giant
// document must not pin its scratch for the life of the process.
const scratchRetainLimit = 64 << 10

// parseDocument runs one pooled parse over data.
func parseDocument(data []byte) (*Element, error) {
	p := parserPool.Get().(*parser)
	p.src = string(data)
	p.pos = 0
	p.buf = p.buf[:0]
	p.atts = p.atts[:0]
	p.ns = p.ns[:0]
	root, err := p.document()
	// Drop every reference into the document so the pool doesn't pin it:
	// the attr and binding scratch hold string headers slicing p.src in
	// their capacity regions.
	p.src = ""
	clear(p.atts[:cap(p.atts)])
	clear(p.ns[:cap(p.ns)])
	if cap(p.buf) <= scratchRetainLimit {
		parserPool.Put(p)
	}
	return root, err
}

// document skips the prolog and miscellaneous items and parses the root
// element.
func (p *parser) document() (*Element, error) {
	for {
		i := strings.IndexByte(p.src[p.pos:], '<')
		if i < 0 {
			return nil, fmt.Errorf("xmltree: document has no root element")
		}
		p.pos += i + 1
		switch {
		case p.hasPrefix("?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case p.hasPrefix("!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("!"):
			if err := p.skipDirective(); err != nil {
				return nil, err
			}
		default:
			return p.element()
		}
	}
}

func (p *parser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

// skipPI consumes a processing instruction; pos is just past "<".
func (p *parser) skipPI() error {
	i := strings.Index(p.src[p.pos:], "?>")
	if i < 0 {
		return fmt.Errorf("xmltree: unterminated processing instruction")
	}
	p.pos += i + 2
	return nil
}

// skipComment consumes a comment; pos is just past "<".
func (p *parser) skipComment() error {
	i := strings.Index(p.src[p.pos+3:], "-->")
	if i < 0 {
		return fmt.Errorf("xmltree: unterminated comment")
	}
	p.pos += 3 + i + 3
	return nil
}

// skipDirective consumes a <!...> directive such as DOCTYPE, tracking
// angle-bracket depth so an internal subset doesn't end it early.
func (p *parser) skipDirective() error {
	depth := 1
	for ; p.pos < len(p.src); p.pos++ {
		switch p.src[p.pos] {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		}
	}
	return fmt.Errorf("xmltree: unterminated directive")
}

func isNameEnd(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '=', '/', '>', '<', '"', '\'':
		return true
	}
	return false
}

// name scans an element or attribute name as written (prefix included).
func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && !isNameEnd(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xmltree: expected a name at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// element parses one element; pos is at the first byte of its name.
func (p *parser) element() (*Element, error) {
	nsMark := len(p.ns)
	rawName, err := p.name()
	if err != nil {
		return nil, err
	}
	p.atts = p.atts[:0]
	selfClose := false
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xmltree: unexpected EOF in <%s> tag", rawName)
		}
		c := p.src[p.pos]
		if c == '>' {
			p.pos++
			break
		}
		if c == '/' {
			if !p.hasPrefix("/>") {
				return nil, fmt.Errorf("xmltree: malformed tag <%s>", rawName)
			}
			p.pos += 2
			selfClose = true
			break
		}
		aname, err := p.name()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return nil, fmt.Errorf("xmltree: attribute %s missing value in <%s>", aname, rawName)
		}
		p.pos++
		p.skipSpace()
		val, err := p.attrValue()
		if err != nil {
			return nil, err
		}
		if aname == "xmlns" {
			p.ns = append(p.ns, binding{prefix: "", uri: val})
		} else if strings.HasPrefix(aname, "xmlns:") {
			p.ns = append(p.ns, binding{prefix: aname[len("xmlns:"):], uri: val})
		}
		p.atts = append(p.atts, rawAttr{name: aname, val: val})
	}

	el := &Element{Name: p.resolveElem(rawName)}
	if n := len(p.atts); n > 0 {
		attrs := make([]xml.Attr, n)
		for i, a := range p.atts {
			attrs[i] = xml.Attr{Name: p.resolveAttr(a.name), Value: a.val}
		}
		el.Attrs = attrs
	}
	if !selfClose {
		if err := p.content(el, rawName); err != nil {
			return nil, err
		}
	}
	p.ns = p.ns[:nsMark]
	return el, nil
}

// attrValue scans a quoted attribute value, unescaping entities.
func (p *parser) attrValue() (string, error) {
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("xmltree: unexpected EOF in attribute value")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("xmltree: attribute value must be quoted")
	}
	p.pos++
	i := strings.IndexByte(p.src[p.pos:], q)
	if i < 0 {
		return "", fmt.Errorf("xmltree: unterminated attribute value")
	}
	raw := p.src[p.pos : p.pos+i]
	p.pos += i + 1
	if !strings.ContainsAny(raw, "&\r") {
		return raw, nil
	}
	mark := len(p.buf)
	if err := p.unescapeInto(raw); err != nil {
		return "", err
	}
	val := string(p.buf[mark:])
	p.buf = p.buf[:mark]
	return val, nil
}

// content parses an element's children and character data up to its end
// tag. The first contiguous text run stays a zero-copy slice of the
// source; a second run, an entity or CDATA spills accumulation into the
// shared scratch buffer (mark/truncate makes it safe under recursion).
func (p *parser) content(el *Element, rawName string) error {
	textMark := len(p.buf)
	direct := ""      // sole text run so far, when it needed no copy
	buffered := false // text has spilled into p.buf
	spill := func() {
		if direct != "" {
			p.buf = append(p.buf, direct...)
			direct = ""
		}
		buffered = true
	}
	addRun := func(run string) error {
		if run == "" {
			return nil
		}
		if strings.ContainsAny(run, "&\r") {
			spill()
			return p.unescapeInto(run)
		}
		if !buffered && direct == "" {
			direct = run
			return nil
		}
		spill()
		p.buf = append(p.buf, run...)
		return nil
	}
	for {
		start := p.pos
		i := strings.IndexByte(p.src[p.pos:], '<')
		if i < 0 {
			return fmt.Errorf("xmltree: unexpected EOF inside <%s>", rawName)
		}
		run := p.src[start : start+i]
		p.pos = start + i + 1
		if err := addRun(run); err != nil {
			return err
		}
		switch {
		case p.hasPrefix("/"):
			p.pos++
			end, err := p.name()
			if err != nil {
				return err
			}
			if end != rawName {
				return fmt.Errorf("xmltree: element <%s> closed by </%s>", rawName, end)
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '>' {
				return fmt.Errorf("xmltree: malformed end tag </%s>", end)
			}
			p.pos++
			if buffered {
				el.Text = string(p.buf[textMark:])
				p.buf = p.buf[:textMark]
			} else {
				el.Text = direct
			}
			return nil
		case p.hasPrefix("!--"):
			if err := p.skipComment(); err != nil {
				return err
			}
		case p.hasPrefix("![CDATA["):
			p.pos += len("![CDATA[")
			j := strings.Index(p.src[p.pos:], "]]>")
			if j < 0 {
				return fmt.Errorf("xmltree: unterminated CDATA section")
			}
			cdata := p.src[p.pos : p.pos+j]
			p.pos += j + 3
			// CDATA is literal: no entities, but newlines still normalize.
			switch {
			case cdata == "":
			case strings.ContainsRune(cdata, '\r'):
				spill()
				appendNormalized(&p.buf, cdata)
			case !buffered && direct == "":
				direct = cdata
			default:
				spill()
				p.buf = append(p.buf, cdata...)
			}
		case p.hasPrefix("?"):
			if err := p.skipPI(); err != nil {
				return err
			}
		default:
			child, err := p.element()
			if err != nil {
				return err
			}
			el.Children = append(el.Children, child)
		}
	}
}

// appendNormalized appends s with XML newline normalization: CRLF and
// bare CR both become LF.
func appendNormalized(buf *[]byte, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\r' {
			if i+1 < len(s) && s[i+1] == '\n' {
				continue // the LF will follow
			}
			c = '\n'
		}
		*buf = append(*buf, c)
	}
}

// unescapeInto appends s to the scratch buffer, resolving character
// entities and normalizing newlines.
func (p *parser) unescapeInto(s string) error {
	for i := 0; i < len(s); {
		c := s[i]
		switch c {
		case '&':
			j := strings.IndexByte(s[i:], ';')
			if j < 0 || j > 32 {
				return fmt.Errorf("xmltree: invalid character entity")
			}
			ent := s[i+1 : i+j]
			i += j + 1
			switch ent {
			case "lt":
				p.buf = append(p.buf, '<')
			case "gt":
				p.buf = append(p.buf, '>')
			case "amp":
				p.buf = append(p.buf, '&')
			case "apos":
				p.buf = append(p.buf, '\'')
			case "quot":
				p.buf = append(p.buf, '"')
			default:
				r, ok := parseCharRef(ent)
				if !ok {
					return fmt.Errorf("xmltree: invalid character entity &%s;", ent)
				}
				p.buf = utf8.AppendRune(p.buf, r)
			}
		case '\r':
			if i+1 < len(s) && s[i+1] == '\n' {
				i++
				continue
			}
			p.buf = append(p.buf, '\n')
			i++
		default:
			p.buf = append(p.buf, c)
			i++
		}
	}
	return nil
}

// parseCharRef parses the body of a numeric character reference
// ("#38" or "#x26").
func parseCharRef(ent string) (rune, bool) {
	if len(ent) < 2 || ent[0] != '#' {
		return 0, false
	}
	base := 10
	digits := ent[1:]
	if digits[0] == 'x' || digits[0] == 'X' {
		base = 16
		digits = digits[1:]
		if digits == "" {
			return 0, false
		}
	}
	var n int64
	for i := 0; i < len(digits); i++ {
		var d int64
		c := digits[i]
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		n = n*int64(base) + d
		if n > utf8.MaxRune {
			return 0, false
		}
	}
	if !IsChar(rune(n)) {
		return 0, false
	}
	return rune(n), true
}

// lookup resolves a namespace prefix against the in-scope bindings.
func (p *parser) lookup(prefix string) (string, bool) {
	for i := len(p.ns) - 1; i >= 0; i-- {
		if p.ns[i].prefix == prefix {
			return p.ns[i].uri, true
		}
	}
	return "", false
}

// resolveElem maps a raw element name to its xml.Name: the default
// namespace applies to unprefixed elements, the "xml" prefix is reserved,
// and (matching encoding/xml) an unbound prefix is left in Space as-is.
func (p *parser) resolveElem(raw string) xml.Name {
	i := strings.IndexByte(raw, ':')
	if i < 0 {
		uri, _ := p.lookup("")
		return xml.Name{Space: uri, Local: raw}
	}
	prefix, local := raw[:i], raw[i+1:]
	if prefix == "xml" {
		return xml.Name{Space: xmlNamespace, Local: local}
	}
	if uri, ok := p.lookup(prefix); ok {
		return xml.Name{Space: uri, Local: local}
	}
	return xml.Name{Space: prefix, Local: local}
}

// resolveAttr maps a raw attribute name to its xml.Name. Unprefixed
// attributes take no namespace (the default binding does not apply);
// xmlns declarations keep encoding/xml's representation.
func (p *parser) resolveAttr(raw string) xml.Name {
	if raw == "xmlns" {
		return xml.Name{Space: "", Local: "xmlns"}
	}
	if strings.HasPrefix(raw, "xmlns:") {
		return xml.Name{Space: "xmlns", Local: raw[len("xmlns:"):]}
	}
	i := strings.IndexByte(raw, ':')
	if i < 0 {
		return xml.Name{Local: raw}
	}
	prefix, local := raw[:i], raw[i+1:]
	if prefix == "xml" {
		return xml.Name{Space: xmlNamespace, Local: local}
	}
	if uri, ok := p.lookup(prefix); ok {
		return xml.Name{Space: uri, Local: local}
	}
	return xml.Name{Space: prefix, Local: local}
}

// IsChar reports whether r is representable in XML 1.0 character data:
// control characters below 0x20 (except tab, LF, CR) and the
// non-characters cannot appear even escaped.
func IsChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}
