package jini

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func lampSpec() InterfaceSpec {
	return InterfaceSpec{
		Name: "Lamp",
		Methods: []MethodSpec{
			{Name: "On"},
			{Name: "Off"},
			{Name: "SetLevel", Params: []string{"int"}},
			{Name: "Level", Return: "int"},
		},
	}
}

// lamp is a tiny thread-safe test service.
type lamp struct {
	mu    sync.Mutex
	level int64
}

func (l *lamp) Call(method string, args []any) (any, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch method {
	case "On":
		l.level = 100
		return nil, nil
	case "Off":
		l.level = 0
		return nil, nil
	case "SetLevel":
		n, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("%w: SetLevel wants int", ErrBadArgs)
		}
		l.level = n
		return nil, nil
	case "Level":
		return l.level, nil
	default:
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, method)
	}
}

func startLookup(t *testing.T) *LookupService {
	t.Helper()
	ls := NewLookupService()
	if err := ls.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("lookup start: %v", err)
	}
	t.Cleanup(ls.Close)
	return ls
}

func startExporter(t *testing.T) *Exporter {
	t.Helper()
	ex := NewExporter()
	if err := ex.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("exporter start: %v", err)
	}
	t.Cleanup(ex.Close)
	return ex
}

func TestServiceIDRoundTrip(t *testing.T) {
	id := NewServiceID()
	if id.IsZero() {
		t.Fatal("NewServiceID returned zero")
	}
	parsed, err := ParseServiceID(id.String())
	if err != nil || parsed != id {
		t.Errorf("ParseServiceID(%s) = %v, %v", id, parsed, err)
	}
	if _, err := ParseServiceID("xyz"); err == nil {
		t.Error("bad ID parsed")
	}
	if _, err := ParseServiceID("abcd"); err == nil {
		t.Error("short ID parsed")
	}
}

func TestTemplateMatching(t *testing.T) {
	id := NewServiceID()
	item := ServiceItem{
		ID:    id,
		Proxy: ProxyDescriptor{Iface: lampSpec()},
		Attrs: []Entry{{Name: "room", Value: "living"}, {Name: "make", Value: "acme"}},
	}
	tests := []struct {
		name string
		tmpl ServiceTemplate
		want bool
	}{
		{"empty matches", ServiceTemplate{}, true},
		{"by id", ServiceTemplate{ID: id}, true},
		{"wrong id", ServiceTemplate{ID: NewServiceID()}, false},
		{"by iface", ServiceTemplate{IfaceName: "Lamp"}, true},
		{"wrong iface", ServiceTemplate{IfaceName: "VCR"}, false},
		{"by attr", ServiceTemplate{Attrs: []Entry{{Name: "room", Value: "living"}}}, true},
		{"two attrs", ServiceTemplate{Attrs: []Entry{{Name: "room", Value: "living"}, {Name: "make", Value: "acme"}}}, true},
		{"wrong attr value", ServiceTemplate{Attrs: []Entry{{Name: "room", Value: "kitchen"}}}, false},
		{"missing attr", ServiceTemplate{Attrs: []Entry{{Name: "color", Value: "red"}}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tmpl.Matches(item); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDiscoverRegisterLookupInvoke(t *testing.T) {
	ls := startLookup(t)
	ex := startExporter(t)
	ctx := context.Background()

	// Export the service object.
	proxy := ex.Export(lampSpec(), &lamp{})

	// Unicast discovery.
	reg, err := Discover(ctx, ls.Addr())
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}

	// Register with attributes.
	lease, err := reg.Register(ctx, ServiceItem{
		Proxy: proxy,
		Attrs: []Entry{{Name: "room", Value: "living"}},
	}, 30*time.Second)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if lease.ServiceID.IsZero() {
		t.Fatal("registrar did not assign a ServiceID")
	}

	// Lookup by interface.
	items, err := reg.Lookup(ctx, ServiceTemplate{IfaceName: "Lamp"})
	if err != nil || len(items) != 1 {
		t.Fatalf("Lookup = %v, %v", items, err)
	}

	// Invoke through the downloaded proxy.
	if _, err := Call(ctx, items[0].Proxy, "SetLevel", []any{int64(42)}); err != nil {
		t.Fatalf("SetLevel: %v", err)
	}
	got, err := Call(ctx, items[0].Proxy, "Level", nil)
	if err != nil {
		t.Fatalf("Level: %v", err)
	}
	if got.(int64) != 42 {
		t.Errorf("Level = %v, want 42", got)
	}
}

func TestDiscoverNonLookupEndpoint(t *testing.T) {
	ex := startExporter(t)
	_, err := Discover(context.Background(), ex.Addr())
	if !errors.Is(err, ErrNotLookupService) {
		t.Errorf("Discover(exporter) = %v, want ErrNotLookupService", err)
	}
}

func TestInvokeErrors(t *testing.T) {
	ex := startExporter(t)
	ctx := context.Background()
	proxy := ex.Export(lampSpec(), &lamp{})

	if _, err := Call(ctx, proxy, "Explode", nil); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("unknown method: %v", err)
	}
	if _, err := Call(ctx, proxy, "SetLevel", nil); !errors.Is(err, ErrBadArgs) {
		t.Errorf("arity error: %v", err)
	}
	bogus := proxy
	bogus.ObjectID = 9999
	if _, err := Call(ctx, bogus, "On", nil); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("unknown object: %v", err)
	}
	ex.Unexport(proxy.ObjectID)
	if _, err := Call(ctx, proxy, "On", nil); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("unexported object: %v", err)
	}
	if ex.Len() != 0 {
		t.Errorf("Len = %d after unexport", ex.Len())
	}
}

func TestLeaseExpiryAndRenewal(t *testing.T) {
	ls := startLookup(t)
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	ls.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ctx := context.Background()
	reg, err := Discover(ctx, ls.Addr())
	if err != nil {
		t.Fatal(err)
	}
	lease, err := reg.Register(ctx, ServiceItem{Proxy: ProxyDescriptor{Iface: lampSpec()}}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Duration != 10*time.Second {
		t.Errorf("granted %v, want 10s", lease.Duration)
	}

	advance(8 * time.Second)
	if err := lease.Renew(ctx, 10*time.Second); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	advance(8 * time.Second)
	items, _ := reg.Lookup(ctx, ServiceTemplate{})
	if len(items) != 1 {
		t.Fatal("renewed registration expired")
	}
	advance(11 * time.Second)
	items, _ = reg.Lookup(ctx, ServiceTemplate{})
	if len(items) != 0 {
		t.Fatal("registration survived expiry")
	}
	if err := lease.Renew(ctx, time.Second); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("renew after expiry: %v", err)
	}
	if err := lease.Cancel(ctx); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("cancel after expiry: %v", err)
	}
}

func TestLeaseClamping(t *testing.T) {
	if got := clampLease(0); got != DefaultLease {
		t.Errorf("clampLease(0) = %v", got)
	}
	if got := clampLease((10 * time.Hour).Milliseconds()); got != MaxLease {
		t.Errorf("clampLease(10h) = %v", got)
	}
	if got := clampLease((3 * time.Second).Milliseconds()); got != 3*time.Second {
		t.Errorf("clampLease(3s) = %v", got)
	}
}

func TestCancelRemovesRegistration(t *testing.T) {
	ls := startLookup(t)
	ctx := context.Background()
	reg, _ := Discover(ctx, ls.Addr())
	lease, err := reg.Register(ctx, ServiceItem{Proxy: ProxyDescriptor{Iface: lampSpec()}}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Cancel(ctx); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	items, _ := reg.Lookup(ctx, ServiceTemplate{})
	if len(items) != 0 {
		t.Error("registration survived cancel")
	}
}

func TestReregisterSameServiceID(t *testing.T) {
	ls := startLookup(t)
	ctx := context.Background()
	reg, _ := Discover(ctx, ls.Addr())
	id := NewServiceID()
	if _, err := reg.Register(ctx, ServiceItem{ID: id, Proxy: ProxyDescriptor{Iface: lampSpec()}}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(ctx, ServiceItem{ID: id, Proxy: ProxyDescriptor{Iface: lampSpec()}}, time.Minute); err != nil {
		t.Fatal(err)
	}
	items, _ := reg.Lookup(ctx, ServiceTemplate{ID: id})
	if len(items) != 1 {
		t.Errorf("duplicate registrations for one ServiceID: %d", len(items))
	}
	if ls.Len() != 1 {
		t.Errorf("Len = %d, want 1", ls.Len())
	}
}

func TestTransitionEvents(t *testing.T) {
	ls := startLookup(t)
	ex := startExporter(t)
	ctx := context.Background()

	var events []RemoteEvent
	var mu sync.Mutex
	done := make(chan struct{}, 8)
	listener := ExportListener(ex, func(ev RemoteEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
		done <- struct{}{}
	})

	reg, _ := Discover(ctx, ls.Addr())
	if _, err := reg.Notify(ctx, ServiceTemplate{IfaceName: "Lamp"}, listener, 77, time.Minute); err != nil {
		t.Fatalf("Notify: %v", err)
	}

	lease, err := reg.Register(ctx, ServiceItem{Proxy: ProxyDescriptor{Iface: lampSpec()}}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitEvent(t, done) // match event

	if err := lease.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, done) // no-match event

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	if events[0].Transition != TransitionMatch || events[1].Transition != TransitionNoMatch {
		t.Errorf("transitions = %+v", events)
	}
	if events[0].EventID != 77 {
		t.Errorf("eventID = %d, want 77", events[0].EventID)
	}
	if events[1].Seq <= events[0].Seq {
		t.Errorf("sequence numbers not increasing: %d then %d", events[0].Seq, events[1].Seq)
	}
	if events[0].SourceID != lease.ServiceID {
		t.Errorf("source = %v, want %v", events[0].SourceID, lease.ServiceID)
	}
}

func waitEvent(t *testing.T, done chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
	}
}

func TestAutoRenewKeepsAlive(t *testing.T) {
	ls := startLookup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg, _ := Discover(ctx, ls.Addr())
	lease, err := reg.Register(ctx, ServiceItem{Proxy: ProxyDescriptor{Iface: lampSpec()}}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wait := lease.AutoRenew(ctx, 50*time.Millisecond)
	time.Sleep(600 * time.Millisecond)
	items, _ := reg.Lookup(ctx, ServiceTemplate{})
	if len(items) != 1 {
		t.Error("auto-renewed registration expired")
	}
	cancel()
	if err := wait(); err != nil {
		t.Errorf("AutoRenew terminal error: %v", err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	ex := startExporter(t)
	proxy := ex.Export(lampSpec(), &lamp{})
	ctx := context.Background()
	var failures atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := Call(ctx, proxy, "SetLevel", []any{n}); err != nil {
					failures.Add(1)
					return
				}
				if _, err := Call(ctx, proxy, "Level", nil); err != nil {
					failures.Add(1)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d goroutines saw failures", failures.Load())
	}
}

func TestCallValueKindsRoundTrip(t *testing.T) {
	ex := startExporter(t)
	echoSpec := InterfaceSpec{Name: "Echo", Methods: []MethodSpec{{Name: "Echo", Params: []string{"string"}, Return: "string"}}}
	proxy := ex.Export(echoSpec, InvocableFunc(func(_ string, args []any) (any, error) {
		return args[0], nil
	}))
	ctx := context.Background()
	for _, v := range []any{"str", int64(-9), 3.5, true, []byte{1, 2, 3}} {
		got, err := Call(ctx, proxy, "Echo", []any{v})
		if err != nil {
			t.Fatalf("Echo(%v): %v", v, err)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", v) {
			t.Errorf("Echo(%v) = %v", v, got)
		}
	}
}

func TestCallAfterExporterClose(t *testing.T) {
	ex := NewExporter()
	if err := ex.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	proxy := ex.Export(lampSpec(), &lamp{})
	ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := Call(ctx, proxy, "On", nil); err == nil {
		t.Error("call to closed exporter succeeded")
	}
}

func TestQuickTemplateIDMatch(t *testing.T) {
	// Property: a template with a specific ID matches exactly the items
	// carrying that ID.
	fn := func(a, b [16]byte) bool {
		ia := ServiceItem{ID: ServiceID(a)}
		tmplA := ServiceTemplate{ID: ServiceID(a)}
		if !tmplA.Matches(ia) && !ServiceID(a).IsZero() {
			return false
		}
		if a != b && !ServiceID(a).IsZero() && !ServiceID(b).IsZero() {
			if tmplA.Matches(ServiceItem{ID: ServiceID(b)}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
