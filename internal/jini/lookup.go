package jini

import (
	"context"
	"sync"
	"time"
)

// LookupService is the registrar: it stores service registrations under
// leases, answers template lookups, and pushes transition events to
// registered listeners — the simulation of Jini's reggie.
type LookupService struct {
	now func() time.Time

	srv     tcpServer
	eventWG sync.WaitGroup

	mu        sync.Mutex
	nextLease uint64
	services  map[uint64]*registration // lease ID → registration
	watches   map[uint64]*watch        // lease ID → event registration
	eventSeq  uint64

	// notifier delivers events to listeners; tests can stub it.
	notifier func(listener ProxyDescriptor, ev RemoteEvent)
}

type registration struct {
	item    ServiceItem
	expires time.Time
}

type watch struct {
	template ServiceTemplate
	listener ProxyDescriptor
	eventID  int64
	expires  time.Time
}

// NewLookupService returns an unstarted registrar.
func NewLookupService() *LookupService {
	l := &LookupService{
		now:      time.Now,
		services: make(map[uint64]*registration),
		watches:  make(map[uint64]*watch),
	}
	l.notifier = l.deliverEvent
	return l
}

// SetClock overrides the time source (tests only).
func (l *LookupService) SetClock(now func() time.Time) { l.now = now }

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (l *LookupService) Start(addr string) error {
	return l.srv.start(addr, l.handle)
}

// Addr returns the listening address.
func (l *LookupService) Addr() string { return l.srv.addrString() }

// Close stops the registrar, severs connections, and waits for in-flight
// requests and event deliveries.
func (l *LookupService) Close() {
	l.srv.close()
	l.eventWG.Wait()
}

// Len reports the number of live registrations.
func (l *LookupService) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked()
	return len(l.services)
}

// clampLease applies Jini's lease discipline.
func clampLease(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = DefaultLease
	}
	if d > MaxLease {
		d = MaxLease
	}
	return d
}

// handle dispatches one wire request.
func (l *LookupService) handle(req request) response {
	switch req.Op {
	case opDiscover:
		return response{IsLookup: true}
	case opRegister:
		return l.register(req)
	case opLookup:
		return l.lookup(req)
	case opRenew:
		return l.renew(req)
	case opCancel:
		return l.cancel(req)
	case opNotify:
		return l.notify(req)
	default:
		return response{ErrCode: codeRemote, ErrMsg: "lookup service: unsupported operation"}
	}
}

func (l *LookupService) register(req request) response {
	item := req.Item
	if item.ID.IsZero() {
		item.ID = NewServiceID()
	}
	lease := clampLease(req.LeaseMS)

	l.mu.Lock()
	l.expireLocked()
	// Re-registration with the same ServiceID replaces the old
	// registration (Jini semantics), preserving no old lease.
	for id, reg := range l.services {
		if reg.item.ID == item.ID {
			delete(l.services, id)
		}
	}
	l.nextLease++
	leaseID := l.nextLease
	expiry := l.now().Add(lease)
	l.services[leaseID] = &registration{item: item, expires: expiry}
	events := l.transitionsLocked(item, TransitionMatch)
	l.mu.Unlock()

	l.fire(events)
	return response{LeaseID: leaseID, ExpiryMS: lease.Milliseconds(), AssignedID: item.ID}
}

func (l *LookupService) lookup(req request) response {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked()
	var items []ServiceItem
	for _, reg := range l.services {
		if req.Template.Matches(reg.item) {
			items = append(items, reg.item)
		}
	}
	return response{Items: items}
}

func (l *LookupService) renew(req request) response {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked()
	lease := clampLease(req.LeaseMS)
	if reg, ok := l.services[req.LeaseID]; ok {
		reg.expires = l.now().Add(lease)
		return response{LeaseID: req.LeaseID, ExpiryMS: lease.Milliseconds()}
	}
	if w, ok := l.watches[req.LeaseID]; ok {
		w.expires = l.now().Add(lease)
		return response{LeaseID: req.LeaseID, ExpiryMS: lease.Milliseconds()}
	}
	return response{ErrCode: codeLease, ErrMsg: "renew: unknown lease"}
}

func (l *LookupService) cancel(req request) response {
	l.mu.Lock()
	var events []pendingEvent
	if reg, ok := l.services[req.LeaseID]; ok {
		delete(l.services, req.LeaseID)
		events = l.transitionsLocked(reg.item, TransitionNoMatch)
		l.mu.Unlock()
		l.fire(events)
		return response{}
	}
	if _, ok := l.watches[req.LeaseID]; ok {
		delete(l.watches, req.LeaseID)
		l.mu.Unlock()
		return response{}
	}
	l.mu.Unlock()
	return response{ErrCode: codeLease, ErrMsg: "cancel: unknown lease"}
}

func (l *LookupService) notify(req request) response {
	lease := clampLease(req.LeaseMS)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextLease++
	leaseID := l.nextLease
	l.watches[leaseID] = &watch{
		template: req.Template,
		listener: req.Listener,
		eventID:  req.EventID,
		expires:  l.now().Add(lease),
	}
	return response{LeaseID: leaseID, ExpiryMS: lease.Milliseconds()}
}

// pendingEvent pairs a listener with the event to deliver after the lock
// is released.
type pendingEvent struct {
	listener ProxyDescriptor
	event    RemoteEvent
}

// transitionsLocked collects events for watches matching item. Caller
// holds l.mu.
func (l *LookupService) transitionsLocked(item ServiceItem, transition int64) []pendingEvent {
	var out []pendingEvent
	now := l.now()
	for id, w := range l.watches {
		if now.After(w.expires) {
			delete(l.watches, id)
			continue
		}
		if w.template.Matches(item) {
			l.eventSeq++
			out = append(out, pendingEvent{
				listener: w.listener,
				event: RemoteEvent{
					SourceID:   item.ID,
					EventID:    w.eventID,
					Seq:        l.eventSeq,
					Transition: transition,
				},
			})
		}
	}
	return out
}

// fire delivers events asynchronously; listener failures are ignored, as
// in Jini (the lease will eventually lapse).
func (l *LookupService) fire(events []pendingEvent) {
	for _, ev := range events {
		l.eventWG.Add(1)
		go func(pe pendingEvent) {
			defer l.eventWG.Done()
			l.notifier(pe.listener, pe.event)
		}(ev)
	}
}

// deliverEvent invokes the listener proxy's Notify method with the event
// flattened to wire-safe scalars.
func (l *LookupService) deliverEvent(listener ProxyDescriptor, ev RemoteEvent) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = Call(ctx, listener, "Notify", []any{
		ev.SourceID.String(), ev.EventID, int64(ev.Seq), ev.Transition, ev.Payload,
	})
}

// expireLocked drops expired registrations and watches. Caller holds l.mu.
func (l *LookupService) expireLocked() {
	now := l.now()
	for id, reg := range l.services {
		if now.After(reg.expires) {
			delete(l.services, id)
		}
	}
	for id, w := range l.watches {
		if now.After(w.expires) {
			delete(l.watches, id)
		}
	}
}
