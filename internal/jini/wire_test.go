package jini

import (
	"errors"
	"fmt"
	"testing"
)

// TestErrorCodeRoundTrip: every typed error survives the wire encoding
// (codeFromErr → errFromCode) with its identity intact, so errors.Is
// works across the RMI-sim boundary.
func TestErrorCodeRoundTrip(t *testing.T) {
	typed := []error{ErrNoSuchObject, ErrNoSuchMethod, ErrLeaseExpired, ErrBadArgs}
	for _, want := range typed {
		wrapped := fmt.Errorf("context: %w", want)
		code, msg := codeFromErr(wrapped)
		back := errFromCode(code, msg)
		if !errors.Is(back, want) {
			t.Errorf("%v: round trip lost identity (code %s → %v)", want, code, back)
		}
	}
	// Arbitrary errors become remote exceptions.
	code, msg := codeFromErr(errors.New("disk on fire"))
	back := errFromCode(code, msg)
	if !errors.Is(back, ErrRemote) {
		t.Errorf("generic error: %v", back)
	}
	// nil stays nil.
	if code, _ := codeFromErr(nil); code != "" {
		t.Errorf("nil error encoded as %q", code)
	}
	if errFromCode("", "") != nil {
		t.Error("empty code decoded as error")
	}
}

// TestInterfaceSpecMethodLookup exercises the spec accessor.
func TestInterfaceSpecMethodLookup(t *testing.T) {
	spec := InterfaceSpec{Name: "X", Methods: []MethodSpec{{Name: "A"}, {Name: "B", Params: []string{"int"}}}}
	m, ok := spec.Method("B")
	if !ok || len(m.Params) != 1 {
		t.Errorf("Method(B) = %+v, %v", m, ok)
	}
	if _, ok := spec.Method("C"); ok {
		t.Error("found missing method")
	}
}
