package jini

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The wire protocol is one gob stream per connection carrying request/
// response pairs in lock step — the simulation's JRMP. Connections are
// pooled and reused sequentially.

// opcode discriminates request kinds.
type opcode int

const (
	opDiscover opcode = iota + 1
	opRegister
	opLookup
	opRenew
	opCancel
	opNotify
	opInvoke
)

// request is the single wire request shape; the opcode selects which
// fields are meaningful.
type request struct {
	Op opcode

	// opRegister
	Item    ServiceItem
	LeaseMS int64

	// opLookup / opNotify
	Template ServiceTemplate

	// opRenew / opCancel
	LeaseID uint64

	// opNotify
	Listener ProxyDescriptor
	EventID  int64

	// opInvoke
	ObjectID uint64
	Method   string
	Args     []any
}

// response is the single wire response shape.
type response struct {
	// ErrCode is "" on success; otherwise one of the wire error codes
	// below, with ErrMsg carrying detail.
	ErrCode string
	ErrMsg  string

	// opDiscover
	IsLookup bool
	// opRegister / opRenew
	LeaseID  uint64
	ExpiryMS int64
	// opRegister
	AssignedID ServiceID
	// opLookup
	Items []ServiceItem
	// opInvoke
	Value any
}

// Wire error codes.
const (
	codeNoSuchObject = "NoSuchObject"
	codeNoSuchMethod = "NoSuchMethod"
	codeLease        = "LeaseExpired"
	codeBadArgs      = "BadArgs"
	codeRemote       = "Remote"
)

// errFromCode rebuilds a typed error from its wire code.
func errFromCode(code, msg string) error {
	switch code {
	case "":
		return nil
	case codeNoSuchObject:
		return fmt.Errorf("%w: %s", ErrNoSuchObject, msg)
	case codeNoSuchMethod:
		return fmt.Errorf("%w: %s", ErrNoSuchMethod, msg)
	case codeLease:
		return fmt.Errorf("%w: %s", ErrLeaseExpired, msg)
	case codeBadArgs:
		return fmt.Errorf("%w: %s", ErrBadArgs, msg)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}

// codeFromErr classifies an error for the wire.
func codeFromErr(err error) (string, string) {
	if err == nil {
		return "", ""
	}
	for _, pair := range []struct {
		target error
		code   string
	}{
		{ErrNoSuchObject, codeNoSuchObject},
		{ErrNoSuchMethod, codeNoSuchMethod},
		{ErrLeaseExpired, codeLease},
		{ErrBadArgs, codeBadArgs},
	} {
		if errors.Is(err, pair.target) {
			return pair.code, err.Error()
		}
	}
	return codeRemote, err.Error()
}

// registerGobTypes installs the concrete types that may travel inside
// `any` fields. gob requires explicit registration for interface values.
var registerGobTypes = sync.OnceFunc(func() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register([]byte(nil))
})

// conn is one pooled connection with its sticky gob codec state.
type conn struct {
	nc  net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// transport maintains per-address connection pools.
type transport struct {
	mu    sync.Mutex
	idle  map[string][]*conn
	limit int
}

func newTransport() *transport {
	registerGobTypes()
	return &transport{idle: make(map[string][]*conn), limit: 4}
}

// defaultTransport is shared by package-level Call and Registrar clients
// so every proxy in a process reuses connections, as an RMI runtime would.
var defaultTransport = newTransport()

func (t *transport) get(ctx context.Context, addr string) (*conn, error) {
	t.mu.Lock()
	if pool := t.idle[addr]; len(pool) > 0 {
		c := pool[len(pool)-1]
		t.idle[addr] = pool[:len(pool)-1]
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("jini: dial %s: %w", addr, err)
	}
	return &conn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}, nil
}

func (t *transport) put(addr string, c *conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.idle[addr]) >= t.limit {
		_ = c.nc.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], c)
}

// roundTrip sends req and receives the response, honouring ctx deadlines.
// On any transport error the connection is discarded.
func (t *transport) roundTrip(ctx context.Context, addr string, req request) (response, error) {
	c, err := t.get(ctx, addr)
	if err != nil {
		return response{}, err
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(30 * time.Second)
	}
	_ = c.nc.SetDeadline(deadline)
	if err := c.enc.Encode(req); err != nil {
		_ = c.nc.Close()
		return response{}, fmt.Errorf("jini: send to %s: %w", addr, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		_ = c.nc.Close()
		return response{}, fmt.Errorf("jini: receive from %s: %w", addr, err)
	}
	_ = c.nc.SetDeadline(time.Time{})
	t.put(addr, c)
	return resp, nil
}

// tcpServer is the shared server plumbing for the lookup service and the
// exporter: it accepts connections, runs the lock-step gob protocol on
// each, and tracks live connections so Close can tear them down instead
// of waiting for idle peers to hang up.
type tcpServer struct {
	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// start listens on addr and serves handle on every connection.
func (s *tcpServer) start(addr string, handle func(request) response) error {
	registerGobTypes()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = nc.Close()
				return
			}
			s.conns[nc] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(nc, handle)
			}()
		}
	}()
	return nil
}

// serveConn runs the lock-step protocol until the peer disconnects or the
// server closes.
func (s *tcpServer) serveConn(nc net.Conn, handle func(request) response) {
	dec := gob.NewDecoder(nc)
	enc := gob.NewEncoder(nc)
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		_ = nc.Close()
	}()
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// addrString returns the listening address, or "".
func (s *tcpServer) addrString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// close stops the listener, severs live connections, and waits for every
// server goroutine to exit. Safe to call twice.
func (s *tcpServer) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		_ = nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}
