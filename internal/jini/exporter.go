package jini

import (
	"fmt"
	"sync"
)

// Exporter hosts remote objects, the simulation of RMI export: each
// exported object gets an ObjectID and is reachable at the exporter's TCP
// endpoint through a ProxyDescriptor.
type Exporter struct {
	srv tcpServer

	mu      sync.Mutex
	nextObj uint64
	objects map[uint64]exported
}

type exported struct {
	iface InterfaceSpec
	impl  Invocable
}

// NewExporter returns an unstarted exporter.
func NewExporter() *Exporter {
	return &Exporter{objects: make(map[uint64]exported)}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (e *Exporter) Start(addr string) error {
	return e.srv.start(addr, e.handle)
}

// Addr returns the listening address.
func (e *Exporter) Addr() string { return e.srv.addrString() }

// Close stops the exporter, severs connections, and waits for in-flight
// invocations.
func (e *Exporter) Close() { e.srv.close() }

// Export publishes impl under the given interface and returns the proxy
// clients use to reach it. The exporter must be started first.
func (e *Exporter) Export(iface InterfaceSpec, impl Invocable) ProxyDescriptor {
	e.mu.Lock()
	e.nextObj++
	id := e.nextObj
	e.objects[id] = exported{iface: iface, impl: impl}
	e.mu.Unlock()
	return ProxyDescriptor{Addr: e.srv.addrString(), ObjectID: id, Iface: iface}
}

// Unexport withdraws an object; subsequent calls fail with
// ErrNoSuchObject.
func (e *Exporter) Unexport(objectID uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.objects, objectID)
}

// Len reports the number of exported objects.
func (e *Exporter) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.objects)
}

// handle dispatches one wire request.
func (e *Exporter) handle(req request) response {
	if req.Op == opDiscover {
		return response{IsLookup: false}
	}
	if req.Op != opInvoke {
		return response{ErrCode: codeRemote, ErrMsg: "exporter: unsupported operation"}
	}
	e.mu.Lock()
	obj, ok := e.objects[req.ObjectID]
	e.mu.Unlock()
	if !ok {
		return response{ErrCode: codeNoSuchObject, ErrMsg: fmt.Sprintf("object %d", req.ObjectID)}
	}
	// Validate against the interface spec before dispatch, as the RMI
	// skeleton's signature check would.
	spec, ok := obj.iface.Method(req.Method)
	if !ok {
		return response{ErrCode: codeNoSuchMethod, ErrMsg: req.Method}
	}
	if len(req.Args) != len(spec.Params) {
		return response{
			ErrCode: codeBadArgs,
			ErrMsg:  fmt.Sprintf("%s: got %d args, want %d", req.Method, len(req.Args), len(spec.Params)),
		}
	}
	value, err := obj.impl.Call(req.Method, req.Args)
	if err != nil {
		code, msg := codeFromErr(err)
		return response{ErrCode: code, ErrMsg: msg}
	}
	return response{Value: value}
}
