// Package jini simulates the Jini middleware the paper bridges — the
// first middleware of its prototype (§4.1) — as a lookup service with
// leases, unicast discovery, attribute (Entry) matching, RMI-style remote
// invocation, and distributed events with sequence numbers.
//
// Real Jini rides on Java RMI: proxies are serialized objects that, once
// downloaded from the lookup service, call back to their exporter. This
// simulation preserves that architecture — services export invocable
// objects through an Exporter, register ProxyDescriptors with the
// LookupService under a lease, and clients discover the registrar,
// download proxies, and invoke them over a gob-encoded TCP protocol (the
// stand-in for RMI's JRMP). What is deliberately absent is the JVM:
// dynamic code download is replaced by interface metadata
// (InterfaceSpec), which is exactly the information the paper's Protocol
// Conversion Manager consumes to generate its proxies.
package jini

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// Errors returned by the Jini simulation.
var (
	// ErrNoSuchObject reports an invocation on an object the exporter does
	// not host (RMI's NoSuchObjectException).
	ErrNoSuchObject = errors.New("jini: no such object")
	// ErrNoSuchMethod reports an invocation of an undefined method.
	ErrNoSuchMethod = errors.New("jini: no such method")
	// ErrLeaseExpired reports a renewal or cancel of an unknown or expired
	// lease (Jini's UnknownLeaseException).
	ErrLeaseExpired = errors.New("jini: unknown or expired lease")
	// ErrNotLookupService reports unicast discovery against an endpoint
	// that is not a lookup service.
	ErrNotLookupService = errors.New("jini: endpoint is not a lookup service")
	// ErrBadArgs reports an argument arity/type error raised by a remote
	// object.
	ErrBadArgs = errors.New("jini: bad arguments")
	// ErrRemote wraps failures raised by the remote implementation.
	ErrRemote = errors.New("jini: remote exception")
)

// ServiceID is the 128-bit service identity assigned by the registrar, as
// in Jini's net.jini.core.lookup.ServiceID.
type ServiceID [16]byte

// NewServiceID returns a random service ID.
func NewServiceID() ServiceID {
	var id ServiceID
	if _, err := rand.Read(id[:]); err != nil {
		// Extremely unlikely; derive from the clock instead of failing.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			id[i] = byte(now >> (8 * i))
		}
	}
	return id
}

// String renders the ID as 32 hex digits.
func (id ServiceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is unset.
func (id ServiceID) IsZero() bool { return id == ServiceID{} }

// ParseServiceID parses the hex form produced by String.
func ParseServiceID(s string) (ServiceID, error) {
	var id ServiceID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(id) {
		return id, fmt.Errorf("jini: bad service ID %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// Entry is a lookup attribute, the simulation of net.jini.core.entry.Entry
// templates: a name/value pair matched exactly.
type Entry struct {
	Name  string
	Value string
}

// MethodSpec describes one remotely callable method. Param and return
// types use the service-model kind names ("string", "int", "float",
// "bool", "bytes"); Return is empty for void methods.
type MethodSpec struct {
	Name   string
	Params []string
	Return string
}

// InterfaceSpec is the remote interface metadata a proxy carries — the
// stand-in for the Java interface class a real Jini proxy implements.
type InterfaceSpec struct {
	Name    string
	Methods []MethodSpec
}

// Method returns the named method spec.
func (s InterfaceSpec) Method(name string) (MethodSpec, bool) {
	for _, m := range s.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSpec{}, false
}

// ProxyDescriptor is the downloadable proxy: where the exported object
// lives and what interface it implements.
type ProxyDescriptor struct {
	// Addr is the exporter endpoint (host:port).
	Addr string
	// ObjectID identifies the object within the exporter.
	ObjectID uint64
	// Iface is the remote interface metadata.
	Iface InterfaceSpec
}

// ServiceItem is a registered service: identity, proxy, and attributes —
// Jini's net.jini.core.lookup.ServiceItem.
type ServiceItem struct {
	ID    ServiceID
	Proxy ProxyDescriptor
	Attrs []Entry
}

// ServiceTemplate selects services during lookup. Zero fields match
// anything; Attrs must all be present with equal values (Jini entry
// matching).
type ServiceTemplate struct {
	ID        ServiceID
	IfaceName string
	Attrs     []Entry
}

// Matches reports whether the item satisfies the template.
func (t ServiceTemplate) Matches(item ServiceItem) bool {
	if !t.ID.IsZero() && t.ID != item.ID {
		return false
	}
	if t.IfaceName != "" && t.IfaceName != item.Proxy.Iface.Name {
		return false
	}
	for _, want := range t.Attrs {
		found := false
		for _, have := range item.Attrs {
			if have.Name == want.Name && have.Value == want.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Transition values reported by registrar events, mirroring Jini's
// TRANSITION_* constants.
const (
	// TransitionMatch reports a service that newly matches a template
	// (registered or attribute change).
	TransitionMatch = int64(1)
	// TransitionNoMatch reports a service that stopped matching
	// (cancelled or expired).
	TransitionNoMatch = int64(2)
)

// RemoteEvent is a Jini distributed event: identified source, event ID,
// and a strictly increasing sequence number so consumers can detect loss
// and reordering.
type RemoteEvent struct {
	SourceID ServiceID
	EventID  int64
	Seq      uint64
	// Transition is one of the Transition* constants for registrar
	// events; application events may carry any value.
	Transition int64
	// Payload is an optional application payload.
	Payload string
}

// Invocable is the server-side contract for exported objects: a dynamic
// dispatch entry point, standing in for Java reflection on RMI skeletons.
// Implementations must be safe for concurrent use.
type Invocable interface {
	Call(method string, args []any) (any, error)
}

// InvocableFunc adapts a function to Invocable.
type InvocableFunc func(method string, args []any) (any, error)

// Call implements Invocable.
func (f InvocableFunc) Call(method string, args []any) (any, error) { return f(method, args) }

var _ Invocable = (InvocableFunc)(nil)

// Lease durations, mirroring Jini's lease discipline. The registrar grants
// at most MaxLease regardless of the request.
const (
	// DefaultLease is granted when a registration requests zero.
	DefaultLease = 30 * time.Second
	// MaxLease caps every grant.
	MaxLease = 5 * time.Minute
)
