package jini

import (
	"context"
	"fmt"
)

// ListenerSpec returns the remote interface implemented by event
// listeners, the simulation of net.jini.core.event.RemoteEventListener.
// The event is flattened to wire-safe scalars.
func ListenerSpec() InterfaceSpec {
	return InterfaceSpec{
		Name: "RemoteEventListener",
		Methods: []MethodSpec{
			{Name: "Notify", Params: []string{"string", "int", "int", "int", "string"}},
		},
	}
}

// ExportListener hosts fn as a remote event listener on e and returns the
// proxy to hand to Registrar.Notify or application event sources. fn is
// called on the exporter's connection goroutines and must be safe for
// concurrent use.
func ExportListener(e *Exporter, fn func(RemoteEvent)) ProxyDescriptor {
	impl := InvocableFunc(func(method string, args []any) (any, error) {
		if method != "Notify" {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, method)
		}
		ev, err := eventFromArgs(args)
		if err != nil {
			return nil, err
		}
		fn(ev)
		return nil, nil
	})
	return e.Export(ListenerSpec(), impl)
}

// eventFromArgs rebuilds a RemoteEvent from the flattened wire arguments.
func eventFromArgs(args []any) (RemoteEvent, error) {
	if len(args) != 5 {
		return RemoteEvent{}, fmt.Errorf("%w: Notify wants 5 args, got %d", ErrBadArgs, len(args))
	}
	sidText, ok := args[0].(string)
	if !ok {
		return RemoteEvent{}, fmt.Errorf("%w: Notify arg 0 must be string", ErrBadArgs)
	}
	sid, err := ParseServiceID(sidText)
	if err != nil {
		return RemoteEvent{}, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	nums := make([]int64, 3)
	for i := 1; i <= 3; i++ {
		n, ok := args[i].(int64)
		if !ok {
			return RemoteEvent{}, fmt.Errorf("%w: Notify arg %d must be int", ErrBadArgs, i)
		}
		nums[i-1] = n
	}
	payload, ok := args[4].(string)
	if !ok {
		return RemoteEvent{}, fmt.Errorf("%w: Notify arg 4 must be string", ErrBadArgs)
	}
	return RemoteEvent{
		SourceID:   sid,
		EventID:    nums[0],
		Seq:        uint64(nums[1]),
		Transition: nums[2],
		Payload:    payload,
	}, nil
}

// NotifyListener delivers ev to a listener proxy; the inverse of
// ExportListener, used by application-level event sources (e.g. the PCM
// bridging federation events into Jini).
func NotifyListener(ctx context.Context, listener ProxyDescriptor, ev RemoteEvent) error {
	_, err := Call(ctx, listener, "Notify", []any{
		ev.SourceID.String(), ev.EventID, int64(ev.Seq), ev.Transition, ev.Payload,
	})
	return err
}
