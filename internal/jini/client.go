package jini

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Discover performs Jini unicast discovery against addr: it connects and
// verifies that the endpoint is a lookup service, returning a Registrar
// client. (Real Jini also supports multicast discovery; unicast is part
// of the specification and needs no multicast routes, so the simulation
// uses it exclusively.)
func Discover(ctx context.Context, addr string) (*Registrar, error) {
	resp, err := defaultTransport.roundTrip(ctx, addr, request{Op: opDiscover})
	if err != nil {
		return nil, err
	}
	if !resp.IsLookup {
		return nil, fmt.Errorf("%w: %s", ErrNotLookupService, addr)
	}
	return &Registrar{addr: addr}, nil
}

// Registrar is the client proxy for a lookup service.
type Registrar struct {
	addr string
}

// Addr returns the registrar endpoint.
func (r *Registrar) Addr() string { return r.addr }

// Register adds item under a lease of the requested duration (clamped by
// the registrar) and returns the granted lease. A zero item.ID asks the
// registrar to assign one; the assigned ID is returned in the lease.
func (r *Registrar) Register(ctx context.Context, item ServiceItem, lease time.Duration) (*Lease, error) {
	resp, err := defaultTransport.roundTrip(ctx, r.addr, request{
		Op:      opRegister,
		Item:    item,
		LeaseMS: lease.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	if err := errFromCode(resp.ErrCode, resp.ErrMsg); err != nil {
		return nil, err
	}
	return &Lease{
		registrar: r,
		ID:        resp.LeaseID,
		ServiceID: resp.AssignedID,
		Duration:  time.Duration(resp.ExpiryMS) * time.Millisecond,
	}, nil
}

// Lookup returns all registered services matching the template.
func (r *Registrar) Lookup(ctx context.Context, tmpl ServiceTemplate) ([]ServiceItem, error) {
	resp, err := defaultTransport.roundTrip(ctx, r.addr, request{Op: opLookup, Template: tmpl})
	if err != nil {
		return nil, err
	}
	if err := errFromCode(resp.ErrCode, resp.ErrMsg); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// Notify registers listener for transition events on services matching
// the template, under a lease. The listener proxy must implement
// Notify(sourceID string, eventID int, seq int, transition int, payload
// string).
func (r *Registrar) Notify(ctx context.Context, tmpl ServiceTemplate, listener ProxyDescriptor, eventID int64, lease time.Duration) (*Lease, error) {
	resp, err := defaultTransport.roundTrip(ctx, r.addr, request{
		Op:       opNotify,
		Template: tmpl,
		Listener: listener,
		EventID:  eventID,
		LeaseMS:  lease.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	if err := errFromCode(resp.ErrCode, resp.ErrMsg); err != nil {
		return nil, err
	}
	return &Lease{
		registrar: r,
		ID:        resp.LeaseID,
		Duration:  time.Duration(resp.ExpiryMS) * time.Millisecond,
	}, nil
}

// Lease is a granted registration lease, Jini's liveness mechanism: hold
// it, renew it, or let the registration vanish.
type Lease struct {
	registrar *Registrar
	// ID is the registrar-assigned lease identity.
	ID uint64
	// ServiceID is the identity assigned at registration (zero for event
	// leases).
	ServiceID ServiceID
	// Duration is the granted term.
	Duration time.Duration
}

// Renew extends the lease by d (clamped by the registrar).
func (l *Lease) Renew(ctx context.Context, d time.Duration) error {
	resp, err := defaultTransport.roundTrip(ctx, l.registrar.addr, request{
		Op:      opRenew,
		LeaseID: l.ID,
		LeaseMS: d.Milliseconds(),
	})
	if err != nil {
		return err
	}
	if err := errFromCode(resp.ErrCode, resp.ErrMsg); err != nil {
		return err
	}
	l.Duration = time.Duration(resp.ExpiryMS) * time.Millisecond
	return nil
}

// Cancel terminates the lease immediately.
func (l *Lease) Cancel(ctx context.Context) error {
	resp, err := defaultTransport.roundTrip(ctx, l.registrar.addr, request{Op: opCancel, LeaseID: l.ID})
	if err != nil {
		return err
	}
	return errFromCode(resp.ErrCode, resp.ErrMsg)
}

// AutoRenew renews the lease every interval until ctx is cancelled or a
// renewal fails; the returned wait function blocks until the renewal
// goroutine exits and reports its terminal error (nil after cancellation).
func (l *Lease) AutoRenew(ctx context.Context, interval time.Duration) (wait func() error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		last error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := l.Renew(ctx, l.Duration); err != nil {
					if ctx.Err() == nil {
						mu.Lock()
						last = err
						mu.Unlock()
					}
					return
				}
			}
		}
	}()
	return func() error {
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return last
	}
}

// Call invokes a method on a remote object through its proxy descriptor —
// the client half of the RMI simulation. Argument and return values are
// restricted to string, int64, float64, bool and []byte.
func Call(ctx context.Context, proxy ProxyDescriptor, method string, args []any) (any, error) {
	resp, err := defaultTransport.roundTrip(ctx, proxy.Addr, request{
		Op:       opInvoke,
		ObjectID: proxy.ObjectID,
		Method:   method,
		Args:     args,
	})
	if err != nil {
		return nil, err
	}
	if err := errFromCode(resp.ErrCode, resp.ErrMsg); err != nil {
		return nil, err
	}
	return resp.Value, nil
}
