package x10

import (
	"fmt"
	"sync"
	"time"
)

// Powerline is the shared transmission medium. Every attached receiver
// sees every frame, in transmission order — the house wiring of the
// simulation. A configurable frame duration models the ~1 s an X10 frame
// takes on real 60 Hz mains (zero by default so tests run fast).
type Powerline struct {
	// FrameDuration, if positive, is slept while "transmitting" each
	// frame, serialized across the medium like real zero-crossing signalling.
	frameDuration time.Duration

	mu        sync.Mutex
	receivers map[int]func(Frame)
	nextID    int
	// trace retains recent frames for diagnostics and tests.
	trace    []Frame
	traceCap int
}

// NewPowerline returns an idle powerline with no propagation delay.
func NewPowerline() *Powerline {
	return &Powerline{
		receivers: make(map[int]func(Frame)),
		traceCap:  256,
	}
}

// SetFrameDuration sets the simulated per-frame transmission time.
func (p *Powerline) SetFrameDuration(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frameDuration = d
}

// Attach registers a receiver callback and returns a detach function.
// Callbacks run synchronously on the transmitter's goroutine — attached
// devices must not block and must not transmit re-entrantly from the
// callback (real modules cannot either: the medium is half-duplex).
func (p *Powerline) Attach(recv func(Frame)) (detach func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	p.receivers[id] = recv
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.receivers, id)
	}
}

// Transmit broadcasts one frame to every attached receiver.
func (p *Powerline) Transmit(f Frame) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("x10: transmit: %w", err)
	}
	p.mu.Lock()
	if p.frameDuration > 0 {
		// Hold the medium for the frame time: transmissions serialize,
		// as on real mains wiring.
		time.Sleep(p.frameDuration)
	}
	p.trace = append(p.trace, f)
	if len(p.trace) > p.traceCap {
		p.trace = p.trace[len(p.trace)-p.traceCap:]
	}
	recvs := make([]func(Frame), 0, len(p.receivers))
	for _, r := range p.receivers {
		recvs = append(recvs, r)
	}
	p.mu.Unlock()
	for _, r := range recvs {
		r(f)
	}
	return nil
}

// TransmitCommand sends the canonical two-frame sequence for one command:
// the address frame, then the function frame.
func (p *Powerline) TransmitCommand(a Address, fn Function, dim byte) error {
	if err := p.Transmit(AddressFrame(a)); err != nil {
		return err
	}
	return p.Transmit(FunctionFrame(a.House, fn, dim))
}

// Trace returns a copy of the recent frame history.
func (p *Powerline) Trace() []Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Frame, len(p.trace))
	copy(out, p.trace)
	return out
}

// ClearTrace empties the frame history.
func (p *Powerline) ClearTrace() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = nil
}
