package x10

import (
	"context"
	"sync"
	"testing"
	"time"
)

// rig is a complete CM11A test bench: powerline, device, controller.
type rig struct {
	line *Powerline
	dev  *CM11A
	ctl  *Controller
}

func newRig(t *testing.T, opts ...CM11AOption) *rig {
	t.Helper()
	line := NewPowerline()
	pcPort, devPort := NewLink()
	dev := NewCM11A(line, devPort, opts...)
	ctl := NewController(pcPort)
	t.Cleanup(func() {
		ctl.Close()
		dev.Close()
	})
	return &rig{line: line, dev: dev, ctl: ctl}
}

func TestCM11ATransmitLampOn(t *testing.T) {
	r := newRig(t)
	lamp := NewLampModule(r.line, Address{'A', 1})
	defer lamp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.ctl.Send(ctx, Address{'A', 1}, On, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !lamp.On() {
		t.Error("lamp not on after CM11A transmission")
	}
	if err := r.ctl.Send(ctx, Address{'A', 1}, Off, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if lamp.On() {
		t.Error("lamp not off")
	}
}

func TestCM11ATransmitDim(t *testing.T) {
	r := newRig(t)
	lamp := NewLampModule(r.line, Address{'B', 4})
	defer lamp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.ctl.Send(ctx, Address{'B', 4}, On, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Send(ctx, Address{'B', 4}, Dim, 11); err != nil {
		t.Fatal(err)
	}
	if got := lamp.Level(); got != 50 {
		t.Errorf("level = %d, want 50", got)
	}
}

func TestCM11AReceiveRemoteKeypress(t *testing.T) {
	r := newRig(t)
	var mu sync.Mutex
	var cmds []Command
	got := make(chan struct{}, 8)
	r.ctl.OnCommand(func(c Command) {
		mu.Lock()
		cmds = append(cmds, c)
		mu.Unlock()
		got <- struct{}{}
	})

	remote := NewRemote(r.line, 'C')
	if err := remote.Press(5, On); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no command received from remote keypress")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cmds) != 1 {
		t.Fatalf("cmds = %v", cmds)
	}
	c := cmds[0]
	if c.House != 'C' || len(c.Units) != 1 || c.Units[0] != 5 || c.Func != On {
		t.Errorf("command = %+v", c)
	}
}

func TestCM11AReceiveDimWithSteps(t *testing.T) {
	r := newRig(t)
	got := make(chan Command, 8)
	r.ctl.OnCommand(func(c Command) { got <- c })

	remote := NewRemote(r.line, 'D')
	if err := remote.PressDim(2, Dim, 7); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-got:
		if c.Func != Dim || c.Dim != 7 {
			t.Errorf("command = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no dim command received")
	}
}

func TestCM11AMotionSensorFlow(t *testing.T) {
	r := newRig(t)
	got := make(chan Command, 8)
	r.ctl.OnCommand(func(c Command) { got <- c })

	sensor := NewMotionSensor(r.line, Address{'E', 9})
	if err := sensor.Trigger(); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-got:
		if c.Func != On || c.Units[0] != 9 {
			t.Errorf("motion command = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no motion command")
	}
}

func TestCM11ADeviceDoesNotEchoOwnTransmissions(t *testing.T) {
	r := newRig(t)
	got := make(chan Command, 8)
	r.ctl.OnCommand(func(c Command) { got <- c })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.ctl.Send(ctx, Address{'A', 1}, On, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-got:
		t.Errorf("own transmission echoed back: %+v", c)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestCM11APowerFailClockDownload(t *testing.T) {
	r := newRig(t, WithPowerFailPoll())
	// After the controller services the 0xA5 poll with a clock download,
	// normal transmissions must work.
	lamp := NewLampModule(r.line, Address{'F', 1})
	defer lamp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.ctl.Send(ctx, Address{'F', 1}, On, 0); err != nil {
		t.Fatalf("Send after clock poll: %v", err)
	}
	if !lamp.On() {
		t.Error("lamp not on")
	}
}

func TestCM11AInterleavedSendAndReceive(t *testing.T) {
	r := newRig(t)
	lamp := NewLampModule(r.line, Address{'A', 1})
	defer lamp.Close()
	var rx sync.WaitGroup
	rx.Add(3)
	r.ctl.OnCommand(func(Command) { rx.Done() })

	remote := NewRemote(r.line, 'A')
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := remote.Press(7, On); err != nil {
			t.Fatal(err)
		}
		if err := r.ctl.Send(ctx, Address{'A', 1}, On, 0); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	waitDone := make(chan struct{})
	go func() { rx.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("remote keypresses lost during interleaved traffic")
	}
	if !lamp.On() {
		t.Error("lamp not on")
	}
}

func TestControllerSendAfterClose(t *testing.T) {
	line := NewPowerline()
	pcPort, devPort := NewLink()
	dev := NewCM11A(line, devPort)
	ctl := NewController(pcPort)
	ctl.Close()
	dev.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := ctl.Send(ctx, Address{'A', 1}, On, 0); err == nil {
		t.Error("Send on closed controller succeeded")
	}
}

func TestSerialLinkSemantics(t *testing.T) {
	a, b := NewLink()
	msg := []byte{1, 2, 3, 4}
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := b.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	_ = a.Close()
	if _, err := b.Write([]byte{9}); err == nil {
		t.Error("write on closed link succeeded")
	}
	if _, err := b.Read(buf); err == nil {
		t.Error("read on closed drained link succeeded")
	}
}
