package x10

import (
	"io"
	"sync"
)

// CM11A protocol constants from the published programming protocol
// (reference [15] of the paper).
const (
	cmAck            = 0x00 // PC → IF: checksum correct, transmit
	cmReady          = 0x55 // IF → PC: interface ready
	cmPoll           = 0x5A // IF → PC: receive buffer pending
	cmPollAck        = 0xC3 // PC → IF: send the receive buffer
	cmClockPoll      = 0xA5 // IF → PC: power-fail, clock wanted
	cmClockSetHeader = 0x9B // PC → IF: 9-byte clock download header

	// header bit layout for PC → IF transmissions.
	hdrSync     = 0x04 // always set
	hdrFunction = 0x02 // set for function codes, clear for addresses
)

// maxReceiveBuffer is the CM11A's 8-byte receive data limit (plus the
// size and mask bytes).
const maxReceiveBuffer = 8

// CM11A simulates the CM11A computer interface: one side speaks the
// serial byte protocol, the other side transmits and receives on the
// powerline.
type CM11A struct {
	port SerialPort
	line *Powerline

	mu sync.Mutex
	// rxQueue holds powerline frames awaiting upload to the PC.
	rxQueue []Frame
	// transmitting suppresses echo of the device's own transmissions.
	transmitting bool
	detach       func()
	closed       bool
	needsClk     bool

	wg sync.WaitGroup
	// kick wakes the protocol loop when a powerline frame arrives.
	kick chan struct{}
	// pcBytes carries bytes read from the serial port.
	pcBytes chan byte
}

// CM11AOption configures the device.
type CM11AOption func(*CM11A)

// WithPowerFailPoll makes the device demand a clock download (0xA5 poll)
// before serving commands, as a real CM11A does after power loss.
func WithPowerFailPoll() CM11AOption {
	return func(c *CM11A) { c.needsClk = true }
}

// NewCM11A attaches a CM11A to the powerline, speaking the serial
// protocol on port. Close the device to release both.
func NewCM11A(line *Powerline, port SerialPort, opts ...CM11AOption) *CM11A {
	c := &CM11A{
		port:    port,
		line:    line,
		kick:    make(chan struct{}, 1),
		pcBytes: make(chan byte, 64),
	}
	for _, o := range opts {
		o(c)
	}
	c.detach = line.Attach(c.receiveFromLine)
	c.wg.Add(2)
	go c.readLoop()
	go c.run()
	return c
}

// Close shuts the device down and closes the serial port.
func (c *CM11A) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.detach()
	_ = c.port.Close()
	c.wg.Wait()
}

// receiveFromLine queues frames seen on the powerline for upload.
func (c *CM11A) receiveFromLine(f Frame) {
	c.mu.Lock()
	if c.transmitting {
		c.mu.Unlock()
		return
	}
	c.rxQueue = append(c.rxQueue, f)
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// readLoop pumps serial bytes into pcBytes.
func (c *CM11A) readLoop() {
	defer c.wg.Done()
	defer close(c.pcBytes)
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(c.port, buf); err != nil {
			return
		}
		c.pcBytes <- buf[0]
	}
}

// run is the device protocol loop. The serial protocol is command/
// response from the PC's perspective; the device initiates only the 0x5A
// receive poll and the 0xA5 clock poll, raised when idle.
func (c *CM11A) run() {
	defer c.wg.Done()
	announced := false
	for {
		if !announced {
			if c.clockWanted() {
				if _, err := c.port.Write([]byte{cmClockPoll}); err != nil {
					return
				}
				announced = true
			} else if c.pendingRx() {
				if _, err := c.port.Write([]byte{cmPoll}); err != nil {
					return
				}
				announced = true
			}
		}
		select {
		case b, ok := <-c.pcBytes:
			if !ok {
				return
			}
			announced = false
			if !c.dispatch(b) {
				return
			}
		case <-c.kick:
			// New powerline frame: fall through to announce.
		}
	}
}

// dispatch processes one leading byte from the PC; false stops the loop.
func (c *CM11A) dispatch(b byte) bool {
	switch b {
	case cmPollAck:
		return c.uploadReceiveBuffer()
	case cmClockSetHeader:
		// Consume the 8 remaining clock bytes; the simulated device has
		// no real-time clock, the download just clears the poll.
		for i := 0; i < 8; i++ {
			if _, ok := c.nextPC(); !ok {
				return false
			}
		}
		c.mu.Lock()
		c.needsClk = false
		c.mu.Unlock()
		_, err := c.port.Write([]byte{cmReady})
		return err == nil
	default:
		return c.handleTransmission(b)
	}
}

// nextPC blocks for the next PC byte.
func (c *CM11A) nextPC() (byte, bool) {
	b, ok := <-c.pcBytes
	return b, ok
}

func (c *CM11A) clockWanted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.needsClk
}

func (c *CM11A) pendingRx() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rxQueue) > 0
}

// handleTransmission runs the checksum handshake for one [header,code]
// pair and, on acknowledge, transmits the frame on the powerline.
func (c *CM11A) handleTransmission(header byte) bool {
	code, ok := c.nextPC()
	if !ok {
		return false
	}
	checksum := (header + code) & 0xFF
	if _, err := c.port.Write([]byte{checksum}); err != nil {
		return false
	}
	ack, ok := c.nextPC()
	if !ok {
		return false
	}
	if ack != cmAck {
		// Checksum rejected: the PC resends the pair; treat the byte as
		// the next header.
		return c.handleTransmission(ack)
	}
	frame, decoded := decodeWire(header, code)
	if decoded {
		c.mu.Lock()
		c.transmitting = true
		c.mu.Unlock()
		_ = c.line.Transmit(frame)
		c.mu.Lock()
		c.transmitting = false
		c.mu.Unlock()
	}
	_, err := c.port.Write([]byte{cmReady})
	return err == nil
}

// uploadReceiveBuffer sends the queued frames as a CM11A receive buffer:
// size byte, function bitmap, then one byte per frame. Dim and Bright
// functions carry an extra dim-count byte, tagged in the bitmap like the
// function byte it follows.
func (c *CM11A) uploadReceiveBuffer() bool {
	c.mu.Lock()
	var data []byte
	var mask byte
	bit := 0
	consumed := 0
	for _, f := range c.rxQueue {
		need := 1
		if f.IsFunction && (f.Function == Dim || f.Function == Bright) {
			need = 2
		}
		if len(data)+need > maxReceiveBuffer {
			break
		}
		b, ok := encodeWireCode(f)
		if !ok {
			consumed++
			continue
		}
		if f.IsFunction {
			mask |= 1 << bit
		}
		data = append(data, b)
		bit++
		if need == 2 {
			mask |= 1 << bit // dim byte tagged as function data
			data = append(data, f.Dim)
			bit++
		}
		consumed++
	}
	c.rxQueue = c.rxQueue[consumed:]
	c.mu.Unlock()

	out := append([]byte{byte(len(data) + 1), mask}, data...)
	_, err := c.port.Write(out)
	return err == nil
}

// decodeWire converts a [header,code] pair to a Frame.
func decodeWire(header, code byte) (Frame, bool) {
	house, err := DecodeHouse(code >> 4)
	if err != nil {
		return Frame{}, false
	}
	if header&hdrFunction != 0 {
		f := Frame{
			IsFunction: true,
			House:      house,
			Function:   Function(code & 0x0F),
			Dim:        header >> 3,
		}
		if f.Dim > MaxDim {
			return Frame{}, false
		}
		return f, true
	}
	unit, err := DecodeUnit(code & 0x0F)
	if err != nil {
		return Frame{}, false
	}
	return Frame{House: house, Unit: unit}, true
}

// encodeWire converts a Frame to its [header,code] pair.
func encodeWire(f Frame) (header, code byte, ok bool) {
	code, ok = encodeWireCode(f)
	if !ok {
		return 0, 0, false
	}
	header = hdrSync
	if f.IsFunction {
		header |= hdrFunction
		header |= f.Dim << 3
	}
	return header, code, true
}

// encodeWireCode returns the code byte for a frame.
func encodeWireCode(f Frame) (byte, bool) {
	hb, err := EncodeHouse(f.House)
	if err != nil {
		return 0, false
	}
	if f.IsFunction {
		return hb<<4 | byte(f.Function), true
	}
	ub, err := EncodeUnit(f.Unit)
	if err != nil {
		return 0, false
	}
	return hb<<4 | ub, true
}
