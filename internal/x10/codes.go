// Package x10 simulates the X10 powerline control middleware integrated by
// the paper's prototype, including the CM11A serial computer interface
// whose programming protocol the paper cites as reference [15].
//
// The simulation has three layers, mirroring a real installation:
//
//   - a shared Powerline medium carrying X10 frames (address frames and
//     function frames with the real non-linear house/unit bit codes);
//   - device modules attached to the powerline (lamp and appliance
//     modules, motion sensors) with faithful addressing semantics: an
//     address frame selects units, a following function frame operates on
//     every selected unit;
//   - a CM11A interface device bridging a serial port to the powerline,
//     speaking the documented byte protocol: [header,code] transmissions,
//     additive checksums, 0x00 acknowledge, 0x55 interface-ready, 0x5A
//     receive polls answered by 0xC3, and the optional 0xA5 power-fail
//     clock request answered by a 0x9B clock download.
//
// The Universal Remote Controller of §4.2 is an X10 remote whose
// keypresses surface here as received frames on the CM11A.
package x10

import "fmt"

// HouseCode is an X10 house code, 'A' through 'P'.
type HouseCode byte

// UnitCode is an X10 unit code, 1 through 16.
type UnitCode byte

// Function is an X10 command function.
type Function byte

// X10 functions with their real 4-bit wire encodings.
const (
	AllUnitsOff   Function = 0x0
	AllLightsOn   Function = 0x1
	On            Function = 0x2
	Off           Function = 0x3
	Dim           Function = 0x4
	Bright        Function = 0x5
	AllLightsOff  Function = 0x6
	ExtendedCode  Function = 0x7
	HailRequest   Function = 0x8
	HailAck       Function = 0x9
	PresetDim1    Function = 0xA
	PresetDim2    Function = 0xB
	ExtendedData  Function = 0xC
	StatusOn      Function = 0xD
	StatusOff     Function = 0xE
	StatusRequest Function = 0xF
)

var functionNames = map[Function]string{
	AllUnitsOff:   "AllUnitsOff",
	AllLightsOn:   "AllLightsOn",
	On:            "On",
	Off:           "Off",
	Dim:           "Dim",
	Bright:        "Bright",
	AllLightsOff:  "AllLightsOff",
	ExtendedCode:  "ExtendedCode",
	HailRequest:   "HailRequest",
	HailAck:       "HailAck",
	PresetDim1:    "PresetDim1",
	PresetDim2:    "PresetDim2",
	ExtendedData:  "ExtendedData",
	StatusOn:      "StatusOn",
	StatusOff:     "StatusOff",
	StatusRequest: "StatusRequest",
}

// String returns the function's conventional name.
func (f Function) String() string {
	if s, ok := functionNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Function(%d)", byte(f))
}

// ParseFunction inverts String. It returns an error for unknown names.
func ParseFunction(s string) (Function, error) {
	for f, name := range functionNames {
		if name == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("x10: unknown function %q", s)
}

// houseBits is the real, non-linear X10 encoding of house codes A-P.
var houseBits = [16]byte{
	0x6, 0xE, 0x2, 0xA, 0x1, 0x9, 0x5, 0xD, // A B C D E F G H
	0x7, 0xF, 0x3, 0xB, 0x0, 0x8, 0x4, 0xC, // I J K L M N O P
}

// unitBits uses the same non-linear table for units 1-16.
var unitBits = houseBits

// EncodeHouse returns the 4-bit wire code for a house code.
func EncodeHouse(h HouseCode) (byte, error) {
	if h < 'A' || h > 'P' {
		return 0, fmt.Errorf("x10: house code %q out of range A-P", string(rune(h)))
	}
	return houseBits[h-'A'], nil
}

// DecodeHouse inverts EncodeHouse.
func DecodeHouse(bits byte) (HouseCode, error) {
	for i, b := range houseBits {
		if b == bits&0x0F {
			return HouseCode('A' + i), nil
		}
	}
	return 0, fmt.Errorf("x10: invalid house bits %#x", bits)
}

// EncodeUnit returns the 4-bit wire code for a unit code.
func EncodeUnit(u UnitCode) (byte, error) {
	if u < 1 || u > 16 {
		return 0, fmt.Errorf("x10: unit code %d out of range 1-16", u)
	}
	return unitBits[u-1], nil
}

// DecodeUnit inverts EncodeUnit.
func DecodeUnit(bits byte) (UnitCode, error) {
	for i, b := range unitBits {
		if b == bits&0x0F {
			return UnitCode(i + 1), nil
		}
	}
	return 0, fmt.Errorf("x10: invalid unit bits %#x", bits)
}

// Address identifies one module on the powerline.
type Address struct {
	House HouseCode
	Unit  UnitCode
}

// String renders the address in the conventional "A3" form.
func (a Address) String() string { return fmt.Sprintf("%c%d", a.House, a.Unit) }

// ParseAddress parses the "A3" form.
func ParseAddress(s string) (Address, error) {
	if len(s) < 2 {
		return Address{}, fmt.Errorf("x10: bad address %q", s)
	}
	h := HouseCode(s[0])
	if h < 'A' || h > 'P' {
		return Address{}, fmt.Errorf("x10: bad house in address %q", s)
	}
	var u int
	if _, err := fmt.Sscanf(s[1:], "%d", &u); err != nil || u < 1 || u > 16 {
		return Address{}, fmt.Errorf("x10: bad unit in address %q", s)
	}
	return Address{House: h, Unit: UnitCode(u)}, nil
}

// Valid reports whether the address is within range.
func (a Address) Valid() bool {
	return a.House >= 'A' && a.House <= 'P' && a.Unit >= 1 && a.Unit <= 16
}

// MaxDim is the number of dim steps spanning full brightness, as in the
// CM11A protocol ("dims" field 0-22).
const MaxDim = 22

// Frame is one X10 powerline transmission: either an address frame
// selecting a unit or a function frame operating on the selected units.
type Frame struct {
	// IsFunction distinguishes function frames from address frames.
	IsFunction bool
	House      HouseCode
	// Unit is meaningful for address frames.
	Unit UnitCode
	// Function is meaningful for function frames.
	Function Function
	// Dim is the dim/bright step count (0-22) for Dim and Bright frames.
	Dim byte
}

// AddressFrame builds an address frame.
func AddressFrame(a Address) Frame {
	return Frame{House: a.House, Unit: a.Unit}
}

// FunctionFrame builds a function frame.
func FunctionFrame(h HouseCode, f Function, dim byte) Frame {
	return Frame{IsFunction: true, House: h, Function: f, Dim: dim}
}

// String renders the frame for logs.
func (f Frame) String() string {
	if f.IsFunction {
		if f.Function == Dim || f.Function == Bright {
			return fmt.Sprintf("%c %v(%d)", f.House, f.Function, f.Dim)
		}
		return fmt.Sprintf("%c %v", f.House, f.Function)
	}
	return Address{House: f.House, Unit: f.Unit}.String()
}

// Validate checks the frame's fields are in range.
func (f Frame) Validate() error {
	if f.House < 'A' || f.House > 'P' {
		return fmt.Errorf("x10: frame house %q out of range", string(rune(f.House)))
	}
	if f.IsFunction {
		if f.Function > StatusRequest {
			return fmt.Errorf("x10: frame function %d out of range", f.Function)
		}
		if f.Dim > MaxDim {
			return fmt.Errorf("x10: frame dim %d out of range 0-%d", f.Dim, MaxDim)
		}
		return nil
	}
	if f.Unit < 1 || f.Unit > 16 {
		return fmt.Errorf("x10: frame unit %d out of range", f.Unit)
	}
	return nil
}
