package x10

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Controller errors.
var (
	// ErrChecksum reports repeated checksum failures on the serial link.
	ErrChecksum = errors.New("x10: checksum mismatch after retries")
	// ErrClosed reports use of a closed controller.
	ErrClosed = errors.New("x10: controller closed")
)

// Command is one decoded X10 command: the address(es) it was sent to and
// the function applied. The controller pairs address and function frames
// received from the CM11A into Commands.
type Command struct {
	House HouseCode
	// Units are the unit codes addressed before the function frame.
	Units []UnitCode
	Func  Function
	Dim   byte
}

// String renders the command for logs.
func (c Command) String() string {
	if len(c.Units) == 1 {
		return fmt.Sprintf("%c%d %v", c.House, c.Units[0], c.Func)
	}
	return fmt.Sprintf("%c%v %v", c.House, c.Units, c.Func)
}

// Controller drives a CM11A over its serial port from the PC side: it
// transmits commands with the [header,code]/checksum/ack handshake and
// services the device's receive polls, delivering decoded commands to the
// registered handler. This is the software the paper's X10 PCM builds on.
type Controller struct {
	port SerialPort

	// sendQ carries transmit requests into the manager goroutine.
	sendQ chan sendReq
	// rxBytes carries serial bytes from the reader goroutine.
	rxBytes chan byte

	mu      sync.Mutex
	handler func(Command)
	// selected tracks address frames per house awaiting a function frame.
	selected map[HouseCode][]UnitCode
	closed   bool

	// done closes when the manager goroutine exits, unblocking senders.
	done chan struct{}
	wg   sync.WaitGroup
}

type sendReq struct {
	frames []Frame
	done   chan error
}

// NewController starts a controller on the given port.
func NewController(port SerialPort) *Controller {
	c := &Controller{
		port:     port,
		sendQ:    make(chan sendReq),
		rxBytes:  make(chan byte, 64),
		selected: make(map[HouseCode][]UnitCode),
		done:     make(chan struct{}),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.manage()
	return c
}

// OnCommand registers the handler invoked for each command received from
// the powerline (remote keypresses, motion sensors). The handler runs on
// the controller goroutine and must not call back into Send.
func (c *Controller) OnCommand(fn func(Command)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = fn
}

// Close shuts the controller down and closes the port.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.port.Close()
	c.wg.Wait()
}

// Send transmits the address+function pair for one command.
func (c *Controller) Send(ctx context.Context, addr Address, fn Function, dim byte) error {
	frames := []Frame{AddressFrame(addr), FunctionFrame(addr.House, fn, dim)}
	return c.SendFrames(ctx, frames)
}

// SendFrames transmits raw frames in order (several address frames may
// precede one function frame to address a group).
func (c *Controller) SendFrames(ctx context.Context, frames []Frame) error {
	for _, f := range frames {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	req := sendReq{frames: frames, done: make(chan error, 1)}
	select {
	case c.sendQ <- req:
	case <-c.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-req.done:
		return err
	case <-c.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// readLoop pumps serial bytes into rxBytes.
func (c *Controller) readLoop() {
	defer c.wg.Done()
	defer close(c.rxBytes)
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(c.port, buf); err != nil {
			return
		}
		c.rxBytes <- buf[0]
	}
}

// manage owns the serial protocol: it serializes transmissions and
// services device polls.
func (c *Controller) manage() {
	defer c.wg.Done()
	defer close(c.done)
	for {
		select {
		case b, ok := <-c.rxBytes:
			if !ok {
				c.drainSendQ()
				return
			}
			c.handleUnsolicited(b)
		case req, ok := <-c.sendQ:
			if !ok {
				return
			}
			req.done <- c.transmit(req.frames)
		}
	}
}

// drainSendQ fails queued sends after close.
func (c *Controller) drainSendQ() {
	for {
		select {
		case req := <-c.sendQ:
			req.done <- ErrClosed
		default:
			return
		}
	}
}

// handleUnsolicited processes a device-initiated byte seen while idle.
func (c *Controller) handleUnsolicited(b byte) {
	switch b {
	case cmPoll:
		c.servicePoll()
	case cmClockPoll:
		c.serviceClockPoll()
	case cmReady:
		// Stale ready byte; ignore.
	default:
		// Unexpected byte outside a transaction; ignore, the protocol
		// will resynchronize on the next poll.
	}
}

// servicePoll answers a 0x5A poll: request and decode the receive buffer.
func (c *Controller) servicePoll() {
	if _, err := c.port.Write([]byte{cmPollAck}); err != nil {
		return
	}
	size, ok := c.nextByte(time.Second)
	if !ok || size < 1 {
		return
	}
	mask, ok := c.nextByte(time.Second)
	if !ok {
		return
	}
	data := make([]byte, size-1)
	for i := range data {
		data[i], ok = c.nextByte(time.Second)
		if !ok {
			return
		}
	}
	c.decodeReceiveBuffer(mask, data)
}

// serviceClockPoll answers a 0xA5 power-fail poll with a clock download.
func (c *Controller) serviceClockPoll() {
	// 0x9B header plus 8 bytes of clock data; the simulated device
	// ignores the fields, so zeros suffice.
	msg := make([]byte, 9)
	msg[0] = cmClockSetHeader
	if _, err := c.port.Write(msg); err != nil {
		return
	}
	// Device acknowledges with ready.
	c.awaitReady(time.Second)
}

// decodeReceiveBuffer turns an uploaded buffer into frames and pairs them
// into commands.
func (c *Controller) decodeReceiveBuffer(mask byte, data []byte) {
	for i := 0; i < len(data); i++ {
		isFunc := mask&(1<<i) != 0
		b := data[i]
		if !isFunc {
			house, err1 := DecodeHouse(b >> 4)
			unit, err2 := DecodeUnit(b & 0x0F)
			if err1 != nil || err2 != nil {
				continue
			}
			c.noteAddress(house, unit)
			continue
		}
		house, err := DecodeHouse(b >> 4)
		if err != nil {
			continue
		}
		fn := Function(b & 0x0F)
		var dim byte
		if (fn == Dim || fn == Bright) && i+1 < len(data) && mask&(1<<(i+1)) != 0 {
			i++
			dim = data[i]
		}
		c.noteFunction(house, fn, dim)
	}
}

// noteAddress records a received address frame.
func (c *Controller) noteAddress(house HouseCode, unit UnitCode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.selected[house] = append(c.selected[house], unit)
}

// noteFunction closes out a command and delivers it.
func (c *Controller) noteFunction(house HouseCode, fn Function, dim byte) {
	c.mu.Lock()
	units := c.selected[house]
	delete(c.selected, house)
	handler := c.handler
	c.mu.Unlock()
	if handler != nil {
		handler(Command{House: house, Units: units, Func: fn, Dim: dim})
	}
}

// nextByte reads a byte from the device with a timeout.
func (c *Controller) nextByte(timeout time.Duration) (byte, bool) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case b, ok := <-c.rxBytes:
		return b, ok
	case <-t.C:
		return 0, false
	}
}

// transmit performs the [header,code]/checksum/ack handshake for each
// frame, retrying on checksum mismatch and servicing any poll that
// slipped in between.
func (c *Controller) transmit(frames []Frame) error {
	for _, f := range frames {
		header, code, ok := encodeWire(f)
		if !ok {
			return fmt.Errorf("x10: cannot encode frame %v", f)
		}
		if err := c.transmitPair(header, code); err != nil {
			return err
		}
	}
	return nil
}

func (c *Controller) transmitPair(header, code byte) error {
	want := (header + code) & 0xFF
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := c.port.Write([]byte{header, code}); err != nil {
			return fmt.Errorf("x10: serial write: %w", err)
		}
		got, ok := c.awaitChecksum(want, 2*time.Second)
		if !ok {
			return fmt.Errorf("x10: serial read: %w", ErrClosed)
		}
		if got != want {
			continue // device saw garbage; resend the pair
		}
		if _, err := c.port.Write([]byte{cmAck}); err != nil {
			return fmt.Errorf("x10: serial write: %w", err)
		}
		if !c.awaitReady(2 * time.Second) {
			return fmt.Errorf("x10: no interface-ready: %w", ErrClosed)
		}
		return nil
	}
	return ErrChecksum
}

// awaitChecksum reads the checksum byte, servicing polls that raced with
// the transmission (a 0x5A/0xA5 written by the device just before it read
// our header).
func (c *Controller) awaitChecksum(want byte, timeout time.Duration) (byte, bool) {
	deadline := time.Now().Add(timeout)
	for {
		b, ok := c.nextByte(time.Until(deadline))
		if !ok {
			return 0, false
		}
		// A poll byte that cannot be our checksum: service it afterwards
		// by leaving it pending; the device re-raises polls, so it is
		// safe to ignore it here unless it equals the checksum.
		if (b == cmPoll || b == cmClockPoll) && b != want {
			continue
		}
		return b, true
	}
}

// awaitReady consumes bytes until the 0x55 ready byte, tolerating
// interleaved poll bytes.
func (c *Controller) awaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		b, ok := c.nextByte(time.Until(deadline))
		if !ok {
			return false
		}
		if b == cmReady {
			return true
		}
	}
}
