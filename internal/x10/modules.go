package x10

import (
	"sync"
)

// Module addressing semantics shared by receivers: an address frame for
// the module's house selects it (several units can be selected in one
// sequence); the next function frame on that house operates on every
// selected unit and then, for most functions, clears the selection.

// LampModule is a dimmable X10 lamp module (e.g. LM465). It responds to
// On, Off, Dim, Bright, AllLightsOn, AllLightsOff and AllUnitsOff and
// answers StatusRequest with StatusOn/StatusOff when selected.
type LampModule struct {
	addr Address
	line *Powerline

	mu       sync.Mutex
	selected bool
	level    int // 0-100
	detach   func()
	// pending status reply, transmitted by a separate goroutine because
	// the medium is half-duplex (no re-entrant transmits from receive).
	statusCh chan Function
	wg       sync.WaitGroup
	closed   bool
}

// NewLampModule attaches a lamp module at addr.
func NewLampModule(line *Powerline, addr Address) *LampModule {
	m := &LampModule{addr: addr, line: line, statusCh: make(chan Function, 4)}
	m.detach = line.Attach(m.receive)
	m.wg.Add(1)
	go m.statusLoop()
	return m
}

// Close detaches the module from the powerline.
func (m *LampModule) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.detach()
	close(m.statusCh)
	m.wg.Wait()
}

// Addr returns the module address.
func (m *LampModule) Addr() Address { return m.addr }

// Level returns the current brightness (0-100).
func (m *LampModule) Level() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// On reports whether the lamp is lit.
func (m *LampModule) On() bool { return m.Level() > 0 }

func (m *LampModule) statusLoop() {
	defer m.wg.Done()
	for fn := range m.statusCh {
		_ = m.line.Transmit(FunctionFrame(m.addr.House, fn, 0))
	}
}

func (m *LampModule) receive(f Frame) {
	if f.House != m.addr.House {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !f.IsFunction {
		if f.Unit == m.addr.Unit {
			m.selected = true
		}
		return
	}
	switch f.Function {
	case AllLightsOn:
		m.level = 100
	case AllLightsOff:
		m.level = 0
	case AllUnitsOff:
		m.level = 0
		m.selected = false
	case On:
		if m.selected {
			m.level = 100
			m.selected = false
		}
	case Off:
		if m.selected {
			m.level = 0
			m.selected = false
		}
	case Dim:
		if m.selected {
			m.level -= int(f.Dim) * 100 / MaxDim
			if m.level < 0 {
				m.level = 0
			}
			// Dim/Bright keep the selection so repeated presses work,
			// matching real module behaviour.
		}
	case Bright:
		if m.selected {
			m.level += int(f.Dim) * 100 / MaxDim
			if m.level > 100 {
				m.level = 100
			}
		}
	case StatusRequest:
		if m.selected {
			m.selected = false
			reply := StatusOff
			if m.level > 0 {
				reply = StatusOn
			}
			if !m.closed {
				select {
				case m.statusCh <- reply:
				default:
				}
			}
		}
	}
}

// ApplianceModule is a non-dimmable relay module (e.g. AM486): On, Off,
// AllUnitsOff. It ignores AllLightsOn, as real appliance modules do.
type ApplianceModule struct {
	addr Address
	line *Powerline

	mu       sync.Mutex
	selected bool
	on       bool
	detach   func()
}

// NewApplianceModule attaches an appliance module at addr.
func NewApplianceModule(line *Powerline, addr Address) *ApplianceModule {
	m := &ApplianceModule{addr: addr, line: line}
	m.detach = line.Attach(m.receive)
	return m
}

// Close detaches the module.
func (m *ApplianceModule) Close() { m.detach() }

// Addr returns the module address.
func (m *ApplianceModule) Addr() Address { return m.addr }

// On reports whether the relay is closed.
func (m *ApplianceModule) On() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.on
}

func (m *ApplianceModule) receive(f Frame) {
	if f.House != m.addr.House {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !f.IsFunction {
		if f.Unit == m.addr.Unit {
			m.selected = true
		}
		return
	}
	switch f.Function {
	case AllUnitsOff:
		m.on = false
		m.selected = false
	case On:
		if m.selected {
			m.on = true
			m.selected = false
		}
	case Off:
		if m.selected {
			m.on = false
			m.selected = false
		}
	}
}

// MotionSensor models an X10 motion detector (e.g. MS13 with its RF-to-
// powerline transceiver): on motion it transmits its address followed by
// On; when motion clears it transmits Off.
type MotionSensor struct {
	addr Address
	line *Powerline
}

// NewMotionSensor returns a transmitter-only sensor at addr.
func NewMotionSensor(line *Powerline, addr Address) *MotionSensor {
	return &MotionSensor{addr: addr, line: line}
}

// Addr returns the sensor address.
func (s *MotionSensor) Addr() Address { return s.addr }

// Trigger transmits the motion-detected command pair.
func (s *MotionSensor) Trigger() error {
	return s.line.TransmitCommand(s.addr, On, 0)
}

// Clear transmits the motion-cleared command pair.
func (s *MotionSensor) Clear() error {
	return s.line.TransmitCommand(s.addr, Off, 0)
}

// Remote models a hand-held X10 remote control (the paper's Universal
// Remote Controller hardware): each keypress transmits an address +
// function pair for the configured house code.
type Remote struct {
	house HouseCode
	line  *Powerline
}

// NewRemote returns a remote transmitting on the given house code.
func NewRemote(line *Powerline, house HouseCode) *Remote {
	return &Remote{house: house, line: line}
}

// Press transmits the command pair for a unit key plus function key.
func (r *Remote) Press(unit UnitCode, fn Function) error {
	return r.line.TransmitCommand(Address{House: r.house, Unit: unit}, fn, 0)
}

// PressDim transmits a dim/bright keypress with the given step count.
func (r *Remote) PressDim(unit UnitCode, fn Function, steps byte) error {
	return r.line.TransmitCommand(Address{House: r.house, Unit: unit}, fn, steps)
}
