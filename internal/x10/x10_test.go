package x10

import (
	"testing"
	"testing/quick"
)

func TestHouseCodeRoundTrip(t *testing.T) {
	seen := make(map[byte]bool)
	for h := HouseCode('A'); h <= 'P'; h++ {
		bits, err := EncodeHouse(h)
		if err != nil {
			t.Fatalf("EncodeHouse(%c): %v", h, err)
		}
		if bits > 0x0F {
			t.Errorf("EncodeHouse(%c) = %#x exceeds 4 bits", h, bits)
		}
		if seen[bits] {
			t.Errorf("duplicate house encoding %#x", bits)
		}
		seen[bits] = true
		back, err := DecodeHouse(bits)
		if err != nil || back != h {
			t.Errorf("DecodeHouse(EncodeHouse(%c)) = %c, %v", h, back, err)
		}
	}
	if _, err := EncodeHouse('Q'); err == nil {
		t.Error("EncodeHouse(Q) accepted")
	}
}

func TestKnownHouseCodes(t *testing.T) {
	// Spot-check the published non-linear table.
	known := map[HouseCode]byte{'A': 0x6, 'E': 0x1, 'M': 0x0, 'P': 0xC}
	for h, want := range known {
		if got, _ := EncodeHouse(h); got != want {
			t.Errorf("EncodeHouse(%c) = %#x, want %#x", h, got, want)
		}
	}
}

func TestUnitCodeRoundTrip(t *testing.T) {
	for u := UnitCode(1); u <= 16; u++ {
		bits, err := EncodeUnit(u)
		if err != nil {
			t.Fatalf("EncodeUnit(%d): %v", u, err)
		}
		back, err := DecodeUnit(bits)
		if err != nil || back != u {
			t.Errorf("DecodeUnit(EncodeUnit(%d)) = %d, %v", u, back, err)
		}
	}
	for _, bad := range []UnitCode{0, 17} {
		if _, err := EncodeUnit(bad); err == nil {
			t.Errorf("EncodeUnit(%d) accepted", bad)
		}
	}
}

func TestAddressParse(t *testing.T) {
	tests := []struct {
		in   string
		want Address
		ok   bool
	}{
		{"A1", Address{'A', 1}, true},
		{"P16", Address{'P', 16}, true},
		{"C7", Address{'C', 7}, true},
		{"Q1", Address{}, false},
		{"A0", Address{}, false},
		{"A17", Address{}, false},
		{"A", Address{}, false},
		{"", Address{}, false},
	}
	for _, tt := range tests {
		got, err := ParseAddress(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("ParseAddress(%q) = %v, %v", tt.in, got, err)
		}
		if !tt.ok && err == nil {
			t.Errorf("ParseAddress(%q) accepted", tt.in)
		}
	}
	if got := (Address{'B', 3}).String(); got != "B3" {
		t.Errorf("String = %q", got)
	}
}

func TestFunctionNames(t *testing.T) {
	for f := AllUnitsOff; f <= StatusRequest; f++ {
		name := f.String()
		back, err := ParseFunction(name)
		if err != nil || back != f {
			t.Errorf("ParseFunction(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := ParseFunction("Nope"); err == nil {
		t.Error("ParseFunction(Nope) accepted")
	}
}

func TestFrameValidate(t *testing.T) {
	good := []Frame{
		AddressFrame(Address{'A', 1}),
		FunctionFrame('A', On, 0),
		FunctionFrame('P', Dim, 22),
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", f, err)
		}
	}
	bad := []Frame{
		{House: 'Z', Unit: 1},
		{House: 'A', Unit: 0},
		{House: 'A', Unit: 17},
		{IsFunction: true, House: 'A', Function: On, Dim: 23},
		{IsFunction: true, House: 'A', Function: Function(16)},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", f)
		}
	}
}

func TestPowerlineBroadcastAndTrace(t *testing.T) {
	line := NewPowerline()
	var got []Frame
	detach := line.Attach(func(f Frame) { got = append(got, f) })
	defer detach()

	if err := line.TransmitCommand(Address{'A', 3}, On, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].IsFunction || !got[1].IsFunction {
		t.Fatalf("received %v", got)
	}
	if tr := line.Trace(); len(tr) != 2 {
		t.Errorf("trace = %v", tr)
	}
	line.ClearTrace()
	if len(line.Trace()) != 0 {
		t.Error("trace not cleared")
	}

	// Invalid frames are rejected before hitting the medium.
	if err := line.Transmit(Frame{House: 'Z'}); err == nil {
		t.Error("invalid frame transmitted")
	}
}

func TestPowerlineDetach(t *testing.T) {
	line := NewPowerline()
	count := 0
	detach := line.Attach(func(Frame) { count++ })
	_ = line.Transmit(AddressFrame(Address{'A', 1}))
	detach()
	_ = line.Transmit(AddressFrame(Address{'A', 1}))
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestLampModuleAddressing(t *testing.T) {
	line := NewPowerline()
	lamp := NewLampModule(line, Address{'A', 3})
	defer lamp.Close()
	other := NewLampModule(line, Address{'A', 4})
	defer other.Close()

	// On only affects the selected unit.
	_ = line.TransmitCommand(Address{'A', 3}, On, 0)
	if !lamp.On() || other.On() {
		t.Errorf("lamp=%v other=%v after A3 On", lamp.On(), other.On())
	}

	// Unselected function frame is ignored.
	_ = line.Transmit(FunctionFrame('A', Off, 0))
	if !lamp.On() {
		t.Error("Off applied without addressing")
	}

	// Group addressing: two address frames then one function.
	_ = line.Transmit(AddressFrame(Address{'A', 3}))
	_ = line.Transmit(AddressFrame(Address{'A', 4}))
	_ = line.Transmit(FunctionFrame('A', Off, 0))
	if lamp.On() || other.On() {
		t.Error("group Off failed")
	}

	// Different house code is invisible.
	_ = line.TransmitCommand(Address{'B', 3}, On, 0)
	if lamp.On() {
		t.Error("house B frame affected house A module")
	}
}

func TestLampModuleDimBright(t *testing.T) {
	line := NewPowerline()
	lamp := NewLampModule(line, Address{'A', 1})
	defer lamp.Close()

	_ = line.TransmitCommand(Address{'A', 1}, On, 0)
	if lamp.Level() != 100 {
		t.Fatalf("level = %d", lamp.Level())
	}
	_ = line.TransmitCommand(Address{'A', 1}, Dim, 11) // half range
	if got := lamp.Level(); got != 50 {
		t.Errorf("level after dim 11 = %d, want 50", got)
	}
	// Dim keeps selection: repeated function frames continue to apply.
	_ = line.Transmit(FunctionFrame('A', Dim, 11))
	if got := lamp.Level(); got != 0 {
		t.Errorf("level after second dim = %d, want 0", got)
	}
	_ = line.Transmit(FunctionFrame('A', Bright, 22))
	if got := lamp.Level(); got != 100 {
		t.Errorf("level after bright 22 = %d, want 100", got)
	}
	// Clamped at bounds.
	_ = line.Transmit(FunctionFrame('A', Bright, 22))
	if got := lamp.Level(); got != 100 {
		t.Errorf("level clamped = %d", got)
	}
}

func TestLampModuleAllLights(t *testing.T) {
	line := NewPowerline()
	lamp := NewLampModule(line, Address{'C', 2})
	defer lamp.Close()
	appliance := NewApplianceModule(line, Address{'C', 5})
	defer appliance.Close()

	_ = line.Transmit(FunctionFrame('C', AllLightsOn, 0))
	if !lamp.On() {
		t.Error("AllLightsOn ignored by lamp")
	}
	if appliance.On() {
		t.Error("AllLightsOn turned on appliance module")
	}
	_ = line.Transmit(FunctionFrame('C', AllUnitsOff, 0))
	if lamp.On() {
		t.Error("AllUnitsOff ignored by lamp")
	}
}

func TestApplianceModule(t *testing.T) {
	line := NewPowerline()
	ap := NewApplianceModule(line, Address{'D', 9})
	defer ap.Close()
	_ = line.TransmitCommand(Address{'D', 9}, On, 0)
	if !ap.On() {
		t.Error("appliance not on")
	}
	_ = line.TransmitCommand(Address{'D', 9}, Off, 0)
	if ap.On() {
		t.Error("appliance not off")
	}
	_ = line.TransmitCommand(Address{'D', 9}, On, 0)
	_ = line.Transmit(FunctionFrame('D', AllUnitsOff, 0))
	if ap.On() {
		t.Error("AllUnitsOff ignored")
	}
}

func TestMotionSensorAndRemote(t *testing.T) {
	line := NewPowerline()
	var frames []Frame
	detach := line.Attach(func(f Frame) { frames = append(frames, f) })
	defer detach()

	sensor := NewMotionSensor(line, Address{'E', 7})
	if err := sensor.Trigger(); err != nil {
		t.Fatal(err)
	}
	if err := sensor.Clear(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("frames = %v", frames)
	}
	if frames[1].Function != On || frames[3].Function != Off {
		t.Errorf("sensor frames = %v", frames)
	}

	frames = nil
	remote := NewRemote(line, 'E')
	_ = remote.Press(2, On)
	_ = remote.PressDim(2, Dim, 5)
	if len(frames) != 4 {
		t.Fatalf("remote frames = %v", frames)
	}
	if frames[3].Dim != 5 {
		t.Errorf("dim steps = %d", frames[3].Dim)
	}
}

func TestWireEncodeDecodeRoundTrip(t *testing.T) {
	frames := []Frame{
		AddressFrame(Address{'A', 1}),
		AddressFrame(Address{'P', 16}),
		FunctionFrame('M', On, 0),
		FunctionFrame('B', Dim, 15),
		FunctionFrame('K', StatusRequest, 0),
	}
	for _, f := range frames {
		header, code, ok := encodeWire(f)
		if !ok {
			t.Fatalf("encodeWire(%v) failed", f)
		}
		if header&hdrSync == 0 {
			t.Errorf("header %#x missing sync bit", header)
		}
		got, ok := decodeWire(header, code)
		if !ok || got != f {
			t.Errorf("decodeWire(encodeWire(%v)) = %v, %v", f, got, ok)
		}
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	fn := func(houseSel, unitSel, fnSel, dimSel uint8, isFunc bool) bool {
		f := Frame{House: HouseCode('A' + houseSel%16)}
		if isFunc {
			f.IsFunction = true
			f.Function = Function(fnSel % 16)
			if f.Function == Dim || f.Function == Bright {
				f.Dim = dimSel % (MaxDim + 1)
			}
		} else {
			f.Unit = UnitCode(unitSel%16 + 1)
		}
		header, code, ok := encodeWire(f)
		if !ok {
			return false
		}
		got, ok := decodeWire(header, code)
		return ok && got == f
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
