package x10

import (
	"io"
	"sync"
)

// SerialPort is one end of the byte link between a computer and the
// CM11A interface.
type SerialPort = io.ReadWriteCloser

// NewLink returns the two ends of an in-memory serial cable. Unlike
// net.Pipe, each direction is buffered like a UART FIFO, so the CM11A can
// raise its 0x5A receive poll while the PC is not yet reading — exactly
// the asynchronous behaviour the real serial line allows.
func NewLink() (pcSide, deviceSide SerialPort) {
	const fifo = 512
	aToB := make(chan byte, fifo)
	bToA := make(chan byte, fifo)
	done := make(chan struct{})
	var once sync.Once
	closeLink := func() error {
		once.Do(func() { close(done) })
		return nil
	}
	a := &linkEnd{recv: bToA, send: aToB, done: done, close: closeLink}
	b := &linkEnd{recv: aToB, send: bToA, done: done, close: closeLink}
	return a, b
}

// linkEnd is one end of the buffered duplex link. Closing either end
// closes the whole link, like unplugging the cable.
type linkEnd struct {
	recv  <-chan byte
	send  chan<- byte
	done  chan struct{}
	close func() error
}

// Read blocks for at least one byte, then drains whatever else is
// immediately available, like a UART read with data ready.
func (e *linkEnd) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	select {
	case b := <-e.recv:
		p[0] = b
	case <-e.done:
		// Drain residual bytes before reporting EOF so in-flight protocol
		// exchanges complete.
		select {
		case b := <-e.recv:
			p[0] = b
		default:
			return 0, io.EOF
		}
	}
	n := 1
	for n < len(p) {
		select {
		case b := <-e.recv:
			p[n] = b
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Write queues bytes into the FIFO, blocking only when it is full.
func (e *linkEnd) Write(p []byte) (int, error) {
	for i, b := range p {
		// Check for closure first so writes after Close fail even while
		// FIFO space remains.
		select {
		case <-e.done:
			return i, io.ErrClosedPipe
		default:
		}
		select {
		case e.send <- b:
		case <-e.done:
			return i, io.ErrClosedPipe
		}
	}
	return len(p), nil
}

// Close unplugs the link for both ends.
func (e *linkEnd) Close() error { return e.close() }

var _ SerialPort = (*linkEnd)(nil)
