package hypothesis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// quickSeeds keeps hypothesis tests inside unit-test budgets while
// still exercising the multi-seed statistics path.
var quickSeeds = []int64{1, 2, 3}

// TestFindingsDeterministic: an unstamped finding must be byte-identical
// across runs — the contract the CI smoke job enforces end to end.
func TestFindingsDeterministic(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		f, err := PropagationKnee(quickSeeds, []int{4, 8, 16})
		if err != nil {
			t.Fatal(err)
		}
		if f.GeneratedAt != "" {
			t.Fatal("Run stamped GeneratedAt; determinism compare would never match")
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = b
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatalf("findings diverged across identical runs:\n%s\n%s", runs[0], runs[1])
	}
}

// TestPropagationKneeLocatesKnee: across the default scales the mesh
// must saturate, and the knee report must carry a large effect size over
// at least the configured seed count.
func TestPropagationKneeLocatesKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale sweep")
	}
	f, err := PropagationKnee(quickSeeds, []int{4, 8, 16, 24, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Seeds) < 3 {
		t.Fatalf("knee finding must span >=3 seeds, got %v", f.Seeds)
	}
	if f.Knee == nil {
		t.Fatalf("no knee located; scale points: %+v", f.Scales)
	}
	if f.Knee.CohensDAtKnee < 0.8 || f.Knee.RatioVsBase < 2.0 {
		t.Fatalf("knee does not meet effect thresholds: %+v", f.Knee)
	}
	if f.Verdict != "supported" {
		t.Fatalf("verdict %q, want supported", f.Verdict)
	}
	// p99 must be monotone-ish: the largest scale strictly above the smallest.
	first, last := f.Scales[0], f.Scales[len(f.Scales)-1]
	if last.P99MeanMS <= first.P99MeanMS {
		t.Fatalf("p99 did not grow with scale: %v -> %v", first.P99MeanMS, last.P99MeanMS)
	}
}

func TestShardUniformity(t *testing.T) {
	f, err := ShardUniformity(quickSeeds, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != "supported" {
		t.Fatalf("shard uniformity refuted: %s", f.Detail)
	}
	if f.Scales[0].Aux["shard_cv_max"] <= 0 {
		t.Fatalf("no shard load observed: %+v", f.Scales[0].Aux)
	}
}

func TestAuthOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs open and secure sweeps")
	}
	f, err := AuthOverhead(quickSeeds, []int{6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != "supported" {
		t.Fatalf("auth overhead out of bounds: %s", f.Detail)
	}
	for _, p := range f.Scales {
		if p.Aux["overhead_ratio"] <= 1.0 {
			t.Fatalf("secure run not measurably costlier at %d homes: %+v", p.Homes, p.Aux)
		}
	}
}

// TestReplicaFailoverSupported runs the leader-kill hypothesis at a
// reduced scale: every seed must produce exactly one kill and one
// promotion, lose nothing acknowledged, keep importer cursors intact,
// and hold failover reads inside the 2x steady-state bound.
func TestReplicaFailoverSupported(t *testing.T) {
	if testing.Short() {
		t.Skip("full failover sweep")
	}
	f, err := ReplicaFailover(quickSeeds, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != "supported" {
		t.Fatalf("replica failover verdict %q: %s", f.Verdict, f.Detail)
	}
	aux := f.Scales[0].Aux
	if aux["promotions"] != float64(len(quickSeeds)) {
		t.Fatalf("promotions = %v, want one per seed (%d)", aux["promotions"], len(quickSeeds))
	}
	if aux["acked_lost"] != 0 || aux["importer_resyncs"] != 0 || aux["missing_after_rejoin"] != 0 {
		t.Fatalf("failover lost work: %+v", aux)
	}
	if aux["handed_back"] == 0 {
		t.Fatalf("no handback observed — the kill produced no unreplicated acknowledged tail: %+v", aux)
	}
	if r := aux["read_failover_ratio"]; r <= 0 || r > 2 {
		t.Fatalf("read failover/steady p99 ratio %v outside (0, 2]", r)
	}
}

func TestRegistryAndCSV(t *testing.T) {
	if len(Registry()) < 3 {
		t.Fatal("expected at least 3 registered hypotheses")
	}
	if _, ok := Lookup("propagation-knee"); !ok {
		t.Fatal("propagation-knee not registered")
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("lookup invented a hypothesis")
	}
	f, err := ShardUniformity([]int64{1}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "shard_cv_max") {
		t.Fatalf("aux column missing from header: %s", lines[0])
	}
}

func TestCohensD(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		min  float64
		max  float64
	}{
		{"identical", []float64{5, 5, 5}, []float64{5, 5, 5}, 0, 0},
		{"huge shift", []float64{1, 1.1, 0.9}, []float64{10, 10.2, 9.8}, 0.8, 2000},
		{"zero spread distinct", []float64{1, 1}, []float64{2, 2}, 999, 1001},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := cohensD(c.a, c.b)
			if d < c.min || d > c.max {
				t.Fatalf("cohensD = %v, want in [%v,%v]", d, c.min, c.max)
			}
		})
	}
}
