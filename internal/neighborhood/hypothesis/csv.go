package hypothesis

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV emits the finding's scale points as a flat table, one row
// per scale, auxiliary scalars appended as extra columns in name order.
// The CSV carries the same numbers as the JSON — it exists so the
// artifact drops straight into a plotting pipeline.
func WriteCSV(w io.Writer, f Finding) error {
	cw := csv.NewWriter(w)

	// Collect the union of aux keys so every row has the same shape.
	auxKeys := map[string]bool{}
	for _, p := range f.Scales {
		for k := range p.Aux {
			auxKeys[k] = true
		}
	}
	aux := make([]string, 0, len(auxKeys))
	for k := range auxKeys {
		aux = append(aux, k)
	}
	sort.Strings(aux)

	header := []string{"hypothesis", "homes", "p50_mean_ms", "p99_mean_ms", "p99_std_ms", "mean_ms"}
	header = append(header, aux...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range f.Scales {
		row := []string{
			f.Hypothesis,
			fmt.Sprintf("%d", p.Homes),
			fmt.Sprintf("%g", p.P50MeanMS),
			fmt.Sprintf("%g", p.P99MeanMS),
			fmt.Sprintf("%g", p.P99StdMS),
			fmt.Sprintf("%g", p.MeanMS),
		}
		for _, k := range aux {
			row = append(row, fmt.Sprintf("%g", p.Aux[k]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
