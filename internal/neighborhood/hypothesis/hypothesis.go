// Package hypothesis is the experiment layer over the neighborhood
// simulator: it encodes the paper-motivated performance questions as
// runnable hypotheses, executes each across multiple seeds and scale
// points, and reduces the runs to machine-readable findings with effect
// sizes — so a claim like "propagation latency knees at N homes" is a
// reproducible artifact, not a observation.
package hypothesis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"homeconnect/internal/neighborhood"
)

// SchemaVersion stamps every findings document.
const SchemaVersion = "nbsim/findings/v1"

// ScalePoint aggregates one scale's runs across seeds.
type ScalePoint struct {
	Homes int `json:"homes"`
	// P99MeanMS is the across-seed mean of the per-seed p99 of the
	// hypothesis metric; P99StdMS its across-seed standard deviation.
	P99MeanMS float64 `json:"p99_mean_ms"`
	P99StdMS  float64 `json:"p99_std_ms"`
	P50MeanMS float64 `json:"p50_mean_ms"`
	MeanMS    float64 `json:"mean_ms"`
	// PerSeed keeps the raw per-seed p99 series for reanalysis.
	PerSeedP99 []float64 `json:"per_seed_p99_ms"`
	// Aux carries hypothesis-specific scalars (shard CVs, overhead
	// ratios), averaged across seeds.
	Aux map[string]float64 `json:"aux,omitempty"`
}

// EffectSize is Cohen's d between two adjacent scale points.
type EffectSize struct {
	FromHomes int     `json:"from_homes"`
	ToHomes   int     `json:"to_homes"`
	CohensD   float64 `json:"cohens_d"`
	// Ratio is the mean-p99 ratio to/from — the practical magnitude the
	// effect size qualifies.
	Ratio float64 `json:"ratio"`
}

// Knee marks the first scale point where the metric departs its
// baseline by both a large standardized effect and a material ratio.
type Knee struct {
	Homes         int     `json:"homes"`
	P99MS         float64 `json:"p99_ms"`
	RatioVsBase   float64 `json:"ratio_vs_base"`
	CohensDAtKnee float64 `json:"cohens_d_at_knee"`
}

// Finding is one hypothesis's complete, deterministic outcome.
// GeneratedAt is the only wall-clock field; determinism checks compare
// findings with it cleared.
type Finding struct {
	Schema     string                `json:"schema"`
	Hypothesis string                `json:"hypothesis"`
	Title      string                `json:"title"`
	Seeds      []int64               `json:"seeds"`
	Scenario   neighborhood.Scenario `json:"scenario"`
	Scales     []ScalePoint          `json:"scale_points"`
	Effects    []EffectSize          `json:"effect_sizes,omitempty"`
	Knee       *Knee                 `json:"knee,omitempty"`
	Verdict    string                `json:"verdict"`
	Detail     string                `json:"detail"`
	// GeneratedAt is RFC3339; empty in deterministic comparisons.
	GeneratedAt string `json:"generated_at,omitempty"`
}

// Thresholds for calling a knee: Cohen's d >= 0.8 is the conventional
// "large" standardized effect; the ratio floor keeps statistically loud
// but practically tiny shifts from counting.
const (
	kneeEffect = 0.8
	kneeRatio  = 2.0
)

// Spec describes one registered hypothesis.
type Spec struct {
	ID    string
	Title string
	// Run executes the hypothesis over the given seeds. Scales applies
	// to scale-sweeping hypotheses; fixed-scale hypotheses use Homes.
	Run func(seeds []int64, scales []int) (Finding, error)
	// DefaultScales is the scale sweep used when the caller passes none.
	DefaultScales []int
}

// Registry lists the runnable hypotheses in a fixed order.
func Registry() []Spec {
	return []Spec{
		{
			ID:            "propagation-knee",
			Title:         "Cross-home propagation p99 knees once mesh pull work exceeds the pull interval",
			Run:           PropagationKnee,
			DefaultScales: []int{4, 8, 16, 24, 32, 48},
		},
		{
			ID:            "shard-uniformity",
			Title:         "Registry shard load stays uniform under churn (CV below 0.35)",
			Run:           ShardUniformity,
			DefaultScales: []int{64},
		},
		{
			ID:            "auth-overhead",
			Title:         "Auth+audit planes cost a bounded constant factor, not a scale-dependent one",
			Run:           AuthOverhead,
			DefaultScales: []int{6, 12, 16},
		},
		{
			ID:            "crash-recovery",
			Title:         "A durable home killed mid-churn loses nothing and its importers resume without resync",
			Run:           CrashRecovery,
			DefaultScales: []int{16},
		},
		{
			ID:            "replica-failover",
			Title:         "Killing the replica-set leader mid-churn loses no acknowledged write and reads stay within 2x steady p99",
			Run:           ReplicaFailover,
			DefaultScales: []int{16},
		},
	}
}

// Lookup finds a registered hypothesis by ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var sq float64
	for _, x := range xs {
		sq += (x - m) * (x - m)
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

// cohensD is the standardized mean difference with pooled variance.
// A zero pooled spread with distinct means reports +Inf replaced by a
// large sentinel so JSON stays finite.
func cohensD(a, b []float64) float64 {
	ma, mb := mean(a), mean(b)
	sa, sb := std(a), std(b)
	pooled := math.Sqrt((sa*sa + sb*sb) / 2)
	if pooled == 0 {
		if ma == mb {
			return 0
		}
		return 1000
	}
	return round3(math.Abs(mb-ma) / pooled)
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// sweep runs scenario(homes) across seeds for every scale, digesting
// the chosen metric's summary per seed.
func sweep(scales []int, seeds []int64, scenario func(homes int) neighborhood.Scenario,
	metric func(neighborhood.Result) neighborhood.Summary,
	aux func([]neighborhood.Result) map[string]float64) ([]ScalePoint, error) {

	points := make([]ScalePoint, 0, len(scales))
	for _, n := range scales {
		results, err := neighborhood.RunSeeds(scenario(n), seeds)
		if err != nil {
			return nil, fmt.Errorf("scale %d: %w", n, err)
		}
		var p99s, p50s, means []float64
		for _, r := range results {
			m := metric(r)
			p99s = append(p99s, m.P99)
			p50s = append(p50s, m.P50)
			means = append(means, m.Mean)
		}
		pt := ScalePoint{
			Homes:      n,
			P99MeanMS:  round3(mean(p99s)),
			P99StdMS:   round3(std(p99s)),
			P50MeanMS:  round3(mean(p50s)),
			MeanMS:     round3(mean(means)),
			PerSeedP99: p99s,
		}
		if aux != nil {
			pt.Aux = aux(results)
		}
		points = append(points, pt)
	}
	return points, nil
}

// effects computes adjacent-scale effect sizes, and locateKnee finds the
// first point that satisfies both knee thresholds against the smallest
// scale's baseline.
func effects(points []ScalePoint) []EffectSize {
	var es []EffectSize
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		ratio := 0.0
		if prev.P99MeanMS > 0 {
			ratio = round3(cur.P99MeanMS / prev.P99MeanMS)
		}
		es = append(es, EffectSize{
			FromHomes: prev.Homes,
			ToHomes:   cur.Homes,
			CohensD:   cohensD(prev.PerSeedP99, cur.PerSeedP99),
			Ratio:     ratio,
		})
	}
	return es
}

func locateKnee(points []ScalePoint) *Knee {
	if len(points) < 2 {
		return nil
	}
	base := points[0]
	for i := 1; i < len(points); i++ {
		cur := points[i]
		if base.P99MeanMS <= 0 {
			continue
		}
		ratio := cur.P99MeanMS / base.P99MeanMS
		d := cohensD(base.PerSeedP99, cur.PerSeedP99)
		if ratio >= kneeRatio && d >= kneeEffect {
			return &Knee{
				Homes:         cur.Homes,
				P99MS:         round3(cur.P99MeanMS),
				RatioVsBase:   round3(ratio),
				CohensDAtKnee: d,
			}
		}
	}
	return nil
}

// PropagationKnee sweeps mesh scale and locates where cross-home
// propagation p99 departs its small-neighborhood baseline.
func PropagationKnee(seeds []int64, scales []int) (Finding, error) {
	if len(scales) == 0 {
		scales = []int{4, 8, 16, 24, 32, 48}
	}
	sort.Ints(scales)
	points, err := sweep(scales, seeds, neighborhood.Propagation,
		func(r neighborhood.Result) neighborhood.Summary { return r.Propagation }, nil)
	if err != nil {
		return Finding{}, err
	}
	f := Finding{
		Schema:     SchemaVersion,
		Hypothesis: "propagation-knee",
		Title:      "Cross-home propagation latency knee under mesh fan-out",
		Seeds:      seeds,
		Scenario:   neighborhood.Propagation(scales[0]),
		Scales:     points,
		Effects:    effects(points),
		Knee:       locateKnee(points),
	}
	if f.Knee != nil {
		f.Verdict = "supported"
		f.Detail = fmt.Sprintf(
			"p99 departs baseline at %d homes (%.1fx base, Cohen's d %.2f): mesh pull work per home grows with fan-out and overruns the %s pull interval",
			f.Knee.Homes, f.Knee.RatioVsBase, f.Knee.CohensDAtKnee, f.Scenario.PullInterval)
	} else {
		f.Verdict = "not-observed"
		f.Detail = fmt.Sprintf("no scale in %v moved p99 by >=%.1fx with d>=%.1f", scales, kneeRatio, kneeEffect)
	}
	return f, nil
}

// ShardUniformity runs the churn preset and tests that per-registry
// shard write load stays uniform (CV under the threshold) despite
// skew-prone service naming.
func ShardUniformity(seeds []int64, scales []int) (Finding, error) {
	const cvThreshold = 0.35
	if len(scales) == 0 {
		scales = []int{64}
	}
	sort.Ints(scales)
	points, err := sweep(scales, seeds, neighborhood.Churn,
		func(r neighborhood.Result) neighborhood.Summary { return r.Propagation },
		func(rs []neighborhood.Result) map[string]float64 {
			var cvM, cvX []float64
			for _, r := range rs {
				cvM = append(cvM, r.ShardCVMean)
				cvX = append(cvX, r.ShardCVMax)
			}
			return map[string]float64{
				"shard_cv_mean": round3(mean(cvM)),
				"shard_cv_max":  round3(mean(cvX)),
			}
		})
	if err != nil {
		return Finding{}, err
	}
	worst := 0.0
	for _, p := range points {
		if v := p.Aux["shard_cv_max"]; v > worst {
			worst = v
		}
	}
	f := Finding{
		Schema:     SchemaVersion,
		Hypothesis: "shard-uniformity",
		Title:      "Registry shard-load uniformity under churn",
		Seeds:      seeds,
		Scenario:   neighborhood.Churn(scales[len(scales)-1]),
		Scales:     points,
	}
	if worst <= cvThreshold {
		f.Verdict = "supported"
		f.Detail = fmt.Sprintf("worst per-home shard-load CV %.3f stays under %.2f across %d scale point(s) and %d seed(s)",
			worst, cvThreshold, len(points), len(seeds))
	} else {
		f.Verdict = "refuted"
		f.Detail = fmt.Sprintf("shard-load CV reached %.3f (threshold %.2f): FNV sharding skews under this workload", worst, cvThreshold)
	}
	return f, nil
}

// AuthOverhead runs the open and secure presets at each scale and
// compares call p99: the hypothesis is that arming identities and audit
// costs a bounded constant factor that does not grow with neighborhood
// size.
func AuthOverhead(seeds []int64, scales []int) (Finding, error) {
	const maxRatio = 2.5   // bounded overhead at any single scale
	const maxGrowth = 1.25 // overhead ratio may grow at most this much across scales
	if len(scales) == 0 {
		scales = []int{6, 12, 16}
	}
	sort.Ints(scales)

	type pair struct {
		open, secure []neighborhood.Result
	}
	points := make([]ScalePoint, 0, len(scales))
	ratios := make([]float64, 0, len(scales))
	for _, n := range scales {
		var p pair
		var err error
		if p.open, err = neighborhood.RunSeeds(neighborhood.Propagation(n), seeds); err != nil {
			return Finding{}, err
		}
		if p.secure, err = neighborhood.RunSeeds(neighborhood.Secure(n), seeds); err != nil {
			return Finding{}, err
		}
		var openP99, secP99, perSeedRatio []float64
		for i := range p.open {
			o, s := p.open[i].Call.P99, p.secure[i].Call.P99
			openP99 = append(openP99, o)
			secP99 = append(secP99, s)
			if o > 0 {
				perSeedRatio = append(perSeedRatio, s/o)
			}
		}
		ratio := round3(mean(perSeedRatio))
		ratios = append(ratios, ratio)
		points = append(points, ScalePoint{
			Homes:      n,
			P99MeanMS:  round3(mean(secP99)),
			P99StdMS:   round3(std(secP99)),
			PerSeedP99: secP99,
			Aux: map[string]float64{
				"open_call_p99_ms":        round3(mean(openP99)),
				"secure_call_p99_ms":      round3(mean(secP99)),
				"overhead_ratio":          ratio,
				"cohens_d_open_vs_secure": cohensD(openP99, secP99),
			},
		})
	}
	f := Finding{
		Schema:     SchemaVersion,
		Hypothesis: "auth-overhead",
		Title:      "Auth+audit overhead on cross-home call latency",
		Seeds:      seeds,
		Scenario:   neighborhood.Secure(scales[len(scales)-1]),
		Scales:     points,
	}
	worst := 0.0
	for _, r := range ratios {
		if r > worst {
			worst = r
		}
	}
	growth := 0.0
	if len(ratios) > 1 && ratios[0] > 0 {
		growth = round3(ratios[len(ratios)-1] / ratios[0])
	}
	if worst <= maxRatio && (len(ratios) < 2 || growth <= maxGrowth) {
		f.Verdict = "supported"
		f.Detail = fmt.Sprintf("secure/open call p99 ratio peaks at %.2fx (bound %.1fx) and grows %.2fx across scales %v (bound %.2fx): overhead is a constant factor",
			worst, maxRatio, growth, scales, maxGrowth)
	} else {
		f.Verdict = "refuted"
		f.Detail = fmt.Sprintf("secure/open call p99 ratio %.2fx or growth %.2fx exceeds bounds (%.1fx, %.2fx)", worst, growth, maxRatio, maxGrowth)
	}
	return f, nil
}

// CrashRecovery runs the kill-restart preset and tests the durability
// contract end to end: every acknowledged registration survives the
// crash, no importer falls back to a full-snapshot resync (sequence
// numbers stayed monotone across the restart, so cursors kept working),
// and the neighborhood catches back up within two pull intervals of the
// restart.
func CrashRecovery(seeds []int64, scales []int) (Finding, error) {
	if len(scales) == 0 {
		scales = []int{16}
	}
	sort.Ints(scales)
	scn := neighborhood.CrashRecovery(scales[len(scales)-1])
	boundMS := 2 * float64(scn.PullInterval) / float64(time.Millisecond)

	points := make([]ScalePoint, 0, len(scales))
	var crashes, missing, resyncs int64
	worstP99 := 0.0
	for _, n := range scales {
		results, err := neighborhood.RunSeeds(neighborhood.CrashRecovery(n), seeds)
		if err != nil {
			return Finding{}, fmt.Errorf("scale %d: %w", n, err)
		}
		var p99s, p50s, means, recovered, replayed []float64
		for _, r := range results {
			crashes += r.Crashes
			missing += r.MissingAfterRestart
			resyncs += r.ImporterResyncs
			recovered = append(recovered, float64(r.RecoveredEntries))
			replayed = append(replayed, float64(r.ReplayedRecords))
			var rec neighborhood.Summary
			if r.Recovery != nil {
				rec = *r.Recovery
			}
			p99s = append(p99s, rec.P99)
			p50s = append(p50s, rec.P50)
			means = append(means, rec.Mean)
			if rec.P99 > worstP99 {
				worstP99 = rec.P99
			}
		}
		points = append(points, ScalePoint{
			Homes:      n,
			P99MeanMS:  round3(mean(p99s)),
			P99StdMS:   round3(std(p99s)),
			P50MeanMS:  round3(mean(p50s)),
			MeanMS:     round3(mean(means)),
			PerSeedP99: p99s,
			Aux: map[string]float64{
				"recovered_entries": round3(mean(recovered)),
				"replayed_records":  round3(mean(replayed)),
				"missing":           float64(missing),
				"importer_resyncs":  float64(resyncs),
			},
		})
	}
	f := Finding{
		Schema:     SchemaVersion,
		Hypothesis: "crash-recovery",
		Title:      "Kill-restart durability: no lost registrations, cursor-transparent importer resume",
		Seeds:      seeds,
		Scenario:   scn,
		Scales:     points,
	}
	wantCrashes := int64(len(seeds) * len(scales))
	switch {
	case crashes != wantCrashes:
		f.Verdict = "invalid"
		f.Detail = fmt.Sprintf("expected %d crash-restarts, observed %d: the scenario did not exercise the fault", wantCrashes, crashes)
	case missing == 0 && resyncs == 0 && worstP99 <= boundMS:
		f.Verdict = "supported"
		f.Detail = fmt.Sprintf(
			"%d kill-restarts: 0 of the acknowledged registrations missing, 0 importer resyncs, recovery p99 %.1fms within the %.0fms bound (2x pull interval)",
			crashes, worstP99, boundMS)
	default:
		f.Verdict = "refuted"
		f.Detail = fmt.Sprintf(
			"%d registrations missing after restart, %d importer resyncs, recovery p99 %.1fms (bound %.0fms)",
			missing, resyncs, worstP99, boundMS)
	}
	return f, nil
}

// ReplicaFailover runs the leader-kill preset and tests the replication
// contract end to end: exactly one survivor promotes per kill, every
// acknowledged registration is resolvable on the acting leader (the
// unreplicated tail returns via rejoin handback), importer cursors ride
// across the promotion with zero resyncs, and gateway reads during the
// failover window stay within twice the steady-state p99.
func ReplicaFailover(seeds []int64, scales []int) (Finding, error) {
	const maxP99Ratio = 2.0
	if len(scales) == 0 {
		scales = []int{16}
	}
	sort.Ints(scales)

	points := make([]ScalePoint, 0, len(scales))
	var crashes, promotions, ackedLost, missing, resyncs, writeFailures, handedBack int64
	worstRatio := 0.0
	for _, n := range scales {
		results, err := neighborhood.RunSeeds(neighborhood.ReplicaFailover(n), seeds)
		if err != nil {
			return Finding{}, fmt.Errorf("scale %d: %w", n, err)
		}
		var p99s, p50s, means, steady, ratios []float64
		for _, r := range results {
			crashes += r.Crashes
			promotions += r.Promotions
			ackedLost += r.AckedLost
			missing += r.MissingAfterRestart
			resyncs += r.ImporterResyncs
			writeFailures += r.WriteFailures
			handedBack += r.HandedBack
			var fo, st neighborhood.Summary
			if r.ReadFailover != nil {
				fo = *r.ReadFailover
			}
			if r.ReadSteady != nil {
				st = *r.ReadSteady
			}
			p99s = append(p99s, fo.P99)
			p50s = append(p50s, fo.P50)
			means = append(means, fo.Mean)
			steady = append(steady, st.P99)
			if st.P99 > 0 {
				ratio := fo.P99 / st.P99
				ratios = append(ratios, ratio)
				if ratio > worstRatio {
					worstRatio = ratio
				}
			}
		}
		points = append(points, ScalePoint{
			Homes:      n,
			P99MeanMS:  round3(mean(p99s)),
			P99StdMS:   round3(std(p99s)),
			P50MeanMS:  round3(mean(p50s)),
			MeanMS:     round3(mean(means)),
			PerSeedP99: p99s,
			Aux: map[string]float64{
				"read_steady_p99_ms":   round3(mean(steady)),
				"read_failover_ratio":  round3(mean(ratios)),
				"promotions":           float64(promotions),
				"acked_lost":           float64(ackedLost),
				"missing_after_rejoin": float64(missing),
				"importer_resyncs":     float64(resyncs),
				"write_failures":       float64(writeFailures),
				"handed_back":          float64(handedBack),
			},
		})
	}
	f := Finding{
		Schema:     SchemaVersion,
		Hypothesis: "replica-failover",
		Title:      "Leader kill under replication: zero acknowledged-write loss, cursor-transparent failover, bounded read p99",
		Seeds:      seeds,
		Scenario:   neighborhood.ReplicaFailover(scales[len(scales)-1]),
		Scales:     points,
	}
	wantCrashes := int64(len(seeds) * len(scales))
	switch {
	case crashes != wantCrashes || promotions != wantCrashes:
		f.Verdict = "invalid"
		f.Detail = fmt.Sprintf(
			"expected %d leader kills each yielding one promotion, observed %d kills and %d promotions: the scenario did not exercise a clean failover",
			wantCrashes, crashes, promotions)
	case ackedLost == 0 && missing == 0 && resyncs == 0 && worstRatio <= maxP99Ratio:
		f.Verdict = "supported"
		f.Detail = fmt.Sprintf(
			"%d leader kills, %d deterministic promotions: 0 acknowledged registrations lost (%d returned via handback), 0 importer resyncs, failover read p99 peaks at %.2fx steady state (bound %.1fx)",
			crashes, promotions, handedBack, worstRatio, maxP99Ratio)
	default:
		f.Verdict = "refuted"
		f.Detail = fmt.Sprintf(
			"%d acknowledged writes unresolvable, %d missing after rejoin, %d importer resyncs, failover/steady read p99 ratio %.2fx (bound %.1fx)",
			ackedLost, missing, resyncs, worstRatio, maxP99Ratio)
	}
	return f, nil
}

// Stamp sets GeneratedAt; kept out of Run paths so determinism tests
// compare unstamped findings.
func (f *Finding) Stamp(t time.Time) {
	f.GeneratedAt = t.UTC().Format(time.RFC3339)
}
