// Package neighborhood is the neighborhood-scale deterministic
// simulation harness: hundreds of virtual homes, each a real federation
// slice (UDDI registry + VSR faces + peer links) riding the in-memory
// wire under a virtual clock. No sockets, no goroutines, no wall time —
// a run is a pure function of (Scenario, seed), so two runs with the
// same inputs produce byte-identical findings.
//
// The real stack supplies correctness: every replication step is an
// actual XML round trip through the peer export face, every import goes
// through the same delta/cursor state machine the production links use.
// A per-home queueing model supplies timing: each home is a serial
// server with a busy-until horizon, and operation costs come from the
// scenario's CostModel, which is what makes saturation knees appear at
// realistic fan-outs instead of at the speed of a function call.
package neighborhood

import (
	"fmt"
	"time"
)

// Topology names how homes are peered.
type Topology string

const (
	// Mesh peers every home with every other home — the paper's
	// neighborhood federation taken to its worst-case fan-out. Pull work
	// per home grows linearly with scale, which is what the propagation
	// knee hypothesis probes.
	Mesh Topology = "mesh"
	// Ring peers each home with its Degree successors — the bounded-
	// degree wide-area layout. Per-home work is constant in scale.
	Ring Topology = "ring"
)

// CostModel assigns virtual service times to operations. All latency in
// a run is queueing against these costs; wall-clock time never enters.
type CostModel struct {
	// PullImporter is the importer-side cost of one anti-entropy pull
	// before per-delta work.
	PullImporter time.Duration `json:"pull_importer"`
	// PullExporter is the exporter-side cost of serving one watch poll.
	PullExporter time.Duration `json:"pull_exporter"`
	// PerDelta is the added importer cost per applied delta.
	PerDelta time.Duration `json:"per_delta"`
	// Register is the cost of publishing or withdrawing one service.
	Register time.Duration `json:"register"`
	// Call is the per-side cost of one cross-home invocation.
	Call time.Duration `json:"call"`
	// AuthSign is added to every signed operation side when the
	// scenario runs with identities armed.
	AuthSign time.Duration `json:"auth_sign"`
	// AuditAppend is added per audited operation when the audit plane
	// is on.
	AuditAppend time.Duration `json:"audit_append"`
	// Read is the cost of serving one direct registry lookup against a
	// replica-set member (replica scenarios only).
	Read time.Duration `json:"read,omitempty"`
	// Redial is the client-side cost of discovering one dead endpoint
	// before a resolver moves to the next replica-set member — a LAN
	// connection refusal, not a timeout.
	Redial time.Duration `json:"redial,omitempty"`
}

// PartitionWindow takes a fraction of homes off the network for a span
// of virtual time; their links degrade and heal through the same wire
// errors a real outage produces.
type PartitionWindow struct {
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`
	Fraction float64       `json:"fraction"`
}

// CrashWindow kills one home outright at At — WAL fd closed with no
// sync and no marker, exactly a kill -9 — and restarts it from its data
// directory after Down. Unlike a partition, the process state is gone:
// only what the durable registry recovered survives. Requires Durable.
type CrashWindow struct {
	// Home is the index of the home to kill.
	Home int `json:"home"`
	// At is when (virtual time from the epoch) the home dies.
	At time.Duration `json:"at"`
	// Down is how long it stays dead before restarting.
	Down time.Duration `json:"down"`
}

// Scenario is the complete, serializable description of one simulation.
// Together with a seed it determines every event in the run.
type Scenario struct {
	Name     string   `json:"name"`
	Homes    int      `json:"homes"`
	Topology Topology `json:"topology"`
	// Degree is the per-home peer fan-out for Ring; ignored for Mesh.
	Degree int `json:"degree,omitempty"`

	// Duration is the virtual span simulated.
	Duration time.Duration `json:"duration"`
	// PullInterval is the anti-entropy cadence of every import link.
	PullInterval time.Duration `json:"pull_interval"`
	// SweepInterval is the registry expiry-sweep cadence.
	SweepInterval time.Duration `json:"sweep_interval"`

	// ServicesPerHome seeds each registry before the clock starts.
	ServicesPerHome int `json:"services_per_home"`
	// RegisterRate/ExpireRate/CallRate are per-home events per virtual
	// second (exponential interarrival).
	RegisterRate float64 `json:"register_rate"`
	ExpireRate   float64 `json:"expire_rate"`
	CallRate     float64 `json:"call_rate"`
	// ServiceTTL is the registration lease granted to local exports.
	ServiceTTL time.Duration `json:"service_ttl"`

	// FlapInterval bounces one random home off the network this often
	// (down for half a pull interval). Zero disables flapping.
	FlapInterval time.Duration `json:"flap_interval,omitempty"`
	// Partitions schedules wider outages.
	Partitions []PartitionWindow `json:"partitions,omitempty"`

	// Durable gives every home a WAL+snapshot registry in a run-private
	// temp directory, so a CrashWindow can kill and recover real state.
	Durable bool `json:"durable,omitempty"`
	// SnapshotEvery tunes the durable registries' snapshot cadence
	// (records between snapshots; 0 takes the uddi default).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Crash schedules one kill-restart. Requires Durable.
	Crash *CrashWindow `json:"crash,omitempty"`

	// Replicas puts home 0's registry behind a replica set: N standby
	// members feed from its journal over the repl watch protocol, writes
	// route through a leader-following resolver, and a CrashWindow on
	// home 0 becomes a leader kill with deterministic promotion instead
	// of a plain outage. Requires Durable (replicas keep their own WAL).
	Replicas int `json:"replicas,omitempty"`
	// ReadRate is lookups per virtual second issued against the replica
	// set through its resolver — the read-availability probe a failover
	// scenario measures. Ignored when Replicas is zero.
	ReadRate float64 `json:"read_rate,omitempty"`

	// Auth arms per-home identities and mutual signing on every link;
	// Audit arms the hash-chained audit log on every home.
	Auth  bool `json:"auth"`
	Audit bool `json:"audit"`

	Costs CostModel `json:"costs"`
}

// DefaultCosts models a small embedded residential gateway: double-digit
// millisecond wire operations, sub-millisecond bookkeeping.
func DefaultCosts() CostModel {
	return CostModel{
		PullImporter: 25 * time.Millisecond,
		PullExporter: 10 * time.Millisecond,
		PerDelta:     2 * time.Millisecond,
		Register:     5 * time.Millisecond,
		Call:         8 * time.Millisecond,
		AuthSign:     3 * time.Millisecond,
		AuditAppend:  500 * time.Microsecond,
	}
}

// Validate rejects scenarios the simulator cannot honor.
func (s Scenario) Validate() error {
	if s.Homes < 2 {
		return fmt.Errorf("scenario %q: need at least 2 homes, have %d", s.Name, s.Homes)
	}
	if s.Topology != Mesh && s.Topology != Ring {
		return fmt.Errorf("scenario %q: unknown topology %q", s.Name, s.Topology)
	}
	if s.Topology == Ring && s.Degree < 1 {
		return fmt.Errorf("scenario %q: ring topology needs degree >= 1", s.Name)
	}
	if s.Duration <= 0 || s.PullInterval <= 0 {
		return fmt.Errorf("scenario %q: duration and pull interval must be positive", s.Name)
	}
	for _, p := range s.Partitions {
		if p.Fraction < 0 || p.Fraction > 1 {
			return fmt.Errorf("scenario %q: partition fraction %v out of [0,1]", s.Name, p.Fraction)
		}
	}
	if s.Crash != nil {
		if !s.Durable {
			return fmt.Errorf("scenario %q: a crash window requires durable registries", s.Name)
		}
		if s.Crash.Home < 0 || s.Crash.Home >= s.Homes {
			return fmt.Errorf("scenario %q: crash home %d out of range [0,%d)", s.Name, s.Crash.Home, s.Homes)
		}
		if s.Crash.At <= 0 || s.Crash.Down <= 0 || s.Crash.At+s.Crash.Down >= s.Duration {
			return fmt.Errorf("scenario %q: crash window [%v,+%v) must fall inside the run", s.Name, s.Crash.At, s.Crash.Down)
		}
	}
	if s.Replicas < 0 {
		return fmt.Errorf("scenario %q: negative replica count %d", s.Name, s.Replicas)
	}
	if s.Replicas > 0 {
		if !s.Durable {
			return fmt.Errorf("scenario %q: a replica set requires durable registries", s.Name)
		}
		if s.Auth {
			return fmt.Errorf("scenario %q: replica sets run open in the simulation (the set members share home 0's identity)", s.Name)
		}
		if s.Crash != nil && s.Crash.Home != 0 {
			return fmt.Errorf("scenario %q: the replica set fronts home 0; a crash must kill home 0, not %d", s.Name, s.Crash.Home)
		}
	}
	return nil
}

// Presets returns the named scenario library. Each preset fixes every
// parameter except Homes, which callers scale.
func Presets() map[string]Scenario {
	return map[string]Scenario{
		"churn":            Churn(64),
		"propagation":      Propagation(32),
		"secure":           Secure(32),
		"crash-recovery":   CrashRecovery(16),
		"replica-failover": ReplicaFailover(16),
	}
}

// Churn is the registry-stress preset: bounded-degree ring, heavy
// register/expire traffic, periodic home flaps and one partition wave.
// It feeds the shard-uniformity hypothesis.
func Churn(homes int) Scenario {
	return Scenario{
		Name:            "churn",
		Homes:           homes,
		Topology:        Ring,
		Degree:          4,
		Duration:        60 * time.Second,
		PullInterval:    2 * time.Second,
		SweepInterval:   5 * time.Second,
		ServicesPerHome: 4,
		RegisterRate:    0.5,
		ExpireRate:      0.4,
		CallRate:        0.2,
		ServiceTTL:      10 * time.Minute,
		FlapInterval:    10 * time.Second,
		Partitions: []PartitionWindow{
			{Start: 25 * time.Second, Duration: 10 * time.Second, Fraction: 0.25},
		},
		Costs: DefaultCosts(),
	}
}

// Propagation is the fan-out stress preset: full mesh, moderate
// registration traffic, no failures — the clean signal for locating the
// cross-home propagation knee as Homes scales.
func Propagation(homes int) Scenario {
	return Scenario{
		Name:            "propagation",
		Homes:           homes,
		Topology:        Mesh,
		Duration:        30 * time.Second,
		PullInterval:    1 * time.Second,
		SweepInterval:   10 * time.Second,
		ServicesPerHome: 2,
		RegisterRate:    0.2,
		ExpireRate:      0.05,
		CallRate:        0.1,
		ServiceTTL:      10 * time.Minute,
		Costs:           DefaultCosts(),
	}
}

// CrashRecovery is the durability-stress preset: churn-grade register
// and expiry traffic over durable registries, with one home killed
// without ceremony mid-run and restarted from its data directory. It
// feeds the crash-recovery hypothesis: acknowledged registrations
// survive, sequence numbers stay monotone, and the home's importers
// resume from their cursors without a single full-snapshot resync.
// Flaps and partitions are off so the only outage is the kill.
func CrashRecovery(homes int) Scenario {
	s := Churn(homes)
	s.Name = "crash-recovery"
	s.Durable = true
	s.SnapshotEvery = 64
	s.FlapInterval = 0
	s.Partitions = nil
	s.Crash = &CrashWindow{Home: 0, At: 20 * time.Second, Down: 5 * time.Second}
	return s
}

// ReplicaFailover is the leader-kill preset: churn-grade traffic with
// home 0's registry behind a two-replica set, a steady lookup stream
// riding the set's resolver, and the leader killed without ceremony
// mid-run. It feeds the replica-failover hypothesis: a replica promotes
// deterministically, no acknowledged registration is lost (the deposed
// leader hands unreplicated writes back on rejoin), importers re-pin to
// the survivor without a resync, and read latency through the failover
// window stays within 2x of steady state.
func ReplicaFailover(homes int) Scenario {
	s := Churn(homes)
	s.Name = "replica-failover"
	s.Durable = true
	s.SnapshotEvery = 64
	s.FlapInterval = 0
	s.Partitions = nil
	s.Replicas = 2
	s.ReadRate = 5
	s.Crash = &CrashWindow{Home: 0, At: 20 * time.Second, Down: 10 * time.Second}
	s.Costs.Read = 4 * time.Millisecond
	s.Costs.Redial = 2 * time.Millisecond
	return s
}

// Secure is Propagation with the security and audit planes armed:
// per-home identities, mutual signing on every pull, hash-chained audit
// appends on every registry operation. Paired with Propagation it
// isolates the auth+audit overhead at scale.
func Secure(homes int) Scenario {
	s := Propagation(homes)
	s.Name = "secure"
	s.Auth = true
	s.Audit = true
	return s
}
