package neighborhood

import (
	"math"
	"sort"
)

// Summary is the distribution digest of one latency series, in virtual
// milliseconds. Values are rounded to microsecond precision so findings
// marshal to stable, readable JSON.
type Summary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Mean  float64 `json:"mean_ms"`
	Std   float64 `json:"std_ms"`
	Max   float64 `json:"max_ms"`
}

// Result is the deterministic outcome of one (scenario, seed) run.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Homes    int    `json:"homes"`

	// Propagation is the register→remote-visibility latency across all
	// (service, importer) pairs; Call is cross-home invocation latency.
	Propagation Summary `json:"propagation"`
	Call        Summary `json:"call"`

	Pulls         int64 `json:"pulls"`
	PullErrors    int64 `json:"pull_errors"`
	DeltasApplied int64 `json:"deltas_applied"`
	Registers     int64 `json:"registers"`
	Expires       int64 `json:"expires"`
	Calls         int64 `json:"calls"`
	CallMisses    int64 `json:"call_misses"`
	// DroppedSamples counts registrations withdrawn before any peer saw
	// them — churn outrunning the pull cadence.
	DroppedSamples int64 `json:"dropped_samples"`
	SignedOps      int64 `json:"signed_ops,omitempty"`
	AuditRecords   int64 `json:"audit_records,omitempty"`

	// Crash-recovery observations (Durable scenarios with a CrashWindow).
	// Recovery is the virtual latency from a crashed home's restart to
	// each importer's next completed pull — how long the neighborhood
	// took to catch back up.
	Crashes int64 `json:"crashes,omitempty"`
	// RecoveredEntries/ReplayedRecords come from the restarted registry's
	// boot recovery stats.
	RecoveredEntries int64 `json:"recovered_entries,omitempty"`
	ReplayedRecords  int64 `json:"replayed_records,omitempty"`
	// MissingAfterRestart counts acknowledged registrations the restarted
	// home could no longer resolve — durable recovery demands zero.
	MissingAfterRestart int64 `json:"missing_after_restart,omitempty"`
	// ImporterResyncs sums full-snapshot resyncs across every import link
	// at the end of the run; cursor-transparent recovery demands zero.
	ImporterResyncs int64    `json:"importer_resyncs,omitempty"`
	Recovery        *Summary `json:"recovery,omitempty"`

	// Replica-set failover observations (scenarios with Replicas > 0).
	// ReadSteady/ReadFailover split the read stream's latency at the
	// crash window; Promotions counts election wins; HandedBack counts
	// acknowledged writes the deposed leader re-registered on rejoin;
	// AckedLost counts acknowledged registrations the acting leader
	// could not resolve at the end of the run — the zero-loss contract.
	ReadSteady    *Summary `json:"read_steady,omitempty"`
	ReadFailover  *Summary `json:"read_failover,omitempty"`
	Promotions    int64    `json:"promotions,omitempty"`
	HandedBack    int64    `json:"handed_back,omitempty"`
	WriteFailures int64    `json:"write_failures,omitempty"`
	ReadErrors    int64    `json:"read_errors,omitempty"`
	AckedLost     int64    `json:"acked_lost,omitempty"`

	// ShardCVMean/Max summarize per-registry shard-load imbalance: the
	// coefficient of variation of the 16 shard write counters, averaged
	// (and maxed) across homes. 0 is perfectly uniform.
	ShardCVMean float64 `json:"shard_cv_mean"`
	ShardCVMax  float64 `json:"shard_cv_max"`
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// summarize digests a latency series. The input is not mutated.
func summarize(ms []float64) Summary {
	if len(ms) == 0 {
		return Summary{}
	}
	s := make([]float64, len(ms))
	copy(s, ms)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(s)))
	return Summary{
		Count: len(s),
		P50:   round3(percentile(s, 0.50)),
		P90:   round3(percentile(s, 0.90)),
		P99:   round3(percentile(s, 0.99)),
		Mean:  round3(mean),
		Std:   round3(std),
		Max:   round3(s[len(s)-1]),
	}
}

// percentile reads the nearest-rank percentile from a sorted series.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// cv is the coefficient of variation of a counter vector.
func cv(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, v := range loads {
		sum += float64(v)
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, v := range loads {
		d := float64(v) - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(loads))) / mean
}

func (s *Sim) result() Result {
	r := Result{
		Scenario:       s.scn.Name,
		Seed:           s.seed,
		Homes:          s.scn.Homes,
		Propagation:    summarize(s.m.propagationMS),
		Call:           summarize(s.m.callMS),
		Pulls:          s.m.pulls,
		PullErrors:     s.m.pullErrors,
		DeltasApplied:  s.m.deltasApplied,
		Registers:      s.m.registers,
		Expires:        s.m.expires,
		Calls:          s.m.calls,
		CallMisses:     s.m.callMisses,
		DroppedSamples: s.m.dropped,
		SignedOps:      s.m.signedOps,

		Crashes:             s.m.crashes,
		RecoveredEntries:    s.m.recoveredEntries,
		ReplayedRecords:     s.m.replayedRecords,
		MissingAfterRestart: s.m.missingAfterRestart,
	}
	if s.m.crashes > 0 {
		rs := summarize(s.m.recoveryMS)
		r.Recovery = &rs
	}
	if s.repl != nil {
		steady, failover := summarize(s.m.readSteadyMS), summarize(s.m.readFailoverMS)
		r.ReadSteady, r.ReadFailover = &steady, &failover
		r.Promotions = s.m.promotions
		r.HandedBack = s.m.handedBack
		r.WriteFailures = s.m.writeFailures
		r.ReadErrors = s.m.readErrors
		r.AckedLost = s.m.ackedLost
	}
	var cvSum, cvMax float64
	for _, h := range s.homes {
		c := cv(h.reg.ShardLoads())
		cvSum += c
		if c > cvMax {
			cvMax = c
		}
		for _, il := range h.links {
			r.ImporterResyncs += int64(il.link.Status().Resyncs)
		}
		if h.log != nil {
			r.AuditRecords += int64(h.log.Seq())
		}
	}
	r.ShardCVMean = round3(cvSum / float64(len(s.homes)))
	r.ShardCVMax = round3(cvMax)
	return r
}

// RunSeeds runs the scenario once per seed and returns the results in
// seed order.
func RunSeeds(scn Scenario, seeds []int64) ([]Result, error) {
	results := make([]Result, 0, len(seeds))
	for _, seed := range seeds {
		sim, err := NewSim(scn, seed)
		if err != nil {
			return nil, err
		}
		r := sim.Run()
		sim.Close()
		results = append(results, r)
	}
	return results, nil
}
