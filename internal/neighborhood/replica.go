// Replica-set machinery for the simulation: when Scenario.Replicas is
// set, home 0's registry gains N standby members — each a real durable
// registry on its own memnet host, kept in sync by the repl watch
// protocol through a coordination node the event loop drives manually.
// Writes to home 0 route through a leader-following resolver client, a
// read stream probes the set through a second resolver, and a
// CrashWindow on home 0 becomes a leader kill: the replicas elect a
// successor deterministically, the importers' links fail over through
// their own endpoint lists, and the restarted old leader rejoins as a
// replica, handing back any acknowledged write only its WAL knew.
package neighborhood

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/replica"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
)

// station is any holder of a serial-server horizon the queueing model
// can charge work to — a home or a replica-set member.
type station interface {
	serve(at time.Time, cost time.Duration) time.Time
}

// replicaMember is one standby member of home 0's replica set. Its
// export face answers under home 0's name so importer links that fail
// over to it keep filing imports under the same scoped keys, and its
// registry preserves the leader's sequence numbers so their cursors
// keep working.
type replicaMember struct {
	name    string
	reg     *uddi.Server
	srv     *vsr.Server
	peering *peer.Peering
	node    *replica.Node
	dataDir string

	busyUntil time.Time
}

func (m *replicaMember) serve(at time.Time, cost time.Duration) time.Time {
	if m.busyUntil.Before(at) {
		m.busyUntil = at
	}
	m.busyUntil = m.busyUntil.Add(cost)
	return m.busyUntil
}

// replicaSet is the sim-side state of the replicated home: the ordered
// endpoint list (home 0 first — the election tie-break order), the
// standby members, home 0's own coordination node (rebuilt when the
// home restarts), and the two resolver clients the workload rides.
type replicaSet struct {
	set      []string // /uddi endpoints, home 0 first
	members  []*replicaMember
	lead     *replica.Node
	stations map[string]station

	writes *uddi.Client
	reads  *uddi.Client
	// rng draws the read stream; separate from the per-home workload
	// rngs so arming reads cannot shift any other schedule.
	rng *rand.Rand
}

func (s *Sim) replicated(h *home) bool { return s.repl != nil && h.idx == 0 }

// nodeConfig is the shared shape of every coordination node in the set:
// virtual clock, memnet transport, and a millisecond poll so an empty
// feed round cannot stall the single-threaded event loop.
func (s *Sim) nodeConfig(self string, reg *uddi.Server, replicaOf string) replica.Config {
	return replica.Config{
		Self:        self,
		Set:         s.repl.set,
		Registry:    reg,
		ReplicaOf:   replicaOf,
		HTTP:        s.net.Client(),
		Clock:       s.clock,
		PollTimeout: time.Millisecond,
		RetryDelay:  time.Millisecond,
	}
}

// buildReplicas constructs the standby members and the set's clients.
// Runs after home 0 exists and before peer links form, so importer
// links can include the members in their endpoint lists.
func (s *Sim) buildReplicas() error {
	h0 := s.homes[0]
	set := []string{"http://" + h0.name + "/uddi"}
	for i := 1; i <= s.scn.Replicas; i++ {
		set = append(set, fmt.Sprintf("http://%s-r%d/uddi", h0.name, i))
	}
	rs := &replicaSet{
		set:      set,
		stations: map[string]station{set[0]: h0},
		rng:      rand.New(rand.NewSource(s.seed<<16 ^ 0x7ead)),
	}
	s.repl = rs

	for i := 1; i <= s.scn.Replicas; i++ {
		name := fmt.Sprintf("%s-r%d", h0.name, i)
		m := &replicaMember{name: name, dataDir: filepath.Join(s.dataRoot, name), busyUntil: simEpoch}
		reg, err := uddi.NewManualDurableServer(uddi.DurabilityOptions{
			Dir:           m.dataDir,
			Fsync:         uddi.FsyncOff,
			SnapshotEvery: s.scn.SnapshotEvery,
			Clock:         s.clock.Now,
		})
		if err != nil {
			return fmt.Errorf("replica registry %s: %w", name, err)
		}
		m.reg = reg
		// The member serves home 0's registry, so its faces answer under
		// home 0's name: importers that fail over here must see the same
		// exporter they were peered with.
		m.srv = vsr.NewDetachedServer(h0.name, reg, nil)
		p, err := peer.New(h0.name, reg, nil)
		if err != nil {
			return fmt.Errorf("replica peering %s: %w", name, err)
		}
		p.SetClock(s.clock)
		p.SetTransport(s.net)
		p.SetImportTTL(s.scn.Duration + time.Hour)
		m.peering = p
		m.srv.MountPeer(p.ExportHandler())
		node, err := replica.New(s.nodeConfig(set[i], reg, set[0]))
		if err != nil {
			return fmt.Errorf("replica node %s: %w", name, err)
		}
		m.node = node
		s.net.Handle(name, m.srv.Handler())
		rs.stations[set[i]] = m
		rs.members = append(rs.members, m)
	}

	lead, err := replica.New(s.nodeConfig(set[0], h0.reg, ""))
	if err != nil {
		return fmt.Errorf("leader node %s: %w", h0.name, err)
	}
	rs.lead = lead
	rs.writes = &uddi.Client{HTTP: s.net.Client(), Resolver: transport.NewResolver(set...)}
	rs.reads = &uddi.Client{HTTP: s.net.Client(), Resolver: transport.NewResolver(set...)}
	return nil
}

// peerURLs is the endpoint list an importer link to exp should carry:
// just the home, or — for the replicated home — the home followed by
// its standbys, so the link's own resolver can fail over.
func (s *Sim) peerURLs(exp *home) []string {
	urls := []string{"http://" + exp.name + "/peer"}
	if s.replicated(exp) {
		for _, m := range s.repl.members {
			urls = append(urls, "http://"+m.name+"/peer")
		}
	}
	return urls
}

// bootstrapReplicas runs the role decision before the clock starts:
// home 0 assumes leadership of epoch 1, the members join it and take
// their initial state transfer.
func (s *Sim) bootstrapReplicas() {
	ctx := context.Background()
	if err := s.repl.lead.Bootstrap(ctx); err != nil {
		panic(fmt.Sprintf("sim: leader bootstrap: %v", err))
	}
	for _, m := range s.repl.members {
		if err := m.node.Bootstrap(ctx); err != nil {
			panic(fmt.Sprintf("sim: replica bootstrap %s: %v", m.name, err))
		}
	}
}

// warmupReplicas converges the members onto the seeded registry so the
// measured run starts from a synchronized set, mirroring the warm-up
// pull round the peer links take.
func (s *Sim) warmupReplicas() {
	for _, m := range s.repl.members {
		if _, err := m.node.PullOnce(context.Background()); err != nil {
			panic(fmt.Sprintf("sim: replica warm-up %s: %v", m.name, err))
		}
	}
}

func (s *Sim) stationFor(endpoint string) station {
	if st, ok := s.repl.stations[endpoint]; ok {
		return st
	}
	return s.homes[0]
}

func (s *Sim) stationUp(endpoint string) bool {
	if endpoint == s.repl.set[0] {
		return !s.homes[0].down
	}
	return true // standby members never die in this scenario
}

// leaderStation is the member currently acting as leader, nil during
// the gap between a kill and the election that fills it.
func (s *Sim) leaderStation() station {
	h0 := s.homes[0]
	if !h0.down && s.repl.lead != nil && s.repl.lead.IsLeader() {
		return h0
	}
	for _, m := range s.repl.members {
		if m.node.IsLeader() {
			return m
		}
	}
	return nil
}

// leaderRegistry is the registry acknowledged writes live in right now.
func (s *Sim) leaderRegistry() *uddi.Server {
	switch t := s.leaderStation().(type) {
	case *home:
		return t.reg
	case *replicaMember:
		return t.reg
	}
	return s.homes[0].reg
}

// replicaTick is a member's feed cadence, staggered like pull ticks.
func (s *Sim) replicaTick(m *replicaMember) {
	s.replicaFeed(m.node, m, s.clock.Now())
	s.schedule(s.clock.Now().Add(s.scn.PullInterval), func() { s.replicaTick(m) })
}

// leadTick drives home 0's own node: a no-op while it leads, a feed
// round once it has rejoined as a replica, skipped while it is dead.
func (s *Sim) leadTick() {
	h0 := s.homes[0]
	if !h0.down && s.repl.lead != nil {
		s.replicaFeed(s.repl.lead, h0, s.clock.Now())
	}
	s.schedule(s.clock.Now().Add(s.scn.PullInterval), s.leadTick)
}

// replicaFeed runs one feed round for a follower and charges both sides
// of it. A broken feed — the leader is dead — costs the probe and
// triggers one election round; the highest-sequence member promotes and
// everyone else re-points at it on their next tick.
func (s *Sim) replicaFeed(n *replica.Node, st station, now time.Time) {
	if n.IsLeader() {
		return
	}
	applied, err := n.PullOnce(context.Background())
	if err != nil {
		st.serve(now, s.scn.Costs.Redial)
		if won, eerr := n.ElectOnce(context.Background()); eerr == nil && won {
			s.m.promotions++
		}
		return
	}
	if ls := s.leaderStation(); ls != nil && ls != st {
		ls.serve(now, s.scn.Costs.PullExporter)
	}
	st.serve(now, s.scn.Costs.PullImporter+time.Duration(applied)*s.scn.Costs.PerDelta)
}

// inFailoverWindow classifies a sample against the crash schedule: the
// span between the kill and the old leader's restart is the failover
// window the read-availability criterion bounds.
func (s *Sim) inFailoverWindow(now time.Time) bool {
	c := s.scn.Crash
	if c == nil {
		return false
	}
	return !now.Before(simEpoch.Add(c.At)) && now.Before(simEpoch.Add(c.At+c.Down))
}

// readEvent issues one lookup against the replica set through the read
// resolver. The wire call supplies correctness (and moves the resolver
// off dead endpoints exactly as a real client would); the queueing
// model supplies the latency: one redial per dead endpoint the resolver
// must step over, then the read served on the answering member.
func (s *Sim) readEvent() {
	defer s.after(s.repl.rng, s.scn.ReadRate, s.readEvent)
	h0 := s.homes[0]
	if len(h0.live) == 0 {
		return
	}
	svc := h0.live[s.repl.rng.Intn(len(h0.live))]
	now := s.clock.Now()

	// Mirror the resolver's rotation to find the answering member and
	// the dead endpoints scanned on the way — deterministically, before
	// the real call advances the cursor.
	res := s.repl.reads.Resolver
	eps := res.Endpoints()
	start := 0
	for i, ep := range eps {
		if ep == res.Current() {
			start = i
			break
		}
	}
	var penalty time.Duration
	var st station
	for k := 0; k < len(eps); k++ {
		ep := eps[(start+k)%len(eps)]
		if s.stationUp(ep) {
			st = s.stationFor(ep)
			break
		}
		penalty += s.scn.Costs.Redial
	}

	if _, _, err := s.repl.reads.Get(context.Background(), svc.key); err != nil || st == nil {
		s.m.readErrors++
		return
	}
	done := st.serve(now.Add(penalty), s.opCost(s.scn.Costs.Read))
	ms := float64(done.Sub(now)) / float64(time.Millisecond)
	if s.inFailoverWindow(now) {
		s.m.readFailoverMS = append(s.m.readFailoverMS, ms)
	} else {
		s.m.readSteadyMS = append(s.m.readSteadyMS, ms)
	}
}

// rejoinLeader runs after the crashed home 0 recovered its WAL: a fresh
// coordination node probes the set, finds the promoted member at a
// higher epoch, and rejoins as a replica — handing back acknowledged
// writes that never replicated, then re-grounding from the new leader's
// state. One feed round after the attach pulls the handed-back writes
// home, so the missing-after-restart check sees the converged registry.
func (s *Sim) rejoinLeader(h *home) {
	node, err := replica.New(s.nodeConfig(s.repl.set[0], h.reg, ""))
	if err != nil {
		panic(fmt.Sprintf("sim: rejoin node %s: %v", h.name, err))
	}
	s.repl.lead = node
	if err := node.Bootstrap(context.Background()); err != nil {
		panic(fmt.Sprintf("sim: rejoin %s: %v", h.name, err))
	}
	if !node.IsLeader() {
		// Benign when there is nothing new: the attach already converged.
		_, _ = node.PullOnce(context.Background())
	}
	s.m.handedBack += int64(node.Status().HandedBack)
}

// settleAcked audits the zero-loss contract at the end of the run:
// every registration the replicated home acknowledged and never
// withdrew must resolve in the acting leader's registry.
func (s *Sim) settleAcked() {
	reg := s.leaderRegistry()
	for _, svc := range s.homes[0].live {
		if _, ok := reg.Get(svc.key); !ok {
			s.m.ackedLost++
		}
	}
}

func (s *Sim) closeReplicas() {
	if s.repl == nil {
		return
	}
	for _, m := range s.repl.members {
		if m.peering != nil {
			m.peering.Close()
		}
		if m.srv != nil {
			m.srv.Close()
		}
		if m.reg != nil {
			m.reg.Close()
		}
	}
}
