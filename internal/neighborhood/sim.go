package neighborhood

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"homeconnect/internal/core/audit"
	"homeconnect/internal/core/identity"
	"homeconnect/internal/core/peer"
	"homeconnect/internal/core/vsr"
	"homeconnect/internal/service"
	"homeconnect/internal/transport"
	"homeconnect/internal/uddi"
	"homeconnect/internal/vclock"
)

// simEpoch is the fixed virtual time every run starts at. A constant
// epoch keeps entry stamps, journal ages, and lease arithmetic identical
// across runs — wall clock must never leak into a simulation.
var simEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback on the virtual timeline. seq breaks
// same-instant ties in scheduling order, which the single-threaded loop
// makes deterministic.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// home is one virtual residence: a manual registry behind detached VSR
// faces, a peering with manual import links, and a serial-server
// queueing horizon.
type home struct {
	idx  int
	name string

	reg     *uddi.Server
	srv     *vsr.Server
	peering *peer.Peering
	auth    *identity.Auth
	log     *audit.Log

	// links are this home's import links in peer-index order — a slice,
	// not a map, so iteration order can never drift between runs.
	links []*importLink

	// importers are the links that replicate FROM this home, so a fresh
	// export can file its propagation samples without scanning the
	// neighborhood.
	importers []*importLink

	// busyUntil is the serial-server horizon: work arriving at t starts
	// at max(t, busyUntil).
	busyUntil time.Time

	rng    *rand.Rand
	svcSeq int
	// live holds (localKey, serviceID) for services this home currently
	// exports.
	live []liveService

	partitioned bool
	// down marks a crashed home: unlike a partition the process is gone,
	// so no workload runs until the restart rebuilds it from dataDir.
	down bool
	// dataDir is this home's durable registry directory ("" when the
	// scenario runs in memory).
	dataDir string
}

type liveService struct {
	key string
	id  string
}

type importLink struct {
	from *home // exporter
	to   *home // importer
	link *peer.Link
	// pending are propagation samples exported by from that to has not
	// observed yet, in export order.
	pending []sample
	// awaitRecovery, when set, is the virtual instant the exporter came
	// back from a crash; the next successful pull closes the recovery
	// latency sample.
	awaitRecovery time.Time
}

type sample struct {
	scoped string // key of the import in the importer's registry
	src    string // key of the original in the exporter's registry
	// readyAt is when the register completed in the queueing model; a
	// pull observes the sample only once the model says it exists.
	readyAt time.Time
}

// serve runs cost on the home's serial server starting no earlier than
// at, returning the completion time.
func (h *home) serve(at time.Time, cost time.Duration) time.Time {
	if h.busyUntil.Before(at) {
		h.busyUntil = at
	}
	h.busyUntil = h.busyUntil.Add(cost)
	return h.busyUntil
}

// Sim is one seeded run of a scenario.
type Sim struct {
	scn   Scenario
	seed  int64
	clock *vclock.Virtual
	net   *transport.MemNet
	rng   *rand.Rand // scenario-level draws: flaps, partitions
	homes []*home
	// repl is the replica set fronting home 0 when the scenario arms one.
	repl *replicaSet
	// dataRoot holds the per-home durable registry directories for a
	// Durable scenario; removed on Close.
	dataRoot string

	events eventHeap
	seq    uint64
	end    time.Time

	m counters
}

// counters accumulates raw observations during the run.
type counters struct {
	propagationMS []float64
	callMS        []float64
	recoveryMS    []float64

	pulls         int64
	pullErrors    int64
	deltasApplied int64
	registers     int64
	expires       int64
	calls         int64
	callMisses    int64
	signedOps     int64
	dropped       int64

	crashes             int64
	recoveredEntries    int64
	replayedRecords     int64
	missingAfterRestart int64

	readSteadyMS   []float64
	readFailoverMS []float64
	promotions     int64
	handedBack     int64
	writeFailures  int64
	readErrors     int64
	ackedLost      int64
}

// NewSim builds the neighborhood but does not start the clock. Homes
// are constructed from the same prologue HomeSpec.Build applies —
// identity and trust before traffic, audit before the first operation —
// but on detached servers: no listener, no janitor, no link goroutines.
func NewSim(scn Scenario, seed int64) (*Sim, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		scn:   scn,
		seed:  seed,
		clock: vclock.NewVirtual(simEpoch),
		net:   transport.NewMemNet(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	s.end = simEpoch.Add(scn.Duration)

	if scn.Durable {
		root, err := os.MkdirTemp("", "nbsim-durable-*")
		if err != nil {
			return nil, fmt.Errorf("durable data root: %w", err)
		}
		s.dataRoot = root
	}

	// Identities first, so every home can trust its peers before any
	// face comes up.
	ids := make([]*identity.Identity, scn.Homes)
	if scn.Auth {
		for i := range ids {
			id, err := identity.Generate(homeName(i))
			if err != nil {
				return nil, fmt.Errorf("identity for %s: %w", homeName(i), err)
			}
			ids[i] = id
		}
	}

	for i := 0; i < scn.Homes; i++ {
		h, err := s.buildHome(i, ids)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.homes = append(s.homes, h)
	}

	// The replica set fronts home 0 before links form, so importer links
	// to it carry the whole endpoint list.
	if scn.Replicas > 0 {
		if err := s.buildReplicas(); err != nil {
			s.Close()
			return nil, err
		}
	}

	// Peer links in deterministic (importer, exporter) order.
	for _, pair := range s.topologyPairs() {
		imp, exp := s.homes[pair[0]], s.homes[pair[1]]
		l, err := imp.peering.PeerManualSet(s.peerURLs(exp)...)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("peer %s -> %s: %w", imp.name, exp.name, err)
		}
		il := &importLink{from: exp, to: imp, link: l}
		imp.links = append(imp.links, il)
		exp.importers = append(exp.importers, il)
	}
	return s, nil
}

func homeName(i int) string { return fmt.Sprintf("home-%03d", i) }

func (s *Sim) buildHome(idx int, ids []*identity.Identity) (*home, error) {
	name := homeName(idx)
	h := &home{
		idx:       idx,
		name:      name,
		rng:       rand.New(rand.NewSource(s.seed<<16 ^ int64(idx+1))),
		busyUntil: simEpoch,
	}

	var a *identity.Auth
	if s.scn.Auth {
		a = identity.NewAuth(name)
		if err := a.SetIdentity(ids[idx]); err != nil {
			return nil, err
		}
		for j, id := range ids {
			if j == idx {
				continue
			}
			if err := a.Trust(homeName(j), id.PublicKey()); err != nil {
				return nil, err
			}
		}
	}
	h.auth = a

	if s.scn.Durable {
		h.dataDir = filepath.Join(s.dataRoot, name)
	}
	if s.scn.Audit {
		lg, err := audit.New(audit.Options{})
		if err != nil {
			return nil, err
		}
		h.log = lg
	}
	if err := s.bootHome(h); err != nil {
		return nil, err
	}
	return h, nil
}

// bootHome builds (or, after a crash, rebuilds) one home's process
// state: registry — recovered from dataDir when durable — detached VSR
// faces and the peering, and puts it on the network. Import links are
// wired separately: NewSim creates them once, restartHome re-creates
// them on the fresh peering.
func (s *Sim) bootHome(h *home) error {
	if h.dataDir != "" {
		reg, err := uddi.NewManualDurableServer(uddi.DurabilityOptions{
			Dir:           h.dataDir,
			Fsync:         uddi.FsyncOff,
			SnapshotEvery: s.scn.SnapshotEvery,
			Clock:         s.clock.Now,
		})
		if err != nil {
			return fmt.Errorf("durable registry for %s: %w", h.name, err)
		}
		h.reg = reg
	} else {
		h.reg = uddi.NewManualServer()
		h.reg.SetClock(s.clock.Now)
	}
	if h.log != nil {
		h.reg.SetAuditRecorder(audit.WithFace(h.log, "uddi", h.name))
	}

	h.srv = vsr.NewDetachedServer(h.name, h.reg, h.auth)
	p, err := peer.New(h.name, h.reg, h.auth)
	if err != nil {
		return err
	}
	p.SetClock(s.clock)
	p.SetTransport(s.net)
	p.SetImportTTL(s.scn.Duration + time.Hour)
	if h.log != nil {
		p.SetRecorder(audit.WithFace(h.log, "peer", h.name))
	}
	h.peering = p
	h.srv.MountPeer(p.ExportHandler())
	s.net.Handle(h.name, h.srv.Handler())
	return nil
}

// topologyPairs lists (importer, exporter) index pairs for the
// scenario's topology, in a fixed order.
func (s *Sim) topologyPairs() [][2]int {
	n := s.scn.Homes
	var pairs [][2]int
	switch s.scn.Topology {
	case Mesh:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
	case Ring:
		k := s.scn.Degree
		if k > n-1 {
			k = n - 1
		}
		for i := 0; i < n; i++ {
			for d := 1; d <= k; d++ {
				pairs = append(pairs, [2]int{i, (i + d) % n})
			}
		}
	}
	return pairs
}

func (s *Sim) schedule(at time.Time, fn func()) {
	if at.Before(s.clock.Now()) {
		at = s.clock.Now()
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// after schedules fn an exponential interarrival ahead for the given
// per-second rate, drawn from rng.
func (s *Sim) after(rng *rand.Rand, rate float64, fn func()) {
	if rate <= 0 {
		return
	}
	d := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	s.schedule(s.clock.Now().Add(d), fn)
}

// Run executes the scenario and returns its Result. It may be called
// once per Sim.
func (s *Sim) Run() Result {
	heap.Init(&s.events)

	// Role decisions before any write: home 0 takes epoch 1, the
	// standbys attach to it.
	if s.repl != nil {
		s.bootstrapReplicas()
	}

	// Seed registries before the clock moves, then take one pull round
	// so every home starts with a converged view.
	for _, h := range s.homes {
		for k := 0; k < s.scn.ServicesPerHome; k++ {
			s.exportService(h, simEpoch)
		}
	}
	for _, h := range s.homes {
		for _, il := range h.links {
			s.pullOnce(il, simEpoch)
		}
	}
	if s.repl != nil {
		s.warmupReplicas()
	}
	// The warm-up converged replicas, not metrics: samples observed at
	// the epoch measure setup, not steady state.
	s.m = counters{}

	// Workload generators.
	for _, h := range s.homes {
		h := h
		s.after(h.rng, s.scn.RegisterRate, func() { s.registerEvent(h) })
		s.after(h.rng, s.scn.ExpireRate, func() { s.expireEvent(h) })
		s.after(h.rng, s.scn.CallRate, func() { s.callEvent(h) })
	}
	// Pull cadence: stagger link start within the first interval so the
	// neighborhood does not pulse in lockstep.
	for _, h := range s.homes {
		for _, il := range h.links {
			il := il
			offset := time.Duration(h.rng.Int63n(int64(s.scn.PullInterval)))
			s.schedule(simEpoch.Add(offset), func() { s.pullTick(il) })
		}
	}
	// Replica-set cadences: the members' feed ticks staggered inside the
	// first interval, home 0's own node (a no-op while it leads), and
	// the read stream against the set.
	if s.repl != nil {
		for i, m := range s.repl.members {
			m := m
			offset := s.scn.PullInterval * time.Duration(i+1) / time.Duration(len(s.repl.members)+1)
			s.schedule(simEpoch.Add(offset), func() { s.replicaTick(m) })
		}
		s.schedule(simEpoch.Add(s.scn.PullInterval), s.leadTick)
		if s.scn.ReadRate > 0 {
			s.after(s.repl.rng, s.scn.ReadRate, s.readEvent)
		}
	}
	// Sweeps.
	if s.scn.SweepInterval > 0 {
		s.schedule(simEpoch.Add(s.scn.SweepInterval), s.sweepTick)
	}
	// Flaps.
	if s.scn.FlapInterval > 0 {
		s.schedule(simEpoch.Add(s.scn.FlapInterval), s.flapTick)
	}
	// Partitions.
	for _, w := range s.scn.Partitions {
		w := w
		s.schedule(simEpoch.Add(w.Start), func() { s.partition(w) })
	}
	// Kill-restart.
	if c := s.scn.Crash; c != nil {
		h := s.homes[c.Home]
		s.schedule(simEpoch.Add(c.At), func() { s.crashHome(h) })
		s.schedule(simEpoch.Add(c.At+c.Down), func() { s.restartHome(h) })
	}

	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.at.After(s.end) {
			break
		}
		s.clock.AdvanceTo(ev.at)
		ev.fn()
	}
	s.clock.AdvanceTo(s.end)
	if s.repl != nil {
		s.settleAcked()
	}
	return s.result()
}

// exportService publishes a fresh service on h, paying the register
// cost, and files a propagation sample with every importer of h.
func (s *Sim) exportService(h *home, now time.Time) {
	h.svcSeq++
	id := fmt.Sprintf("sim:%s-dev-%d", h.name, h.svcSeq)
	desc := service.Description{
		ID: id, Name: id, Middleware: "sim",
		Interface: service.Interface{Name: "Dev", Operations: []service.Operation{
			{Name: "Ping", Output: service.KindVoid},
		}},
	}
	entry, err := vsr.EntryFor(desc, "http://"+h.name+"/soap")
	if err != nil {
		panic(fmt.Sprintf("sim: EntryFor(%s): %v", id, err))
	}
	var key string
	var done time.Time
	if s.replicated(h) {
		// The replicated home writes over the wire through the leader-
		// following resolver — the only path that stays correct once the
		// leadership has moved.
		key, err = s.repl.writes.Save(context.Background(), entry, s.scn.ServiceTTL)
		if err != nil {
			s.m.writeFailures++
			return
		}
		done = s.stationFor(s.repl.writes.Resolver.Current()).serve(now, s.opCost(s.scn.Costs.Register))
	} else {
		key = h.reg.Save(entry, s.scn.ServiceTTL)
		done = h.serve(now, s.opCost(s.scn.Costs.Register))
	}
	h.live = append(h.live, liveService{key: key, id: id})
	scoped := "uuid:svc-" + h.name + "/" + id
	for _, il := range h.importers {
		il.pending = append(il.pending, sample{scoped: scoped, src: key, readyAt: done})
	}
	s.m.registers++
}

// opCost decorates a base cost with the security-plane surcharges the
// scenario arms.
func (s *Sim) opCost(base time.Duration) time.Duration {
	c := base
	if s.scn.Auth {
		c += s.scn.Costs.AuthSign
		s.m.signedOps++
	}
	if s.scn.Audit {
		c += s.scn.Costs.AuditAppend
	}
	return c
}

func (s *Sim) registerEvent(h *home) {
	if !h.down {
		s.exportService(h, s.clock.Now())
	}
	s.after(h.rng, s.scn.RegisterRate, func() { s.registerEvent(h) })
}

func (s *Sim) expireEvent(h *home) {
	defer s.after(h.rng, s.scn.ExpireRate, func() { s.expireEvent(h) })
	if h.down || len(h.live) == 0 {
		return
	}
	i := h.rng.Intn(len(h.live))
	svc := h.live[i]
	var st station = h
	if s.replicated(h) {
		if err := s.repl.writes.Delete(context.Background(), svc.key); err != nil {
			// The lease stands: the withdrawal never happened.
			s.m.writeFailures++
			return
		}
		st = s.stationFor(s.repl.writes.Resolver.Current())
	} else {
		h.reg.Delete(svc.key)
	}
	h.live[i] = h.live[len(h.live)-1]
	h.live = h.live[:len(h.live)-1]
	st.serve(s.clock.Now(), s.opCost(s.scn.Costs.Register))
	s.m.expires++
}

// callEvent invokes a random imported service: resolve against the
// local registry replica, then pay the call cost on both sides.
func (s *Sim) callEvent(h *home) {
	defer s.after(h.rng, s.scn.CallRate, func() { s.callEvent(h) })
	if h.down {
		return
	}
	s.m.calls++
	if len(h.links) == 0 {
		s.m.callMisses++
		return
	}
	il := h.links[h.rng.Intn(len(h.links))]
	target := il.from
	if target.down || len(target.live) == 0 {
		s.m.callMisses++
		return
	}
	svc := target.live[target.rng.Intn(len(target.live))]
	if _, ok := h.reg.Get("uuid:svc-" + target.name + "/" + svc.id); !ok {
		// Not replicated yet (or peer partitioned): a real caller gets
		// a lookup miss, not latency.
		s.m.callMisses++
		return
	}
	now := s.clock.Now()
	afterCaller := h.serve(now, s.opCost(s.scn.Costs.Call))
	done := target.serve(afterCaller, s.opCost(s.scn.Costs.Call))
	s.m.callMS = append(s.m.callMS, float64(done.Sub(now))/float64(time.Millisecond))
}

func (s *Sim) pullTick(il *importLink) {
	s.pullOnce(il, s.clock.Now())
	s.schedule(s.clock.Now().Add(s.scn.PullInterval), func() { s.pullTick(il) })
}

// pullOnce drives one anti-entropy pull over the wire and charges both
// sides of it in the queueing model.
func (s *Sim) pullOnce(il *importLink, now time.Time) {
	if il.to.partitioned || il.to.down {
		return // importer is off the network (or dead); its puller is too
	}
	s.m.pulls++
	before := il.link.Status().Applied
	err := il.link.Pull(context.Background())
	applied := int64(il.link.Status().Applied - before)
	s.m.deltasApplied += applied

	if err != nil {
		s.m.pullErrors++
		il.to.serve(now, s.scn.Costs.PullImporter)
		return
	}
	// A pull from the replicated home may have been served by whichever
	// member currently leads; charge the exporter side there.
	var exp station = il.from
	if s.replicated(il.from) {
		if ls := s.leaderStation(); ls != nil {
			exp = ls
		}
	}
	exp.serve(now, s.opCost(s.scn.Costs.PullExporter))
	cost := s.opCost(s.scn.Costs.PullImporter) + time.Duration(applied)*s.scn.Costs.PerDelta
	done := il.to.serve(now, cost)

	// First successful pull after the exporter's restart: the importer is
	// caught up again — close the crash-recovery latency sample.
	if !il.awaitRecovery.IsZero() {
		s.m.recoveryMS = append(s.m.recoveryMS,
			float64(done.Sub(il.awaitRecovery))/float64(time.Millisecond))
		il.awaitRecovery = time.Time{}
	}

	// Settle propagation samples this pull made visible.
	kept := il.pending[:0]
	for _, sm := range il.pending {
		if sm.readyAt.After(now) {
			kept = append(kept, sm)
			continue
		}
		if _, ok := il.to.reg.Get(sm.scoped); ok {
			s.m.propagationMS = append(s.m.propagationMS,
				float64(done.Sub(sm.readyAt))/float64(time.Millisecond))
		} else if _, live := s.sourceRegistry(il.from).Get(sm.src); !live {
			// Withdrawn at the source before it ever replicated.
			s.m.dropped++
		} else {
			kept = append(kept, sm)
		}
	}
	il.pending = kept
}

// sourceRegistry is where an exporter's truth lives: its own registry,
// or — for the replicated home — the acting leader's, which stays
// queryable while the home itself is dead.
func (s *Sim) sourceRegistry(h *home) *uddi.Server {
	if s.replicated(h) {
		return s.leaderRegistry()
	}
	return h.reg
}

func (s *Sim) sweepTick() {
	for _, h := range s.homes {
		if h.down {
			continue // no janitor runs in a dead process
		}
		h.reg.Sweep()
	}
	if s.repl != nil {
		// A member's sweep is a no-op while it follows (expiry replicates
		// from the leader); it matters the moment one promotes.
		for _, m := range s.repl.members {
			m.reg.Sweep()
		}
	}
	s.schedule(s.clock.Now().Add(s.scn.SweepInterval), s.sweepTick)
}

// flapTick takes one random home off the network for half a pull
// interval — the short link-flap churn of consumer uplinks.
func (s *Sim) flapTick() {
	h := s.homes[s.rng.Intn(len(s.homes))]
	s.setPartitioned(h, true)
	s.schedule(s.clock.Now().Add(s.scn.PullInterval/2), func() { s.setPartitioned(h, false) })
	s.schedule(s.clock.Now().Add(s.scn.FlapInterval), s.flapTick)
}

func (s *Sim) partition(w PartitionWindow) {
	n := int(float64(len(s.homes))*w.Fraction + 0.5)
	perm := s.rng.Perm(len(s.homes))
	for _, i := range perm[:n] {
		h := s.homes[i]
		if !h.partitioned {
			s.setPartitioned(h, true)
			s.schedule(s.clock.Now().Add(w.Duration), func() { s.setPartitioned(h, false) })
		}
	}
}

// crashHome is the kill -9: the home vanishes from the network and its
// registry's WAL fd closes with no sync, no marker, no shutdown event.
// The in-memory state — journal ring, link cursors, queue horizon — is
// gone with the process; only the data directory survives.
func (s *Sim) crashHome(h *home) {
	h.down = true
	s.net.Handle(h.name, nil)
	h.peering.Close()
	h.reg.CrashClose()
	h.srv.Close()
	s.m.crashes++
}

// restartHome rebuilds the home from its data directory: the registry
// recovers snapshot + WAL tail, fresh faces and peering come up, and
// the home's own import links restart from scratch (their cursors were
// process state). Its importers' links are untouched — whether they
// resume from their cursors without a resync is exactly what the run
// measures.
func (s *Sim) restartHome(h *home) {
	now := s.clock.Now()
	if err := s.bootHome(h); err != nil {
		panic(fmt.Sprintf("sim: restart %s: %v", h.name, err))
	}
	rec := h.reg.Recovery()
	s.m.recoveredEntries += int64(rec.Entries)
	s.m.replayedRecords += int64(rec.Replayed)

	// A replicated home does not resume leadership: it rejoins the set
	// as a replica of whoever promoted, handing back acknowledged writes
	// only its recovered WAL knew about.
	if s.replicated(h) {
		s.rejoinLeader(h)
	}

	// Every registration the home had acknowledged must still resolve.
	kept := h.live[:0]
	for _, svc := range h.live {
		if _, ok := h.reg.Get(svc.key); ok {
			kept = append(kept, svc)
		} else {
			s.m.missingAfterRestart++
		}
	}
	h.live = kept

	// The home's own import links are rebuilt on the new peering; first
	// contact reconciles against state the recovery already restored.
	for _, il := range h.links {
		l, err := h.peering.PeerManualSet(s.peerURLs(il.from)...)
		if err != nil {
			panic(fmt.Sprintf("sim: re-peer %s -> %s: %v", h.name, il.from.name, err))
		}
		il.link = l
	}
	// Importers' next successful pull closes the recovery-latency sample.
	for _, il := range h.importers {
		il.awaitRecovery = now
	}
	h.down = false
	// The model pays the replay on the home's serial server before it
	// takes new work: one per-delta cost per replayed WAL record.
	h.busyUntil = now
	h.serve(now, time.Duration(rec.Replayed)*s.scn.Costs.PerDelta)
}

func (s *Sim) setPartitioned(h *home, down bool) {
	h.partitioned = down
	if down {
		s.net.Handle(h.name, nil)
	} else {
		s.net.Handle(h.name, h.srv.Handler())
	}
}

// Close releases every home (peerings stop their links; detached
// servers hold no listeners) and removes the durable data root.
func (s *Sim) Close() {
	s.closeReplicas()
	for _, h := range s.homes {
		if h.peering != nil {
			h.peering.Close()
		}
		if h.srv != nil {
			h.srv.Close()
		}
		if h.reg != nil {
			h.reg.Close()
		}
	}
	if s.dataRoot != "" {
		os.RemoveAll(s.dataRoot)
	}
}
