package neighborhood

import (
	"encoding/json"
	"testing"
	"time"
)

// short returns a scenario small enough for unit tests while keeping
// every mechanism live: churn, flaps, a partition wave, sweeps.
func short(homes int) Scenario {
	s := Churn(homes)
	s.Duration = 20 * time.Second
	s.Partitions = []PartitionWindow{
		{Start: 8 * time.Second, Duration: 4 * time.Second, Fraction: 0.25},
	}
	return s
}

// TestDeterminism is the simulation's foundational contract: the same
// (scenario, seed) must produce byte-identical results, run to run —
// this is what makes a finding reproducible from its header alone.
func TestDeterminism(t *testing.T) {
	scn := short(12)
	var runs [2][]byte
	for i := range runs {
		sim, err := NewSim(scn, 42)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.Run()
		sim.Close()
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = b
	}
	if string(runs[0]) != string(runs[1]) {
		t.Fatalf("same seed diverged:\n run1: %s\n run2: %s", runs[0], runs[1])
	}
}

// TestSeedsDiffer guards the other side: distinct seeds must explore
// distinct schedules, or the multi-seed statistics are a sham.
func TestSeedsDiffer(t *testing.T) {
	scn := short(8)
	results, err := RunSeeds(scn, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Propagation == results[1].Propagation &&
		results[0].Registers == results[1].Registers {
		t.Fatalf("seeds 1 and 2 produced identical runs: %+v", results[0])
	}
}

func TestSimReplicatesAndMeasures(t *testing.T) {
	scn := short(8)
	sim, err := NewSim(scn, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	r := sim.Run()

	if r.Registers == 0 || r.Expires == 0 {
		t.Fatalf("no churn generated: %+v", r)
	}
	if r.Propagation.Count == 0 {
		t.Fatal("no propagation samples recorded")
	}
	if r.Propagation.P50 <= 0 || r.Propagation.P99 < r.Propagation.P50 {
		t.Fatalf("implausible propagation summary: %+v", r.Propagation)
	}
	// Flaps plus a 25% partition wave must surface as pull errors.
	if r.PullErrors == 0 {
		t.Fatalf("partition schedule produced no pull errors: %+v", r)
	}
	if r.DeltasApplied == 0 {
		t.Fatal("no deltas replicated")
	}
	// Replication really happened over the wire: spot-check one import.
	h := sim.homes[0]
	if st := h.links[0].link.Status(); st.Cursor == 0 {
		t.Fatalf("link never advanced: %+v", st)
	}
}

// TestSecureRunCountsSecurityPlanes: the secure preset must exercise
// signing and audit on every home, and still be deterministic.
func TestSecureRunCountsSecurityPlanes(t *testing.T) {
	scn := Secure(6)
	scn.Duration = 10 * time.Second
	results, err := RunSeeds(scn, []int64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != results[1] {
		t.Fatalf("secure run not deterministic:\n %+v\n %+v", results[0], results[1])
	}
	r := results[0]
	if r.SignedOps == 0 {
		t.Fatal("auth scenario recorded no signed operations")
	}
	if r.AuditRecords == 0 {
		t.Fatal("audit scenario recorded no audit records")
	}
	// Signed pulls really authenticated on the wire.
	h := results[0]
	_ = h
	sim, err := NewSim(scn, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Run()
	if st := sim.homes[0].links[0].link.Status(); !st.Authenticated {
		t.Fatalf("secure link not authenticated: %+v", st)
	}
}

// TestMeshSaturationRaisesLatency is the knee mechanism in miniature: a
// mesh wide enough that per-home pull work exceeds the pull interval
// must show markedly worse propagation latency than a small mesh.
func TestMeshSaturationRaisesLatency(t *testing.T) {
	small := Propagation(4)
	small.Duration = 15 * time.Second
	big := Propagation(24)
	big.Duration = 15 * time.Second

	rs, err := RunSeeds(small, []int64{11})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunSeeds(big, []int64{11})
	if err != nil {
		t.Fatal(err)
	}
	if rb[0].Propagation.P99 <= rs[0].Propagation.P99 {
		t.Fatalf("24-home mesh p99 (%v ms) not above 4-home mesh p99 (%v ms)",
			rb[0].Propagation.P99, rs[0].Propagation.P99)
	}
}

// TestCrashRecoveryRun drives the kill-restart preset end to end: the
// crashed home's acknowledged registrations all survive, its importers
// resume from their cursors with zero resyncs, recovery latency is
// measured, and the whole thing — temp directories and all — stays
// deterministic run to run.
func TestCrashRecoveryRun(t *testing.T) {
	scn := CrashRecovery(8)
	scn.Duration = 40 * time.Second
	results, err := RunSeeds(scn, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[1])
	if string(a) != string(b) {
		t.Fatalf("crash-recovery run not deterministic:\n %s\n %s", a, b)
	}
	r := results[0]
	if r.Crashes != 1 {
		t.Fatalf("scenario scheduled 1 crash, observed %d", r.Crashes)
	}
	if r.MissingAfterRestart != 0 {
		t.Fatalf("%d acknowledged registrations lost across the kill", r.MissingAfterRestart)
	}
	if r.ImporterResyncs != 0 {
		t.Fatalf("durable restart forced %d importer resyncs, want 0", r.ImporterResyncs)
	}
	if r.RecoveredEntries == 0 {
		t.Fatal("recovery restored no entries — the crash hit an empty registry")
	}
	if r.Recovery == nil || r.Recovery.Count == 0 {
		t.Fatalf("no recovery-latency samples recorded: %+v", r.Recovery)
	}
	// The kill itself must have been visible as pull failures.
	if r.PullErrors == 0 {
		t.Fatal("crash window produced no pull errors")
	}

	// Post-restart the sequence is monotone and churn kept flowing: run
	// once more keeping the sim to inspect the restarted home.
	sim, err := NewSim(scn, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Run()
	h := sim.homes[scn.Crash.Home]
	rec := h.reg.Recovery()
	if rec.CleanShutdown {
		t.Fatalf("kill -9 classified as clean shutdown: %+v", rec)
	}
	if h.reg.Seq() < rec.Seq {
		t.Fatalf("sequence regressed after restart: %d < recovered %d", h.reg.Seq(), rec.Seq)
	}
}

// TestReplicaFailoverRun: the replica-failover preset kills the leader of
// home 0's replica set mid-churn. Exactly one survivor promotes, every
// acknowledged registration survives (handback covers the unreplicated
// tail), importers ride their cursors across the promotion with zero
// resyncs, and reads keep flowing through the survivors.
func TestReplicaFailoverRun(t *testing.T) {
	scn := ReplicaFailover(8)
	scn.Duration = 45 * time.Second
	results, err := RunSeeds(scn, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[1])
	if string(a) != string(b) {
		t.Fatalf("replica-failover run not deterministic:\n %s\n %s", a, b)
	}
	r := results[0]
	if r.Crashes != 1 {
		t.Fatalf("scenario scheduled 1 leader kill, observed %d crashes", r.Crashes)
	}
	if r.Promotions != 1 {
		t.Fatalf("want exactly 1 promotion (deterministic election), got %d", r.Promotions)
	}
	if r.AckedLost != 0 {
		t.Fatalf("%d acknowledged registrations unresolvable on the acting leader", r.AckedLost)
	}
	if r.MissingAfterRestart != 0 {
		t.Fatalf("%d acknowledged registrations missing after the old leader rejoined", r.MissingAfterRestart)
	}
	if r.ImporterResyncs != 0 {
		t.Fatalf("failover forced %d importer resyncs, want cursor-transparent promotion", r.ImporterResyncs)
	}
	if r.WriteFailures != 0 {
		t.Fatalf("%d writes failed outside the outage window", r.WriteFailures)
	}
	if r.ReadSteady == nil || r.ReadSteady.Count == 0 || r.ReadFailover == nil || r.ReadFailover.Count == 0 {
		t.Fatalf("read stream not split around the crash window: steady=%+v failover=%+v", r.ReadSteady, r.ReadFailover)
	}
	if r.ReadFailover.P99 > 2*r.ReadSteady.P99 {
		t.Fatalf("failover read p99 %.3fms exceeds 2x steady %.3fms", r.ReadFailover.P99, r.ReadSteady.P99)
	}
	// The unreplicated acknowledged tail came back via rejoin handback.
	if r.HandedBack == 0 {
		t.Fatal("no handback observed — the kill window produced no unreplicated acknowledged writes")
	}
}

// TestNonDurableScenarioUnchanged: without Durable no data root is
// created and the existing presets run exactly as before.
func TestNonDurableScenarioUnchanged(t *testing.T) {
	sim, err := NewSim(short(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if sim.dataRoot != "" {
		t.Fatal("in-memory scenario created a data root")
	}
	r := sim.Run()
	if r.Crashes != 0 || r.Recovery != nil || r.ImporterResyncs != 0 {
		t.Fatalf("crash fields leaked into a non-crash run: %+v", r)
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"too few homes", func(s *Scenario) { s.Homes = 1 }},
		{"bad topology", func(s *Scenario) { s.Topology = "star" }},
		{"ring without degree", func(s *Scenario) { s.Topology = Ring; s.Degree = 0 }},
		{"zero duration", func(s *Scenario) { s.Duration = 0 }},
		{"bad partition fraction", func(s *Scenario) {
			s.Partitions = []PartitionWindow{{Fraction: 1.5}}
		}},
		{"crash without durable", func(s *Scenario) {
			s.Crash = &CrashWindow{Home: 0, At: time.Second, Down: time.Second}
		}},
		{"crash home out of range", func(s *Scenario) {
			s.Durable = true
			s.Crash = &CrashWindow{Home: 99, At: time.Second, Down: time.Second}
		}},
		{"crash window past the end", func(s *Scenario) {
			s.Durable = true
			s.Crash = &CrashWindow{Home: 0, At: s.Duration, Down: time.Second}
		}},
		{"negative replicas", func(s *Scenario) { s.Replicas = -1 }},
		{"replicas without durable", func(s *Scenario) { s.Replicas = 2 }},
		{"replicas with auth", func(s *Scenario) {
			s.Durable = true
			s.Replicas = 2
			s.Auth = true
		}},
		{"replica crash off the gateway", func(s *Scenario) {
			s.Durable = true
			s.Replicas = 2
			s.Crash = &CrashWindow{Home: 1, At: time.Second, Down: time.Second}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Churn(8)
			c.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("invalid scenario accepted")
			}
		})
	}
}
