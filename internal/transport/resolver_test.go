package transport

import "testing"

func TestResolverFiltersEmptyEndpoints(t *testing.T) {
	r := NewResolver("", "http://a/uddi", "", "http://b/uddi")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Current(); got != "http://a/uddi" {
		t.Fatalf("Current = %q, want first endpoint", got)
	}
}

func TestResolverFailAdvancesAndWraps(t *testing.T) {
	r := NewResolver("a", "b", "c")
	r.Fail("a")
	if r.Current() != "b" {
		t.Fatalf("after Fail(a): Current = %q, want b", r.Current())
	}
	r.Fail("b")
	r.Fail("c")
	if r.Current() != "a" {
		t.Fatalf("after wrapping: Current = %q, want a", r.Current())
	}
}

// A failure report for an endpoint the resolver has already moved off
// must not advance again: concurrent callers all failing the same dead
// endpoint advance the set exactly once.
func TestResolverFailOnlyAdvancesCurrent(t *testing.T) {
	r := NewResolver("a", "b", "c")
	r.Fail("a")
	r.Fail("a") // stale report: a is no longer current
	if r.Current() != "b" {
		t.Fatalf("stale Fail moved the cursor: Current = %q, want b", r.Current())
	}
	r.Fail("c") // never current at all
	if r.Current() != "b" {
		t.Fatalf("Fail of non-current endpoint moved the cursor: Current = %q, want b", r.Current())
	}
}

func TestResolverPin(t *testing.T) {
	r := NewResolver("a", "b", "c")
	if !r.Pin("c") {
		t.Fatal("Pin(c) = false, want true")
	}
	if r.Current() != "c" {
		t.Fatalf("after Pin(c): Current = %q", r.Current())
	}
	if r.Pin("unknown") {
		t.Fatal("Pin of an endpoint outside the set must report false")
	}
	if r.Current() != "c" {
		t.Fatalf("failed Pin moved the cursor: Current = %q, want c", r.Current())
	}
}

func TestResolverEndpointsIsACopy(t *testing.T) {
	r := NewResolver("a", "b")
	eps := r.Endpoints()
	eps[0] = "mutated"
	if r.Current() != "a" {
		t.Fatalf("Endpoints leaked internal state: Current = %q", r.Current())
	}
}
