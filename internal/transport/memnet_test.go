// Tests for the in-memory HTTP network: synchronous handler dispatch,
// host registration/removal, and the signed-client path over it.
package transport

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMemNetRoutesByHost(t *testing.T) {
	m := NewMemNet()
	m.Handle("home-a", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "a:%s", r.URL.Path)
	}))
	m.Handle("home-b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "b")
	}))
	c := m.Client()

	resp, err := c.Get("http://home-a/uddi")
	if err != nil {
		t.Fatalf("get home-a: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "a:/uddi" {
		t.Errorf("home-a: %d %q", resp.StatusCode, body)
	}

	resp, err = c.Get("http://home-b/x")
	if err != nil {
		t.Fatalf("get home-b: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Errorf("home-b status = %d", resp.StatusCode)
	}
}

func TestMemNetUnknownAndRemovedHost(t *testing.T) {
	m := NewMemNet()
	if _, err := m.Client().Get("http://nowhere/"); err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Errorf("unknown host error = %v", err)
	}
	m.Handle("h", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	m.Handle("h", nil) // dead home
	if _, err := m.Client().Get("http://h/"); err == nil {
		t.Error("removed host still reachable")
	}
}

func TestMemNetRequestBodyDelivered(t *testing.T) {
	m := NewMemNet()
	var got string
	m.Handle("h", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got = string(b)
	}))
	resp, err := m.Client().Post("http://h/", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if got != "payload" {
		t.Errorf("handler saw body %q", got)
	}
}

// memCreds is a minimal Credentials stamping a header and checking its echo.
type memCreds struct{}

func (memCreds) Active() bool { return true }
func (memCreds) SignRequest(h http.Header, body []byte) string {
	h.Set("X-Sig", "signed")
	return "xch"
}
func (memCreds) VerifyResponse(h http.Header, exchange string, body []byte) error {
	if h.Get("X-Echo") != "signed" || exchange != "xch" {
		return fmt.Errorf("bad echo")
	}
	return nil
}

func TestMemNetAuthClientSignsOverMemNet(t *testing.T) {
	m := NewMemNet()
	m.Handle("h", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Echo", r.Header.Get("X-Sig"))
	}))
	resp, err := m.AuthClient(memCreds{}).Get("http://h/")
	if err != nil {
		t.Fatalf("signed round trip over memnet: %v", err)
	}
	resp.Body.Close()
}
