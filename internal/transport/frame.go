// Binary fast-path framing: the compact wire encoding negotiated between
// framework-owned endpoints (gateway↔gateway calls, VSR watch/save/find,
// peer replication pulls). The format reuses the WAL's field-encoding
// style from internal/uddi/wal.go — op byte, uvarint lengths, CRC frame —
// because that encoder has already proven itself on the durability path:
//
//	connection preamble: the 4 bytes "HCB1" (BinMagic), written once by
//	the dialing side so a listener can demultiplex binary connections
//	from ordinary HTTP on the same port.
//
//	frame: u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
//	payload: op byte, then op-specific fields. Strings and byte blobs are
//	uvarint length + bytes; integers are uvarints.
//
// Ops:
//
//	'H' hello    dialer → listener: an opaque, signed handshake blob
//	             (see SessionAuth). Also sent mid-connection to rekey an
//	             expired session in place.
//	'A' accept   listener → dialer: the opaque handshake reply.
//	'E' error    listener → dialer: a refusal or session fault, as a
//	             (code, message) pair. Pre-session and session-expired
//	             conditions travel this way.
//	'Q' request  one tunneled request: replay counter, path, content
//	             type, action, body, then a 32-byte HMAC-SHA256 over
//	             everything before it under the session's send key.
//	'S' response replay counter (echoing the request), status, content
//	             type, body, MAC likewise.
//
// SOAP-over-HTTP stays byte-identical as the ingress/interop fallback for
// anything that does not negotiate.
package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// BinMagic is the connection preamble a dialer writes before its first
// frame; a byte stream that does not open with it is ordinary HTTP.
const BinMagic = "HCB1"

// Frame op bytes.
const (
	opHello    = 'H'
	opAccept   = 'A'
	opError    = 'E'
	opRequest  = 'Q'
	opResponse = 'S'
)

// maxBinFrame bounds a frame read so a corrupt or hostile length word
// cannot ask for gigabytes — the WAL's recovery bound, for the same
// reason.
const maxBinFrame = 4 << 20

// macSize is the length of the HMAC-SHA256 trailer on request and
// response payloads.
const macSize = 32

// Error codes carried by 'E' frames.
const (
	binErrRefused = "refused" // handshake rejected (untrusted, unverifiable, replay)
	binErrExpired = "expired" // session lifetime elapsed; dialer should rekey
	binErrBad     = "bad"     // malformed frame or MAC/counter failure
)

// appendBinString appends a uvarint-length-prefixed byte string.
func appendBinString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBinBytes appends a uvarint-length-prefixed blob.
func appendBinBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// binReader walks a frame payload, latching the first error so call
// sites read fields without per-field checks — the walReader pattern.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: truncated frame at %s", what)
	}
}

func (r *binReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bytes(what string) []byte {
	if r.err != nil {
		return nil
	}
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail(what)
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *binReader) str(what string) string { return string(r.bytes(what)) }

// appendFrame appends the length/CRC header and payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	frame := appendFrame(make([]byte, 0, 8+len(payload)), payload)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one frame from r into buf (grown as needed), returning
// the verified payload. The returned slice aliases buf.
func readFrame(r io.Reader, buf []byte) (payload, nbuf []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxBinFrame {
		return nil, buf, fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	if crc32.ChecksumIEEE(buf) != want {
		return nil, buf, fmt.Errorf("transport: frame CRC mismatch")
	}
	return buf, buf, nil
}

// binRequest is a decoded 'Q' payload.
type binRequest struct {
	Ctr         uint64
	Path        string
	ContentType string
	Action      string
	Body        []byte
}

// binResponse is a decoded 'S' payload.
type binResponse struct {
	Ctr         uint64
	Status      int
	ContentType string
	Body        []byte
}

// encodeRequest appends a MAC'd 'Q' payload to dst under the session's
// send key, consuming one send counter. Links pass their own scratch as
// dst so steady-state requests reuse one grown buffer.
func encodeRequest(dst []byte, s *Session, path, contentType, action string, body []byte) []byte {
	ctr := s.nextSendCtr()
	b := append(dst, opRequest)
	b = binary.AppendUvarint(b, ctr)
	b = appendBinString(b, path)
	b = appendBinString(b, contentType)
	b = appendBinString(b, action)
	b = appendBinBytes(b, body)
	return s.appendSendMAC(b)
}

// decodeRequest parses and MAC-verifies a 'Q' payload under the
// session's receive key, enforcing the strictly-increasing replay
// counter. The op byte has already been consumed by the caller's switch.
func decodeRequest(s *Session, payload []byte) (binRequest, error) {
	body, err := s.verifyRecvMAC(payload)
	if err != nil {
		return binRequest{}, err
	}
	r := &binReader{b: body, off: 1} // skip op
	var q binRequest
	q.Ctr = r.uvarint("counter")
	q.Path = r.str("path")
	q.ContentType = r.str("content-type")
	q.Action = r.str("action")
	q.Body = r.bytes("body")
	if r.err != nil {
		return binRequest{}, r.err
	}
	if err := s.admitRecvCtr(q.Ctr); err != nil {
		return binRequest{}, err
	}
	return q, nil
}

// encodeResponse appends a MAC'd 'S' payload to dst echoing the request
// counter.
func encodeResponse(dst []byte, s *Session, ctr uint64, status int, contentType string, body []byte) []byte {
	b := append(dst, opResponse)
	b = binary.AppendUvarint(b, ctr)
	b = binary.AppendUvarint(b, uint64(status))
	b = appendBinString(b, contentType)
	b = appendBinBytes(b, body)
	return s.appendSendMAC(b)
}

// decodeResponse parses and MAC-verifies an 'S' payload, checking the
// echoed counter against the request it answers.
func decodeResponse(s *Session, payload []byte, wantCtr uint64) (binResponse, error) {
	body, err := s.verifyRecvMAC(payload)
	if err != nil {
		return binResponse{}, err
	}
	r := &binReader{b: body, off: 1}
	var resp binResponse
	resp.Ctr = r.uvarint("counter")
	resp.Status = int(r.uvarint("status"))
	resp.ContentType = r.str("content-type")
	resp.Body = r.bytes("body")
	if r.err != nil {
		return binResponse{}, r.err
	}
	if resp.Ctr != wantCtr {
		return binResponse{}, fmt.Errorf("transport: response counter %d does not answer request %d", resp.Ctr, wantCtr)
	}
	return resp, nil
}

// encodeHello wraps an opaque handshake blob in an 'H' payload.
func encodeHello(blob []byte) []byte {
	b := make([]byte, 0, 1+binary.MaxVarintLen64+len(blob))
	b = append(b, opHello)
	return appendBinBytes(b, blob)
}

// encodeAccept wraps an opaque handshake reply in an 'A' payload.
func encodeAccept(blob []byte) []byte {
	b := make([]byte, 0, 1+binary.MaxVarintLen64+len(blob))
	b = append(b, opAccept)
	return appendBinBytes(b, blob)
}

// encodeError builds an 'E' payload.
func encodeError(code, msg string) []byte {
	b := make([]byte, 0, 1+len(code)+len(msg)+16)
	b = append(b, opError)
	b = appendBinString(b, code)
	return appendBinString(b, msg)
}

// decodeBlob parses the opaque blob out of an 'H' or 'A' payload.
func decodeBlob(payload []byte) ([]byte, error) {
	r := &binReader{b: payload, off: 1}
	blob := r.bytes("handshake blob")
	if r.err != nil {
		return nil, r.err
	}
	return blob, nil
}

// decodeError parses an 'E' payload.
func decodeError(payload []byte) (code, msg string, err error) {
	r := &binReader{b: payload, off: 1}
	code = r.str("error code")
	msg = r.str("error message")
	return code, msg, r.err
}
