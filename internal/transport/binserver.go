// The listening side of the binary fast path: a BinServer authenticates
// each connection with one signed handshake (SessionAuth), then serves
// MAC'd request frames against a path-prefix route table. The routes are
// the same faces the HTTP mux serves — /uddi, /peer, /services/ — so a
// request tunneled here and the same request POSTed over SOAP/HTTP reach
// identical application logic; only the framing and the per-operation
// signature differ.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// BinRequest is one tunneled request as a route handler sees it.
type BinRequest struct {
	// Path is the request path, e.g. "/uddi" or "/services/x10:lamp-1".
	Path string
	// ContentType describes Body: text/xml for tunneled XML faces,
	// soap.BinCallContentType for the binary call encoding.
	ContentType string
	// Action carries the SOAPAction equivalent, when the face uses one.
	Action string
	// Body is the request payload.
	Body []byte
}

// BinResponse is a route handler's reply.
type BinResponse struct {
	// Status is the HTTP status the equivalent SOAP/HTTP response would
	// carry, so both paths classify outcomes identically.
	Status      int
	ContentType string
	Body        []byte
}

// BinHandler serves tunneled requests for one path prefix. caller is the
// session-authenticated remote home — the same principal the per-op
// signature middleware would have established.
type BinHandler interface {
	ServeBin(ctx context.Context, caller string, req *BinRequest) *BinResponse
}

// BinHandlerFunc adapts a function to BinHandler.
type BinHandlerFunc func(ctx context.Context, caller string, req *BinRequest) *BinResponse

// ServeBin implements BinHandler.
func (f BinHandlerFunc) ServeBin(ctx context.Context, caller string, req *BinRequest) *BinResponse {
	return f(ctx, caller, req)
}

// errSessionExpired marks a request arriving on a session whose lifetime
// has elapsed; the dialer answers it by rekeying in place.
var errSessionExpired = errors.New("transport: session expired")

// BinServer is one endpoint's binary-protocol face.
type BinServer struct {
	auth SessionAuth
	// nowFn is the clock; tests override it to force expiry.
	nowFn func() time.Time

	mu       sync.Mutex
	routes   map[string]BinHandler
	conns    map[net.Conn]struct{}
	closed   bool
	disabled bool
}

// NewBinServer builds a server over the given handshake provider.
func NewBinServer(auth SessionAuth) *BinServer {
	return &BinServer{
		auth:   auth,
		nowFn:  time.Now,
		routes: make(map[string]BinHandler),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Handle mounts h at a path prefix. Longest prefix wins at dispatch.
func (s *BinServer) Handle(prefix string, h BinHandler) {
	s.mu.Lock()
	s.routes[prefix] = h
	s.mu.Unlock()
}

// SetEnabled turns handshake acceptance on or off. A disabled server
// refuses every hello, so dialing peers degrade to SOAP/HTTP — this is
// how a SOAP-only home participates in a mixed-mode federation while
// still listening on the same port.
func (s *BinServer) SetEnabled(on bool) {
	s.mu.Lock()
	s.disabled = !on
	s.mu.Unlock()
}

// setClock overrides the expiry clock (tests).
func (s *BinServer) setClock(now func() time.Time) { s.nowFn = now }

// route finds the longest-prefix handler for a path.
func (s *BinServer) route(path string) BinHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best BinHandler
	bestLen := -1
	for prefix, h := range s.routes {
		if strings.HasPrefix(path, prefix) && len(prefix) > bestLen {
			best, bestLen = h, len(prefix)
		}
	}
	return best
}

// dispatch runs one authenticated request through the route table.
func (s *BinServer) dispatch(ctx context.Context, caller string, q *BinRequest) *BinResponse {
	h := s.route(q.Path)
	if h == nil {
		return &BinResponse{Status: 404, ContentType: "text/plain",
			Body: []byte("transport: no binary face at " + q.Path)}
	}
	resp := h.ServeBin(ctx, caller, q)
	if resp == nil {
		resp = &BinResponse{Status: 500, ContentType: "text/plain",
			Body: []byte("transport: empty binary response")}
	}
	return resp
}

// acceptLocal runs the listener half of a handshake for an in-process
// lane (see RegisterLocal): real hello/accept blobs, no socket.
func (s *BinServer) acceptLocal(hello []byte) (accept []byte, sess *Session, err error) {
	s.mu.Lock()
	closed, disabled := s.closed, s.disabled
	s.mu.Unlock()
	if closed {
		return nil, nil, fmt.Errorf("transport: binary server closed")
	}
	if disabled {
		return nil, nil, fmt.Errorf("transport: binary protocol disabled on this endpoint")
	}
	return s.auth.AcceptSession(hello)
}

// handleRequest serves one MAC'd 'Q' payload against sess, appending the
// 'S' payload to dst (a caller-owned scratch buffer reused across
// frames). An error poisons the lane: expired sessions surface
// errSessionExpired (the dialer rekeys), anything else means the frame
// failed verification and the connection cannot be trusted further.
func (s *BinServer) handleRequest(ctx context.Context, sess *Session, payload, dst []byte) ([]byte, error) {
	if sess.Expired(s.nowFn()) {
		return nil, errSessionExpired
	}
	q, err := decodeRequest(sess, payload)
	if err != nil {
		return nil, err
	}
	resp := s.dispatch(ctx, sess.Peer, &BinRequest{
		Path: q.Path, ContentType: q.ContentType, Action: q.Action, Body: q.Body,
	})
	return encodeResponse(dst, sess, q.Ctr, resp.Status, resp.ContentType, resp.Body), nil
}

// ServeConn runs the frame loop for one accepted binary connection; the
// BinMagic preamble has already been consumed by the demultiplexer. The
// first frame must be a hello; a hello arriving later rekeys the session
// in place.
func (s *BinServer) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	var sess *Session
	defer func() {
		if sess != nil {
			s.auth.NoteSessionEnd(sess, false)
		}
	}()
	// buf holds incoming frames, out the encoded response payload, fbuf
	// the framed response — each grown once and reused for the life of
	// the connection.
	var buf, out, fbuf []byte
	ctx := context.Background()
	for {
		payload, nbuf, err := readFrame(conn, buf)
		if err != nil {
			return
		}
		buf = nbuf
		if len(payload) == 0 {
			return
		}
		switch payload[0] {
		case opHello:
			blob, err := decodeBlob(payload)
			if err != nil {
				writeFrame(conn, encodeError(binErrBad, err.Error()))
				return
			}
			s.mu.Lock()
			disabled := s.disabled
			s.mu.Unlock()
			if disabled {
				writeFrame(conn, encodeError(binErrRefused, "transport: binary protocol disabled on this endpoint"))
				return
			}
			accept, next, err := s.auth.AcceptSession(blob)
			if err != nil {
				writeFrame(conn, encodeError(binErrRefused, err.Error()))
				return
			}
			if sess != nil {
				s.auth.NoteSessionEnd(sess, true)
			}
			sess = next
			if err := writeFrame(conn, encodeAccept(accept)); err != nil {
				return
			}
		case opRequest:
			if sess == nil {
				writeFrame(conn, encodeError(binErrBad, "request before handshake"))
				return
			}
			var err error
			out, err = s.handleRequest(ctx, sess, payload, out[:0])
			switch {
			case errors.Is(err, errSessionExpired):
				// Tell the dialer to rekey; the connection stays up.
				if writeFrame(conn, encodeError(binErrExpired, "session expired; rekey")) != nil {
					return
				}
			case err != nil:
				writeFrame(conn, encodeError(binErrBad, err.Error()))
				return
			default:
				fbuf = appendFrame(fbuf[:0], out)
				if _, err := conn.Write(fbuf); err != nil {
					return
				}
			}
		default:
			writeFrame(conn, encodeError(binErrBad, fmt.Sprintf("unexpected op %q", payload[0])))
			return
		}
	}
}

// Close shuts the server: open connections are closed and new ones
// refused. Registered local lanes fail their next exchange and fall back
// to SOAP.
func (s *BinServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
