// resolver.go is the replica-set-aware endpoint resolver: an ordered
// list of equivalent registry endpoints with error-driven re-pinning.
// The resolver holds no health state and runs no probes — it simply
// remembers which endpoint the last successful exchange used, and a
// caller that hits a dead (or demoted) endpoint reports it with Fail to
// rotate to the next. This keeps failover policy in the client that
// observed the error, and mechanism — the ordered list, the pin — here,
// where every protocol (SOAP, binary fast path, replication) can share
// one view of where the registry currently lives.
package transport

import "sync"

// Resolver is an ordered endpoint list for one logical service (a
// replicated registry). Safe for concurrent use; all methods are cheap
// enough for per-request calls.
type Resolver struct {
	mu        sync.Mutex
	endpoints []string
	cur       int
}

// NewResolver returns a resolver pinned to the first of the given
// endpoints. Order matters: it is the preference order failover walks,
// and (by convention) the deterministic tie-break order for elections.
func NewResolver(endpoints ...string) *Resolver {
	eps := make([]string, 0, len(endpoints))
	for _, e := range endpoints {
		if e != "" {
			eps = append(eps, e)
		}
	}
	return &Resolver{endpoints: eps}
}

// Current returns the endpoint requests should use now ("" for an empty
// resolver).
func (r *Resolver) Current() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.endpoints) == 0 {
		return ""
	}
	return r.endpoints[r.cur]
}

// Fail reports that failed answered with an endpoint-level error and
// returns the endpoint to try next. The rotation only advances when
// failed is still the pinned endpoint — if another caller already moved
// on, its choice stands and this report consumes nothing, so N
// concurrent callers hitting one dead endpoint advance the pin once, not
// N times.
func (r *Resolver) Fail(failed string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.endpoints) == 0 {
		return ""
	}
	if r.endpoints[r.cur] == failed {
		r.cur = (r.cur + 1) % len(r.endpoints)
	}
	return r.endpoints[r.cur]
}

// Pin moves the resolver to the given endpoint, if it is in the set:
// the redirect path, used when a replica names the leader in its
// refusal. Returns false (and changes nothing) for an unknown endpoint.
func (r *Resolver) Pin(endpoint string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.endpoints {
		if e == endpoint {
			r.cur = i
			return true
		}
	}
	return false
}

// Endpoints returns a copy of the ordered endpoint list.
func (r *Resolver) Endpoints() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.endpoints...)
}

// Len reports the set size — the natural retry budget for one operation.
func (r *Resolver) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.endpoints)
}
