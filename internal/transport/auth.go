// Credential injection: an http.Client whose round trips are signed by
// the caller's home identity and whose responses are verified against
// its trust store, without any protocol client (SOAP, UDDI, events)
// knowing about authentication. The transport layer only moves bytes and
// headers; what a signature means — and whether one is required — is the
// Credentials implementation's business (internal/core/identity.Auth).
package transport

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
)

// tagPattern strips markup from refusal bodies for the diagnostic line.
var tagPattern = regexp.MustCompile(`<[^>]*>`)

// refusalSnippet reduces an error body (XML dispositionReport, SOAP
// fault, plain text) to one bounded diagnostic line: tags stripped,
// whitespace collapsed.
func refusalSnippet(body []byte) string {
	s := tagPattern.ReplaceAllString(string(body), " ")
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 160 {
		s = s[:160] + "…"
	}
	return s
}

// maxVerifiedBody bounds how much response body the verifying round
// tripper will buffer; every framework face bounds its bodies to 1 MiB,
// well below this.
const maxVerifiedBody = 4 << 20

// Credentials signs outbound requests and verifies inbound responses.
// Implementations must be safe for concurrent use.
type Credentials interface {
	// Active reports whether signing is currently enabled; when false the
	// round trip is passed through untouched.
	Active() bool
	// SignRequest stamps auth headers for the given body and returns an
	// opaque exchange token handed back to VerifyResponse.
	SignRequest(h http.Header, body []byte) (exchange string)
	// VerifyResponse checks the response headers against the exchange
	// token and body; a non-nil error fails the round trip.
	VerifyResponse(h http.Header, exchange string, body []byte) error
}

// NewAuthClient returns an http.Client over the shared keep-alive
// transport that signs every request and verifies every response with
// creds. Like Client, it sets no overall timeout — deadlines come from
// request contexts.
//
// Deprecated: use NewDialer(creds).HTTPClient(), which adds binary
// fast-path negotiation on top of the same signing round tripper.
func NewAuthClient(creds Credentials) *http.Client {
	return &http.Client{Transport: &authRoundTripper{creds: creds}}
}

// NewAuthClientOver is NewAuthClient with the underlying round trips
// routed through rt instead of the shared TCP transport — how simulated
// homes sign traffic that never leaves the process. A nil rt falls back
// to the shared transport.
func NewAuthClientOver(creds Credentials, rt http.RoundTripper) *http.Client {
	return &http.Client{Transport: &authRoundTripper{creds: creds, next: rt}}
}

// authRoundTripper signs requests and verifies responses around an
// underlying transport — the shared keep-alive transport by default, or
// an injected one (a MemNet for socketless simulation).
type authRoundTripper struct {
	creds Credentials
	next  http.RoundTripper
}

func (rt *authRoundTripper) transport() http.RoundTripper {
	if rt.next != nil {
		return rt.next
	}
	return shared
}

// RoundTrip implements http.RoundTripper.
func (rt *authRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if !rt.creds.Active() {
		return rt.transport().RoundTrip(req)
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("transport: buffer request body: %w", err)
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	exchange := rt.creds.SignRequest(req.Header, body)
	resp, err := rt.transport().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxVerifiedBody))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("transport: buffer response body: %w", err)
	}
	if err := rt.creds.VerifyResponse(resp.Header, exchange, respBody); err != nil {
		// A refusal for an unverified request arrives deliberately
		// unsigned (signing it would bind the server's key to an
		// attacker-chosen nonce), so verification fails by design there.
		// Surface the refusal text for diagnosis — explicitly marked
		// unverified, since anyone on the path could have written it.
		if resp.StatusCode >= 400 && len(respBody) > 0 {
			return nil, fmt.Errorf("transport: peer refused the request — %s (response unverified): %w", refusalSnippet(respBody), err)
		}
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(respBody))
	resp.ContentLength = int64(len(respBody))
	return resp, nil
}
