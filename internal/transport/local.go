// Process-local binary links: when the dialed authority belongs to a
// BinServer living in this same process (the common case for tests,
// benchmarks, and single-process multi-home deployments — the same
// situation the gateway's procGateways loopback already exploits), the
// dialer exchanges real frames — CRC, session MAC, replay counters, the
// works — through a direct function call instead of a socket. The bytes
// on the "wire" are identical to the TCP path; only the kernel is
// skipped.
package transport

import (
	"context"
	"sync"
)

// localBin maps listening authorities ("127.0.0.1:41230") to their
// in-process binary servers.
var (
	localMu  sync.RWMutex
	localBin = map[string]*BinServer{}
)

// RegisterLocal publishes a BinServer under its listening authority so
// dialers in the same process short-circuit the socket. Servers call it
// from Start and undo it with UnregisterLocal on Close.
func RegisterLocal(authority string, s *BinServer) {
	if authority == "" || s == nil {
		return
	}
	localMu.Lock()
	localBin[authority] = s
	localMu.Unlock()
}

// UnregisterLocal withdraws an authority from the local registry.
func UnregisterLocal(authority string) {
	localMu.Lock()
	delete(localBin, authority)
	localMu.Unlock()
}

// lookupLocal finds the in-process server for an authority, if any.
func lookupLocal(authority string) *BinServer {
	localMu.RLock()
	s := localBin[authority]
	localMu.RUnlock()
	return s
}

// localLane is one serial request/response lane against an in-process
// BinServer: a session pair (dialer side + listener side) established by
// a real handshake. Lanes are pooled per authority exactly like TCP
// connections.
type localLane struct {
	srv    *BinServer
	client *Session // dialer-side session (MACs requests)
	server *Session // listener-side session handleRequest verifies with

	// Scratch buffers reused across exchanges — the pooled half of the
	// pooled framing. A lane is exclusive to one exchange at a time, and
	// the dialer copies the response body out before releasing it, so
	// nothing returned to callers aliases these.
	enc   []byte // encoded request payload, then response payload dst
	frame []byte // framed bytes "on the wire"
	read  []byte // readFrame's verified-payload buffer
}

// newLocalLane runs one in-process handshake.
func newLocalLane(auth SessionAuth, srv *BinServer) (*localLane, error) {
	hc, err := auth.NewSessionClient()
	if err != nil {
		return nil, err
	}
	accept, ssess, err := srv.acceptLocal(hc.Hello())
	if err != nil {
		return nil, err
	}
	csess, err := hc.Finish(accept)
	if err != nil {
		return nil, err
	}
	return &localLane{srv: srv, client: csess, server: ssess}, nil
}

// exchange runs one request through the lane. The frame bytes produced
// and parsed are the same the TCP path would carry.
func (l *localLane) exchange(ctx context.Context, path, contentType, action string, body []byte) (binResponse, error) {
	l.srv.mu.Lock()
	closed := l.srv.closed
	l.srv.mu.Unlock()
	if closed {
		return binResponse{}, errLaneClosed
	}
	ctr := l.client.peekSendCtr()
	l.enc = encodeRequest(l.enc[:0], l.client, path, contentType, action, body)
	l.frame = appendFrame(l.frame[:0], l.enc)
	// Parse the frame back exactly as a listener would, CRC included.
	payload, nbuf, err := readFrameBytes(l.frame, l.read)
	l.read = nbuf
	if err != nil {
		return binResponse{}, err
	}
	// payload aliases l.read, so l.enc is free to hold the response.
	out, err := l.srv.handleRequest(ctx, l.server, payload, l.enc[:0])
	if err != nil {
		return binResponse{}, err
	}
	l.enc = out
	l.frame = appendFrame(l.frame[:0], out)
	payload, nbuf, err = readFrameBytes(l.frame, l.read)
	l.read = nbuf
	if err != nil {
		return binResponse{}, err
	}
	return decodeResponse(l.client, payload, ctr)
}

// rekey replaces the lane's session pair with a fresh handshake, ending
// the old sessions as a rekey on both sides.
func (l *localLane) rekey(auth SessionAuth) error {
	hc, err := auth.NewSessionClient()
	if err != nil {
		return err
	}
	accept, ssess, err := l.srv.acceptLocal(hc.Hello())
	if err != nil {
		return err
	}
	csess, err := hc.Finish(accept)
	if err != nil {
		return err
	}
	l.srv.auth.NoteSessionEnd(l.server, true)
	auth.NoteSessionEnd(l.client, true)
	l.client, l.server = csess, ssess
	return nil
}

// close ends the lane's sessions (connection-going-away semantics).
func (l *localLane) close(auth SessionAuth) {
	l.srv.auth.NoteSessionEnd(l.server, false)
	auth.NoteSessionEnd(l.client, false)
}

// readFrameBytes parses one complete frame held in memory, reading the
// payload into buf (grown as needed, returned as nbuf for reuse).
func readFrameBytes(frame, buf []byte) (payload, nbuf []byte, err error) {
	r := byteReader{b: frame}
	return readFrame(&r, buf)
}

// byteReader is an allocation-free io.Reader over a byte slice (the
// local path's stand-in for the socket).
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, errLaneClosed
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
