// Protocol demultiplexing: binary fast-path connections and ordinary
// HTTP share one listening port. The dialer announces itself with the
// 4-byte BinMagic preamble; the demultiplexer sniffs those bytes off
// each accepted connection and routes — binary connections to the
// BinServer's frame loop, everything else (with the sniffed bytes
// replayed) to the http.Server. A SOAP-only peer therefore never sees
// anything but the HTTP it always spoke.
package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// sniffTimeout bounds how long an accepted connection may sit silent
// before the demultiplexer gives up waiting for its first bytes and
// hands it to HTTP (whose own read deadlines then apply).
const sniffTimeout = 10 * time.Second

// Demux wraps ln so binary connections are served by bin while the
// returned listener yields only HTTP connections — pass it to
// http.Server.Serve in place of ln. Closing the returned listener closes
// ln and stops the accept loop; bin retains its own connections until
// bin.Close.
func Demux(ln net.Listener, bin *BinServer) net.Listener {
	d := &demuxListener{
		inner:  ln,
		bin:    bin,
		httpCh: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	go d.acceptLoop()
	return d
}

type demuxListener struct {
	inner     net.Listener
	bin       *BinServer
	httpCh    chan net.Conn
	closeOnce sync.Once
	closed    chan struct{}
}

func (d *demuxListener) acceptLoop() {
	for {
		conn, err := d.inner.Accept()
		if err != nil {
			d.Close()
			return
		}
		go d.sniff(conn)
	}
}

// sniff reads the first 4 bytes and routes the connection.
func (d *demuxListener) sniff(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(sniffTimeout))
	var magic [len(BinMagic)]byte
	n, err := io.ReadFull(conn, magic[:])
	conn.SetReadDeadline(time.Time{})
	if err != nil && n == 0 {
		conn.Close()
		return
	}
	if err == nil && string(magic[:]) == BinMagic {
		d.bin.ServeConn(conn)
		return
	}
	select {
	case d.httpCh <- &prefixedConn{Conn: conn, prefix: magic[:n]}:
	case <-d.closed:
		conn.Close()
	}
}

// Accept implements net.Listener for the HTTP side.
func (d *demuxListener) Accept() (net.Conn, error) {
	select {
	case conn := <-d.httpCh:
		return conn, nil
	case <-d.closed:
		return nil, errors.New("transport: demux listener closed")
	}
}

// Close stops the accept loop and closes the underlying listener.
func (d *demuxListener) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.closed)
		err = d.inner.Close()
	})
	return err
}

// Addr reports the underlying listener address.
func (d *demuxListener) Addr() net.Addr { return d.inner.Addr() }

// prefixedConn replays sniffed bytes before the rest of the stream.
type prefixedConn struct {
	net.Conn
	prefix []byte
}

func (c *prefixedConn) Read(p []byte) (int, error) {
	if len(c.prefix) > 0 {
		n := copy(p, c.prefix)
		c.prefix = c.prefix[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}
