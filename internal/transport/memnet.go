// In-memory HTTP "network": a RoundTripper that routes requests to
// registered http.Handlers by host, with no TCP sockets, goroutines or
// real I/O in the path. This is the dialer seam the neighborhood-scale
// simulation rides: hundreds to thousands of virtual homes serve their
// repository and gateway faces through the real wire codecs — the same
// handlers, XML framing and auth middleware a TCP deployment runs —
// while each round trip is a deterministic, synchronous function call
// on the caller's goroutine.
package transport

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// MemNet is an in-process HTTP network. Register each simulated host's
// root handler with Handle; requests to "http://<host>/..." issued
// through Client (or any http.Client over the MemNet as Transport) are
// served synchronously by that handler.
type MemNet struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler
}

// NewMemNet returns an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{hosts: make(map[string]http.Handler)}
}

// Handle registers (or replaces) the handler serving host. A nil
// handler removes the host — requests to it then fail like a refused
// connection, which is how the simulation models a dead home.
func (m *MemNet) Handle(host string, h http.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h == nil {
		delete(m.hosts, host)
		return
	}
	m.hosts[host] = h
}

// Client returns an http.Client whose round trips ride this network.
func (m *MemNet) Client() *http.Client {
	return &http.Client{Transport: m}
}

// AuthClient returns a credential-signing client (see NewAuthClient)
// whose underlying round trips ride this network instead of the shared
// TCP transport.
//
// Deprecated: use Dialer, which owns the credential and transport seams
// together: m.Dialer(creds).HTTPClient() is the equivalent client.
func (m *MemNet) AuthClient(creds Credentials) *http.Client {
	return NewAuthClientOver(creds, m)
}

// Dialer returns a Dialer whose HTTP path rides this network. Binary
// negotiation stays confined to in-process authorities (RegisterLocal),
// since a memory network has no socket to dial.
func (m *MemNet) Dialer(creds Credentials) *Dialer {
	d := NewDialer(creds)
	d.Transport = m
	return d
}

// RoundTrip implements http.RoundTripper: the request is served
// synchronously by the handler registered for its host.
func (m *MemNet) RoundTrip(req *http.Request) (*http.Response, error) {
	m.mu.RLock()
	h := m.hosts[req.URL.Host]
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("memnet: connect %s: no such host", req.URL.Host)
	}
	if req.Body != nil {
		defer req.Body.Close()
	}
	rec := &memResponse{header: make(http.Header), status: http.StatusOK}
	h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.status),
		StatusCode:    rec.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// memResponse is the minimal ResponseWriter behind a mem round trip.
type memResponse struct {
	header      http.Header
	body        bytes.Buffer
	status      int
	wroteHeader bool
}

func (r *memResponse) Header() http.Header { return r.header }

func (r *memResponse) WriteHeader(status int) {
	if r.wroteHeader {
		return
	}
	r.wroteHeader = true
	r.status = status
}

func (r *memResponse) Write(p []byte) (int, error) {
	r.wroteHeader = true
	return r.body.Write(p)
}
