// Package transport owns the process-wide HTTP plumbing shared by every
// framework client: the SOAP gateway protocol, UDDI registry calls, UPnP
// control and description fetches, and event delivery.
//
// The seed rode http.DefaultClient, whose transport keeps only two idle
// connections per host — under scene fan-out or bridge-scaling load every
// gateway pair churned TCP connections on each call. The paper picked
// SOAP/HTTP for being "light-weight for network" (§4.1); a shared
// keep-alive transport makes the reproduction actually pay only the wire
// cost: one warm connection pool per peer gateway, sized for a federation
// of many middleware networks.
//
// Federation traffic is home-LAN-local by design (§3.1: gateways sit on
// the same residential network), so the transport deliberately skips
// proxy resolution.
package transport

import (
	"net"
	"net/http"
	"time"
)

// shared is the tuned transport behind every framework HTTP client.
var shared = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	// A gateway talks to every other gateway plus the repository; keep a
	// deep warm pool per peer so steady-state calls never redial.
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   5 * time.Second,
	ExpectContinueTimeout: time.Second,
}

// client is the shared deadline-free client; callers bound requests with
// contexts.
var client = &http.Client{Transport: shared}

// Shared returns the process-wide transport, for callers assembling their
// own http.Client (custom redirect policy, cookies).
func Shared() *http.Transport { return shared }

// Client returns the shared HTTP client. It sets no overall timeout:
// per-call deadlines come from request contexts, and long-poll requests
// (event and registry watches) legitimately park longer than any sane
// global timeout.
//
// Deprecated: construct a Dialer (NewDialer(nil) for an anonymous one)
// and use its HTTPClient; the Dialer additionally owns credentials and
// binary fast-path negotiation. Client remains for out-of-tree callers.
func Client() *http.Client { return client }

// ClientWithTimeout returns a client over the shared transport with an
// overall per-request timeout, for delivery paths without a context
// discipline (push callbacks).
//
// Deprecated: set Dialer.Timeout and use Dialer.HTTPClient instead.
func ClientWithTimeout(d time.Duration) *http.Client {
	return &http.Client{Transport: shared, Timeout: d}
}
