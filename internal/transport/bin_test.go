// Tests for the binary fast path: frame encode/decode and CRC defense,
// session MAC and replay-counter enforcement, the BinServer frame loop
// over real connections, and the Dialer's negotiation, pooling, rekey
// and downgrade behaviour. The handshake provider here is a test fake —
// the real ed25519/X25519 provider is exercised in
// internal/core/identity's own tests.
package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeKeys derives a deterministic key pair for a dialer/listener name
// pair, so both fake handshake halves agree without real key exchange.
func fakeKeys(dialer, listener string) (c2s, s2c [32]byte) {
	c2s = sha256.Sum256([]byte("c2s\x00" + dialer + "\x00" + listener))
	s2c = sha256.Sum256([]byte("s2c\x00" + dialer + "\x00" + listener))
	return c2s, s2c
}

// fakeAuth is a SessionAuth test double: hellos carry the dialer's home
// name in the clear and the session keys are derived from the name pair.
type fakeAuth struct {
	home   string
	ttl    time.Duration
	refuse bool // listener side rejects every hello

	mu      sync.Mutex
	accepts int
	ends    int
	rekeys  int
}

func (f *fakeAuth) SessionActive() bool { return true }

func (f *fakeAuth) lifetime() time.Duration {
	if f.ttl > 0 {
		return f.ttl
	}
	return time.Hour
}

func (f *fakeAuth) NewSessionClient() (SessionClient, error) {
	return &fakeClient{auth: f}, nil
}

func (f *fakeAuth) AcceptSession(hello []byte) ([]byte, *Session, error) {
	if f.refuse {
		return nil, nil, errors.New("fake: hello refused")
	}
	peer := string(hello)
	f.mu.Lock()
	f.accepts++
	f.mu.Unlock()
	c2s, s2c := fakeKeys(peer, f.home)
	now := time.Now()
	s := NewSession("sess-"+peer, peer, now, now.Add(f.lifetime()), s2c, c2s)
	return []byte(f.home), s, nil
}

func (f *fakeAuth) NoteSessionEnd(s *Session, rekeyed bool) {
	f.mu.Lock()
	if rekeyed {
		f.rekeys++
	} else {
		f.ends++
	}
	f.mu.Unlock()
}

type fakeClient struct{ auth *fakeAuth }

func (c *fakeClient) Hello() []byte { return []byte(c.auth.home) }

func (c *fakeClient) Finish(accept []byte) (*Session, error) {
	peer := string(accept)
	c2s, s2c := fakeKeys(c.auth.home, peer)
	now := time.Now()
	return NewSession("sess-"+c.auth.home, peer, now, now.Add(c.auth.lifetime()), c2s, s2c), nil
}

// sessionPair builds a matched dialer/listener session pair directly.
func sessionPair(ttl time.Duration) (client, server *Session) {
	c2s, s2c := fakeKeys("a", "b")
	now := time.Now()
	client = NewSession("s", "b", now, now.Add(ttl), c2s, s2c)
	server = NewSession("s", "a", now, now.Add(ttl), s2c, c2s)
	return client, server
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xA5}, 70000), // spans multiple reads
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, nbuf, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = nbuf
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestFrameCRCMismatch(t *testing.T) {
	frame := appendFrame(nil, []byte("hello frame"))
	frame[len(frame)-1] ^= 0xFF // corrupt payload after the CRC was taken
	_, _, err := readFrame(bytes.NewReader(frame), nil)
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted frame accepted: %v", err)
	}
}

func TestFrameLengthBound(t *testing.T) {
	var hdr [8]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x7F // absurd length
	_, _, err := readFrame(bytes.NewReader(hdr[:]), nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame length accepted: %v", err)
	}
}

func TestRequestResponseMACAndCounters(t *testing.T) {
	client, server := sessionPair(time.Hour)

	payload := encodeRequest(nil, client, "/uddi", "text/xml", "save", []byte("<body/>"))
	q, err := decodeRequest(server, payload)
	if err != nil {
		t.Fatal(err)
	}
	if q.Path != "/uddi" || q.ContentType != "text/xml" || q.Action != "save" || string(q.Body) != "<body/>" {
		t.Fatalf("decoded request = %+v", q)
	}

	// Replaying the same payload must fail on the counter.
	if _, err := decodeRequest(server, payload); err == nil || !strings.Contains(err.Error(), "replayed") {
		t.Fatalf("replayed request accepted: %v", err)
	}

	// A tampered body must fail the MAC before anything else.
	bad := encodeRequest(nil, client, "/uddi", "text/xml", "save", []byte("<body/>"))
	bad[len(bad)/2] ^= 0x01
	if _, err := decodeRequest(server, bad); err == nil || !strings.Contains(err.Error(), "MAC") {
		t.Fatalf("tampered request accepted: %v", err)
	}

	// Response echoes the request counter; a mismatched echo is refused.
	resp := encodeResponse(nil, server, q.Ctr, 200, "text/plain", []byte("ok"))
	r, err := decodeResponse(client, resp, q.Ctr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != 200 || string(r.Body) != "ok" {
		t.Fatalf("decoded response = %+v", r)
	}
	wrong := encodeResponse(nil, server, 99, 200, "text/plain", []byte("ok"))
	if _, err := decodeResponse(client, wrong, 1); err == nil {
		t.Fatal("response answering the wrong request accepted")
	}
}

func TestErrorAndHandshakeFrames(t *testing.T) {
	code, msg, err := decodeError(encodeError(binErrRefused, "not today"))
	if err != nil || code != binErrRefused || msg != "not today" {
		t.Fatalf("decodeError = %q %q %v", code, msg, err)
	}
	blob, err := decodeBlob(encodeHello([]byte("hi")))
	if err != nil || string(blob) != "hi" {
		t.Fatalf("decodeBlob(hello) = %q %v", blob, err)
	}
	blob, err = decodeBlob(encodeAccept([]byte("yo")))
	if err != nil || string(blob) != "yo" {
		t.Fatalf("decodeBlob(accept) = %q %v", blob, err)
	}
}

// echoServer builds a BinServer echoing path:body for any route.
func echoServer(auth *fakeAuth) *BinServer {
	s := NewBinServer(auth)
	s.Handle("/", BinHandlerFunc(func(ctx context.Context, caller string, req *BinRequest) *BinResponse {
		return &BinResponse{Status: 200, ContentType: "text/plain",
			Body: []byte(caller + ":" + req.Path + ":" + string(req.Body))}
	}))
	return s
}

// serveTCP runs a plain TCP accept loop that consumes the BinMagic
// preamble and hands each connection to srv — the demux fast path alone.
func serveTCP(t *testing.T, srv *BinServer) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				var magic [len(BinMagic)]byte
				if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != BinMagic {
					conn.Close()
					return
				}
				srv.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestDialerOverTCP(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := echoServer(listener)
	defer srv.Close()
	authority := serveTCP(t, srv)

	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := d.Exchange(ctx, "http://"+authority+"/uddi", "text/xml", "", []byte(fmt.Sprintf("b%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("dialer:/uddi:b%d", i)
		if res.Status != 200 || string(res.Body) != want {
			t.Fatalf("exchange %d = %d %q, want 200 %q", i, res.Status, res.Body, want)
		}
	}
	if p := d.ProtocolFor("http://" + authority + "/uddi"); p != "binary" {
		t.Fatalf("ProtocolFor = %q, want binary", p)
	}
	// Three serial calls share one pooled link: exactly one handshake.
	st := d.WireStatsSnapshot()[authority]
	if st.Handshakes != 1 || st.Protocol != "binary" {
		t.Fatalf("link stats = %+v, want one handshake on binary", st)
	}
}

func TestDialerRefusedHandshakeDowngrades(t *testing.T) {
	listener := &fakeAuth{home: "listener", refuse: true}
	srv := echoServer(listener)
	defer srv.Close()
	authority := serveTCP(t, srv)

	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	_, err := d.Exchange(context.Background(), "http://"+authority+"/uddi", "text/xml", "", []byte("x"))
	if !errors.Is(err, ErrBinaryUnavailable) {
		t.Fatalf("refused handshake = %v, want ErrBinaryUnavailable", err)
	}
	if p := d.ProtocolFor("http://" + authority + "/"); p != "soap" {
		t.Fatalf("ProtocolFor after refusal = %q, want soap", p)
	}
	// Within the re-probe window every further attempt short-circuits.
	if _, err := d.Exchange(context.Background(), "http://"+authority+"/uddi", "text/xml", "", []byte("x")); !errors.Is(err, ErrBinaryUnavailable) {
		t.Fatalf("second attempt = %v, want ErrBinaryUnavailable", err)
	}
	// After the window, the dialer re-probes and can recover.
	listener.refuse = false
	d.setClock(func() time.Time { return time.Now().Add(binReprobeInterval + time.Second) })
	res, err := d.Exchange(context.Background(), "http://"+authority+"/uddi", "text/xml", "", []byte("again"))
	if err != nil || string(res.Body) != "dialer:/uddi:again" {
		t.Fatalf("post-reprobe exchange = %v %v", res, err)
	}
}

func TestDialerDisabledServerRefusal(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := echoServer(listener)
	defer srv.Close()
	srv.SetEnabled(false)
	authority := serveTCP(t, srv)

	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	_, err := d.Exchange(context.Background(), "http://"+authority+"/uddi", "text/xml", "", []byte("x"))
	if !errors.Is(err, ErrBinaryUnavailable) {
		t.Fatalf("disabled server = %v, want ErrBinaryUnavailable", err)
	}
}

func TestDialerLocalLane(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := echoServer(listener)
	defer srv.Close()
	RegisterLocal("local.test:1", srv)
	defer UnregisterLocal("local.test:1")

	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	res, err := d.Exchange(context.Background(), "http://local.test:1/peer", "text/xml", "pull", []byte("cursor=5"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "dialer:/peer:cursor=5" {
		t.Fatalf("local lane body = %q", res.Body)
	}
	if listener.accepts != 1 {
		t.Fatalf("local lane ran %d handshakes, want 1", listener.accepts)
	}
	// Closing the server poisons pooled lanes; the next exchange reports
	// the fast path unavailable so the caller falls back to SOAP.
	srv.Close()
	if _, err := d.Exchange(context.Background(), "http://local.test:1/peer", "text/xml", "", nil); !errors.Is(err, ErrBinaryUnavailable) {
		t.Fatalf("closed-server exchange = %v, want ErrBinaryUnavailable", err)
	}
}

func TestDialerRekeyOnExpiry(t *testing.T) {
	listener := &fakeAuth{home: "listener", ttl: 50 * time.Millisecond}
	dialerAuth := &fakeAuth{home: "dialer", ttl: 50 * time.Millisecond}
	srv := echoServer(listener)
	defer srv.Close()
	RegisterLocal("rekey.test:1", srv)
	defer UnregisterLocal("rekey.test:1")

	d := &Dialer{Session: dialerAuth, Binary: true}
	defer d.Close()
	if _, err := d.Exchange(context.Background(), "http://rekey.test:1/uddi", "text/xml", "", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Past the session lifetime the pooled lane rekeys in place: the
	// exchange succeeds, the rekey is counted, and the provider saw the
	// old session end as a rekey.
	d.setClock(func() time.Time { return time.Now().Add(time.Minute) })
	if _, err := d.Exchange(context.Background(), "http://rekey.test:1/uddi", "text/xml", "", []byte("b")); err != nil {
		t.Fatal(err)
	}
	st := d.WireStatsSnapshot()["rekey.test:1"]
	if st.Rekeys != 1 || st.Handshakes != 2 {
		t.Fatalf("after expiry: %+v, want 1 rekey / 2 handshakes", st)
	}
	if dialerAuth.rekeys == 0 || listener.rekeys == 0 {
		t.Fatalf("providers saw rekeys dialer=%d listener=%d, want both > 0", dialerAuth.rekeys, listener.rekeys)
	}
}

func TestDialerContextCancellationIsNotADowngrade(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := NewBinServer(listener)
	srv.Handle("/", BinHandlerFunc(func(ctx context.Context, caller string, req *BinRequest) *BinResponse {
		<-ctx.Done() // hold the request until the caller gives up
		return &BinResponse{Status: 200}
	}))
	defer srv.Close()
	authority := serveTCP(t, srv)

	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := d.Exchange(ctx, "http://"+authority+"/uddi", "text/xml", "", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled exchange = %v, want the context error", err)
	}
	if errors.Is(err, ErrBinaryUnavailable) {
		t.Fatal("context cancellation was reported as a downgrade")
	}
	// The authority stays on binary: cancellation is the caller's doing,
	// not the link's.
	if p := d.ProtocolFor("http://" + authority + "/"); p != "binary" {
		t.Fatalf("protocol after cancellation = %q, want binary", p)
	}
}

func TestDemuxSharesPortWithHTTP(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := echoServer(listener)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/plain", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "http ok")
	})
	httpS := &http.Server{Handler: mux}
	demuxed := Demux(ln, srv)
	go httpS.Serve(demuxed)
	defer httpS.Close()
	authority := ln.Addr().String()

	// HTTP through the demultiplexer.
	resp, err := http.Get("http://" + authority + "/plain")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "http ok" {
		t.Fatalf("HTTP body through demux = %q", body)
	}
	// Binary on the same port.
	d := &Dialer{Session: &fakeAuth{home: "dialer"}, Binary: true}
	defer d.Close()
	res, err := d.Exchange(context.Background(), "http://"+authority+"/uddi", "text/xml", "", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "dialer:/uddi:b" {
		t.Fatalf("binary body through demux = %q", res.Body)
	}
}

func TestBinServerRequestBeforeHandshake(t *testing.T) {
	listener := &fakeAuth{home: "listener"}
	srv := echoServer(listener)
	defer srv.Close()
	authority := serveTCP(t, srv)
	conn, err := net.Dial("tcp", authority)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(BinMagic)); err != nil {
		t.Fatal(err)
	}
	// A 'Q' with no session: the server must refuse, not crash.
	client, _ := sessionPair(time.Hour)
	if err := writeFrame(conn, encodeRequest(nil, client, "/uddi", "", "", nil)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, _, err := decodeError(payload)
	if err != nil || code != binErrBad {
		t.Fatalf("pre-handshake request answered %q %v, want %q", code, err, binErrBad)
	}
}
